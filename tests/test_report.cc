/**
 * @file
 * Golden-output tests for the report printers on a tiny fixed sweep:
 * the exact text of printHeadline and the structure + filled rows of
 * printFig61.  The SweepResult is constructed by hand (no simulation),
 * so the goldens pin the formatting and the averaging, not the
 * simulator.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "harness/report.hh"

namespace refrint::test
{

namespace
{

/** Run @p fn against a temp FILE and return everything it printed. */
std::string
capture(const std::function<void(std::FILE *)> &fn)
{
    std::FILE *f = std::tmpfile();
    EXPECT_NE(f, nullptr);
    fn(f);
    std::fflush(f);
    const long size = std::ftell(f);
    std::rewind(f);
    std::string out(static_cast<std::size_t>(size), '\0');
    const std::size_t got = std::fread(&out[0], 1, out.size(), f);
    std::fclose(f);
    EXPECT_EQ(got, out.size());
    return out;
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::stringstream ss(text);
    std::string line;
    while (std::getline(ss, line))
        out.push_back(line);
    return out;
}

NormalizedResult
row(const char *app, const char *config, double retUs)
{
    NormalizedResult n;
    n.app = app;
    n.config = config;
    n.retentionUs = retUs;
    return n;
}

/** Two apps at 50 us for the headline pair; fixed round numbers so the
 *  printed averages are exact. */
SweepResult
tinySweep()
{
    SweepResult s;

    NormalizedResult pAllFft = row("fft", "P.all", 50.0);
    pAllFft.memEnergy = 0.50;
    pAllFft.sysEnergy = 0.72;
    pAllFft.time = 1.18;
    pAllFft.l1 = 0.05;
    pAllFft.l2 = 0.10;
    pAllFft.l3 = 0.25;
    pAllFft.dram = 0.10;

    NormalizedResult pAllLu = row("lu", "P.all", 50.0);
    pAllLu.memEnergy = 0.54;
    pAllLu.sysEnergy = 0.76;
    pAllLu.time = 1.22;
    pAllLu.l1 = 0.07;
    pAllLu.l2 = 0.12;
    pAllLu.l3 = 0.27;
    pAllLu.dram = 0.08;

    NormalizedResult wbFft = row("fft", "R.WB(32,32)", 50.0);
    wbFft.memEnergy = 0.36;
    wbFft.sysEnergy = 0.61;
    wbFft.time = 1.02;

    s.normalized = {pAllFft, pAllLu, wbFft};
    return s;
}

TEST(ReportGolden, HeadlineExactText)
{
    const SweepResult s = tinySweep();
    const std::string got =
        capture([&](std::FILE *f) { printHeadline(s, f); });

    const std::string want =
        "# Headline (paper abstract / §6, 50 us):\n"
        "config                mem   paperMem        sys   paperSys"
        "       time  paperTime\n"
        "P.all               0.520       0.50      0.740       0.72"
        "      1.200       1.18\n"
        "R.WB(32,32)         0.360       0.36      0.610       0.61"
        "      1.020       1.02\n";
    EXPECT_EQ(got, want);
}

TEST(ReportGolden, Fig61StructureAndFilledRows)
{
    const SweepResult s = tinySweep();
    const std::string got =
        capture([&](std::FILE *f) { printFig61(s, f); });
    const std::vector<std::string> ls = lines(got);

    // 1 comment + 1 column header + 3 retentions x 14 policies.
    ASSERT_EQ(ls.size(), 2u + 3u * 14u);
    EXPECT_EQ(ls[0],
              "# Fig 6.1 — L1/L2/L3/DRAM energy, averaged over all "
              "apps (normalized to full-SRAM memory energy)");
    EXPECT_EQ(ls[1],
              "ret    policy             L1      L2      L3    DRAM"
              "   total");

    // The filled (P.all, 50 us) row averages fft and lu exactly.
    EXPECT_EQ(ls[2],
              "50     P.all         0.0600  0.1100  0.2600  0.0900"
              "  0.5200");
    // A config with no rows prints zeros (averages over nothing).
    EXPECT_EQ(ls[3],
              "50     P.valid       0.0000  0.0000  0.0000  0.0000"
              "  0.0000");
}

TEST(ReportGolden, HeadlineIgnoresOtherRetentions)
{
    SweepResult s = tinySweep();
    // A 100 us outlier with absurd values must not leak into the
    // 50 us headline averages.
    NormalizedResult outlier = row("fft", "P.all", 100.0);
    outlier.memEnergy = 9.0;
    outlier.sysEnergy = 9.0;
    outlier.time = 9.0;
    s.normalized.push_back(outlier);

    const std::string got =
        capture([&](std::FILE *f) { printHeadline(s, f); });
    EXPECT_NE(got.find("P.all               0.520"), std::string::npos);
    EXPECT_EQ(got.find("9.0"), std::string::npos);
}

} // namespace
} // namespace refrint::test
