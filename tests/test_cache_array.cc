/**
 * @file
 * Unit tests for cache geometry (address slicing) and the
 * set-associative array (lookup, victim selection, LRU, install).
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "mem/cache_array.hh"

namespace refrint::test
{

namespace
{
CacheGeometry
geom8x2()
{
    // 1 KB, 2-way, 64B lines: 16 lines, 8 sets.
    return CacheGeometry{1024, 2, 64, 1};
}
} // namespace

TEST(CacheGeometry, DerivedQuantities)
{
    CacheGeometry g = geom8x2();
    EXPECT_EQ(g.numLines(), 16u);
    EXPECT_EQ(g.numSets(), 8u);
    EXPECT_EQ(g.lineBits(), 6u);
    EXPECT_EQ(g.setBits(), 3u);
}

TEST(CacheGeometry, LineAlignment)
{
    CacheGeometry g = geom8x2();
    EXPECT_EQ(g.lineAddr(0x1234), 0x1200u);
    EXPECT_EQ(g.lineAddr(0x1240), 0x1240u);
    EXPECT_EQ(g.tagOf(0x127f), 0x1240u);
}

TEST(CacheGeometry, SetIndexCyclesWithLineAddress)
{
    CacheGeometry g = geom8x2();
    EXPECT_EQ(g.setIndex(0x0), 0u);
    EXPECT_EQ(g.setIndex(0x40), 1u);
    EXPECT_EQ(g.setIndex(0x1c0), 7u);
    EXPECT_EQ(g.setIndex(0x200), 0u); // wraps after 8 sets
}

TEST(CacheGeometry, IndexShiftSkipsBankBits)
{
    CacheGeometry g = geom8x2();
    g.indexShift = 2; // 4 "banks"
    // Consecutive lines differing only in the two bank bits share a set.
    EXPECT_EQ(g.setIndex(0x000), g.setIndex(0x040));
    EXPECT_EQ(g.setIndex(0x000), g.setIndex(0x0c0));
    // The next index bit lives above the bank bits.
    EXPECT_EQ(g.setIndex(0x100), 1u);
}

TEST(CacheArray, MissOnEmpty)
{
    CacheArray arr(geom8x2(), "t");
    EXPECT_EQ(arr.lookup(0x40), nullptr);
    EXPECT_EQ(arr.countValid(), 0u);
}

TEST(CacheArray, InstallThenHit)
{
    CacheArray arr(geom8x2(), "t");
    VictimRef v = arr.pickVictim(0x40);
    arr.install(v, 0x40, 10, Mesi::Shared);
    CacheLine *hit = arr.lookup(0x7f); // same line
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->tag, 0x40u);
    EXPECT_EQ(arr.lookup(0x80), nullptr); // different set
}

TEST(CacheArray, VictimPrefersInvalidWay)
{
    CacheArray arr(geom8x2(), "t");
    VictimRef v1 = arr.pickVictim(0x40);
    arr.install(v1, 0x40, 1, Mesi::Shared);
    // Same set (addresses 0x40 and 0x240 with 8 sets share set 1).
    VictimRef v2 = arr.pickVictim(0x240);
    EXPECT_NE(v2.line, v1.line) << "must pick the invalid way";
}

TEST(CacheArray, LruEvictsOldest)
{
    CacheArray arr(geom8x2(), "t");
    // Fill both ways of set 1.
    VictimRef a = arr.pickVictim(0x40);
    arr.install(a, 0x40, 1, Mesi::Shared);
    VictimRef b = arr.pickVictim(0x240);
    arr.install(b, 0x240, 2, Mesi::Shared);

    // Touch the first line more recently than the second.
    arr.touch(*arr.lookup(0x40), 50);

    VictimRef v = arr.pickVictim(0x440);
    EXPECT_EQ(v.line->tag, 0x240u) << "LRU way must be the victim";
}

TEST(CacheArray, IndexRoundTrips)
{
    CacheArray arr(geom8x2(), "t");
    for (std::uint32_t i = 0; i < arr.numLines(); ++i)
        EXPECT_EQ(arr.indexOf(&arr.lineAt(i)), i);
}

TEST(CacheArray, CountDirtyTracksState)
{
    CacheArray arr(geom8x2(), "t");
    VictimRef v = arr.pickVictim(0x0);
    arr.install(v, 0x0, 1, Mesi::Modified);
    v.line->dirty = true;
    EXPECT_EQ(arr.countValid(), 1u);
    EXPECT_EQ(arr.countDirty(), 1u);
    arr.invalidate(*v.line);
    EXPECT_EQ(arr.countValid(), 0u);
    EXPECT_EQ(arr.countDirty(), 0u);
}

TEST(CacheArray, InstallResetsDirectoryResidue)
{
    CacheArray arr(geom8x2(), "t");
    VictimRef v = arr.pickVictim(0x0);
    arr.install(v, 0x0, 1, Mesi::Shared);
    v.line->sharers = 0xffff;
    v.line->owner = 3;
    v.line->count = 9;
    arr.invalidate(*v.line);
    VictimRef v2 = arr.pickVictim(0x200);
    arr.install(v2, 0x200, 2, Mesi::Shared);
    EXPECT_EQ(v2.line->sharers, 0u);
    EXPECT_EQ(v2.line->owner, -1);
    EXPECT_EQ(v2.line->count, 0u);
}

TEST(CacheArrayDeath, BadGeometryIsFatal)
{
    CacheGeometry g{1000, 2, 64, 1}; // not a power-of-two layout
    EXPECT_EXIT(CacheArray(g, "bad"), ::testing::ExitedWithCode(1),
                "bad cache geometry");
}

TEST(CacheArray, ProbeMirrorStaysCoherent)
{
    // Drive a chain of install/invalidate/install over several sets and
    // verify the packed probe mirror against the line structs.
    CacheArray arr(geom8x2(), "t");
    arr.checkProbeCoherence(); // empty array

    std::vector<Addr> addrs = {0x0, 0x40, 0x240, 0x440, 0x1c0, 0x7c0};
    for (Addr a : addrs) {
        VictimRef v = arr.pickVictim(a);
        if (v.line->valid())
            arr.invalidate(*v.line);
        arr.install(v, a, 1, Mesi::Shared);
        arr.checkProbeCoherence();
    }
    // Invalidate every other line.
    for (std::size_t i = 0; i < addrs.size(); i += 2) {
        if (CacheLine *l = arr.lookup(addrs[i]))
            arr.invalidate(*l);
        arr.checkProbeCoherence();
    }
    // Lookups agree with the struct state.
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        CacheLine *l = arr.lookup(addrs[i]);
        if (l != nullptr) {
            EXPECT_EQ(l->tag, addrs[i]);
        }
    }
}

TEST(CacheArray, SetIndexMatchesGeometry)
{
    // The precomputed slicing must agree with the geometry's reference
    // implementation, hash folding included.
    CacheGeometry g = geom8x2();
    g.hashSets = true;
    CacheArray arr(g, "t");
    for (Addr a = 0; a < 0x4000; a += 64)
        EXPECT_EQ(arr.setIndexOf(a), g.setIndex(a)) << "addr " << a;
}

TEST(CacheArray, PackedLruTracksTouches)
{
    CacheArray arr(geom8x2(), "t");
    VictimRef a = arr.pickVictim(0x40);
    arr.install(a, 0x40, 5, Mesi::Shared);
    EXPECT_EQ(arr.lastTouchOf(a.index), 5u);
    arr.touch(*a.line, 9);
    EXPECT_EQ(arr.lastTouchOf(a.index), 9u);
}

TEST(CacheArray, VectorProbeMatchesScalarRandomized)
{
    // Differential test of the SIMD probe against the scalar
    // reference: every width 1..16 (the geometry layer only builds
    // power-of-two associativities, but the helper must be correct for
    // any n — non-power-of-two widths exercise the tail masks), with
    // random word patterns drawn from a small pool so duplicate words,
    // zero words and absent targets all occur.
    Prng prng(0xd1ff, 7);
    for (std::uint32_t n = 1; n <= 16; ++n) {
        for (int trial = 0; trial < 2'000; ++trial) {
            Addr words[16 + kProbePad] = {}; // pad words stay 0
            const std::uint32_t poolBits = 1 + prng.below(3);
            for (std::uint32_t w = 0; w < n; ++w) {
                // ~1/4 invalid ways; probe words are (tag | 1).
                if (prng.below(4) == 0)
                    words[w] = 0;
                else
                    words[w] = (static_cast<Addr>(
                                    prng.below(1u << poolBits))
                                << 6) |
                               1;
            }
            // Scan for: an absent word, a present word, and zero.
            const Addr wants[] = {
                (static_cast<Addr>(1u << poolBits) << 6) | 1,
                words[prng.below(n)], 0};
            for (const Addr want : wants) {
                ASSERT_EQ(probeFindWay(words, n, want),
                          probeFindWayScalar(words, n, want))
                    << "n=" << n << " want=" << want;
            }
        }
    }
}

TEST(CacheArray, ProbeCoherenceUnderRandomChurn)
{
    // Drive random install/invalidate/lookup churn across every
    // supported associativity (with and without set hashing) and let
    // checkProbeCoherence() run its built-in vector-vs-scalar
    // differential on the live probe array after every phase.
    for (const std::uint32_t assoc : {1u, 2u, 4u, 8u, 16u}) {
        for (const bool hash : {false, true}) {
            CacheGeometry g;
            g.sizeBytes = 64 * 64 * assoc; // 64 sets
            g.assoc = assoc;
            g.lineSize = 64;
            g.latency = 1;
            g.hashSets = hash;
            CacheArray arr(g, "churn");
            Prng prng(0xc0ffee + assoc, hash ? 2 : 1);
            Tick now = 0;
            for (int op = 0; op < 20'000; ++op) {
                const Addr a =
                    static_cast<Addr>(prng.below(4096)) * 64;
                ++now;
                CacheLine *l = arr.lookup(a);
                if (l != nullptr) {
                    if (prng.below(8) == 0)
                        arr.invalidate(*l);
                    else
                        arr.touch(*l, now);
                } else {
                    VictimRef v = arr.pickVictim(a);
                    if (v.line->valid())
                        arr.invalidate(*v.line);
                    arr.install(v, a, now, Mesi::Shared);
                }
                if ((op & 1023) == 0)
                    arr.checkProbeCoherence();
            }
            arr.checkProbeCoherence();
        }
    }
}

TEST(CacheArray, ArenaBackedArrayBehavesIdentically)
{
    // The same churn trace on a heap-backed and an arena-backed array
    // must produce identical state (the arena only moves storage), and
    // the arena must be recyclable across construction rounds.
    Arena arena;
    for (int round = 0; round < 3; ++round) {
        arena.reset();
        CacheArray heap(geom8x2(), "h");
        CacheArray backed(geom8x2(), "a", &arena);
        Prng prng(0xabcd, 3);
        Tick now = 0;
        for (int op = 0; op < 5'000; ++op) {
            const Addr a = static_cast<Addr>(prng.below(256)) * 64;
            ++now;
            for (CacheArray *arr : {&heap, &backed}) {
                CacheLine *l = arr->lookup(a);
                if (l != nullptr) {
                    arr->touch(*l, now);
                } else {
                    VictimRef v = arr->pickVictim(a);
                    if (v.line->valid())
                        arr->invalidate(*v.line);
                    arr->install(v, a, now, Mesi::Shared);
                }
            }
        }
        heap.checkProbeCoherence();
        backed.checkProbeCoherence();
        for (std::uint32_t i = 0; i < heap.numLines(); ++i) {
            ASSERT_EQ(heap.lineAt(i).tag, backed.lineAt(i).tag);
            ASSERT_EQ(heap.lineAt(i).state, backed.lineAt(i).state);
            ASSERT_EQ(heap.lastTouchOf(i), backed.lastTouchOf(i));
        }
    }
}

} // namespace refrint::test
