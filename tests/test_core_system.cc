/**
 * @file
 * Tests for the trace-driven core model and the CmpSystem assembly:
 * completion semantics, determinism, instruction accounting, and the
 * timing feedback loops (miss stalls and refresh-blocked banks) that
 * produce the paper's slowdown numbers.
 */

#include <gtest/gtest.h>

#include "test_util.hh"
#include "workload/micro.hh"

namespace refrint::test
{

namespace
{

TEST(CoreSystem, EveryCoreIssuesExactlyTheRequestedRefs)
{
    UniformWorkload app(8 * 1024, 0.3);
    SimParams sim;
    sim.refsPerCore = 1234;
    CmpSystem sys(tinyConfig(CellTech::Sram), app, sim);
    sys.run();

    for (CoreId c = 0; c < 4; ++c) {
        EXPECT_TRUE(sys.core(c).done());
        EXPECT_EQ(sys.core(c).refsIssued(), 1234u);
    }
}

TEST(CoreSystem, ExecTicksIsTheLatestCoreCompletion)
{
    UniformWorkload app(8 * 1024, 0.3);
    SimParams sim;
    sim.refsPerCore = 800;
    CmpSystem sys(tinyConfig(CellTech::Sram), app, sim);
    const Tick t = sys.run();

    Tick latest = 0;
    for (CoreId c = 0; c < 4; ++c)
        latest = std::max(latest, sys.core(c).doneTick());
    EXPECT_EQ(t, latest);
    EXPECT_EQ(t, sys.execTicks());
    EXPECT_GT(t, 0u);
}

TEST(CoreSystem, RunsAreDeterministic)
{
    UniformWorkload app(8 * 1024, 0.3);
    SimParams sim;
    sim.refsPerCore = 2000;
    sim.seed = 42;

    CmpSystem a(tinyConfig(CellTech::Edram), app, sim);
    CmpSystem b(tinyConfig(CellTech::Edram), app, sim);
    EXPECT_EQ(a.run(), b.run());
    EXPECT_EQ(a.totalInstructions(), b.totalInstructions());

    std::map<std::string, double> sa, sb;
    a.hierarchy().dumpStats(sa);
    b.hierarchy().dumpStats(sb);
    EXPECT_EQ(sa, sb);
}

TEST(CoreSystem, DifferentSeedsChangeTheRun)
{
    UniformWorkload app(8 * 1024, 0.3);
    SimParams sim;
    sim.refsPerCore = 2000;

    sim.seed = 1;
    CmpSystem a(tinyConfig(CellTech::Sram), app, sim);
    const Tick ta = a.run();

    sim.seed = 2;
    CmpSystem b(tinyConfig(CellTech::Sram), app, sim);
    const Tick tb = b.run();

    EXPECT_NE(ta, tb);
}

TEST(CoreSystem, InstructionsCoverGapsAndReferences)
{
    // Each reference executes `gap` instructions (IPC 1) plus the
    // memory operation itself; total instructions must be at least
    // refs * (minGap + 1) per core.
    UniformWorkload app(8 * 1024, 0.3, /*gap=*/3);
    SimParams sim;
    sim.refsPerCore = 1000;
    CmpSystem sys(tinyConfig(CellTech::Sram), app, sim);
    sys.run();

    EXPECT_GE(sys.totalInstructions(), 4u * 1000u * 4u);
}

TEST(CoreSystem, MissesStallTheCore)
{
    // A streaming workload (every ref misses to DRAM) must run much
    // longer than a hammer workload (every ref an L1 hit) for the same
    // reference count — this is the timing feedback that turns extra
    // refresh-induced misses into the paper's slowdown.
    SimParams sim;
    sim.refsPerCore = 2000;

    StreamWorkload misses(1 << 20, 0.0);
    HammerWorkload hits;
    CmpSystem slow(tinyConfig(CellTech::Sram), misses, sim);
    CmpSystem fast(tinyConfig(CellTech::Sram), hits, sim);

    EXPECT_GT(slow.run(), 2 * fast.run());
}

TEST(CoreSystem, PeriodicRefreshBlockingSlowsExecution)
{
    // Same workload and machine; Periodic-All blocks banks for whole
    // refresh bursts while Refrint steals single cycles: the paper's
    // Fig. 6.4 Periodic-vs-Refrint gap in miniature.
    UniformWorkload app(16 * 1024, 0.3);
    SimParams sim;
    sim.refsPerCore = 8000;

    CmpSystem periodic(
        tinyEdram(RefreshPolicy::periodic(DataPolicy::All)), app, sim);
    CmpSystem refrint(
        tinyEdram(RefreshPolicy::refrint(DataPolicy::All)), app, sim);

    EXPECT_GT(periodic.run(), refrint.run());
}

TEST(CoreSystem, SafetyLimitAborts)
{
    UniformWorkload app(8 * 1024, 0.3);
    SimParams sim;
    sim.refsPerCore = 1'000'000;
    sim.maxTicks = 1000; // absurdly small
    CmpSystem sys(tinyConfig(CellTech::Sram), app, sim);

    EXPECT_EXIT(sys.run(), ::testing::ExitedWithCode(1), "safety limit");
}

TEST(CoreSystem, FetchTrafficHitsThePaperSizedIL1)
{
    // The 32 KB paper IL1 holds the whole 128-line code region, so
    // after warm-up fetches hit; the tiny test machine's IL1 (32
    // lines) deliberately cannot, which the energy calibration relies
    // on being a paper-machine property.
    UniformWorkload app(8 * 1024, 0.3);
    SimParams sim;
    sim.refsPerCore = 5000; // long enough to amortize cold misses
    CmpSystem sys(HierarchyConfig::paperSram(), app, sim);
    sys.run();

    std::map<std::string, double> m;
    sys.hierarchy().dumpStats(m);
    EXPECT_GT(m["il1.reads"], 0.0);
    EXPECT_LT(m["il1.misses"], m["il1.reads"] * 0.1);
}

} // namespace
} // namespace refrint::test
