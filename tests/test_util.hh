/**
 * @file
 * Shared fixtures for the Refrint test suite: a scaled-down machine so
 * individual tests run in milliseconds, and helpers to drive a system
 * with micro workloads.
 */

#ifndef REFRINT_TESTS_TEST_UTIL_HH
#define REFRINT_TESTS_TEST_UTIL_HH

#include "coherence/hierarchy.hh"
#include "harness/runner.hh"
#include "system/cmp_system.hh"
#include "workload/micro.hh"

namespace refrint::test
{

/**
 * A 4-core, 4-bank machine (scalable via @p cores) with small caches
 * and a short retention so refresh activity shows up within
 * microseconds of simulated time.  Line size and latencies match the
 * paper config.
 */
MachineConfig tinyConfig(CellTech tech = CellTech::Edram,
                         std::uint32_t cores = 4);

/** tinyConfig with a specific LLC policy/retention. */
MachineConfig tinyEdram(const RefreshPolicy &policy,
                        Tick retention = usToTicks(5.0));

/** Run @p app on @p cfg for @p refs refs/core; returns the result. */
RunResult runTiny(const MachineConfig &cfg, const Workload &app,
                  std::uint64_t refs, std::uint64_t seed = 7);

} // namespace refrint::test

#endif // REFRINT_TESTS_TEST_UTIL_HH
