/**
 * @file
 * End-to-end smoke tests: the tiny machine runs every policy without
 * violating invariants, and produces sane energy numbers.
 */

#include <gtest/gtest.h>

#include "harness/sweep.hh"
#include "test_util.hh"

namespace refrint::test
{

TEST(Smoke, SramBaselineRuns)
{
    UniformWorkload app(16 * 1024, 0.3);
    RunResult r = runTiny(tinyConfig(CellTech::Sram), app, 3000);
    EXPECT_GT(r.execTicks, 0u);
    EXPECT_GT(r.energy.memTotal(), 0.0);
    EXPECT_EQ(r.energy.refresh, 0.0);
    EXPECT_EQ(r.config, "SRAM");
}

TEST(Smoke, EveryPolicyRunsClean)
{
    UniformWorkload app(16 * 1024, 0.3);
    for (const RefreshPolicy &pol : paperPolicySweep()) {
        SCOPED_TRACE(pol.name());
        RunResult r = runTiny(tinyEdram(pol), app, 3000);
        EXPECT_GT(r.execTicks, 0u);
        EXPECT_EQ(r.counts.decayedHits, 0u)
            << "lines decayed under " << pol.name();
    }
}

TEST(Smoke, EdramRefreshesHappen)
{
    UniformWorkload app(16 * 1024, 0.3);
    RunResult r = runTiny(
        tinyEdram(RefreshPolicy::refrint(DataPolicy::Valid)), app, 5000);
    EXPECT_GT(r.energy.refresh, 0.0);
}

TEST(Smoke, InvariantsHoldAfterRun)
{
    PingPongWorkload app(32);
    HierarchyConfig cfg =
        tinyEdram(RefreshPolicy::refrint(DataPolicy::WB, 4, 4));
    SimParams sim;
    sim.refsPerCore = 4000;
    CmpSystem sys(cfg, app, sim);
    sys.run();
    sys.hierarchy().checkInvariants(sys.eventQueue().now());
}

} // namespace refrint::test
