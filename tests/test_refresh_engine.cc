/**
 * @file
 * Unit tests for the refresh engines, using a mock RefreshTarget so the
 * engines are exercised in isolation from the coherence hierarchy.
 */

#include <gtest/gtest.h>

#include <vector>

#include "edram/refresh_engine.hh"

namespace refrint::test
{

namespace
{

/** RefreshTarget recording every action the engine takes. */
struct MockTarget : RefreshTarget
{
    explicit MockTarget(std::uint32_t lines)
        : arr(CacheGeometry{static_cast<std::uint64_t>(lines) * 64, 1, 64,
                            1},
              "mock")
    {
    }

    CacheArray &array() override { return arr; }

    void
    refreshLine(std::uint32_t idx, Tick now) override
    {
        refreshed.emplace_back(idx, now);
    }

    void
    writebackLine(std::uint32_t idx, Tick now) override
    {
        wrote.emplace_back(idx, now);
        arr.lineAt(idx).dirty = false;
    }

    void
    invalidateLine(std::uint32_t idx, Tick now) override
    {
        invalidated.emplace_back(idx, now);
        arr.invalidate(arr.lineAt(idx));
    }

    void
    addBusy(Tick now, Tick cycles) override
    {
        busyCycles += cycles;
        (void)now;
    }

    const char *name() const override { return "mock"; }

    CacheArray arr;
    std::vector<std::pair<std::uint32_t, Tick>> refreshed, wrote,
        invalidated;
    Tick busyCycles = 0;
};

struct EngineFixture
{
    EngineFixture(TimePolicy tp, DataPolicy dp, std::uint32_t n = 0,
                  std::uint32_t m = 0, std::uint32_t lines = 16,
                  Tick retention = 1000, std::uint32_t groupSize = 1)
        : target(lines)
    {
        RefreshPolicy pol{tp, dp, n, m};
        RetentionParams ret{retention, kTickNever, {}, {}};
        EngineGeometry geom{groupSize, 4, 4};
        engine = makeRefreshEngine(target, pol, ret, geom, eq, stats);
    }

    /** Install a valid line at @p idx and tell the engine. */
    CacheLine &
    install(std::uint32_t idx, Tick now, bool dirty = false)
    {
        CacheLine &l = target.arr.lineAt(idx);
        target.arr.install(VictimRef{&l, idx},
                           static_cast<Addr>(idx) * 64, now,
                           dirty ? Mesi::Modified : Mesi::Shared);
        l.dirty = dirty;
        engine->onInstall(idx, now);
        return l;
    }

    MockTarget target;
    EventQueue eq;
    StatGroup stats{"eng"};
    std::unique_ptr<RefreshEngine> engine;
};

} // namespace

// ---------------------------------------------------------------------
// RefrintEngine
// ---------------------------------------------------------------------

TEST(RefrintEngine, SentryMarginFollowsLineCount)
{
    // 16 lines, retention 1000 -> sentry fires at 1000 - 16 = 984.
    EngineFixture f(TimePolicy::Refrint, DataPolicy::Valid, 0, 0, 16,
                    1000);
    f.engine->start(0);
    f.install(3, 0);
    f.eq.run(983);
    EXPECT_TRUE(f.target.refreshed.empty());
    f.eq.run(984);
    ASSERT_EQ(f.target.refreshed.size(), 1u);
    EXPECT_EQ(f.target.refreshed[0].first, 3u);
    EXPECT_EQ(f.target.refreshed[0].second, 984u);
}

TEST(RefrintEngine, AccessDefersTheSentry)
{
    EngineFixture f(TimePolicy::Refrint, DataPolicy::Valid, 0, 0, 16,
                    1000);
    f.engine->start(0);
    f.install(3, 0);
    // Touch the line at 500: next decay moves to 1484.
    f.eq.scheduleFn(500, [&](Tick t) { f.engine->onAccess(3, t); });
    f.eq.run(1483);
    EXPECT_TRUE(f.target.refreshed.empty());
    f.eq.run(1484);
    EXPECT_EQ(f.target.refreshed.size(), 1u);
}

TEST(RefrintEngine, HotLineNeverExplicitlyRefreshed)
{
    EngineFixture f(TimePolicy::Refrint, DataPolicy::Valid, 0, 0, 16,
                    1000);
    f.engine->start(0);
    f.install(5, 0);
    // Touch every 400 ticks, well under the 984-tick sentry retention.
    for (Tick t = 400; t <= 4000; t += 400)
        f.eq.scheduleFn(t, [&](Tick now) { f.engine->onAccess(5, now); });
    f.eq.run(4000);
    EXPECT_TRUE(f.target.refreshed.empty())
        << "accesses auto-refresh; the sentry must keep deferring";
}

TEST(RefrintEngine, IdleValidLineRefreshedOncePerSentryPeriod)
{
    EngineFixture f(TimePolicy::Refrint, DataPolicy::Valid, 0, 0, 16,
                    1000);
    f.engine->start(0);
    f.install(0, 0);
    f.eq.run(984 * 4 + 10);
    EXPECT_EQ(f.target.refreshed.size(), 4u);
}

TEST(RefrintEngine, InvalidLinesAreNotTracked)
{
    EngineFixture f(TimePolicy::Refrint, DataPolicy::Valid, 0, 0, 16,
                    1000);
    f.engine->start(0);
    f.eq.run(5000);
    EXPECT_TRUE(f.target.refreshed.empty());
    EXPECT_TRUE(f.eq.empty()) << "nothing armed, nothing scheduled";
}

TEST(RefrintEngine, AllPolicyRefreshesInvalidLinesToo)
{
    EngineFixture f(TimePolicy::Refrint, DataPolicy::All, 0, 0, 16,
                    1000);
    f.engine->start(0);
    f.eq.run(2000);
    // All 16 (invalid) lines refreshed at least twice in two periods.
    EXPECT_GE(f.target.refreshed.size(), 32u);
    EXPECT_TRUE(f.target.invalidated.empty());
}

TEST(RefrintEngine, DirtyPolicyInvalidatesCleanOnDecay)
{
    EngineFixture f(TimePolicy::Refrint, DataPolicy::Dirty, 0, 0, 16,
                    1000);
    f.engine->start(0);
    f.install(1, 0, /*dirty=*/false);
    f.install(2, 0, /*dirty=*/true);
    f.eq.run(1200);
    ASSERT_EQ(f.target.invalidated.size(), 1u);
    EXPECT_EQ(f.target.invalidated[0].first, 1u);
    ASSERT_EQ(f.target.refreshed.size(), 1u);
    EXPECT_EQ(f.target.refreshed[0].first, 2u);
}

TEST(RefrintEngine, WbLifecycleOnIdleDirtyLine)
{
    // WB(2,1): dirty line refreshed twice, written back, then as a
    // clean line refreshed once more, then invalidated.
    EngineFixture f(TimePolicy::Refrint, DataPolicy::WB, 2, 1, 16, 1000);
    f.engine->start(0);
    f.install(4, 0, /*dirty=*/true);
    f.eq.run(984 * 5);
    EXPECT_EQ(f.target.refreshed.size(), 3u); // 2 dirty + 1 clean
    EXPECT_EQ(f.target.wrote.size(), 1u);
    EXPECT_EQ(f.target.invalidated.size(), 1u);
}

TEST(RefrintEngine, GroupedSentriesServiceWholeGroup)
{
    // Group size 4: installing one line arms its group; when the sentry
    // fires, every valid line of the group is serviced together.
    EngineFixture f(TimePolicy::Refrint, DataPolicy::Valid, 0, 0, 16,
                    1000, /*groupSize=*/4);
    f.engine->start(0);
    f.install(0, 0);
    f.install(1, 0);
    f.install(2, 0);
    f.install(9, 0); // different group
    f.eq.run(990);
    EXPECT_EQ(f.target.refreshed.size(), 4u);
    EXPECT_EQ(f.target.busyCycles, 4u) << "one stolen cycle per line";
}

TEST(RefrintEngine, GroupFiresAtEarliestMemberDeadline)
{
    EngineFixture f(TimePolicy::Refrint, DataPolicy::Valid, 0, 0, 16,
                    1000, /*groupSize=*/4);
    f.engine->start(0);
    f.install(0, 0);
    // Second member installed later: group still fires at the first
    // member's deadline, refreshing both (the grouping cost).
    f.eq.scheduleFn(500, [&](Tick t) { f.install(1, t); });
    f.eq.run(984);
    EXPECT_EQ(f.target.refreshed.size(), 2u);
}

TEST(RefrintEngine, BusyCyclesMatchServicedLines)
{
    EngineFixture f(TimePolicy::Refrint, DataPolicy::Valid, 0, 0, 16,
                    1000);
    f.engine->start(0);
    for (std::uint32_t i = 0; i < 8; ++i)
        f.install(i, 0);
    f.eq.run(990);
    EXPECT_EQ(f.target.busyCycles, 8u);
}

// ---------------------------------------------------------------------
// PeriodicEngine
// ---------------------------------------------------------------------

TEST(PeriodicEngine, VisitsEveryLineOncePerPeriod)
{
    EngineFixture f(TimePolicy::Periodic, DataPolicy::All, 0, 0, 16,
                    1000);
    f.engine->start(0);
    f.eq.run(1000);
    EXPECT_EQ(f.target.refreshed.size(), 16u);
    f.eq.run(2000);
    EXPECT_EQ(f.target.refreshed.size(), 32u);
}

TEST(PeriodicEngine, BurstsAreStaggeredAcrossThePeriod)
{
    EngineFixture f(TimePolicy::Periodic, DataPolicy::All, 0, 0, 16,
                    1000);
    f.engine->start(0);
    f.eq.run(499);
    const std::size_t firstHalf = f.target.refreshed.size();
    EXPECT_GT(firstHalf, 0u);
    EXPECT_LT(firstHalf, 16u)
        << "the full cache must not refresh in one burst";
}

TEST(PeriodicEngine, EagerlyRefreshesRecentlyAccessedLines)
{
    // The hallmark weakness of Periodic (§3.1): it refreshes lines even
    // if an access just auto-refreshed them.
    EngineFixture f(TimePolicy::Periodic, DataPolicy::Valid, 0, 0, 16,
                    1000);
    f.engine->start(0);
    f.install(0, 0);
    for (Tick t = 100; t <= 2000; t += 100)
        f.eq.scheduleFn(t, [&](Tick now) { f.engine->onAccess(0, now); });
    f.eq.run(2100);
    EXPECT_GE(f.target.refreshed.size(), 2u)
        << "periodic refreshes hot lines anyway";
}

TEST(PeriodicEngine, ValidSkipsInvalidLines)
{
    EngineFixture f(TimePolicy::Periodic, DataPolicy::Valid, 0, 0, 16,
                    1000);
    f.engine->start(0);
    f.install(7, 0);
    f.eq.run(1000);
    EXPECT_EQ(f.target.refreshed.size(), 1u);
    EXPECT_EQ(f.target.refreshed[0].first, 7u);
}

TEST(PeriodicEngine, WbCountsDownAcrossPeriods)
{
    EngineFixture f(TimePolicy::Periodic, DataPolicy::WB, 1, 0, 16,
                    1000);
    f.engine->start(0);
    f.install(2, 0, /*dirty=*/true);
    f.eq.run(3 * 1000 + 10);
    // Period 1: count 1 -> refresh; period 2: count 0 dirty -> WB;
    // period 3: clean, m=0 -> invalidate.
    EXPECT_EQ(f.target.refreshed.size(), 1u);
    EXPECT_EQ(f.target.wrote.size(), 1u);
    EXPECT_EQ(f.target.invalidated.size(), 1u);
}

TEST(PeriodicEngine, BlocksTheBankWhileRefreshing)
{
    EngineFixture f(TimePolicy::Periodic, DataPolicy::All, 0, 0, 16,
                    1000);
    f.engine->start(0);
    f.eq.run(1000);
    EXPECT_EQ(f.target.busyCycles, 16u)
        << "refreshing a line costs one blocked cycle (Table 5.2)";
}

TEST(EngineDeath, SentryMarginMustFitRetention)
{
    // 16-line cache with retention 10 cycles: the conservative margin
    // (= line count) exceeds the retention period.
    MockTarget target(16);
    EventQueue eq;
    StatGroup sg{"eng"};
    RetentionParams ret{10, kTickNever, {}, {}};
    EngineGeometry geom{1, 4, 4};
    EXPECT_DEATH(makeRefreshEngine(
                     target, RefreshPolicy::refrint(DataPolicy::Valid),
                     ret, geom, eq, sg),
                 "sentry margin");
}

} // namespace refrint::test
