/**
 * @file
 * Tests for the synthetic workload generators: determinism, address-map
 * discipline, the tunables' first-order effects, and — most importantly
 * — that each paper application measures into its Table 6.1 class
 * (footprint/visibility binning), since that binning is what drives the
 * class-wise evaluation figures.
 */

#include <gtest/gtest.h>

#include <set>

#include "harness/binning.hh"
#include "test_util.hh"
#include "workload/synthetic.hh"

namespace refrint::test
{

namespace
{

/** Collect @p n refs from one core's stream. */
std::vector<MemRef>
collect(const Workload &w, CoreId core, std::uint32_t numCores,
        std::uint64_t seed, std::size_t n)
{
    auto s = w.makeStream(core, numCores, seed);
    std::vector<MemRef> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        v.push_back(s->next());
    return v;
}

TEST(Workloads, PaperSuiteHasElevenApplications)
{
    EXPECT_EQ(paperWorkloads().size(), 11u);
}

TEST(Workloads, FindWorkloadRoundTripsEveryName)
{
    for (const Workload *w : paperWorkloads()) {
        EXPECT_EQ(findWorkload(w->name()), w) << w->name();
    }
    EXPECT_EQ(findWorkload("nonexistent"), nullptr);
}

TEST(Workloads, EveryAppDeclaresAPaperClass)
{
    for (const Workload *w : paperWorkloads()) {
        EXPECT_GE(w->paperClass(), 1) << w->name();
        EXPECT_LE(w->paperClass(), 3) << w->name();
    }
}

TEST(Workloads, Table61BinningIsComplete)
{
    // Table 6.1: Class 1 = {fft, fmm, cholesky, fluidanimate},
    // Class 2 = {barnes, lu, radix, radiosity},
    // Class 3 = {blackscholes, streamcluster, raytrace}.
    EXPECT_EQ(workloadsOfClass(1).size(), 4u);
    EXPECT_EQ(workloadsOfClass(2).size(), 4u);
    EXPECT_EQ(workloadsOfClass(3).size(), 3u);
}

TEST(Workloads, StreamsAreDeterministicPerSeed)
{
    const Workload *w = findWorkload("barnes");
    ASSERT_NE(w, nullptr);
    const auto a = collect(*w, 0, 16, 99, 5000);
    const auto b = collect(*w, 0, 16, 99, 5000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].write, b[i].write);
        EXPECT_EQ(a[i].gap, b[i].gap);
    }
}

TEST(Workloads, DifferentSeedsProduceDifferentStreams)
{
    const Workload *w = findWorkload("barnes");
    const auto a = collect(*w, 0, 16, 1, 2000);
    const auto b = collect(*w, 0, 16, 2, 2000);
    std::size_t same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        same += a[i].addr == b[i].addr;
    EXPECT_LT(same, a.size() / 2);
}

TEST(Workloads, DifferentCoresUseDisjointPrivateRegions)
{
    const Workload *w = findWorkload("lu");
    const auto a = collect(*w, 0, 16, 7, 8000);
    const auto b = collect(*w, 5, 16, 7, 8000);

    std::set<Addr> aPriv, bPriv;
    for (const auto &r : a)
        if (r.addr < SyntheticStream::kSharedBase)
            aPriv.insert(r.addr / 64);
    for (const auto &r : b)
        if (r.addr < SyntheticStream::kSharedBase)
            bPriv.insert(r.addr / 64);

    ASSERT_FALSE(aPriv.empty());
    ASSERT_FALSE(bPriv.empty());
    for (Addr l : aPriv)
        EXPECT_EQ(bPriv.count(l), 0u);
}

TEST(Workloads, SharedRegionIsActuallyShared)
{
    const Workload *w = findWorkload("barnes"); // high-sharing Class 2
    const auto a = collect(*w, 0, 16, 7, 30000);
    const auto b = collect(*w, 3, 16, 7, 30000);

    std::set<Addr> aSh, bSh;
    for (const auto &r : a)
        if (r.addr >= SyntheticStream::kSharedBase)
            aSh.insert(r.addr / 64);
    for (const auto &r : b)
        if (r.addr >= SyntheticStream::kSharedBase)
            bSh.insert(r.addr / 64);

    std::size_t common = 0;
    for (Addr l : aSh)
        common += bSh.count(l);
    EXPECT_GT(common, 0u);
}

TEST(Workloads, GapsStayWithinTheProfileBounds)
{
    for (const Workload *w : paperWorkloads()) {
        const auto refs = collect(*w, 1, 16, 3, 4000);
        for (const auto &r : refs) {
            EXPECT_GE(r.gap, 1u) << w->name();
            EXPECT_LE(r.gap, 64u) << w->name();
        }
    }
}

TEST(Workloads, AddressesAreInDeclaredRegions)
{
    for (const Workload *w : paperWorkloads()) {
        const auto refs = collect(*w, 2, 16, 11, 4000);
        for (const auto &r : refs) {
            const bool priv = r.addr >= SyntheticStream::kPrivateBase &&
                              r.addr < SyntheticStream::kSharedBase;
            const bool shared = r.addr >= SyntheticStream::kSharedBase &&
                                r.addr < Core::kCodeBase;
            EXPECT_TRUE(priv || shared)
                << w->name() << " addr " << std::hex << r.addr;
        }
    }
}

// ---------------------------------------------------------------------
// Binning: every application must measure into its Table 6.1 class.
// This is the calibration contract of the workload substitution
// (DESIGN.md §2) — if it breaks, the class-wise figures are meaningless.
// ---------------------------------------------------------------------

class BinningTest : public ::testing::TestWithParam<const Workload *>
{
};

TEST_P(BinningTest, AppMeasuresIntoItsPaperClass)
{
    const Workload *w = GetParam();
    // Default thresholds: the classifier is calibrated at these stream
    // lengths (shorter runs overweight cold-start write-backs).
    const BinningMeasurement m = measureBinning(*w);
    EXPECT_EQ(m.measuredClass, w->paperClass()) << w->name();
}

INSTANTIATE_TEST_SUITE_P(
    PaperApps, BinningTest, ::testing::ValuesIn(paperWorkloads()),
    [](const ::testing::TestParamInfo<const Workload *> &info) {
        return std::string(info.param->name());
    });

// Micro workloads keep their analytic guarantees.

TEST(MicroWorkloads, HammerTouchesExactlyOneLinePerCore)
{
    HammerWorkload w;
    const auto refs = collect(w, 0, 4, 5, 1000);
    std::set<Addr> lines;
    for (const auto &r : refs)
        lines.insert(r.addr / 64);
    EXPECT_EQ(lines.size(), 1u);
}

TEST(MicroWorkloads, StreamNeverRevisitsALine)
{
    StreamWorkload w(1 << 20, 0.2);
    const auto refs = collect(w, 0, 4, 5, 4000);
    std::set<Addr> lines;
    for (const auto &r : refs)
        EXPECT_TRUE(lines.insert(r.addr / 64).second);
}

TEST(MicroWorkloads, UniformStaysInItsRegion)
{
    const std::uint64_t bytes = 64 * 1024;
    UniformWorkload w(bytes, 0.5);
    const auto refs0 = collect(w, 0, 4, 5, 4000);
    Addr lo = ~Addr{0}, hi = 0;
    for (const auto &r : refs0) {
        lo = std::min(lo, r.addr);
        hi = std::max(hi, r.addr);
    }
    EXPECT_LT(hi - lo, bytes);
}

TEST(MicroWorkloads, PingPongAlternatesWritesAcrossCores)
{
    PingPongWorkload w(4);
    const auto refs = collect(w, 0, 2, 5, 1000);
    std::size_t writes = 0;
    for (const auto &r : refs)
        writes += r.write;
    EXPECT_GT(writes, 0u);
    EXPECT_LT(writes, refs.size());
}

} // namespace
} // namespace refrint::test
