/**
 * @file
 * Tests for the synthetic workload generators: determinism, address-map
 * discipline, the tunables' first-order effects, and — most importantly
 * — that each paper application measures into its Table 6.1 class
 * (footprint/visibility binning), since that binning is what drives the
 * class-wise evaluation figures.
 */

#include <gtest/gtest.h>

#include <set>

#include "harness/binning.hh"
#include "harness/runner.hh"
#include "test_util.hh"
#include "workload/method.hh"
#include "workload/micro.hh"
#include "workload/synthetic.hh"

namespace refrint::test
{

namespace
{

/** Collect @p n refs from one core's stream. */
std::vector<MemRef>
collect(const Workload &w, CoreId core, std::uint32_t numCores,
        std::uint64_t seed, std::size_t n)
{
    auto s = w.makeStream(core, numCores, seed);
    std::vector<MemRef> v;
    v.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        v.push_back(s->next());
    return v;
}

TEST(Workloads, PaperSuiteHasElevenApplications)
{
    EXPECT_EQ(paperWorkloads().size(), 11u);
}

TEST(Workloads, FindWorkloadRoundTripsEveryName)
{
    for (const Workload *w : paperWorkloads()) {
        EXPECT_EQ(findWorkload(w->name()), w) << w->name();
    }
    EXPECT_EQ(findWorkload("nonexistent"), nullptr);
}

TEST(Workloads, EveryAppDeclaresAPaperClass)
{
    for (const Workload *w : paperWorkloads()) {
        EXPECT_GE(w->paperClass(), 1) << w->name();
        EXPECT_LE(w->paperClass(), 3) << w->name();
    }
}

TEST(Workloads, Table61BinningIsComplete)
{
    // Table 6.1: Class 1 = {fft, fmm, cholesky, fluidanimate},
    // Class 2 = {barnes, lu, radix, radiosity},
    // Class 3 = {blackscholes, streamcluster, raytrace}.
    EXPECT_EQ(workloadsOfClass(1).size(), 4u);
    EXPECT_EQ(workloadsOfClass(2).size(), 4u);
    EXPECT_EQ(workloadsOfClass(3).size(), 3u);
}

TEST(Workloads, StreamsAreDeterministicPerSeed)
{
    const Workload *w = findWorkload("barnes");
    ASSERT_NE(w, nullptr);
    const auto a = collect(*w, 0, 16, 99, 5000);
    const auto b = collect(*w, 0, 16, 99, 5000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].write, b[i].write);
        EXPECT_EQ(a[i].gap, b[i].gap);
    }
}

TEST(Workloads, DifferentSeedsProduceDifferentStreams)
{
    const Workload *w = findWorkload("barnes");
    const auto a = collect(*w, 0, 16, 1, 2000);
    const auto b = collect(*w, 0, 16, 2, 2000);
    std::size_t same = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        same += a[i].addr == b[i].addr;
    EXPECT_LT(same, a.size() / 2);
}

TEST(Workloads, DifferentCoresUseDisjointPrivateRegions)
{
    const Workload *w = findWorkload("lu");
    const auto a = collect(*w, 0, 16, 7, 8000);
    const auto b = collect(*w, 5, 16, 7, 8000);

    std::set<Addr> aPriv, bPriv;
    for (const auto &r : a)
        if (r.addr < SyntheticStream::kSharedBase)
            aPriv.insert(r.addr / 64);
    for (const auto &r : b)
        if (r.addr < SyntheticStream::kSharedBase)
            bPriv.insert(r.addr / 64);

    ASSERT_FALSE(aPriv.empty());
    ASSERT_FALSE(bPriv.empty());
    for (Addr l : aPriv)
        EXPECT_EQ(bPriv.count(l), 0u);
}

TEST(Workloads, SharedRegionIsActuallyShared)
{
    const Workload *w = findWorkload("barnes"); // high-sharing Class 2
    const auto a = collect(*w, 0, 16, 7, 30000);
    const auto b = collect(*w, 3, 16, 7, 30000);

    std::set<Addr> aSh, bSh;
    for (const auto &r : a)
        if (r.addr >= SyntheticStream::kSharedBase)
            aSh.insert(r.addr / 64);
    for (const auto &r : b)
        if (r.addr >= SyntheticStream::kSharedBase)
            bSh.insert(r.addr / 64);

    std::size_t common = 0;
    for (Addr l : aSh)
        common += bSh.count(l);
    EXPECT_GT(common, 0u);
}

TEST(Workloads, GapsStayWithinTheProfileBounds)
{
    for (const Workload *w : paperWorkloads()) {
        const auto refs = collect(*w, 1, 16, 3, 4000);
        for (const auto &r : refs) {
            EXPECT_GE(r.gap, 1u) << w->name();
            EXPECT_LE(r.gap, 64u) << w->name();
        }
    }
}

TEST(Workloads, AddressesAreInDeclaredRegions)
{
    for (const Workload *w : paperWorkloads()) {
        const auto refs = collect(*w, 2, 16, 11, 4000);
        for (const auto &r : refs) {
            const bool priv = r.addr >= SyntheticStream::kPrivateBase &&
                              r.addr < SyntheticStream::kSharedBase;
            const bool shared = r.addr >= SyntheticStream::kSharedBase &&
                                r.addr < Core::kCodeBase;
            EXPECT_TRUE(priv || shared)
                << w->name() << " addr " << std::hex << r.addr;
        }
    }
}

// ---------------------------------------------------------------------
// Binning: every application must measure into its Table 6.1 class.
// This is the calibration contract of the workload substitution
// (DESIGN.md §2) — if it breaks, the class-wise figures are meaningless.
// ---------------------------------------------------------------------

class BinningTest : public ::testing::TestWithParam<const Workload *>
{
};

TEST_P(BinningTest, AppMeasuresIntoItsPaperClass)
{
    const Workload *w = GetParam();
    // Default thresholds: the classifier is calibrated at these stream
    // lengths (shorter runs overweight cold-start write-backs).
    const BinningMeasurement m = measureBinning(*w);
    EXPECT_EQ(m.measuredClass, w->paperClass()) << w->name();
}

INSTANTIATE_TEST_SUITE_P(
    PaperApps, BinningTest, ::testing::ValuesIn(paperWorkloads()),
    [](const ::testing::TestParamInfo<const Workload *> &info) {
        return std::string(info.param->name());
    });

// Micro workloads keep their analytic guarantees.

TEST(MicroWorkloads, HammerTouchesExactlyOneLinePerCore)
{
    HammerWorkload w;
    const auto refs = collect(w, 0, 4, 5, 1000);
    std::set<Addr> lines;
    for (const auto &r : refs)
        lines.insert(r.addr / 64);
    EXPECT_EQ(lines.size(), 1u);
}

TEST(MicroWorkloads, StreamNeverRevisitsALine)
{
    StreamWorkload w(1 << 20, 0.2);
    const auto refs = collect(w, 0, 4, 5, 4000);
    std::set<Addr> lines;
    for (const auto &r : refs)
        EXPECT_TRUE(lines.insert(r.addr / 64).second);
}

TEST(MicroWorkloads, UniformStaysInItsRegion)
{
    const std::uint64_t bytes = 64 * 1024;
    UniformWorkload w(bytes, 0.5);
    const auto refs0 = collect(w, 0, 4, 5, 4000);
    Addr lo = ~Addr{0}, hi = 0;
    for (const auto &r : refs0) {
        lo = std::min(lo, r.addr);
        hi = std::max(hi, r.addr);
    }
    EXPECT_LT(hi - lo, bytes);
}

TEST(MicroWorkloads, PingPongAlternatesWritesAcrossCores)
{
    PingPongWorkload w(4);
    const auto refs = collect(w, 0, 2, 5, 1000);
    std::size_t writes = 0;
    for (const auto &r : refs)
        writes += r.write;
    EXPECT_GT(writes, 0u);
    EXPECT_LT(writes, refs.size());
}

TEST(MicroWorkloads, AnalyticMicrosIgnoreSeedAndCoreCount)
{
    // The determinism contract of the analytic micros (micro.hh): the
    // stream is a function of the constructor parameters and the core
    // id only — seed and numCores are deliberately ignored, so two
    // runs differing only in those are bit-identical.
    const PingPongWorkload pp(4);
    const HammerWorkload hm;
    for (const Workload *w : {static_cast<const Workload *>(&pp),
                              static_cast<const Workload *>(&hm)}) {
        const auto a = collect(*w, 1, 4, 1, 500);
        const auto b = collect(*w, 1, 16, 999, 500);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].addr, b[i].addr) << w->name();
            EXPECT_EQ(a[i].write, b[i].write) << w->name();
            EXPECT_EQ(a[i].gap, b[i].gap) << w->name();
        }
    }
}

// ---------------------------------------------------------------------
// WorkloadMethod registry invariants
// ---------------------------------------------------------------------

/** A minimal named workload for registry collision tests. */
class NamedStub : public Workload
{
  public:
    explicit NamedStub(const char *n) : n_(n) {}
    const char *name() const override { return n_; }
    int paperClass() const override { return 0; }
    std::unique_ptr<CoreStream>
    makeStream(CoreId, std::uint32_t, std::uint64_t) const override
    {
        return nullptr;
    }

  private:
    const char *n_;
};

void
registerNamedTwice()
{
    WorkloadRegistry reg;
    const NamedStub w("stub");
    reg.registerNamed(&w);
    reg.registerNamed(&w);
}

void
registerMethodsTwice()
{
    WorkloadRegistry reg;
    registerMicroMethods(reg);
    registerMicroMethods(reg);
}

void
registerNamedOverMethod()
{
    WorkloadRegistry reg;
    registerAggMethod(reg);
    const NamedStub w("agg");
    reg.registerNamed(&w);
}

TEST(WorkloadRegistryDeathTest, DuplicateRegistrationIsFatal)
{
    EXPECT_EXIT(registerNamedTwice(), ::testing::ExitedWithCode(1),
                "duplicate registration of 'stub'");
    EXPECT_EXIT(registerMethodsTwice(), ::testing::ExitedWithCode(1),
                "duplicate registration of 'micro.uniform'");
    // Named workloads and methods share one namespace.
    EXPECT_EXIT(registerNamedOverMethod(), ::testing::ExitedWithCode(1),
                "duplicate registration of 'agg'");
}

TEST(WorkloadRegistry, EveryMethodRoundTripsItsCanonicalSpec)
{
    const WorkloadRegistry &reg = workloadRegistry();
    const std::vector<std::string> methods = reg.methodNames();
    ASSERT_FALSE(methods.empty());
    for (const std::string &m : methods) {
        // The bare method name resolves to its all-defaults instance,
        // with every parameter explicit in the canonical spec.
        ResolvedWorkload bare;
        std::string err;
        ASSERT_TRUE(reg.resolve(m, bare, err)) << m << ": " << err;
        EXPECT_EQ(bare.keyApp, m);
        EXPECT_FALSE(bare.keyParams.empty()) << m;
        EXPECT_EQ(bare.spec, m + ":" + bare.keyParams);
        // spec -> parse -> spec is a fixed point, onto the same cached
        // instance (pointer identity matters to the sweep workers).
        ResolvedWorkload again;
        ASSERT_TRUE(reg.resolve(bare.spec, again, err)) << err;
        EXPECT_EQ(again.spec, bare.spec);
        EXPECT_EQ(again.workload, bare.workload);
        // The instance reports the canonical spec as its identity.
        EXPECT_EQ(bare.workload->spec(), bare.spec);
        EXPECT_EQ(std::string(bare.workload->name()), bare.spec);
    }
}

TEST(WorkloadRegistry, LegacyNamesResolveWithoutKeyParams)
{
    const WorkloadRegistry &reg = workloadRegistry();
    for (const Workload *w : paperWorkloads()) {
        ResolvedWorkload rw;
        std::string err;
        ASSERT_TRUE(reg.resolve(w->name(), rw, err)) << err;
        EXPECT_EQ(rw.workload, w);
        EXPECT_EQ(rw.spec, w->name());
        EXPECT_EQ(rw.keyParams, "") << w->name();
    }
}

TEST(WorkloadRegistry, RejectsMalformedSpecsWithDiagnostics)
{
    const WorkloadRegistry &reg = workloadRegistry();
    ResolvedWorkload rw;
    std::string err;
    EXPECT_FALSE(reg.resolve("nosuchmethod:x=1", rw, err));
    EXPECT_FALSE(reg.resolve("agg:bogus=1", rw, err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
    EXPECT_FALSE(reg.resolve("agg:skew=2.5", rw, err)); // out of range
    EXPECT_FALSE(reg.resolve("agg:tables=half", rw, err)); // bad enum
    EXPECT_FALSE(reg.resolve("agg:gap=1,gap=2", rw, err)); // duplicate
    EXPECT_FALSE(reg.resolve("fft:x=1", rw, err)); // named + params
}

// ---------------------------------------------------------------------
// Statistical invariants of the server-class families
// ---------------------------------------------------------------------

TEST(AggWorkload, PartitionedTablesNeverShareNorWriteBackMore)
{
    const Workload *sh =
        findWorkload("agg:tables=shared,groups=256,in=32768");
    const Workload *pt =
        findWorkload("agg:tables=part,groups=256,in=32768");
    ASSERT_NE(sh, nullptr);
    ASSERT_NE(pt, nullptr);

    // Structurally: shared tables overlap across cores, partitioned
    // tables are disjoint.
    const auto sharedLines = [](const Workload &w, CoreId c) {
        std::set<Addr> lines;
        for (const auto &r : collect(w, c, 4, 7, 4000))
            if (r.addr >= SyntheticStream::kSharedBase)
                lines.insert(r.addr / 64);
        return lines;
    };
    const auto s0 = sharedLines(*sh, 0), s1 = sharedLines(*sh, 1);
    std::size_t common = 0;
    for (Addr l : s0)
        common += s1.count(l);
    EXPECT_GT(common, 0u);
    const auto p0 = sharedLines(*pt, 0), p1 = sharedLines(*pt, 1);
    ASSERT_FALSE(p0.empty());
    for (Addr l : p0)
        EXPECT_EQ(p1.count(l), 0u);

    // End to end: partitioning never induces more sharer-driven
    // traffic — L2 misses (invalidation refills) and L3 writes
    // (ownership-transfer write-backs) stay at or below the shared run.
    SimParams sim;
    sim.refsPerCore = 6000;
    sim.seed = 1;
    const MachineConfig cfg = MachineConfig::paperSram(4);
    const RunResult rs = runOnce(cfg, *sh, sim);
    const RunResult rp = runOnce(cfg, *pt, sim);
    EXPECT_LE(rp.counts.l3Writes, rs.counts.l3Writes);
    EXPECT_LE(rp.counts.l2Misses, rs.counts.l2Misses);
}

TEST(ServeWorkload, LatencyPercentilesAreMonotoneInArrivalRate)
{
    const Workload *lo =
        findWorkload("serve:rps=2e5,ws=4096,data=65536");
    const Workload *hi =
        findWorkload("serve:rps=2e7,ws=4096,data=65536");
    ASSERT_NE(lo, nullptr);
    ASSERT_NE(hi, nullptr);

    SimParams sim;
    sim.refsPerCore = 4000;
    sim.seed = 1;
    const MachineConfig cfg = MachineConfig::paperSram(4);
    const RunResult rl = runOnce(cfg, *lo, sim);
    const RunResult rh = runOnce(cfg, *hi, sim);
    ASSERT_GT(rl.requests, 0.0);
    ASSERT_GT(rh.requests, 0.0);

    // The ladder is monotone within each run...
    EXPECT_GT(rl.reqP50Us, 0.0);
    EXPECT_LE(rl.reqP50Us, rl.reqP95Us);
    EXPECT_LE(rl.reqP95Us, rl.reqP99Us);
    EXPECT_GT(rh.reqP50Us, 0.0);
    EXPECT_LE(rh.reqP50Us, rh.reqP95Us);
    EXPECT_LE(rh.reqP95Us, rh.reqP99Us);
    // ...and pointwise monotone in offered load: a 100x higher arrival
    // rate can only push every percentile up (open-loop queueing).
    EXPECT_LE(rl.reqP50Us, rh.reqP50Us);
    EXPECT_LE(rl.reqP95Us, rh.reqP95Us);
    EXPECT_LE(rl.reqP99Us, rh.reqP99Us);
}

} // namespace
} // namespace refrint::test
