/**
 * @file
 * Unit tests for the torus network model: wrap-around distances,
 * message accounting, latency composition.
 */

#include <gtest/gtest.h>

#include "net/torus.hh"

namespace refrint::test
{

namespace
{
struct NetFixture
{
    StatGroup stats{"net"};
    TorusNetwork net{4, 2, 4, stats}; // 4x4, 2 cyc/hop, 4 cyc data tax
};
} // namespace

TEST(Torus, SelfDistanceIsZero)
{
    NetFixture f;
    for (std::uint32_t n = 0; n < 16; ++n)
        EXPECT_EQ(f.net.hops(n, n), 0u);
}

TEST(Torus, NeighbourDistance)
{
    NetFixture f;
    EXPECT_EQ(f.net.hops(0, 1), 1u);  // +x
    EXPECT_EQ(f.net.hops(0, 4), 1u);  // +y
    EXPECT_EQ(f.net.hops(5, 6), 1u);
}

TEST(Torus, WrapAroundShortcut)
{
    NetFixture f;
    // Node 0 (0,0) to node 3 (3,0): wrap gives 1 hop, not 3.
    EXPECT_EQ(f.net.hops(0, 3), 1u);
    // (0,0) to (0,3): wrap in y.
    EXPECT_EQ(f.net.hops(0, 12), 1u);
    // Opposite corner (2,2) from (0,0) is the diameter: 2+2 = 4 hops.
    EXPECT_EQ(f.net.hops(0, 10), 4u);
}

TEST(Torus, DistanceIsSymmetric)
{
    NetFixture f;
    for (std::uint32_t a = 0; a < 16; ++a) {
        for (std::uint32_t b = 0; b < 16; ++b)
            EXPECT_EQ(f.net.hops(a, b), f.net.hops(b, a));
    }
}

TEST(Torus, DiameterBound)
{
    NetFixture f;
    for (std::uint32_t a = 0; a < 16; ++a) {
        for (std::uint32_t b = 0; b < 16; ++b)
            EXPECT_LE(f.net.hops(a, b), 4u); // 2 * floor(4/2)
    }
}

TEST(Torus, ControlLatencyIsHopsTimesHopLatency)
{
    NetFixture f;
    EXPECT_EQ(f.net.latencyOf(0, 10, MsgClass::Control), 8u);
    EXPECT_EQ(f.net.latencyOf(0, 0, MsgClass::Control), 0u);
}

TEST(Torus, DataPaysSerialization)
{
    NetFixture f;
    EXPECT_EQ(f.net.latencyOf(0, 1, MsgClass::Data), 2u + 4u);
    // Even a local (0-hop) data transfer pays the serialization tax.
    EXPECT_EQ(f.net.latencyOf(3, 3, MsgClass::Data), 4u);
}

TEST(Torus, TraverseAccumulatesCounters)
{
    NetFixture f;
    f.net.traverse(0, 10, MsgClass::Control); // 4 hops
    f.net.traverse(0, 1, MsgClass::Data);     // 1 hop
    EXPECT_EQ(f.net.totalMessages(), 2u);
    EXPECT_EQ(f.net.dataMessages(), 1u);
    EXPECT_EQ(f.net.totalHops(), 5u);
}

TEST(Torus, TraverseMatchesLatencyOf)
{
    NetFixture f;
    for (std::uint32_t a : {0u, 3u, 9u, 15u}) {
        for (std::uint32_t b : {0u, 5u, 12u}) {
            EXPECT_EQ(f.net.traverse(a, b, MsgClass::Data),
                      f.net.latencyOf(a, b, MsgClass::Data));
        }
    }
}

TEST(Torus, TwoByTwoTorus)
{
    StatGroup sg{"net"};
    TorusNetwork net(2, 1, 0, sg);
    EXPECT_EQ(net.numNodes(), 4u);
    EXPECT_EQ(net.hops(0, 3), 2u);
    EXPECT_EQ(net.hops(0, 1), 1u);
}

} // namespace refrint::test
