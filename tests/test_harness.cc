/**
 * @file
 * Tests for the experiment harness: the Table 5.4 sweep definition,
 * run-result normalization, the sweep result cache round-trip, and the
 * averaging used by the figure renderers.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "harness/report.hh"
#include "harness/sweep.hh"
#include "test_util.hh"
#include "workload/micro.hh"

namespace refrint::test
{

namespace
{

// ---------------------------------------------------------------------
// Sweep definition (Table 5.4)
// ---------------------------------------------------------------------

TEST(SweepSpecTest, PaperSweepHasFourteenPolicies)
{
    const auto pols = paperPolicySweep();
    ASSERT_EQ(pols.size(), 14u);

    // Periodic first (plot order), then Refrint.
    for (std::size_t i = 0; i < 7; ++i)
        EXPECT_EQ(pols[i].time, TimePolicy::Periodic) << i;
    for (std::size_t i = 7; i < 14; ++i)
        EXPECT_EQ(pols[i].time, TimePolicy::Refrint) << i;
}

TEST(SweepSpecTest, DataPoliciesMatchTable54)
{
    const auto pols = paperDataPolicies(TimePolicy::Refrint);
    ASSERT_EQ(pols.size(), 7u);
    EXPECT_EQ(pols[0].name(), "R.all");
    EXPECT_EQ(pols[1].name(), "R.valid");
    EXPECT_EQ(pols[2].name(), "R.dirty");
    EXPECT_EQ(pols[3].name(), "R.WB(4,4)");
    EXPECT_EQ(pols[4].name(), "R.WB(8,8)");
    EXPECT_EQ(pols[5].name(), "R.WB(16,16)");
    EXPECT_EQ(pols[6].name(), "R.WB(32,32)");
}

TEST(SweepSpecTest, PaperRetentionsAre50_100_200us)
{
    const auto rets = paperRetentions();
    ASSERT_EQ(rets.size(), 3u);
    EXPECT_EQ(rets[0], usToTicks(50.0));
    EXPECT_EQ(rets[1], usToTicks(100.0));
    EXPECT_EQ(rets[2], usToTicks(200.0));
}

TEST(SweepSpecTest, PolicyNamesRoundTripThroughParse)
{
    for (const RefreshPolicy &p : paperPolicySweep()) {
        const RefreshPolicy q = parsePolicy(p.name());
        EXPECT_EQ(q.name(), p.name());
        EXPECT_EQ(q.time, p.time);
        EXPECT_EQ(q.data, p.data);
        EXPECT_EQ(q.n, p.n);
        EXPECT_EQ(q.m, p.m);
    }
}

TEST(SweepSpecTest, FinalizeFillsPaperDefaults)
{
    SweepSpec spec;
    spec.finalize();
    EXPECT_EQ(spec.apps.size(), 11u);
    EXPECT_EQ(spec.retentions.size(), 3u);
    EXPECT_EQ(spec.policies.size(), 14u);
}

// ---------------------------------------------------------------------
// Normalization
// ---------------------------------------------------------------------

TEST(NormalizeTest, SramBaselineNormalizesToUnity)
{
    UniformWorkload app(16 * 1024, 0.3);
    const RunResult base = runTiny(tinyConfig(CellTech::Sram), app, 3000);

    const NormalizedResult n = normalize(base, base);
    EXPECT_DOUBLE_EQ(n.time, 1.0);
    EXPECT_DOUBLE_EQ(n.memEnergy, 1.0);
    EXPECT_DOUBLE_EQ(n.sysEnergy, 1.0);
    EXPECT_NEAR(n.l1 + n.l2 + n.l3 + n.dram, 1.0, 1e-9);
}

TEST(NormalizeTest, StackedViewsAreConsistent)
{
    UniformWorkload app(16 * 1024, 0.3);
    const RunResult base = runTiny(tinyConfig(CellTech::Sram), app, 3000);
    const RunResult run = runTiny(
        tinyEdram(RefreshPolicy::refrint(DataPolicy::Valid)), app, 3000);

    const NormalizedResult n = normalize(run, base);
    // Fig. 6.1's stack (l1+l2+l3+dram) and Fig. 6.2's stack
    // (dynamic+leakage+refresh+dram) both sum to memEnergy.
    EXPECT_NEAR(n.l1 + n.l2 + n.l3 + n.dram, n.memEnergy, 1e-9);
    EXPECT_NEAR(n.dynamic + n.leakage + n.refresh + n.dram, n.memEnergy,
                1e-9);
}

TEST(NormalizeTest, EdramValidUsesLessMemoryEnergyThanSram)
{
    // The basic eDRAM premise at tiny scale: quarter leakage beats the
    // added refresh energy.
    UniformWorkload app(16 * 1024, 0.3);
    const RunResult base = runTiny(tinyConfig(CellTech::Sram), app, 3000);
    const RunResult run = runTiny(
        tinyEdram(RefreshPolicy::refrint(DataPolicy::Valid)), app, 3000);

    const NormalizedResult n = normalize(run, base);
    EXPECT_LT(n.memEnergy, 1.0);
}

// ---------------------------------------------------------------------
// Sweep caching
// ---------------------------------------------------------------------

TEST(SweepCacheTest, CacheRoundTripsResults)
{
    UniformWorkload app(8 * 1024, 0.3);
    SweepSpec spec;
    spec.apps = {&app};
    spec.retentions = {usToTicks(50.0)};
    spec.policies = {RefreshPolicy::refrint(DataPolicy::Valid),
                     RefreshPolicy::periodic(DataPolicy::All)};
    spec.sim.refsPerCore = 1500;

    const std::string path = ::testing::TempDir() + "/sweep_cache_rt.csv";
    std::remove(path.c_str());

    SweepSpec spec2 = spec; // runSweep consumes the spec
    const SweepResult fresh = runSweep(std::move(spec), path);
    const SweepResult cached = runSweep(std::move(spec2), path);

    ASSERT_EQ(fresh.raw.size(), cached.raw.size());
    ASSERT_EQ(fresh.normalized.size(), cached.normalized.size());
    for (std::size_t i = 0; i < fresh.normalized.size(); ++i) {
        const auto &a = fresh.normalized[i];
        const auto &b = cached.normalized[i];
        EXPECT_EQ(a.app, b.app);
        EXPECT_EQ(a.config, b.config);
        // The CSV cache stores ~7 significant digits.
        EXPECT_NEAR(a.time, b.time, 1e-5);
        EXPECT_NEAR(a.memEnergy, b.memEnergy, 1e-5);
        EXPECT_NEAR(a.sysEnergy, b.sysEnergy, 1e-5);
        EXPECT_NEAR(a.refresh, b.refresh, 1e-5);
    }
    std::remove(path.c_str());
}

TEST(SweepCacheTest, CacheKeyedByRefsPerCore)
{
    // Different simulation sizes must not alias in the cache.
    UniformWorkload app(8 * 1024, 0.3);
    const std::string path = ::testing::TempDir() + "/sweep_cache_key.csv";
    std::remove(path.c_str());

    auto mkSpec = [&](std::uint64_t refs) {
        SweepSpec s;
        s.apps = {&app};
        s.retentions = {usToTicks(50.0)};
        s.policies = {RefreshPolicy::refrint(DataPolicy::Valid)};
        s.sim.refsPerCore = refs;
        return s;
    };

    const SweepResult small = runSweep(mkSpec(500), path);
    const SweepResult large = runSweep(mkSpec(2000), path);

    EXPECT_NE(small.raw[0].execTicks, large.raw[0].execTicks);
    std::remove(path.c_str());
}

TEST(SweepCacheTest, AverageFiltersByConfigRetentionAndApp)
{
    UniformWorkload app(8 * 1024, 0.3);
    SweepSpec spec;
    spec.apps = {&app};
    spec.retentions = {usToTicks(50.0), usToTicks(200.0)};
    spec.policies = {RefreshPolicy::refrint(DataPolicy::Valid)};
    // Long enough that the run spans several 200 us retention periods —
    // shorter runs see no refresh at all and the retentions tie.
    spec.sim.refsPerCore = 60'000;

    const SweepResult res = runSweep(std::move(spec), "");

    const double at50 = res.average(50.0, "R.valid", {},
                                    &NormalizedResult::memEnergy);
    const double at200 = res.average(200.0, "R.valid", {},
                                     &NormalizedResult::memEnergy);
    EXPECT_GT(at50, 0.0);
    EXPECT_GT(at200, 0.0);
    // Longer retention -> fewer refreshes -> less energy.
    EXPECT_LT(at200, at50);

    // find() locates the exact row.
    const NormalizedResult *row =
        res.find("micro.uniform", 50.0, "R.valid");
    ASSERT_NE(row, nullptr);
    EXPECT_NEAR(row->memEnergy, at50, 1e-12);
    EXPECT_EQ(res.find("micro.uniform", 50.0, "R.dirty"), nullptr);
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

TEST(ReportTest, ClassAppNamesMatchTable61)
{
    const auto c1 = classAppNames(1);
    const auto c2 = classAppNames(2);
    const auto c3 = classAppNames(3);
    EXPECT_EQ(c1.size(), 4u);
    EXPECT_EQ(c2.size(), 4u);
    EXPECT_EQ(c3.size(), 3u);
    // Class 0 is the "no filter" convention used by the renderers.
    EXPECT_TRUE(classAppNames(0).empty());
}

TEST(ReportTest, FigurePrintersProduceOutput)
{
    UniformWorkload app(8 * 1024, 0.3);
    SweepSpec spec;
    spec.apps = {&app};
    spec.retentions = {usToTicks(50.0)};
    spec.policies = paperPolicySweep();
    spec.sim.refsPerCore = 1000;
    const SweepResult res = runSweep(std::move(spec), "");

    const std::string path = ::testing::TempDir() + "/report_out.txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    printFig61(res, f);
    printFig62(res, 0, f);
    printFig63(res, 0, f);
    printFig64(res, 0, f);
    printHeadline(res, f);
    const long sz = std::ftell(f);
    std::fclose(f);
    std::remove(path.c_str());

    EXPECT_GT(sz, 500); // every figure printed a block
}

} // namespace
} // namespace refrint::test
