/**
 * @file
 * Unit tests for the stats registry.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace refrint::test
{

TEST(Stats, CounterBasics)
{
    StatGroup g("x");
    Counter &c = g.counter("hits");
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, SameNameSameCounter)
{
    StatGroup g("x");
    Counter &a = g.counter("n");
    Counter &b = g.counter("n");
    a.inc(3);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 3u);
}

TEST(Stats, CounterAddressesStableAcrossInsertions)
{
    StatGroup g("x");
    Counter &a = g.counter("a");
    a.inc();
    for (int i = 0; i < 100; ++i)
        g.counter("c" + std::to_string(i));
    a.inc();
    EXPECT_EQ(g.counter("a").value(), 2u);
}

TEST(Stats, AccumBasics)
{
    StatGroup g("x");
    Accum &a = g.accum("energy");
    a.add(1.5);
    a.add(2.5);
    EXPECT_DOUBLE_EQ(a.value(), 4.0);
}

TEST(Stats, DumpPrefixesNames)
{
    StatGroup g("l3.bank0");
    g.counter("reads").inc(7);
    g.accum("joules").add(0.5);
    std::map<std::string, double> out;
    g.dump(out);
    EXPECT_DOUBLE_EQ(out.at("l3.bank0.reads"), 7.0);
    EXPECT_DOUBLE_EQ(out.at("l3.bank0.joules"), 0.5);
}

TEST(Stats, ResetAllZeroesEverything)
{
    StatGroup g("x");
    g.counter("a").inc(9);
    g.accum("b").add(3.0);
    g.resetAll();
    EXPECT_EQ(g.counter("a").value(), 0u);
    EXPECT_DOUBLE_EQ(g.accum("b").value(), 0.0);
}

} // namespace refrint::test
