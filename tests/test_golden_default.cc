/**
 * @file
 * Golden byte-identity tests: the default MachineConfig must reproduce
 * the pre-refactor (commit 7c48afe) machine exactly.  The committed
 * golden files under tests/golden/ were captured from that revision:
 *
 *  - sweep_cache_default.csv  cache rows of a 2-app (fft, lu) sweep at
 *                             4000 refs/core (keys byte-identical; the
 *                             header is v6, rows are unchanged v5 rows)
 *  - sweep_headline.txt       the sweep's printHeadline output
 *  - thermal_study.txt        the thermal-study table (fft, 50 us,
 *                             ambients 45/65/85)
 *
 * Keys and formatted output must match byte for byte.  Numeric row
 * payloads are compared at 1e-9 relative tolerance: counts are exact
 * integers in double, and energies may legitimately differ in the last
 * ulp between build types (FP contraction), which %.17g would surface.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/sweep.hh"

namespace refrint
{
namespace
{

#ifndef REFRINT_TEST_GOLDEN_DIR
#define REFRINT_TEST_GOLDEN_DIR "tests/golden"
#endif

std::string
goldenPath(const char *file)
{
    return std::string(REFRINT_TEST_GOLDEN_DIR) + "/" + file;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** The sweep spec whose output the goldens pin. */
SweepSpec
goldenSpec()
{
    // The goldens encode fixed parameters; neutralize environment
    // overrides a developer (or another CI step) may have exported.
    unsetenv("REFRINT_REFS");
    unsetenv("REFRINT_APPS");
    unsetenv("REFRINT_JOBS");
    SweepSpec spec;
    spec.apps = {findWorkload("fft"), findWorkload("lu")};
    spec.sim.refsPerCore = 4000;
    spec.sim.seed = 1;
    spec.jobs = 4; // results are bit-identical to jobs=1
    return spec;
}

/** Parse "key;v0,v1,..." rows of a cache file (skips the header). */
std::map<std::string, std::vector<double>>
parseCache(const std::string &text)
{
    std::map<std::string, std::vector<double>> rows;
    std::stringstream ss(text);
    std::string line;
    while (std::getline(ss, line)) {
        const auto sep = line.find(';');
        if (sep == std::string::npos)
            continue; // version header
        std::vector<double> vals;
        std::stringstream vs(line.substr(sep + 1));
        std::string tok;
        while (std::getline(vs, tok, ','))
            vals.push_back(std::strtod(tok.c_str(), nullptr));
        rows[line.substr(0, sep)] = vals;
    }
    return rows;
}

/** Render @p print into a string via a temporary stream. */
template <typename Fn>
std::string
capture(Fn print)
{
    std::FILE *f = std::tmpfile();
    EXPECT_NE(f, nullptr);
    print(f);
    std::fflush(f);
    const long n = std::ftell(f);
    std::rewind(f);
    std::string out(static_cast<std::size_t>(n), '\0');
    const std::size_t got =
        std::fread(out.data(), 1, out.size(), f);
    std::fclose(f);
    EXPECT_EQ(got, out.size());
    return out;
}

TEST(GoldenDefault, SweepRowSetIsByteIdenticalToPreRefactor)
{
    const std::string cachePath = "golden_test_cache.csv";
    std::remove(cachePath.c_str());

    SweepSpec spec = goldenSpec();
    const SweepResult s = runSweep(spec, cachePath);
    EXPECT_EQ(s.raw.size(), 2u * 43u);

    const auto want =
        parseCache(readFile(goldenPath("sweep_cache_default.csv")));
    const auto got = parseCache(readFile(cachePath));
    ASSERT_FALSE(want.empty());
    ASSERT_EQ(got.size(), want.size());

    for (const auto &[key, goldenVals] : want) {
        const auto it = got.find(key);
        ASSERT_NE(it, got.end()) << "missing legacy row key: " << key;
        // The committed golden is a pre-v7 capture; fields appended
        // since (the request-latency block) must read back as zero for
        // these legacy workloads, so compare against a zero-padded
        // golden row.
        ASSERT_GE(it->second.size(), goldenVals.size()) << key;
        std::vector<double> wantVals = goldenVals;
        wantVals.resize(it->second.size(), 0.0);
        for (std::size_t i = 0; i < wantVals.size(); ++i) {
            const double w = wantVals[i], g = it->second[i];
            EXPECT_NEAR(g, w, std::abs(w) * 1e-9 + 1e-12)
                << key << " field " << i;
        }
    }

    // The headline report over those rows, byte for byte.
    const std::string headline =
        capture([&](std::FILE *f) { printHeadline(s, f); });
    EXPECT_EQ(headline, readFile(goldenPath("sweep_headline.txt")));

    std::remove(cachePath.c_str());
}

TEST(GoldenDefault, ThermalStudyOutputIsByteIdenticalToPreRefactor)
{
    SweepSpec spec = goldenSpec();
    spec.apps = {findWorkload("fft")};
    spec.retentions = {usToTicks(50.0)};
    spec.policies = {RefreshPolicy::periodic(DataPolicy::All),
                     RefreshPolicy::refrint(DataPolicy::WB, 32, 32)};
    spec.ambients = {45.0, 65.0, 85.0};
    const SweepResult s = runSweep(spec, /*cachePath=*/"");

    const std::string table = capture(
        [&](std::FILE *f) { printThermalStudy(s, "fft", 50.0, f); });
    EXPECT_EQ(table, readFile(goldenPath("thermal_study.txt")));
}

} // namespace
} // namespace refrint
