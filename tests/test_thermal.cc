/**
 * @file
 * Thermal subsystem tests: the lumped-RC node physics, the retention
 * response curve, end-to-end retention safety under activity-driven
 * temperature swings (the decayed counter must stay 0 across retention
 * rescales), the headline thermal result (Periodic-All pays for heat,
 * Refrint WB(32,32) strictly less), and determinism/caching of the
 * ambient sweep axis.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "harness/sweep.hh"
#include "test_util.hh"
#include "thermal/thermal_model.hh"
#include "workload/micro.hh"

namespace refrint::test
{

namespace
{

// ---------------------------------------------------------------------
// ThermalNode: lumped-RC physics
// ---------------------------------------------------------------------

TEST(ThermalNode, ConvergesToSteadyState)
{
    ThermalNode node(45.0, 40.0, 2.5e-6); // tau = 100 us
    EXPECT_DOUBLE_EQ(node.tempC(), 45.0);
    EXPECT_DOUBLE_EQ(node.steadyStateC(0.25), 55.0);

    double prev = node.tempC();
    for (int i = 0; i < 200; ++i) { // 200 x 10 us = 20 tau
        node.step(0.25, 10e-6);
        EXPECT_GE(node.tempC(), prev); // monotone rise under const power
        EXPECT_LE(node.tempC(), 55.0 + 1e-9); // no Euler overshoot
        prev = node.tempC();
    }
    EXPECT_NEAR(node.tempC(), 55.0, 1e-6);
}

TEST(ThermalNode, ZeroPowerStaysAtAmbient)
{
    ThermalNode node(45.0, 40.0, 2.5e-6);
    for (int i = 0; i < 50; ++i)
        node.step(0.0, 10e-6);
    EXPECT_DOUBLE_EQ(node.tempC(), 45.0);
}

TEST(ThermalNode, CoolsBackAfterPowerBurst)
{
    ThermalNode node(45.0, 40.0, 2.5e-6);
    for (int i = 0; i < 100; ++i)
        node.step(0.5, 10e-6);
    const double hot = node.tempC();
    EXPECT_GT(hot, 60.0);
    for (int i = 0; i < 1000; ++i)
        node.step(0.0, 10e-6);
    EXPECT_NEAR(node.tempC(), 45.0, 1e-3);
}

TEST(ThermalNode, DeterministicStepSequence)
{
    ThermalNode a(45.0, 40.0, 2.5e-6), b(45.0, 40.0, 2.5e-6);
    for (int i = 0; i < 100; ++i) {
        const double p = 0.1 + 0.01 * (i % 7);
        EXPECT_DOUBLE_EQ(a.step(p, 10e-6), b.step(p, 10e-6));
    }
}

// ---------------------------------------------------------------------
// ThermalResponse: the Arrhenius-style retention curve
// ---------------------------------------------------------------------

TEST(ThermalResponse, NominalAtReferenceTemperature)
{
    const ThermalResponse r;
    EXPECT_DOUBLE_EQ(r.factorAt(r.refTempC), 1.0);
}

TEST(ThermalResponse, HalvesPerHalvingCelsius)
{
    const ThermalResponse r;
    EXPECT_NEAR(r.factorAt(r.refTempC + r.halvingCelsius), 0.5, 1e-12);
    EXPECT_NEAR(r.factorAt(r.refTempC - r.halvingCelsius), 2.0, 1e-12);
    EXPECT_NEAR(r.factorAt(r.refTempC + 2 * r.halvingCelsius), 0.25,
                1e-12);
}

TEST(ThermalResponse, ClampsAtBothEnds)
{
    const ThermalResponse r;
    EXPECT_DOUBLE_EQ(r.factorAt(1000.0), r.minFactor);
    EXPECT_DOUBLE_EQ(r.factorAt(-1000.0), r.maxFactor);
}

TEST(ThermalResponse, RetentionParamsScaleHook)
{
    RetentionParams p{usToTicks(50.0), kTickNever, {}, {}};
    EXPECT_EQ(p.cellRetentionAt(p.thermal.refTempC), p.cellRetention);
    EXPECT_EQ(p.cellRetentionAt(p.thermal.refTempC +
                                p.thermal.halvingCelsius),
              p.cellRetention / 2);
}

// ---------------------------------------------------------------------
// End to end: thermal runs on the tiny machine
// ---------------------------------------------------------------------

HierarchyConfig
tinyThermal(const RefreshPolicy &pol, double ambientC)
{
    HierarchyConfig c = tinyEdram(pol);
    c.thermal.enabled = true;
    c.thermal.ambientC = ambientC;
    return c;
}

TEST(ThermalRun, TemperatureRisesAboveAmbientAndIsRecorded)
{
    UniformWorkload app(16 * 1024, 0.3);
    const RunResult r = runTiny(
        tinyThermal(RefreshPolicy::periodic(DataPolicy::All), 85.0), app,
        20'000);
    EXPECT_DOUBLE_EQ(r.ambientC, 85.0);
    EXPECT_GT(r.maxTempC, 85.0); // leakage + activity heat the die
    EXPECT_LT(r.maxTempC, 120.0);
}

TEST(ThermalRun, DisabledRunRecordsNoThermalState)
{
    UniformWorkload app(16 * 1024, 0.3);
    const RunResult r = runTiny(
        tinyEdram(RefreshPolicy::periodic(DataPolicy::All)), app, 5'000);
    EXPECT_DOUBLE_EQ(r.ambientC, 0.0);
    EXPECT_DOUBLE_EQ(r.maxTempC, 0.0);
}

/** Retention safety: across every rescale the engines may never let a
 *  line decay (the decayed counter is the canary, and the hierarchy
 *  invariant checker verifies expiries directly). */
TEST(ThermalRun, NoLineDecaysAcrossRetentionRescales)
{
    UniformWorkload app(16 * 1024, 0.4);
    for (const RefreshPolicy &pol :
         {RefreshPolicy::periodic(DataPolicy::All),
          RefreshPolicy::refrint(DataPolicy::All),
          RefreshPolicy::refrint(DataPolicy::Valid),
          RefreshPolicy::refrint(DataPolicy::WB, 4, 4)}) {
        for (double ambient : {45.0, 85.0}) {
            SCOPED_TRACE(pol.name() + " @ " + std::to_string(ambient));
            SimParams sim;
            sim.refsPerCore = 15'000;
            sim.seed = 7;
            CmpSystem sys(tinyThermal(pol, ambient), app, sim);
            sys.run();
            EXPECT_EQ(sys.hierarchy().counts().decayedHits, 0u);
            sys.hierarchy().checkInvariants(sys.execTicks());
            ASSERT_NE(sys.hierarchy().thermal(), nullptr);
            EXPECT_GT(sys.hierarchy().thermal()->epochs(), 0u);
        }
    }
}

/** The headline thermal scenario: a hot die costs Periodic-All real
 *  refresh energy, while Refrint WB(32,32) degrades strictly less. */
TEST(ThermalRun, HotDieHurtsPeriodicAllMoreThanRefrintWB)
{
    UniformWorkload app(16 * 1024, 0.3);
    const std::uint64_t refs = 20'000;

    const RunResult p45 = runTiny(
        tinyThermal(RefreshPolicy::periodic(DataPolicy::All), 45.0), app,
        refs);
    const RunResult p85 = runTiny(
        tinyThermal(RefreshPolicy::periodic(DataPolicy::All), 85.0), app,
        refs);
    const RunResult w45 = runTiny(
        tinyThermal(RefreshPolicy::refrint(DataPolicy::WB, 32, 32), 45.0),
        app, refs);
    const RunResult w85 = runTiny(
        tinyThermal(RefreshPolicy::refrint(DataPolicy::WB, 32, 32), 85.0),
        app, refs);

    // P.all refresh energy rises with ambient temperature.
    EXPECT_GT(p85.energy.refresh, p45.energy.refresh);
    EXPECT_GT(p85.counts.l3Refreshes, p45.counts.l3Refreshes);

    // ... and R.WB(32,32) degrades strictly less, absolutely and
    // relatively.
    const double pDelta = p85.energy.refresh - p45.energy.refresh;
    const double wDelta = w85.energy.refresh - w45.energy.refresh;
    EXPECT_LT(wDelta, pDelta);
    EXPECT_LT(w85.energy.refresh, p85.energy.refresh);
    const double pMemRatio =
        p85.energy.memTotal() / p45.energy.memTotal();
    const double wMemRatio =
        w85.energy.memTotal() / w45.energy.memTotal();
    EXPECT_LT(wMemRatio, pMemRatio);
}

TEST(ThermalRun, DeterministicAcrossRepeats)
{
    UniformWorkload app(16 * 1024, 0.3);
    const HierarchyConfig cfg =
        tinyThermal(RefreshPolicy::refrint(DataPolicy::Valid), 65.0);
    const RunResult a = runTiny(cfg, app, 10'000);
    const RunResult b = runTiny(cfg, app, 10'000);
    EXPECT_EQ(a.execTicks, b.execTicks);
    EXPECT_DOUBLE_EQ(a.maxTempC, b.maxTempC);
    EXPECT_EQ(a.counts.l3Refreshes, b.counts.l3Refreshes);
    EXPECT_DOUBLE_EQ(a.energy.refresh, b.energy.refresh);
}

TEST(ThermalRun, SramMachineRejectsThermal)
{
    HierarchyConfig cfg = tinyConfig(CellTech::Sram);
    cfg.thermal.enabled = true;
    EventQueue eq;
    EXPECT_DEATH(Hierarchy(cfg, eq), "thermal model requires an eDRAM");
}

// ---------------------------------------------------------------------
// The ambient sweep axis: determinism, caching, key isolation
// ---------------------------------------------------------------------

SweepSpec
thermalSpec(const Workload &a1, const Workload &a2)
{
    SweepSpec spec;
    spec.apps = {&a1, &a2};
    spec.retentions = {usToTicks(50.0)};
    spec.policies = {RefreshPolicy::periodic(DataPolicy::All),
                     RefreshPolicy::refrint(DataPolicy::WB, 4, 4)};
    spec.ambients = {45.0, 85.0};
    spec.sim.refsPerCore = 1200;
    return spec;
}

TEST(ThermalSweep, ParallelBitIdenticalToSerial)
{
    UniformWorkload u(8 * 1024, 0.3);
    StreamWorkload s(32 * 1024, 0.2);

    SweepSpec serial = thermalSpec(u, s);
    serial.jobs = 1;
    SweepSpec parallel = thermalSpec(u, s);
    parallel.jobs = 4;

    const SweepResult a = runSweep(std::move(serial), "");
    const SweepResult b = runSweep(std::move(parallel), "");

    // 2 apps x (1 SRAM + 2 ambients x 1 retention x 2 policies)
    ASSERT_EQ(a.raw.size(), 10u);
    ASSERT_EQ(a.raw.size(), b.raw.size());
    for (std::size_t i = 0; i < a.raw.size(); ++i) {
        SCOPED_TRACE(a.raw[i].app + "/" + a.raw[i].config);
        EXPECT_EQ(a.raw[i].execTicks, b.raw[i].execTicks);
        EXPECT_EQ(a.raw[i].ambientC, b.raw[i].ambientC);
        EXPECT_EQ(a.raw[i].maxTempC, b.raw[i].maxTempC);
        EXPECT_EQ(a.raw[i].energy.refresh, b.raw[i].energy.refresh);
        EXPECT_EQ(a.raw[i].counts.l3Refreshes,
                  b.raw[i].counts.l3Refreshes);
    }
}

TEST(ThermalSweep, CacheRoundTripsThermalFieldsExactly)
{
    UniformWorkload u(8 * 1024, 0.3);
    StreamWorkload s(32 * 1024, 0.2);
    const std::string path = ::testing::TempDir() + "/thermal_rt.csv";
    std::remove(path.c_str());

    SweepSpec first = thermalSpec(u, s);
    SweepSpec second = thermalSpec(u, s);
    const SweepResult fresh = runSweep(std::move(first), path);
    EXPECT_EQ(fresh.simulations, fresh.raw.size());
    const SweepResult warm = runSweep(std::move(second), path);
    EXPECT_EQ(warm.simulations, 0u);

    ASSERT_EQ(fresh.raw.size(), warm.raw.size());
    for (std::size_t i = 0; i < fresh.raw.size(); ++i) {
        SCOPED_TRACE(fresh.raw[i].app + "/" + fresh.raw[i].config);
        EXPECT_EQ(fresh.raw[i].execTicks, warm.raw[i].execTicks);
        EXPECT_EQ(fresh.raw[i].ambientC, warm.raw[i].ambientC);
        EXPECT_EQ(fresh.raw[i].maxTempC, warm.raw[i].maxTempC);
        EXPECT_EQ(fresh.raw[i].energy.refresh,
                  warm.raw[i].energy.refresh);
    }
    std::remove(path.c_str());
}

/** Thermal rows must never collide with (or satisfy) isothermal rows
 *  in the shared cache: after both sweeps ran, each repeat is warm. */
TEST(ThermalSweep, KeysDoNotCollideWithIsothermalRows)
{
    UniformWorkload u(8 * 1024, 0.3);
    StreamWorkload s(32 * 1024, 0.2);
    const std::string path = ::testing::TempDir() + "/thermal_keys.csv";
    std::remove(path.c_str());

    SweepSpec iso = thermalSpec(u, s);
    iso.ambients.clear(); // same points, thermal disabled
    const SweepResult isoFresh = runSweep(SweepSpec(iso), path);
    EXPECT_EQ(isoFresh.simulations, isoFresh.raw.size());

    // The thermal sweep shares only the 2 SRAM baselines (which are
    // never thermal); its 8 eDRAM points must all simulate fresh.
    SweepSpec thermal = thermalSpec(u, s);
    const SweepResult thFresh = runSweep(SweepSpec(thermal), path);
    EXPECT_EQ(thFresh.simulations, 8u);

    // Both repeats fully warm, and the isothermal rows were untouched
    // by the thermal sweep (distinct keys, same file).
    const SweepResult isoWarm = runSweep(SweepSpec(iso), path);
    EXPECT_EQ(isoWarm.simulations, 0u);
    const SweepResult thWarm = runSweep(SweepSpec(thermal), path);
    EXPECT_EQ(thWarm.simulations, 0u);
    for (std::size_t i = 0; i < isoFresh.raw.size(); ++i) {
        EXPECT_EQ(isoFresh.raw[i].execTicks, isoWarm.raw[i].execTicks);
        EXPECT_EQ(isoFresh.raw[i].maxTempC, isoWarm.raw[i].maxTempC);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace refrint::test
