/**
 * @file
 * Integration tests for refresh engines operating *through* the coherent
 * hierarchy: refresh-triggered write-backs and invalidations must keep
 * the directory exact, preserve inclusion, and never let live data decay
 * (decayed_hits == 0 is the core soundness property of the whole
 * simulator).
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "harness/sweep.hh"
#include "test_util.hh"

namespace refrint::test
{

namespace
{

constexpr Addr kA = 0x10000;

/** Hierarchy + queue harness for one eDRAM policy. */
struct RefreshHarness
{
    explicit RefreshHarness(const RefreshPolicy &pol,
                            Tick retention = usToTicks(5.0))
        : hier(tinyEdram(pol, retention), eq)
    {
        hier.start(0);
    }

    /** Run engine events up to @p until, then return that time. */
    Tick
    advanceTo(Tick until)
    {
        eq.run(until);
        return until;
    }

    Tick
    access(CoreId c, Addr a, AccessType t, Tick at)
    {
        return hier.access(c, a, t, at);
    }

    CacheLine *
    l3Line(Addr a)
    {
        return hier.l3Bank(hier.bankOf(a)).array.lookup(a);
    }

    std::uint64_t
    stat(const char *name)
    {
        std::map<std::string, double> m;
        hier.dumpStats(m);
        auto it = m.find(name);
        return it == m.end() ? 0 : static_cast<std::uint64_t>(it->second);
    }

    EventQueue eq;
    Hierarchy hier;
};

// ---------------------------------------------------------------------
// Per-policy line lifecycle at the L3
// ---------------------------------------------------------------------

TEST(HierarchyRefresh, ValidPolicyKeepsCleanLinesAliveForever)
{
    RefreshHarness h(RefreshPolicy::refrint(DataPolicy::Valid));
    h.access(0, kA, AccessType::Load, 0);

    h.advanceTo(usToTicks(50.0)); // 10 retention periods

    ASSERT_NE(h.l3Line(kA), nullptr);
    EXPECT_TRUE(h.l3Line(kA)->valid());
    EXPECT_EQ(h.stat("l3.decayed_hits"), 0u);
    EXPECT_GE(h.stat("refresh.l3.line_refreshes"), 9u);
}

TEST(HierarchyRefresh, DirtyPolicyInvalidatesCleanLinesAtFirstDeadline)
{
    RefreshHarness h(RefreshPolicy::refrint(DataPolicy::Dirty));
    h.access(0, kA, AccessType::Load, 0); // clean at L3

    h.advanceTo(usToTicks(6.0)); // one sentry deadline passes

    EXPECT_EQ(h.l3Line(kA), nullptr);
    EXPECT_GE(h.stat("refresh.l3.refresh_invalidations"), 1u);
}

TEST(HierarchyRefresh, DirtyPolicyRefreshesDirtyLines)
{
    RefreshHarness h(RefreshPolicy::refrint(DataPolicy::Dirty));
    Tick t = h.access(0, kA, AccessType::Store, 0);
    t = h.access(1, kA, AccessType::Load, t + 1); // L3 copy becomes dirty
    ASSERT_TRUE(h.l3Line(kA)->dirty);

    h.advanceTo(usToTicks(20.0));

    ASSERT_NE(h.l3Line(kA), nullptr);
    EXPECT_TRUE(h.l3Line(kA)->dirty);
}

TEST(HierarchyRefresh, WBPolicyWritesBackDirtyLineAfterNRefreshes)
{
    RefreshHarness h(RefreshPolicy::refrint(DataPolicy::WB, 2, 1));
    Tick t = h.access(0, kA, AccessType::Store, 0);
    h.access(1, kA, AccessType::Load, t + 1); // dirty L3 copy
    ASSERT_TRUE(h.l3Line(kA)->dirty);
    const auto w = h.hier.dram().writes();

    // n=2 refreshes happen at the first two sentry deadlines; the third
    // visit writes the line back.  Sentry retention ~4.5 us.
    h.advanceTo(usToTicks(14.5));

    ASSERT_NE(h.l3Line(kA), nullptr);
    EXPECT_FALSE(h.l3Line(kA)->dirty);
    EXPECT_TRUE(h.l3Line(kA)->valid());
    EXPECT_EQ(h.hier.dram().writes(), w + 1);
    EXPECT_EQ(h.stat("refresh.l3.refresh_writebacks"), 1u);
}

TEST(HierarchyRefresh, WBPolicyInvalidatesCleanLineAfterMMoreRefreshes)
{
    RefreshHarness h(RefreshPolicy::refrint(DataPolicy::WB, 2, 1));
    Tick t = h.access(0, kA, AccessType::Store, 0);
    h.access(1, kA, AccessType::Load, t + 1);

    // Lifecycle: 2 refreshes, writeback (count=m=1), 1 refresh,
    // invalidate — all within ~6 sentry periods.
    h.advanceTo(usToTicks(28.0));

    EXPECT_EQ(h.l3Line(kA), nullptr);
    EXPECT_EQ(h.stat("refresh.l3.refresh_writebacks"), 1u);
    EXPECT_GE(h.stat("refresh.l3.refresh_invalidations"), 1u);
}

TEST(HierarchyRefresh, AccessesReachingL3ResetTheWBCount)
{
    // Ping-pong stores between two cores force every access to the
    // directory, so the L3 line is touched (and its WB Count reset)
    // more often than the sentry period: it must survive indefinitely.
    RefreshHarness h(RefreshPolicy::refrint(DataPolicy::WB, 1, 1));
    Tick t = 0;
    for (int i = 0; i < 40; ++i) {
        t = usToTicks(2.0) * i;
        h.advanceTo(t);
        h.access(i % 2, kA, AccessType::Store, t);
    }

    ASSERT_NE(h.l3Line(kA), nullptr);
    EXPECT_TRUE(h.l3Line(kA)->valid());
    EXPECT_EQ(h.stat("refresh.l3.refresh_invalidations"), 0u);
}

TEST(HierarchyRefresh, L1HitsAreInvisibleToTheL3WBCount)
{
    // The same line accessed only through L1 hits looks idle to the
    // shared cache: its Count runs out and the line is repeatedly
    // invalidated and re-fetched.  This is the low-visibility behaviour
    // the paper's Class 3 analysis describes (§3.3) — the reason Valid
    // beats WB(n,m) for low-footprint, low-sharing applications.
    RefreshHarness h(RefreshPolicy::refrint(DataPolicy::WB, 8, 2));
    Tick t = h.access(0, kA, AccessType::Load, 0);
    for (int i = 1; i <= 40; ++i) {
        t = usToTicks(2.0) * i;
        h.advanceTo(t);
        h.access(0, kA, AccessType::Load, t); // DL1 hit after refill
    }

    EXPECT_GE(h.stat("refresh.l3.refresh_invalidations"), 1u);
    EXPECT_GE(h.stat("l3.misses"), 2u); // initial miss + re-fetches
}

TEST(HierarchyRefresh, RefreshInvalidationBackInvalidatesUpperLevels)
{
    // Clean L3 line under R.dirty is invalidated at its first deadline;
    // the private L2/L1 copies must be dropped with it (inclusion).
    RefreshHarness h(RefreshPolicy::refrint(DataPolicy::Dirty));
    h.access(0, kA, AccessType::Load, 0);
    ASSERT_NE(h.hier.l2(0).array.lookup(kA), nullptr);
    ASSERT_NE(h.hier.dl1(0).array.lookup(kA), nullptr);

    h.advanceTo(usToTicks(6.0));

    EXPECT_EQ(h.l3Line(kA), nullptr);
    EXPECT_EQ(h.hier.l2(0).array.lookup(kA), nullptr);
    EXPECT_EQ(h.hier.dl1(0).array.lookup(kA), nullptr);
    h.hier.checkInvariants(usToTicks(6.0));
}

TEST(HierarchyRefresh, RefreshInvalidationRescuesModifiedDataToDram)
{
    // Under R.dirty the *clean* L3 copy of a line whose owner holds it
    // Modified is invalidated; the modified data must reach DRAM, not
    // be lost.
    RefreshHarness h(RefreshPolicy::refrint(DataPolicy::Dirty));
    h.access(0, kA, AccessType::Store, 0); // L3 clean, c0 owns Modified
    ASSERT_FALSE(h.l3Line(kA)->dirty);
    const auto w = h.hier.dram().writes();

    h.advanceTo(usToTicks(6.0));

    EXPECT_EQ(h.l3Line(kA), nullptr);
    EXPECT_EQ(h.hier.l2(0).array.lookup(kA), nullptr);
    EXPECT_GE(h.hier.dram().writes(), w + 1);
    h.hier.checkInvariants(usToTicks(6.0));
}

TEST(HierarchyRefresh, L2RefreshWritebackDowngradesModifiedToExclusive)
{
    // The upper levels run the pinned Valid policy by default, which
    // never writes back; pin them to WB to exercise the L2 path.
    HierarchyConfig cfg =
        tinyEdram(RefreshPolicy::refrint(DataPolicy::WB, 1, 8));
    cfg.setUpperDataPolicy(DataPolicy::WB);
    EventQueue eq;
    Hierarchy hier(cfg, eq);
    hier.start(0);

    hier.access(0, kA, AccessType::Store, 0);
    CacheLine *l2l = hier.l2(0).array.lookup(kA);
    ASSERT_NE(l2l, nullptr);
    ASSERT_EQ(l2l->state, Mesi::Modified);

    // First sentry deadline refreshes (n=1); second writes back.
    eq.run(usToTicks(9.8));

    l2l = hier.l2(0).array.lookup(kA);
    ASSERT_NE(l2l, nullptr);
    EXPECT_EQ(l2l->state, Mesi::Exclusive);
    EXPECT_FALSE(l2l->dirty);
    CacheLine *l3l = hier.l3Bank(hier.bankOf(kA)).array.lookup(kA);
    ASSERT_NE(l3l, nullptr);
    EXPECT_TRUE(l3l->dirty);  // data landed in L3
    EXPECT_EQ(l3l->owner, 0); // directory still records the owner
    hier.checkInvariants(usToTicks(9.8));
}

TEST(HierarchyRefresh, AutoRefreshSuppressesExplicitRefreshesOfHotLines)
{
    RefreshHarness h(RefreshPolicy::refrint(DataPolicy::Valid));

    // Ping-pong stores: every access goes through the directory and
    // auto-refreshes the L3 line + sentry, so the engine should almost
    // never refresh it explicitly (§3.1).
    Tick t = 0;
    for (int i = 0; i < 100; ++i) {
        h.advanceTo(t);
        h.access(i % 2, kA, AccessType::Store, t);
        t += usToTicks(1.0);
    }

    EXPECT_LE(h.stat("refresh.l3.line_refreshes"), 2u);
}

TEST(HierarchyRefresh, AllPolicyRefreshesInvalidLinesToo)
{
    RefreshHarness h(RefreshPolicy::refrint(DataPolicy::All));
    // No accesses at all: every line in the L3 is invalid, yet All
    // refreshes each of them every sentry period.
    h.advanceTo(usToTicks(10.0));

    const std::uint64_t l3Lines = 4 * 512; // 4 banks x 512 lines
    EXPECT_GE(h.stat("refresh.l3.line_refreshes"), l3Lines);
}

TEST(HierarchyRefresh, ValidPolicySkipsInvalidLines)
{
    RefreshHarness h(RefreshPolicy::refrint(DataPolicy::Valid));
    h.advanceTo(usToTicks(10.0));

    EXPECT_EQ(h.stat("refresh.l3.line_refreshes"), 0u);
}

// ---------------------------------------------------------------------
// Periodic engine behaviour through the hierarchy
// ---------------------------------------------------------------------

TEST(HierarchyRefresh, PeriodicAllBlocksTheBank)
{
    RefreshHarness h(RefreshPolicy::periodic(DataPolicy::All));
    h.advanceTo(usToTicks(5.0)); // one full retention period

    // Every line in every bank was visited in blocking bursts.
    EXPECT_GT(h.hier.l3Bank(0).busyUntil, 0u);
    const std::uint64_t l3Lines = 4 * 512;
    EXPECT_GE(h.stat("refresh.l3.line_refreshes"), l3Lines);
}

TEST(HierarchyRefresh, PeriodicEagerlyRefreshesAccessedLinesRefrintDoesNot)
{
    // A line that is regularly *accessed* needs no explicit refresh at
    // all — Refrint exploits this (the access renews the sentry), while
    // Periodic keeps refreshing it on schedule regardless (§3.1: "a
    // periodic scheme ends up eagerly refreshing lines, possibly right
    // after the line has been accessed").
    RefreshHarness p(RefreshPolicy::periodic(DataPolicy::Valid));
    RefreshHarness r(RefreshPolicy::refrint(DataPolicy::Valid));

    Tick t = 0;
    for (int i = 0; i < 20; ++i) {
        t = usToTicks(2.5) * i; // shorter than the 4.5 us sentry period
        p.advanceTo(t);
        r.advanceTo(t);
        p.access(i % 2, kA, AccessType::Store, t);
        r.access(i % 2, kA, AccessType::Store, t);
    }

    EXPECT_GT(p.stat("refresh.l3.line_refreshes"),
              r.stat("refresh.l3.line_refreshes"));
    EXPECT_EQ(p.stat("l3.decayed_hits"), 0u);
    EXPECT_EQ(r.stat("l3.decayed_hits"), 0u);
}

TEST(HierarchyRefresh, SentryMarginCostsRefrintRefreshesOnIdleData)
{
    // The flip side (§4.1): on *completely idle* data Refrint refreshes
    // slightly more often than Periodic because the sentry bit leads the
    // data cells by the conservative margin — the paper quantifies the
    // lost opportunity as margin/retention (32% at a 16K-line bank).
    RefreshHarness p(RefreshPolicy::periodic(DataPolicy::Valid));
    RefreshHarness r(RefreshPolicy::refrint(DataPolicy::Valid));
    p.access(0, kA, AccessType::Load, 0);
    r.access(0, kA, AccessType::Load, 0);

    p.advanceTo(usToTicks(50.0));
    r.advanceTo(usToTicks(50.0));

    // tiny L3 bank: 512 lines -> sentry period 5 us - 512 ticks; over
    // 50 us that is 11 visits vs. Periodic's 10.
    EXPECT_GE(r.stat("refresh.l3.line_refreshes"),
              p.stat("refresh.l3.line_refreshes"));
    EXPECT_EQ(p.stat("l3.decayed_hits"), 0u);
    EXPECT_EQ(r.stat("l3.decayed_hits"), 0u);
}

// ---------------------------------------------------------------------
// Property: no policy ever lets live data decay, and the coherence
// invariants survive refresh-triggered surgery.  Sweeps the full policy
// cross product of Table 5.4 on a sharing-heavy micro workload.
// ---------------------------------------------------------------------

class PolicySoundness
    : public ::testing::TestWithParam<RefreshPolicy>
{
};

TEST_P(PolicySoundness, NoDecayedHitsAndInvariantsHold)
{
    const RefreshPolicy pol = GetParam();
    HierarchyConfig cfg = tinyEdram(pol, usToTicks(5.0));
    EventQueue eq;
    Hierarchy hier(cfg, eq);
    hier.start(0);
    Prng rng(42);

    Tick t = 0;
    for (int i = 0; i < 3000; ++i) {
        const auto c = static_cast<CoreId>(rng.next() % 4);
        const Addr a = (rng.next() % 512) * 64; // spans all 4 banks
        const bool wr = rng.uniform() < 0.3;
        eq.run(t); // let refresh engines catch up
        t = hier.access(c, a,
                        wr ? AccessType::Store : AccessType::Load, t) +
            10;
    }
    eq.run(t);

    std::map<std::string, double> m;
    hier.dumpStats(m);
    EXPECT_EQ(m["l3.decayed_hits"], 0.0) << pol.name();
    EXPECT_EQ(m["l2.decayed_hits"], 0.0) << pol.name();
    EXPECT_EQ(m["dl1.decayed_hits"], 0.0) << pol.name();
    EXPECT_EQ(m["il1.decayed_hits"], 0.0) << pol.name();
    hier.checkInvariants(t);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicySoundness,
    ::testing::ValuesIn(paperPolicySweep()),
    [](const ::testing::TestParamInfo<RefreshPolicy> &info) {
        std::string n = info.param.name();
        for (char &c : n)
            if (c == '.' || c == '(' || c == ')' || c == ',')
                c = '_';
        return n;
    });

} // namespace
} // namespace refrint::test
