#include "test_util.hh"

namespace refrint::test
{

HierarchyConfig
tinyConfig(CellTech tech)
{
    HierarchyConfig c;
    c.numCores = 4;
    c.numBanks = 4;
    c.torusDim = 2;
    c.il1 = CacheGeometry{2 * 1024, 2, 64, 1};
    c.dl1 = CacheGeometry{2 * 1024, 4, 64, 1};
    c.l2 = CacheGeometry{8 * 1024, 8, 64, 2};
    // 4 banks -> shift 2; hashed index like the paper machine's L3
    c.l3Bank = CacheGeometry{32 * 1024, 8, 64, 4, 2, true};
    c.tech = tech;
    c.retention = RetentionParams{usToTicks(5.0), kTickNever, {}, {}};
    c.l1Engine = EngineGeometry{1, 4, 16};
    c.l2Engine = EngineGeometry{4, 4, 32};
    c.l3Engine = EngineGeometry{16, 4, 64};
    return c;
}

HierarchyConfig
tinyEdram(const RefreshPolicy &policy, Tick retention)
{
    HierarchyConfig c = tinyConfig(CellTech::Edram);
    c.l3Policy = policy;
    c.retention.cellRetention = retention;
    return c;
}

RunResult
runTiny(const HierarchyConfig &cfg, const Workload &app,
        std::uint64_t refs, std::uint64_t seed)
{
    SimParams sim;
    sim.refsPerCore = refs;
    sim.seed = seed;
    return runOnce(cfg, app, sim);
}

} // namespace refrint::test
