#include "test_util.hh"

namespace refrint::test
{

MachineConfig
tinyConfig(CellTech tech, std::uint32_t cores)
{
    // Scale the paper machine down through the descriptors: small
    // caches and a short retention so refresh activity shows up within
    // microseconds.  Line size and latencies match the paper config.
    MachineConfig c = MachineConfig::paper(cores);
    c.setTech(tech);
    c.il1().geom = CacheGeometry{2 * 1024, 2, 64, 1};
    c.dl1().geom = CacheGeometry{2 * 1024, 4, 64, 1};
    c.l2().geom = CacheGeometry{8 * 1024, 8, 64, 2};
    // Hashed index like the paper machine's LLC; the bank-select shift
    // is already derived from the bank count by the factory.
    c.llc().geom.sizeBytes = 32 * 1024;
    c.retention = RetentionParams{usToTicks(5.0), kTickNever, {}, {}};
    return c;
}

MachineConfig
tinyEdram(const RefreshPolicy &policy, Tick retention)
{
    MachineConfig c = tinyConfig(CellTech::Edram);
    c.setLlcPolicy(policy);
    c.retention.cellRetention = retention;
    return c;
}

RunResult
runTiny(const MachineConfig &cfg, const Workload &app,
        std::uint64_t refs, std::uint64_t seed)
{
    SimParams sim;
    sim.refsPerCore = refs;
    sim.seed = seed;
    return runOnce(cfg, app, sim);
}

} // namespace refrint::test
