/**
 * @file
 * Tests for trace capture/replay: file-format round trip, wrap-around
 * replay semantics, and the headline guarantee — replaying a recorded
 * trace through the simulator reproduces the original run exactly.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "test_util.hh"
#include "trace/trace.hh"
#include "workload/micro.hh"

namespace refrint::test
{

namespace
{

TEST(TraceTest, RecordCapturesTheRequestedShape)
{
    UniformWorkload app(16 * 1024, 0.3);
    const Trace t = recordTrace(app, 4, 500, 7);

    ASSERT_EQ(t.numCores(), 4u);
    EXPECT_EQ(t.totalRefs(), 2000u);
    for (const auto &v : t.perCore)
        EXPECT_EQ(v.size(), 500u);
}

TEST(TraceTest, FileRoundTripPreservesEveryReference)
{
    UniformWorkload app(16 * 1024, 0.4);
    const Trace t = recordTrace(app, 4, 300, 9);
    const std::string path = ::testing::TempDir() + "/trace_rt.txt";

    ASSERT_TRUE(saveTrace(t, path));
    const Trace u = loadTrace(path);
    std::remove(path.c_str());

    ASSERT_EQ(u.numCores(), t.numCores());
    for (std::uint32_t c = 0; c < t.numCores(); ++c) {
        ASSERT_EQ(u.perCore[c].size(), t.perCore[c].size());
        for (std::size_t i = 0; i < t.perCore[c].size(); ++i) {
            EXPECT_EQ(u.perCore[c][i].addr, t.perCore[c][i].addr);
            EXPECT_EQ(u.perCore[c][i].write, t.perCore[c][i].write);
            EXPECT_EQ(u.perCore[c][i].gap, t.perCore[c][i].gap);
        }
    }
}

TEST(TraceTest, ReplayWrapsAroundWhenExhausted)
{
    Trace t;
    t.perCore.resize(1);
    for (int i = 0; i < 3; ++i)
        t.perCore[0].push_back(
            MemRef{static_cast<Addr>(i * 64), false, 1});
    TraceWorkload w(std::move(t));

    auto s = w.makeStream(0, 1, 0);
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 3; ++i)
            EXPECT_EQ(s->next().addr, static_cast<Addr>(i * 64));
    }
}

TEST(TraceTest, RejectsMachineWithDifferentCoreCount)
{
    // Replaying a 2-core trace on any other machine width is a
    // different workload, not the recorded one: makeStream must fail
    // with a clear error instead of silently reusing or dropping
    // streams.
    UniformWorkload app(8 * 1024, 0.2);
    TraceWorkload w(recordTrace(app, 2, 100, 5));

    EXPECT_EXIT(w.makeStream(0, 4, 0), ::testing::ExitedWithCode(1),
                "records 2 cores but the machine has 4");
    EXPECT_EXIT(w.makeStream(0, 1, 0), ::testing::ExitedWithCode(1),
                "records 2 cores but the machine has 1");

    // The matching width keeps working.
    auto s0 = w.makeStream(0, 2, 0);
    ASSERT_NE(s0, nullptr);
}

TEST(TraceTest, RejectsReplayOnMismatchedCmpSystem)
{
    // End to end: a 4-core trace against an 8-core machine dies in
    // CmpSystem construction (the workload's makeStream rejects it).
    UniformWorkload app(8 * 1024, 0.2);
    TraceWorkload w(recordTrace(app, 4, 50, 5));
    const MachineConfig cfg =
        test::tinyConfig(CellTech::Edram, /*cores=*/8);
    SimParams sim;
    sim.refsPerCore = 50;
    EXPECT_EXIT(CmpSystem(cfg, w, sim), ::testing::ExitedWithCode(1),
                "records 4 cores but the machine has 8");
}

TEST(TraceTest, ReplayReproducesTheGeneratorRunExactly)
{
    // The contract that makes traces useful: simulating the recorded
    // trace is indistinguishable from simulating the generator.
    UniformWorkload app(16 * 1024, 0.3);
    const std::uint64_t refs = 2000;
    const std::uint64_t seed = 7;

    const HierarchyConfig cfg =
        tinyEdram(RefreshPolicy::refrint(DataPolicy::WB, 8, 8));
    const RunResult direct = runTiny(cfg, app, refs, seed);

    TraceWorkload replay(recordTrace(app, 4, refs, seed));
    const RunResult traced = runTiny(cfg, replay, refs, seed);

    EXPECT_EQ(traced.execTicks, direct.execTicks);
    EXPECT_EQ(traced.counts.l3Misses, direct.counts.l3Misses);
    EXPECT_EQ(traced.counts.dramAccesses, direct.counts.dramAccesses);
    EXPECT_EQ(traced.counts.l3Refreshes, direct.counts.l3Refreshes);
    EXPECT_DOUBLE_EQ(traced.energy.memTotal(), direct.energy.memTotal());
}

TEST(TraceTest, LoadRejectsGarbage)
{
    const std::string path = ::testing::TempDir() + "/trace_bad.txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace\n", f);
    std::fclose(f);

    EXPECT_EXIT(loadTrace(path), ::testing::ExitedWithCode(1),
                "refrint-trace");
    std::remove(path.c_str());
}

} // namespace
} // namespace refrint::test
