/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, tie-breaking,
 * client dispatch, run limits.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace refrint::test
{

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<Tick> fired;
    eq.scheduleFn(30, [&](Tick t) { fired.push_back(t); });
    eq.scheduleFn(10, [&](Tick t) { fired.push_back(t); });
    eq.scheduleFn(20, [&](Tick t) { fired.push_back(t); });
    eq.run();
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[0], 10u);
    EXPECT_EQ(fired[1], 20u);
    EXPECT_EQ(fired[2], 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.scheduleFn(5, [&order, i](Tick) { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesWithDispatch)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    eq.scheduleFn(42, [](Tick) {});
    eq.run();
    EXPECT_EQ(eq.now(), 42u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void(Tick)> chain = [&](Tick t) {
        if (++count < 5)
            eq.scheduleFn(t + 10, chain);
    };
    eq.scheduleFn(0, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunLimitStopsBeforeLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleFn(10, [&](Tick) { ++fired; });
    eq.scheduleFn(20, [&](Tick) { ++fired; });
    eq.scheduleFn(30, [&](Tick) { ++fired; });
    eq.run(20);
    EXPECT_EQ(fired, 2); // the tick-20 event still fires
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 3);
}

namespace
{
struct TagRecorder : EventClient
{
    std::vector<std::pair<Tick, std::uint64_t>> seen;
    void
    fire(Tick now, std::uint64_t tag) override
    {
        seen.emplace_back(now, tag);
    }
};
} // namespace

TEST(EventQueue, ClientDispatchCarriesTags)
{
    EventQueue eq;
    TagRecorder rec;
    eq.schedule(5, &rec, 111);
    eq.schedule(7, &rec, 222);
    eq.run();
    ASSERT_EQ(rec.seen.size(), 2u);
    EXPECT_EQ(rec.seen[0], (std::pair<Tick, std::uint64_t>{5, 111}));
    EXPECT_EQ(rec.seen[1], (std::pair<Tick, std::uint64_t>{7, 222}));
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
    eq.scheduleFn(1, [](Tick) {});
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ClearResets)
{
    EventQueue eq;
    eq.scheduleFn(10, [](Tick) {});
    eq.clear();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.scheduleFn(100, [](Tick) {});
    eq.run();
    EXPECT_DEATH(eq.scheduleFn(50, [](Tick) {}), "past");
}

} // namespace refrint::test
