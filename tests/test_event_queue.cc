/**
 * @file
 * Unit tests for the discrete-event kernel: ordering, tie-breaking,
 * client dispatch, run limits, cancellable handles, and a randomized
 * differential test against a reference stable-order model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/prng.hh"
#include "sim/event_queue.hh"

namespace refrint::test
{

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<Tick> fired;
    eq.scheduleFn(30, [&](Tick t) { fired.push_back(t); });
    eq.scheduleFn(10, [&](Tick t) { fired.push_back(t); });
    eq.scheduleFn(20, [&](Tick t) { fired.push_back(t); });
    eq.run();
    ASSERT_EQ(fired.size(), 3u);
    EXPECT_EQ(fired[0], 10u);
    EXPECT_EQ(fired[1], 20u);
    EXPECT_EQ(fired[2], 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.scheduleFn(5, [&order, i](Tick) { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesWithDispatch)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    eq.scheduleFn(42, [](Tick) {});
    eq.run();
    EXPECT_EQ(eq.now(), 42u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void(Tick)> chain = [&](Tick t) {
        if (++count < 5)
            eq.scheduleFn(t + 10, chain);
    };
    eq.scheduleFn(0, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunLimitStopsBeforeLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleFn(10, [&](Tick) { ++fired; });
    eq.scheduleFn(20, [&](Tick) { ++fired; });
    eq.scheduleFn(30, [&](Tick) { ++fired; });
    eq.run(20);
    EXPECT_EQ(fired, 2); // the tick-20 event still fires
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(fired, 3);
}

namespace
{
struct TagRecorder : EventClient
{
    std::vector<std::pair<Tick, std::uint64_t>> seen;
    void
    fire(Tick now, std::uint64_t tag) override
    {
        seen.emplace_back(now, tag);
    }
};
} // namespace

TEST(EventQueue, ClientDispatchCarriesTags)
{
    EventQueue eq;
    TagRecorder rec;
    eq.schedule(5, &rec, 111);
    eq.schedule(7, &rec, 222);
    eq.run();
    ASSERT_EQ(rec.seen.size(), 2u);
    EXPECT_EQ(rec.seen[0], (std::pair<Tick, std::uint64_t>{5, 111}));
    EXPECT_EQ(rec.seen[1], (std::pair<Tick, std::uint64_t>{7, 222}));
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
    eq.scheduleFn(1, [](Tick) {});
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ClearResets)
{
    EventQueue eq;
    eq.scheduleFn(10, [](Tick) {});
    eq.clear();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.scheduleFn(100, [](Tick) {});
    eq.run();
    EXPECT_DEATH(eq.scheduleFn(50, [](Tick) {}), "past");
}

// ---------------------------------------------------------------------
// 4-ary heap ordering under load
// ---------------------------------------------------------------------

TEST(EventQueue, SameTickFifoAcrossManyEventsAndKinds)
{
    // Hundreds of same-tick events, mixing one-shot fns, plain client
    // events and cancellable ones: dispatch must stay in scheduling
    // order across every internal path (near heap, fn slab, slots).
    EventQueue eq;
    std::vector<int> order;
    struct Rec : EventClient
    {
        std::vector<int> *order;
        void
        fire(Tick, std::uint64_t tag) override
        {
            order->push_back(static_cast<int>(tag));
        }
    };
    Rec rec;
    rec.order = &order;
    for (int i = 0; i < 300; ++i) {
        switch (i % 3) {
          case 0:
            eq.scheduleFn(7, [&order, i](Tick) { order.push_back(i); });
            break;
          case 1:
            eq.schedule(7, &rec, static_cast<std::uint64_t>(i));
            break;
          default:
            eq.scheduleCancellable(7, &rec,
                                   static_cast<std::uint64_t>(i));
            break;
        }
    }
    eq.run();
    ASSERT_EQ(order.size(), 300u);
    for (int i = 0; i < 300; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, FarFutureEventsInterleaveCorrectly)
{
    // Events far beyond the near/far split must still dispatch in
    // global (tick, seq) order with near events scheduled later.
    EventQueue eq;
    std::vector<Tick> fired;
    auto rec = [&](Tick t) { fired.push_back(t); };
    eq.scheduleFn(1'000'000, rec); // far band
    eq.scheduleFn(500'000, rec);   // far band
    eq.scheduleFn(3, rec);         // near heap
    eq.scheduleFn(0, [&](Tick t) {
        fired.push_back(t);
        // Scheduled mid-run: lands between the two far events.
        eq.scheduleFn(750'000, rec);
    });
    eq.run();
    ASSERT_EQ(fired.size(), 5u);
    EXPECT_EQ(fired, (std::vector<Tick>{0, 3, 500'000, 750'000,
                                        1'000'000}));
}

// ---------------------------------------------------------------------
// Cancellable handles
// ---------------------------------------------------------------------

namespace
{
struct CountingClient : EventClient
{
    int fired = 0;
    void fire(Tick, std::uint64_t) override { ++fired; }
};
} // namespace

TEST(EventQueue, CancelledHandleNeverFires)
{
    EventQueue eq;
    CountingClient c;
    EventHandle h = eq.scheduleCancellable(10, &c, 0);
    eq.schedule(20, &c, 0);
    EXPECT_EQ(eq.size(), 2u);
    EXPECT_TRUE(eq.cancel(h));
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(c.fired, 1); // only the un-cancelled event
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, CancelIsSingleShotAndSpentAfterFire)
{
    EventQueue eq;
    CountingClient c;
    EventHandle h = eq.scheduleCancellable(5, &c, 0);
    EXPECT_TRUE(eq.cancel(h));
    EXPECT_FALSE(eq.cancel(h)) << "second cancel must be a no-op";

    EventHandle h2 = eq.scheduleCancellable(6, &c, 0);
    eq.run();
    EXPECT_EQ(c.fired, 1);
    EXPECT_FALSE(eq.cancel(h2)) << "handle is spent once fired";

    EXPECT_FALSE(eq.cancel(EventHandle{})) << "inert default handle";
}

TEST(EventQueue, CancelledSlotReuseCannotAliasNewEvent)
{
    // Cancel an event, schedule a replacement (which recycles the
    // slot), and make sure the stale handle cannot kill the new event.
    EventQueue eq;
    CountingClient c;
    EventHandle stale = eq.scheduleCancellable(10, &c, 0);
    EXPECT_TRUE(eq.cancel(stale));
    EventHandle fresh = eq.scheduleCancellable(10, &c, 0);
    EXPECT_FALSE(eq.cancel(stale));
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(c.fired, 1);
    EXPECT_FALSE(eq.cancel(fresh));
}

TEST(EventQueue, CancelAfterClearIsSpent)
{
    // clear() resets the slot table; handles issued before it must be
    // inert afterwards (not index out of bounds, not kill new events).
    EventQueue eq;
    CountingClient c;
    EventHandle stale = eq.scheduleCancellable(10, &c, 0);
    eq.clear();
    EXPECT_FALSE(eq.cancel(stale));
    EventHandle fresh = eq.scheduleCancellable(10, &c, 0);
    EXPECT_FALSE(eq.cancel(stale));
    eq.run();
    EXPECT_EQ(c.fired, 1);
    EXPECT_FALSE(eq.cancel(fresh));
}

TEST(EventQueue, CancelDeepInFarBand)
{
    // Far-band entries are lazily deleted too: cancel a far event and
    // drain past its tick.
    EventQueue eq;
    CountingClient c;
    EventHandle far = eq.scheduleCancellable(900'000, &c, 0);
    eq.schedule(950'000, &c, 0);
    EXPECT_TRUE(eq.cancel(far));
    eq.run();
    EXPECT_EQ(c.fired, 1);
    EXPECT_EQ(eq.now(), 950'000u);
}

TEST(EventQueue, RunLimitBoundaryWithCancellations)
{
    EventQueue eq;
    CountingClient c;
    eq.schedule(10, &c, 0);
    EventHandle atLimit = eq.scheduleCancellable(20, &c, 0);
    eq.schedule(20, &c, 0);
    eq.schedule(21, &c, 0);
    EXPECT_TRUE(eq.cancel(atLimit));
    eq.run(20);
    EXPECT_EQ(c.fired, 2) << "tick-20 survivor fires, tick-21 waits";
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(c.fired, 3);
}

// ---------------------------------------------------------------------
// Randomized differential test: kernel order vs reference model
// ---------------------------------------------------------------------

TEST(EventQueue, DifferentialOrderAgainstReferenceModel)
{
    // A reference model of the kernel contract: dispatch strictly by
    // (tick, schedule order), cancelled entries silently gone.  Random
    // schedules span the near/far split and random cancellations hit
    // fired, pending and already-cancelled events.
    struct RefEvent
    {
        Tick when;
        std::uint64_t seq;
        int id;
    };

    Prng prng(1234, 7);
    for (int round = 0; round < 20; ++round) {
        EventQueue eq;
        std::vector<RefEvent> ref;
        std::vector<int> expect, got;
        std::vector<EventHandle> handles;
        std::vector<int> handleIds;
        std::uint64_t seq = 0;
        int nextId = 0;

        struct Rec : EventClient
        {
            std::vector<int> *got;
            void
            fire(Tick, std::uint64_t tag) override
            {
                got->push_back(static_cast<int>(tag));
            }
        };
        Rec rec;
        rec.got = &got;

        const int ops = 400;
        for (int i = 0; i < ops; ++i) {
            const std::uint32_t dice = prng.below(10);
            if (dice < 7 || handles.empty()) {
                // Schedule at a random tick spanning both bands.
                const Tick when = prng.below(2) == 0
                                      ? prng.below(1'000)
                                      : prng.below(2'000'000);
                const int id = nextId++;
                if (prng.below(2) == 0) {
                    eq.schedule(when, &rec,
                                static_cast<std::uint64_t>(id));
                    ref.push_back(RefEvent{when, seq++, id});
                } else {
                    handles.push_back(eq.scheduleCancellable(
                        when, &rec, static_cast<std::uint64_t>(id)));
                    handleIds.push_back(id);
                    ref.push_back(RefEvent{when, seq++, id});
                }
            } else {
                // Cancel a random handle (possibly already spent).
                const std::uint32_t pick =
                    prng.below(static_cast<std::uint32_t>(
                        handles.size()));
                if (eq.cancel(handles[pick])) {
                    const int id = handleIds[pick];
                    ref.erase(std::find_if(ref.begin(), ref.end(),
                                           [&](const RefEvent &e) {
                                               return e.id == id;
                                           }));
                }
                handles.erase(handles.begin() + pick);
                handleIds.erase(handleIds.begin() + pick);
            }
        }

        std::stable_sort(ref.begin(), ref.end(),
                         [](const RefEvent &a, const RefEvent &b) {
                             return a.when != b.when ? a.when < b.when
                                                     : a.seq < b.seq;
                         });
        for (const RefEvent &e : ref)
            expect.push_back(e.id);

        eq.run();
        EXPECT_EQ(got, expect) << "round " << round;
        EXPECT_TRUE(eq.empty());
    }
}

} // namespace refrint::test
