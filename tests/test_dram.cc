/**
 * @file
 * Unit tests for the DRAM model: latency, posted writes, channel
 * occupancy, untimed flush accounting.
 */

#include <gtest/gtest.h>

#include "dram/dram.hh"

namespace refrint::test
{

TEST(Dram, ReadLatency)
{
    StatGroup sg{"dram"};
    Dram d(40, 0, sg);
    EXPECT_EQ(d.read(100), 140u);
    EXPECT_EQ(d.reads(), 1u);
}

TEST(Dram, WritesArePosted)
{
    StatGroup sg{"dram"};
    Dram d(40, 0, sg);
    EXPECT_EQ(d.write(100), 100u) << "writer does not wait for the array";
    EXPECT_EQ(d.writes(), 1u);
}

TEST(Dram, ChannelGapSerializesBackToBackAccesses)
{
    StatGroup sg{"dram"};
    Dram d(40, 4, sg);
    EXPECT_EQ(d.read(100), 140u);
    // Second access at the same tick waits for the channel.
    EXPECT_EQ(d.read(100), 144u);
    EXPECT_EQ(d.read(100), 148u);
    // After the channel drains, no extra delay.
    EXPECT_EQ(d.read(200), 240u);
}

TEST(Dram, ZeroGapDisablesBandwidthModel)
{
    StatGroup sg{"dram"};
    Dram d(40, 0, sg);
    EXPECT_EQ(d.read(100), 140u);
    EXPECT_EQ(d.read(100), 140u);
}

TEST(Dram, UntimedWritesOnlyCount)
{
    StatGroup sg{"dram"};
    Dram d(40, 4, sg);
    d.accountUntimedWrite();
    d.accountUntimedWrite();
    EXPECT_EQ(d.writes(), 2u);
    // The channel was not occupied by untimed writes.
    EXPECT_EQ(d.read(0), 40u);
}

TEST(Dram, AccessesSumsBoth)
{
    StatGroup sg{"dram"};
    Dram d(40, 0, sg);
    d.read(0);
    d.write(0);
    d.accountUntimedWrite();
    EXPECT_EQ(d.accesses(), 3u);
}

} // namespace refrint::test
