/**
 * @file
 * Tests for the experiment API (src/api/): ScenarioKey canonical form
 * and byte-exact legacy (v5/v6) cache-key compatibility, collision
 * freedom across the machine/ambient axes, JSON plan round-trips
 * (load -> dump -> load identity), plan builders reproducing the
 * legacy sweep order, the Session streaming-sink protocol, and the
 * full-identity SweepResult::find()/average() semantics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "api/experiment_plan.hh"
#include "api/json.hh"
#include "api/scenario.hh"
#include "api/session.hh"
#include "harness/report.hh"
#include "workload/method.hh"
#include "workload/micro.hh"

namespace refrint::test
{
namespace
{

Scenario
edramScenario(const char *app, const char *config, double retUs,
              double ambientC = 0.0, std::uint32_t cores = 16,
              bool hybrid = false)
{
    Scenario s;
    s.app = app;
    s.config = config;
    s.retentionUs = retUs;
    s.ambientC = ambientC;
    s.cores = cores;
    s.hybrid = hybrid;
    s.sim.refsPerCore = 4000;
    s.sim.seed = 1;
    return s;
}

/** The pre-PR-5 key builder, verbatim (sweep.cc's runKey), as the
 *  executable specification of the legacy v5/v6 key format. */
std::string
legacyRunKey(const std::string &app, const std::string &config,
             double retentionUs, const SimParams &sim, double ambientC,
             const std::string &machine)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s|%s|%.1f|%llu|%llu", app.c_str(),
                  config.c_str(), retentionUs,
                  static_cast<unsigned long long>(sim.refsPerCore),
                  static_cast<unsigned long long>(sim.seed));
    std::string key = buf;
    if (ambientC != 0.0) {
        std::snprintf(buf, sizeof(buf), "|amb=%.2f", ambientC);
        key += buf;
    }
    if (!machine.empty())
        key += "|mach=" + machine;
    return key;
}

// ---------------------------------------------------------------------
// ScenarioKey: canonical form and legacy compatibility
// ---------------------------------------------------------------------

TEST(ScenarioKeyTest, CanonicalLegacyV5Forms)
{
    // Literal keys as they appear in a pre-PR-5 cache file.
    EXPECT_EQ(edramScenario("fft", "P.all", 50.0).key().str(),
              "fft|P.all|50.0|4000|1");
    EXPECT_EQ(edramScenario("lu", "R.WB(32,32)", 200.0).key().str(),
              "lu|R.WB(32,32)|200.0|4000|1");

    Scenario sram;
    sram.app = "fft";
    sram.config = "SRAM";
    sram.sim.refsPerCore = 4000;
    sram.sim.seed = 1;
    EXPECT_EQ(sram.key().str(), "fft|SRAM|0.0|4000|1");

    // Thermal rows: the |amb= suffix, %.2f.
    EXPECT_EQ(edramScenario("fft", "P.all", 50.0, 65.0).key().str(),
              "fft|P.all|50.0|4000|1|amb=65.00");
}

TEST(ScenarioKeyTest, CanonicalV6MachineForms)
{
    EXPECT_EQ(edramScenario("fft", "P.all", 50.0, 0.0, 32).key().str(),
              "fft|P.all|50.0|4000|1|mach=c32");
    EXPECT_EQ(
        edramScenario("fft", "P.all", 50.0, 0.0, 16, true).key().str(),
        "fft|P.all|50.0|4000|1|mach=hyb");
    EXPECT_EQ(
        edramScenario("fft", "P.all", 50.0, 0.0, 32, true).key().str(),
        "fft|P.all|50.0|4000|1|mach=c32+hyb");
    // Ambient and machine segments compose in that order.
    EXPECT_EQ(
        edramScenario("fft", "P.all", 50.0, 85.0, 32).key().str(),
        "fft|P.all|50.0|4000|1|amb=85.00|mach=c32");
}

TEST(ScenarioKeyTest, MethodInstancesAlwaysCarryTheWlSegment)
{
    // A parameterized spec keys under its full canonical parameter
    // list: schema order, every default explicit.
    EXPECT_EQ(
        edramScenario("agg:groups=1024,tables=part", "P.all", 50.0)
            .key()
            .str(),
        "agg|P.all|50.0|4000|1"
        "|wl=tables=part,groups=1024,in=1048576,skew=0.8,gap=3");

    // Even an all-defaults bare method spec keys the explicit list, so
    // a method row can never alias a legacy-named row.
    EXPECT_EQ(
        edramScenario("agg", "P.all", 50.0).key().str(),
        "agg|P.all|50.0|4000|1"
        "|wl=tables=shared,groups=4096,in=1048576,skew=0.8,gap=3");

    // Numeric spellings canonicalize: 2e6 -> 2000000, 64k -> 65536.
    EXPECT_EQ(
        edramScenario("serve:rps=2e6,ws=64k", "P.all", 50.0).key().str(),
        "serve|P.all|50.0|4000|1"
        "|wl=rps=2000000,ws=65536,data=1048576,wf=0.25,gap=3");
}

TEST(ScenarioKeyTest, WlSegmentComposesBeforeAmbientAndMachine)
{
    EXPECT_EQ(
        edramScenario("agg", "P.all", 50.0, 65.0, 32).key().str(),
        "agg|P.all|50.0|4000|1"
        "|wl=tables=shared,groups=4096,in=1048576,skew=0.8,gap=3"
        "|amb=65.00|mach=c32");
}

TEST(ScenarioKeyTest, LegacyNamesNeverGainAWlSegment)
{
    for (const Workload *w : paperWorkloads()) {
        const ScenarioKey k =
            edramScenario(w->name(), "P.all", 50.0).key();
        EXPECT_EQ(k.workload, "") << w->name();
        EXPECT_EQ(k.str().find("|wl="), std::string::npos) << w->name();
    }
}

TEST(ScenarioKeyTest, EveryLegacyKeyRegeneratesExactly)
{
    // Sweep the full legacy key space shape: apps x configs x
    // retentions x ambients x machines, including fractional ambients
    // and retentions that stress the fixed-precision formatting.
    const char *apps[] = {"fft", "lu", "streamcluster"};
    const char *configs[] = {"SRAM", "P.all", "R.WB(32,32)", "P.dirty"};
    const double rets[] = {0.0, 50.0, 100.0, 200.0, 33.25};
    const double ambients[] = {0.0, 45.0, 65.0, 85.0, 47.25};
    const struct
    {
        std::uint32_t cores;
        bool hybrid;
    } machines[] = {{16, false}, {32, false}, {16, true}, {48, true}};

    for (const char *app : apps) {
        for (const char *config : configs) {
            for (double ret : rets) {
                for (double amb : ambients) {
                    for (const auto &m : machines) {
                        const Scenario s = edramScenario(
                            app, config, ret, amb, m.cores, m.hybrid);
                        EXPECT_EQ(s.key().str(),
                                  legacyRunKey(app, config, ret, s.sim,
                                               amb, s.machineLabel()))
                            << s.key().str();
                    }
                }
            }
        }
    }
}

TEST(ScenarioKeyTest, AxesNeverCollide)
{
    // The same (app, config, retention, refs, seed) point along every
    // machine/ambient combination must produce pairwise-distinct keys,
    // and no machine-keyed key may ever equal a legacy one.
    std::set<std::string> keys;
    std::size_t produced = 0;
    for (double amb : {0.0, 45.0, 65.0, 85.0}) {
        for (std::uint32_t cores : {16u, 32u, 64u}) {
            for (bool hybrid : {false, true}) {
                const Scenario s = edramScenario("fft", "P.all", 50.0,
                                                 amb, cores, hybrid);
                keys.insert(s.key().str());
                ++produced;
            }
        }
    }
    EXPECT_EQ(keys.size(), produced);
    // Legacy (default machine, isothermal) keys carry no axis markers.
    for (const std::string &k : keys) {
        const bool marked = k.find("|amb=") != std::string::npos ||
                            k.find("|mach=") != std::string::npos;
        const bool isLegacy = k == "fft|P.all|50.0|4000|1";
        EXPECT_NE(marked, isLegacy) << k;
    }
}

TEST(ScenarioKeyTest, LongNamesDoNotTruncate)
{
    // The legacy 256-byte snprintf buffer truncated pathological keys;
    // ScenarioKey must not.
    Scenario s = edramScenario("fft", "P.all", 50.0);
    s.app = std::string(300, 'a');
    const std::string key = s.key().str();
    EXPECT_EQ(key.substr(0, 300), std::string(300, 'a'));
    EXPECT_NE(key.find("|P.all|50.0|4000|1"), std::string::npos);

    // An absurd retention renders ~310 digits in %.1f; the refs/seed
    // segments must survive it (keys differing only in seed may never
    // alias).
    Scenario wide = edramScenario("fft", "P.all", 1e300);
    const std::string wideKey = wide.key().str();
    EXPECT_NE(wideKey.find("|4000|1"), std::string::npos);
    wide.sim.seed = 2;
    EXPECT_NE(wide.key().str(), wideKey);
}

TEST(ScenarioKeyTest, MachineLabelMatchesBuiltMachine)
{
    // The key's machine label and the built MachineConfig's machineId
    // come from one helper; prove they agree end to end.
    const EnergyParams energy = EnergyParams::calibrated();
    for (std::uint32_t cores : {16u, 32u, 48u}) {
        for (bool hybrid : {false, true}) {
            const Scenario s = edramScenario("fft", "R.WB(32,32)", 50.0,
                                             0.0, cores, hybrid);
            EXPECT_EQ(s.machine(energy).machineId, s.key().machine);
        }
    }
    Scenario sram;
    sram.app = "fft";
    sram.cores = 32;
    EXPECT_EQ(sram.machine(energy).machineId, "c32");
    EXPECT_EQ(sram.key().machine, "c32");
}

TEST(ScenarioKeyTest, EnergyModelKeysItsOwnRows)
{
    // The calibrated defaults keep legacy keys byte-identical...
    EXPECT_EQ(energyKeyTag(EnergyParams::calibrated()), "");
    // ...while any re-parameterized model tags its rows.
    EnergyParams tweaked = EnergyParams::calibrated();
    tweaked.eL3Access *= 100.0;
    const std::string tag = energyKeyTag(tweaked);
    ASSERT_EQ(tag.size(), 16u);

    ScenarioKey k = edramScenario("fft", "P.all", 50.0).key();
    EXPECT_EQ(k.str(), "fft|P.all|50.0|4000|1");
    k.energy = tag;
    EXPECT_EQ(k.str(), "fft|P.all|50.0|4000|1|en=" + tag);

    // Distinct models get distinct tags.
    EnergyParams other = tweaked;
    other.leakCore *= 2.0;
    EXPECT_NE(energyKeyTag(other), tag);
    EXPECT_EQ(energyKeyTag(tweaked), tag); // and tags are stable
}

// ---------------------------------------------------------------------
// JSON plans
// ---------------------------------------------------------------------

TEST(JsonTest, ParsesAndDumpsRoundTrip)
{
    const std::string text =
        "{\"a\": [1, 2.5, true, false, null], \"s\": \"x\\n\\\"y\\\"\","
        " \"nested\": {\"k\": -3e-2}}";
    JsonValue v;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(text, v, err)) << err;
    EXPECT_EQ(v.get("a")->items().size(), 5u);
    EXPECT_EQ(v.get("a")->items()[1].asNumber(), 2.5);
    EXPECT_EQ(v.get("s")->asString(), "x\n\"y\"");
    EXPECT_EQ(v.get("nested")->get("k")->asNumber(), -0.03);

    // dump -> parse -> dump is a fixed point.
    const std::string once = v.dump(2);
    JsonValue v2;
    ASSERT_TRUE(JsonValue::parse(once, v2, err)) << err;
    EXPECT_EQ(v2.dump(2), once);
}

TEST(JsonTest, RejectsMalformedDocuments)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(JsonValue::parse("{\"a\": }", v, err));
    EXPECT_FALSE(JsonValue::parse("[1, 2", v, err));
    EXPECT_FALSE(JsonValue::parse("\"unterminated", v, err));
    EXPECT_FALSE(JsonValue::parse("{} trailing", v, err));
    EXPECT_FALSE(JsonValue::parse("", v, err));
}

TEST(ExperimentPlanTest, JsonRoundTripIsIdentity)
{
    // Plan builders finalize the spec, which reads env overrides; pin
    // the test to its own parameters.
    unsetenv("REFRINT_REFS");
    unsetenv("REFRINT_APPS");
    SweepSpec spec;
    spec.apps = {findWorkload("fft"), findWorkload("lu")};
    spec.sim.refsPerCore = 4000;
    spec.ambients = {45.0, 85.0};
    spec.machines = {MachineAxis{16, false}, MachineAxis{32, true}};
    const ExperimentPlan plan =
        ExperimentPlan::fromSweepSpec(std::move(spec));

    const std::string dumped = plan.toJson();
    const ExperimentPlan reloaded = ExperimentPlan::fromJson(dumped);
    EXPECT_EQ(reloaded, plan);

    // load -> dump -> load: the dump of the reloaded plan is
    // byte-identical, and parsing it again yields the same plan.
    const std::string dumpedAgain = reloaded.toJson();
    EXPECT_EQ(dumpedAgain, dumped);
    EXPECT_EQ(ExperimentPlan::fromJson(dumpedAgain), plan);
}

TEST(ExperimentPlanTest, FromSweepSpecReproducesLegacyOrder)
{
    unsetenv("REFRINT_REFS");
    unsetenv("REFRINT_APPS");
    SweepSpec spec;
    spec.apps = {findWorkload("fft")};
    spec.retentions = {usToTicks(50.0), usToTicks(100.0)};
    spec.policies = {RefreshPolicy::periodic(DataPolicy::All),
                     RefreshPolicy::refrint(DataPolicy::WB, 32, 32)};
    spec.sim.refsPerCore = 4000;
    spec.machines = {MachineAxis{16, false}, MachineAxis{32, false}};
    const ExperimentPlan plan =
        ExperimentPlan::fromSweepSpec(std::move(spec));

    // Per machine: baseline, then retention x policy.
    ASSERT_EQ(plan.size(), 2u * (1u + 2u * 2u));
    EXPECT_EQ(plan.scenarios[0].config, "SRAM");
    EXPECT_EQ(plan.baseline[0], -1);
    EXPECT_EQ(plan.scenarios[1].config, "P.all");
    EXPECT_EQ(plan.scenarios[1].retentionUs, 50.0);
    EXPECT_EQ(plan.scenarios[2].config, "R.WB(32,32)");
    EXPECT_EQ(plan.scenarios[3].retentionUs, 100.0);
    for (int i = 1; i <= 4; ++i)
        EXPECT_EQ(plan.baseline[static_cast<std::size_t>(i)], 0);

    // Second machine group: its own baseline at index 5.
    EXPECT_EQ(plan.scenarios[5].config, "SRAM");
    EXPECT_EQ(plan.scenarios[5].cores, 32u);
    EXPECT_EQ(plan.baseline[5], -1);
    for (int i = 6; i <= 9; ++i) {
        EXPECT_EQ(plan.baseline[static_cast<std::size_t>(i)], 5);
        EXPECT_EQ(plan.scenarios[static_cast<std::size_t>(i)].cores,
                  32u);
    }
}

TEST(ExperimentPlanTest, LoaderRejectsBrokenPlans)
{
    EXPECT_EXIT(ExperimentPlan::fromJson("not json"),
                ::testing::ExitedWithCode(1), "cannot parse plan");
    EXPECT_EXIT(ExperimentPlan::fromJson("{\"plan\": \"x\"}"),
                ::testing::ExitedWithCode(1), "version");
    EXPECT_EXIT(
        ExperimentPlan::fromJson(
            "{\"plan\": \"x\", \"version\": 1, \"scenarios\": "
            "[{\"app\": \"nosuchapp\", \"config\": \"SRAM\", "
            "\"retentionUs\": 0, \"ambientC\": 0, \"cores\": 16, "
            "\"refs\": 100, \"seed\": 1, \"maxTicks\": 1000, "
            "\"baseline\": -1}]}"),
        ::testing::ExitedWithCode(1), "unknown application");
    EXPECT_EXIT(ExperimentPlan::loadFile("/nonexistent/plan.json"),
                ::testing::ExitedWithCode(1), "cannot read plan");

    // Numeric sanity: every malformed value dies cleanly at load time
    // (never mid-run, never via an undefined double->int cast).
    auto scenarioWith = [](const char *field, const char *value) {
        std::string s =
            "{\"plan\": \"x\", \"version\": 1, \"scenarios\": "
            "[{\"app\": \"fft\", \"config\": \"SRAM\", "
            "\"retentionUs\": 0, \"ambientC\": 0, \"cores\": 16, "
            "\"refs\": 100, \"seed\": 1, \"baseline\": -1}]}";
        const std::string key = std::string("\"") + field + "\": ";
        const auto at = s.find(key);
        const auto end = s.find_first_of(",}", at);
        return s.substr(0, at + key.size()) + value + s.substr(end);
    };
    EXPECT_EXIT(ExperimentPlan::fromJson(scenarioWith("cores", "2")),
                ::testing::ExitedWithCode(1), "4, 64");
    EXPECT_EXIT(ExperimentPlan::fromJson(scenarioWith("refs", "-1")),
                ::testing::ExitedWithCode(1), "integer");
    EXPECT_EXIT(ExperimentPlan::fromJson(scenarioWith("seed", "1.5")),
                ::testing::ExitedWithCode(1), "integer");
    EXPECT_EXIT(
        ExperimentPlan::fromJson(scenarioWith("baseline", "-7")),
        ::testing::ExitedWithCode(1), "baseline");
    EXPECT_EXIT(
        ExperimentPlan::fromJson(scenarioWith("baseline", "1e300")),
        ::testing::ExitedWithCode(1), "baseline");
    EXPECT_EXIT(ExperimentPlan::fromJson(scenarioWith("refs", "nan")),
                ::testing::ExitedWithCode(1), "cannot parse plan");
}

TEST(ExperimentPlanTest, LoaderRejectsCrossFamilyBaselines)
{
    // A baseline scenario for fft at 16 cores, plus one measured
    // scenario pointing at it — with a configurable app and machine.
    auto planWith = [](const char *app2, const char *cores2) {
        return std::string(
                   "{\"plan\": \"x\", \"version\": 1, \"scenarios\": ["
                   "{\"app\": \"fft\", \"config\": \"SRAM\", "
                   "\"retentionUs\": 0, \"ambientC\": 0, \"cores\": 16, "
                   "\"refs\": 100, \"seed\": 1, \"baseline\": -1}, "
                   "{\"app\": \"") +
               app2 +
               "\", \"config\": \"P.all\", \"retentionUs\": 50, "
               "\"ambientC\": 0, \"cores\": " +
               cores2 + ", \"refs\": 100, \"seed\": 1, \"baseline\": 0}]}";
    };

    // Control: the same-family plan parses.
    ExperimentPlan plan;
    std::string err;
    EXPECT_TRUE(
        ExperimentPlan::tryFromJson(planWith("fft", "16"), plan, err))
        << err;

    // Normalizing fft rows against an lu baseline, or 32-core rows
    // against a 16-core baseline, dies cleanly at load time.
    EXPECT_EXIT(ExperimentPlan::fromJson(planWith("lu", "16")),
                ::testing::ExitedWithCode(1), "different workload");
    EXPECT_EXIT(ExperimentPlan::fromJson(planWith("fft", "32")),
                ::testing::ExitedWithCode(1), "different machine");

    // The serve path sees the same rule as a recoverable error.
    EXPECT_FALSE(
        ExperimentPlan::tryFromJson(planWith("lu", "16"), plan, err));
    EXPECT_NE(err.find("different workload"), std::string::npos);
    EXPECT_FALSE(
        ExperimentPlan::tryFromJson(planWith("fft", "32"), plan, err));
    EXPECT_NE(err.find("different machine"), std::string::npos);

    // A baseline index naming a non-baseline scenario is a parse
    // error too (not a validate() abort — serve must survive it).
    const std::string chained =
        "{\"plan\": \"x\", \"version\": 1, \"scenarios\": ["
        "{\"app\": \"fft\", \"config\": \"SRAM\", \"retentionUs\": 0, "
        "\"ambientC\": 0, \"cores\": 16, \"refs\": 100, \"seed\": 1, "
        "\"baseline\": -1}, "
        "{\"app\": \"fft\", \"config\": \"P.all\", \"retentionUs\": 50, "
        "\"ambientC\": 0, \"cores\": 16, \"refs\": 100, \"seed\": 1, "
        "\"baseline\": 0}, "
        "{\"app\": \"fft\", \"config\": \"P.dirty\", \"retentionUs\": "
        "50, \"ambientC\": 0, \"cores\": 16, \"refs\": 100, \"seed\": "
        "1, \"baseline\": 1}]}";
    EXPECT_FALSE(ExperimentPlan::tryFromJson(chained, plan, err));
    EXPECT_NE(err.find("not itself a baseline"), std::string::npos);
}

TEST(ExperimentPlanTest, MaxTicksIsOptionalButMustBePositive)
{
    const char *noTicks =
        "{\"plan\": \"x\", \"version\": 1, \"scenarios\": "
        "[{\"app\": \"fft\", \"config\": \"SRAM\", \"retentionUs\": 0, "
        "\"ambientC\": 0, \"cores\": 16, \"refs\": 100, \"seed\": 1, "
        "\"baseline\": -1}]}";
    const ExperimentPlan plan = ExperimentPlan::fromJson(noTicks);
    EXPECT_EQ(plan.scenarios[0].sim.maxTicks, SimParams{}.maxTicks);

    const std::string zeroTicks = std::string(noTicks).insert(
        std::string(noTicks).find("\"baseline\""), "\"maxTicks\": 0, ");
    EXPECT_EXIT(ExperimentPlan::fromJson(zeroTicks),
                ::testing::ExitedWithCode(1), "maxTicks");
}

TEST(ExperimentPlanTest, ThermalStudyBuilderMatchesCliShape)
{
    unsetenv("REFRINT_REFS");
    unsetenv("REFRINT_APPS");
    const ExperimentPlan plan = ExperimentPlan::thermalStudy(
        "fft", 50.0, {45.0, 65.0, 85.0});
    // 1 baseline + 3 ambients x 1 retention x 2 policies.
    ASSERT_EQ(plan.size(), 7u);
    EXPECT_EQ(plan.name, "thermal-study");
    EXPECT_EQ(plan.scenarios[0].config, "SRAM");
    EXPECT_EQ(plan.scenarios[1].config, "P.all");
    EXPECT_EQ(plan.scenarios[1].ambientC, 45.0);
    EXPECT_EQ(plan.scenarios[2].config, "R.WB(32,32)");
    EXPECT_EQ(plan.scenarios[6].ambientC, 85.0);
}

// ---------------------------------------------------------------------
// Session + sinks
// ---------------------------------------------------------------------

/** Records the sink protocol for inspection. */
class RecordingSink : public ResultSink
{
  public:
    int begins = 0, ends = 0;
    std::vector<std::size_t> order;
    std::vector<bool> hadNorm;

    void
    begin(const ExperimentPlan &) override
    {
        ++begins;
    }
    void
    consume(const ExperimentPlan &, std::size_t index,
            const RunResult &, const NormalizedResult *norm,
            bool) override
    {
        order.push_back(index);
        hadNorm.push_back(norm != nullptr);
    }
    void
    end(const ExperimentPlan &, const SweepResult &) override
    {
        ++ends;
    }
};

ExperimentPlan
microPlan(const Workload &w)
{
    SweepSpec spec;
    spec.apps = {&w};
    spec.retentions = {usToTicks(50.0)};
    spec.policies = {RefreshPolicy::periodic(DataPolicy::All),
                     RefreshPolicy::refrint(DataPolicy::WB, 32, 32)};
    spec.sim.refsPerCore = 1200;
    return ExperimentPlan::fromSweepSpec(std::move(spec));
}

TEST(SessionTest, StreamsRowsInPlanOrderToEverySink)
{
    unsetenv("REFRINT_REFS");
    unsetenv("REFRINT_APPS");
    UniformWorkload u(8 * 1024, 0.3);
    const ExperimentPlan plan = microPlan(u);

    RecordingSink rec;
    Session session(SessionOptions{"", 4});
    const SweepResult res = session.run(plan, {&rec});

    EXPECT_EQ(rec.begins, 1);
    EXPECT_EQ(rec.ends, 1);
    ASSERT_EQ(rec.order.size(), plan.size());
    for (std::size_t i = 0; i < rec.order.size(); ++i)
        EXPECT_EQ(rec.order[i], i);
    EXPECT_FALSE(rec.hadNorm[0]); // the SRAM baseline
    EXPECT_TRUE(rec.hadNorm[1]);
    EXPECT_TRUE(rec.hadNorm[2]);
    EXPECT_EQ(res.raw.size(), 3u);
    EXPECT_EQ(res.normalized.size(), 2u);
    EXPECT_EQ(res.simulations, 3u);
}

TEST(SessionTest, JsonLinesSinkEmitsOneValidObjectPerRow)
{
    unsetenv("REFRINT_REFS");
    unsetenv("REFRINT_APPS");
    UniformWorkload u(8 * 1024, 0.3);
    const ExperimentPlan plan = microPlan(u);

    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    JsonLinesSink sink(tmp);
    Session session(SessionOptions{"", 1});
    session.run(plan, {&sink});

    std::rewind(tmp);
    char line[4096];
    std::size_t rows = 0;
    while (std::fgets(line, sizeof(line), tmp) != nullptr) {
        JsonValue v;
        std::string err;
        ASSERT_TRUE(JsonValue::parse(line, v, err)) << err;
        EXPECT_TRUE(v.get("key")->isString());
        EXPECT_TRUE(v.get("energy")->isObject());
        ++rows;
    }
    std::fclose(tmp);
    EXPECT_EQ(rows, plan.size());
}

TEST(SessionTest, CsvSinkQuotesCommaBearingConfigNames)
{
    unsetenv("REFRINT_REFS");
    unsetenv("REFRINT_APPS");
    UniformWorkload u(8 * 1024, 0.3);
    const ExperimentPlan plan = microPlan(u); // includes R.WB(32,32)

    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    CsvSink sink(tmp);
    Session session(SessionOptions{"", 1});
    session.run(plan, {&sink});

    std::rewind(tmp);
    char line[4096];
    ASSERT_NE(std::fgets(line, sizeof(line), tmp), nullptr);
    std::size_t columns = 1;
    for (const char *p = line; *p != '\0'; ++p)
        columns += *p == ',';
    bool sawQuoted = false;
    while (std::fgets(line, sizeof(line), tmp) != nullptr) {
        // Unquoted commas per row must match the header's count.
        std::size_t fields = 1;
        bool inQuotes = false;
        for (const char *p = line; *p != '\0'; ++p) {
            if (*p == '"')
                inQuotes = !inQuotes;
            else if (*p == ',' && !inQuotes)
                ++fields;
        }
        EXPECT_EQ(fields, columns) << line;
        sawQuoted =
            sawQuoted ||
            std::string(line).find("\"R.WB(32,32)\"") != std::string::npos;
    }
    std::fclose(tmp);
    EXPECT_TRUE(sawQuoted);
}

TEST(SessionTest, ModifiedEnergyModelNeverReusesDefaultRows)
{
    unsetenv("REFRINT_REFS");
    unsetenv("REFRINT_APPS");
    UniformWorkload u(8 * 1024, 0.3);
    const std::string path = ::testing::TempDir() + "/api_energy.csv";
    std::remove(path.c_str());

    Session session(SessionOptions{path, 1});
    const SweepResult calibrated = session.run(microPlan(u));
    EXPECT_EQ(calibrated.simulations, 3u);

    // Same scenarios, different energy model: the warm cache must NOT
    // satisfy them (the legacy engine silently reused such rows).
    ExperimentPlan tweaked = microPlan(u);
    tweaked.energy.eL3Access *= 100.0;
    const SweepResult rerun = session.run(tweaked);
    EXPECT_EQ(rerun.simulations, 3u);
    EXPECT_NE(rerun.raw[1].energy.l3, calibrated.raw[1].energy.l3);

    // And the tweaked rows are themselves cached under their tag.
    const SweepResult warm = session.run(tweaked);
    EXPECT_EQ(warm.simulations, 0u);
    std::remove(path.c_str());
}

TEST(SessionTest, SharesWarmCacheRowsAcrossRuns)
{
    unsetenv("REFRINT_REFS");
    unsetenv("REFRINT_APPS");
    UniformWorkload u(8 * 1024, 0.3);
    const std::string path = ::testing::TempDir() + "/api_session.csv";
    std::remove(path.c_str());

    Session session(SessionOptions{path, 2});
    const SweepResult first = session.run(microPlan(u));
    EXPECT_EQ(first.simulations, 3u);
    // Same session, same plan: everything is already in the cache.
    const SweepResult again = session.run(microPlan(u));
    EXPECT_EQ(again.simulations, 0u);
    ASSERT_EQ(again.raw.size(), first.raw.size());
    EXPECT_EQ(again.raw[1].execTicks, first.raw[1].execTicks);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Workload-method scenarios through the full Session stack
// ---------------------------------------------------------------------

/** SRAM baseline + one P.all run of a registry-resolved spec. */
ExperimentPlan
specPlan(const char *spec, std::uint64_t refs = 1500)
{
    const Workload *w = workloadRegistry().find(spec);
    EXPECT_NE(w, nullptr) << spec;
    SweepSpec sp;
    sp.apps = {w};
    sp.retentions = {usToTicks(50.0)};
    sp.policies = {RefreshPolicy::periodic(DataPolicy::All)};
    sp.sim.refsPerCore = refs;
    return ExperimentPlan::fromSweepSpec(std::move(sp));
}

TEST(SessionTest, MethodWorkloadsRoundTripPlanJsonAndCache)
{
    unsetenv("REFRINT_REFS");
    unsetenv("REFRINT_APPS");
    const std::string path = ::testing::TempDir() + "/api_methods.csv";
    std::remove(path.c_str());
    Session session(SessionOptions{path, 2});

    for (const char *spec : {"agg:tables=part,groups=1024,in=65536",
                             "serve:rps=2e6,ws=4096,data=65536"}) {
        const ExperimentPlan plan = specPlan(spec);
        // The scenario's app is the canonical spec and survives the
        // JSON round trip identically (the reloaded plan re-resolves
        // it through the registry by name).
        const ExperimentPlan reloaded =
            ExperimentPlan::fromJson(plan.toJson());
        EXPECT_EQ(reloaded, plan) << spec;
        EXPECT_EQ(reloaded.toJson(), plan.toJson()) << spec;

        const SweepResult cold = session.run(plan);
        EXPECT_EQ(cold.simulations, 2u) << spec;
        // The reloaded plan must hit the very same cache rows.
        const SweepResult warm = session.run(reloaded);
        EXPECT_EQ(warm.simulations, 0u) << spec;
        ASSERT_EQ(warm.raw.size(), cold.raw.size());
        EXPECT_EQ(warm.raw[1].execTicks, cold.raw[1].execTicks);
        // The latency block replays through the cache bit-exactly.
        EXPECT_EQ(warm.raw[1].requests, cold.raw[1].requests);
        EXPECT_EQ(warm.raw[1].reqP50Us, cold.raw[1].reqP50Us);
        EXPECT_EQ(warm.raw[1].reqP95Us, cold.raw[1].reqP95Us);
        EXPECT_EQ(warm.raw[1].reqP99Us, cold.raw[1].reqP99Us);
    }
    std::remove(path.c_str());
}

TEST(SessionTest, ServeRowsCarryLatencyPercentilesThroughJsonl)
{
    unsetenv("REFRINT_REFS");
    unsetenv("REFRINT_APPS");
    const ExperimentPlan plan =
        specPlan("serve:rps=2e6,ws=4096,data=65536", 3000);

    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    JsonLinesSink sink(tmp);
    Session session(SessionOptions{"", 1});
    const SweepResult res = session.run(plan, {&sink});

    // Every run of a request-serving workload completes requests and
    // measures a monotone percentile ladder.
    for (const RunResult &r : res.raw) {
        EXPECT_GT(r.requests, 0.0) << r.config;
        EXPECT_GT(r.reqP50Us, 0.0) << r.config;
        EXPECT_LE(r.reqP50Us, r.reqP95Us) << r.config;
        EXPECT_LE(r.reqP95Us, r.reqP99Us) << r.config;
    }

    // ...and the JSONL rows expose them as a latencyUs object.
    std::rewind(tmp);
    char line[8192];
    std::size_t rows = 0;
    while (std::fgets(line, sizeof(line), tmp) != nullptr) {
        JsonValue v;
        std::string err;
        ASSERT_TRUE(JsonValue::parse(line, v, err)) << err;
        EXPECT_GT(v.get("requests")->asNumber(), 0.0);
        const JsonValue *lat = v.get("latencyUs");
        ASSERT_NE(lat, nullptr);
        const double p50 = lat->get("p50")->asNumber();
        const double p95 = lat->get("p95")->asNumber();
        const double p99 = lat->get("p99")->asNumber();
        EXPECT_GT(p50, 0.0);
        EXPECT_LE(p50, p95);
        EXPECT_LE(p95, p99);
        ++rows;
    }
    std::fclose(tmp);
    EXPECT_EQ(rows, plan.size());
}

// ---------------------------------------------------------------------
// SweepResult identity semantics
// ---------------------------------------------------------------------

NormalizedResult
row(const char *app, const char *config, double retUs,
    const char *machine, double ambientC, double memEnergy)
{
    NormalizedResult n;
    n.app = app;
    n.config = config;
    n.retentionUs = retUs;
    n.machine = machine;
    n.ambientC = ambientC;
    n.memEnergy = memEnergy;
    return n;
}

TEST(SweepResultIdentityTest, FindResolvesFullScenarioIdentity)
{
    SweepResult s;
    s.normalized = {
        row("fft", "P.all", 50.0, "", 0.0, 0.50),
        row("fft", "P.all", 50.0, "c32", 0.0, 0.60),
        row("fft", "P.all", 50.0, "", 65.0, 0.70),
    };

    EXPECT_EQ(s.find("fft", 50.0, "P.all", "")->memEnergy, 0.50);
    EXPECT_EQ(s.find("fft", 50.0, "P.all", "c32")->memEnergy, 0.60);
    EXPECT_EQ(s.find("fft", 50.0, "P.all", "", 65.0)->memEnergy, 0.70);
    EXPECT_EQ(s.find("fft", 50.0, "P.all", "c64"), nullptr);
    EXPECT_EQ(s.find("fft", 100.0, "P.all", ""), nullptr);

    // The short form is fatal when rows from several machines (or
    // ambients) match — the pre-PR-5 code silently returned the first.
    EXPECT_EXIT(s.find("fft", 50.0, "P.all"),
                ::testing::ExitedWithCode(1), "ambiguous");
}

TEST(SweepResultIdentityTest, FindShortFormStillWorksWhenUnambiguous)
{
    SweepResult s;
    s.normalized = {
        row("fft", "P.all", 50.0, "", 0.0, 0.50),
        row("fft", "R.WB(32,32)", 50.0, "", 0.0, 0.36),
        row("fft", "P.all", 100.0, "", 0.0, 0.45),
    };
    EXPECT_EQ(s.find("fft", 50.0, "P.all")->memEnergy, 0.50);
    // Retention wildcard across rows of one scenario axis is fine.
    EXPECT_NE(s.find("fft", 0.0, "P.all"), nullptr);
    EXPECT_EQ(s.find("fft", 50.0, "R.dirty"), nullptr);
}

TEST(SweepResultIdentityTest, AverageRefusesSilentCrossMachinePooling)
{
    SweepResult s;
    s.normalized = {
        row("fft", "P.all", 50.0, "", 0.0, 0.40),
        row("lu", "P.all", 50.0, "", 0.0, 0.60),
        row("fft", "P.all", 50.0, "c32", 0.0, 1.00),
    };
    const std::vector<std::string> all;

    // Per-machine queries are exact.
    EXPECT_DOUBLE_EQ(
        s.average(50.0, "P.all", all, &NormalizedResult::memEnergy, ""),
        0.50);
    EXPECT_DOUBLE_EQ(s.average(50.0, "P.all", all,
                               &NormalizedResult::memEnergy, "c32"),
                     1.00);
    // Pooling across machines is an explicit opt-in...
    EXPECT_DOUBLE_EQ(s.averagePooled(50.0, "P.all", all,
                                     &NormalizedResult::memEnergy),
                     (0.40 + 0.60 + 1.00) / 3.0);
    // ...never an accident.
    EXPECT_EXIT(
        s.average(50.0, "P.all", all, &NormalizedResult::memEnergy),
        ::testing::ExitedWithCode(1), "several machines");
}

TEST(SweepResultIdentityTest, AverageUnchangedOnSingleMachineSweeps)
{
    SweepResult s;
    s.normalized = {
        row("fft", "P.all", 50.0, "", 0.0, 0.40),
        row("lu", "P.all", 50.0, "", 0.0, 0.60),
        row("fft", "R.WB(32,32)", 50.0, "", 0.0, 0.36),
    };
    const std::vector<std::string> all;
    EXPECT_DOUBLE_EQ(
        s.average(50.0, "P.all", all, &NormalizedResult::memEnergy),
        0.50);
    EXPECT_DOUBLE_EQ(s.average(50.0, "P.all", {"lu"},
                               &NormalizedResult::memEnergy),
                     0.60);
}

} // namespace
} // namespace refrint::test
