/**
 * @file
 * The cross-model validation subsystem: scenario-key parsing, the v8
 * cache-row codec with the alternate-backend tail, the physical
 * invariants both energy backends must satisfy, and the corpus checker
 * behind `refrint_cli validate` (including its exit contract).
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "api/experiment_plan.hh"
#include "api/result_store.hh"
#include "api/run_cache.hh"
#include "api/scenario.hh"
#include "api/session.hh"
#include "edram/refresh_policy.hh"
#include "edram/retention.hh"
#include "harness/runner.hh"
#include "test_util.hh"
#include "validate/analytic_model.hh"
#include "validate/energy_alt.hh"
#include "validate/validate.hh"
#include "workload/micro.hh"
#include "workload/workload.hh"

namespace refrint
{
namespace
{

using test::runTiny;
using test::tinyEdram;

std::size_t
fieldCount(const std::string &payload)
{
    std::size_t n = payload.empty() ? 0 : 1;
    for (const char c : payload)
        n += c == ',';
    return n;
}

// ---------------------------------------------------------------------
// ScenarioKey::parse — the inverse the corpus checker stands on
// ---------------------------------------------------------------------

TEST(ScenarioKeyParseTest, RoundTripsEveryOptionalSegment)
{
    ScenarioKey k;
    k.app = "fft";
    k.config = "R.WB(32,32)";
    k.retentionUs = 50.0;
    k.refs = 120000;
    k.seed = 1;

    ScenarioKey variants[] = {k, k, k, k, k};
    variants[1].workload = "tables=shared,skew=0.8";
    variants[2].ambientC = 65.0;
    variants[3].machine = "c32+hyb";
    variants[4].workload = "rps=2e6";
    variants[4].ambientC = 45.0;
    variants[4].machine = "hyb";
    variants[4].energy = "deadbeefcafe0123";

    for (const ScenarioKey &v : variants) {
        ScenarioKey back;
        ASSERT_TRUE(ScenarioKey::parse(v.str(), back)) << v.str();
        EXPECT_EQ(back, v) << v.str();
        // And parsing is exact, not just equality-preserving.
        EXPECT_EQ(back.str(), v.str());
    }
}

TEST(ScenarioKeyParseTest, ParsesTheCanonicalLegacyForm)
{
    ScenarioKey k;
    ASSERT_TRUE(ScenarioKey::parse("fft|P.all|50.0|120000|1", k));
    EXPECT_EQ(k.app, "fft");
    EXPECT_EQ(k.config, "P.all");
    EXPECT_DOUBLE_EQ(k.retentionUs, 50.0);
    EXPECT_EQ(k.refs, 120000u);
    EXPECT_EQ(k.seed, 1u);
    EXPECT_TRUE(k.workload.empty());
    EXPECT_EQ(k.ambientC, 0.0);
    EXPECT_TRUE(k.machine.empty());
    EXPECT_TRUE(k.energy.empty());
}

TEST(ScenarioKeyParseTest, RejectsWhatStrCannotEmit)
{
    ScenarioKey k;
    EXPECT_FALSE(ScenarioKey::parse("", k));
    EXPECT_FALSE(ScenarioKey::parse("fft|P.all|50.0|120000", k));
    EXPECT_FALSE(ScenarioKey::parse("|P.all|50.0|120000|1", k));
    EXPECT_FALSE(ScenarioKey::parse("fft||50.0|120000|1", k));
    EXPECT_FALSE(ScenarioKey::parse("fft|P.all|zz|120000|1", k));
    EXPECT_FALSE(ScenarioKey::parse("fft|P.all|50.0|-3|1", k));
    // Unknown tagged segment.
    EXPECT_FALSE(
        ScenarioKey::parse("fft|P.all|50.0|120000|1|bogus=3", k));
    // Tagged segments out of canonical wl/amb/mach/en order.
    EXPECT_FALSE(ScenarioKey::parse(
        "fft|P.all|50.0|120000|1|mach=c32|amb=45.00", k));
    // Trailing garbage after the last recognized segment.
    EXPECT_FALSE(ScenarioKey::parse(
        "fft|P.all|50.0|120000|1|mach=c32|extra", k));
}

// ---------------------------------------------------------------------
// CacheRow codec: the suppressed v8 alternate-backend tail
// ---------------------------------------------------------------------

CacheRow
sampleRow()
{
    CacheRow c{};
    c.execTicks = 12345;
    c.instructions = 6789;
    c.l1 = 1e-7;
    c.l2 = 2e-7;
    c.l3 = 3e-7;
    c.dram = 4e-7;
    c.dynamic = 1.5e-7;
    c.leakage = 3.0e-7;
    c.refresh = 1.5e-7;
    c.core = 5e-7;
    c.net = 6e-8;
    c.dramAccesses = 100;
    c.l3Misses = 90;
    c.refreshes3 = 42;
    c.ambientC = 45;
    c.maxTempC = 52.5;
    c.requests = 10;
    c.reqP50Us = 1;
    c.reqP95Us = 2;
    c.reqP99Us = 3;
    return c;
}

TEST(CacheRowCodecTest, DefaultBackendRowsStaySuppressedAndV7Sized)
{
    const CacheRow c = sampleRow();
    const std::string payload = encodeCacheRow(c);
    EXPECT_EQ(fieldCount(payload), 23u);

    CacheRow back{};
    ASSERT_TRUE(decodeCacheRow(payload, back));
    EXPECT_EQ(back.execTicks, c.execTicks);
    EXPECT_EQ(back.refreshes3, c.refreshes3);
    EXPECT_EQ(back.reqP99Us, c.reqP99Us);
    EXPECT_EQ(back.altPresent, 0.0);
    EXPECT_EQ(back.altL3, 0.0);
}

TEST(CacheRowCodecTest, AltTailRoundTripsWhenPresent)
{
    CacheRow c = sampleRow();
    c.altPresent = 1;
    c.altL1 = 1.1e-7;
    c.altL2 = 2.1e-7;
    c.altL3 = 3.1e-7;
    c.altDram = 4.1e-7;
    c.altDynamic = 1.6e-7;
    c.altLeakage = 3.2e-7;
    c.altRefresh = 1.7e-7;
    c.altCore = 5.1e-7;
    c.altNet = 6.1e-8;
    const std::string payload = encodeCacheRow(c);
    EXPECT_EQ(fieldCount(payload), 33u);

    CacheRow back{};
    ASSERT_TRUE(decodeCacheRow(payload, back));
    EXPECT_EQ(back.altPresent, 1.0);
    EXPECT_EQ(back.altL1, c.altL1);
    EXPECT_EQ(back.altNet, c.altNet);
    EXPECT_EQ(back.reqP99Us, c.reqP99Us);
}

TEST(CacheRowCodecTest, LegacyPrefixLengthsStillDecode)
{
    // A v5/v6 row is the first 19 fields; later fields read as zero.
    std::string payload = encodeCacheRow(sampleRow());
    std::size_t cut = payload.size();
    for (std::size_t i = 0, commas = 0; i < payload.size(); ++i) {
        if (payload[i] == ',' && ++commas == 19) {
            cut = i;
            break;
        }
    }
    ASSERT_LT(cut, payload.size());
    CacheRow back{};
    ASSERT_TRUE(decodeCacheRow(payload.substr(0, cut), back));
    EXPECT_EQ(back.execTicks, 12345.0);
    EXPECT_EQ(back.requests, 0.0);
    EXPECT_EQ(back.altPresent, 0.0);

    // Any other field count is a framing error, not a row.
    CacheRow junk{};
    EXPECT_FALSE(decodeCacheRow("1,2,3", junk));
    EXPECT_FALSE(decodeCacheRow("", junk));
    EXPECT_FALSE(
        decodeCacheRow(payload.substr(0, cut) + ",7", junk));
}

// ---------------------------------------------------------------------
// Physical invariants both energy backends must satisfy
// ---------------------------------------------------------------------

RunResult
runTinyAlt(const MachineConfig &cfg, const Workload &app)
{
    SimParams sim;
    sim.refsPerCore = 1500;
    sim.seed = 7;
    EnergyParams energy = EnergyParams::calibrated();
    energy.altModel = 1;
    return runOnce(cfg, app, sim, energy);
}

TEST(EnergyInvariantTest, RefreshEnergyFallsAsRetentionGrows)
{
    UniformWorkload u(8 * 1024, 0.3);
    const RefreshPolicy pall = RefreshPolicy::periodic(DataPolicy::All);
    const RunResult r5 = runTinyAlt(tinyEdram(pall, usToTicks(5.0)), u);
    const RunResult r10 =
        runTinyAlt(tinyEdram(pall, usToTicks(10.0)), u);
    const RunResult r20 =
        runTinyAlt(tinyEdram(pall, usToTicks(20.0)), u);

    // Primary backend: strictly ordered for a periodic-all engine.
    EXPECT_GT(r5.energy.refresh, r10.energy.refresh);
    EXPECT_GT(r10.energy.refresh, r20.energy.refresh);

    // Alternate backend: same counts, its own coefficients — the
    // ordering must survive the re-parameterization.
    ASSERT_TRUE(r5.hasAlt && r10.hasAlt && r20.hasAlt);
    EXPECT_GT(r5.alt.refresh, r10.alt.refresh);
    EXPECT_GT(r10.alt.refresh, r20.alt.refresh);
}

TEST(EnergyInvariantTest, DataPolicyOrderHoldsInBothBackends)
{
    UniformWorkload u(8 * 1024, 0.3);
    const Tick ret = usToTicks(5.0);
    const RunResult all =
        runTinyAlt(tinyEdram(RefreshPolicy::periodic(DataPolicy::All),
                             ret),
                   u);
    const RunResult valid = runTinyAlt(
        tinyEdram(RefreshPolicy::periodic(DataPolicy::Valid), ret), u);
    const RunResult dirty = runTinyAlt(
        tinyEdram(RefreshPolicy::periodic(DataPolicy::Dirty), ret), u);

    // Refreshing all lines can never cost less than refreshing the
    // valid subset, nor valid less than dirty (small slack for the
    // runs' slightly different execution lengths).
    const double slack = 1.05;
    EXPECT_GE(all.energy.refresh * slack, valid.energy.refresh);
    EXPECT_GE(valid.energy.refresh * slack, dirty.energy.refresh);
    ASSERT_TRUE(all.hasAlt && valid.hasAlt && dirty.hasAlt);
    EXPECT_GE(all.alt.refresh * slack, valid.alt.refresh);
    EXPECT_GE(valid.alt.refresh * slack, dirty.alt.refresh);
}

TEST(EnergyInvariantTest, BothBackendsKeepTheDecompositionIdentity)
{
    UniformWorkload u(8 * 1024, 0.3);
    const RunResult r = runTinyAlt(
        tinyEdram(RefreshPolicy::refrint(DataPolicy::WB, 32, 32),
                  usToTicks(5.0)),
        u);
    const double lvl = r.energy.l1 + r.energy.l2 + r.energy.l3;
    const double cmp =
        r.energy.dynamic + r.energy.leakage + r.energy.refresh;
    EXPECT_NEAR(lvl, cmp, 1e-9 * lvl);
    ASSERT_TRUE(r.hasAlt);
    const double altLvl = r.alt.l1 + r.alt.l2 + r.alt.l3;
    const double altCmp =
        r.alt.dynamic + r.alt.leakage + r.alt.refresh;
    EXPECT_NEAR(altLvl, altCmp, 1e-9 * altLvl);
    EXPECT_GT(r.alt.systemTotal(), 0.0);
    EXPECT_GE(energyDisagreement(r), 0.0);
    EXPECT_LT(energyDisagreement(r), 1.0);
}

// ---------------------------------------------------------------------
// Plan loader: ambient temperatures must be thermally resolvable
// ---------------------------------------------------------------------

TEST(PlanAmbientRangeTest, LoaderRejectsUnresolvableAmbients)
{
    auto planWithAmbient = [](const char *amb) {
        return std::string("{\"plan\": \"x\", \"version\": 1, "
                           "\"scenarios\": [{\"app\": \"fft\", "
                           "\"config\": \"P.all\", \"retentionUs\": 50, "
                           "\"ambientC\": ") +
               amb +
               ", \"cores\": 16, \"refs\": 100, \"seed\": 1, "
               "\"baseline\": -1}]}";
    };
    EXPECT_EXIT(ExperimentPlan::fromJson(planWithAmbient("200")),
                ::testing::ExitedWithCode(1), "resolvable range");
    EXPECT_EXIT(ExperimentPlan::fromJson(planWithAmbient("20")),
                ::testing::ExitedWithCode(1), "resolvable range");

    // The boundary temperatures themselves are fine.
    const ThermalResponse resp{};
    char lo[32], hi[32];
    std::snprintf(lo, sizeof(lo), "%g", resp.minAmbientC());
    std::snprintf(hi, sizeof(hi), "%g", resp.maxAmbientC());
    EXPECT_EQ(ExperimentPlan::fromJson(planWithAmbient(lo)).size(), 1u);
    EXPECT_EQ(ExperimentPlan::fromJson(planWithAmbient(hi)).size(), 1u);
}

// ---------------------------------------------------------------------
// The corpus checker end to end
// ---------------------------------------------------------------------

/** SRAM baseline + a policy/retention grid of one micro workload. */
ExperimentPlan
validationPlan(const Workload &w)
{
    SweepSpec spec;
    spec.apps = {&w};
    spec.retentions = {usToTicks(50.0), usToTicks(100.0)};
    spec.policies = {RefreshPolicy::periodic(DataPolicy::All),
                     RefreshPolicy::periodic(DataPolicy::Valid),
                     RefreshPolicy::periodic(DataPolicy::Dirty),
                     RefreshPolicy::refrint(DataPolicy::WB, 32, 32)};
    spec.sim.refsPerCore = 1200;
    return ExperimentPlan::fromSweepSpec(std::move(spec));
}

TEST(ValidateTest, PassesACorpusTheSimulatorProduced)
{
    unsetenv("REFRINT_REFS");
    unsetenv("REFRINT_APPS");
    UniformWorkload u(8 * 1024, 0.3);
    const std::string path =
        ::testing::TempDir() + "/validate_clean.csv";
    std::remove(path.c_str());
    {
        Session session(SessionOptions{path, 2});
        session.run(validationPlan(u));
    }

    std::FILE *sink = std::tmpfile();
    ASSERT_NE(sink, nullptr);
    ValidateOptions opts;
    opts.cachePath = path;
    opts.out = sink;
    ValidateReport rep;
    EXPECT_EQ(runValidate(opts, &rep), 0);
    std::stringstream why;
    for (const ValidateFinding &f : rep.violations)
        why << "[" << f.check << "] " << f.key << ": " << f.detail
            << "\n";
    EXPECT_TRUE(rep.clean()) << why.str();
    EXPECT_EQ(rep.rows, 9u); // 1 SRAM baseline + 4 policies x 2 rets
    // The micro workload is not registry-resolvable, so the analytic
    // model steps aside as a documented limit, never a violation.
    EXPECT_EQ(rep.analyticChecked, 0u);
    EXPECT_FALSE(rep.limits.empty());
    std::fclose(sink);
    std::remove(path.c_str());
}

TEST(ValidateTest, FlagsACorruptedRowAndWritesTheJsonReport)
{
    const std::string path = ::testing::TempDir() + "/validate_bad.csv";
    const std::string json =
        ::testing::TempDir() + "/validate_bad.json";
    std::remove(path.c_str());
    {
        RunCache cache(path);
        CacheRow bad = sampleRow();
        bad.requests = 0;
        bad.reqP50Us = bad.reqP95Us = bad.reqP99Us = 0;
        bad.l1 = -1e-7; // negative energy: impossible
        cache.insert("micro.uniform|P.all|50.0|100|1", bad);
        cache.flush();
    }

    std::FILE *sink = std::tmpfile();
    ASSERT_NE(sink, nullptr);
    ValidateOptions opts;
    opts.cachePath = path;
    opts.jsonOut = json;
    opts.out = sink;
    ValidateReport rep;
    EXPECT_EQ(runValidate(opts, &rep), 1);
    ASSERT_EQ(rep.violations.size(), 1u);
    EXPECT_EQ(rep.violations[0].check, "field-sane");

    // The JSON report carries the same verdict for CI.
    std::ifstream jf(json);
    ASSERT_TRUE(jf.good());
    std::stringstream ss;
    ss << jf.rdbuf();
    EXPECT_NE(ss.str().find("\"clean\": false"), std::string::npos);
    EXPECT_NE(ss.str().find("field-sane"), std::string::npos);
    std::fclose(sink);
    std::remove(path.c_str());
    std::remove(json.c_str());
}

TEST(ValidateTest, DiesCleanlyOnAMissingCorpus)
{
    ValidateOptions store;
    store.storeDir = ::testing::TempDir() + "/no_such_store_dir";
    EXPECT_EXIT(runValidate(store), ::testing::ExitedWithCode(1),
                "no result store");
    ValidateOptions cache;
    cache.cachePath = ::testing::TempDir() + "/no_such_cache.csv";
    EXPECT_EXIT(runValidate(cache), ::testing::ExitedWithCode(1),
                "no result cache");
}

// ---------------------------------------------------------------------
// Analytic predictor sanity (unit level; corpus envelopes are checked
// by the validate CI job over a real sweep)
// ---------------------------------------------------------------------

TEST(AnalyticModelTest, PredictsTheExactTermsExactly)
{
    const Workload *fft = findWorkload("fft");
    ASSERT_NE(fft, nullptr);
    WorkloadFootprint fp;
    ASSERT_TRUE(fft->footprint(fp));
    EXPECT_GT(fp.privateBytes + fp.sharedBytes, 0.0);

    // Hybrid: only the LLC is eDRAM, so P.all leaves no occupancy
    // estimate in the refresh term (upper levels of the uniform-eDRAM
    // machine run with data pinned Valid, which is occupancy-modeled).
    const MachineConfig cfg = MachineConfig::paperHybrid(
        RefreshPolicy::periodic(DataPolicy::All), usToTicks(50.0), 16);
    AnalyticInput in;
    in.fp = fp;
    in.execTicks = 1'000'000; // 1 ms
    in.instructions = 400'000;
    in.dramAccesses = 1'000;
    in.l3Misses = 900;
    const EnergyParams p = EnergyParams::calibrated();
    const AnalyticPrediction pred = analyticPredict(in, cfg, p);

    // DRAM and core are closed-form shared with the simulator.
    EXPECT_DOUBLE_EQ(pred.dram, 1'000 * p.eDramAccess);
    EXPECT_DOUBLE_EQ(pred.core,
                     p.eCorePerInstr * 400'000 +
                         p.leakCore * 16 * 1e-3);
    EXPECT_GT(pred.leakage, 0.0);
    EXPECT_GT(pred.refresh, 0.0);
    EXPECT_FALSE(pred.refreshIsCoarse); // P.all needs no occupancy
    EXPECT_GT(pred.systemTotal(), pred.memTotal());
}

TEST(AnalyticModelTest, EnvelopesWidenWithModelCoarseness)
{
    // SRAM (no refresh term) is the tightest; .all beats the
    // occupancy-modeled policies; unknown classes get extra slack.
    EXPECT_LT(analyticEnvelope("SRAM", 1),
              analyticEnvelope("P.all", 1));
    EXPECT_LT(analyticEnvelope("P.all", 1),
              analyticEnvelope("P.dirty", 1));
    EXPECT_LT(analyticEnvelope("R.WB(32,32)", 1),
              analyticEnvelope("R.WB(32,32)", 0));
}

} // namespace
} // namespace refrint
