/**
 * @file
 * Tests for the cache geometry address slicing, including the hashed
 * (XOR-folded) L3 set index and the anti-aliasing property it exists
 * for: power-of-two-strided regions must spread across sets.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/cache_geometry.hh"

namespace refrint::test
{

namespace
{

TEST(CacheGeometry, DerivedQuantitiesMatchTable51)
{
    const CacheGeometry l3{1024 * 1024, 8, 64, 4, 4, true};
    EXPECT_EQ(l3.numLines(), 16384u);
    EXPECT_EQ(l3.numSets(), 2048u);
    EXPECT_EQ(l3.lineBits(), 6u);
    EXPECT_EQ(l3.setBits(), 11u);
}

TEST(CacheGeometry, LineAddrMasksTheOffset)
{
    const CacheGeometry g{32 * 1024, 4, 64, 1};
    EXPECT_EQ(g.lineAddr(0x12345), 0x12340u);
    EXPECT_EQ(g.lineAddr(0x12340), 0x12340u);
    EXPECT_EQ(g.tagOf(0x1237F), g.tagOf(0x12340));
}

TEST(CacheGeometry, StraightIndexUsesTheBitsAboveTheShift)
{
    const CacheGeometry g{32 * 1024, 8, 64, 4, 2, false}; // 64 sets
    // indexShift 2: set bits are addr[8..13].
    EXPECT_EQ(g.setIndex(0), 0u);
    EXPECT_EQ(g.setIndex(0x100), 1u);
    EXPECT_EQ(g.setIndex(0x100 * 64), 0u); // wraps
}

TEST(CacheGeometry, HashedIndexIsStableAndInRange)
{
    const CacheGeometry g{32 * 1024, 8, 64, 4, 2, true};
    for (Addr a = 0; a < 1 << 22; a += 4093) {
        const std::uint32_t s = g.setIndex(a);
        EXPECT_LT(s, g.numSets());
        EXPECT_EQ(s, g.setIndex(a)); // deterministic
        // Offset bits within the same line don't matter.
        EXPECT_EQ(g.setIndex(g.lineAddr(a)),
                  g.setIndex(g.lineAddr(a) + 63));
    }
}

TEST(CacheGeometry, HashedIndexBreaksPowerOfTwoAliasing)
{
    // 16 regions spaced 64 MB apart, same offset within each: under
    // straight indexing all 16 land in one set (the thrashing artifact
    // this hash exists to remove); under hashing they spread out.
    const CacheGeometry straight{1024 * 1024, 8, 64, 4, 4, false};
    const CacheGeometry hashed{1024 * 1024, 8, 64, 4, 4, true};

    std::set<std::uint32_t> straightSets, hashedSets;
    for (Addr c = 0; c < 16; ++c) {
        const Addr a = 0x1000'0000 + c * 0x0400'0000;
        straightSets.insert(straight.setIndex(a));
        hashedSets.insert(hashed.setIndex(a));
    }
    EXPECT_EQ(straightSets.size(), 1u);
    EXPECT_GE(hashedSets.size(), 12u);
}

TEST(CacheGeometry, HashedIndexCoversAllSetsUniformly)
{
    const CacheGeometry g{32 * 1024, 8, 64, 4, 2, true}; // 64 sets
    std::vector<std::uint32_t> histo(g.numSets(), 0);
    const Addr span = Addr{0x100} * g.numSets(); // one straight pass
    for (Addr a = 0; a < span; a += 0x100)
        ++histo[g.setIndex(a)];
    // A single straight pass is a permutation under the fold: every set
    // is hit exactly once.
    for (std::uint32_t h : histo)
        EXPECT_EQ(h, 1u);
}

} // namespace
} // namespace refrint::test
