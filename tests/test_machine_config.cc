/**
 * @file
 * MachineConfig descriptor tests: factory shapes, torus derivation,
 * validation, machine labels — plus end-to-end smoke runs of the new
 * degrees of freedom (32-core and hybrid SRAM/eDRAM machines) with
 * full coherence/refresh invariant checks.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"
#include "harness/binning.hh"
#include "harness/sweep.hh"
#include "test_util.hh"
#include "workload/micro.hh"

namespace refrint
{
namespace
{

using test::runTiny;
using test::tinyConfig;
using test::tinyEdram;

TEST(MachineConfig, PaperDefaultReproducesTable51)
{
    const MachineConfig c = MachineConfig::paper();
    EXPECT_EQ(c.numCores, 16u);
    EXPECT_EQ(c.numBanks, 16u);
    EXPECT_EQ(c.torusDim, 4u);
    ASSERT_EQ(c.levels.size(), 4u);
    EXPECT_TRUE(c.machineId.empty());

    EXPECT_EQ(c.il1().geom.sizeBytes, 32u * 1024);
    EXPECT_EQ(c.il1().geom.assoc, 2u);
    EXPECT_EQ(c.dl1().geom.assoc, 4u);
    EXPECT_EQ(c.l2().geom.sizeBytes, 256u * 1024);
    EXPECT_EQ(c.l2().geom.latency, 2u);
    EXPECT_EQ(c.llc().geom.sizeBytes, 1024u * 1024);
    EXPECT_EQ(c.llc().geom.indexShift, 4u); // 16 banks -> 4 bits
    EXPECT_TRUE(c.llc().geom.hashSets);
    EXPECT_EQ(c.llc().sharing, Sharing::BankedShared);
    EXPECT_EQ(c.llcBytes(), 16u * 1024 * 1024);

    EXPECT_EQ(c.llc().engine.sentryGroupSize, 16u);
    EXPECT_EQ(c.il1().engine.sentryGroupSize, 1u);

    EXPECT_EQ(MachineConfig::paperSram().configName(), "SRAM");
    const RefreshPolicy pol = RefreshPolicy::refrint(DataPolicy::WB, 8, 8);
    EXPECT_EQ(
        MachineConfig::paperEdram(pol, usToTicks(50.0)).configName(),
        pol.name());
}

TEST(MachineConfig, TorusDimensionDerivesFromCoreCount)
{
    EXPECT_EQ(torusDimFor(4), 2u);
    EXPECT_EQ(torusDimFor(8), 3u);
    EXPECT_EQ(torusDimFor(16), 4u);
    EXPECT_EQ(torusDimFor(32), 6u);
    EXPECT_EQ(torusDimFor(36), 6u);
    EXPECT_EQ(torusDimFor(64), 8u);

    const MachineConfig c32 = MachineConfig::paper(32);
    EXPECT_EQ(c32.numBanks, 32u);
    EXPECT_EQ(c32.torusDim, 6u);
    EXPECT_EQ(c32.llc().geom.indexShift, 5u); // 32 banks -> 5 bits
    EXPECT_EQ(c32.llcBytes(), 32u * 1024 * 1024);

    const MachineConfig c8 = MachineConfig::paper(8);
    EXPECT_EQ(c8.torusDim, 3u);
    EXPECT_EQ(c8.llc().geom.indexShift, 3u);
}

TEST(MachineConfig, MachineIdsKeyTheSweepCache)
{
    const RefreshPolicy pol = RefreshPolicy::refrint(DataPolicy::Valid);
    EXPECT_EQ(MachineConfig::paper().machineId, "");
    EXPECT_EQ(MachineConfig::paper(32).machineId, "c32");
    EXPECT_EQ(MachineConfig::paperSram(64).machineId, "c64");
    EXPECT_EQ(
        MachineConfig::paperHybrid(pol, usToTicks(50.0)).machineId,
        "hyb");
    EXPECT_EQ(
        MachineConfig::paperHybrid(pol, usToTicks(50.0), 32).machineId,
        "c32+hyb");
}

TEST(MachineConfig, TechSummaryAndHybridPredicates)
{
    const RefreshPolicy pol = RefreshPolicy::refrint(DataPolicy::Valid);
    EXPECT_EQ(MachineConfig::paper().techSummary(), "eDRAM");
    EXPECT_EQ(MachineConfig::paperSram().techSummary(), "SRAM");
    const MachineConfig hyb =
        MachineConfig::paperHybrid(pol, usToTicks(50.0));
    EXPECT_TRUE(hyb.hybrid());
    EXPECT_TRUE(hyb.anyEdram());
    EXPECT_EQ(hyb.techSummary(), "SRAM(il1/dl1/l2)+eDRAM(l3)");
    EXPECT_FALSE(MachineConfig::paper().hybrid());
    EXPECT_FALSE(MachineConfig::paperSram().anyEdram());
}

TEST(MachineConfig, SetUpperDataPolicyKeepsLlcTimingAndParameters)
{
    MachineConfig c =
        tinyEdram(RefreshPolicy::refrint(DataPolicy::WB, 4, 8));
    EXPECT_EQ(c.il1().policy.data, DataPolicy::Valid);
    c.setUpperDataPolicy(DataPolicy::WB);
    EXPECT_EQ(c.l2().policy.data, DataPolicy::WB);
    EXPECT_EQ(c.l2().policy.time, TimePolicy::Refrint);
    EXPECT_EQ(c.l2().policy.n, 4u);
    EXPECT_EQ(c.l2().policy.m, 8u);
    EXPECT_EQ(c.llc().policy.data, DataPolicy::WB); // LLC untouched
}

TEST(MachineConfig, ValidateRejectsBrokenDescriptorSets)
{
    EXPECT_DEATH(MachineConfig::paper(2), "4\\.\\.64");
    EXPECT_DEATH(MachineConfig::paper(65), "4\\.\\.64");

    MachineConfig noLlc = MachineConfig::paper();
    noLlc.levels.pop_back();
    EXPECT_DEATH(noLlc.validate(), "exactly once");

    MachineConfig llcNotLast = MachineConfig::paper();
    std::swap(llcNotLast.levels[2], llcNotLast.levels[3]);
    EXPECT_DEATH(llcNotLast.validate(), "last descriptor");

    MachineConfig splitL1 = MachineConfig::paper();
    splitL1.il1().tech = CellTech::Sram;
    EXPECT_DEATH(splitL1.validate(), "share a cell technology");

    MachineConfig tooWide = MachineConfig::paper();
    tooWide.numCores = 65;
    EXPECT_DEATH(tooWide.validate(), "64");

    MachineConfig dupName = MachineConfig::paper();
    dupName.dl1().name = "il1";
    EXPECT_DEATH(dupName.validate(), "duplicate level name");

    MachineConfig emptyName = MachineConfig::paper();
    emptyName.l2().name = "";
    EXPECT_DEATH(emptyName.validate(), "needs a name");
}

TEST(MachineSmoke, BinningMeasuresVisibilityOnTheSramTwin)
{
    // An eDRAM (or hybrid) machine passed to measureBinning must not
    // perturb the visibility metric with refresh effects: the paper's
    // methodology measures it on the SRAM machine.
    UniformWorkload app(32 * 1024, 0.3);
    BinningThresholds thr;
    thr.footprintRefs = 2000;
    thr.visibilityRefs = 400;
    const BinningMeasurement onSram =
        measureBinning(app, thr, test::tinyConfig(CellTech::Sram));
    const BinningMeasurement onEdram =
        measureBinning(app, thr, test::tinyConfig(CellTech::Edram));
    EXPECT_DOUBLE_EQ(onSram.writebacksPerKiloInstr,
                     onEdram.writebacksPerKiloInstr);
}

TEST(MachineConfig, ScaledDownShrinksEveryLevel)
{
    const MachineConfig c = MachineConfig::paper().scaledDown(4);
    EXPECT_EQ(c.il1().geom.sizeBytes, 8u * 1024);
    EXPECT_EQ(c.llc().geom.sizeBytes, 256u * 1024);
    EXPECT_EQ(c.numCores, 16u); // scale factor touches geometry only
}

// ---------------------------------------------------------------------
// End-to-end smoke runs of the new machine axes
// ---------------------------------------------------------------------

/** Run @p cfg briefly and verify every coherence/refresh invariant. */
void
smoke(const MachineConfig &cfg, std::uint64_t refs = 2500)
{
    PingPongWorkload app(64);
    SimParams sim;
    sim.refsPerCore = refs;
    sim.seed = 11;
    CmpSystem sys(cfg, app, sim);
    const Tick end = sys.run();
    sys.hierarchy().checkInvariants(end);

    const HierarchyCounts n = sys.hierarchy().counts();
    // No line is ever read past its retention deadline.
    EXPECT_EQ(n.decayedHits, 0u);
}

TEST(MachineSmoke, ThirtyTwoCoreRefrintKeepsInvariants)
{
    MachineConfig cfg = tinyConfig(CellTech::Edram, 32);
    cfg.setLlcPolicy(RefreshPolicy::refrint(DataPolicy::Valid));
    smoke(cfg);

    // And the Periodic engine on the same scaled machine.
    cfg.setLlcPolicy(RefreshPolicy::periodic(DataPolicy::All));
    smoke(cfg);
}

TEST(MachineSmoke, SixtyFourCoreMachineRuns)
{
    MachineConfig cfg = tinyConfig(CellTech::Edram, 64);
    cfg.setLlcPolicy(RefreshPolicy::refrint(DataPolicy::WB, 8, 8));
    smoke(cfg, 1200);
}

TEST(MachineSmoke, NonPowerOfTwoCoreCountUsesModuloBanking)
{
    // 9 cores -> 3x3 torus, 9 banks: bankOf falls back to modulo.
    MachineConfig cfg = tinyConfig(CellTech::Edram, 9);
    smoke(cfg);
}

TEST(MachineSmoke, HybridSramUppersOverEdramLlc)
{
    MachineConfig cfg =
        tinyEdram(RefreshPolicy::refrint(DataPolicy::Valid));
    cfg.il1().tech = CellTech::Sram;
    cfg.dl1().tech = CellTech::Sram;
    cfg.l2().tech = CellTech::Sram;
    ASSERT_TRUE(cfg.hybrid());

    PingPongWorkload app(64);
    SimParams sim;
    sim.refsPerCore = 2500;
    sim.seed = 11;
    CmpSystem sys(cfg, app, sim);
    const Tick end = sys.run();
    sys.hierarchy().checkInvariants(end);

    const HierarchyCounts n = sys.hierarchy().counts();
    EXPECT_EQ(n.decayedHits, 0u);
    // SRAM uppers never refresh; the eDRAM LLC does.
    EXPECT_EQ(n.l1Refreshes, 0u);
    EXPECT_EQ(n.l2Refreshes, 0u);
    EXPECT_GT(n.l3Refreshes, 0u);
}

TEST(MachineSmoke, HybridLeakageSitsBetweenSramAndEdram)
{
    // Same counts and window, three technology mixes: hybrid leakage
    // must land strictly between all-eDRAM and all-SRAM.
    const RefreshPolicy pol = RefreshPolicy::refrint(DataPolicy::Valid);
    const Tick win = usToTicks(100.0);
    HierarchyCounts n{}; // leakage-only comparison
    const EnergyParams p = EnergyParams::calibrated();

    const double sram =
        computeEnergy(p, n, MachineConfig::paperSram(), win, 0).leakage;
    const double edram =
        computeEnergy(p, n, MachineConfig::paperEdram(pol, win), win, 0)
            .leakage;
    const double hyb =
        computeEnergy(p, n, MachineConfig::paperHybrid(pol, win), win, 0)
            .leakage;
    EXPECT_LT(edram, hyb);
    EXPECT_LT(hyb, sram);
    EXPECT_NEAR(edram, sram * p.edramLeakRatio, sram * 1e-12);
}

TEST(MachineSmoke, BinningReadsLlcCapacityFromTheConfig)
{
    // A footprint that is "large" against a tiny LLC must stop being
    // large when judged against a machine with a bigger LLC.
    UniformWorkload app(256 * 1024, 0.3);
    BinningThresholds thr;
    thr.footprintRefs = 4000;
    thr.visibilityRefs = 400;

    MachineConfig small = tinyConfig(CellTech::Sram); // 128 KB LLC
    const BinningMeasurement onSmall = measureBinning(app, thr, small);
    EXPECT_TRUE(onSmall.largeFootprint);

    const BinningMeasurement onPaper =
        measureBinning(app, thr, MachineConfig::paperSram()); // 16 MB
    EXPECT_FALSE(onPaper.largeFootprint);
}

TEST(MachineSmoke, ThirtyTwoCoreSweepRowsAreMachineKeyed)
{
    // A one-policy sweep on the 32-core machine: rows normalize
    // against the 32-core SRAM baseline and carry the machine label.
    SweepSpec spec;
    spec.apps = {findWorkload("fft")};
    spec.retentions = {usToTicks(50.0)};
    spec.policies = {RefreshPolicy::refrint(DataPolicy::Valid)};
    spec.machines = {MachineAxis{32, false}};
    spec.sim.refsPerCore = 400;
    spec.jobs = 1;
    const SweepResult s = runSweep(spec, /*cachePath=*/"");
    ASSERT_EQ(s.raw.size(), 2u);
    EXPECT_EQ(s.raw[0].config, "SRAM");
    EXPECT_EQ(s.raw[0].machine, "c32");
    ASSERT_EQ(s.normalized.size(), 1u);
    EXPECT_EQ(s.normalized[0].machine, "c32");
    EXPECT_GT(s.normalized[0].memEnergy, 0.0);
}

} // namespace
} // namespace refrint
