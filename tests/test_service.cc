/**
 * @file
 * Tests for the experiment service (src/service/): record framing,
 * the sharded result store (concurrent writers, torn tails, legacy
 * migration), the range worker, and the coordinator's retry/merge
 * contract.  The multi-process tests fork real children — the same
 * mechanics production uses — with a spawner that calls
 * runWorkerRange() directly instead of exec'ing the CLI binary.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "api/experiment_plan.hh"
#include "api/run_cache.hh"
#include "api/session.hh"
#include "service/coordinator.hh"
#include "service/framing.hh"
#include "service/store.hh"
#include "service/worker.hh"

namespace refrint::test
{
namespace
{

/** Self-deleting temp directory for store/plan files. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tpl[] = "/tmp/refrint_svc_XXXXXX";
        path = ::mkdtemp(tpl);
        EXPECT_FALSE(path.empty());
    }

    ~TempDir() { std::filesystem::remove_all(path); }

    std::string
    file(const std::string &name) const
    {
        return path + "/" + name;
    }
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** A deterministic, distinguishable row per seed. */
CacheRow
makeRow(double seed)
{
    CacheRow c{};
    double *fields = &c.execTicks;
    const std::size_t n = sizeof(CacheRow) / sizeof(double);
    for (std::size_t i = 0; i < n; ++i)
        fields[i] = seed * 1000.0 + static_cast<double>(i) + 0.125;
    return c;
}

bool
sameRow(const CacheRow &a, const CacheRow &b)
{
    return encodeCacheRow(a) == encodeCacheRow(b);
}

/**
 * A two-group plan (fft and lu, each an SRAM baseline plus three
 * policies) small enough to simulate in milliseconds.
 */
ExperimentPlan
smallPlan()
{
    ExperimentPlan plan;
    plan.name = "svc-test";
    for (const char *app : {"fft", "lu"}) {
        Scenario base;
        base.app = app;
        base.config = "SRAM";
        base.retentionUs = 0.0;
        base.cores = 4;
        base.sim.refsPerCore = 300;
        base.sim.seed = 1;
        const int b = plan.addBaseline(base);
        for (const char *pol : {"P.all", "R.WB(32,32)", "P.dirty"}) {
            Scenario s = base;
            s.config = pol;
            s.retentionUs = 50.0;
            plan.add(s, b);
        }
    }
    return plan;
}

/** The single-process reference: the whole plan through one worker. */
std::string
referenceRows(const std::string &planPath, std::size_t n,
              const std::string &outPath)
{
    std::FILE *f = std::fopen(outPath.c_str(), "w");
    EXPECT_NE(f, nullptr);
    WorkerRangeOptions opts;
    opts.planPath = planPath;
    opts.begin = 0;
    opts.end = n;
    opts.out = f;
    EXPECT_EQ(runWorkerRange(opts), 0);
    std::fclose(f);
    return readFile(outPath);
}

/** Fork a child that runs @p task via runWorkerRange into its temp
 *  file — the in-process stand-in for fork+exec of the CLI. */
pid_t
forkWorker(const std::string &planPath, const std::string &storeDir,
           const WorkerTask &task)
{
    std::fflush(nullptr); // no buffered bytes duplicated into the child
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    char attempt[16];
    std::snprintf(attempt, sizeof(attempt), "%u", task.attempt);
    ::setenv("REFRINT_WORKER_ATTEMPT", attempt, 1);
    std::FILE *f = std::fopen(task.outPath.c_str(), "w");
    if (f == nullptr)
        ::_exit(127);
    WorkerRangeOptions opts;
    opts.planPath = planPath;
    opts.begin = task.begin;
    opts.end = task.end;
    opts.storeDir = storeDir;
    opts.out = f;
    const int rc = runWorkerRange(opts);
    std::fclose(f);
    ::_exit(rc);
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

TEST(FramingTest, RoundTripsPayloads)
{
    for (const std::string &payload :
         {std::string("k;1,2,3"), std::string(""),
          std::string(1000, 'x')}) {
        const std::string rec = frameRecord(payload);
        ASSERT_GE(rec.size(), 2u);
        EXPECT_EQ(rec.front(), '\n');
        EXPECT_EQ(rec.back(), '\n');
        // Strip the framing newlines and validate the line itself.
        std::string out;
        EXPECT_TRUE(
            unframeRecord(rec.substr(1, rec.size() - 2), out));
        EXPECT_EQ(out, payload);
    }

    std::string out;
    EXPECT_FALSE(unframeRecord("", out));
    EXPECT_FALSE(unframeRecord("garbage", out));
    EXPECT_FALSE(unframeRecord("R 3 0000000000000000 abc", out)); // sum
    EXPECT_FALSE(unframeRecord("R 4 0 abc", out));                // len
}

TEST(FramingTest, EveryTruncationRecoversExactlyTheCommittedPrefix)
{
    std::vector<std::string> payloads;
    std::string file;
    for (int i = 0; i < 5; ++i) {
        payloads.push_back("key" + std::to_string(i) + ";" +
                           std::string(static_cast<std::size_t>(i) * 7,
                                       'a' + static_cast<char>(i)));
        file += frameRecord(payloads.back());
    }

    // However the tail is torn, every record the scan yields is a
    // clean prefix of what was committed — never garbage, never a
    // record glued to torn bytes.
    for (std::size_t cut = 0; cut <= file.size(); ++cut) {
        std::vector<std::string> got;
        scanRecords(file.substr(0, cut),
                    [&](const std::string &p) { got.push_back(p); });
        ASSERT_LE(got.size(), payloads.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], payloads[i]) << "cut at " << cut;
    }

    // The untruncated file scans completely, with nothing torn.
    const ScanStats full =
        scanRecords(file, [](const std::string &) {});
    EXPECT_EQ(full.committed, payloads.size());
    EXPECT_EQ(full.torn, 0u);
}

// ---------------------------------------------------------------------
// ShardedStore
// ---------------------------------------------------------------------

TEST(ShardedStoreTest, InsertLookupAndReopen)
{
    TempDir dir;
    const std::string storeDir = dir.file("store");
    {
        ShardedStore store(storeDir, 3);
        EXPECT_EQ(store.shards(), 3u);
        for (int i = 0; i < 40; ++i)
            store.insert("key-" + std::to_string(i),
                         makeRow(static_cast<double>(i)));
        store.flush();
        EXPECT_EQ(store.rowCount(), 40u);
    }
    // Reopen: the manifest fixes the shard count (the explicit arg is
    // ignored), and every row survives with exact values.
    ShardedStore store(storeDir, 16);
    EXPECT_EQ(store.shards(), 3u);
    EXPECT_EQ(store.rowCount(), 40u);
    EXPECT_EQ(store.tornRecords(), 0u);
    for (int i = 0; i < 40; ++i) {
        CacheRow c{};
        ASSERT_TRUE(store.lookup("key-" + std::to_string(i), c));
        EXPECT_TRUE(sameRow(c, makeRow(static_cast<double>(i))));
    }
    CacheRow c{};
    EXPECT_FALSE(store.lookup("no-such-key", c));
}

TEST(ShardedStoreTest, TornTailIsIgnoredCommittedRowsSurvive)
{
    TempDir dir;
    const std::string storeDir = dir.file("store");
    std::string shardFile;
    {
        ShardedStore store(storeDir, 2);
        for (int i = 0; i < 10; ++i)
            store.insert("key-" + std::to_string(i),
                         makeRow(static_cast<double>(i)));
        store.flush();
        shardFile = store.shardPath(store.shardOf("key-3"));
    }
    // Simulate a crash mid-append: a torn half-record at the tail.
    {
        std::ofstream out(shardFile, std::ios::app | std::ios::binary);
        out << "\nR 57 01234abc key-99;1,2";
    }
    ShardedStore store(storeDir);
    EXPECT_EQ(store.rowCount(), 10u);
    EXPECT_GE(store.tornRecords(), 1u);
    CacheRow c{};
    EXPECT_FALSE(store.lookup("key-99", c));
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(store.lookup("key-" + std::to_string(i), c));
        EXPECT_TRUE(sameRow(c, makeRow(static_cast<double>(i))));
    }
}

TEST(ShardedStoreTest, TwoProcessesAppendToTheSameStore)
{
    TempDir dir;
    const std::string storeDir = dir.file("store");
    const int perChild = 150;
    // Create the store (and its manifest) before forking so the
    // children race only on the shard appends, which is the contract.
    { ShardedStore store(storeDir); }

    std::vector<pid_t> children;
    for (int child = 0; child < 2; ++child) {
        std::fflush(nullptr);
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            ShardedStore store(storeDir);
            for (int i = 0; i < perChild; ++i)
                store.insert("p" + std::to_string(child) + "-" +
                                 std::to_string(i),
                             makeRow(child * 1000.0 + i));
            store.flush();
            ::_exit(0);
        }
        children.push_back(pid);
    }
    for (const pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        ASSERT_EQ(WEXITSTATUS(status), 0);
    }

    // Every row from both processes is committed and intact.
    ShardedStore store(storeDir);
    EXPECT_EQ(store.rowCount(), 2u * perChild);
    EXPECT_EQ(store.tornRecords(), 0u);
    for (int child = 0; child < 2; ++child)
        for (int i = 0; i < perChild; ++i) {
            CacheRow c{};
            const std::string key = "p" + std::to_string(child) + "-" +
                                    std::to_string(i);
            ASSERT_TRUE(store.lookup(key, c)) << key;
            EXPECT_TRUE(sameRow(c, makeRow(child * 1000.0 + i)));
        }
}

TEST(ShardedStoreTest, MigratesLegacyCacheRowsExactly)
{
    TempDir dir;
    const std::string cachePath = dir.file("legacy.csv");
    {
        RunCache legacy(cachePath);
        for (int i = 0; i < 25; ++i)
            legacy.insert("legacy-" + std::to_string(i),
                          makeRow(static_cast<double>(i)));
        legacy.flush();
    }
    ShardedStore store(dir.file("store"));
    EXPECT_EQ(migrateLegacyCache(cachePath, store), 25u);
    EXPECT_EQ(store.rowCount(), 25u);
    for (int i = 0; i < 25; ++i) {
        CacheRow c{};
        ASSERT_TRUE(store.lookup("legacy-" + std::to_string(i), c));
        EXPECT_TRUE(sameRow(c, makeRow(static_cast<double>(i))));
    }
    // The source file is read-only for the migration.
    EXPECT_TRUE(std::filesystem::exists(cachePath));

    // A missing source is a clean exit-1 diagnostic.
    EXPECT_EXIT(migrateLegacyCache(dir.file("nope.csv"), store),
                ::testing::ExitedWithCode(1), "cannot read legacy");
}

// ---------------------------------------------------------------------
// Legacy cache: amortized flush
// ---------------------------------------------------------------------

TEST(RunCacheTest, FlushCountGrowsLogarithmicallyNotLinearly)
{
    TempDir dir;
    const std::string path = dir.file("cache.csv");
    const int n = 2000;
    {
        RunCache cache(path);
        for (int i = 0; i < n; ++i)
            cache.insert("k" + std::to_string(i),
                         makeRow(static_cast<double>(i)));
        // Fixed-interval flushing would rewrite the file n/16 = 125
        // times (O(n^2) bytes); the dirty-count threshold keeps it
        // logarithmic in n.
        EXPECT_LE(cache.rewrites(), 40u);
        EXPECT_GE(cache.rewrites(), 5u);
        cache.flush();
    }
    RunCache reloaded(path);
    EXPECT_EQ(reloaded.rowCount(), static_cast<std::size_t>(n));
    CacheRow c{};
    ASSERT_TRUE(reloaded.lookup("k1234", c));
    EXPECT_TRUE(sameRow(c, makeRow(1234.0)));
}

// ---------------------------------------------------------------------
// Session metrics
// ---------------------------------------------------------------------

TEST(SessionMetricsTest, CountsSimulatedThenWarmRuns)
{
    TempDir dir;
    const ExperimentPlan plan = smallPlan();
    {
        Session session(
            std::make_unique<ShardedStore>(dir.file("store")), 2);
        const SweepResult r = session.run(plan);
        EXPECT_EQ(r.metrics.scenarios, plan.size());
        EXPECT_EQ(r.metrics.simulated, plan.size());
        EXPECT_EQ(r.metrics.cacheHits, 0u);
        EXPECT_GT(r.metrics.wallSeconds, 0.0);
        EXPECT_GT(r.metrics.busySeconds, 0.0);
        EXPECT_EQ(r.metrics.jobs, 2u);
        EXPECT_GT(r.metrics.utilization(), 0.0);
    }
    // A fresh session over the same store answers everything warm.
    Session session(std::make_unique<ShardedStore>(dir.file("store")),
                    1);
    const SweepResult r = session.run(plan);
    EXPECT_EQ(r.metrics.simulated, 0u);
    EXPECT_EQ(r.metrics.cacheHits, plan.size());
}

// ---------------------------------------------------------------------
// Coordinator / worker
// ---------------------------------------------------------------------

TEST(CoordinatorTest, RangesAlignToBaselineGroups)
{
    const ExperimentPlan plan = smallPlan(); // groups at 0 and 4
    const auto two = shardPlanRanges(plan, 2);
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0].first, 0u);
    EXPECT_EQ(two[0].second, 4u);
    EXPECT_EQ(two[1].first, 4u);
    EXPECT_EQ(two[1].second, 8u);

    // More workers than groups: the split falls back to even cuts and
    // still covers [0, n) contiguously.
    const auto three = shardPlanRanges(plan, 3);
    ASSERT_EQ(three.size(), 3u);
    EXPECT_EQ(three.front().first, 0u);
    EXPECT_EQ(three.back().second, plan.size());
    for (std::size_t i = 0; i + 1 < three.size(); ++i)
        EXPECT_EQ(three[i].second, three[i + 1].first);
}

TEST(CoordinatorTest, MergedRowsAreByteIdenticalToSingleProcess)
{
    TempDir dir;
    const ExperimentPlan plan = smallPlan();
    const std::string planPath = dir.file("plan.json");
    plan.saveFile(planPath);
    const std::string ref =
        referenceRows(planPath, plan.size(), dir.file("ref.jsonl"));
    ASSERT_FALSE(ref.empty());

    CoordinatorOptions opts;
    opts.planPath = planPath;
    opts.workers = 3; // > group count: exercises mid-group ranges too
    opts.spawner = [&](const WorkerTask &task) {
        return forkWorker(planPath, "", task);
    };
    std::FILE *out = std::fopen(dir.file("merged.jsonl").c_str(), "w");
    ASSERT_NE(out, nullptr);
    opts.out = out;
    EXPECT_EQ(runCoordinator(opts), 0);
    std::fclose(out);

    EXPECT_EQ(readFile(dir.file("merged.jsonl")), ref);
}

TEST(CoordinatorTest, RetriesAKilledWorkerAndStaysByteIdentical)
{
    TempDir dir;
    const ExperimentPlan plan = smallPlan();
    const std::string planPath = dir.file("plan.json");
    plan.saveFile(planPath);
    const std::string ref =
        referenceRows(planPath, plan.size(), dir.file("ref.jsonl"));

    // One worker SIGKILLs itself right before emitting global row 5
    // on its first attempt; the retry (attempt 1) runs clean.
    ::setenv("REFRINT_TEST_CRASH_INDEX", "5", 1);
    ::unsetenv("REFRINT_WORKER_ATTEMPT");

    CoordinatorOptions opts;
    opts.planPath = planPath;
    opts.workers = 3;
    opts.storeDir = dir.file("store"); // committed rows are reused
    opts.spawner = [&](const WorkerTask &task) {
        return forkWorker(planPath, opts.storeDir, task);
    };
    std::FILE *out = std::fopen(dir.file("merged.jsonl").c_str(), "w");
    ASSERT_NE(out, nullptr);
    opts.out = out;
    const int rc = runCoordinator(opts);
    std::fclose(out);
    ::unsetenv("REFRINT_TEST_CRASH_INDEX");
    ASSERT_EQ(rc, 0);

    // Byte-identity needs the "simulated" flags to match too — compare
    // modulo that flag (the retried worker reuses rows the killed
    // attempt already committed to the shared store), then exactly on
    // everything else.
    std::istringstream a(readFile(dir.file("merged.jsonl"))), b(ref);
    std::string la, lb;
    std::size_t rows = 0;
    while (std::getline(a, la) && std::getline(b, lb)) {
        const std::string t = "\"simulated\":true";
        const std::string f = "\"simulated\":false";
        for (std::string *s : {&la, &lb}) {
            const auto at = s->find(f);
            if (at != std::string::npos)
                s->replace(at, f.size(), t);
        }
        EXPECT_EQ(la, lb) << "row " << rows;
        ++rows;
    }
    EXPECT_EQ(rows, plan.size());
    EXPECT_FALSE(std::getline(b, lb)); // same row count
}

TEST(WorkerTest, MidGroupRangeMatchesTheReferenceSlice)
{
    TempDir dir;
    const ExperimentPlan plan = smallPlan();
    const std::string planPath = dir.file("plan.json");
    plan.saveFile(planPath);
    const std::string ref =
        referenceRows(planPath, plan.size(), dir.file("ref.jsonl"));

    // Range 2:6 starts mid-group: the worker must prepend the fft
    // baseline (index 0) for normalization but suppress its row.
    std::FILE *f = std::fopen(dir.file("slice.jsonl").c_str(), "w");
    ASSERT_NE(f, nullptr);
    WorkerRangeOptions opts;
    opts.planPath = planPath;
    opts.begin = 2;
    opts.end = 6;
    opts.out = f;
    EXPECT_EQ(runWorkerRange(opts), 0);
    std::fclose(f);

    std::istringstream all(ref);
    std::string line, expect;
    for (std::size_t i = 0; std::getline(all, line); ++i)
        if (i >= 2 && i < 6)
            expect += line + "\n";
    EXPECT_EQ(readFile(dir.file("slice.jsonl")), expect);
}

TEST(WorkerTest, RejectsARangeOutsideThePlan)
{
    TempDir dir;
    const std::string planPath = dir.file("plan.json");
    smallPlan().saveFile(planPath);
    WorkerRangeOptions opts;
    opts.planPath = planPath;
    opts.begin = 4;
    opts.end = 99;
    opts.out = stderr;
    EXPECT_EQ(runWorkerRange(opts), 1);
}

} // namespace
} // namespace refrint::test
