/**
 * @file
 * Tests for the experiment service (src/service/): record framing,
 * the sharded result store (concurrent writers, torn tails, legacy
 * migration), scrub & repair, the range worker, the coordinator's
 * retry/deadline/salvage contract under injected faults
 * ($REFRINT_FAULTS), and the serve loop's overload control (queue
 * shedding, idle timeout, SIGTERM drain).  The multi-process tests
 * fork real children — the same mechanics production uses — with a
 * spawner that calls runWorkerRange() directly instead of exec'ing
 * the CLI binary.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "api/experiment_plan.hh"
#include "api/run_cache.hh"
#include "api/session.hh"
#include "service/coordinator.hh"
#include "service/faults.hh"
#include "service/framing.hh"
#include "service/serve.hh"
#include "service/store.hh"
#include "service/worker.hh"

namespace refrint::test
{
namespace
{

/** Self-deleting temp directory for store/plan files. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tpl[] = "/tmp/refrint_svc_XXXXXX";
        path = ::mkdtemp(tpl);
        EXPECT_FALSE(path.empty());
    }

    ~TempDir() { std::filesystem::remove_all(path); }

    std::string
    file(const std::string &name) const
    {
        return path + "/" + name;
    }
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** A deterministic, distinguishable row per seed. */
CacheRow
makeRow(double seed)
{
    CacheRow c{};
    double *fields = &c.execTicks;
    const std::size_t n = sizeof(CacheRow) / sizeof(double);
    for (std::size_t i = 0; i < n; ++i)
        fields[i] = seed * 1000.0 + static_cast<double>(i) + 0.125;
    return c;
}

bool
sameRow(const CacheRow &a, const CacheRow &b)
{
    return encodeCacheRow(a) == encodeCacheRow(b);
}

/**
 * A two-group plan (fft and lu, each an SRAM baseline plus three
 * policies) small enough to simulate in milliseconds.
 */
ExperimentPlan
smallPlan()
{
    ExperimentPlan plan;
    plan.name = "svc-test";
    for (const char *app : {"fft", "lu"}) {
        Scenario base;
        base.app = app;
        base.config = "SRAM";
        base.retentionUs = 0.0;
        base.cores = 4;
        base.sim.refsPerCore = 300;
        base.sim.seed = 1;
        const int b = plan.addBaseline(base);
        for (const char *pol : {"P.all", "R.WB(32,32)", "P.dirty"}) {
            Scenario s = base;
            s.config = pol;
            s.retentionUs = 50.0;
            plan.add(s, b);
        }
    }
    return plan;
}

/** The single-process reference: the whole plan through one worker. */
std::string
referenceRows(const std::string &planPath, std::size_t n,
              const std::string &outPath)
{
    std::FILE *f = std::fopen(outPath.c_str(), "w");
    EXPECT_NE(f, nullptr);
    WorkerRangeOptions opts;
    opts.planPath = planPath;
    opts.begin = 0;
    opts.end = n;
    opts.out = f;
    EXPECT_EQ(runWorkerRange(opts), 0);
    std::fclose(f);
    return readFile(outPath);
}

/** Fork a child that runs @p task via runWorkerRange into its temp
 *  file — the in-process stand-in for fork+exec of the CLI. */
pid_t
forkWorker(const std::string &planPath, const std::string &storeDir,
           const WorkerTask &task)
{
    std::fflush(nullptr); // no buffered bytes duplicated into the child
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    char attempt[16];
    std::snprintf(attempt, sizeof(attempt), "%u", task.attempt);
    ::setenv("REFRINT_WORKER_ATTEMPT", attempt, 1);
    // The gtest parent touched the cached global fault plan (store
    // inserts query it) before the test setenv'd $REFRINT_FAULTS; a
    // real worker is a fresh exec and parses it on first use.
    FaultPlan::reloadGlobalForTest();
    std::FILE *f = std::fopen(task.outPath.c_str(), "w");
    if (f == nullptr)
        ::_exit(127);
    WorkerRangeOptions opts;
    opts.planPath = planPath;
    opts.begin = task.begin;
    opts.end = task.end;
    opts.storeDir = storeDir;
    opts.out = f;
    const int rc = runWorkerRange(opts);
    std::fclose(f);
    ::_exit(rc);
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

TEST(FramingTest, RoundTripsPayloads)
{
    for (const std::string &payload :
         {std::string("k;1,2,3"), std::string(""),
          std::string(1000, 'x')}) {
        const std::string rec = frameRecord(payload);
        ASSERT_GE(rec.size(), 2u);
        EXPECT_EQ(rec.front(), '\n');
        EXPECT_EQ(rec.back(), '\n');
        // Strip the framing newlines and validate the line itself.
        std::string out;
        EXPECT_TRUE(
            unframeRecord(rec.substr(1, rec.size() - 2), out));
        EXPECT_EQ(out, payload);
    }

    std::string out;
    EXPECT_FALSE(unframeRecord("", out));
    EXPECT_FALSE(unframeRecord("garbage", out));
    EXPECT_FALSE(unframeRecord("R 3 0000000000000000 abc", out)); // sum
    EXPECT_FALSE(unframeRecord("R 4 0 abc", out));                // len
}

TEST(FramingTest, EveryTruncationRecoversExactlyTheCommittedPrefix)
{
    std::vector<std::string> payloads;
    std::string file;
    for (int i = 0; i < 5; ++i) {
        payloads.push_back("key" + std::to_string(i) + ";" +
                           std::string(static_cast<std::size_t>(i) * 7,
                                       'a' + static_cast<char>(i)));
        file += frameRecord(payloads.back());
    }

    // However the tail is torn, every record the scan yields is a
    // clean prefix of what was committed — never garbage, never a
    // record glued to torn bytes.
    for (std::size_t cut = 0; cut <= file.size(); ++cut) {
        std::vector<std::string> got;
        scanRecords(file.substr(0, cut),
                    [&](const std::string &p) { got.push_back(p); });
        ASSERT_LE(got.size(), payloads.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], payloads[i]) << "cut at " << cut;
    }

    // The untruncated file scans completely, with nothing torn.
    const ScanStats full =
        scanRecords(file, [](const std::string &) {});
    EXPECT_EQ(full.committed, payloads.size());
    EXPECT_EQ(full.torn, 0u);
}

// ---------------------------------------------------------------------
// ShardedStore
// ---------------------------------------------------------------------

TEST(ShardedStoreTest, InsertLookupAndReopen)
{
    TempDir dir;
    const std::string storeDir = dir.file("store");
    {
        ShardedStore store(storeDir, 3);
        EXPECT_EQ(store.shards(), 3u);
        for (int i = 0; i < 40; ++i)
            store.insert("key-" + std::to_string(i),
                         makeRow(static_cast<double>(i)));
        store.flush();
        EXPECT_EQ(store.rowCount(), 40u);
    }
    // Reopen: the manifest fixes the shard count (the explicit arg is
    // ignored), and every row survives with exact values.
    ShardedStore store(storeDir, 16);
    EXPECT_EQ(store.shards(), 3u);
    EXPECT_EQ(store.rowCount(), 40u);
    EXPECT_EQ(store.tornRecords(), 0u);
    for (int i = 0; i < 40; ++i) {
        CacheRow c{};
        ASSERT_TRUE(store.lookup("key-" + std::to_string(i), c));
        EXPECT_TRUE(sameRow(c, makeRow(static_cast<double>(i))));
    }
    CacheRow c{};
    EXPECT_FALSE(store.lookup("no-such-key", c));
}

TEST(ShardedStoreTest, TornTailIsIgnoredCommittedRowsSurvive)
{
    TempDir dir;
    const std::string storeDir = dir.file("store");
    std::string shardFile;
    {
        ShardedStore store(storeDir, 2);
        for (int i = 0; i < 10; ++i)
            store.insert("key-" + std::to_string(i),
                         makeRow(static_cast<double>(i)));
        store.flush();
        shardFile = store.shardPath(store.shardOf("key-3"));
    }
    // Simulate a crash mid-append: a torn half-record at the tail.
    {
        std::ofstream out(shardFile, std::ios::app | std::ios::binary);
        out << "\nR 57 01234abc key-99;1,2";
    }
    ShardedStore store(storeDir);
    EXPECT_EQ(store.rowCount(), 10u);
    EXPECT_GE(store.tornRecords(), 1u);
    CacheRow c{};
    EXPECT_FALSE(store.lookup("key-99", c));
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(store.lookup("key-" + std::to_string(i), c));
        EXPECT_TRUE(sameRow(c, makeRow(static_cast<double>(i))));
    }
}

TEST(ShardedStoreTest, TwoProcessesAppendToTheSameStore)
{
    TempDir dir;
    const std::string storeDir = dir.file("store");
    const int perChild = 150;
    // Create the store (and its manifest) before forking so the
    // children race only on the shard appends, which is the contract.
    { ShardedStore store(storeDir); }

    std::vector<pid_t> children;
    for (int child = 0; child < 2; ++child) {
        std::fflush(nullptr);
        const pid_t pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            ShardedStore store(storeDir);
            for (int i = 0; i < perChild; ++i)
                store.insert("p" + std::to_string(child) + "-" +
                                 std::to_string(i),
                             makeRow(child * 1000.0 + i));
            store.flush();
            ::_exit(0);
        }
        children.push_back(pid);
    }
    for (const pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        ASSERT_EQ(WEXITSTATUS(status), 0);
    }

    // Every row from both processes is committed and intact.
    ShardedStore store(storeDir);
    EXPECT_EQ(store.rowCount(), 2u * perChild);
    EXPECT_EQ(store.tornRecords(), 0u);
    for (int child = 0; child < 2; ++child)
        for (int i = 0; i < perChild; ++i) {
            CacheRow c{};
            const std::string key = "p" + std::to_string(child) + "-" +
                                    std::to_string(i);
            ASSERT_TRUE(store.lookup(key, c)) << key;
            EXPECT_TRUE(sameRow(c, makeRow(child * 1000.0 + i)));
        }
}

TEST(ShardedStoreTest, MigratesLegacyCacheRowsExactly)
{
    TempDir dir;
    const std::string cachePath = dir.file("legacy.csv");
    {
        RunCache legacy(cachePath);
        for (int i = 0; i < 25; ++i)
            legacy.insert("legacy-" + std::to_string(i),
                          makeRow(static_cast<double>(i)));
        legacy.flush();
    }
    ShardedStore store(dir.file("store"));
    EXPECT_EQ(migrateLegacyCache(cachePath, store), 25u);
    EXPECT_EQ(store.rowCount(), 25u);
    for (int i = 0; i < 25; ++i) {
        CacheRow c{};
        ASSERT_TRUE(store.lookup("legacy-" + std::to_string(i), c));
        EXPECT_TRUE(sameRow(c, makeRow(static_cast<double>(i))));
    }
    // The source file is read-only for the migration.
    EXPECT_TRUE(std::filesystem::exists(cachePath));

    // A missing source is a clean exit-1 diagnostic.
    EXPECT_EXIT(migrateLegacyCache(dir.file("nope.csv"), store),
                ::testing::ExitedWithCode(1), "cannot read legacy");
}

// ---------------------------------------------------------------------
// Legacy cache: amortized flush
// ---------------------------------------------------------------------

TEST(RunCacheTest, FlushCountGrowsLogarithmicallyNotLinearly)
{
    TempDir dir;
    const std::string path = dir.file("cache.csv");
    const int n = 2000;
    {
        RunCache cache(path);
        for (int i = 0; i < n; ++i)
            cache.insert("k" + std::to_string(i),
                         makeRow(static_cast<double>(i)));
        // Fixed-interval flushing would rewrite the file n/16 = 125
        // times (O(n^2) bytes); the dirty-count threshold keeps it
        // logarithmic in n.
        EXPECT_LE(cache.rewrites(), 40u);
        EXPECT_GE(cache.rewrites(), 5u);
        cache.flush();
    }
    RunCache reloaded(path);
    EXPECT_EQ(reloaded.rowCount(), static_cast<std::size_t>(n));
    CacheRow c{};
    ASSERT_TRUE(reloaded.lookup("k1234", c));
    EXPECT_TRUE(sameRow(c, makeRow(1234.0)));
}

// ---------------------------------------------------------------------
// Session metrics
// ---------------------------------------------------------------------

TEST(SessionMetricsTest, CountsSimulatedThenWarmRuns)
{
    TempDir dir;
    const ExperimentPlan plan = smallPlan();
    {
        Session session(
            std::make_unique<ShardedStore>(dir.file("store")), 2);
        const SweepResult r = session.run(plan);
        EXPECT_EQ(r.metrics.scenarios, plan.size());
        EXPECT_EQ(r.metrics.simulated, plan.size());
        EXPECT_EQ(r.metrics.cacheHits, 0u);
        EXPECT_GT(r.metrics.wallSeconds, 0.0);
        EXPECT_GT(r.metrics.busySeconds, 0.0);
        EXPECT_EQ(r.metrics.jobs, 2u);
        EXPECT_GT(r.metrics.utilization(), 0.0);
    }
    // A fresh session over the same store answers everything warm.
    Session session(std::make_unique<ShardedStore>(dir.file("store")),
                    1);
    const SweepResult r = session.run(plan);
    EXPECT_EQ(r.metrics.simulated, 0u);
    EXPECT_EQ(r.metrics.cacheHits, plan.size());
}

// ---------------------------------------------------------------------
// Coordinator / worker
// ---------------------------------------------------------------------

TEST(CoordinatorTest, RangesAlignToBaselineGroups)
{
    const ExperimentPlan plan = smallPlan(); // groups at 0 and 4
    const auto two = shardPlanRanges(plan, 2);
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0].first, 0u);
    EXPECT_EQ(two[0].second, 4u);
    EXPECT_EQ(two[1].first, 4u);
    EXPECT_EQ(two[1].second, 8u);

    // More workers than groups: the split falls back to even cuts and
    // still covers [0, n) contiguously.
    const auto three = shardPlanRanges(plan, 3);
    ASSERT_EQ(three.size(), 3u);
    EXPECT_EQ(three.front().first, 0u);
    EXPECT_EQ(three.back().second, plan.size());
    for (std::size_t i = 0; i + 1 < three.size(); ++i)
        EXPECT_EQ(three[i].second, three[i + 1].first);
}

TEST(CoordinatorTest, MergedRowsAreByteIdenticalToSingleProcess)
{
    TempDir dir;
    const ExperimentPlan plan = smallPlan();
    const std::string planPath = dir.file("plan.json");
    plan.saveFile(planPath);
    const std::string ref =
        referenceRows(planPath, plan.size(), dir.file("ref.jsonl"));
    ASSERT_FALSE(ref.empty());

    CoordinatorOptions opts;
    opts.planPath = planPath;
    opts.workers = 3; // > group count: exercises mid-group ranges too
    opts.spawner = [&](const WorkerTask &task) {
        return forkWorker(planPath, "", task);
    };
    std::FILE *out = std::fopen(dir.file("merged.jsonl").c_str(), "w");
    ASSERT_NE(out, nullptr);
    opts.out = out;
    EXPECT_EQ(runCoordinator(opts), 0);
    std::fclose(out);

    EXPECT_EQ(readFile(dir.file("merged.jsonl")), ref);
}

TEST(CoordinatorTest, RetriesAKilledWorkerAndStaysByteIdentical)
{
    TempDir dir;
    const ExperimentPlan plan = smallPlan();
    const std::string planPath = dir.file("plan.json");
    plan.saveFile(planPath);
    const std::string ref =
        referenceRows(planPath, plan.size(), dir.file("ref.jsonl"));

    // One worker SIGKILLs itself right before emitting global row 5
    // on its first attempt; the retry (attempt 1) runs clean.
    ::setenv("REFRINT_FAULTS", "worker.crash@5", 1);
    ::unsetenv("REFRINT_WORKER_ATTEMPT");

    CoordinatorOptions opts;
    opts.planPath = planPath;
    opts.workers = 3;
    opts.backoffBaseSec = 0.01; // keep the retry fast in tests
    opts.storeDir = dir.file("store"); // committed rows are reused
    opts.spawner = [&](const WorkerTask &task) {
        return forkWorker(planPath, opts.storeDir, task);
    };
    std::FILE *out = std::fopen(dir.file("merged.jsonl").c_str(), "w");
    ASSERT_NE(out, nullptr);
    opts.out = out;
    CoordinatorStats stats;
    const int rc = runCoordinator(opts, &stats);
    std::fclose(out);
    ::unsetenv("REFRINT_FAULTS");
    ASSERT_EQ(rc, 0);
    EXPECT_EQ(stats.retriesUsed, 1u);
    EXPECT_TRUE(stats.missing.empty());

    // Byte-identity needs the "simulated" flags to match too — compare
    // modulo that flag (the retried worker reuses rows the killed
    // attempt already committed to the shared store), then exactly on
    // everything else.
    std::istringstream a(readFile(dir.file("merged.jsonl"))), b(ref);
    std::string la, lb;
    std::size_t rows = 0;
    while (std::getline(a, la) && std::getline(b, lb)) {
        const std::string t = "\"simulated\":true";
        const std::string f = "\"simulated\":false";
        for (std::string *s : {&la, &lb}) {
            const auto at = s->find(f);
            if (at != std::string::npos)
                s->replace(at, f.size(), t);
        }
        EXPECT_EQ(la, lb) << "row " << rows;
        ++rows;
    }
    EXPECT_EQ(rows, plan.size());
    EXPECT_FALSE(std::getline(b, lb)); // same row count
}

TEST(WorkerTest, MidGroupRangeMatchesTheReferenceSlice)
{
    TempDir dir;
    const ExperimentPlan plan = smallPlan();
    const std::string planPath = dir.file("plan.json");
    plan.saveFile(planPath);
    const std::string ref =
        referenceRows(planPath, plan.size(), dir.file("ref.jsonl"));

    // Range 2:6 starts mid-group: the worker must prepend the fft
    // baseline (index 0) for normalization but suppress its row.
    std::FILE *f = std::fopen(dir.file("slice.jsonl").c_str(), "w");
    ASSERT_NE(f, nullptr);
    WorkerRangeOptions opts;
    opts.planPath = planPath;
    opts.begin = 2;
    opts.end = 6;
    opts.out = f;
    EXPECT_EQ(runWorkerRange(opts), 0);
    std::fclose(f);

    std::istringstream all(ref);
    std::string line, expect;
    for (std::size_t i = 0; std::getline(all, line); ++i)
        if (i >= 2 && i < 6)
            expect += line + "\n";
    EXPECT_EQ(readFile(dir.file("slice.jsonl")), expect);
}

TEST(WorkerTest, RejectsARangeOutsideThePlan)
{
    TempDir dir;
    const std::string planPath = dir.file("plan.json");
    smallPlan().saveFile(planPath);
    WorkerRangeOptions opts;
    opts.planPath = planPath;
    opts.begin = 4;
    opts.end = 99;
    opts.out = stderr;
    EXPECT_EQ(runWorkerRange(opts), 1);
}

// ---------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------

TEST(FaultPlanTest, ParsesSchedulesAndAnswersPointQueries)
{
    const FaultPlan plan(
        "worker.crash@5,worker.slow@2:40,store.torn_write@7");
    EXPECT_EQ(plan.specs().size(), 3u);
    EXPECT_TRUE(plan.at("worker.crash", 5));
    EXPECT_FALSE(plan.at("worker.crash", 4));
    EXPECT_FALSE(plan.at("worker.hang", 5));
    std::uint64_t ms = 0;
    EXPECT_TRUE(plan.at("worker.slow", 2, &ms));
    EXPECT_EQ(ms, 40u);
    EXPECT_TRUE(plan.at("store.torn_write", 7));
    EXPECT_FALSE(plan.at("serve.drop_conn", 7));
    EXPECT_TRUE(FaultPlan().empty());
    EXPECT_TRUE(FaultPlan("").empty());
}

TEST(FaultPlanTest, RejectsMalformedSchedules)
{
    EXPECT_EXIT(FaultPlan("worker.crash"),
                ::testing::ExitedWithCode(1), "point@ordinal");
    EXPECT_EXIT(FaultPlan("bogus.point@3"),
                ::testing::ExitedWithCode(1), "unknown fault point");
    EXPECT_EXIT(FaultPlan("worker.crash@x"),
                ::testing::ExitedWithCode(1), "decimal ordinal");
    EXPECT_EXIT(FaultPlan("worker.slow@1:fast"),
                ::testing::ExitedWithCode(1), "decimal value");
}

// ---------------------------------------------------------------------
// Store fault injection & scrub
// ---------------------------------------------------------------------

TEST(StoreFaultTest, ShortWriteIsACleanFatalNotASilentDrop)
{
    TempDir dir;
    EXPECT_EXIT(
        {
            ::setenv("REFRINT_FAULTS", "store.short_write@0", 1);
            FaultPlan::reloadGlobalForTest();
            ShardedStore store(dir.file("store"));
            store.insert("k", makeRow(1.0));
        },
        ::testing::ExitedWithCode(1), "short append");
}

TEST(StoreFaultTest, TornWriteCrashLeavesScrubRepairableDamage)
{
    TempDir dir;
    const std::string storeDir = dir.file("store");
    {
        ShardedStore store(storeDir, 2);
        for (int i = 0; i < 10; ++i)
            store.insert("key-" + std::to_string(i),
                         makeRow(static_cast<double>(i)));
        store.flush();
    }

    // A child process crashes mid-append: the fault writes half the
    // framed record, then SIGKILLs — exactly what power loss or an OOM
    // kill between write(2) and completion leaves behind.
    std::fflush(nullptr);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::setenv("REFRINT_FAULTS", "store.torn_write@0", 1);
        FaultPlan::reloadGlobalForTest();
        ShardedStore store(storeDir);
        store.insert("victim", makeRow(99.0));
        ::_exit(0); // unreachable: the fault kills us first
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Scrub sees the torn tail (a crash artifact, not corruption).
    ScrubReport rep = scrubStore(storeDir, /*repair=*/false);
    EXPECT_EQ(rep.tornTail, 1u);
    EXPECT_EQ(rep.midFile, 0u);
    EXPECT_EQ(rep.committed, 10u);
    EXPECT_FALSE(rep.clean());

    // Repair quarantines it; the store then loads clean and warm.
    rep = scrubStore(storeDir, /*repair=*/true);
    EXPECT_EQ(rep.quarantined, 1u);
    EXPECT_TRUE(scrubStore(storeDir, false).clean());
    ShardedStore store(storeDir);
    EXPECT_EQ(store.tornRecords(), 0u);
    EXPECT_EQ(store.rowCount(), 10u);
    for (int i = 0; i < 10; ++i) {
        CacheRow c{};
        ASSERT_TRUE(store.lookup("key-" + std::to_string(i), c));
        EXPECT_TRUE(sameRow(c, makeRow(static_cast<double>(i))));
    }
    CacheRow c{};
    EXPECT_FALSE(store.lookup("victim", c));
}

TEST(ScrubTest, ClassifiesTornTailVsMidFileCorruption)
{
    TempDir dir;
    const std::string storeDir = dir.file("store");
    std::string shardFile;
    {
        ShardedStore store(storeDir, 1);
        for (int i = 0; i < 6; ++i)
            store.insert("key-" + std::to_string(i),
                         makeRow(static_cast<double>(i)));
        store.flush();
        shardFile = store.shardPath(0);
    }
    const std::string pristine = readFile(shardFile);
    ASSERT_TRUE(scrubStore(storeDir, false).clean());

    // Garbage after the last valid record: a torn tail.
    {
        std::ofstream out(shardFile, std::ios::app | std::ios::binary);
        out << "\nR 57 01234abc key-99;1,2";
    }
    ScrubReport rep = scrubStore(storeDir, false);
    EXPECT_GE(rep.tornTail, 1u);
    EXPECT_EQ(rep.midFile, 0u);

    // A flipped byte inside the first record: mid-file corruption,
    // which no crash can produce.
    {
        std::string damaged = pristine;
        damaged[10] ^= 0x01;
        std::ofstream out(shardFile,
                          std::ios::trunc | std::ios::binary);
        out << damaged;
    }
    rep = scrubStore(storeDir, false);
    EXPECT_EQ(rep.tornTail, 0u);
    EXPECT_GE(rep.midFile, 1u);
}

TEST(ScrubTest, RandomSingleByteCorruptionIsAlwaysDetectedAndRepaired)
{
    TempDir dir;
    const std::string storeDir = dir.file("store");
    const int nKeys = 12;
    // Every key is appended twice back to back, so one damaged line
    // can never take a key's only copy — repair must keep every key
    // answerable.
    {
        ShardedStore store(storeDir, 2);
        for (int i = 0; i < nKeys; ++i)
            for (int copy = 0; copy < 2; ++copy)
                store.insert("key-" + std::to_string(i),
                             makeRow(static_cast<double>(i)));
        store.flush();
    }
    std::vector<std::pair<std::string, std::string>> pristine;
    {
        ShardedStore store(storeDir);
        for (unsigned s = 0; s < store.shards(); ++s)
            pristine.emplace_back(store.shardPath(s),
                                  readFile(store.shardPath(s)));
    }
    ASSERT_TRUE(scrubStore(storeDir, false).clean());

    std::mt19937 rng(42);
    for (int iter = 0; iter < 12; ++iter) {
        // Restore the pristine store, then flip one random byte of one
        // random non-empty shard.
        for (const auto &[path, data] : pristine) {
            std::ofstream out(path,
                              std::ios::trunc | std::ios::binary);
            out << data;
        }
        const auto &victim =
            pristine[rng() % pristine.size()];
        if (victim.second.empty())
            continue;
        const std::size_t pos = rng() % victim.second.size();
        {
            std::string damaged = victim.second;
            damaged[pos] ^= 0x01;
            std::ofstream out(victim.first,
                              std::ios::trunc | std::ios::binary);
            out << damaged;
        }

        // Detected: a framing checksum never lets a flipped bit pass.
        const ScrubReport found = scrubStore(storeDir, false);
        EXPECT_FALSE(found.clean())
            << "flip at byte " << pos << " of " << victim.first
            << " went undetected";

        // Repaired: damage quarantined, every key still answers warm.
        scrubStore(storeDir, /*repair=*/true);
        EXPECT_TRUE(scrubStore(storeDir, false).clean());
        ShardedStore store(storeDir);
        EXPECT_EQ(store.tornRecords(), 0u);
        for (int i = 0; i < nKeys; ++i) {
            CacheRow c{};
            const std::string key = "key-" + std::to_string(i);
            ASSERT_TRUE(store.lookup(key, c))
                << key << " lost after repairing a flip at byte "
                << pos << " of " << victim.first;
            EXPECT_TRUE(sameRow(c, makeRow(static_cast<double>(i))));
        }
    }
}

// ---------------------------------------------------------------------
// Session deadline (serve overload control)
// ---------------------------------------------------------------------

TEST(SessionDeadlineTest, SkipsUnstartedScenariosPastTheDeadline)
{
    Session session(SessionOptions{"", 1});
    const ExperimentPlan plan = smallPlan();
    const SweepResult r = session.run(plan, {}, 1e-6);
    EXPECT_GT(r.metrics.skipped, 0u);
    EXPECT_EQ(r.raw.size(), plan.size() - r.metrics.skipped);
    EXPECT_EQ(r.metrics.scenarios, plan.size());

    // No deadline: nothing is ever skipped.
    Session fresh(SessionOptions{"", 1});
    const SweepResult full = fresh.run(plan);
    EXPECT_EQ(full.metrics.skipped, 0u);
    EXPECT_EQ(full.raw.size(), plan.size());
}

// ---------------------------------------------------------------------
// Coordinator chaos: hangs, slowness, exhausted retries
// ---------------------------------------------------------------------

TEST(CoordinatorTest, DeadlineKillsAHungWorkerAndSalvagesItsRows)
{
    TempDir dir;
    const ExperimentPlan plan = smallPlan();
    const std::string planPath = dir.file("plan.json");
    plan.saveFile(planPath);
    const std::string ref =
        referenceRows(planPath, plan.size(), dir.file("ref.jsonl"));

    // The worker owning rows 4:8 hangs forever right before row 5;
    // its flushed row 4 must be salvaged and only 5:8 re-dispatched.
    ::setenv("REFRINT_FAULTS", "worker.hang@5", 1);
    ::unsetenv("REFRINT_WORKER_ATTEMPT");

    CoordinatorOptions opts;
    opts.planPath = planPath;
    opts.workers = 2; // group-aligned: 0:4 and 4:8
    opts.workerTimeoutSec = 1.0;
    opts.backoffBaseSec = 0.01;
    opts.spawner = [&](const WorkerTask &task) {
        return forkWorker(planPath, "", task);
    };
    std::FILE *out = std::fopen(dir.file("merged.jsonl").c_str(), "w");
    ASSERT_NE(out, nullptr);
    opts.out = out;
    CoordinatorStats stats;
    const int rc = runCoordinator(opts, &stats);
    std::fclose(out);
    ::unsetenv("REFRINT_FAULTS");

    ASSERT_EQ(rc, 0);
    EXPECT_EQ(stats.deadlineKills, 1u);
    EXPECT_EQ(stats.retriesUsed, 1u);
    EXPECT_EQ(stats.salvagedRows, 1u); // row 4, flushed before the hang
    EXPECT_TRUE(stats.missing.empty());
    // Without a shared store nothing is answered warm, so recovery is
    // byte-exact: salvaged rows + re-simulated rows == fault-free run.
    EXPECT_EQ(readFile(dir.file("merged.jsonl")), ref);
}

TEST(CoordinatorTest, SlowButProgressingWorkerSurvivesTheDeadline)
{
    TempDir dir;
    const ExperimentPlan plan = smallPlan();
    const std::string planPath = dir.file("plan.json");
    plan.saveFile(planPath);
    const std::string ref =
        referenceRows(planPath, plan.size(), dir.file("ref.jsonl"));

    // 300 ms of dawdling before row 5 is well under the 1.5 s
    // no-progress deadline: slow is not hung.
    ::setenv("REFRINT_FAULTS", "worker.slow@5:300", 1);
    ::unsetenv("REFRINT_WORKER_ATTEMPT");

    CoordinatorOptions opts;
    opts.planPath = planPath;
    opts.workers = 2;
    opts.workerTimeoutSec = 1.5;
    opts.spawner = [&](const WorkerTask &task) {
        return forkWorker(planPath, "", task);
    };
    std::FILE *out = std::fopen(dir.file("merged.jsonl").c_str(), "w");
    ASSERT_NE(out, nullptr);
    opts.out = out;
    CoordinatorStats stats;
    const int rc = runCoordinator(opts, &stats);
    std::fclose(out);
    ::unsetenv("REFRINT_FAULTS");

    ASSERT_EQ(rc, 0);
    EXPECT_EQ(stats.deadlineKills, 0u);
    EXPECT_EQ(stats.retriesUsed, 0u);
    EXPECT_EQ(readFile(dir.file("merged.jsonl")), ref);
}

TEST(CoordinatorTest, ExhaustedRetriesDegradeGracefullyWithAnExactReport)
{
    TempDir dir;
    const ExperimentPlan plan = smallPlan();
    const std::string planPath = dir.file("plan.json");
    plan.saveFile(planPath);
    const std::string ref =
        referenceRows(planPath, plan.size(), dir.file("ref.jsonl"));

    // retries=0: the crash before row 5 is terminal for its range —
    // but every other row must still be merged, and the missing
    // indices reported exactly.
    ::setenv("REFRINT_FAULTS", "worker.crash@5", 1);
    ::unsetenv("REFRINT_WORKER_ATTEMPT");

    CoordinatorOptions opts;
    opts.planPath = planPath;
    opts.workers = 2;
    opts.retries = 0;
    opts.spawner = [&](const WorkerTask &task) {
        return forkWorker(planPath, "", task);
    };
    std::FILE *out = std::fopen(dir.file("merged.jsonl").c_str(), "w");
    ASSERT_NE(out, nullptr);
    opts.out = out;
    CoordinatorStats stats;
    const int rc = runCoordinator(opts, &stats);
    std::fclose(out);
    ::unsetenv("REFRINT_FAULTS");

    EXPECT_EQ(rc, 1);
    ASSERT_EQ(stats.missing.size(), 1u);
    EXPECT_EQ(stats.missing[0].first, 5u);
    EXPECT_EQ(stats.missing[0].second, 8u);
    EXPECT_EQ(stats.salvagedRows, 1u); // row 4 survived the crash

    // The merged stream holds exactly rows 0..4 of the reference.
    std::istringstream all(ref);
    std::string line, expect;
    for (std::size_t i = 0; std::getline(all, line); ++i)
        if (i < 5)
            expect += line + "\n";
    EXPECT_EQ(readFile(dir.file("merged.jsonl")), expect);
}

// ---------------------------------------------------------------------
// Serve: overload control, timeouts, graceful drain
// ---------------------------------------------------------------------

/** A forked server pid that is SIGKILLed on scope exit, so a failed
 *  assertion can never leak a child holding the test's pipes open. */
struct ServerGuard
{
    pid_t pid = -1;

    ~ServerGuard()
    {
        if (pid <= 0)
            return;
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
    }
};

/** Fork a child running runServe (with an optional fault schedule). */
pid_t
forkServe(const ServeOptions &opts, const char *faults = nullptr)
{
    std::fflush(nullptr);
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    if (faults != nullptr)
        ::setenv("REFRINT_FAULTS", faults, 1);
    else
        ::unsetenv("REFRINT_FAULTS");
    FaultPlan::reloadGlobalForTest();
    ::_exit(runServe(opts));
}

/** Connect to a unix socket, retrying for ~5 s while the forked
 *  server binds. */
int
connectUnix(const std::string &path)
{
    for (int attempt = 0; attempt < 100; ++attempt) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd >= 0 &&
            ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        if (fd >= 0)
            ::close(fd);
        timespec ts{0, 50 * 1000 * 1000};
        ::nanosleep(&ts, nullptr);
    }
    return -1;
}

/** Write one request line; false when the peer already hung up
 *  (MSG_NOSIGNAL: a closed peer must fail the send, not SIGPIPE the
 *  test binary). */
bool
sendLine(int fd, const std::string &s)
{
    const std::string msg = s + "\n";
    std::size_t off = 0;
    while (off < msg.size()) {
        const ssize_t n = ::send(fd, msg.data() + off,
                                 msg.size() - off, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** One '\n'-terminated line, or "" on EOF. */
std::string
readLine(int fd)
{
    std::string out;
    char c = 0;
    while (::read(fd, &c, 1) == 1) {
        if (c == '\n')
            return out;
        out += c;
    }
    return out;
}

/** waitpid with a 15 s guard so a wedged server fails the test
 *  instead of hanging the suite. */
int
waitExit(ServerGuard &server)
{
    const pid_t pid = server.pid;
    server.pid = -1;
    for (int waitedMs = 0; waitedMs < 15000; waitedMs += 20) {
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid)
            return status;
        timespec ts{0, 20 * 1000 * 1000};
        ::nanosleep(&ts, nullptr);
    }
    ADD_FAILURE() << "server pid " << pid << " did not exit in time";
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    return status;
}

TEST(ServeTest, SigtermDrainsInFlightWorkAndExitsZero)
{
    TempDir dir;
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    opts.storeDir = dir.file("store");
    opts.jobs = 1;
    ServerGuard server{forkServe(opts)};
    ASSERT_GE(server.pid, 0);

    const int fd = connectUnix(opts.socketPath);
    ASSERT_GE(fd, 0);
    EXPECT_TRUE(sendLine(fd, "{\"op\":\"stats\"}"));
    EXPECT_NE(readLine(fd).find("\"stats\":true"), std::string::npos);

    // SIGTERM while our connection is still open: the server must
    // finish with it (we close), flush, and exit 0 — not die mid-work.
    ASSERT_EQ(::kill(server.pid, SIGTERM), 0);
    ::close(fd);
    const int status = waitExit(server);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServeTest, FullQueueShedsNewConnectionsWithAnOverloadError)
{
    TempDir dir;
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    opts.maxQueue = 1;
    opts.jobs = 1;
    ServerGuard server{forkServe(opts)};
    ASSERT_GE(server.pid, 0);

    // A is being served (its stats reply proves it was dequeued); B
    // fills the one-slot queue; C must be shed immediately.
    const int fdA = connectUnix(opts.socketPath);
    ASSERT_GE(fdA, 0);
    ASSERT_TRUE(sendLine(fdA, "{\"op\":\"stats\"}"));
    ASSERT_NE(readLine(fdA).find("\"stats\":true"), std::string::npos);

    const int fdB = connectUnix(opts.socketPath);
    ASSERT_GE(fdB, 0);
    const int fdC = connectUnix(opts.socketPath);
    ASSERT_GE(fdC, 0);
    EXPECT_EQ(readLine(fdC), "{\"error\":\"overloaded\"}");
    ::close(fdC);
    ::close(fdB);
    ::close(fdA);

    // A later connection sees the shed counted — but it races the
    // queue drain (B is still pending until the server reaps it), so
    // retry while we are shed ourselves; extra sheds only grow the
    // counter we then read.
    int fdD = -1;
    std::string stats;
    for (int attempt = 0; attempt < 100; ++attempt) {
        fdD = connectUnix(opts.socketPath);
        ASSERT_GE(fdD, 0);
        sendLine(fdD, "{\"op\":\"stats\"}");
        stats = readLine(fdD);
        if (stats.find("\"stats\":true") != std::string::npos)
            break;
        ::close(fdD);
        fdD = -1;
        timespec ts{0, 20 * 1000 * 1000};
        ::nanosleep(&ts, nullptr);
    }
    ASSERT_GE(fdD, 0);
    EXPECT_NE(stats.find("\"shed\":"), std::string::npos);
    EXPECT_EQ(stats.find("\"shed\":0"), std::string::npos)
        << "shed connections were not counted: " << stats;
    EXPECT_TRUE(sendLine(fdD, "{\"op\":\"shutdown\"}"));
    EXPECT_EQ(readLine(fdD), "{\"bye\":true}");
    ::close(fdD);
    const int status = waitExit(server);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServeTest, IdleClientIsDisconnectedAfterTheTimeout)
{
    TempDir dir;
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    opts.idleTimeoutSec = 0.2;
    opts.jobs = 1;
    ServerGuard server{forkServe(opts)};
    ASSERT_GE(server.pid, 0);

    // Send nothing: the server must hang up on us, not wait forever.
    const int fdIdle = connectUnix(opts.socketPath);
    ASSERT_GE(fdIdle, 0);
    EXPECT_EQ(readLine(fdIdle), ""); // EOF
    ::close(fdIdle);

    // The service survived the idle client and still answers.
    const int fd = connectUnix(opts.socketPath);
    ASSERT_GE(fd, 0);
    EXPECT_TRUE(sendLine(fd, "{\"op\":\"shutdown\"}"));
    EXPECT_EQ(readLine(fd), "{\"bye\":true}");
    ::close(fd);
    const int status = waitExit(server);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(ServeTest, DropConnFaultSeversTheConversationNotTheService)
{
    TempDir dir;
    ServeOptions opts;
    opts.socketPath = dir.file("s.sock");
    opts.jobs = 1;
    ServerGuard server{forkServe(opts, "serve.drop_conn@1")};
    ASSERT_GE(server.pid, 0);

    const int fd = connectUnix(opts.socketPath);
    ASSERT_GE(fd, 0);
    EXPECT_TRUE(sendLine(fd, "{\"op\":\"stats\"}")); // request 0: served
    EXPECT_NE(readLine(fd).find("\"stats\":true"), std::string::npos);
    sendLine(fd, "{\"op\":\"stats\"}"); // request 1: dropped
    EXPECT_EQ(readLine(fd), "");        // abrupt EOF, no reply
    ::close(fd);

    // The service itself is fine; a fresh connection still works.
    const int fd2 = connectUnix(opts.socketPath);
    ASSERT_GE(fd2, 0);
    EXPECT_TRUE(sendLine(fd2, "{\"op\":\"shutdown\"}"));
    EXPECT_EQ(readLine(fd2), "{\"bye\":true}");
    ::close(fd2);
    const int status = waitExit(server);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

} // namespace
} // namespace refrint::test
