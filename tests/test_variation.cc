/**
 * @file
 * Tests for the process-variation retention model (§4.1 extension):
 * the per-line draw itself, and the asymmetric way the two timing
 * policies absorb variation — Periodic degrades to the weakest line's
 * period, Refrint tracks each line individually.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "test_util.hh"

namespace refrint::test
{

namespace
{

constexpr Addr kA = 0x10000;

RetentionParams
variedRetention(Tick nominal, double sigma, double minFactor = 0.70)
{
    RetentionParams r{nominal, kTickNever, {}, {}};
    r.variation.enabled = true;
    r.variation.sigma = sigma;
    r.variation.minFactor = minFactor;
    r.variation.seed = 3;
    return r;
}

TEST(Variation, DisabledDrawsNothing)
{
    RetentionParams r{usToTicks(50.0), kTickNever, {}, {}};
    EXPECT_TRUE(r.drawLineRetentions(1024).empty());
}

TEST(Variation, DrawIsDeterministicAndTruncated)
{
    const RetentionParams r = variedRetention(usToTicks(50.0), 0.10);
    const auto a = r.drawLineRetentions(2048);
    const auto b = r.drawLineRetentions(2048);
    ASSERT_EQ(a.size(), 2048u);
    EXPECT_EQ(a, b);

    const auto lo = static_cast<Tick>(0.70 * usToTicks(50.0));
    for (Tick t : a) {
        EXPECT_GE(t, lo);
        EXPECT_LE(t, usToTicks(50.0));
    }
}

TEST(Variation, DrawActuallyVaries)
{
    const RetentionParams r = variedRetention(usToTicks(50.0), 0.10);
    const auto a = r.drawLineRetentions(2048);
    Tick mn = kTickNever, mx = 0;
    for (Tick t : a) {
        mn = std::min(mn, t);
        mx = std::max(mx, t);
    }
    EXPECT_LT(mn, mx);
    // With sigma 10% and a 70% floor, the weakest of 2048 draws should
    // sit near the floor and the strongest at the nominal cap.
    EXPECT_LT(mn, static_cast<Tick>(0.80 * usToTicks(50.0)));
    EXPECT_EQ(mx, usToTicks(50.0));
}

/** Hierarchy harness with variation enabled at the given sigma. */
struct VarHarness
{
    VarHarness(const RefreshPolicy &pol, double sigma)
        : cfg([&] {
              HierarchyConfig c = tinyEdram(pol, usToTicks(5.0));
              c.retention = variedRetention(usToTicks(5.0), sigma, 0.80);
              return c;
          }()),
          hier(cfg, eq)
    {
        hier.start(0);
    }

    std::uint64_t
    stat(const char *name)
    {
        std::map<std::string, double> m;
        hier.dumpStats(m);
        auto it = m.find(name);
        return it == m.end() ? 0 : static_cast<std::uint64_t>(it->second);
    }

    HierarchyConfig cfg;
    EventQueue eq;
    Hierarchy hier;
};

TEST(Variation, NoDecayedHitsUnderEitherTimingPolicy)
{
    for (const RefreshPolicy pol :
         {RefreshPolicy::periodic(DataPolicy::Valid),
          RefreshPolicy::refrint(DataPolicy::Valid)}) {
        VarHarness h(pol, 0.08);
        Prng rng(13);
        Tick t = 0;
        for (int i = 0; i < 2000; ++i) {
            const auto c = static_cast<CoreId>(rng.next() % 4);
            const Addr a = (rng.next() % 512) * 64;
            h.eq.run(t);
            t = h.hier.access(c, a,
                              rng.uniform() < 0.3 ? AccessType::Store
                                                  : AccessType::Load,
                              t) +
                10;
        }
        h.eq.run(t);
        EXPECT_EQ(h.stat("l3.decayed_hits"), 0u) << pol.name();
        EXPECT_EQ(h.stat("l2.decayed_hits"), 0u) << pol.name();
        h.hier.checkInvariants(t);
    }
}

TEST(Variation, PeriodicPaysTheWeakestLinePenalty)
{
    // One idle line, long window.  Without variation both schemes
    // refresh it ~window/retention times.  With variation, Periodic
    // cycles the *whole cache* at the weakest line's period, so its
    // refresh count on this (possibly strong) line grows by the
    // weakest-line factor; Refrint only refreshes faster if this
    // specific line is weak.
    VarHarness p(RefreshPolicy::periodic(DataPolicy::Valid), 0.08);
    VarHarness r(RefreshPolicy::refrint(DataPolicy::Valid), 0.08);
    p.hier.access(0, kA, AccessType::Load, 0);
    r.hier.access(0, kA, AccessType::Load, 0);

    p.eq.run(usToTicks(100.0));
    r.eq.run(usToTicks(100.0));

    // 20 nominal periods in the window; the weakest of 512 draws at
    // sigma 8% hits the 80% floor, so Periodic performs ~25 refreshes.
    EXPECT_GT(p.stat("refresh.l3.line_refreshes"),
              r.stat("refresh.l3.line_refreshes"));
}

TEST(Variation, RefrintRefreshRateTracksThisLinesOwnRetention)
{
    // The same line under increasing sigma: Refrint's refresh count for
    // a single resident line moves only with that line's own draw, so
    // it stays within the truncation window's bounds.
    VarHarness r(RefreshPolicy::refrint(DataPolicy::Valid), 0.08);
    r.hier.access(0, kA, AccessType::Load, 0);
    r.eq.run(usToTicks(100.0));

    const double nominalVisits =
        100.0 / 5.0; // window / nominal retention
    const auto refreshes =
        static_cast<double>(r.stat("refresh.l3.line_refreshes"));
    EXPECT_GE(refreshes, nominalVisits - 1);           // >= nominal rate
    EXPECT_LE(refreshes, nominalVisits / 0.80 + 3.0);  // <= floor rate
}

} // namespace
} // namespace refrint::test
