/**
 * @file
 * Unit tests for the data-policy decision algorithm (Table 3.1 and
 * Fig. 4.1), including the WB(n,m) Count state machine and the policy
 * name round-trip.
 */

#include <gtest/gtest.h>

#include "edram/refresh_policy.hh"

namespace refrint::test
{

namespace
{
CacheLine
validClean()
{
    CacheLine l;
    l.state = Mesi::Shared;
    l.dirty = false;
    return l;
}

CacheLine
validDirty()
{
    CacheLine l;
    l.state = Mesi::Modified;
    l.dirty = true;
    return l;
}
} // namespace

TEST(PolicyNames, RoundTrip)
{
    for (const char *s : {"P.all", "R.all", "P.valid", "R.valid",
                          "P.dirty", "R.dirty", "P.WB(4,4)",
                          "R.WB(32,32)", "R.WB(16,8)"}) {
        EXPECT_EQ(parsePolicy(s).name(), s);
    }
}

TEST(PolicyNames, Constructors)
{
    EXPECT_EQ(RefreshPolicy::periodic(DataPolicy::All).name(), "P.all");
    EXPECT_EQ(RefreshPolicy::refrint(DataPolicy::WB, 8, 8).name(),
              "R.WB(8,8)");
}

TEST(AllPolicy, RefreshesEverything)
{
    RefreshPolicy p = RefreshPolicy::refrint(DataPolicy::All);
    CacheLine inv;                    // Invalid
    CacheLine vc = validClean();
    CacheLine vd = validDirty();
    EXPECT_EQ(decideRefresh(p, inv), RefreshAction::Refresh);
    EXPECT_EQ(decideRefresh(p, vc), RefreshAction::Refresh);
    EXPECT_EQ(decideRefresh(p, vd), RefreshAction::Refresh);
}

TEST(ValidPolicy, RefreshesOnlyValid)
{
    RefreshPolicy p = RefreshPolicy::refrint(DataPolicy::Valid);
    CacheLine inv;
    CacheLine vc = validClean();
    CacheLine vd = validDirty();
    EXPECT_EQ(decideRefresh(p, inv), RefreshAction::Skip);
    EXPECT_EQ(decideRefresh(p, vc), RefreshAction::Refresh);
    EXPECT_EQ(decideRefresh(p, vd), RefreshAction::Refresh);
}

TEST(DirtyPolicy, InvalidatesCleanLines)
{
    RefreshPolicy p = RefreshPolicy::refrint(DataPolicy::Dirty);
    CacheLine inv;
    CacheLine vc = validClean();
    CacheLine vd = validDirty();
    EXPECT_EQ(decideRefresh(p, inv), RefreshAction::Skip);
    EXPECT_EQ(decideRefresh(p, vc), RefreshAction::Invalidate);
    EXPECT_EQ(decideRefresh(p, vd), RefreshAction::Refresh);
}

TEST(WbPolicy, DirtyLineRefreshedNTimesThenWrittenBack)
{
    // Fig. 4.1: a dirty line with Count=n is refreshed n times (one per
    // sentry interrupt, decrementing), then written back and reborn as
    // Valid-Clean with Count=m.
    RefreshPolicy p = RefreshPolicy::refrint(DataPolicy::WB, 3, 2);
    CacheLine l = validDirty();
    noteAccess(p, l);
    EXPECT_EQ(l.count, 3u);
    EXPECT_EQ(decideRefresh(p, l), RefreshAction::Refresh);
    EXPECT_EQ(l.count, 2u);
    EXPECT_EQ(decideRefresh(p, l), RefreshAction::Refresh);
    EXPECT_EQ(decideRefresh(p, l), RefreshAction::Refresh);
    EXPECT_EQ(l.count, 0u);
    EXPECT_EQ(decideRefresh(p, l), RefreshAction::Writeback);
    EXPECT_EQ(l.count, 2u) << "writeback reloads Count with m";
}

TEST(WbPolicy, CleanLineRefreshedMTimesThenInvalidated)
{
    RefreshPolicy p = RefreshPolicy::refrint(DataPolicy::WB, 3, 2);
    CacheLine l = validClean();
    noteAccess(p, l);
    EXPECT_EQ(l.count, 2u);
    EXPECT_EQ(decideRefresh(p, l), RefreshAction::Refresh);
    EXPECT_EQ(decideRefresh(p, l), RefreshAction::Refresh);
    EXPECT_EQ(decideRefresh(p, l), RefreshAction::Invalidate);
}

TEST(WbPolicy, AccessResetsCount)
{
    RefreshPolicy p = RefreshPolicy::refrint(DataPolicy::WB, 4, 4);
    CacheLine l = validDirty();
    noteAccess(p, l);
    decideRefresh(p, l);
    decideRefresh(p, l);
    EXPECT_EQ(l.count, 2u);
    noteAccess(p, l); // normal access: Count back to n
    EXPECT_EQ(l.count, 4u);
}

TEST(WbPolicy, CountResetDependsOnDirtiness)
{
    RefreshPolicy p = RefreshPolicy::refrint(DataPolicy::WB, 7, 3);
    CacheLine d = validDirty();
    CacheLine c = validClean();
    noteAccess(p, d);
    noteAccess(p, c);
    EXPECT_EQ(d.count, 7u);
    EXPECT_EQ(c.count, 3u);
}

TEST(WbPolicy, InvalidLinesSkip)
{
    RefreshPolicy p = RefreshPolicy::refrint(DataPolicy::WB, 4, 4);
    CacheLine inv;
    EXPECT_EQ(decideRefresh(p, inv), RefreshAction::Skip);
}

TEST(WbPolicy, Wb0MirrorsDirtyPolicyOnCleanLines)
{
    // Dirty == WB(inf, 0): a clean line with m=0 dies on first deadline.
    RefreshPolicy p = RefreshPolicy::refrint(DataPolicy::WB, 1000, 0);
    CacheLine c = validClean();
    noteAccess(p, c);
    EXPECT_EQ(decideRefresh(p, c), RefreshAction::Invalidate);
}

TEST(WbPolicy, DirtyZeroNWritesBackImmediately)
{
    RefreshPolicy p = RefreshPolicy::refrint(DataPolicy::WB, 0, 5);
    CacheLine d = validDirty();
    noteAccess(p, d);
    EXPECT_EQ(d.count, 0u);
    EXPECT_EQ(decideRefresh(p, d), RefreshAction::Writeback);
}

TEST(NoteAccess, NonWbPoliciesIgnoreCount)
{
    RefreshPolicy p = RefreshPolicy::refrint(DataPolicy::Valid);
    CacheLine l = validClean();
    l.count = 5;
    noteAccess(p, l);
    EXPECT_EQ(l.count, 5u) << "Count is a WB-only field";
}

TEST(PolicyDeath, ParseRejectsGarbage)
{
    EXPECT_EXIT(parsePolicy("X.valid"), ::testing::ExitedWithCode(1),
                "cannot parse");
    EXPECT_EXIT(parsePolicy("R.WB(4)"), ::testing::ExitedWithCode(1),
                "cannot parse");
    EXPECT_EXIT(parsePolicy("R.bogus"), ::testing::ExitedWithCode(1),
                "cannot parse");
}

} // namespace refrint::test
