/**
 * @file
 * Tests for the related-work comparators (paper §7): the SmartRefresh
 * timeout-counter engine, the SRAM cache-decay engine, and the
 * ECC-extended-retention model.  Each comparator must (a) be sound —
 * no decayed hits, invariants intact — and (b) show its documented
 * first-order effect against the schemes it competes with.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "related/decay.hh"
#include "related/ecc.hh"
#include "related/smart_refresh.hh"
#include "test_util.hh"
#include "workload/micro.hh"

namespace refrint::test
{

namespace
{

constexpr Addr kA = 0x10000;

/** Hierarchy harness mirroring the one in test_hierarchy_refresh.cc. */
struct Harness
{
    explicit Harness(const HierarchyConfig &cfg) : hier(cfg, eq)
    {
        hier.start(0);
    }

    std::uint64_t
    stat(const char *name)
    {
        std::map<std::string, double> m;
        hier.dumpStats(m);
        auto it = m.find(name);
        return it == m.end() ? 0 : static_cast<std::uint64_t>(it->second);
    }

    EventQueue eq;
    Hierarchy hier;
};

// ---------------------------------------------------------------------
// SmartRefresh
// ---------------------------------------------------------------------

TEST(SmartRefresh, PolicyNameAndParseRoundTrip)
{
    RefreshPolicy p{TimePolicy::SmartRefresh, DataPolicy::Valid, 0, 0};
    EXPECT_EQ(p.name(), "S.valid");
    const RefreshPolicy q = parsePolicy("S.WB(8,8)");
    EXPECT_EQ(q.time, TimePolicy::SmartRefresh);
    EXPECT_EQ(q.data, DataPolicy::WB);
    EXPECT_EQ(q.n, 8u);
}

TEST(SmartRefresh, KeepsIdleValidLinesAlive)
{
    Harness h(tinyEdram(
        RefreshPolicy{TimePolicy::SmartRefresh, DataPolicy::Valid, 0, 0}));
    h.hier.access(0, kA, AccessType::Load, 0);

    h.eq.run(usToTicks(50.0));

    ASSERT_NE(h.hier.l3Bank(h.hier.bankOf(kA)).array.lookup(kA), nullptr);
    EXPECT_EQ(h.stat("l3.decayed_hits"), 0u);
    EXPECT_GE(h.stat("refresh.l3.line_refreshes"), 9u);
}

TEST(SmartRefresh, SkipsRecentlyAccessedLines)
{
    // Ping-pong stores renew the timeout counter faster than the phase
    // clock: SmartRefresh should perform (almost) no explicit refresh —
    // that is its whole point versus plain Periodic.
    Harness h(tinyEdram(
        RefreshPolicy{TimePolicy::SmartRefresh, DataPolicy::Valid, 0, 0}));
    Tick t = 0;
    for (int i = 0; i < 100; ++i) {
        h.eq.run(t);
        h.hier.access(i % 2, kA, AccessType::Store, t);
        t += usToTicks(1.0);
    }

    EXPECT_LE(h.stat("refresh.l3.line_refreshes"), 2u);
    EXPECT_EQ(h.stat("l3.decayed_hits"), 0u);
}

TEST(SmartRefresh, QuantizesRefreshEarlierThanRefrint)
{
    // The k-bit counter visits a line up to one phase (T/2^k) early;
    // Refrint's sentry fires within its (much smaller, for the tiny
    // machine) margin of the true deadline.  Over a long idle window
    // SmartRefresh therefore refreshes at least as often.
    HierarchyConfig sCfg = tinyEdram(
        RefreshPolicy{TimePolicy::SmartRefresh, DataPolicy::Valid, 0, 0});
    sCfg.llc().engine.smartCounterBits = 2; // coarse: 25% early quantization
    Harness s(sCfg);
    Harness r(tinyEdram(RefreshPolicy::refrint(DataPolicy::Valid)));
    s.hier.access(0, kA, AccessType::Load, 0);
    r.hier.access(0, kA, AccessType::Load, 0);

    s.eq.run(usToTicks(60.0));
    r.eq.run(usToTicks(60.0));

    EXPECT_GE(s.stat("refresh.l3.line_refreshes"),
              r.stat("refresh.l3.line_refreshes"));
}

TEST(SmartRefresh, ComposesWithWBDataPolicy)
{
    Harness h(tinyEdram(
        RefreshPolicy{TimePolicy::SmartRefresh, DataPolicy::WB, 1, 1}));
    Tick t = h.hier.access(0, kA, AccessType::Store, 0);
    h.hier.access(1, kA, AccessType::Load, t + 1); // dirty L3 copy

    h.eq.run(usToTicks(30.0));

    // Lifecycle completed: refresh, write back, refresh, invalidate.
    EXPECT_EQ(h.stat("refresh.l3.refresh_writebacks"), 1u);
    EXPECT_GE(h.stat("refresh.l3.refresh_invalidations"), 1u);
    EXPECT_EQ(h.hier.l3Bank(h.hier.bankOf(kA)).array.lookup(kA), nullptr);
}

TEST(SmartRefresh, SoundUnderRandomTraffic)
{
    HierarchyConfig cfg = tinyEdram(
        RefreshPolicy{TimePolicy::SmartRefresh, DataPolicy::WB, 4, 4});
    EventQueue eq;
    Hierarchy hier(cfg, eq);
    hier.start(0);
    Prng rng(7);
    Tick t = 0;
    for (int i = 0; i < 3000; ++i) {
        const auto c = static_cast<CoreId>(rng.next() % 4);
        const Addr a = (rng.next() % 512) * 64;
        eq.run(t);
        t = hier.access(c, a,
                        rng.uniform() < 0.3 ? AccessType::Store
                                            : AccessType::Load,
                        t) +
            10;
    }
    eq.run(t);
    std::map<std::string, double> m;
    hier.dumpStats(m);
    EXPECT_EQ(m["l3.decayed_hits"], 0.0);
    hier.checkInvariants(t);
}

// ---------------------------------------------------------------------
// Cache decay
// ---------------------------------------------------------------------

HierarchyConfig
tinyDecay(Tick interval)
{
    HierarchyConfig c = tinyConfig(CellTech::Sram);
    c.decay.enabled = true;
    c.decay.interval = interval;
    return c;
}

TEST(CacheDecay, GatesOffIdleLinesAfterTheInterval)
{
    Harness h(tinyDecay(usToTicks(5.0)));
    h.hier.access(0, kA, AccessType::Load, 0);
    ASSERT_NE(h.hier.l3Bank(h.hier.bankOf(kA)).array.lookup(kA), nullptr);

    h.eq.run(usToTicks(12.0));

    EXPECT_EQ(h.hier.l3Bank(h.hier.bankOf(kA)).array.lookup(kA), nullptr);
    EXPECT_GE(h.stat("refresh.l3.decay_gateoffs"), 1u);
    h.hier.checkInvariants(usToTicks(12.0));
}

TEST(CacheDecay, KeepsRecentlyAccessedLinesOn)
{
    Harness h(tinyDecay(usToTicks(5.0)));
    Tick t = 0;
    for (int i = 0; i < 20; ++i) {
        t = usToTicks(2.0) * i;
        h.eq.run(t);
        h.hier.access(i % 2, kA, AccessType::Store, t); // reaches L3
    }

    EXPECT_NE(h.hier.l3Bank(h.hier.bankOf(kA)).array.lookup(kA), nullptr);
}

TEST(CacheDecay, WritesDirtyDataBackBeforeGating)
{
    Harness h(tinyDecay(usToTicks(5.0)));
    Tick t = h.hier.access(0, kA, AccessType::Store, 0);
    h.hier.access(1, kA, AccessType::Load, t + 1); // L3 copy dirty
    const auto w = h.hier.dram().writes();

    h.eq.run(usToTicks(12.0));

    EXPECT_GE(h.hier.dram().writes(), w + 1);
    h.hier.checkInvariants(usToTicks(12.0));
}

TEST(CacheDecay, AccumulatesOffLineTime)
{
    Harness h(tinyDecay(usToTicks(5.0)));
    h.hier.access(0, kA, AccessType::Load, 0);
    h.eq.run(usToTicks(20.0));
    h.hier.finishEngines(usToTicks(20.0));

    const HierarchyCounts n = h.hier.counts();
    // Every L3 line was off for nearly the whole window (the touched
    // one decayed after ~5 us), so the integral is close to
    // lines x window.
    const double upper = 4.0 * 512 * static_cast<double>(usToTicks(20.0));
    EXPECT_GT(n.l3OffLineTicks, 0.5 * upper);
    EXPECT_LE(n.l3OffLineTicks, upper);
}

TEST(CacheDecay, ReducesLeakageEnergyVersusPlainSram)
{
    UniformWorkload app(8 * 1024, 0.3);
    const RunResult sram = runTiny(tinyConfig(CellTech::Sram), app, 8000);
    const RunResult decay = runTiny(tinyDecay(usToTicks(5.0)), app, 8000);

    EXPECT_LT(decay.energy.leakage, sram.energy.leakage);
}

TEST(CacheDecay, CostsExtraDramAccesses)
{
    // Decayed lines that are re-referenced must be refetched: decay
    // trades leakage for off-chip traffic (the same trade-off Refrint's
    // aggressive policies make with refresh energy, §6).
    UniformWorkload app(64 * 1024, 0.3);
    const RunResult sram = runTiny(tinyConfig(CellTech::Sram), app, 8000);
    const RunResult decay =
        runTiny(tinyDecay(usToTicks(2.0)), app, 8000);

    EXPECT_GT(decay.counts.dramAccesses, sram.counts.dramAccesses);
}

TEST(CacheDecay, SoundUnderRandomTraffic)
{
    HierarchyConfig cfg = tinyDecay(usToTicks(3.0));
    EventQueue eq;
    Hierarchy hier(cfg, eq);
    hier.start(0);
    Prng rng(11);
    Tick t = 0;
    for (int i = 0; i < 3000; ++i) {
        const auto c = static_cast<CoreId>(rng.next() % 4);
        const Addr a = (rng.next() % 512) * 64;
        eq.run(t);
        t = hier.access(c, a,
                        rng.uniform() < 0.3 ? AccessType::Store
                                            : AccessType::Load,
                        t) +
            10;
    }
    eq.run(t);
    hier.checkInvariants(t);
    std::map<std::string, double> m;
    hier.dumpStats(m);
    EXPECT_EQ(m["l3.decayed_hits"], 0.0); // SRAM data never expires
}

// ---------------------------------------------------------------------
// ECC retention extension
// ---------------------------------------------------------------------

TEST(EccModel, OverheadsAreMonotonicInCodeStrength)
{
    const EccModel none{EccScheme::None};
    const EccModel secded{EccScheme::Secded};
    const EccModel strong{EccScheme::Strong};

    EXPECT_EQ(none.storageOverhead(), 0.0);
    EXPECT_LT(secded.storageOverhead(), strong.storageOverhead());
    EXPECT_EQ(none.retentionMultiplier(), 1.0);
    EXPECT_LT(secded.retentionMultiplier(), strong.retentionMultiplier());
    EXPECT_EQ(none.accessEnergyFactor(), 1.0);
    EXPECT_LT(secded.accessEnergyFactor(), strong.accessEnergyFactor());
}

TEST(EccModel, ApplyExtendsRetentionAndInflatesL3Coefficients)
{
    HierarchyConfig cfg = HierarchyConfig::paperEdram(
        RefreshPolicy::periodic(DataPolicy::All), usToTicks(50.0));
    EnergyParams ep = EnergyParams::calibrated();
    const double leak0 = ep.leakL3Bank;
    const double acc0 = ep.eL3Access;

    applyEcc(EccScheme::Secded, cfg, ep);

    EXPECT_EQ(cfg.retention.cellRetention, usToTicks(100.0));
    EXPECT_GT(ep.leakL3Bank, leak0);
    EXPECT_GT(ep.eL3Access, acc0);
}

TEST(EccModel, EccReducesRefreshEnergyOfPeriodicAll)
{
    // The comparator's selling point: doubling the retention period
    // halves the refresh rate, which must show up as lower refresh
    // energy even after paying the check-bit overheads.
    UniformWorkload app(16 * 1024, 0.3);

    HierarchyConfig base = tinyEdram(
        RefreshPolicy::periodic(DataPolicy::All), usToTicks(5.0));
    SimParams sim;
    sim.refsPerCore = 8000;
    const RunResult plain = runOnce(base, app, sim);

    HierarchyConfig ecc = base;
    EnergyParams ep = EnergyParams::calibrated();
    applyEcc(EccScheme::Secded, ecc, ep);
    const RunResult coded = runOnce(ecc, app, sim, ep);

    EXPECT_LT(coded.energy.refresh, plain.energy.refresh);
}

} // namespace
} // namespace refrint::test
