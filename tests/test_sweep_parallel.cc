/**
 * @file
 * Tests for the parallel sweep engine: a multi-threaded sweep must be
 * bit-identical to the serial one (same per-run PRNG seeds, results
 * collected in spec order), the v4 cache must round-trip every field
 * exactly (%.17g), and a warm cache must satisfy a repeat sweep with
 * zero simulations.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/pool.hh"
#include "harness/sweep.hh"
#include "workload/micro.hh"

namespace refrint::test
{

namespace
{

/** Exact, field-by-field comparison of two runs. */
void
expectRunsIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.app, b.app);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.retentionUs, b.retentionUs);
    EXPECT_EQ(a.execTicks, b.execTicks);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.energy.l1, b.energy.l1);
    EXPECT_EQ(a.energy.l2, b.energy.l2);
    EXPECT_EQ(a.energy.l3, b.energy.l3);
    EXPECT_EQ(a.energy.dram, b.energy.dram);
    EXPECT_EQ(a.energy.dynamic, b.energy.dynamic);
    EXPECT_EQ(a.energy.leakage, b.energy.leakage);
    EXPECT_EQ(a.energy.refresh, b.energy.refresh);
    EXPECT_EQ(a.energy.core, b.energy.core);
    EXPECT_EQ(a.energy.net, b.energy.net);
    EXPECT_EQ(a.counts.dramAccesses, b.counts.dramAccesses);
    EXPECT_EQ(a.counts.l3Misses, b.counts.l3Misses);
    EXPECT_EQ(a.counts.l3Refreshes, b.counts.l3Refreshes);
    EXPECT_EQ(a.counts.refreshWritebacks, b.counts.refreshWritebacks);
    EXPECT_EQ(a.counts.refreshInvalidations,
              b.counts.refreshInvalidations);
    EXPECT_EQ(a.counts.decayedHits, b.counts.decayedHits);
}

/** A small multi-app, multi-policy spec that still exercises ordering:
 *  2 apps x (1 baseline + 2 retentions x 3 policies) = 14 runs. */
SweepSpec
smallSpec(const Workload &a1, const Workload &a2)
{
    SweepSpec spec;
    spec.apps = {&a1, &a2};
    spec.retentions = {usToTicks(50.0), usToTicks(100.0)};
    spec.policies = {RefreshPolicy::refrint(DataPolicy::Valid),
                     RefreshPolicy::periodic(DataPolicy::All),
                     RefreshPolicy::refrint(DataPolicy::WB, 4, 4)};
    spec.sim.refsPerCore = 1200;
    return spec;
}

TEST(SweepParallelTest, FourJobsBitIdenticalToSerial)
{
    UniformWorkload u(8 * 1024, 0.3);
    StreamWorkload s(32 * 1024, 0.2);

    SweepSpec serial = smallSpec(u, s);
    serial.jobs = 1;
    SweepSpec parallel = smallSpec(u, s);
    parallel.jobs = 4;

    const SweepResult a = runSweep(std::move(serial), "");
    const SweepResult b = runSweep(std::move(parallel), "");

    ASSERT_EQ(a.raw.size(), 14u);
    ASSERT_EQ(a.raw.size(), b.raw.size());
    for (std::size_t i = 0; i < a.raw.size(); ++i) {
        SCOPED_TRACE(a.raw[i].app + "/" + a.raw[i].config);
        expectRunsIdentical(a.raw[i], b.raw[i]);
    }

    ASSERT_EQ(a.normalized.size(), 12u);
    ASSERT_EQ(a.normalized.size(), b.normalized.size());
    for (std::size_t i = 0; i < a.normalized.size(); ++i) {
        EXPECT_EQ(a.normalized[i].app, b.normalized[i].app);
        EXPECT_EQ(a.normalized[i].config, b.normalized[i].config);
        EXPECT_EQ(a.normalized[i].time, b.normalized[i].time);
        EXPECT_EQ(a.normalized[i].memEnergy, b.normalized[i].memEnergy);
        EXPECT_EQ(a.normalized[i].sysEnergy, b.normalized[i].sysEnergy);
        EXPECT_EQ(a.normalized[i].refresh, b.normalized[i].refresh);
    }
}

TEST(SweepParallelTest, CacheRoundTripsEveryFieldExactly)
{
    UniformWorkload u(8 * 1024, 0.3);
    StreamWorkload s(32 * 1024, 0.2);
    const std::string path =
        ::testing::TempDir() + "/sweep_parallel_rt.csv";
    std::remove(path.c_str());

    SweepSpec first = smallSpec(u, s);
    SweepSpec second = smallSpec(u, s);
    const SweepResult fresh = runSweep(std::move(first), path);
    const SweepResult cached = runSweep(std::move(second), path);

    ASSERT_EQ(fresh.raw.size(), cached.raw.size());
    for (std::size_t i = 0; i < fresh.raw.size(); ++i) {
        SCOPED_TRACE(fresh.raw[i].app + "/" + fresh.raw[i].config);
        expectRunsIdentical(fresh.raw[i], cached.raw[i]);
    }
    std::remove(path.c_str());
}

TEST(SweepParallelTest, WarmCacheRunsZeroSimulations)
{
    UniformWorkload u(8 * 1024, 0.3);
    StreamWorkload s(32 * 1024, 0.2);
    const std::string path =
        ::testing::TempDir() + "/sweep_parallel_warm.csv";
    std::remove(path.c_str());

    SweepSpec first = smallSpec(u, s);
    first.jobs = 4;
    SweepSpec second = smallSpec(u, s);
    second.jobs = 4;

    const SweepResult fresh = runSweep(std::move(first), path);
    EXPECT_EQ(fresh.simulations, fresh.raw.size());

    const SweepResult warm = runSweep(std::move(second), path);
    EXPECT_EQ(warm.simulations, 0u);
    ASSERT_EQ(warm.raw.size(), fresh.raw.size());
    std::remove(path.c_str());
}

TEST(PoolTest, ParallelForCoversEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h = 0;
    parallelFor(hits.size(), 8,
                [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(PoolTest, SerialFallbackRunsInline)
{
    std::size_t count = 0; // unguarded: jobs=1 must stay on this thread
    parallelFor(100, 1, [&](std::size_t) { ++count; });
    EXPECT_EQ(count, 100u);
}

} // namespace
} // namespace refrint::test
