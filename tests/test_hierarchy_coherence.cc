/**
 * @file
 * Directory-MESI protocol tests for the coherent hierarchy, run on the
 * SRAM configuration so no refresh engine perturbs the state machine.
 * Every test drives Hierarchy::access() directly and inspects cache and
 * directory state through the component accessors.
 */

#include <gtest/gtest.h>

#include "common/prng.hh"
#include "test_util.hh"

namespace refrint::test
{

namespace
{

/** A data address that maps to L3 bank 0 of the tiny machine. */
constexpr Addr kA = 0x10000;

class CoherenceTest : public ::testing::Test
{
  protected:
    CoherenceTest() : hier(tinyConfig(CellTech::Sram), eq) {}

    /** Issue an access and advance the local clock past it. */
    Tick
    access(CoreId c, Addr a, AccessType t)
    {
        now = hier.access(c, a, t, now) + 1;
        return now;
    }

    Tick load(CoreId c, Addr a) { return access(c, a, AccessType::Load); }
    Tick store(CoreId c, Addr a) { return access(c, a, AccessType::Store); }
    Tick fetch(CoreId c, Addr a) { return access(c, a, AccessType::Fetch); }

    CacheLine *
    l3Line(Addr a)
    {
        return hier.l3Bank(hier.bankOf(a)).array.lookup(a);
    }

    CacheLine *l2Line(CoreId c, Addr a) { return hier.l2(c).array.lookup(a); }
    CacheLine *dl1Line(CoreId c, Addr a) { return hier.dl1(c).array.lookup(a); }
    CacheLine *il1Line(CoreId c, Addr a) { return hier.il1(c).array.lookup(a); }

    EventQueue eq;
    Hierarchy hier;
    Tick now = 0;
};

// ---------------------------------------------------------------------
// Fill paths
// ---------------------------------------------------------------------

TEST_F(CoherenceTest, LoadMissFillsAllLevels)
{
    load(0, kA);

    ASSERT_NE(dl1Line(0, kA), nullptr);
    ASSERT_NE(l2Line(0, kA), nullptr);
    ASSERT_NE(l3Line(kA), nullptr);
    EXPECT_EQ(hier.dram().reads(), 1u);
}

TEST_F(CoherenceTest, FirstLoaderIsGrantedExclusive)
{
    load(0, kA);

    EXPECT_EQ(l2Line(0, kA)->state, Mesi::Exclusive);
    EXPECT_EQ(l3Line(kA)->owner, 0);
    EXPECT_EQ(l3Line(kA)->sharers, 1u << 0);
}

TEST_F(CoherenceTest, SecondLoaderDowngradesToShared)
{
    load(0, kA);
    load(1, kA);

    EXPECT_EQ(l2Line(0, kA)->state, Mesi::Shared);
    EXPECT_EQ(l2Line(1, kA)->state, Mesi::Shared);
    EXPECT_EQ(l3Line(kA)->owner, -1);
    EXPECT_EQ(l3Line(kA)->sharers, (1u << 0) | (1u << 1));
}

TEST_F(CoherenceTest, LoadHitInL1SkipsLowerLevels)
{
    load(0, kA);
    const auto l2Reads = hier.l2(0).reads->value();
    const auto l3Reads = hier.l3Bank(hier.bankOf(kA)).reads->value();

    load(0, kA);

    EXPECT_EQ(hier.l2(0).reads->value(), l2Reads);
    EXPECT_EQ(hier.l3Bank(hier.bankOf(kA)).reads->value(), l3Reads);
}

TEST_F(CoherenceTest, FetchFillsIL1NotDL1)
{
    fetch(0, kA);

    EXPECT_NE(il1Line(0, kA), nullptr);
    EXPECT_EQ(dl1Line(0, kA), nullptr);
}

TEST_F(CoherenceTest, FetchAndLoadShareTheL2Copy)
{
    fetch(0, kA);
    const auto l3Misses = hier.l3Bank(hier.bankOf(kA)).misses->value();
    load(0, kA);

    // The load hits the L2 copy installed by the fetch: no new L3 miss.
    EXPECT_EQ(hier.l3Bank(hier.bankOf(kA)).misses->value(), l3Misses);
    EXPECT_NE(il1Line(0, kA), nullptr);
    EXPECT_NE(dl1Line(0, kA), nullptr);
}

// ---------------------------------------------------------------------
// Stores, ownership and upgrades
// ---------------------------------------------------------------------

TEST_F(CoherenceTest, StoreMissInstallsModified)
{
    store(0, kA);

    ASSERT_NE(l2Line(0, kA), nullptr);
    EXPECT_EQ(l2Line(0, kA)->state, Mesi::Modified);
    EXPECT_TRUE(l2Line(0, kA)->dirty);
    EXPECT_EQ(l3Line(kA)->owner, 0);
    EXPECT_EQ(l3Line(kA)->sharers, 1u << 0);
}

TEST_F(CoherenceTest, StoreDoesNotAllocateInDL1)
{
    store(0, kA);

    EXPECT_EQ(dl1Line(0, kA), nullptr); // no-write-allocate DL1
}

TEST_F(CoherenceTest, StoreUpdatesExistingDL1Copy)
{
    load(0, kA);
    ASSERT_NE(dl1Line(0, kA), nullptr);

    store(0, kA);

    // Write-through, write-update: the copy stays resident.
    EXPECT_NE(dl1Line(0, kA), nullptr);
}

TEST_F(CoherenceTest, WriteThroughStoresAlwaysReachL2)
{
    store(0, kA);
    const auto w = hier.l2(0).writes->value();

    store(0, kA);
    store(0, kA);

    EXPECT_EQ(hier.l2(0).writes->value(), w + 2);
}

TEST_F(CoherenceTest, SilentExclusiveToModifiedUpgrade)
{
    load(0, kA);
    ASSERT_EQ(l2Line(0, kA)->state, Mesi::Exclusive);
    const auto l3Reads = hier.l3Bank(hier.bankOf(kA)).reads->value();

    store(0, kA);

    EXPECT_EQ(l2Line(0, kA)->state, Mesi::Modified);
    EXPECT_TRUE(l2Line(0, kA)->dirty);
    // The upgrade is silent: no directory transaction.
    EXPECT_EQ(hier.l3Bank(hier.bankOf(kA)).reads->value(), l3Reads);
    EXPECT_EQ(l3Line(kA)->owner, 0);
}

TEST_F(CoherenceTest, SharedToModifiedUpgradeInvalidatesPeers)
{
    load(0, kA);
    load(1, kA);
    load(2, kA);

    store(0, kA);

    EXPECT_EQ(l2Line(0, kA)->state, Mesi::Modified);
    EXPECT_EQ(l2Line(1, kA), nullptr);
    EXPECT_EQ(l2Line(2, kA), nullptr);
    EXPECT_EQ(l3Line(kA)->sharers, 1u << 0);
    EXPECT_EQ(l3Line(kA)->owner, 0);
}

TEST_F(CoherenceTest, UpgradeInvalidatesPeerL1Copies)
{
    load(1, kA);
    ASSERT_NE(dl1Line(1, kA), nullptr);

    store(0, kA);

    EXPECT_EQ(dl1Line(1, kA), nullptr);
    EXPECT_EQ(l2Line(1, kA), nullptr);
}

// ---------------------------------------------------------------------
// Owner intervention
// ---------------------------------------------------------------------

TEST_F(CoherenceTest, ReadOfModifiedLineFetchesFromOwner)
{
    store(0, kA);
    load(1, kA);

    // Owner was downgraded to Shared and its data became L3's dirty copy.
    EXPECT_EQ(l2Line(0, kA)->state, Mesi::Shared);
    EXPECT_FALSE(l2Line(0, kA)->dirty);
    EXPECT_EQ(l2Line(1, kA)->state, Mesi::Shared);
    EXPECT_TRUE(l3Line(kA)->dirty);
    EXPECT_EQ(l3Line(kA)->owner, -1);
    EXPECT_EQ(l3Line(kA)->sharers, (1u << 0) | (1u << 1));
}

TEST_F(CoherenceTest, ReadOfModifiedLineDoesNotTouchDram)
{
    store(0, kA);
    const auto reads = hier.dram().reads();
    const auto writes = hier.dram().writes();

    load(1, kA);

    // Cache-to-cache transfer: the dirty data stays on chip.
    EXPECT_EQ(hier.dram().reads(), reads);
    EXPECT_EQ(hier.dram().writes(), writes);
}

TEST_F(CoherenceTest, WriteToModifiedLineInvalidatesOwner)
{
    store(0, kA);
    store(1, kA);

    EXPECT_EQ(l2Line(0, kA), nullptr);
    EXPECT_EQ(l2Line(1, kA)->state, Mesi::Modified);
    EXPECT_EQ(l3Line(kA)->owner, 1);
    EXPECT_EQ(l3Line(kA)->sharers, 1u << 1);
    EXPECT_TRUE(l3Line(kA)->dirty); // previous owner's data landed in L3
}

TEST_F(CoherenceTest, ReadOfExclusiveLineDowngradesWithoutDirtyData)
{
    load(0, kA); // Exclusive, clean
    load(1, kA);

    EXPECT_EQ(l2Line(0, kA)->state, Mesi::Shared);
    EXPECT_FALSE(l3Line(kA)->dirty); // nothing was modified
}

TEST_F(CoherenceTest, InterventionAddsLatencyOverPlainMiss)
{
    // Same-address load by c1: once when c0 holds it Modified
    // (intervention) vs. on a fresh machine where the line is resident
    // but unowned (plain L3 hit).
    store(0, kA);
    const Tick t0 = now;
    const Tick interventionLat =
        hier.access(1, kA, AccessType::Load, t0) - t0;

    EventQueue eq2;
    Hierarchy fresh(tinyConfig(CellTech::Sram), eq2);
    Tick t1 = fresh.access(2, kA, AccessType::Load, 0) + 1;
    t1 = fresh.access(3, kA, AccessType::Load, t1) + 1; // owner cleared
    const Tick hitLat = fresh.access(1, kA, AccessType::Load, t1) - t1;

    EXPECT_GT(interventionLat, hitLat);
}

// ---------------------------------------------------------------------
// Evictions and inclusion
// ---------------------------------------------------------------------

/** The @p i-th distinct address (i >= 1) that lands in @p base's L3
 *  bank *and* set.  Found by search so it works with the hashed L3
 *  index, which no constant stride can defeat. */
Addr
conflictAddr(const Hierarchy &h, Addr base, std::uint32_t i)
{
    const CacheGeometry &g = h.config().llc().geom;
    const std::uint32_t wantSet = g.setIndex(base);
    const std::uint32_t wantBank = h.bankOf(base);
    const Addr bankSpan = Addr{64} << h.config().llc().geom.indexShift;
    std::uint32_t found = 0;
    for (Addr a = base + bankSpan * 4;; a += bankSpan * 4) {
        if (h.bankOf(a) == wantBank && g.setIndex(a) == wantSet) {
            if (++found == i)
                return a;
        }
    }
}

TEST_F(CoherenceTest, L3EvictionBackInvalidatesPrivateCopies)
{
    load(0, kA);
    ASSERT_NE(dl1Line(0, kA), nullptr);

    // Overflow kA's L3 set (8 ways) from another core.
    for (std::uint32_t i = 1; i <= 8; ++i)
        load(1, conflictAddr(hier, kA, i));

    EXPECT_EQ(l3Line(kA), nullptr);
    EXPECT_EQ(l2Line(0, kA), nullptr);
    EXPECT_EQ(dl1Line(0, kA), nullptr);
    EXPECT_GE(hier.l2(0).backInvals->value(), 1u);
}

TEST_F(CoherenceTest, L3EvictionOfModifiedLineRescuesDataToDram)
{
    store(0, kA);
    const auto w = hier.dram().writes();

    for (std::uint32_t i = 1; i <= 8; ++i)
        load(1, conflictAddr(hier, kA, i));

    ASSERT_EQ(l3Line(kA), nullptr);
    EXPECT_EQ(hier.dram().writes(), w + 1);
}

TEST_F(CoherenceTest, CleanL3EvictionWritesNothingToDram)
{
    load(0, kA);
    const auto w = hier.dram().writes();

    for (std::uint32_t i = 1; i <= 8; ++i)
        load(1, conflictAddr(hier, kA, i));

    ASSERT_EQ(l3Line(kA), nullptr);
    EXPECT_EQ(hier.dram().writes(), w);
}

TEST_F(CoherenceTest, L2EvictionOfModifiedLineDirtiesL3)
{
    // tiny L2: 8 KB, 8-way, 64 B lines -> 16 sets; overflow one set.
    const Addr base = 0x40000;
    const auto l2SetStride = static_cast<Addr>(16 * 64);
    store(0, base);
    ASSERT_EQ(l2Line(0, base)->state, Mesi::Modified);

    for (std::uint32_t i = 1; i <= 8; ++i)
        store(0, base + i * l2SetStride);

    EXPECT_EQ(l2Line(0, base), nullptr);
    ASSERT_NE(l3Line(base), nullptr);
    EXPECT_TRUE(l3Line(base)->dirty);
    EXPECT_EQ(l3Line(base)->owner, -1);
    EXPECT_EQ(l3Line(base)->sharers & 1u, 0u);
}

TEST_F(CoherenceTest, L2EvictionDropsL1CopiesForInclusion)
{
    const Addr base = 0x40000;
    const auto l2SetStride = static_cast<Addr>(16 * 64);
    load(0, base);
    ASSERT_NE(dl1Line(0, base), nullptr);

    for (std::uint32_t i = 1; i <= 8; ++i)
        load(0, base + i * l2SetStride);

    EXPECT_EQ(l2Line(0, base), nullptr);
    EXPECT_EQ(dl1Line(0, base), nullptr);
}

TEST_F(CoherenceTest, CleanL2EvictionUpdatesDirectory)
{
    const Addr base = 0x40000;
    const auto l2SetStride = static_cast<Addr>(16 * 64);
    load(0, base);

    for (std::uint32_t i = 1; i <= 8; ++i)
        load(0, base + i * l2SetStride);

    ASSERT_NE(l3Line(base), nullptr);
    EXPECT_EQ(l3Line(base)->sharers & 1u, 0u);
    EXPECT_EQ(l3Line(base)->owner, -1);
}

// ---------------------------------------------------------------------
// Directory / bank mapping / flush
// ---------------------------------------------------------------------

TEST_F(CoherenceTest, AddressesInterleaveAcrossBanksByLine)
{
    const std::uint32_t banks = hier.numBanks();
    for (std::uint32_t i = 0; i < 2 * banks; ++i) {
        EXPECT_EQ(hier.bankOf(i * 64), i % banks);
    }
}

TEST_F(CoherenceTest, SameBankForAllBytesOfOneLine)
{
    EXPECT_EQ(hier.bankOf(kA), hier.bankOf(kA + 63));
    EXPECT_NE(hier.bankOf(kA), hier.bankOf(kA + 64));
}

TEST_F(CoherenceTest, FlushDirtyChargesAllModifiedData)
{
    store(0, kA);          // Modified in c0's L2 (L3 copy clean)
    store(1, kA + 64);     // Modified in c1's L2
    store(2, kA + 128);
    load(3, kA + 128);     // downgrade: L3 copy becomes the dirty one
    const auto w = hier.dram().writes();

    hier.flushDirty();

    // Two L2-Modified lines + one dirty L3 line.
    EXPECT_EQ(hier.dram().writes(), w + 3);
}

TEST_F(CoherenceTest, FlushDirtyIsIdempotentOnCleanHierarchy)
{
    load(0, kA);
    const auto w = hier.dram().writes();

    hier.flushDirty();

    EXPECT_EQ(hier.dram().writes(), w);
}

// ---------------------------------------------------------------------
// Randomized property test: the protocol invariants hold under
// arbitrary interleavings of loads/stores/fetches from all cores.
// ---------------------------------------------------------------------

struct RandomTrafficParam
{
    std::uint64_t seed;
    std::uint64_t regionBytes; ///< shared region size (contention knob)
    double writeFraction;
};

class RandomTrafficTest
    : public ::testing::TestWithParam<RandomTrafficParam>
{
};

TEST_P(RandomTrafficTest, InvariantsHoldUnderRandomSharedTraffic)
{
    const RandomTrafficParam p = GetParam();
    EventQueue eq;
    Hierarchy hier(tinyConfig(CellTech::Sram), eq);
    Prng rng(p.seed);

    Tick now = 0;
    const std::uint64_t lines = p.regionBytes / 64;
    for (int i = 0; i < 4000; ++i) {
        const auto c = static_cast<CoreId>(rng.next() % 4);
        const Addr a = (rng.next() % lines) * 64;
        const bool wr = rng.uniform() < p.writeFraction;
        now = hier.access(c, a,
                          wr ? AccessType::Store : AccessType::Load, now) +
              1;
        if (i % 500 == 0)
            hier.checkInvariants(now);
    }
    hier.checkInvariants(now);
}

INSTANTIATE_TEST_SUITE_P(
    Traffic, RandomTrafficTest,
    ::testing::Values(
        RandomTrafficParam{1, 4 * 1024, 0.0},    // read-only sharing
        RandomTrafficParam{2, 4 * 1024, 0.3},    // hot shared set
        RandomTrafficParam{3, 4 * 1024, 1.0},    // write storm
        RandomTrafficParam{4, 256 * 1024, 0.3},  // spills all levels
        RandomTrafficParam{5, 1024, 0.5},        // extreme contention
        RandomTrafficParam{6, 64 * 1024, 0.05}), // mostly reads, L3-sized
    [](const ::testing::TestParamInfo<RandomTrafficParam> &info) {
        return "seed" + std::to_string(info.param.seed) + "_" +
               std::to_string(info.param.regionBytes / 1024) + "k_w" +
               std::to_string(
                   static_cast<int>(info.param.writeFraction * 100));
    });

} // namespace
} // namespace refrint::test
