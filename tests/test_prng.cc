/**
 * @file
 * Unit tests for the PCG32 generator and its derived distributions.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/prng.hh"

namespace refrint::test
{

TEST(Prng, Deterministic)
{
    Prng a(42, 1), b(42, 1);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, StreamsDiffer)
{
    Prng a(42, 1), b(42, 3);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Prng, SeedsDiffer)
{
    Prng a(42, 1), b(43, 1);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Prng, BelowStaysInRange)
{
    Prng p(7, 1);
    for (std::uint32_t bound : {1u, 2u, 3u, 17u, 1000u}) {
        for (int i = 0; i < 2000; ++i) {
            const std::uint32_t v = p.below(bound);
            EXPECT_LT(v, bound);
        }
    }
}

TEST(Prng, BelowZeroAndOneDegenerate)
{
    Prng p(7, 1);
    EXPECT_EQ(p.below(0), 0u);
    EXPECT_EQ(p.below(1), 0u);
}

TEST(Prng, BelowIsRoughlyUniform)
{
    Prng p(11, 1);
    const std::uint32_t bound = 8;
    std::vector<int> hist(bound, 0);
    const int draws = 80'000;
    for (int i = 0; i < draws; ++i)
        ++hist[p.below(bound)];
    for (std::uint32_t b = 0; b < bound; ++b) {
        EXPECT_NEAR(hist[b], draws / bound, draws / bound * 0.1)
            << "bucket " << b;
    }
}

TEST(Prng, UniformInUnitInterval)
{
    Prng p(5, 1);
    double sum = 0;
    for (int i = 0; i < 10'000; ++i) {
        const double u = p.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Prng, ChanceExtremes)
{
    Prng p(5, 1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(p.chance(0.0));
        EXPECT_TRUE(p.chance(1.0));
    }
}

TEST(Prng, ChanceMatchesProbability)
{
    Prng p(5, 1);
    int hits = 0;
    const int draws = 50'000;
    for (int i = 0; i < draws; ++i)
        hits += p.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / static_cast<double>(draws), 0.3, 0.02);
}

TEST(Prng, SkewedStaysInRange)
{
    Prng p(9, 1);
    for (double s : {1.0, 2.0, 3.5}) {
        for (int i = 0; i < 5000; ++i)
            EXPECT_LT(p.skewed(100, s), 100u);
    }
}

TEST(Prng, SkewedDegeneratesToUniform)
{
    Prng p(9, 1);
    int low = 0;
    const int draws = 40'000;
    for (int i = 0; i < draws; ++i)
        low += p.skewed(100, 1.0) < 10 ? 1 : 0;
    EXPECT_NEAR(low / static_cast<double>(draws), 0.10, 0.02);
}

TEST(Prng, SkewedConcentratesAtLowRanks)
{
    Prng p(9, 1);
    int low2 = 0, low3 = 0;
    const int draws = 40'000;
    for (int i = 0; i < draws; ++i) {
        low2 += p.skewed(100, 2.0) < 10 ? 1 : 0;
        low3 += p.skewed(100, 3.0) < 10 ? 1 : 0;
    }
    // u^2: P(rank < 10%) = sqrt(0.1) ~ 0.316; u^3: 0.1^(1/3) ~ 0.464.
    EXPECT_NEAR(low2 / static_cast<double>(draws), 0.316, 0.03);
    EXPECT_NEAR(low3 / static_cast<double>(draws), 0.464, 0.03);
}

TEST(Prng, SkewedSingleton)
{
    Prng p(9, 1);
    EXPECT_EQ(p.skewed(1, 3.0), 0u);
}

} // namespace refrint::test
