/**
 * @file
 * Tests for the shared FNV-1a implementation (common/hash.hh) and the
 * bump arena (common/arena.hh).
 *
 * The hash tests pin the function to golden values: the basis/prime
 * pair is persisted in framed store files, shard layouts and |en=
 * cache-key tags, so the deduplicated implementation must reproduce
 * the two historical private copies bit for bit, forever.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "api/experiment_plan.hh"
#include "common/arena.hh"
#include "common/hash.hh"
#include "service/store.hh"

namespace refrint::test
{

// ---------------------------------------------------------------------
// FNV-1a (common/hash.hh)
// ---------------------------------------------------------------------

TEST(Fnv64, GoldenValues)
{
    // Pinned outputs of the repo's historical hash (note the basis is
    // *not* the canonical FNV offset basis — see common/hash.hh).  If
    // any of these move, persisted stores and tagged cache rows are
    // orphaned: that is a bug in the change, not in this test.
    EXPECT_EQ(fnv64(""), 0x14650fb0739d0383ull);
    EXPECT_EQ(fnv64("a"), 0x44bd8ad473cd9906ull);
    EXPECT_EQ(fnv64("foobar"), 0x88fad7c0a8ff07f2ull);
}

TEST(Fnv64, MixIsIncremental)
{
    // Hashing a buffer in arbitrary splits must equal the one-shot
    // hash (the framing layer mixes header and payload separately).
    const std::string s = "refrint|framed|record";
    const std::uint64_t whole = fnv64(s);
    for (std::size_t cut = 0; cut <= s.size(); ++cut) {
        std::uint64_t h = fnv64Mix(s.data(), cut);
        h = fnv64Mix(s.data() + cut, s.size() - cut, h);
        EXPECT_EQ(h, whole) << "split at " << cut;
    }
}

TEST(Fnv64, ShardSelectionIsPinned)
{
    // Shard choice is fnv64(key) % shards; rows already written to a
    // shard file must keep resolving to the same file after the hash
    // dedup (byte-identical store layout).
    const std::string dir =
        ::testing::TempDir() + "/hash_shard_store";
    std::filesystem::remove_all(dir);
    {
        ShardedStore store(dir, 8);
        const std::vector<std::string> keys = {
            "fft|P.all|50.0|4000|1", "lu|SRAM|0.0|2000|1", "key-0",
            "key-17", "radix|R.WB(32,32)|100.0|120000|1"};
        for (const std::string &k : keys)
            EXPECT_EQ(store.shardOf(k), fnv64(k) % store.shards()) << k;
        // One fully pinned value so a simultaneous change of hash and
        // test helper cannot slip through.
        EXPECT_EQ(store.shardOf("fft|P.all|50.0|4000|1"), 2u);
    }
    std::filesystem::remove_all(dir);
}

TEST(Fnv64, EnergyKeyTagIsPinned)
{
    // The |en= tag is the hex FNV state over the serialized parameter
    // block; re-parameterized-model rows persist it in sweep caches.
    EXPECT_EQ(energyKeyTag(EnergyParams::calibrated()), "");
    EnergyParams tweaked = EnergyParams::calibrated();
    tweaked.eL3Access *= 100.0;
    EXPECT_EQ(energyKeyTag(tweaked), "cfaba19835f12124");
}

// ---------------------------------------------------------------------
// Arena (common/arena.hh)
// ---------------------------------------------------------------------

TEST(Arena, ResetRecyclesTheSameMemory)
{
    Arena arena(4096);
    void *first = arena.allocate(256, 8);
    ASSERT_NE(first, nullptr);
    arena.allocate(512, 8);
    EXPECT_GE(arena.allocatedBytes(), 768u);

    arena.reset();
    EXPECT_EQ(arena.allocatedBytes(), 0u);
    // The first post-reset allocation reuses the first chunk from the
    // start: recycling, not re-acquisition.
    EXPECT_EQ(arena.allocate(256, 8), first);
}

TEST(Arena, RespectsAlignment)
{
    Arena arena(4096);
    arena.allocate(1, 1); // misalign the bump offset
    for (std::size_t align : {8u, 16u, 64u, 4096u}) {
        auto p = reinterpret_cast<std::uintptr_t>(
            arena.allocate(8, align));
        EXPECT_EQ(p % align, 0u) << "align " << align;
    }
}

TEST(Arena, OversizedRequestGetsItsOwnChunk)
{
    Arena arena(4096);
    void *big = arena.allocate(1 << 20, 8);
    ASSERT_NE(big, nullptr);
    EXPECT_GE(arena.capacityBytes(), std::size_t{1} << 20);
    // And the arena keeps serving small requests afterwards.
    EXPECT_NE(arena.allocate(64, 8), nullptr);
}

TEST(Arena, VectorWorksWithAndWithoutArena)
{
    Arena arena;
    ArenaVector<int> v{ArenaAllocator<int>(&arena)};
    for (int i = 0; i < 10'000; ++i)
        v.push_back(i);
    for (int i = 0; i < 10'000; ++i)
        ASSERT_EQ(v[static_cast<std::size_t>(i)], i);

    // Null arena falls back to operator new/delete: a default
    // ArenaVector is an ordinary vector.
    ArenaVector<int> plain;
    plain.assign(100, 7);
    EXPECT_EQ(plain.size(), 100u);
    EXPECT_EQ(plain[99], 7);
}

TEST(Arena, ContainersSurviveGrowthAcrossChunks)
{
    // Grow several vectors interleaved so reallocations leave dead
    // blocks behind; contents must stay intact until reset.
    Arena arena(4096);
    ArenaVector<std::uint64_t> a{ArenaAllocator<std::uint64_t>(&arena)};
    ArenaVector<std::uint64_t> b{ArenaAllocator<std::uint64_t>(&arena)};
    for (std::uint64_t i = 0; i < 4'000; ++i) {
        a.push_back(i);
        b.push_back(i * 3);
    }
    for (std::uint64_t i = 0; i < 4'000; ++i) {
        ASSERT_EQ(a[i], i);
        ASSERT_EQ(b[i], i * 3);
    }
}

} // namespace refrint::test
