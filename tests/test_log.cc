/**
 * @file
 * Tests for the logging/abort helpers: panic aborts, fatal exits with
 * status 1, warn continues, and panicIf only fires on true conditions.
 */

#include <gtest/gtest.h>

#include "common/log.hh"

namespace refrint::test
{

namespace
{

TEST(LogTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LogTest, PanicIfFiresOnlyWhenTrue)
{
    panicIf(false, "must not fire");
    EXPECT_DEATH(panicIf(true, "did fire"), "did fire");
}

TEST(LogTest, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(fatal("bad config '%s'", "x"),
                ::testing::ExitedWithCode(1), "bad config 'x'");
}

TEST(LogTest, WarnDoesNotTerminate)
{
    warn("just a warning %d", 7);
    SUCCEED();
}

} // namespace
} // namespace refrint::test
