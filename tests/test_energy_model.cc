/**
 * @file
 * Unit tests for the energy model: the Table 5.2 identities (eDRAM
 * leakage = SRAM/4, refresh energy = access energy), the decomposition
 * consistency (by-level sums equal by-component sums), and the
 * calibration anchors the parameters encode (§5/§6.2).
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"
#include "test_util.hh"

namespace refrint::test
{

namespace
{

HierarchyCounts
sampleCounts()
{
    HierarchyCounts n;
    n.l1Reads = 1'000'000;
    n.l1Writes = 300'000;
    n.l2Reads = 120'000;
    n.l2Writes = 90'000;
    n.l3Reads = 40'000;
    n.l3Writes = 25'000;
    n.l1Refreshes = 5'000;
    n.l2Refreshes = 20'000;
    n.l3Refreshes = 300'000;
    n.dramAccesses = 8'000;
    n.netHops = 500'000;
    n.netDataMsgs = 60'000;
    return n;
}

TEST(EnergyModel, LevelAndComponentViewsSumIdentically)
{
    const auto cfg = HierarchyConfig::paperEdram(
        RefreshPolicy::refrint(DataPolicy::Valid), usToTicks(50.0));
    const auto e = computeEnergy(EnergyParams::calibrated(),
                                 sampleCounts(), cfg,
                                 usToTicks(1000.0), 50'000'000);

    // l1+l2+l3 (on-chip) must equal dynamic+leakage+refresh.
    EXPECT_NEAR(e.l1 + e.l2 + e.l3,
                e.dynamic + e.leakage + e.refresh,
                1e-12);
    EXPECT_DOUBLE_EQ(e.memTotal(), e.l1 + e.l2 + e.l3 + e.dram);
    EXPECT_DOUBLE_EQ(e.systemTotal(), e.memTotal() + e.core + e.net);
}

TEST(EnergyModel, EdramLeakageIsAQuarterOfSram)
{
    const HierarchyCounts n; // all-zero: leakage only
    const Tick t = usToTicks(500.0);

    const auto sram = computeEnergy(EnergyParams::calibrated(), n,
                                    HierarchyConfig::paperSram(), t, 0);
    const auto edram = computeEnergy(
        EnergyParams::calibrated(), n,
        HierarchyConfig::paperEdram(
            RefreshPolicy::refrint(DataPolicy::Valid), usToTicks(50.0)),
        t, 0);

    EXPECT_NEAR(edram.leakage, sram.leakage * 0.25, 1e-12);
}

TEST(EnergyModel, RefreshEnergyEqualsAccessEnergyPerLine)
{
    // Table 5.2: refreshing a line costs exactly one access.  Compare a
    // run with k refreshes against one with k extra reads at each level.
    const auto cfg = HierarchyConfig::paperEdram(
        RefreshPolicy::refrint(DataPolicy::Valid), usToTicks(50.0));
    const Tick t = usToTicks(100.0);

    HierarchyCounts refreshes;
    refreshes.l1Refreshes = 1000;
    refreshes.l2Refreshes = 2000;
    refreshes.l3Refreshes = 3000;

    HierarchyCounts reads;
    reads.l1Reads = 1000;
    reads.l2Reads = 2000;
    reads.l3Reads = 3000;

    const auto er = computeEnergy(EnergyParams::calibrated(), refreshes,
                                  cfg, t, 0);
    const auto ea = computeEnergy(EnergyParams::calibrated(), reads, cfg,
                                  t, 0);

    EXPECT_NEAR(er.refresh, ea.dynamic, 1e-15);
    EXPECT_NEAR(er.memTotal(), ea.memTotal(), 1e-12);
}

TEST(EnergyModel, EnergyScalesLinearlyWithCounts)
{
    const auto cfg = HierarchyConfig::paperSram();
    const Tick t = usToTicks(100.0);

    HierarchyCounts n = sampleCounts();
    const auto e1 = computeEnergy(EnergyParams::calibrated(), n, cfg, t, 0);

    HierarchyCounts n2;
    n2.l1Reads = 2 * n.l1Reads;
    n2.l1Writes = 2 * n.l1Writes;
    n2.l2Reads = 2 * n.l2Reads;
    n2.l2Writes = 2 * n.l2Writes;
    n2.l3Reads = 2 * n.l3Reads;
    n2.l3Writes = 2 * n.l3Writes;
    n2.dramAccesses = 2 * n.dramAccesses;
    const auto e2 = computeEnergy(EnergyParams::calibrated(), n2, cfg, t, 0);

    EXPECT_NEAR(e2.dynamic, 2.0 * e1.dynamic, 1e-12);
    EXPECT_NEAR(e2.dram, 2.0 * e1.dram, 1e-12);
    EXPECT_NEAR(e2.leakage, e1.leakage, 1e-12); // time unchanged
}

TEST(EnergyModel, LeakageScalesLinearlyWithTime)
{
    const auto cfg = HierarchyConfig::paperSram();
    const HierarchyCounts n;
    const auto e1 =
        computeEnergy(EnergyParams::calibrated(), n, cfg, usToTicks(100.0), 0);
    const auto e3 =
        computeEnergy(EnergyParams::calibrated(), n, cfg, usToTicks(300.0), 0);

    EXPECT_NEAR(e3.leakage, 3.0 * e1.leakage, 1e-12);
    EXPECT_NEAR(e3.core, 3.0 * e1.core, 1e-12);
}

// ---------------------------------------------------------------------
// Calibration anchors: the simulated full-SRAM machine must land where
// the paper's setup chapter says it does.
// ---------------------------------------------------------------------

TEST(EnergyModel, SramL1EnergyIsMostlyDynamic)
{
    // §5: "Most of the energy expended in L1 is dynamic energy (~90%)".
    // Verified on a real run of the paper-sized SRAM machine.
    const Workload *fft = findWorkload("fft");
    ASSERT_NE(fft, nullptr);
    SimParams sim;
    sim.refsPerCore = 60'000; // warm caches; cold-start stalls inflate
                              // the leakage share on very short runs
    const RunResult r =
        runOnce(HierarchyConfig::paperSram(), *fft, sim);

    const double l1Dyn =
        static_cast<double>(r.counts.l1Reads + r.counts.l1Writes) *
        EnergyParams::calibrated().eL1Access;
    EXPECT_GT(l1Dyn / r.energy.l1, 0.5) << l1Dyn / r.energy.l1;
}

TEST(EnergyModel, SramL3CarriesTheMajorityOfOnChipMemoryEnergy)
{
    // §6.2: "L3 consumes the majority (~60%) of the on-chip memory
    // energy".
    const Workload *fft = findWorkload("fft");
    ASSERT_NE(fft, nullptr);
    SimParams sim;
    sim.refsPerCore = 20'000;
    const RunResult r =
        runOnce(HierarchyConfig::paperSram(), *fft, sim);

    const double onChip = r.energy.l1 + r.energy.l2 + r.energy.l3;
    EXPECT_GT(r.energy.l3 / onChip, 0.5);
}

} // namespace
} // namespace refrint::test
