/**
 * @file
 * Memory-reference trace capture and replay.
 *
 * The synthetic workload generators (workload/) are deterministic, but
 * a trace file decouples experiments from generator versions: a trace
 * recorded once can be replayed against any machine configuration — or
 * shipped alongside results so others can reproduce a figure bit-for-
 * bit.  Traces also let users plug their *own* reference streams into
 * the simulator (e.g. converted from a PIN/DynamoRIO capture of a real
 * SPLASH-2 run) without touching the workload code.
 *
 * Format (versioned, line-oriented text so traces diff and compress
 * well):
 *
 *   refrint-trace v1 <numCores> <codeLines>
 *   c <core>              -- switches the current core
 *   r <hexAddr> <gap>     -- read reference
 *   w <hexAddr> <gap>     -- write reference
 *
 * codeLines is the instruction footprint the fetch model uses; without
 * it a replay would differ from the original run on the IL1 path.
 */

#ifndef REFRINT_TRACE_TRACE_HH
#define REFRINT_TRACE_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace refrint
{

/** An in-memory trace: one reference vector per core. */
struct Trace
{
    std::vector<std::vector<MemRef>> perCore;

    /** Instruction footprint (64B lines) for the fetch model. */
    std::uint32_t codeLines = 128;

    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(perCore.size());
    }

    std::uint64_t totalRefs() const;

    bool
    empty() const
    {
        for (const auto &v : perCore)
            if (!v.empty())
                return false;
        return true;
    }
};

/** Record @p refsPerCore references per core from @p app. */
Trace recordTrace(const Workload &app, std::uint32_t numCores,
                  std::uint64_t refsPerCore, std::uint64_t seed);

/** Write @p t to @p path; returns false (and logs) on I/O failure. */
bool saveTrace(const Trace &t, const std::string &path);

/** Load a trace; fatal()s on a malformed file. */
Trace loadTrace(const std::string &path);

/**
 * A Workload replaying a recorded trace.  Each core's stream wraps
 * around when it exhausts its vector, so any refsPerCore works.  The
 * constructed machine must have exactly the trace's core count:
 * makeStream() rejects a mismatch with a clear fatal error instead of
 * silently reusing or dropping streams — a 16-core trace replayed on a
 * 32-core machine is a different workload, not the recorded one.
 */
class TraceWorkload : public Workload
{
  public:
    explicit TraceWorkload(Trace trace, std::string name = "trace");

    const char *name() const override { return name_.c_str(); }
    int paperClass() const override { return 0; }
    std::uint32_t codeLines() const override { return trace_.codeLines; }

    std::unique_ptr<CoreStream>
    makeStream(CoreId core, std::uint32_t numCores,
               std::uint64_t seed) const override;

    const Trace &trace() const { return trace_; }

  private:
    Trace trace_;
    std::string name_;
};

} // namespace refrint

#endif // REFRINT_TRACE_TRACE_HH
