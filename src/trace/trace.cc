#include "trace/trace.hh"

#include <cinttypes>
#include <cstdio>

#include "common/log.hh"

namespace refrint
{

std::uint64_t
Trace::totalRefs() const
{
    std::uint64_t n = 0;
    for (const auto &v : perCore)
        n += v.size();
    return n;
}

Trace
recordTrace(const Workload &app, std::uint32_t numCores,
            std::uint64_t refsPerCore, std::uint64_t seed)
{
    Trace t;
    t.codeLines = app.codeLines();
    t.perCore.resize(numCores);
    for (CoreId c = 0; c < numCores; ++c) {
        auto stream = app.makeStream(c, numCores, seed);
        t.perCore[c].reserve(refsPerCore);
        for (std::uint64_t i = 0; i < refsPerCore; ++i)
            t.perCore[c].push_back(stream->next());
    }
    return t;
}

bool
saveTrace(const Trace &t, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot open trace file '%s' for writing", path.c_str());
        return false;
    }
    std::fprintf(f, "refrint-trace v1 %u %u\n", t.numCores(),
                 t.codeLines);
    for (std::uint32_t c = 0; c < t.numCores(); ++c) {
        std::fprintf(f, "c %u\n", c);
        for (const MemRef &r : t.perCore[c]) {
            std::fprintf(f, "%c %" PRIx64 " %u\n", r.write ? 'w' : 'r',
                         r.addr, r.gap);
        }
    }
    const bool ok = std::fclose(f) == 0;
    if (!ok)
        warn("error closing trace file '%s'", path.c_str());
    return ok;
}

Trace
loadTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        fatal("cannot open trace file '%s'", path.c_str());

    unsigned cores = 0, codeLines = 128;
    const int got =
        std::fscanf(f, "refrint-trace v1 %u %u\n", &cores, &codeLines);
    if (got < 1 || cores == 0 || cores > 1024)
        fatal("'%s' is not a refrint-trace v1 file", path.c_str());

    Trace t;
    t.codeLines = got >= 2 ? codeLines : 128;
    t.perCore.resize(cores);
    std::uint32_t cur = 0;
    char kind = 0;
    while (std::fscanf(f, " %c", &kind) == 1) {
        if (kind == 'c') {
            if (std::fscanf(f, "%u", &cur) != 1 || cur >= cores)
                fatal("bad core marker in '%s'", path.c_str());
        } else if (kind == 'r' || kind == 'w') {
            MemRef r;
            std::uint64_t addr = 0;
            unsigned gap = 0;
            if (std::fscanf(f, "%" SCNx64 " %u", &addr, &gap) != 2)
                fatal("bad reference line in '%s'", path.c_str());
            r.addr = addr;
            r.gap = gap;
            r.write = kind == 'w';
            t.perCore[cur].push_back(r);
        } else {
            fatal("unknown record '%c' in '%s'", kind, path.c_str());
        }
    }
    std::fclose(f);
    return t;
}

namespace
{

class TraceStream : public CoreStream
{
  public:
    explicit TraceStream(const std::vector<MemRef> &refs) : refs_(refs) {}

    MemRef
    next() override
    {
        panicIf(refs_.empty(), "replaying an empty trace stream");
        const MemRef r = refs_[pos_];
        pos_ = (pos_ + 1) % refs_.size();
        return r;
    }

  private:
    const std::vector<MemRef> &refs_;
    std::size_t pos_ = 0;
};

} // namespace

TraceWorkload::TraceWorkload(Trace trace, std::string name)
    : trace_(std::move(trace)), name_(std::move(name))
{
    panicIf(trace_.numCores() == 0 || trace_.empty(),
            "trace workload needs at least one non-empty core stream");
}

std::unique_ptr<CoreStream>
TraceWorkload::makeStream(CoreId core, std::uint32_t numCores,
                          std::uint64_t seed) const
{
    (void)seed; // a trace replays verbatim; seeds don't apply
    if (numCores != trace_.numCores())
        fatal("trace '%s' records %u cores but the machine has %u; "
              "re-record the trace for this machine (trace-record "
              "--cores %u)",
              name_.c_str(), trace_.numCores(), numCores, numCores);
    panicIf(core >= trace_.numCores(), "core id beyond the trace");
    const auto &refs = trace_.perCore[core];
    panicIf(refs.empty(), "trace has an empty stream for this core");
    return std::make_unique<TraceStream>(refs);
}

} // namespace refrint
