#include "dram/dram.hh"

namespace refrint
{

Dram::Dram(Tick accessLatency, Tick minGap, StatGroup &stats)
    : accessLatency_(accessLatency), minGap_(minGap)
{
    reads_ = &stats.counter("reads");
    writes_ = &stats.counter("writes");
}

Tick
Dram::channelAdmit(Tick now)
{
    Tick start = now;
    if (minGap_ > 0) {
        if (channelFree_ > start)
            start = channelFree_;
        channelFree_ = start + minGap_;
    }
    return start;
}

Tick
Dram::read(Tick now)
{
    reads_->inc();
    return channelAdmit(now) + accessLatency_;
}

Tick
Dram::write(Tick now)
{
    writes_->inc();
    return channelAdmit(now);
}

void
Dram::accountUntimedWrite()
{
    writes_->inc();
}

} // namespace refrint
