/**
 * @file
 * Off-chip DRAM model.
 *
 * The paper models main memory as a fixed 40 ns access (Table 5.1) and
 * charges a per-access energy so that policies that shed dirty/clean
 * lines early pay for the extra off-chip traffic (§6).  We keep the same
 * abstraction: fixed latency, read/write counters, optional bandwidth
 * gating through a single channel queue.
 */

#ifndef REFRINT_DRAM_DRAM_HH
#define REFRINT_DRAM_DRAM_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace refrint
{

class Dram
{
  public:
    /**
     * @param accessLatency Cycles for one line access (paper: 40).
     * @param minGap        Minimum cycles between successive accesses on
     *                      the channel (0 disables bandwidth modelling).
     */
    Dram(Tick accessLatency, Tick minGap, StatGroup &stats);

    /**
     * Perform a read of one line at @p now.
     * @return the tick at which data is available.
     */
    Tick read(Tick now);

    /**
     * Perform a write of one line at @p now.
     * @return the tick at which the channel accepted the write.  Writes
     * are posted: the requester does not wait for the full latency.
     */
    Tick write(Tick now);

    /** Account a write that happens outside the timed window (the
     *  end-of-run dirty flush, §6: "at the end of the simulation all
     *  dirty data will be written back"). */
    void accountUntimedWrite();

    std::uint64_t reads() const { return reads_->value(); }
    std::uint64_t writes() const { return writes_->value(); }
    std::uint64_t accesses() const { return reads() + writes(); }

    Tick accessLatency() const { return accessLatency_; }

  private:
    /** Advance the channel and return the start tick of this access. */
    Tick channelAdmit(Tick now);

    Tick accessLatency_;
    Tick minGap_;
    Tick channelFree_ = 0;

    Counter *reads_;
    Counter *writes_;
};

} // namespace refrint

#endif // REFRINT_DRAM_DRAM_HH
