/**
 * @file
 * Parameterized synthetic reference-stream generator.
 *
 * Every paper application is an AppProfile instance over the same
 * mechanics:
 *
 *  - a per-core private region, accessed either in streaming runs
 *    (sequential line walks, the dominant mode of the Class 1 codes) or
 *    with a skewed hot/cold draw (temporal locality);
 *  - a shared region with two access styles:
 *      * migratory producer/consumer chunks that rotate among cores,
 *        producing the dirty->shared directory churn that gives the LLC
 *        "visibility" (§3.3);
 *      * read-mostly lookups with a skewed draw (Class 3 behaviour).
 *
 * Address map (line-aligned, disjoint):
 *   private:  0x1000'0000 + core * privateBytes (rounded up)
 *   shared:   0x8000'0000
 *   code:     0xC000'0000 (see Core::kCodeBase)
 */

#ifndef REFRINT_WORKLOAD_SYNTHETIC_HH
#define REFRINT_WORKLOAD_SYNTHETIC_HH

#include <cstdint>
#include <memory>

#include "common/prng.hh"
#include "workload/workload.hh"

namespace refrint
{

/** Tunables that define one application's behaviour. */
struct AppProfile
{
    const char *name = "app";
    int paperClass = 0;

    std::uint64_t privateBytes = 1 << 20; ///< per core
    std::uint64_t sharedBytes = 1 << 20;  ///< whole machine

    /**
     * Fraction of references hitting a tiny per-core hot set (stack,
     * loop-carried locals).  Real SPLASH-2/PARSEC codes see >90% L1
     * hit rates; without this component every reference would walk the
     * large data structures and the L1s would behave unrealistically.
     */
    double hotFraction = 0.60;
    std::uint64_t hotBytes = 4 * 1024; ///< per core, fits any DL1

    double sharedFraction = 0.1;  ///< P(ref targets the shared region)
    double writeFraction = 0.3;   ///< P(write) for non-migratory refs
    double seqFraction = 0.0;     ///< P(private ref streams sequentially)
    std::uint32_t seqRunLines = 64; ///< mean streaming run length
    double skew = 2.0;            ///< hot/cold skew for random draws
    double migratoryFraction = 0.0; ///< P(shared ref is producer/consumer)
    std::uint32_t chunkLines = 64;  ///< migratory chunk size
    std::uint32_t rotatePeriod = 2000; ///< refs between chunk rotations
    std::uint32_t gapMin = 2;     ///< min compute gap (cycles)
    std::uint32_t gapMax = 5;     ///< max compute gap
    std::uint32_t codeLines = 128;
};

class SyntheticStream : public CoreStream
{
  public:
    SyntheticStream(const AppProfile &prof, CoreId core,
                    std::uint32_t numCores, std::uint64_t seed);

    MemRef next() override;

    static constexpr Addr kPrivateBase = 0x1000'0000ULL;
    static constexpr Addr kSharedBase = 0x8000'0000ULL;

    /** Generator line granularity (matches the paper caches' 64 B
     *  lines; named so it cannot hide as a magic topology constant).
     *  The private-region address map supports up to 64 cores before
     *  kPrivateBase + core * span would reach kSharedBase. */
    static constexpr Addr kLineBytes = 64;

  private:
    Addr hotRef(bool &write);
    Addr privateRef(bool &write);
    Addr sharedRef(bool &write);

    AppProfile prof_;
    CoreId core_;
    std::uint32_t numCores_;
    Prng prng_;

    Addr privBase_;
    std::uint32_t privLines_;
    std::uint32_t sharedLines_;
    std::uint32_t hotLines_;

    // streaming state
    std::uint32_t seqCursor_ = 0;
    std::uint32_t seqLeft_ = 0;

    // migratory producer/consumer state
    std::uint32_t chunksTotal_;
    std::uint64_t refCount_ = 0;
};

/** A Workload wrapping an AppProfile. */
class SyntheticWorkload : public Workload
{
  public:
    explicit SyntheticWorkload(const AppProfile &prof) : prof_(prof) {}

    const char *name() const override { return prof_.name; }
    int paperClass() const override { return prof_.paperClass; }
    std::uint32_t codeLines() const override { return prof_.codeLines; }

    bool
    footprint(WorkloadFootprint &fp) const override
    {
        fp.privateBytes = static_cast<double>(prof_.privateBytes);
        fp.sharedBytes = static_cast<double>(prof_.sharedBytes);
        fp.hotFraction = prof_.hotFraction;
        fp.writeFraction = prof_.writeFraction;
        fp.sharedFraction = prof_.sharedFraction;
        return true;
    }

    std::unique_ptr<CoreStream>
    makeStream(CoreId core, std::uint32_t numCores,
               std::uint64_t seed) const override
    {
        return std::make_unique<SyntheticStream>(prof_, core, numCores,
                                                 seed);
    }

    const AppProfile &profile() const { return prof_; }

  private:
    AppProfile prof_;
};

} // namespace refrint

#endif // REFRINT_WORKLOAD_SYNTHETIC_HH
