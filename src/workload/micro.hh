/**
 * @file
 * Micro workloads with analytically known behaviour, used by the unit
 * and property tests (and by the refresh-count microbench): uniform
 * random over a region, pure streaming, ping-pong sharing between core
 * pairs, and a single-line hammer.
 */

#ifndef REFRINT_WORKLOAD_MICRO_HH
#define REFRINT_WORKLOAD_MICRO_HH

#include <cstdint>
#include <memory>

#include "workload/workload.hh"

namespace refrint
{

/** Uniform random refs across a per-core private region. */
class UniformWorkload : public Workload
{
  public:
    UniformWorkload(std::uint64_t bytesPerCore, double writeFraction,
                    std::uint32_t gap = 3);

    const char *name() const override { return "micro.uniform"; }
    int paperClass() const override { return 0; }
    std::unique_ptr<CoreStream> makeStream(
        CoreId core, std::uint32_t numCores,
        std::uint64_t seed) const override;

  private:
    std::uint64_t bytesPerCore_;
    double writeFraction_;
    std::uint32_t gap_;
};

/** Sequential streaming over a large per-core region (no reuse). */
class StreamWorkload : public Workload
{
  public:
    StreamWorkload(std::uint64_t bytesPerCore, double writeFraction,
                   std::uint32_t gap = 3);

    const char *name() const override { return "micro.stream"; }
    int paperClass() const override { return 0; }
    std::unique_ptr<CoreStream> makeStream(
        CoreId core, std::uint32_t numCores,
        std::uint64_t seed) const override;

  private:
    std::uint64_t bytesPerCore_;
    double writeFraction_;
    std::uint32_t gap_;
};

/** Cores alternate writing/reading a small shared block (heavy
 *  coherence churn: every access migrates ownership).
 *
 *  Determinism contract: the stream is fully analytic — a function of
 *  (core, lines, gap) only.  `seed` and `numCores` are deliberately
 *  ignored, so two runs differing only in seed are bit-identical.
 *  tests/test_workloads.cc asserts this invariance. */
class PingPongWorkload : public Workload
{
  public:
    explicit PingPongWorkload(std::uint32_t lines, std::uint32_t gap = 3);

    const char *name() const override { return "micro.pingpong"; }
    int paperClass() const override { return 0; }
    std::unique_ptr<CoreStream> makeStream(
        CoreId core, std::uint32_t numCores,
        std::uint64_t seed) const override;

  private:
    std::uint32_t lines_;
    std::uint32_t gap_;
};

/** Repeatedly touch one line (auto-refresh should suppress nearly all
 *  explicit refreshes under Refrint).
 *
 *  Determinism contract: analytic like PingPongWorkload — the stream
 *  depends on (core, gap) only; `seed`/`numCores` are ignored by
 *  design and a test asserts the invariance. */
class HammerWorkload : public Workload
{
  public:
    explicit HammerWorkload(std::uint32_t gap = 3);

    const char *name() const override { return "micro.hammer"; }
    int paperClass() const override { return 0; }
    std::unique_ptr<CoreStream> makeStream(
        CoreId core, std::uint32_t numCores,
        std::uint64_t seed) const override;

  private:
    std::uint32_t gap_;
};

} // namespace refrint

#endif // REFRINT_WORKLOAD_MICRO_HH
