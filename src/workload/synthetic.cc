#include "workload/synthetic.hh"

#include "common/log.hh"

namespace refrint
{

namespace
{

/** Round @p v up to a multiple of @p align. */
std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) / align * align;
}

} // namespace

SyntheticStream::SyntheticStream(const AppProfile &prof, CoreId core,
                                 std::uint32_t numCores,
                                 std::uint64_t seed)
    : prof_(prof),
      core_(core),
      numCores_(numCores),
      prng_(seed * 0x2545F4914F6CDD1DULL + 0x1234, core * 2 + 1)
{
    panicIf(numCores == 0, "workload needs at least one core");
    constexpr Addr kLine = kLineBytes;
    const std::uint64_t privSpan = roundUp(
        std::max<std::uint64_t>(prof_.privateBytes, kLine), 1 << 20);
    privBase_ = kPrivateBase + core_ * privSpan;
    panicIf(privBase_ + privSpan > kSharedBase,
            "private regions would overlap the shared region; fewer "
            "cores or a smaller privateBytes needed");
    privLines_ = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(prof_.privateBytes, kLine) / kLine);
    sharedLines_ = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(prof_.sharedBytes, kLine) / kLine);
    hotLines_ = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(
            std::min(prof_.hotBytes, prof_.privateBytes), kLine) /
        kLine);
    chunksTotal_ = numCores_;
    seqCursor_ = prng_.below(privLines_);
}

Addr
SyntheticStream::hotRef(bool &write)
{
    // The hot set is the low slice of the private region: stack frames
    // and loop-carried locals that stay resident in the DL1.
    write = prng_.chance(prof_.writeFraction);
    const std::uint32_t lineIdx = prng_.skewed(hotLines_, 2.0);
    return privBase_ + static_cast<Addr>(lineIdx) * kLineBytes;
}

Addr
SyntheticStream::privateRef(bool &write)
{
    write = prng_.chance(prof_.writeFraction);
    std::uint32_t lineIdx;
    if (seqLeft_ > 0 || prng_.chance(prof_.seqFraction)) {
        if (seqLeft_ == 0) {
            // Start a new streaming run at a random position.
            seqCursor_ = prng_.below(privLines_);
            seqLeft_ = 1 + prng_.below(std::max(1u, prof_.seqRunLines));
        }
        lineIdx = seqCursor_;
        seqCursor_ = (seqCursor_ + 1) % privLines_;
        --seqLeft_;
    } else {
        lineIdx = prng_.skewed(privLines_, prof_.skew);
    }
    return privBase_ + static_cast<Addr>(lineIdx) * kLineBytes;
}

Addr
SyntheticStream::sharedRef(bool &write)
{
    if (prng_.chance(prof_.migratoryFraction)) {
        // Producer/consumer chunks rotating across cores: this core
        // writes its "own" chunk and reads its neighbour's.  The epoch
        // advances with local progress, so chunk ownership migrates and
        // the directory sees dirty->shared transitions at the L3.
        const std::uint32_t epoch = static_cast<std::uint32_t>(
            refCount_ / std::max(1u, prof_.rotatePeriod));
        const std::uint32_t chunkLines = std::max(1u, prof_.chunkLines);
        const std::uint32_t usable =
            std::max(1u, sharedLines_ / chunkLines);
        write = prng_.chance(0.5);
        const std::uint32_t owner =
            write ? core_ : (core_ + numCores_ - 1) % numCores_;
        const std::uint32_t chunk = (owner + epoch) % usable;
        const std::uint32_t lineIdx =
            chunk * chunkLines + prng_.below(chunkLines);
        return kSharedBase + static_cast<Addr>(lineIdx) * kLineBytes;
    }
    // Read-mostly lookups over the shared structure.
    write = prng_.chance(prof_.writeFraction * 0.25);
    const std::uint32_t lineIdx = prng_.skewed(sharedLines_, prof_.skew);
    return kSharedBase + static_cast<Addr>(lineIdx) * kLineBytes;
}

MemRef
SyntheticStream::next()
{
    MemRef ref;
    ++refCount_;
    ref.gap = prof_.gapMin +
              prng_.below(prof_.gapMax - prof_.gapMin + 1);
    if (prng_.chance(prof_.hotFraction))
        ref.addr = hotRef(ref.write);
    else if (prng_.chance(prof_.sharedFraction))
        ref.addr = sharedRef(ref.write);
    else
        ref.addr = privateRef(ref.write);
    return ref;
}

} // namespace refrint
