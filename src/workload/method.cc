#include "workload/method.hh"

#include <cstdio>

#include "common/env.hh"
#include "common/log.hh"

namespace refrint
{

namespace
{

/** Shortest %g form that strtod round-trips to the exact value, so a
 *  canonical spec is stable under re-parsing (0.8 stays "0.8", never
 *  "0.80000000000000004"). */
std::string
canonicalF64(double v)
{
    char buf[40];
    for (int prec = 15; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

/** Decimal u64 with an optional k/m/g (x1024) suffix: "64k" = 65536. */
bool
parseU64Suffixed(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    std::uint64_t mult = 1;
    std::string digits = s;
    const char last = s.back();
    if (last == 'k' || last == 'K')
        mult = 1024ULL;
    else if (last == 'm' || last == 'M')
        mult = 1024ULL * 1024;
    else if (last == 'g' || last == 'G')
        mult = 1024ULL * 1024 * 1024;
    if (mult != 1)
        digits = s.substr(0, s.size() - 1);
    std::uint64_t v = 0;
    if (!parseU64Strict(digits.c_str(), v))
        return false;
    if (mult != 1 && v > ~0ULL / mult)
        return false;
    out = v * mult;
    return true;
}

bool
enumHasChoice(const char *choices, const std::string &value)
{
    std::string tok;
    for (const char *p = choices;; ++p) {
        if (*p == '|' || *p == '\0') {
            if (tok == value)
                return true;
            tok.clear();
            if (*p == '\0')
                return false;
        } else {
            tok += *p;
        }
    }
}

/** Parse + range-check one raw value; canonical form into @p canon. */
bool
canonicalizeValue(const ParamSpec &p, const std::string &raw,
                  std::string &canon, std::string &err)
{
    switch (p.kind) {
    case ParamSpec::Kind::F64: {
        double v = 0;
        if (!parseF64Strict(raw.c_str(), v)) {
            err = std::string("parameter '") + p.name +
                  "' wants a finite number, got '" + raw + "'";
            return false;
        }
        if (p.min < p.max && (v < p.min || v > p.max)) {
            err = std::string("parameter '") + p.name + "'=" + raw +
                  " out of range [" + canonicalF64(p.min) + ", " +
                  canonicalF64(p.max) + "]";
            return false;
        }
        canon = canonicalF64(v);
        return true;
    }
    case ParamSpec::Kind::U64: {
        std::uint64_t v = 0;
        if (!parseU64Suffixed(raw, v)) {
            err = std::string("parameter '") + p.name +
                  "' wants a decimal integer (k/m/g suffixes ok), "
                  "got '" + raw + "'";
            return false;
        }
        const double dv = static_cast<double>(v);
        if (p.min < p.max && (dv < p.min || dv > p.max)) {
            err = std::string("parameter '") + p.name + "'=" + raw +
                  " out of range [" + canonicalF64(p.min) + ", " +
                  canonicalF64(p.max) + "]";
            return false;
        }
        canon = std::to_string(v);
        return true;
    }
    case ParamSpec::Kind::Enum:
        if (!enumHasChoice(p.choices, raw)) {
            err = std::string("parameter '") + p.name + "'='" + raw +
                  "' is not one of " + p.choices;
            return false;
        }
        canon = raw;
        return true;
    }
    return false; // unreachable
}

/** Registry-created instance: its name()/spec() are the canonical
 *  spec string, everything else delegates to the concrete workload. */
class SpecWorkload : public Workload
{
  public:
    SpecWorkload(std::unique_ptr<Workload> inner, std::string spec)
        : inner_(std::move(inner)), spec_(std::move(spec))
    {
    }

    const char *name() const override { return spec_.c_str(); }
    int paperClass() const override { return inner_->paperClass(); }
    std::uint32_t codeLines() const override
    {
        return inner_->codeLines();
    }
    std::string spec() const override { return spec_; }

    std::unique_ptr<CoreStream>
    makeStream(CoreId core, std::uint32_t numCores,
               std::uint64_t seed) const override
    {
        return inner_->makeStream(core, numCores, seed);
    }

  private:
    std::unique_ptr<Workload> inner_;
    std::string spec_;
};

} // namespace

double
ParamValues::f64(const std::string &name) const
{
    double v = 0;
    if (!parseF64Strict(str(name).c_str(), v))
        panic("param '%s' is not canonical f64", name.c_str());
    return v;
}

std::uint64_t
ParamValues::u64(const std::string &name) const
{
    std::uint64_t v = 0;
    if (!parseU64Strict(str(name).c_str(), v))
        panic("param '%s' is not canonical u64", name.c_str());
    return v;
}

const std::string &
ParamValues::str(const std::string &name) const
{
    const auto it = values.find(name);
    if (it == values.end())
        panic("param '%s' missing from schema values", name.c_str());
    return it->second;
}

void
WorkloadRegistry::registerNamed(const Workload *w)
{
    const std::string name = w->name();
    if (named_.count(name) != 0 || methodFor(name) != nullptr)
        fatal("workload registry: duplicate registration of '%s'",
              name.c_str());
    named_[name] = w;
}

void
WorkloadRegistry::registerMethod(std::unique_ptr<WorkloadMethod> m)
{
    const std::string name = m->methodName();
    if (named_.count(name) != 0 || methodFor(name) != nullptr)
        fatal("workload registry: duplicate registration of '%s'",
              name.c_str());
    methods_.emplace_back(name, std::move(m));
}

const WorkloadMethod *
WorkloadRegistry::methodFor(const std::string &name) const
{
    for (const auto &[n, m] : methods_) {
        if (n == name)
            return m.get();
    }
    return nullptr;
}

bool
WorkloadRegistry::resolve(const std::string &spec, ResolvedWorkload &out,
                          std::string &err) const
{
    const auto colon = spec.find(':');
    const std::string head = spec.substr(0, colon);

    if (colon == std::string::npos) {
        const auto it = named_.find(head);
        if (it != named_.end()) {
            out.workload = it->second;
            out.spec = head;
            out.keyApp = head;
            out.keyParams.clear();
            return true;
        }
    } else if (named_.count(head) != 0) {
        err = "workload '" + head + "' takes no parameters";
        return false;
    }

    const WorkloadMethod *m = methodFor(head);
    if (m == nullptr) {
        err = "unknown workload '" + head + "'";
        return false;
    }

    // Parse key=value pairs against the schema; omitted keys default.
    const std::vector<ParamSpec> &schema = m->params();
    std::map<std::string, std::string> given;
    if (colon != std::string::npos) {
        std::string rest = spec.substr(colon + 1);
        std::size_t pos = 0;
        while (pos <= rest.size()) {
            auto comma = rest.find(',', pos);
            if (comma == std::string::npos)
                comma = rest.size();
            const std::string pair = rest.substr(pos, comma - pos);
            pos = comma + 1;
            const auto eq = pair.find('=');
            if (pair.empty() || eq == std::string::npos || eq == 0) {
                err = head + ": malformed parameter '" + pair +
                      "' (want key=value)";
                return false;
            }
            const std::string key = pair.substr(0, eq);
            bool known = false;
            for (const ParamSpec &p : schema)
                known = known || key == p.name;
            if (!known) {
                err = head + ": unknown parameter '" + key + "'";
                return false;
            }
            if (!given.emplace(key, pair.substr(eq + 1)).second) {
                err = head + ": duplicate parameter '" + key + "'";
                return false;
            }
        }
    }

    // Canonicalize every schema parameter (given value or default),
    // in schema order; the canonical spec lists them all.
    ParamValues vals;
    std::string canonParams;
    for (const ParamSpec &p : schema) {
        const auto it = given.find(p.name);
        const std::string &raw =
            it != given.end() ? it->second : std::string(p.dflt);
        std::string canon;
        std::string verr;
        if (!canonicalizeValue(p, raw, canon, verr)) {
            err = head + ": " + verr;
            return false;
        }
        vals.values[p.name] = canon;
        if (!canonParams.empty())
            canonParams += ",";
        canonParams += std::string(p.name) + "=" + canon;
    }
    const std::string canonSpec =
        canonParams.empty() ? head : head + ":" + canonParams;

    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = instances_.find(canonSpec);
        if (it == instances_.end()) {
            it = instances_
                     .emplace(canonSpec, std::make_unique<SpecWorkload>(
                                             m->instantiate(vals),
                                             canonSpec))
                     .first;
        }
        out.workload = it->second.get();
    }
    out.spec = canonSpec;
    out.keyApp = head;
    out.keyParams = canonParams;
    return true;
}

const Workload *
WorkloadRegistry::find(const std::string &spec) const
{
    ResolvedWorkload rw;
    std::string err;
    return resolve(spec, rw, err) ? rw.workload : nullptr;
}

std::vector<std::string>
WorkloadRegistry::methodNames() const
{
    std::vector<std::string> names;
    names.reserve(methods_.size());
    for (const auto &[n, m] : methods_)
        names.push_back(n);
    return names;
}

std::string
WorkloadRegistry::describe(bool withDocs) const
{
    std::string out = "workload spec: NAME or METHOD:key=value,...\n";
    out += "  named workloads:";
    for (const auto &[n, w] : named_)
        out += " " + n;
    out += "\n  methods (defaults shown):\n";
    for (const auto &[n, m] : methods_) {
        out += "    " + n;
        const std::vector<ParamSpec> &schema = m->params();
        std::string sep = ":";
        for (const ParamSpec &p : schema) {
            out += sep + p.name + "=" + p.dflt;
            sep = ",";
        }
        if (withDocs) {
            out += std::string("\n        ") + m->summary() + "\n";
            for (const ParamSpec &p : schema) {
                out += std::string("        ") + p.name + ": " + p.doc;
                if (p.kind == ParamSpec::Kind::Enum)
                    out += std::string(" (") + p.choices + ")";
                else if (p.min < p.max)
                    out += " [" + canonicalF64(p.min) + ", " +
                           canonicalF64(p.max) + "]";
                out += "\n";
            }
        } else {
            out += "\n";
        }
    }
    return out;
}

WorkloadRegistry &
workloadRegistry()
{
    static WorkloadRegistry *reg = [] {
        auto *r = new WorkloadRegistry();
        for (const Workload *w : paperWorkloads())
            r->registerNamed(w);
        registerMicroMethods(*r);
        registerAggMethod(*r);
        registerServeMethod(*r);
        return r;
    }();
    return *reg;
}

const Workload *
findWorkload(const std::string &spec)
{
    return workloadRegistry().find(spec);
}

} // namespace refrint
