#include "workload/agg.hh"

#include "common/prng.hh"
#include "workload/method.hh"
#include "workload/synthetic.hh"

namespace refrint
{

namespace
{

/** Alternates input-scan reads with skewed group-counter updates. */
class AggStream : public CoreStream
{
  public:
    AggStream(Addr inBase, std::uint32_t inLines, Addr tableBase,
              std::uint32_t groups, double zipfS, std::uint32_t gap,
              std::uint64_t seed, CoreId core)
        : inBase_(inBase), inLines_(inLines), tableBase_(tableBase),
          groups_(groups), zipfS_(zipfS), gap_(gap),
          prng_(seed, core * 2 + 1)
    {
    }

    MemRef
    next() override
    {
        MemRef r;
        if (!updatePhase_) {
            // Scan the next input line of the key-value stream.
            r.addr = inBase_ + static_cast<Addr>(cursor_) * 64;
            cursor_ = (cursor_ + 1) % inLines_;
            r.write = false;
        } else {
            // Read-modify-write the record's group counter.
            r.addr = tableBase_ +
                     static_cast<Addr>(prng_.skewed(groups_, zipfS_)) *
                         64;
            r.write = true;
        }
        updatePhase_ = !updatePhase_;
        r.gap = gap_;
        return r;
    }

  private:
    Addr inBase_;
    std::uint32_t inLines_;
    Addr tableBase_;
    std::uint32_t groups_;
    double zipfS_;
    std::uint32_t gap_;
    bool updatePhase_ = false;
    std::uint32_t cursor_ = 0;
    Prng prng_;
};

class AggMethod : public WorkloadMethod
{
  public:
    const char *methodName() const override { return "agg"; }
    const char *summary() const override
    {
        return "group-by aggregation; shared vs partitioned tables, "
               "Zipf-skewed keys";
    }

    const std::vector<ParamSpec> &params() const override
    {
        static const std::vector<ParamSpec> kParams = {
            {"tables", ParamSpec::Kind::Enum, "shared",
             "table layout", "shared|part"},
            {"groups", ParamSpec::Kind::U64, "4096",
             "hash-table size in 64B group counters", nullptr, 1,
             262144},
            {"in", ParamSpec::Kind::U64, "1048576",
             "per-core input stream bytes", nullptr, 64,
             64.0 * (1 << 20)},
            {"skew", ParamSpec::Kind::F64, "0.8",
             "Zipf-like key skew theta, 0 = uniform", nullptr, 0,
             0.99},
            {"gap", ParamSpec::Kind::U64, "3",
             "non-memory instructions between refs", nullptr, 0, 1024},
        };
        return kParams;
    }

    std::unique_ptr<Workload>
    instantiate(const ParamValues &v) const override
    {
        return std::make_unique<AggWorkload>(
            v.str("tables") == "shared",
            static_cast<std::uint32_t>(v.u64("groups")), v.u64("in"),
            v.f64("skew"), static_cast<std::uint32_t>(v.u64("gap")));
    }
};

} // namespace

AggWorkload::AggWorkload(bool sharedTables, std::uint32_t groups,
                         std::uint64_t inputBytes, double theta,
                         std::uint32_t gap)
    : sharedTables_(sharedTables), groups_(groups),
      inputBytes_(inputBytes), theta_(theta), gap_(gap)
{
}

std::unique_ptr<CoreStream>
AggWorkload::makeStream(CoreId core, std::uint32_t numCores,
                        std::uint64_t seed) const
{
    (void)numCores;
    const Addr inBase = SyntheticStream::kPrivateBase +
                        static_cast<Addr>(core) * (64ULL << 20);
    // One table for everyone, or per-core slices of the shared region
    // (64 cores x 262144 max groups x 64 B fills it exactly).
    const Addr tableBase =
        SyntheticStream::kSharedBase +
        (sharedTables_ ? 0
                       : static_cast<Addr>(core) * groups_ * 64);
    // Map the Zipf theta to Prng::skewed()'s exponent: rank =
    // floor(n * u^s) approximates a Zipf(theta) rank-frequency curve
    // for s = 1 / (1 - theta); theta = 0 degenerates to uniform.
    const double zipfS = 1.0 / (1.0 - theta_);
    return std::make_unique<AggStream>(
        inBase, static_cast<std::uint32_t>(inputBytes_ / 64), tableBase,
        groups_, zipfS, gap_, seed, core);
}

void
registerAggMethod(WorkloadRegistry &reg)
{
    reg.registerMethod(std::make_unique<AggMethod>());
}

} // namespace refrint
