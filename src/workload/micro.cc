#include "workload/micro.hh"

#include "common/prng.hh"
#include "workload/method.hh"
#include "workload/synthetic.hh"

namespace refrint
{

namespace
{

class UniformStream : public CoreStream
{
  public:
    UniformStream(Addr base, std::uint32_t lines, double wf,
                  std::uint32_t gap, std::uint64_t seed, CoreId core)
        : base_(base), lines_(lines), wf_(wf), gap_(gap),
          prng_(seed, core * 2 + 1)
    {
    }

    MemRef
    next() override
    {
        MemRef r;
        r.addr = base_ + static_cast<Addr>(prng_.below(lines_)) * 64;
        r.write = prng_.chance(wf_);
        r.gap = gap_;
        return r;
    }

  private:
    Addr base_;
    std::uint32_t lines_;
    double wf_;
    std::uint32_t gap_;
    Prng prng_;
};

class StreamStream : public CoreStream
{
  public:
    StreamStream(Addr base, std::uint32_t lines, double wf,
                 std::uint32_t gap, std::uint64_t seed, CoreId core)
        : base_(base), lines_(lines), wf_(wf), gap_(gap),
          prng_(seed, core * 2 + 1)
    {
    }

    MemRef
    next() override
    {
        MemRef r;
        r.addr = base_ + static_cast<Addr>(cursor_) * 64;
        cursor_ = (cursor_ + 1) % lines_;
        r.write = prng_.chance(wf_);
        r.gap = gap_;
        return r;
    }

  private:
    Addr base_;
    std::uint32_t lines_;
    std::uint32_t cursor_ = 0;
    double wf_;
    std::uint32_t gap_;
    Prng prng_;
};

class PingPongStream : public CoreStream
{
  public:
    PingPongStream(std::uint32_t lines, std::uint32_t gap, CoreId core)
        : lines_(lines), gap_(gap), core_(core)
    {
    }

    MemRef
    next() override
    {
        MemRef r;
        r.addr = SyntheticStream::kSharedBase +
                 static_cast<Addr>(cursor_ % lines_) * 64;
        ++cursor_;
        // Even cores write, odd cores read: constant ownership churn.
        r.write = (core_ + cursor_) % 2 == 0;
        r.gap = gap_;
        return r;
    }

  private:
    std::uint32_t lines_;
    std::uint32_t cursor_ = 0;
    std::uint32_t gap_;
    CoreId core_;
};

class HammerStream : public CoreStream
{
  public:
    HammerStream(CoreId core, std::uint32_t gap) : core_(core), gap_(gap)
    {
    }

    MemRef
    next() override
    {
        MemRef r;
        r.addr = SyntheticStream::kPrivateBase +
                 static_cast<Addr>(core_) * (1 << 20);
        r.write = false;
        r.gap = gap_;
        return r;
    }

  private:
    CoreId core_;
    std::uint32_t gap_;
};

} // namespace

UniformWorkload::UniformWorkload(std::uint64_t bytesPerCore,
                                 double writeFraction, std::uint32_t gap)
    : bytesPerCore_(bytesPerCore), writeFraction_(writeFraction),
      gap_(gap)
{
}

std::unique_ptr<CoreStream>
UniformWorkload::makeStream(CoreId core, std::uint32_t numCores,
                            std::uint64_t seed) const
{
    (void)numCores;
    const Addr base = SyntheticStream::kPrivateBase +
                      static_cast<Addr>(core) * (64ULL << 20);
    return std::make_unique<UniformStream>(
        base, static_cast<std::uint32_t>(bytesPerCore_ / 64),
        writeFraction_, gap_, seed, core);
}

StreamWorkload::StreamWorkload(std::uint64_t bytesPerCore,
                               double writeFraction, std::uint32_t gap)
    : bytesPerCore_(bytesPerCore), writeFraction_(writeFraction),
      gap_(gap)
{
}

std::unique_ptr<CoreStream>
StreamWorkload::makeStream(CoreId core, std::uint32_t numCores,
                           std::uint64_t seed) const
{
    (void)numCores;
    const Addr base = SyntheticStream::kPrivateBase +
                      static_cast<Addr>(core) * (64ULL << 20);
    return std::make_unique<StreamStream>(
        base, static_cast<std::uint32_t>(bytesPerCore_ / 64),
        writeFraction_, gap_, seed, core);
}

PingPongWorkload::PingPongWorkload(std::uint32_t lines, std::uint32_t gap)
    : lines_(lines), gap_(gap)
{
}

std::unique_ptr<CoreStream>
PingPongWorkload::makeStream(CoreId core, std::uint32_t numCores,
                             std::uint64_t seed) const
{
    (void)numCores;
    (void)seed;
    return std::make_unique<PingPongStream>(lines_, gap_, core);
}

HammerWorkload::HammerWorkload(std::uint32_t gap) : gap_(gap) {}

std::unique_ptr<CoreStream>
HammerWorkload::makeStream(CoreId core, std::uint32_t numCores,
                           std::uint64_t seed) const
{
    (void)numCores;
    (void)seed;
    return std::make_unique<HammerStream>(core, gap_);
}

namespace
{

/** Registry adapter for the random per-core micros (uniform/stream):
 *  bytes = per-core footprint, wf = write fraction, gap = inter-ref
 *  instruction gap. */
template <typename W>
class RandomMicroMethod : public WorkloadMethod
{
  public:
    explicit RandomMicroMethod(const char *name) : name_(name) {}

    const char *methodName() const override { return name_; }
    const char *summary() const override
    {
        return "per-core micro; bytes footprint, wf write fraction";
    }

    const std::vector<ParamSpec> &params() const override
    {
        static const std::vector<ParamSpec> kParams = {
            {"bytes", ParamSpec::Kind::U64, "65536",
             "per-core data footprint in bytes", nullptr, 64,
             64.0 * (1 << 20)},
            {"wf", ParamSpec::Kind::F64, "0.5", "write fraction",
             nullptr, 0, 1},
            {"gap", ParamSpec::Kind::U64, "3",
             "non-memory instructions between refs", nullptr, 0, 1024},
        };
        return kParams;
    }

    std::unique_ptr<Workload>
    instantiate(const ParamValues &v) const override
    {
        return std::make_unique<W>(
            v.u64("bytes"), v.f64("wf"),
            static_cast<std::uint32_t>(v.u64("gap")));
    }

  private:
    const char *name_;
};

class PingPongMethod : public WorkloadMethod
{
  public:
    const char *methodName() const override { return "micro.pingpong"; }
    const char *summary() const override
    {
        return "cores ping-pong a small shared block (analytic)";
    }

    const std::vector<ParamSpec> &params() const override
    {
        static const std::vector<ParamSpec> kParams = {
            {"lines", ParamSpec::Kind::U64, "4",
             "shared block size in 64B lines", nullptr, 1, 65536},
            {"gap", ParamSpec::Kind::U64, "3",
             "non-memory instructions between refs", nullptr, 0, 1024},
        };
        return kParams;
    }

    std::unique_ptr<Workload>
    instantiate(const ParamValues &v) const override
    {
        return std::make_unique<PingPongWorkload>(
            static_cast<std::uint32_t>(v.u64("lines")),
            static_cast<std::uint32_t>(v.u64("gap")));
    }
};

class HammerMethod : public WorkloadMethod
{
  public:
    const char *methodName() const override { return "micro.hammer"; }
    const char *summary() const override
    {
        return "every core hammers one private line (analytic)";
    }

    const std::vector<ParamSpec> &params() const override
    {
        static const std::vector<ParamSpec> kParams = {
            {"gap", ParamSpec::Kind::U64, "3",
             "non-memory instructions between refs", nullptr, 0, 1024},
        };
        return kParams;
    }

    std::unique_ptr<Workload>
    instantiate(const ParamValues &v) const override
    {
        return std::make_unique<HammerWorkload>(
            static_cast<std::uint32_t>(v.u64("gap")));
    }
};

} // namespace

void
registerMicroMethods(WorkloadRegistry &reg)
{
    reg.registerMethod(
        std::make_unique<RandomMicroMethod<UniformWorkload>>(
            "micro.uniform"));
    reg.registerMethod(
        std::make_unique<RandomMicroMethod<StreamWorkload>>(
            "micro.stream"));
    reg.registerMethod(std::make_unique<PingPongMethod>());
    reg.registerMethod(std::make_unique<HammerMethod>());
}

} // namespace refrint
