/**
 * @file
 * Hash-aggregation workload family ("agg"): every core runs a group-by
 * over a streaming key-value input, updating a hash table that is
 * either one table shared by all cores or partitioned per core.  Keys
 * are Zipf-skewed, so the shared table concentrates cross-core write
 * traffic on the hot groups — exactly the sharing-induced write-back
 * axis the refresh policies key on (§3.3); the partitioned layout
 * removes the sharing while keeping the same footprint per core.
 *
 * Instantiate through the workload registry as e.g.
 *     agg:tables=shared,skew=0.8
 *     agg:tables=part,groups=1024,in=65536
 */

#ifndef REFRINT_WORKLOAD_AGG_HH
#define REFRINT_WORKLOAD_AGG_HH

#include <cstdint>
#include <memory>

#include "workload/workload.hh"

namespace refrint
{

/** Group-by aggregation over a key-value stream. */
class AggWorkload : public Workload
{
  public:
    /**
     * @param sharedTables one table for all cores (true) or per-core
     *                     partitions (false)
     * @param groups       hash-table size in 64 B group counters
     * @param inputBytes   per-core input stream footprint
     * @param theta        Zipf-like key skew in [0, 1): 0 = uniform
     * @param gap          non-memory instructions between refs
     */
    AggWorkload(bool sharedTables, std::uint32_t groups,
                std::uint64_t inputBytes, double theta,
                std::uint32_t gap);

    const char *name() const override { return "agg"; }
    int paperClass() const override { return 0; }
    std::unique_ptr<CoreStream> makeStream(
        CoreId core, std::uint32_t numCores,
        std::uint64_t seed) const override;

  private:
    bool sharedTables_;
    std::uint32_t groups_;
    std::uint64_t inputBytes_;
    double theta_;
    std::uint32_t gap_;
};

} // namespace refrint

#endif // REFRINT_WORKLOAD_AGG_HH
