/**
 * @file
 * WorkloadMethod registry: every reference-stream generator — the
 * paper's eleven applications, the analytic micros, and the
 * server-class families — registers behind one interface, and a
 * workload is identified by a spec string:
 *
 *     name                          a legacy-named workload ("fft")
 *     method:key=value,key=value    a parameterized method instance,
 *                                   e.g. "agg:tables=part,skew=0.8"
 *
 * Parameters may appear in any order, each at most once; omitted keys
 * take their schema defaults.  Resolution canonicalizes the spec
 * (schema order, every parameter explicit, shortest-exact numeric
 * formatting), so two specs describe the same workload exactly when
 * their canonical forms are byte-identical — that canonical form is
 * what ScenarioKey carries.
 *
 * Key-compat contract: legacy-named workloads key by their bare name
 * (byte-identical to the pre-registry cache keys); a parameterized
 * method instance always keys its full canonical parameter list in
 * the "|wl=" key segment, even when every value is a default, so a
 * method row can never alias a legacy-named row.
 */

#ifndef REFRINT_WORKLOAD_METHOD_HH
#define REFRINT_WORKLOAD_METHOD_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace refrint
{

/** One parameter of a method's spec-string schema. */
struct ParamSpec
{
    enum class Kind
    {
        F64,  ///< finite double; canonical shortest-exact form
        U64,  ///< decimal integer; accepts k/m/g (x1024) suffixes
        Enum, ///< one of the |-separated choices
    };

    const char *name;
    Kind kind;
    const char *dflt; ///< canonical default value string
    const char *doc;  ///< one-line meaning (help text)

    /** For Enum: the "|"-separated choice list, e.g. "shared|part". */
    const char *choices = nullptr;

    /** Inclusive numeric range, enforced when min < max. */
    double min = 0;
    double max = 0;
};

/** Parsed, canonicalized parameter values for one instantiation. */
class ParamValues
{
  public:
    double f64(const std::string &name) const;
    std::uint64_t u64(const std::string &name) const;
    const std::string &str(const std::string &name) const;

    /** name -> canonical value string, set for every schema param. */
    std::map<std::string, std::string> values;
};

/** A named, parameterized workload factory. */
class WorkloadMethod
{
  public:
    virtual ~WorkloadMethod() = default;

    virtual const char *methodName() const = 0;
    virtual const char *summary() const = 0;
    virtual const std::vector<ParamSpec> &params() const = 0;

    /** Build a workload from schema-validated values.  The registry
     *  wraps the result so its name()/spec() are the canonical spec. */
    virtual std::unique_ptr<Workload>
    instantiate(const ParamValues &v) const = 0;
};

/** A spec resolved to a workload plus its key decomposition. */
struct ResolvedWorkload
{
    const Workload *workload = nullptr;
    std::string spec;      ///< canonical spec string
    std::string keyApp;    ///< key "app" segment (method/legacy name)
    std::string keyParams; ///< "|wl=" segment payload ("" = legacy)
};

/**
 * The registry of workload generators.  Instances created for
 * parameterized specs are cached per canonical spec and live for the
 * registry's lifetime, so resolved Workload pointers stay stable (the
 * experiment API passes them across sweep worker threads).
 * Thread-safe.
 */
class WorkloadRegistry
{
  public:
    WorkloadRegistry() = default;

    WorkloadRegistry(const WorkloadRegistry &) = delete;
    WorkloadRegistry &operator=(const WorkloadRegistry &) = delete;

    /** Register a legacy-named workload (bare-name spec, legacy cache
     *  keys).  Fatal if the name is already taken. */
    void registerNamed(const Workload *w);

    /** Register a parameterized method.  Fatal on a duplicate name. */
    void registerMethod(std::unique_ptr<WorkloadMethod> m);

    /**
     * Resolve @p spec to a workload.
     * @return true and fill @p out; false with a diagnostic in @p err
     *         (unknown name, unknown/duplicate/malformed parameter,
     *         value out of range).
     */
    bool resolve(const std::string &spec, ResolvedWorkload &out,
                 std::string &err) const;

    /** resolve() collapsed to a pointer: null on any error. */
    const Workload *find(const std::string &spec) const;

    /** Registered method names, in registration order. */
    std::vector<std::string> methodNames() const;

    /** Compact help text: legacy names, then one line per method in
     *  canonical spec form with defaults (embedded in unknown-workload
     *  fatals, expanded by `refrint_cli list`). */
    std::string describe(bool withDocs = false) const;

  private:
    const WorkloadMethod *methodFor(const std::string &name) const;

    std::map<std::string, const Workload *> named_;
    std::vector<std::pair<std::string, std::unique_ptr<WorkloadMethod>>>
        methods_;

    /** canonical spec -> owned instance (resolve() is called from
     *  sweep worker threads). */
    mutable std::mutex mu_;
    mutable std::map<std::string, std::unique_ptr<Workload>> instances_;
};

/** The process-wide registry, with every built-in generator
 *  registered: paper apps, micros, and the server-class families. */
WorkloadRegistry &workloadRegistry();

// Registration hooks called once by workloadRegistry()'s initializer
// (explicit calls, not self-registering statics, so a static-library
// link can never silently drop a generator's translation unit).
void registerMicroMethods(WorkloadRegistry &reg);
void registerAggMethod(WorkloadRegistry &reg);
void registerServeMethod(WorkloadRegistry &reg);

} // namespace refrint

#endif // REFRINT_WORKLOAD_METHOD_HH
