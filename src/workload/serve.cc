#include "workload/serve.hh"

#include <cmath>
#include <vector>

#include "common/prng.hh"
#include "workload/method.hh"
#include "workload/synthetic.hh"

namespace refrint
{

namespace
{

/**
 * Walks one request's working set per arrival.  The last reference of
 * a request carries gap 0, so the core calls next(now) again exactly
 * at that reference's completion tick — which is the request's
 * completion time; the latency recorded is completion - arrival, and
 * arrivals are drawn open-loop (independent of service progress).
 */
class ServeStream : public CoreStream
{
  public:
    ServeStream(Addr base, std::uint32_t dataLines,
                std::uint32_t wsLines, double wf, std::uint32_t gap,
                double meanInterarrivalTicks, std::uint64_t seed,
                CoreId core)
        : base_(base), dataLines_(dataLines), wsLines_(wsLines),
          wf_(wf), gap_(gap), meanGapTicks_(meanInterarrivalTicks),
          prng_(seed, core * 2 + 1)
    {
        nextArrival_ = drawInterarrival();
    }

    MemRef
    next(Tick now) override
    {
        if (left_ == 0) {
            if (inFlight_) {
                latencies_.push_back(now - arrival_);
                inFlight_ = false;
            }
            // Begin the next request.  If it has not arrived yet the
            // first reference carries the idle delay; if it is already
            // queued, the queueing wait lands in its latency.
            arrival_ = nextArrival_;
            nextArrival_ += drawInterarrival();
            start_ = prng_.below(dataLines_);
            left_ = wsLines_;
            inFlight_ = true;
            MemRef r = lineRef();
            if (arrival_ > now)
                r.delay = arrival_ - now;
            return r;
        }
        return lineRef();
    }

    MemRef
    next() override
    {
        // Untimed replay (trace capture): arrivals still advance but
        // latencies are meaningless without a clock.
        return next(0);
    }

    const std::vector<Tick> *requestLatencies() const override
    {
        return &latencies_;
    }

  private:
    MemRef
    lineRef()
    {
        MemRef r;
        const std::uint32_t off = wsLines_ - left_;
        r.addr = base_ +
                 static_cast<Addr>((start_ + off) % dataLines_) * 64;
        r.write = prng_.chance(wf_);
        --left_;
        r.gap = left_ == 0 ? 0 : gap_;
        return r;
    }

    Tick
    drawInterarrival()
    {
        // Exponential with the configured mean; floored at one tick.
        const double u = prng_.uniform();
        const double t = -std::log1p(-u) * meanGapTicks_;
        return t < 1.0 ? 1 : static_cast<Tick>(t);
    }

    Addr base_;
    std::uint32_t dataLines_;
    std::uint32_t wsLines_;
    double wf_;
    std::uint32_t gap_;
    double meanGapTicks_;
    Prng prng_;

    Tick arrival_ = 0;
    Tick nextArrival_ = 0;
    std::uint32_t start_ = 0;
    std::uint32_t left_ = 0;
    bool inFlight_ = false;
    std::vector<Tick> latencies_;
};

class ServeMethod : public WorkloadMethod
{
  public:
    const char *methodName() const override { return "serve"; }
    const char *summary() const override
    {
        return "open-loop Poisson request serving with per-request "
               "tail latency";
    }

    const std::vector<ParamSpec> &params() const override
    {
        static const std::vector<ParamSpec> kParams = {
            {"rps", ParamSpec::Kind::F64, "1000000",
             "aggregate arrival rate, requests/s", nullptr, 1000,
             1e9},
            {"ws", ParamSpec::Kind::U64, "4096",
             "working-set bytes per request", nullptr, 64, 1048576},
            {"data", ParamSpec::Kind::U64, "1048576",
             "per-core dataset bytes", nullptr, 4096,
             64.0 * (1 << 20)},
            {"wf", ParamSpec::Kind::F64, "0.25",
             "write fraction within a request", nullptr, 0, 1},
            {"gap", ParamSpec::Kind::U64, "3",
             "non-memory instructions between refs", nullptr, 0, 1024},
        };
        return kParams;
    }

    std::unique_ptr<Workload>
    instantiate(const ParamValues &v) const override
    {
        return std::make_unique<ServeWorkload>(
            v.f64("rps"), v.u64("ws"), v.u64("data"), v.f64("wf"),
            static_cast<std::uint32_t>(v.u64("gap")));
    }
};

} // namespace

ServeWorkload::ServeWorkload(double rps, std::uint64_t wsBytes,
                             std::uint64_t dataBytes, double wf,
                             std::uint32_t gap)
    : rps_(rps), wsBytes_(wsBytes), dataBytes_(dataBytes), wf_(wf),
      gap_(gap)
{
}

std::unique_ptr<CoreStream>
ServeWorkload::makeStream(CoreId core, std::uint32_t numCores,
                          std::uint64_t seed) const
{
    const Addr base = SyntheticStream::kPrivateBase +
                      static_cast<Addr>(core) * (64ULL << 20);
    // The aggregate rate splits evenly; 1 tick = 1 ns at 1 GHz.
    const double perCoreRps = rps_ / (numCores == 0 ? 1 : numCores);
    const double meanTicks = 1e9 / perCoreRps;
    const std::uint32_t wsLines =
        static_cast<std::uint32_t>(wsBytes_ / 64);
    return std::make_unique<ServeStream>(
        base, static_cast<std::uint32_t>(dataBytes_ / 64),
        wsLines == 0 ? 1 : wsLines, wf_, gap_, meanTicks, seed, core);
}

void
registerServeMethod(WorkloadRegistry &reg)
{
    reg.registerMethod(std::make_unique<ServeMethod>());
}

} // namespace refrint
