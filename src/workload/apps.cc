/**
 * @file
 * The paper's application set (Table 5.3) as synthetic profiles.
 *
 * Profiles are calibrated to land each application in its paper class
 * (Table 6.1) along the two axes of Fig. 3.1:
 *
 *  - Class 1 (FFT, FMM, Cholesky, Fluidanimate): footprint well beyond
 *    the 16 MB L3, streaming-heavy, with enough dirty eviction/sharing
 *    traffic that the L3 has visibility.
 *  - Class 2 (Barnes, LU, Radix, Radiosity): footprint below the L3 but
 *    above the aggregate private L2s, with intense producer/consumer
 *    sharing (high visibility).
 *  - Class 3 (Blackscholes, Streamcluster, Raytrace): hot working sets
 *    that live in L1/L2, read-mostly shared data, little sharing churn
 *    (low visibility).
 */

#include "workload/workload.hh"

#include "workload/synthetic.hh"

namespace refrint
{

namespace
{

constexpr std::uint64_t KB = 1024;
constexpr std::uint64_t MB = 1024 * 1024;

// clang-format off
const AppProfile kProfiles[] = {
    // ---- SPLASH-2 ----
    {.name = "fft", .paperClass = 1,
     .privateBytes = 4 * MB, .sharedBytes = 2 * MB,
     .hotFraction = 0.55, .sharedFraction = 0.06, .writeFraction = 0.35,
     .seqFraction = 0.80, .seqRunLines = 128, .skew = 1.0,
     .migratoryFraction = 0.40, .chunkLines = 64, .rotatePeriod = 2000,
     .gapMin = 2, .gapMax = 5, .codeLines = 96},
    {.name = "lu", .paperClass = 2,
     .privateBytes = 64 * KB, .sharedBytes = 4 * MB,
     .hotFraction = 0.60, .sharedFraction = 0.45, .writeFraction = 0.35,
     .seqFraction = 0.40, .seqRunLines = 32, .skew = 2.0,
     .migratoryFraction = 0.40, .chunkLines = 64, .rotatePeriod = 2500,
     .gapMin = 2, .gapMax = 5, .codeLines = 112},
    {.name = "radix", .paperClass = 2,
     .privateBytes = 256 * KB, .sharedBytes = 8 * MB,
     .hotFraction = 0.55, .sharedFraction = 0.50, .writeFraction = 0.50,
     .seqFraction = 0.50, .seqRunLines = 64, .skew = 1.5,
     .migratoryFraction = 0.70, .chunkLines = 64, .rotatePeriod = 1500,
     .gapMin = 2, .gapMax = 4, .codeLines = 80},
    {.name = "cholesky", .paperClass = 1,
     .privateBytes = 3 * MB, .sharedBytes = 2 * MB,
     .hotFraction = 0.55, .sharedFraction = 0.10, .writeFraction = 0.40,
     .seqFraction = 0.60, .seqRunLines = 96, .skew = 1.5,
     .migratoryFraction = 0.30, .chunkLines = 64, .rotatePeriod = 2000,
     .gapMin = 2, .gapMax = 6, .codeLines = 160},
    {.name = "barnes", .paperClass = 2,
     .privateBytes = 128 * KB, .sharedBytes = 6 * MB,
     .hotFraction = 0.60, .sharedFraction = 0.50, .writeFraction = 0.30,
     .seqFraction = 0.10, .seqRunLines = 16, .skew = 2.0,
     .migratoryFraction = 0.50, .chunkLines = 32, .rotatePeriod = 2000,
     .gapMin = 3, .gapMax = 6, .codeLines = 192},
    {.name = "fmm", .paperClass = 1,
     .privateBytes = 2 * MB, .sharedBytes = 3 * MB,
     .hotFraction = 0.55, .sharedFraction = 0.15, .writeFraction = 0.30,
     .seqFraction = 0.50, .seqRunLines = 64, .skew = 1.5,
     .migratoryFraction = 0.50, .chunkLines = 32, .rotatePeriod = 1800,
     .gapMin = 3, .gapMax = 6, .codeLines = 224},
    {.name = "radiosity", .paperClass = 2,
     .privateBytes = 128 * KB, .sharedBytes = 5 * MB,
     .hotFraction = 0.60, .sharedFraction = 0.55, .writeFraction = 0.30,
     .seqFraction = 0.15, .seqRunLines = 24, .skew = 2.0,
     .migratoryFraction = 0.50, .chunkLines = 32, .rotatePeriod = 2200,
     .gapMin = 2, .gapMax = 5, .codeLines = 208},
    {.name = "raytrace", .paperClass = 3,
     .privateBytes = 64 * KB, .sharedBytes = 2 * MB,
     .hotFraction = 0.70, .sharedFraction = 0.35, .writeFraction = 0.10,
     .seqFraction = 0.10, .seqRunLines = 16, .skew = 3.0,
     .migratoryFraction = 0.00, .chunkLines = 32, .rotatePeriod = 2000,
     .gapMin = 2, .gapMax = 5, .codeLines = 176},
    // ---- PARSEC ----
    {.name = "streamcluster", .paperClass = 3,
     .privateBytes = 128 * KB, .sharedBytes = 1 * MB,
     .hotFraction = 0.70, .sharedFraction = 0.30, .writeFraction = 0.15,
     .seqFraction = 0.30, .seqRunLines = 32, .skew = 2.5,
     .migratoryFraction = 0.05, .chunkLines = 32, .rotatePeriod = 3000,
     .gapMin = 2, .gapMax = 4, .codeLines = 96},
    {.name = "blackscholes", .paperClass = 3,
     .privateBytes = 96 * KB, .sharedBytes = 512 * KB,
     .hotFraction = 0.75, .sharedFraction = 0.20, .writeFraction = 0.20,
     .seqFraction = 0.20, .seqRunLines = 16, .skew = 3.0,
     .migratoryFraction = 0.00, .chunkLines = 16, .rotatePeriod = 3000,
     .gapMin = 2, .gapMax = 5, .codeLines = 64},
    {.name = "fluidanimate", .paperClass = 1,
     .privateBytes = 2560 * KB, .sharedBytes = 2 * MB,
     .hotFraction = 0.55, .sharedFraction = 0.12, .writeFraction = 0.45,
     .seqFraction = 0.55, .seqRunLines = 80, .skew = 1.5,
     .migratoryFraction = 0.60, .chunkLines = 48, .rotatePeriod = 1600,
     .gapMin = 2, .gapMax = 5, .codeLines = 144},
};
// clang-format on

std::vector<std::unique_ptr<SyntheticWorkload>> &
registry()
{
    static std::vector<std::unique_ptr<SyntheticWorkload>> apps = [] {
        std::vector<std::unique_ptr<SyntheticWorkload>> v;
        for (const AppProfile &p : kProfiles)
            v.push_back(std::make_unique<SyntheticWorkload>(p));
        return v;
    }();
    return apps;
}

} // namespace

const std::vector<const Workload *> &
paperWorkloads()
{
    static std::vector<const Workload *> v = [] {
        std::vector<const Workload *> out;
        for (const auto &w : registry())
            out.push_back(w.get());
        return out;
    }();
    return v;
}

std::vector<const Workload *>
workloadsOfClass(int paperClass)
{
    std::vector<const Workload *> out;
    for (const Workload *w : paperWorkloads()) {
        if (w->paperClass() == paperClass)
            out.push_back(w);
    }
    return out;
}

} // namespace refrint
