/**
 * @file
 * Request-serving workload family ("serve"): an open-loop stream of
 * requests with Poisson arrivals, each touching its own working set
 * drawn from a per-core hot dataset.  The stream records every
 * request's completion latency (queueing wait included — arrivals are
 * open-loop, so a slow memory system backs requests up), which the
 * runner distills into the p50/p95/p99 tail-latency fields of
 * RunResult.  This makes "millions of users hitting this cache
 * hierarchy" a measurable Scenario axis.
 *
 * Instantiate through the workload registry as e.g.
 *     serve:rps=2e6,ws=64k
 *     serve:rps=2e6,ws=4096,data=1048576
 */

#ifndef REFRINT_WORKLOAD_SERVE_HH
#define REFRINT_WORKLOAD_SERVE_HH

#include <cstdint>
#include <memory>

#include "workload/workload.hh"

namespace refrint
{

/** Open-loop Poisson request serving with per-request latencies. */
class ServeWorkload : public Workload
{
  public:
    /**
     * @param rps       aggregate machine arrival rate, requests/s
     *                  (split evenly across cores; keep it well above
     *                  ~1e3 or requests become rarer than maxTicks)
     * @param wsBytes   working set touched per request
     * @param dataBytes per-core dataset the working sets are drawn from
     * @param wf        write fraction within a request
     * @param gap       non-memory instructions between refs
     */
    ServeWorkload(double rps, std::uint64_t wsBytes,
                  std::uint64_t dataBytes, double wf, std::uint32_t gap);

    const char *name() const override { return "serve"; }
    int paperClass() const override { return 0; }
    std::unique_ptr<CoreStream> makeStream(
        CoreId core, std::uint32_t numCores,
        std::uint64_t seed) const override;

  private:
    double rps_;
    std::uint64_t wsBytes_;
    std::uint64_t dataBytes_;
    double wf_;
    std::uint32_t gap_;
};

} // namespace refrint

#endif // REFRINT_WORKLOAD_SERVE_HH
