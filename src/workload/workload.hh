/**
 * @file
 * Workload interface: a named parallel application that can hand each
 * core an endless memory-reference stream.
 *
 * The paper runs 16-threaded SPLASH-2 and PARSEC applications (Table
 * 5.3).  We substitute synthetic generators calibrated to the two axes
 * the paper's own model (§3.3, Fig. 3.1) identifies as what matters to
 * the refresh policies: data footprint relative to the last-level cache
 * and the LLC's visibility of upper-level activity (sharing-induced
 * write-backs and dirty evictions).
 */

#ifndef REFRINT_WORKLOAD_WORKLOAD_HH
#define REFRINT_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/core.hh"

namespace refrint
{

/**
 * Coarse data-footprint summary of a workload, the inputs of the
 * analytic energy predictor (validate/analytic_model.hh): how much
 * data the run touches and how it behaves, independent of any
 * simulated counter.
 */
struct WorkloadFootprint
{
    double privateBytes = 0; ///< per core
    double sharedBytes = 0;  ///< whole machine
    double hotFraction = 0;  ///< references hitting the tiny hot set
    double writeFraction = 0;
    double sharedFraction = 0;
};

class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const char *name() const = 0;

    /** Expected paper class (Table 6.1): 1, 2 or 3; 0 for micros. */
    virtual int paperClass() const = 0;

    /** Instruction footprint, in 64B lines, for the fetch model. */
    virtual std::uint32_t codeLines() const { return 128; }

    /**
     * The workload's spec string (workload/method.hh grammar).  For a
     * directly-constructed or legacy-named workload this is the bare
     * name; registry-resolved method instances return their canonical
     * "method:key=value,..." form.  Scenario keys are derived from it.
     */
    virtual std::string spec() const { return name(); }

    /**
     * Describe the workload's data footprint for the analytic
     * predictor.  Returns false when the workload cannot state one
     * (trace replays, aggregate serving mixes) — the predictor then
     * skips the scenario, a documented model limit rather than an
     * error.
     */
    virtual bool
    footprint(WorkloadFootprint &) const
    {
        return false;
    }

    /** Build the reference stream for one core. */
    virtual std::unique_ptr<CoreStream>
    makeStream(CoreId core, std::uint32_t numCores,
               std::uint64_t seed) const = 0;
};

/** The paper's eleven applications (Table 5.3), in suite order. */
const std::vector<const Workload *> &paperWorkloads();

/** Applications of one paper class (Table 6.1 binning). */
std::vector<const Workload *> workloadsOfClass(int paperClass);

/** Resolve a workload spec ("fft", "agg:tables=part,...") through the
 *  process-wide registry (workload/method.hh), or null on any error. */
const Workload *findWorkload(const std::string &spec);

} // namespace refrint

#endif // REFRINT_WORKLOAD_WORKLOAD_HH
