/**
 * @file
 * Level-descriptor-driven machine configuration.
 *
 * A MachineConfig describes the simulated CMP as data rather than as a
 * fixed struct shape: a vector of per-level CacheLevelSpec descriptors
 * (geometry, cell technology, refresh policy, engine geometry, private
 * vs. banked-shared placement) plus a scalable square-torus
 * interconnect whose dimension is derived from the core/bank count.
 * The hierarchy, refresh engines, thermal nodes and energy model are
 * all built by iterating the descriptor vector, so changing the
 * machine means changing the descriptors — not the simulator.
 *
 * Two degrees of freedom beyond the paper's Table 5.1 machine are
 * first-class:
 *
 *  - core count (4..64; the torus and L3 banking scale with it, and
 *    the directory is a 64-bit sharer mask), and
 *  - per-level cell technology, enabling hybrid machines such as the
 *    SRAM-L1/L2 + eDRAM-L3 deployment the paper calls realistic (§8).
 *
 * The default-constructed factories reproduce the paper's evaluated
 * 16-core machine bit for bit (see DESIGN.md "Machine configuration").
 *
 * The coherence protocol itself remains a three-level inclusive MESI
 * hierarchy: validate() requires exactly the four roles IL1/DL1/L2/LLC
 * with the LLC as the single banked-shared level.  What the descriptors
 * free is everything the protocol does not pin down: geometries, cell
 * technologies, refresh policies/engines per level, and the machine
 * scale.
 */

#ifndef REFRINT_CONFIG_MACHINE_CONFIG_HH
#define REFRINT_CONFIG_MACHINE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "edram/refresh_engine.hh"
#include "edram/refresh_policy.hh"
#include "edram/retention.hh"
#include "mem/cache_geometry.hh"
#include "related/decay.hh"
#include "thermal/thermal_model.hh"

namespace refrint
{

/** Memory cell technology of one cache level (Table 5.2). */
enum class CellTech : std::uint8_t
{
    Sram = 0, ///< baseline: high leakage, no refresh
    Edram,    ///< proposed: quarter leakage, needs refresh
};

const char *cellTechName(CellTech t);

/** Placement of one cache level on the tiled machine. */
enum class Sharing : std::uint8_t
{
    Private = 0,  ///< one unit per core
    BankedShared, ///< one unit per tile/bank, shared by all cores
};

/**
 * Protocol role of a level.  The MESI walk needs to know which units
 * serve fetches, which hold the directory, etc.; everything else about
 * a level is free-form descriptor data.
 */
enum class LevelRole : std::uint8_t
{
    IL1 = 0, ///< per-core instruction L1
    DL1,     ///< per-core data L1 (write-through, no-write-allocate)
    L2,      ///< per-core private unified L2
    LLC,     ///< banked shared last-level cache with the directory
};

const char *levelRoleName(LevelRole r);

/** One level of the hierarchy, as data. */
struct CacheLevelSpec
{
    const char *name = "";               ///< stat-group label
    LevelRole role = LevelRole::LLC;
    Sharing sharing = Sharing::Private;
    CellTech tech = CellTech::Edram;
    CacheGeometry geom;                  ///< per unit (per bank if shared)
    EngineGeometry engine;               ///< refresh-engine microarch (§5)

    /** Refresh policy effective at this level when tech == Edram.  The
     *  sweep varies the LLC's; private levels run the same timing
     *  policy with their data policy pinned (Valid in the paper). */
    RefreshPolicy policy = RefreshPolicy::refrint(DataPolicy::Valid);

    bool refreshed() const { return tech == CellTech::Edram; }
};

struct MachineConfig
{
    std::uint32_t numCores = 16;
    std::uint32_t numBanks = 16;
    std::uint32_t torusDim = 4;

    /**
     * The hierarchy, outermost-private first: IL1, DL1, L2, LLC for
     * the paper machine.  Build loops iterate this vector; the
     * protocol resolves its role handles out of it at construction.
     */
    std::vector<CacheLevelSpec> levels;

    Tick hopLatency = 2;        ///< per torus router+link traversal
    Tick dataSerialization = 4; ///< extra cycles for a 64B payload
    Tick dramLatency = 40;      ///< Table 5.1: 40 ns
    Tick dramMinGap = 4;        ///< channel occupancy per access

    RetentionParams retention{usToTicks(50.0), kTickNever, {}, {}};

    /** Activity-driven per-bank temperatures feeding back into the
     *  retention (src/thermal/); disabled by default, which preserves
     *  the paper's isothermal evaluation bit for bit. */
    ThermalParams thermal;

    /** Cache-decay comparator settings (SRAM machines only, §7). */
    DecayConfig decay;

    /**
     * Cache-key machine label: empty for the paper's default 16-core
     * machine (legacy sweep-cache keys stay exactly as they were),
     * "c32" / "hyb" / "c32+hyb" for scaled or hybrid machines.  Set by
     * the factories; carried into every sweep-cache row key.
     */
    std::string machineId;

    // ---- level accessors (roles resolved from the vector) ----

    CacheLevelSpec &level(LevelRole r);
    const CacheLevelSpec &level(LevelRole r) const;

    CacheLevelSpec &il1() { return level(LevelRole::IL1); }
    CacheLevelSpec &dl1() { return level(LevelRole::DL1); }
    CacheLevelSpec &l2() { return level(LevelRole::L2); }
    CacheLevelSpec &llc() { return level(LevelRole::LLC); }
    const CacheLevelSpec &il1() const { return level(LevelRole::IL1); }
    const CacheLevelSpec &dl1() const { return level(LevelRole::DL1); }
    const CacheLevelSpec &l2() const { return level(LevelRole::L2); }
    const CacheLevelSpec &llc() const { return level(LevelRole::LLC); }

    /** Total LLC capacity (all banks), bytes. */
    std::uint64_t llcBytes() const;

    /** Any level needs refresh (drives engine/thermal construction). */
    bool anyEdram() const;

    /** True when levels mix SRAM and eDRAM. */
    bool hybrid() const;

    /** Row label of a run on this machine: "SRAM" for an all-SRAM
     *  hierarchy, else the LLC policy name (the swept axis). */
    std::string configName() const;

    /** Human summary of the cell technologies: "SRAM", "eDRAM", or
     *  "SRAM(L1/L2)+eDRAM(L3)" for hybrids. */
    std::string techSummary() const;

    /** Set the swept refresh policy: the LLC takes @p p verbatim, the
     *  private levels take p with their data policy replaced (the
     *  paper pins them at Valid — see §6.2). */
    void setLlcPolicy(const RefreshPolicy &p,
                      DataPolicy upperData = DataPolicy::Valid);

    /** Re-pin the private levels' data policy, keeping the LLC's
     *  timing policy and (n,m) parameters. */
    void setUpperDataPolicy(DataPolicy d);

    /** Set every level's cell technology. */
    void setTech(CellTech t);

    /** Panics unless the descriptor set is a machine the protocol can
     *  run: the four roles present exactly once, the LLC last and
     *  banked-shared, cores in [1, 64], banks tiling the torus. */
    void validate() const;

    /** Shrink every cache by @p factor (power of two) for fast tests. */
    MachineConfig scaledDown(std::uint32_t factor) const;

    // ---- factories ----

    /**
     * The paper's Table 5.1 machine scaled to @p cores cores (4..64):
     * one LLC bank per core, torus dimension ceil(sqrt(cores)), LLC
     * bank-select bits derived from the bank count.  cores == 16 is
     * the paper machine exactly.  Cell technology defaults to eDRAM
     * everywhere.
     */
    static MachineConfig paper(std::uint32_t cores = 16);

    /** The evaluated machine with an SRAM hierarchy. */
    static MachineConfig paperSram(std::uint32_t cores = 16);

    /** The SRAM machine with cache decay enabled at L2/L3 (§7). */
    static MachineConfig paperSramDecay(Tick interval,
                                        std::uint32_t cores = 16);

    /** The paper's machine with eDRAM + the given policy/retention. */
    static MachineConfig paperEdram(const RefreshPolicy &policy,
                                    Tick retention,
                                    std::uint32_t cores = 16);

    /** The eDRAM machine with the thermal subsystem enabled at the
     *  given ambient temperature (deg C). */
    static MachineConfig paperEdramThermal(const RefreshPolicy &policy,
                                           Tick retention,
                                           double ambientC,
                                           std::uint32_t cores = 16);

    /**
     * The hybrid deployment the paper calls realistic: SRAM L1/L2
     * (fast, no refresh) over an eDRAM LLC running @p policy — the
     * refresh problem and its payoff live in the large shared cache.
     */
    static MachineConfig paperHybrid(const RefreshPolicy &policy,
                                     Tick retention,
                                     std::uint32_t cores = 16);
};

/** Smallest torus dimension whose k x k tiling holds @p tiles. */
std::uint32_t torusDimFor(std::uint32_t tiles);

/**
 * The cache-key machine label for a paper machine scaled to @p cores
 * cores, optionally hybrid: "" for the default 16-core uniform machine,
 * "c32", "hyb", "c32+hyb", ...  Single source of truth shared by the
 * MachineConfig factories and ScenarioKey, so a key built from a
 * (cores, hybrid) pair always matches the built machine's machineId.
 */
std::string machineIdFor(std::uint32_t cores, bool hybrid);

/** Backwards-compatible name: the machine config grew out of the old
 *  fixed-shape HierarchyConfig. */
using HierarchyConfig = MachineConfig;

} // namespace refrint

#endif // REFRINT_CONFIG_MACHINE_CONFIG_HH
