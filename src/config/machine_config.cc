#include "config/machine_config.hh"

#include <cstdio>
#include <cstring>

#include "common/log.hh"

namespace refrint
{

const char *
cellTechName(CellTech t)
{
    return t == CellTech::Sram ? "SRAM" : "eDRAM";
}

const char *
levelRoleName(LevelRole r)
{
    switch (r) {
      case LevelRole::IL1:
        return "IL1";
      case LevelRole::DL1:
        return "DL1";
      case LevelRole::L2:
        return "L2";
      case LevelRole::LLC:
        return "LLC";
    }
    return "?";
}

std::uint32_t
torusDimFor(std::uint32_t tiles)
{
    std::uint32_t d = 1;
    while (d * d < tiles)
        ++d;
    return d;
}

CacheLevelSpec &
MachineConfig::level(LevelRole r)
{
    for (CacheLevelSpec &l : levels)
        if (l.role == r)
            return l;
    panic("machine has no %s level", levelRoleName(r));
}

const CacheLevelSpec &
MachineConfig::level(LevelRole r) const
{
    return const_cast<MachineConfig *>(this)->level(r);
}

std::uint64_t
MachineConfig::llcBytes() const
{
    return llc().geom.sizeBytes * numBanks;
}

bool
MachineConfig::anyEdram() const
{
    for (const CacheLevelSpec &l : levels)
        if (l.tech == CellTech::Edram)
            return true;
    return false;
}

bool
MachineConfig::hybrid() const
{
    bool sram = false, edram = false;
    for (const CacheLevelSpec &l : levels) {
        sram = sram || l.tech == CellTech::Sram;
        edram = edram || l.tech == CellTech::Edram;
    }
    return sram && edram;
}

std::string
MachineConfig::configName() const
{
    return anyEdram() ? llc().policy.name() : "SRAM";
}

std::string
MachineConfig::techSummary() const
{
    if (!hybrid())
        return cellTechName(levels.empty() ? CellTech::Sram
                                           : levels.front().tech);
    // Group consecutive same-tech levels: "SRAM(il1/dl1/l2)+eDRAM(l3)".
    std::string out;
    for (std::size_t i = 0; i < levels.size();) {
        const CellTech t = levels[i].tech;
        std::string names;
        for (; i < levels.size() && levels[i].tech == t; ++i) {
            if (!names.empty())
                names += "/";
            names += levels[i].name;
        }
        if (!out.empty())
            out += "+";
        out += std::string(cellTechName(t)) + "(" + names + ")";
    }
    return out;
}

void
MachineConfig::setLlcPolicy(const RefreshPolicy &p, DataPolicy upperData)
{
    for (CacheLevelSpec &l : levels) {
        l.policy = p;
        if (l.sharing != Sharing::BankedShared)
            l.policy.data = upperData;
    }
}

void
MachineConfig::setUpperDataPolicy(DataPolicy d)
{
    const RefreshPolicy llcPolicy = llc().policy;
    for (CacheLevelSpec &l : levels) {
        if (l.sharing == Sharing::BankedShared)
            continue;
        l.policy = llcPolicy;
        l.policy.data = d;
    }
}

void
MachineConfig::setTech(CellTech t)
{
    for (CacheLevelSpec &l : levels)
        l.tech = t;
}

void
MachineConfig::validate() const
{
    if (numCores == 0 || numCores > 64)
        panic("core count %u outside [1, 64] (the directory sharer "
              "mask is 64 bits wide)",
              numCores);
    panicIf(numBanks == 0, "machine needs at least one LLC bank");
    if (torusDim * torusDim < numBanks || torusDim * torusDim < numCores)
        panic("torus %ux%u cannot tile %u cores / %u banks", torusDim,
              torusDim, numCores, numBanks);

    int seen[4] = {0, 0, 0, 0};
    for (std::size_t i = 0; i < levels.size(); ++i) {
        const CacheLevelSpec &l = levels[i];
        seen[static_cast<int>(l.role)]++;
        panicIf(l.name == nullptr || l.name[0] == '\0',
                "every level needs a name (it keys the stat groups)");
        for (std::size_t j = 0; j < i; ++j) {
            if (std::strcmp(levels[j].name, l.name) == 0)
                panic("duplicate level name '%s': stat groups would "
                      "silently merge",
                      l.name);
        }
        l.geom.check(l.name);
        if (l.role == LevelRole::LLC) {
            panicIf(l.sharing != Sharing::BankedShared,
                    "the LLC must be banked-shared");
            panicIf(i + 1 != levels.size(),
                    "the LLC must be the last descriptor");
        } else if (l.sharing != Sharing::Private) {
            panic("%s: only the LLC may be shared (the directory lives "
                  "there)",
                  l.name);
        }
    }
    for (int r = 0; r < 4; ++r) {
        if (seen[r] != 1)
            panic("the protocol needs role %s exactly once (found %d)",
                  levelRoleName(static_cast<LevelRole>(r)), seen[r]);
    }
    panicIf(il1().tech != dl1().tech,
            "IL1 and DL1 must share a cell technology (the energy "
            "model aggregates them as one L1 class)");
}

MachineConfig
MachineConfig::scaledDown(std::uint32_t factor) const
{
    MachineConfig c = *this;
    for (CacheLevelSpec &l : c.levels)
        l.geom.sizeBytes /= factor;
    return c;
}

MachineConfig
MachineConfig::paper(std::uint32_t cores)
{
    if (cores < 4 || cores > 64)
        panic("paper machine scales to 4..64 cores (got %u)", cores);
    MachineConfig c;
    c.numCores = cores;
    c.numBanks = cores; // one LLC bank per tile, as in Table 5.1
    c.torusDim = torusDimFor(cores);

    // LLC bank-select bits between the line offset and the set index.
    unsigned bankBits = floorLog2(c.numBanks);
    if (!isPowerOfTwo(c.numBanks))
        ++bankBits; // modulo banking: skip past all bank-variant bits

    CacheLevelSpec il1;
    il1.name = "il1";
    il1.role = LevelRole::IL1;
    il1.geom = CacheGeometry{32 * 1024, 2, 64, 1};
    il1.engine = EngineGeometry{1, 4, 16};

    CacheLevelSpec dl1 = il1;
    dl1.name = "dl1";
    dl1.role = LevelRole::DL1;
    dl1.geom = CacheGeometry{32 * 1024, 4, 64, 1};

    CacheLevelSpec l2;
    l2.name = "l2";
    l2.role = LevelRole::L2;
    l2.geom = CacheGeometry{256 * 1024, 8, 64, 2};
    l2.engine = EngineGeometry{4, 4, 32};

    CacheLevelSpec l3;
    l3.name = "l3";
    l3.role = LevelRole::LLC;
    l3.sharing = Sharing::BankedShared;
    // hashSets: the shared LLC XOR-folds the index (cache_geometry.hh).
    l3.geom = CacheGeometry{1024 * 1024, 8, 64, 4, bankBits, true};
    l3.engine = EngineGeometry{16, 4, 64};

    c.levels = {il1, dl1, l2, l3};
    c.machineId = machineIdFor(cores, /*hybrid=*/false);
    return c;
}

MachineConfig
MachineConfig::paperSram(std::uint32_t cores)
{
    MachineConfig c = paper(cores);
    c.setTech(CellTech::Sram);
    return c;
}

MachineConfig
MachineConfig::paperSramDecay(Tick interval, std::uint32_t cores)
{
    MachineConfig c = paperSram(cores);
    c.decay.enabled = true;
    c.decay.interval = interval;
    return c;
}

MachineConfig
MachineConfig::paperEdram(const RefreshPolicy &policy, Tick retention,
                          std::uint32_t cores)
{
    MachineConfig c = paper(cores);
    c.setLlcPolicy(policy);
    c.retention.cellRetention = retention;
    return c;
}

MachineConfig
MachineConfig::paperEdramThermal(const RefreshPolicy &policy,
                                 Tick retention, double ambientC,
                                 std::uint32_t cores)
{
    MachineConfig c = paperEdram(policy, retention, cores);
    c.thermal.enabled = true;
    c.thermal.ambientC = ambientC;
    return c;
}

MachineConfig
MachineConfig::paperHybrid(const RefreshPolicy &policy, Tick retention,
                           std::uint32_t cores)
{
    MachineConfig c = paperEdram(policy, retention, cores);
    c.il1().tech = CellTech::Sram;
    c.dl1().tech = CellTech::Sram;
    c.l2().tech = CellTech::Sram;
    c.machineId = machineIdFor(cores, /*hybrid=*/true);
    return c;
}

std::string
machineIdFor(std::uint32_t cores, bool hybrid)
{
    std::string id;
    if (cores != 16) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "c%u", cores);
        id = buf;
    }
    if (hybrid)
        id += id.empty() ? "hyb" : "+hyb";
    return id;
}

} // namespace refrint
