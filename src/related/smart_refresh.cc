#include "related/smart_refresh.hh"

#include "common/log.hh"

namespace refrint
{

SmartRefreshEngine::SmartRefreshEngine(RefreshTarget &target,
                                       const RefreshPolicy &policy,
                                       const RetentionParams &retention,
                                       const EngineGeometry &geom,
                                       EventQueue &eq, StatGroup &stats,
                                       std::uint32_t counterBits)
    : RefreshEngine(target, policy, retention, geom, eq, stats)
{
    panicIf(counterBits == 0 || counterBits > 16,
            "SmartRefresh counter width out of range");
    numPhases_ = 1u << counterBits;
    phaseLen_ = cellRetention_ / numPhases_;
    panicIf(phaseLen_ == 0, "retention shorter than the phase clock");
    phaseScans_ = &stats.counter("smart_phase_scans");
}

void
SmartRefreshEngine::start(Tick now)
{
    // The All data policy keeps even invalid lines alive, so every line
    // needs a deadline from power-on; stagger them across the period so
    // steady state has no synchronized burst.
    if (policy_.data == DataPolicy::All) {
        CacheArray &arr = arr_;
        const std::uint32_t lines = arr.numLines();
        for (std::uint32_t idx = 0; idx < lines; ++idx) {
            CacheLine &line = arr.lineAt(idx);
            line.dataExpiry =
                now + 1 + cellRetention_ * static_cast<Tick>(idx) / lines;
        }
    }
    eq_.schedule(now + phaseLen_, this, 0);
}

void
SmartRefreshEngine::onInstall(std::uint32_t idx, Tick now)
{
    CacheLine &line = arr_.lineAt(idx);
    renew(idx, line, now); // counter reset: full retention from the fill
    noteAccess(policy_, line);
}

void
SmartRefreshEngine::onAccess(std::uint32_t idx, Tick now)
{
    CacheLine &line = arr_.lineAt(idx);
    renew(idx, line, now);
    noteAccess(policy_, line);
}

void
SmartRefreshEngine::fire(Tick now, std::uint64_t)
{
    // Phase boundary: scan the counters and act on every line whose
    // timeout would run out before the next boundary.  The scan itself
    // walks a dedicated counter array off the data-array critical path
    // (Ghosh & Lee keep the counters beside the tags), so only actual
    // line refreshes block the bank.
    CacheArray &arr = arr_;
    const std::uint32_t lines = arr.numLines();
    const Tick horizon = now + phaseLen_;

    std::uint32_t serviced = 0;
    for (std::uint32_t idx = 0; idx < lines; ++idx) {
        CacheLine &line = arr.lineAt(idx);
        const bool relevant =
            policy_.data == DataPolicy::All || line.valid();
        if (!relevant || line.dataExpiry > horizon)
            continue;
        if (visitLine(idx, now))
            ++serviced;
    }
    phaseScans_->inc();
    if (serviced > 0)
        target_.addBusy(now, serviced);
    eq_.schedule(now + phaseLen_, this, 0);
}

std::unique_ptr<RefreshEngine>
makeSmartRefreshEngine(RefreshTarget &target, const RefreshPolicy &policy,
                       const RetentionParams &retention,
                       const EngineGeometry &geom, EventQueue &eq,
                       StatGroup &stats)
{
    return std::make_unique<SmartRefreshEngine>(
        target, policy, retention, geom, eq, stats,
        geom.smartCounterBits);
}

} // namespace refrint
