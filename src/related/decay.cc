#include "related/decay.hh"

#include "common/log.hh"

namespace refrint
{

namespace
{

/** RetentionParams shim: SRAM cells never decay, but the base class
 *  wants a retention clock; use the decay interval with a 1-tick
 *  sentry margin so nothing panics and the clocks stay inert. */
RetentionParams
decayRetention(const DecayConfig &cfg)
{
    return RetentionParams{cfg.interval, 1, {}, {}};
}

} // namespace

DecayEngine::DecayEngine(RefreshTarget &target, const DecayConfig &cfg,
                         EventQueue &eq, StatGroup &stats)
    : RefreshEngine(target, RefreshPolicy::refrint(DataPolicy::Valid),
                    decayRetention(cfg), EngineGeometry{}, eq, stats),
      cfg_(cfg)
{
    panicIf(cfg_.scanDiv == 0, "decay scan divisor must be positive");
    scanPeriod_ = std::max<Tick>(1, cfg_.interval / cfg_.scanDiv);
    offSince_.assign(target.array().numLines(), kTickNever);
    offTicks_ = &stats.accum("off_line_ticks");
    decays_ = &stats.counter("decay_gateoffs");
    scans_ = &stats.counter("decay_scans");
}

void
DecayEngine::start(Tick now)
{
    // Lines that are never filled stay gated from power-on: account
    // their OFF time from t=0 by marking every line off initially.
    for (Tick &t : offSince_)
        t = now;
    eq_.schedule(now + scanPeriod_, this, 0);
}

void
DecayEngine::onInstall(std::uint32_t idx, Tick now)
{
    if (offSince_[idx] != kTickNever) {
        offTicks_->add(static_cast<double>(now - offSince_[idx]));
        offSince_[idx] = kTickNever;
    }
    // SRAM data never expires; keep the retention clocks inert so the
    // decayed-hit detector in CacheUnit stays silent.
    CacheLine &line = arr_.lineAt(idx);
    line.dataExpiry = kTickNever;
}

void
DecayEngine::onAccess(std::uint32_t idx, Tick now)
{
    (void)now;
    (void)idx; // lastTouch is maintained by CacheUnit::touchLine
}

void
DecayEngine::finish(Tick now)
{
    for (std::size_t idx = 0; idx < offSince_.size(); ++idx) {
        if (offSince_[idx] != kTickNever) {
            offTicks_->add(static_cast<double>(now - offSince_[idx]));
            offSince_[idx] = now; // idempotent wrt. repeated finish()
        }
    }
}

void
DecayEngine::fire(Tick now, std::uint64_t)
{
    CacheArray &arr = arr_;
    const std::uint32_t lines = arr.numLines();
    for (std::uint32_t idx = 0; idx < lines; ++idx) {
        CacheLine &line = arr.lineAt(idx);
        if (!line.valid() || offSince_[idx] != kTickNever)
            continue;
        if (arr.lastTouchOf(idx) + cfg_.interval > now)
            continue;
        // Idle past the decay interval: write back if dirty (the
        // adapter routes through the hierarchy, rescuing Modified
        // owners), then gate the line off.
        invals_->inc();
        decays_->inc();
        target_.invalidateLine(idx, now);
        offSince_[idx] = now;
    }
    scans_->inc();
    eq_.schedule(now + scanPeriod_, this, 0);
}

} // namespace refrint
