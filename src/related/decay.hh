/**
 * @file
 * Cache-decay comparator (Kaxiras et al., ISCA 2001; paper §7).
 *
 * Cache decay attacks SRAM leakage directly: a line that has not been
 * accessed for a *decay interval* is turned off (power-gated), paying a
 * refill from the next level if it is referenced again.  Dirty lines
 * are written back before gating.  This is the paper's main SRAM-side
 * alternative — it saves leakage on dead lines where Refrint saves
 * refresh energy on them — so the related-work bench runs it on the
 * full-SRAM baseline machine.
 *
 * The engine reuses the RefreshEngine plumbing: it scans at a coarse
 * granularity (interval / scanDiv, modelling the hierarchical 2-level
 * counters of the original paper), invalidates idle lines through the
 * hierarchy's RefreshTarget adapter (so inclusion and the directory stay
 * exact), and integrates per-line OFF time into the `off_line_ticks`
 * accumulator that the energy model uses to discount leakage.
 */

#ifndef REFRINT_RELATED_DECAY_HH
#define REFRINT_RELATED_DECAY_HH

#include <cstdint>
#include <vector>

#include "edram/refresh_engine.hh"

namespace refrint
{

/** Decay settings for the SRAM baseline machine. */
struct DecayConfig
{
    bool enabled = false;

    /** Idle time after which a line is gated off (Kaxiras' competitive
     *  sweet spot is tens of thousands of cycles for an LLC). */
    Tick interval = usToTicks(100.0);

    /** Scan granularity divisor: counters are polled every
     *  interval/scanDiv ticks (2-level counter quantization). */
    std::uint32_t scanDiv = 4;

    /** Apply decay at the private L2s / the shared L3. */
    bool atL2 = true;
    bool atL3 = true;
};

class DecayEngine : public RefreshEngine
{
  public:
    DecayEngine(RefreshTarget &target, const DecayConfig &cfg,
                EventQueue &eq, StatGroup &stats);

    void start(Tick now) override;
    void onInstall(std::uint32_t idx, Tick now) override;
    void onAccess(std::uint32_t idx, Tick now) override;
    void finish(Tick now) override;

    void fire(Tick now, std::uint64_t tag) override;

    /** Accumulated line-OFF time so far (ticks x lines). */
    double offLineTicks() const { return offTicks_->value(); }

  private:
    DecayConfig cfg_;
    Tick scanPeriod_;

    /** Gate-off tick per line; kTickNever while the line is powered. */
    std::vector<Tick> offSince_;

    Accum *offTicks_;
    Counter *decays_;
    Counter *scans_;
};

} // namespace refrint

#endif // REFRINT_RELATED_DECAY_HH
