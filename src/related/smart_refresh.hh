/**
 * @file
 * SmartRefresh comparator (Ghosh & Lee, MICRO 2007; paper §7).
 *
 * SmartRefresh attaches a small k-bit timeout counter to every line and
 * divides the retention period into 2^k phases driven by a coarse global
 * clock.  A normal read or write resets the line's counter; the refresh
 * controller polls at phase boundaries and refreshes only lines whose
 * counter is about to run out — avoiding the redundant refreshes of
 * recently-accessed lines that a plain periodic scheme performs.
 *
 * Relative to Refrint this needs no analog Sentry cell, but pays two
 * costs the paper's proposal avoids: (a) the counter quantizes time at
 * T/2^k, so a line is refreshed up to one phase early, and (b) the
 * controller must *scan* counters every phase even when nothing needs
 * refreshing.  The engine composes with all data policies so it can be
 * compared head-to-head against Periodic and Refrint in the
 * related-work bench.
 */

#ifndef REFRINT_RELATED_SMART_REFRESH_HH
#define REFRINT_RELATED_SMART_REFRESH_HH

#include <cstdint>

#include "edram/refresh_engine.hh"

namespace refrint
{

class SmartRefreshEngine : public RefreshEngine
{
  public:
    /**
     * @param counterBits  Width k of the per-line timeout counter; the
     *                     global phase clock ticks 2^k times per
     *                     retention period (Ghosh & Lee use 3 bits).
     */
    SmartRefreshEngine(RefreshTarget &target, const RefreshPolicy &policy,
                       const RetentionParams &retention,
                       const EngineGeometry &geom, EventQueue &eq,
                       StatGroup &stats, std::uint32_t counterBits = 3);

    void start(Tick now) override;
    void onInstall(std::uint32_t idx, Tick now) override;
    void onAccess(std::uint32_t idx, Tick now) override;

    void fire(Tick now, std::uint64_t tag) override;

    std::uint32_t numPhases() const { return numPhases_; }
    Tick phaseLength() const { return phaseLen_; }

  private:
    /** Stamp a full-retention deadline on line @p idx. */
    void
    renew(std::uint32_t idx, CacheLine &line, Tick now)
    {
        line.dataExpiry = now + cellRetentionOf(idx);
    }

    std::uint32_t numPhases_;
    Tick phaseLen_;

    Counter *phaseScans_; ///< phase-boundary counter scans performed
};

} // namespace refrint

#endif // REFRINT_RELATED_SMART_REFRESH_HH
