#include "related/ecc.hh"

#include "common/log.hh"

namespace refrint
{

const char *
eccSchemeName(EccScheme s)
{
    switch (s) {
      case EccScheme::None:
        return "noECC";
      case EccScheme::Secded:
        return "SECDED";
      case EccScheme::Strong:
        return "HiECC";
    }
    return "?";
}

double
EccModel::storageOverhead() const
{
    switch (scheme) {
      case EccScheme::None:
        return 0.0;
      case EccScheme::Secded:
        return 8.0 / 64.0; // (72,64): 8 check bits per 64
      case EccScheme::Strong:
        // Hi-ECC stores a strong BCH code at cache-line granularity;
        // Wilkerson et al. report ~2% storage by coding over 1KB, but a
        // line-granular strong code (what a drop-in LLC needs) costs
        // on the order of a SECDED word plus the multi-bit syndrome.
        return 12.0 / 64.0;
    }
    panic("unreachable ECC scheme");
}

double
EccModel::retentionMultiplier() const
{
    // Emma et al.: tolerating the first failures moves the refresh
    // period from the weakest cell to the distribution body — roughly
    // 2x for single-error correction and 4x for multi-bit codes.
    switch (scheme) {
      case EccScheme::None:
        return 1.0;
      case EccScheme::Secded:
        return 2.0;
      case EccScheme::Strong:
        return 4.0;
    }
    panic("unreachable ECC scheme");
}

double
EccModel::accessEnergyFactor() const
{
    switch (scheme) {
      case EccScheme::None:
        return 1.0;
      case EccScheme::Secded:
        return 1.10; // XOR-tree encode/decode on every access
      case EccScheme::Strong:
        return 1.25; // multi-bit syndrome computation
    }
    panic("unreachable ECC scheme");
}

void
applyEcc(EccScheme scheme, HierarchyConfig &cfg, EnergyParams &energy)
{
    const EccModel m{scheme};
    panicIf(cfg.llc().tech != CellTech::Edram,
            "ECC retention extension applies to eDRAM LLCs");
    cfg.retention.cellRetention = static_cast<Tick>(
        static_cast<double>(cfg.retention.cellRetention) *
        m.retentionMultiplier());
    // Check bits leak and burn access energy alongside the data bits.
    energy.leakL3Bank *= 1.0 + m.storageOverhead();
    energy.eL3Access *= (1.0 + m.storageOverhead()) *
                        m.accessEnergyFactor();
}

} // namespace refrint
