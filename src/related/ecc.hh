/**
 * @file
 * ECC-assisted refresh-period extension (Emma et al., IEEE Micro 2008;
 * Wilkerson et al., ISCA 2010; paper §7).
 *
 * Instead of refreshing at the rate of the *weakest* cell, an
 * error-correcting code tolerates the first failures, so the global
 * refresh period can be set by a higher percentile of the retention
 * distribution.  Stronger codes buy longer periods but cost storage
 * (more leakage + larger arrays), and encode/decode energy on every
 * access.  This is an analytic transformation of the machine
 * configuration: it multiplies the L3 retention period and inflates the
 * L3 energy coefficients, which the related-work bench then feeds to
 * the ordinary runner.
 */

#ifndef REFRINT_RELATED_ECC_HH
#define REFRINT_RELATED_ECC_HH

#include <cstdint>

#include "coherence/hierarchy_config.hh"
#include "energy/energy_params.hh"

namespace refrint
{

/** Code strength applied to the L3 eDRAM arrays. */
enum class EccScheme : std::uint8_t
{
    None = 0,
    /** SECDED (72,64): corrects single-bit failures. */
    Secded,
    /** Multi-bit BCH in the style of Wilkerson et al.'s Hi-ECC. */
    Strong,
};

const char *eccSchemeName(EccScheme s);

/** Analytic properties of one code choice. */
struct EccModel
{
    EccScheme scheme = EccScheme::None;

    /** Fraction of extra bits stored per line (leakage + array area). */
    double storageOverhead() const;

    /** How much longer the refresh period can be, given the code can
     *  ride through the weak-cell tail of the retention distribution. */
    double retentionMultiplier() const;

    /** Dynamic energy factor per access (encode/decode logic). */
    double accessEnergyFactor() const;
};

/**
 * Apply @p scheme to an eDRAM machine: extends cfg.retention and scales
 * the L3 coefficients of @p energy.  L1/L2 are left alone — the paper's
 * refresh problem (and the codes' payoff) live in the large shared LLC.
 */
void applyEcc(EccScheme scheme, HierarchyConfig &cfg,
              EnergyParams &energy);

} // namespace refrint

#endif // REFRINT_RELATED_ECC_HH
