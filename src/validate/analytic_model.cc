#include "validate/analytic_model.hh"

#include <algorithm>
#include <cstring>

namespace refrint
{

namespace
{

// Fitted throughput constants of the predictor (the only parts not
// derived from the machine description).  alpha is the L1 line events
// per instruction implied by the core model (one probe per 4-wide
// fetch block plus the data-reference rate of the gap distribution);
// kL23 prices the L2+L3 traffic behind each LLC-level miss; kNet the
// message multiplier per miss (request + data + coherence).  They are
// global — never tuned per app or per policy — and documented in
// DESIGN.md "Cross-model validation".
constexpr double kAlphaL1 = 0.47;
constexpr double kL23PerMiss = 3.0;
constexpr double kNetPerMiss = 3.0;

/** Occupancy-style footprint fraction of one level's capacity. */
double
occupancyOf(double footprintBytes, double capacityBytes)
{
    if (capacityBytes <= 0)
        return 1.0;
    return std::min(1.0, footprintBytes / capacityBytes);
}

/** Fraction of a level's lines the data policy keeps under refresh. */
double
policyFraction(const RefreshPolicy &pol, double occ, double dirtyFrac,
               bool &coarse)
{
    switch (pol.data) {
      case DataPolicy::All:
        return 1.0;
      case DataPolicy::Valid:
        coarse = true;
        return occ;
      case DataPolicy::Dirty:
        coarse = true;
        return occ * dirtyFrac;
      case DataPolicy::WB:
        coarse = true;
        return occ;
    }
    return 1.0;
}

} // namespace

AnalyticPrediction
analyticPredict(const AnalyticInput &in, const MachineConfig &cfg,
                const EnergyParams &p)
{
    AnalyticPrediction out;
    const double sec = in.execTicks * 1e-9; // 1 tick = 1 ns

    auto ratio = [&](CellTech t) {
        return t == CellTech::Edram ? p.edramLeakRatio : 1.0;
    };

    double l1UnitsPerCore = 0.0;
    for (const CacheLevelSpec &l : cfg.levels) {
        if (l.role == LevelRole::IL1 || l.role == LevelRole::DL1)
            l1UnitsPerCore += 1.0;
    }
    const CacheLevelSpec &l1Spec = cfg.il1();
    const CacheLevelSpec &l2Spec = cfg.l2();
    const CacheLevelSpec &llcSpec = cfg.llc();

    // ---- leakage: the closed form both models share ----------------
    out.leakage = (p.leakL1 * l1UnitsPerCore * cfg.numCores *
                   ratio(l1Spec.tech) +
                   p.leakL2 * cfg.numCores * ratio(l2Spec.tech) +
                   p.leakL3Bank * cfg.numBanks * ratio(llcSpec.tech)) *
                  sec;

    // ---- refresh: occupancy x refresh rate per eDRAM level ---------
    // Effective retention: the sentry period for Refrint (the canary
    // leads the data cells by the margin), the full cell period for
    // Periodic; thermally scaled by the curve evaluated midway between
    // ambient and the observed peak when the thermal subsystem ran.
    double thermalScale = 1.0;
    if (in.maxTempC > 0) {
        thermalScale = cfg.retention.thermal.factorAt(
            0.5 * (in.ambientC + in.maxTempC));
    }
    const double perCoreBytes =
        in.fp.privateBytes +
        in.fp.sharedBytes / std::max(1u, cfg.numCores);
    const double totalBytes =
        in.fp.privateBytes * cfg.numCores + in.fp.sharedBytes;
    const double dirtyFrac = std::max(0.05, in.fp.writeFraction);

    auto levelRefresh = [&](const CacheLevelSpec &spec, double units,
                            double occ, double eAccess) {
        if (spec.tech != CellTech::Edram || in.execTicks <= 0)
            return 0.0;
        const std::uint32_t unitLines = spec.geom.numLines();
        double periodTicks;
        if (spec.policy.time == TimePolicy::Periodic) {
            periodTicks =
                static_cast<double>(cfg.retention.cellRetention);
        } else {
            periodTicks = static_cast<double>(
                cfg.retention.sentryRetention(unitLines));
        }
        periodTicks *= thermalScale;
        if (periodTicks <= 0)
            return 0.0;
        const double periods = in.execTicks / periodTicks;
        bool coarse = false;
        const double frac =
            policyFraction(spec.policy, occ, dirtyFrac, coarse);
        if (coarse)
            out.refreshIsCoarse = true;
        return frac * static_cast<double>(unitLines) * units * periods *
               eAccess;
    };

    // The tiny L1s stay resident (the hot set alone fills them).
    out.refresh =
        levelRefresh(l1Spec, l1UnitsPerCore * cfg.numCores, 1.0,
                     p.eL1Access) +
        levelRefresh(l2Spec, cfg.numCores,
                     occupancyOf(perCoreBytes,
                                 static_cast<double>(
                                     l2Spec.geom.sizeBytes)),
                     p.eL2Access) +
        levelRefresh(llcSpec, cfg.numBanks,
                     occupancyOf(totalBytes,
                                 static_cast<double>(
                                     llcSpec.geom.sizeBytes) *
                                     cfg.numBanks),
                     p.eL3Access);

    // ---- dynamic, DRAM, core, net ----------------------------------
    const double misses = in.l3Misses + in.dramAccesses;
    out.dynamic = kAlphaL1 * in.instructions * p.eL1Access +
                  kL23PerMiss * misses * (p.eL2Access + p.eL3Access);
    out.dram = in.dramAccesses * p.eDramAccess;
    out.core = p.eCorePerInstr * in.instructions +
               p.leakCore * cfg.numCores * sec;
    out.net = kNetPerMiss * misses *
              (cfg.torusDim * p.eNetPerHop + p.eNetPerDataMsg);
    return out;
}

double
analyticEnvelope(const std::string &config, int paperClass)
{
    // SRAM rows have no refresh term and an exact leakage/DRAM/core
    // backbone; only the fitted dynamic/net terms can miss.
    if (config == "SRAM")
        return 0.10;

    // Policy families: the data policy decides how coarse the
    // occupancy model is.  Class 1 (footprint >> LLC) keeps decaying
    // lines resident and is the best-behaved; class 3 (small, shared,
    // read-mostly) leaves the most slack between declared footprint
    // and resident set.  Values are the maximum observed error on the
    // full default corpus (and the refs=2000 CI corpus) times ~1.5-2x
    // slack: SRAM 5.1%, ".all" 8.3%, selective 17.3% (DESIGN.md).
    const bool all = config.find(".all") != std::string::npos;
    double env = all ? 0.15 : 0.30;
    if (paperClass == 3)
        env += 0.10;
    if (paperClass == 0) // micros/unknown: no calibration basis
        env += 0.20;
    return env;
}

} // namespace refrint
