/**
 * @file
 * Second-opinion energy backend for cross-model validation.
 *
 * Same event counts, independently parameterized model: where the
 * primary backend (energy/energy_model.hh) charges one symmetric
 * access energy per line event and one leakage power per cache
 * *instance*, this backend follows the mcpat/DRAMPower decomposition
 * (SNIPPETS.md Snippet 2): per-structure read and write energies split
 * (a write restores the line and costs more than a read), refresh
 * charged at the write energy (a refresh is a read + restore), leakage
 * stated per KB of array so it scales with geometry instead of being
 * pinned per instance, and off-chip DRAM carrying an always-on
 * background power term (activate-standby + DRAM self-refresh) on top
 * of the per-access energy.
 *
 * None of the coefficients are copied from EnergyParams; they are
 * re-derived from the same 32 nm LOP regime on a different parameter
 * basis.  The two models therefore agree only to the extent that both
 * decompositions describe the same machine — which is exactly what the
 * validate subsystem measures (the relative disagreement per row, and
 * the per-class envelope it must stay inside; see DESIGN.md
 * "Cross-model validation").
 */

#ifndef REFRINT_VALIDATE_ENERGY_ALT_HH
#define REFRINT_VALIDATE_ENERGY_ALT_HH

#include <cstdint>

#include "coherence/hierarchy.hh"
#include "common/types.hh"
#include "energy/energy_model.hh"

namespace refrint
{

/** Coefficients of the alternate backend (joules, watts, W/KB). */
struct AltEnergyParams
{
    // Per-line-access dynamic energy, read side; a write is
    // writeFactor x the read (array restore + stronger drivers).
    double eL1Read = 0.037e-9;
    double eL2Read = 0.046e-9;
    double eL3Read = 0.074e-9;
    double writeFactor = 1.18;

    // Array leakage per KB of capacity (density-optimized structures
    // leak more per KB than latency-optimized ones).
    double leakL1PerKb = 0.033e-3;
    double leakL2PerKb = 0.170e-3;
    double leakL3PerKb = 0.250e-3;

    /** Table 5.2's published identity (eDRAM leaks a quarter of SRAM);
     *  a paper constant, not a calibration, so both backends share it. */
    double edramLeakRatio = 0.25;

    // Off-chip DRAM: per-access array+I/O energy plus an always-on
    // background power (activate-standby + self-refresh, the static
    // terms of Snippet 2's DRAM_POWER_STATIC).
    double eDramAccess = 3.7e-9;
    double dramBackgroundW = 0.12;

    // Cores: per-instruction dynamic plus static power per core.
    double eCorePerInstr = 0.094e-9;
    double coreStaticW = 0.188;

    // Network: wire/router energy per flit-hop plus serialization cost
    // per message (data messages carry a 64B payload = 4 flits + head;
    // control messages are a single flit).
    double eNetPerFlitHop = 0.011e-9;
    double flitsPerDataMsg = 5.0;
    double flitsPerCtrlMsg = 1.0;

    /** The fixed coefficients of the validation backend. */
    static AltEnergyParams
    calibrated()
    {
        return AltEnergyParams{};
    }
};

/**
 * Compute the alternate decomposition for a finished run.  Fills the
 * same EnergyBreakdown shape as the primary model, including the
 * per-level dyn/leak/ref matrix, so the two can be compared
 * term-by-term.
 */
EnergyBreakdown computeEnergyAlt(const AltEnergyParams &p,
                                 const HierarchyCounts &n,
                                 const MachineConfig &cfg,
                                 Tick execTicks,
                                 std::uint64_t totalInstrs);

} // namespace refrint

#endif // REFRINT_VALIDATE_ENERGY_ALT_HH
