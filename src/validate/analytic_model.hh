/**
 * @file
 * Analytic energy predictor: the paper's §3.3 closed-form model as an
 * independent estimator.
 *
 * The predictor sees only what the paper's own back-of-envelope model
 * sees — machine geometry, refresh policy, retention period, ambient
 * temperature, and the workload's declared data footprint — plus the
 * coarse schedule-level observables every cache row already carries
 * (execution time, instruction count, DRAM accesses, LLC misses, peak
 * temperature).  It never reads the simulator's energy tallies or
 * per-level event counters, so agreement between the two is evidence
 * rather than tautology.
 *
 * Model sketch (full equations in DESIGN.md "Cross-model validation"):
 *
 *   leakage  = sum over levels of leakW x instances x techRatio x T
 *   refresh  = sum over eDRAM levels of
 *                occupancy(policy, footprint) x lines x T/retention_eff
 *                x eAccess,
 *              retention_eff = sentry (Refrint) or cell (Periodic)
 *              period, thermally scaled between ambient and peak
 *   dynamic  = alpha x instructions x eL1
 *              + kL23 x (LLC misses + DRAM accesses) x (eL2 + eL3)
 *   dram     = DRAM accesses x eDram
 *   core/net = the McPAT-level linear forms
 *
 * Each scenario family (policy family x paper class) carries an
 * agreement envelope: the maximum relative system-energy error the
 * detailed simulation is allowed to show against this model.  The
 * occupancy terms for Valid/Dirty/WB data policies are deliberately
 * coarse (the footprint does not say how much of it stays resident),
 * so those families carry wide envelopes — a documented model limit,
 * not a silent pass.
 */

#ifndef REFRINT_VALIDATE_ANALYTIC_MODEL_HH
#define REFRINT_VALIDATE_ANALYTIC_MODEL_HH

#include <string>

#include "config/machine_config.hh"
#include "energy/energy_params.hh"
#include "workload/workload.hh"

namespace refrint
{

/** Everything the predictor is allowed to look at. */
struct AnalyticInput
{
    WorkloadFootprint fp;

    // Coarse observables of the finished run (counts and schedule
    // facts, never energy).
    double execTicks = 0;
    double instructions = 0;
    double dramAccesses = 0;
    double l3Misses = 0;

    double ambientC = 0; ///< 0 = isothermal
    double maxTempC = 0; ///< 0 = thermal subsystem off
};

/** The predictor's estimate, same units as EnergyBreakdown (joules). */
struct AnalyticPrediction
{
    double dynamic = 0, leakage = 0, refresh = 0;
    double dram = 0, core = 0, net = 0;

    /** True when the data policy lets lines decay (Valid/Dirty/WB):
     *  the refresh term then prices the declared footprint as if it
     *  stayed resident, an upper-bound-leaning estimate. */
    bool refreshIsCoarse = false;

    double
    memTotal() const
    {
        return dynamic + leakage + refresh + dram;
    }

    double
    systemTotal() const
    {
        return memTotal() + core + net;
    }
};

/**
 * Predict the run's energy from first principles.  @p cfg is the
 * machine the scenario describes (geometry, policy, retention,
 * thermal); @p p supplies the Table 5.1 coefficients both models
 * share.
 */
AnalyticPrediction analyticPredict(const AnalyticInput &in,
                                   const MachineConfig &cfg,
                                   const EnergyParams &p);

/**
 * Agreement envelope: the maximum |simulated - predicted| / predicted
 * system-energy error tolerated for a scenario of @p config (SRAM or
 * a policy name) and paper class @p paperClass (0 = micro/unknown).
 * Calibrated against the full default sweep corpus with ~1.5x slack;
 * the per-family values and their rationale are documented in
 * DESIGN.md "Cross-model validation".
 */
double analyticEnvelope(const std::string &config, int paperClass);

} // namespace refrint

#endif // REFRINT_VALIDATE_ANALYTIC_MODEL_HH
