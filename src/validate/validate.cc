#include "validate/validate.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "api/json.hh"
#include "api/run_cache.hh"
#include "api/scenario.hh"
#include "common/log.hh"
#include "service/store.hh"
#include "validate/analytic_model.hh"
#include "workload/workload.hh"

namespace refrint
{

namespace
{

// ---------------------------------------------------------------------
// Check thresholds.  Grouped here so every tolerance the checker
// applies is visible in one place; the rationale for each lives in
// DESIGN.md "Cross-model validation".
// ---------------------------------------------------------------------

/** Relative tolerance of the per-level vs. per-component identity
 *  (pure floating-point summation noise). */
constexpr double kIdentityTol = 1e-9;

/** Slack on the refresh ordering All >= Valid >= Dirty within one
 *  time-policy family (refresh *power*, so runtime differences between
 *  the configs cancel). */
constexpr double kOrderSlack = 1.05;

/** Slack on P.all dominating every other config's refresh power, after
 *  allowing Refrint rows the sentry-cadence factor (cell retention /
 *  sentry retention — the canary leads the data cells, so a sentry-
 *  paced engine may visit lines more often than the periodic one). */
constexpr double kDominanceSlack = 1.15;

/** Slack on refresh energy falling as retention grows (".all"
 *  policies, whose refreshed population is the whole cache). */
constexpr double kRetentionSlack = 1.05;

/** Selective data policies (valid/dirty/WB) refresh a *population*
 *  that itself grows with retention — longer-lived lines accumulate —
 *  so their refresh energy may legitimately rise along the retention
 *  axis.  Rises up to this factor are documented limits; beyond it,
 *  violations (the population cannot grow without bound). */
constexpr double kSelectiveSlack = 2.0;

/** Total-memory-energy inversions along the retention axis below this
 *  band are a documented model limit (dynamic-energy noise between
 *  runs can outweigh a small refresh delta); above it, a violation. */
constexpr double kMemLimitBand = 0.03;

/** Envelope on the primary-vs-alternate backend disagreement. */
constexpr double kAltEnvelope = 0.35;

/** Slack on the LLC refresh-count ceiling (all lines refreshed every
 *  effective sentry period for the whole run, plus two boundary
 *  visits per line). */
constexpr double kCeilingSlack = 1.10;

/** How many findings a non-verbose run prints per class. */
constexpr std::size_t kPrintCap = 10;

// ---------------------------------------------------------------------

/** Inverse of machineIdFor(): "" / "hyb" / "cN" / "cN+hyb". */
bool
parseMachineLabel(const std::string &m, std::uint32_t &cores,
                  bool &hybrid)
{
    cores = 16;
    hybrid = false;
    if (m.empty())
        return true;
    std::string rest = m;
    if (rest == "hyb") {
        hybrid = true;
        return true;
    }
    if (rest.size() > 4 &&
        rest.compare(rest.size() - 4, 4, "+hyb") == 0) {
        hybrid = true;
        rest.resize(rest.size() - 4);
    }
    if (rest.size() < 2 || rest[0] != 'c')
        return false;
    char *end = nullptr;
    const long v = std::strtol(rest.c_str() + 1, &end, 10);
    if (end == rest.c_str() + 1 || *end != '\0' || v < 1 || v > 1024)
        return false;
    cores = static_cast<std::uint32_t>(v);
    return true;
}

/** Non-fatal mirror of parsePolicy()'s grammar. */
bool
knownConfig(const std::string &s)
{
    if (s == "SRAM")
        return true;
    if (s.size() < 3 ||
        (s[0] != 'P' && s[0] != 'R' && s[0] != 'S') || s[1] != '.')
        return false;
    const std::string body = s.substr(2);
    if (body == "all" || body == "valid" || body == "dirty")
        return true;
    unsigned n = 0, mm = 0;
    char close = 0;
    return std::sscanf(body.c_str(), "WB(%u,%u%c", &n, &mm, &close) ==
               3 &&
           close == ')';
}

/** Scenario family label for the calibration table: "SRAM", "P.all",
 *  "R.WB", ... (WB tuples collapsed). */
std::string
familyOf(const std::string &config)
{
    const std::size_t wb = config.find(".WB(");
    if (wb != std::string::npos)
        return config.substr(0, wb) + ".WB";
    return config;
}

struct PolicyEntry
{
    std::string config;
    std::string key;
    double refreshE = 0;
    double execTicks = 0;
    double cellOverSentry = 1.0;
};

struct RetEntry
{
    double retentionUs = 0;
    std::string key;
    double refreshE = 0;
    double memE = 0;
    bool allPolicy = false; ///< ".all": fixed refresh population
};

double
fdiv(double a, double b)
{
    return b > 0 ? a / b : 0.0;
}

} // namespace

int
runValidate(const ValidateOptions &opts, ValidateReport *reportOut)
{
    std::FILE *out = opts.out != nullptr ? opts.out : stdout;
    panicIf(opts.cachePath.empty() == opts.storeDir.empty(),
            "runValidate wants exactly one of cachePath / storeDir");

    // ---- load the corpus -------------------------------------------
    std::map<std::string, CacheRow> rows;
    std::string corpus;
    if (!opts.storeDir.empty()) {
        corpus = "store " + opts.storeDir;
        std::ifstream manifest(opts.storeDir + "/store.json");
        if (!manifest)
            fatal("validate: no result store at %s (missing "
                  "store.json)",
                  opts.storeDir.c_str());
        ShardedStore store(opts.storeDir);
        rows = store.snapshot();
    } else {
        corpus = "cache " + opts.cachePath;
        std::ifstream f(opts.cachePath);
        if (!f)
            fatal("validate: no result cache at %s",
                  opts.cachePath.c_str());
        RunCache cache(opts.cachePath);
        rows = cache.snapshot();
    }

    ValidateReport rep;
    rep.rows = rows.size();

    auto addV = [&](const std::string &key, const char *check,
                    std::string detail) {
        rep.violations.push_back({key, check, std::move(detail)});
    };
    auto addL = [&](const std::string &key, const char *check,
                    std::string detail) {
        rep.limits.push_back({key, check, std::move(detail)});
    };
    char buf[256];

    // Memoized machine configs and workload resolutions: a corpus has
    // few distinct machines and apps relative to rows.
    std::map<std::string, MachineConfig> machines;
    std::map<std::string, const Workload *> workloads;

    // Cross-row groups.
    std::map<std::string, std::vector<PolicyEntry>> policyGroups;
    std::map<std::string, std::vector<RetEntry>> retGroups;

    for (const auto &[key, row] : rows) {
        ScenarioKey k;
        if (!ScenarioKey::parse(key, k)) {
            addV(key, "key-parse", "cannot rebuild a scenario from "
                                   "this cache key");
            continue;
        }

        // ---- field sanity ------------------------------------------
        const struct
        {
            const char *name;
            double v;
            bool wantNonNeg;
        } fields[] = {
            {"execTicks", row.execTicks, true},
            {"instructions", row.instructions, true},
            {"l1", row.l1, true},
            {"l2", row.l2, true},
            {"l3", row.l3, true},
            {"dram", row.dram, true},
            {"dynamic", row.dynamic, true},
            {"leakage", row.leakage, true},
            {"refresh", row.refresh, true},
            {"core", row.core, true},
            {"net", row.net, true},
            {"dramAccesses", row.dramAccesses, true},
            {"l3Misses", row.l3Misses, true},
            {"refreshes3", row.refreshes3, true},
            {"refWbs", row.refWbs, true},
            {"refInvals", row.refInvals, true},
            {"decayed", row.decayed, true},
            {"ambientC", row.ambientC, false},
            {"maxTempC", row.maxTempC, false},
            {"requests", row.requests, true},
            {"reqP50Us", row.reqP50Us, true},
            {"reqP95Us", row.reqP95Us, true},
            {"reqP99Us", row.reqP99Us, true},
        };
        bool fieldsOk = true;
        for (const auto &f : fields) {
            if (!std::isfinite(f.v) || (f.wantNonNeg && f.v < 0)) {
                std::snprintf(buf, sizeof(buf), "%s = %g", f.name,
                              f.v);
                addV(key, "field-sane", buf);
                fieldsOk = false;
            }
        }
        if (!fieldsOk)
            continue;

        // ---- decomposition identity --------------------------------
        const double byLevel = row.l1 + row.l2 + row.l3;
        const double byComponent =
            row.dynamic + row.leakage + row.refresh;
        if (std::abs(byLevel - byComponent) >
            kIdentityTol * std::max(byLevel, 1e-30)) {
            std::snprintf(buf, sizeof(buf),
                          "l1+l2+l3 = %.17g but dyn+leak+ref = %.17g",
                          byLevel, byComponent);
            addV(key, "decomposition-identity", buf);
        }

        // ---- latency percentile ladder -----------------------------
        if (row.reqP50Us > row.reqP95Us || row.reqP95Us > row.reqP99Us)
            addV(key, "latency-ladder",
                 "p50 <= p95 <= p99 does not hold");
        if (row.requests == 0 &&
            (row.reqP50Us != 0 || row.reqP95Us != 0 ||
             row.reqP99Us != 0))
            addV(key, "latency-ladder",
                 "latency percentiles without requests");

        // ---- key/row consistency -----------------------------------
        if (std::abs(row.ambientC - k.ambientC) > 0.005 + 1e-12)
            addV(key, "key-row-consistency",
                 "row ambientC differs from the key's |amb= segment");

        // ---- SRAM rows carry no refresh ----------------------------
        if (k.config == "SRAM") {
            if (row.refresh != 0 || row.refreshes3 != 0 ||
                row.refWbs != 0 || row.refInvals != 0)
                addV(key, "sram-no-refresh",
                     "SRAM baseline row carries refresh activity");
            if (k.retentionUs != 0)
                addV(key, "sram-no-refresh",
                     "SRAM baseline row keyed with a retention");
        }

        // ---- machine + workload resolution -------------------------
        std::uint32_t cores = 16;
        bool hybrid = false;
        if (!parseMachineLabel(k.machine, cores, hybrid)) {
            addV(key, "key-parse",
                 "unknown machine label '" + k.machine + "'");
            continue;
        }
        MachineConfig *cfg = nullptr;
        if (knownConfig(k.config)) {
            std::snprintf(buf, sizeof(buf), "%s|%.17g|%.17g|%u|%d",
                          k.config.c_str(), k.retentionUs, k.ambientC,
                          cores, hybrid ? 1 : 0);
            auto [it, inserted] = machines.try_emplace(buf);
            if (inserted) {
                Scenario sc;
                sc.app = k.app;
                sc.config = k.config;
                sc.retentionUs = k.retentionUs;
                sc.ambientC = k.ambientC;
                sc.cores = cores;
                sc.hybrid = hybrid;
                it->second = sc.machine(EnergyParams::calibrated());
            }
            cfg = &it->second;
        } else {
            addV(key, "key-parse",
                 "unknown config '" + k.config + "'");
            continue;
        }

        double cellOverSentry = 1.0;
        if (cfg != nullptr && k.config != "SRAM" &&
            cfg->llc().tech == CellTech::Edram) {
            const std::uint32_t bankLines = cfg->llc().geom.numLines();
            const double cell =
                static_cast<double>(cfg->retention.cellRetention);
            const double sentry = static_cast<double>(
                cfg->retention.sentryRetention(bankLines));
            cellOverSentry = fdiv(cell, sentry);

            // ---- LLC refresh ceiling -------------------------------
            // No engine can refresh more than every line once per
            // effective sentry period; at peak temperature the period
            // shrinks by the thermal factor.
            double eff = sentry;
            if (row.maxTempC > 0)
                eff *= cfg->retention.thermal.factorAt(row.maxTempC);
            const double l3Total = static_cast<double>(bankLines) *
                                   cfg->numBanks;
            const double ceiling =
                l3Total * (fdiv(row.execTicks, eff) + 2.0) *
                kCeilingSlack;
            if (row.refreshes3 > ceiling) {
                std::snprintf(buf, sizeof(buf),
                              "refreshes3 = %.0f exceeds the "
                              "all-lines ceiling %.0f",
                              row.refreshes3, ceiling);
                addV(key, "refresh-ceiling", buf);
            }
        }

        // ---- alternate-backend tail --------------------------------
        const double sysPrimary = row.l1 + row.l2 + row.l3 + row.dram +
                                  row.core + row.net;
        if (row.altPresent != 0) {
            ++rep.altChecked;
            const double altLevel = row.altL1 + row.altL2 + row.altL3;
            const double altComp =
                row.altDynamic + row.altLeakage + row.altRefresh;
            if (std::abs(altLevel - altComp) >
                kIdentityTol * std::max(altLevel, 1e-30))
                addV(key, "alt-decomposition-identity",
                     "alternate-backend level sums disagree with its "
                     "component sums");
            const double sysAlt = altLevel + row.altDram + row.altCore +
                                  row.altNet;
            const double hi = std::max(sysPrimary, sysAlt);
            const double dis =
                hi > 0 ? std::abs(sysPrimary - sysAlt) / hi : 0.0;
            rep.maxAltDisagreement =
                std::max(rep.maxAltDisagreement, dis);
            if (dis > kAltEnvelope) {
                std::snprintf(buf, sizeof(buf),
                              "backends disagree by %.1f%% "
                              "(envelope %.0f%%)",
                              dis * 100, kAltEnvelope * 100);
                addV(key, "alt-envelope", buf);
            }
        }

        // ---- analytic envelope -------------------------------------
        if (!k.energy.empty()) {
            addL(key, "analytic-skip",
                 "re-parameterized energy model (|en= tag); the "
                 "analytic model only knows the calibrated defaults");
        } else {
            const std::string spec =
                k.workload.empty() ? k.app : k.app + ":" + k.workload;
            auto [wit, winserted] = workloads.try_emplace(spec);
            if (winserted)
                wit->second = findWorkload(spec);
            const Workload *wl = wit->second;
            WorkloadFootprint fp;
            if (wl == nullptr) {
                addL(key, "analytic-skip",
                     "unknown workload '" + spec + "'");
            } else if (!wl->footprint(fp)) {
                addL(key, "analytic-skip",
                     "workload declares no footprint");
            } else {
                AnalyticInput in;
                in.fp = fp;
                in.execTicks = row.execTicks;
                in.instructions = row.instructions;
                in.dramAccesses = row.dramAccesses;
                in.l3Misses = row.l3Misses;
                in.ambientC = row.ambientC;
                in.maxTempC = row.maxTempC;
                const AnalyticPrediction pred =
                    analyticPredict(in, *cfg,
                                    EnergyParams::calibrated());
                const double predSys = pred.systemTotal();
                const double err =
                    predSys > 0
                        ? std::abs(sysPrimary - predSys) / predSys
                        : 1.0;
                const int cls = wl->paperClass();
                std::snprintf(buf, sizeof(buf), "%s/c%d",
                              familyOf(k.config).c_str(), cls);
                double &worst = rep.analyticErr[buf];
                worst = std::max(worst, err);
                ++rep.analyticChecked;
                const double env = analyticEnvelope(k.config, cls);
                if (err > env) {
                    std::snprintf(
                        buf, sizeof(buf),
                        "analytic model off by %.1f%% (envelope "
                        "%.0f%%, predicted %.3g J, simulated %.3g J)",
                        err * 100, env * 100, predSys, sysPrimary);
                    addV(key, "analytic-envelope", buf);
                }
            }
        }

        // ---- collect cross-row groups ------------------------------
        if (k.config != "SRAM") {
            ScenarioKey g = k;
            g.config = "*";
            policyGroups[g.str()].push_back({k.config, key,
                                             row.refresh,
                                             row.execTicks,
                                             cellOverSentry});
            g = k;
            g.retentionUs = 0;
            retGroups[g.str()].push_back(
                {k.retentionUs, key, row.refresh,
                 row.l1 + row.l2 + row.l3 + row.dram,
                 k.config.size() >= 4 &&
                     k.config.compare(k.config.size() - 4, 4,
                                      ".all") == 0});
        }
    }

    // ---- cross-row: P.all dominance and data-policy ordering -------
    for (const auto &[gid, members] : policyGroups) {
        (void)gid;
        auto find = [&](const char *cfg) -> const PolicyEntry * {
            for (const PolicyEntry &e : members)
                if (e.config == cfg)
                    return &e;
            return nullptr;
        };
        const PolicyEntry *pall = find("P.all");
        if (pall != nullptr) {
            const double pallPower =
                fdiv(pall->refreshE, pall->execTicks);
            for (const PolicyEntry &e : members) {
                if (e.config == "P.all")
                    continue;
                // Refrint configs may out-refresh P.all by up to the
                // sentry-cadence factor; periodic ones may not.
                const double allow =
                    e.config[0] == 'P' ? 1.0 : e.cellOverSentry;
                const double power = fdiv(e.refreshE, e.execTicks);
                if (power > pallPower * allow * kDominanceSlack) {
                    std::snprintf(
                        buf, sizeof(buf),
                        "%s refresh power %.3g W exceeds P.all's "
                        "%.3g W x %.2f allowance",
                        e.config.c_str(), power, pallPower,
                        allow * kDominanceSlack);
                    addV(e.key, "refresh-dominance", buf);
                }
            }
        }
        for (const char prefix : {'P', 'R'}) {
            const std::string pre(1, prefix);
            const PolicyEntry *all = find((pre + ".all").c_str());
            const PolicyEntry *valid = find((pre + ".valid").c_str());
            const PolicyEntry *dirty = find((pre + ".dirty").c_str());
            auto ordered = [&](const PolicyEntry *hi,
                              const PolicyEntry *lo) {
                if (hi == nullptr || lo == nullptr)
                    return;
                const double hiP = fdiv(hi->refreshE, hi->execTicks);
                const double loP = fdiv(lo->refreshE, lo->execTicks);
                if (loP > hiP * kOrderSlack) {
                    std::snprintf(buf, sizeof(buf),
                                  "%s refresh power %.3g W exceeds "
                                  "%s's %.3g W",
                                  lo->config.c_str(), loP,
                                  hi->config.c_str(), hiP);
                    addV(lo->key, "data-policy-order", buf);
                }
            };
            ordered(all, valid);
            ordered(valid, dirty);
        }
    }

    // ---- cross-row: monotone along the retention axis --------------
    for (auto &[gid, members] : retGroups) {
        (void)gid;
        if (members.size() < 2)
            continue;
        std::sort(members.begin(), members.end(),
                  [](const RetEntry &a, const RetEntry &b) {
                      return a.retentionUs < b.retentionUs;
                  });
        for (std::size_t i = 1; i < members.size(); ++i) {
            const RetEntry &shorter = members[i - 1];
            const RetEntry &longer = members[i];
            // ".all" refreshes a fixed population, so halving the rate
            // must cut the energy; selective policies refresh a
            // population that grows with retention, so a bounded rise
            // is expected behavior, not corruption.
            const double slack =
                longer.allPolicy ? kRetentionSlack : kSelectiveSlack;
            if (longer.refreshE >
                shorter.refreshE * slack + 1e-12) {
                std::snprintf(buf, sizeof(buf),
                              "refresh energy rose from %.3g J "
                              "(%.0f us) to %.3g J (%.0f us)",
                              shorter.refreshE, shorter.retentionUs,
                              longer.refreshE, longer.retentionUs);
                addV(longer.key, "retention-refresh-monotone", buf);
            } else if (!longer.allPolicy &&
                       longer.refreshE >
                           shorter.refreshE * kRetentionSlack + 1e-12) {
                std::snprintf(
                    buf, sizeof(buf),
                    "selective-policy refresh energy rose from %.3g J "
                    "(%.0f us) to %.3g J (%.0f us): the refreshed "
                    "population grows with retention",
                    shorter.refreshE, shorter.retentionUs,
                    longer.refreshE, longer.retentionUs);
                addL(longer.key, "retention-selective-population", buf);
            }
            if (longer.memE > shorter.memE * (1.0 + kMemLimitBand)) {
                std::snprintf(buf, sizeof(buf),
                              "memory energy rose %.1f%% from %.0f us "
                              "to %.0f us retention",
                              (fdiv(longer.memE, shorter.memE) - 1.0) *
                                  100,
                              shorter.retentionUs, longer.retentionUs);
                addV(longer.key, "retention-energy-monotone", buf);
            } else if (longer.memE > shorter.memE * (1.0 + 1e-9)) {
                std::snprintf(
                    buf, sizeof(buf),
                    "memory energy rose %.2f%% from %.0f us to "
                    "%.0f us retention (within the %.0f%% "
                    "dynamic-noise band)",
                    (fdiv(longer.memE, shorter.memE) - 1.0) * 100,
                    shorter.retentionUs, longer.retentionUs,
                    kMemLimitBand * 100);
                addL(longer.key, "retention-energy-noise", buf);
            }
        }
    }

    // ---- report ----------------------------------------------------
    std::fprintf(out,
                 "validate: %zu row(s) from %s: %zu violation(s), "
                 "%zu documented limit(s)\n",
                 rep.rows, corpus.c_str(), rep.violations.size(),
                 rep.limits.size());
    std::fprintf(out,
                 "  analytic model: %zu row(s) inside their envelope"
                 "%s\n",
                 rep.analyticChecked,
                 rep.analyticChecked > 0 ? "" : " (none applicable)");
    if (opts.verbose) {
        for (const auto &[fam, err] : rep.analyticErr)
            std::fprintf(out, "    %-16s worst %.1f%%\n", fam.c_str(),
                         err * 100);
    }
    if (rep.altChecked > 0)
        std::fprintf(out,
                     "  alternate backend: %zu row(s), max "
                     "disagreement %.1f%% (envelope %.0f%%)\n",
                     rep.altChecked, rep.maxAltDisagreement * 100,
                     kAltEnvelope * 100);
    auto printFindings = [&](const char *label,
                             const std::vector<ValidateFinding> &v) {
        if (v.empty())
            return;
        const std::size_t cap =
            opts.verbose ? v.size() : std::min(v.size(), kPrintCap);
        std::fprintf(out, "  %s:\n", label);
        for (std::size_t i = 0; i < cap; ++i)
            std::fprintf(out, "    [%s] %s\n      %s\n",
                         v[i].check.c_str(), v[i].key.c_str(),
                         v[i].detail.c_str());
        if (cap < v.size())
            std::fprintf(out, "    ... and %zu more (--verbose)\n",
                         v.size() - cap);
    };
    printFindings("violations", rep.violations);
    if (opts.verbose)
        printFindings("documented limits", rep.limits);

    // ---- JSON report -----------------------------------------------
    if (!opts.jsonOut.empty()) {
        JsonValue root = JsonValue::object();
        root.set("rows", JsonValue::number(
                             static_cast<double>(rep.rows)));
        root.set("analyticChecked",
                 JsonValue::number(
                     static_cast<double>(rep.analyticChecked)));
        root.set("altChecked",
                 JsonValue::number(
                     static_cast<double>(rep.altChecked)));
        root.set("maxAltDisagreement",
                 JsonValue::number(rep.maxAltDisagreement));
        root.set("clean", JsonValue::boolean(rep.clean()));
        auto findingArray =
            [](const std::vector<ValidateFinding> &v) {
                JsonValue arr = JsonValue::array();
                for (const ValidateFinding &f : v) {
                    JsonValue o = JsonValue::object();
                    o.set("key", JsonValue::string(f.key));
                    o.set("check", JsonValue::string(f.check));
                    o.set("detail", JsonValue::string(f.detail));
                    arr.push(std::move(o));
                }
                return arr;
            };
        root.set("violations", findingArray(rep.violations));
        root.set("limits", findingArray(rep.limits));
        JsonValue errs = JsonValue::object();
        for (const auto &[fam, err] : rep.analyticErr)
            errs.set(fam, JsonValue::number(err));
        root.set("analyticErr", std::move(errs));

        std::ofstream jf(opts.jsonOut, std::ios::trunc);
        if (!jf)
            fatal("validate: cannot write JSON report to %s",
                  opts.jsonOut.c_str());
        jf << root.dump(2) << "\n";
        if (!jf.good())
            fatal("validate: short write to %s", opts.jsonOut.c_str());
    }

    if (reportOut != nullptr)
        *reportOut = std::move(rep);
    return reportOut != nullptr
               ? (reportOut->clean() ? 0 : 1)
               : (rep.clean() ? 0 : 1);
}

} // namespace refrint
