/**
 * @file
 * Corpus-wide invariant checker behind `refrint validate`.
 *
 * Streams every row out of a result corpus (legacy single-file cache
 * or sharded store), rebuilds each row's scenario from its key, and
 * checks two kinds of facts:
 *
 *  - row-local invariants: finite/non-negative fields, the per-level
 *    vs. per-component decomposition identity, monotone latency
 *    percentile ladders, SRAM rows carrying no refresh, the LLC
 *    refresh count staying under the all-lines x periods ceiling of
 *    its sentry cadence, the alternate-backend tail agreeing with the
 *    primary within its envelope, and the analytic predictor's
 *    system-energy envelope (validate/analytic_model.hh);
 *  - cross-row invariants over scenario groups: P.all carrying the
 *    maximum refresh power of its group (up to the documented
 *    sentry-margin cadence factor for Refrint rows), refresh energy
 *    non-increasing from All to Valid to Dirty data policies, and
 *    energy monotone along the retention axis.
 *
 * Findings are classified into *violations* (bugs: the corpus or the
 * simulator is wrong) and *documented model limits* (expected residual
 * disagreement, e.g. small total-energy inversions along the retention
 * axis where dynamic-energy noise outweighs the refresh delta).  Exit
 * contract: 0 = clean, 1 = violations (or an unreadable corpus, via
 * fatal), 2 = usage error (CLI layer).  The optional JSON report makes
 * the same facts machine-readable for CI.
 */

#ifndef REFRINT_VALIDATE_VALIDATE_HH
#define REFRINT_VALIDATE_VALIDATE_HH

#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace refrint
{

struct ValidateOptions
{
    std::string cachePath; ///< legacy cache file ("" = not used)
    std::string storeDir;  ///< sharded store directory ("" = not used)
    std::string jsonOut;   ///< JSON report path ("" = none)
    bool verbose = false;  ///< list every finding, not just a summary
    std::FILE *out = nullptr; ///< defaults to stdout
};

/** One finding: a key, the check that fired, and the evidence. */
struct ValidateFinding
{
    std::string key;
    std::string check;
    std::string detail;
};

struct ValidateReport
{
    std::size_t rows = 0;            ///< rows in the corpus
    std::size_t analyticChecked = 0; ///< rows with an analytic estimate
    std::size_t altChecked = 0;      ///< rows carrying the alt backend
    std::vector<ValidateFinding> violations;
    std::vector<ValidateFinding> limits; ///< documented model limits

    /** Max relative analytic error seen per scenario family
     *  ("P.all/c1", ...), for envelope calibration and the report. */
    std::map<std::string, double> analyticErr;

    /** Max primary-vs-alternate disagreement seen. */
    double maxAltDisagreement = 0;

    bool clean() const { return violations.empty(); }
};

/**
 * Run every check over the corpus named by @p opts.  Prints a summary
 * (and with verbose every finding) to opts.out, writes the JSON report
 * when requested, and returns the exit code: 0 clean, 1 violations.
 * Fatal (exit 1) when the corpus or the report path is unusable.
 * Exactly one of cachePath / storeDir must be set (the CLI enforces
 * this as a usage error before calling).
 */
int runValidate(const ValidateOptions &opts,
                ValidateReport *reportOut = nullptr);

} // namespace refrint

#endif // REFRINT_VALIDATE_VALIDATE_HH
