#include "validate/energy_alt.hh"

#include <algorithm>

namespace refrint
{

EnergyBreakdown
computeEnergyAlt(const AltEnergyParams &p, const HierarchyCounts &n,
                 const MachineConfig &cfg, Tick execTicks,
                 std::uint64_t totalInstrs)
{
    EnergyBreakdown e;
    const double sec = ticksToSeconds(execTicks);

    auto ratio = [&](CellTech t) {
        return t == CellTech::Edram ? p.edramLeakRatio : 1.0;
    };
    auto offFraction = [&](double offLineTicks, double lines) {
        if (execTicks == 0 || lines <= 0)
            return 0.0;
        const double denom = lines * static_cast<double>(execTicks);
        return std::min(1.0, offLineTicks / denom);
    };

    double l1UnitsPerCore = 0.0;
    for (const CacheLevelSpec &l : cfg.levels) {
        if (l.role == LevelRole::IL1 || l.role == LevelRole::DL1)
            l1UnitsPerCore += 1.0;
    }
    const CacheLevelSpec &l1Spec = cfg.il1();
    const CacheLevelSpec &l2Spec = cfg.l2();
    const CacheLevelSpec &llcSpec = cfg.llc();

    const double eL1Write = p.eL1Read * p.writeFactor;
    const double eL2Write = p.eL2Read * p.writeFactor;
    const double eL3Write = p.eL3Read * p.writeFactor;

    // Dynamic: reads and writes priced separately.
    e.l1Dyn = static_cast<double>(n.l1Reads) * p.eL1Read +
              static_cast<double>(n.l1Writes) * eL1Write;
    e.l2Dyn = static_cast<double>(n.l2Reads) * p.eL2Read +
              static_cast<double>(n.l2Writes) * eL2Write;
    e.l3Dyn = static_cast<double>(n.l3Reads) * p.eL3Read +
              static_cast<double>(n.l3Writes) * eL3Write;

    // Refresh: a read + restore, charged at the write energy.
    e.l1Ref = static_cast<double>(n.l1Refreshes) * eL1Write;
    e.l2Ref = static_cast<double>(n.l2Refreshes) * eL2Write;
    e.l3Ref = static_cast<double>(n.l3Refreshes) * eL3Write;

    // Leakage: W/KB x capacity, discounted by decay-gated OFF time
    // exactly as the primary model does.
    const double kb = 1.0 / 1024.0;
    const double l1Kb = static_cast<double>(l1Spec.geom.sizeBytes) * kb *
                        l1UnitsPerCore * cfg.numCores;
    const double l2Kb = static_cast<double>(l2Spec.geom.sizeBytes) * kb *
                        cfg.numCores;
    const double l3Kb = static_cast<double>(llcSpec.geom.sizeBytes) * kb *
                        cfg.numBanks;
    const double l2Lines =
        static_cast<double>(l2Spec.geom.numLines()) * cfg.numCores;
    const double l3Lines =
        static_cast<double>(llcSpec.geom.numLines()) * cfg.numBanks;

    e.l1Leak = p.leakL1PerKb * l1Kb * ratio(l1Spec.tech) * sec;
    e.l2Leak = p.leakL2PerKb * l2Kb * ratio(l2Spec.tech) * sec *
               (1.0 - offFraction(n.l2OffLineTicks, l2Lines));
    e.l3Leak = p.leakL3PerKb * l3Kb * ratio(llcSpec.tech) * sec *
               (1.0 - offFraction(n.l3OffLineTicks, l3Lines));

    e.l1 = e.l1Dyn + e.l1Ref + e.l1Leak;
    e.l2 = e.l2Dyn + e.l2Ref + e.l2Leak;
    e.l3 = e.l3Dyn + e.l3Ref + e.l3Leak;
    e.dram = static_cast<double>(n.dramAccesses) * p.eDramAccess +
             p.dramBackgroundW * sec;

    e.dynamic = e.l1Dyn + e.l2Dyn + e.l3Dyn;
    e.leakage = e.l1Leak + e.l2Leak + e.l3Leak;
    e.refresh = e.l1Ref + e.l2Ref + e.l3Ref;

    e.core = p.eCorePerInstr * static_cast<double>(totalInstrs) +
             p.coreStaticW * cfg.numCores * sec;
    // Flit-hops: total hops spread over the message mix, each message
    // paying its flit count per hop traversed.
    const double msgs = static_cast<double>(n.netDataMsgs) +
                        static_cast<double>(n.netCtrlMsgs);
    const double avgHops =
        msgs > 0 ? static_cast<double>(n.netHops) / msgs : 0.0;
    e.net = p.eNetPerFlitHop * avgHops *
            (static_cast<double>(n.netDataMsgs) * p.flitsPerDataMsg +
             static_cast<double>(n.netCtrlMsgs) * p.flitsPerCtrlMsg);
    return e;
}

} // namespace refrint
