/**
 * @file
 * Experiment runner: executes one (workload x machine configuration)
 * run and collects everything the paper's tables and figures need.
 */

#ifndef REFRINT_HARNESS_RUNNER_HH
#define REFRINT_HARNESS_RUNNER_HH

#include <cstdint>
#include <string>

#include "coherence/hierarchy.hh"
#include "energy/energy_model.hh"
#include "system/cmp_system.hh"
#include "workload/workload.hh"

namespace refrint
{

/** Everything measured in one run. */
struct RunResult
{
    std::string app;
    std::string config; ///< "SRAM" or the policy name, e.g. "R.WB(32,32)"

    /** Machine label (MachineConfig::machineId): empty for the paper's
     *  default 16-core machine, "c32" / "hyb" / ... otherwise. */
    std::string machine;

    double retentionUs = 0;

    /** Thermal scenario: ambient temperature in deg C, or 0 when the
     *  thermal subsystem was disabled (the paper's isothermal setup). */
    double ambientC = 0;

    /** Hottest node temperature reached (deg C); 0 when disabled. */
    double maxTempC = 0;

    Tick execTicks = 0;
    std::uint64_t instructions = 0;

    /** Request-serving workloads only: completed request count and
     *  nearest-rank latency percentiles in microseconds (all zero for
     *  workloads without request structure). */
    double requests = 0;
    double reqP50Us = 0;
    double reqP95Us = 0;
    double reqP99Us = 0;

    EnergyBreakdown energy;
    HierarchyCounts counts;

    /** Second opinion from the alternate energy backend
     *  (src/validate/energy_alt.hh), present when the run's
     *  EnergyParams selected it (altModel != 0).  Fresh runs carry the
     *  full matrix; cache reloads carry aggregates only. */
    EnergyBreakdown alt;
    bool hasAlt = false;
};

/** Symmetric relative disagreement between the two backends' system
 *  totals: |a - b| / max(a, b), in [0, 1]; 0 when either is zero. */
double energyDisagreement(const RunResult &r);

/** Normalized (to the full-SRAM run of the same app) view of a run. */
struct NormalizedResult
{
    std::string app;
    std::string config;
    std::string machine; ///< "" = the default 16-core machine
    double retentionUs = 0;
    double ambientC = 0; ///< 0 = thermal subsystem disabled
    double maxTempC = 0;

    double time = 1.0;      ///< exec time / SRAM exec time
    double memEnergy = 1.0; ///< memory energy / SRAM memory energy
    double sysEnergy = 1.0; ///< system energy / SRAM system energy

    // Fractions of SRAM *memory* energy, stackable as in Figs. 6.1/6.2.
    double l1 = 0, l2 = 0, l3 = 0, dram = 0;
    double dynamic = 0, leakage = 0, refresh = 0;
};

/** Run @p app on @p cfg and collect the result.  @p arena, when
 *  non-null, backs the run's simulator allocations (recycled by sweep
 *  workers; see common/arena.hh). */
RunResult runOnce(const MachineConfig &cfg, const Workload &app,
                  const SimParams &params,
                  const EnergyParams &energy = EnergyParams::calibrated(),
                  Arena *arena = nullptr);

/**
 * Whether @p base can serve as a normalization baseline: nonzero
 * execution time and nonzero memory/system energy.  A degenerate
 * baseline (e.g. a zero-reference run) would turn every normalized row
 * into silent inf/NaN.
 */
bool usableBaseline(const RunResult &base);

/** Normalize @p r against the matching SRAM baseline run @p base.
 *  Panics if @p base is degenerate — check usableBaseline() to skip
 *  instead. */
NormalizedResult normalize(const RunResult &r, const RunResult &base);

} // namespace refrint

#endif // REFRINT_HARNESS_RUNNER_HH
