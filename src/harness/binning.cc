#include "harness/binning.hh"

#include <map>
#include <unordered_set>

#include "harness/runner.hh"
#include "system/cmp_system.hh"

namespace refrint
{

BinningMeasurement
measureBinning(const Workload &app, const BinningThresholds &thr)
{
    BinningMeasurement m;
    const HierarchyConfig cfg = HierarchyConfig::paperSram();

    // ---- Footprint: walk the streams, count unique lines ----
    std::unordered_set<Addr> lines;
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        auto stream = app.makeStream(c, cfg.numCores, /*seed=*/1);
        for (std::uint64_t i = 0; i < thr.footprintRefs; ++i)
            lines.insert(stream->next().addr >> 6);
    }
    m.footprintBytes = static_cast<double>(lines.size()) * 64.0;
    const double l3Bytes = static_cast<double>(cfg.l3Bank.sizeBytes) *
                           cfg.numBanks;
    m.largeFootprint = m.footprintBytes > thr.footprintFraction * l3Bytes;

    // ---- Visibility: short SRAM run; count L3-bound write-backs ----
    SimParams sim;
    sim.refsPerCore = thr.visibilityRefs;
    CmpSystem sys(cfg, app, sim);
    sys.run();
    std::map<std::string, double> stats;
    sys.hierarchy().dumpStats(stats);
    // L3 data writes that are not fills are dirty write-backs and owner
    // interventions — exactly the activity the LLC can "see" (§3.3).
    const double wb = stats["l3.writes"] - stats["l3.fills"];
    const double kiloInstr =
        static_cast<double>(sys.totalInstructions()) / 1000.0;
    m.writebacksPerKiloInstr = kiloInstr > 0 ? wb / kiloInstr : 0.0;
    m.highVisibility =
        m.writebacksPerKiloInstr > thr.writebacksPerKiloInstr;

    if (m.largeFootprint)
        m.measuredClass = 1; // the paper finds no large/low-vis apps
    else
        m.measuredClass = m.highVisibility ? 2 : 3;
    return m;
}

} // namespace refrint
