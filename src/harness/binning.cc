#include "harness/binning.hh"

#include <map>
#include <unordered_set>

#include "harness/runner.hh"
#include "system/cmp_system.hh"

namespace refrint
{

BinningMeasurement
measureBinning(const Workload &app, const BinningThresholds &thr,
               const MachineConfig &cfg)
{
    BinningMeasurement m;

    // ---- Footprint: walk the streams, count unique lines ----
    // Line granularity and LLC capacity come from the machine config,
    // not from a hardwired Table 5.1 shape.
    const unsigned lineBits = cfg.llc().geom.lineBits();
    const double lineBytes =
        static_cast<double>(cfg.llc().geom.lineSize);
    std::unordered_set<Addr> lines;
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        auto stream = app.makeStream(c, cfg.numCores, /*seed=*/1);
        for (std::uint64_t i = 0; i < thr.footprintRefs; ++i)
            lines.insert(stream->next().addr >> lineBits);
    }
    m.footprintBytes = static_cast<double>(lines.size()) * lineBytes;
    const double llcBytes = static_cast<double>(cfg.llcBytes());
    m.largeFootprint =
        m.footprintBytes > thr.footprintFraction * llcBytes;

    // ---- Visibility: short SRAM run; count LLC-bound write-backs ----
    // The paper's Table 6.1 methodology measures visibility on the
    // plain SRAM machine: force the given machine's technology to SRAM
    // (and drop refresh-dependent subsystems) so an eDRAM or hybrid
    // cfg still yields the undisturbed write-back rate.
    MachineConfig sramCfg = cfg;
    sramCfg.setTech(CellTech::Sram);
    sramCfg.thermal.enabled = false;
    sramCfg.decay.enabled = false;
    SimParams sim;
    sim.refsPerCore = thr.visibilityRefs;
    CmpSystem sys(sramCfg, app, sim);
    sys.run();
    std::map<std::string, double> stats;
    sys.hierarchy().dumpStats(stats);
    // LLC data writes that are not fills are dirty write-backs and
    // owner interventions — exactly the activity the LLC can "see"
    // (§3.3).  Stat keys derive from the LLC descriptor's name.
    const std::string llcName = cfg.llc().name;
    const double wb =
        stats[llcName + ".writes"] - stats[llcName + ".fills"];
    const double kiloInstr =
        static_cast<double>(sys.totalInstructions()) / 1000.0;
    m.writebacksPerKiloInstr = kiloInstr > 0 ? wb / kiloInstr : 0.0;
    m.highVisibility =
        m.writebacksPerKiloInstr > thr.writebacksPerKiloInstr;

    if (m.largeFootprint)
        m.measuredClass = 1; // the paper finds no large/low-vis apps
    else
        m.measuredClass = m.highVisibility ? 2 : 3;
    return m;
}

} // namespace refrint
