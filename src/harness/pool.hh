/**
 * @file
 * A small thread pool for the sweep harness.
 *
 * Tasks are pulled from a shared queue by whichever worker is free
 * (dynamic load balancing), so long simulations do not serialize behind
 * short ones.  parallelFor() is the only entry point the harness needs:
 * it runs indices [0, n) across up to @p jobs workers and returns when
 * every index has been processed.  With jobs <= 1 it degenerates to a
 * plain loop on the calling thread, so the serial path stays exactly
 * the serial path.
 */

#ifndef REFRINT_HARNESS_POOL_HH
#define REFRINT_HARNESS_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace refrint
{

/**
 * Resolve a worker count: an explicit @p jobs > 0 wins, otherwise
 * $REFRINT_JOBS (strictly parsed), otherwise 1.
 */
unsigned resolveJobs(unsigned jobs = 0);

class ThreadPool
{
  public:
    /** Spawn @p workers threads (at least one). */
    explicit ThreadPool(unsigned workers);

    /** Waits for queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task; any free worker may claim it. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished running. */
    void wait();

    unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  private:
    void workerLoop();

    std::mutex mu_;
    std::condition_variable hasWork_;
    std::condition_variable allDone_;
    std::queue<std::function<void()>> queue_;
    std::vector<std::thread> threads_;
    std::size_t inFlight_ = 0; ///< queued + currently executing
    bool stop_ = false;
};

/**
 * Run @p fn(i) for every i in [0, n) on up to @p jobs threads.
 * Indices are claimed dynamically, so completion order is arbitrary —
 * callers must write results into per-index slots to stay
 * deterministic.  jobs <= 1 runs inline on the calling thread.
 */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &fn);

/**
 * Like parallelFor, but @p fn also receives a stable worker id in
 * [0, jobs): every invocation on the same thread sees the same id, so
 * callers can give each worker private scratch state (arenas, memo
 * caches) without locking.  jobs <= 1 runs inline with worker id 0.
 */
void parallelForWorkers(
    std::size_t n, unsigned jobs,
    const std::function<void(std::size_t, unsigned)> &fn);

} // namespace refrint

#endif // REFRINT_HARNESS_POOL_HH
