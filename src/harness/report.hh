/**
 * @file
 * Text renderers for the paper's tables and figures.  Each bench binary
 * calls one of these to print the rows/series the corresponding figure
 * plots (normalized to full-SRAM, exactly as the paper's Y axes are).
 */

#ifndef REFRINT_HARNESS_REPORT_HH
#define REFRINT_HARNESS_REPORT_HH

#include <cstdio>
#include <string>
#include <vector>

#include "api/result_sink.hh"
#include "harness/sweep.hh"

namespace refrint
{

/** Names of apps in one paper class ("" filter = all). */
std::vector<std::string> classAppNames(int paperClass);

/** Fig. 6.1: L1/L2/L3/DRAM stacked energy, averaged over all apps. */
void printFig61(const SweepResult &s, std::FILE *out = stdout);

/** Fig. 6.2: dynamic/leakage/refresh/DRAM energy, one block per class
 *  (1..3) plus the all-apps average (classFilter 0). */
void printFig62(const SweepResult &s, int classFilter,
                std::FILE *out = stdout);

/** Fig. 6.3: normalized total system energy (class 1 and all). */
void printFig63(const SweepResult &s, int classFilter,
                std::FILE *out = stdout);

/** Fig. 6.4: normalized execution time (class 1 and all). */
void printFig64(const SweepResult &s, int classFilter,
                std::FILE *out = stdout);

/** Table 6.1: measured application binning vs the paper's. */
void printBinning(std::FILE *out = stdout);

/** Abstract/§6 headline numbers: P.all and R.WB(32,32) at 50 us. */
void printHeadline(const SweepResult &s, std::FILE *out = stdout);

/** Thermal-study table: one row per (ambient, policy) of a sweep run
 *  with a non-empty ambient axis (see refrint_cli thermal-study). */
void printThermalStudy(const SweepResult &s, const char *appName,
                       double retentionUs, std::FILE *out = stdout);

/** Tail-latency table: one row per run with request structure
 *  (requests > 0).  Prints nothing — not even a header — when no run
 *  has requests, so attaching it to a legacy sweep is output-neutral. */
void printLatencyTable(const SweepResult &s, std::FILE *out = stdout);

/** Cross-backend disagreement table: one row per run carrying the
 *  alternate energy estimate (hasAlt), with both system totals and the
 *  relative disagreement.  Prints nothing when no run has the alternate
 *  backend, so attaching it to a default sweep is output-neutral. */
void printDisagreement(const SweepResult &s, std::FILE *out = stdout);

// ---------------------------------------------------------------------
// The renderers as ResultSink implementations: attach them to
// Session::run() to turn a plan execution into the paper's tables.
// Each fires in end(), over the complete aggregate; none owns its
// stream.
// ---------------------------------------------------------------------

/** The abstract/§6 headline table (printHeadline). */
class HeadlineSink : public ResultSink
{
  public:
    explicit HeadlineSink(std::FILE *out = stdout) : out_(out) {}
    void
    end(const ExperimentPlan &, const SweepResult &s) override
    {
        printHeadline(s, out_);
    }

  private:
    std::FILE *out_;
};

/** Figs. 6.1-6.4 in paper order (printFig61..printFig64). */
class FiguresSink : public ResultSink
{
  public:
    explicit FiguresSink(std::FILE *out = stdout) : out_(out) {}
    void end(const ExperimentPlan &, const SweepResult &s) override;

  private:
    std::FILE *out_;
};

/** The thermal-study table (printThermalStudy) for one app/retention. */
class ThermalStudySink : public ResultSink
{
  public:
    ThermalStudySink(std::string appName, double retentionUs,
                     std::FILE *out = stdout)
        : app_(std::move(appName)), retentionUs_(retentionUs), out_(out)
    {
    }
    void
    end(const ExperimentPlan &, const SweepResult &s) override
    {
        printThermalStudy(s, app_.c_str(), retentionUs_, out_);
    }

  private:
    std::string app_;
    double retentionUs_;
    std::FILE *out_;
};

/** The tail-latency table (printLatencyTable); silent when the plan
 *  held no request-serving workloads. */
class LatencySink : public ResultSink
{
  public:
    explicit LatencySink(std::FILE *out = stdout) : out_(out) {}
    void
    end(const ExperimentPlan &, const SweepResult &s) override
    {
        printLatencyTable(s, out_);
    }

  private:
    std::FILE *out_;
};

/** The cross-backend disagreement table (printDisagreement); silent
 *  when the plan ran the default energy model only. */
class DisagreementSink : public ResultSink
{
  public:
    explicit DisagreementSink(std::FILE *out = stdout) : out_(out) {}
    void
    end(const ExperimentPlan &, const SweepResult &s) override
    {
        printDisagreement(s, out_);
    }

  private:
    std::FILE *out_;
};

/** Table 6.1 (printBinning): measures directly, needs no scenarios —
 *  pair with ExperimentPlan::binning(). */
class BinningSink : public ResultSink
{
  public:
    explicit BinningSink(std::FILE *out = stdout) : out_(out) {}
    void
    end(const ExperimentPlan &, const SweepResult &) override
    {
        printBinning(out_);
    }

  private:
    std::FILE *out_;
};

} // namespace refrint

#endif // REFRINT_HARNESS_REPORT_HH
