/**
 * @file
 * Application binning (Table 6.1): classify an application along the
 * two axes of Fig. 3.1 — data footprint relative to the last-level
 * cache and LLC "visibility" of upper-level activity.
 *
 * Footprint is measured by walking the reference streams directly
 * (unique lines touched); visibility by a short SRAM simulation that
 * counts dirty write-backs and owner interventions arriving at L3.
 */

#ifndef REFRINT_HARNESS_BINNING_HH
#define REFRINT_HARNESS_BINNING_HH

#include <cstdint>

#include "config/machine_config.hh"
#include "workload/workload.hh"

namespace refrint
{

struct BinningMeasurement
{
    double footprintBytes = 0;
    double writebacksPerKiloInstr = 0;
    bool largeFootprint = false;
    bool highVisibility = false;
    int measuredClass = 0;
};

/** Classification thresholds (documented in DESIGN.md). */
struct BinningThresholds
{
    /** Footprint is "large" above this fraction of total L3 bytes. */
    double footprintFraction = 0.75;

    /** Visibility is "high" above this many L3-bound write-backs per
     *  thousand instructions.  Calibrated on the paper suite: the
     *  low-visibility Class 3 apps measure 0.3-1.3, the sharing-heavy
     *  Class 1/2 apps 5.7-28 — the threshold sits in the gap. */
    double writebacksPerKiloInstr = 2.0;

    /** Stream length per core for the footprint walk. */
    std::uint64_t footprintRefs = 120'000;

    /** Refs per core for the visibility simulation. */
    std::uint64_t visibilityRefs = 30'000;
};

/**
 * Classify @p app on @p cfg's machine.  Footprint is judged against
 * the configured machine's LLC capacity (cfg.llcBytes()) and line
 * size — a 32-core machine doubles the LLC, so an application that is
 * Class 1 (large-footprint) on the paper's 16 MB machine can bin as
 * Class 2/3 on a larger one.
 */
BinningMeasurement measureBinning(
    const Workload &app, const BinningThresholds &thr = {},
    const MachineConfig &cfg = MachineConfig::paperSram());

} // namespace refrint

#endif // REFRINT_HARNESS_BINNING_HH
