/**
 * @file
 * The paper's full parameter sweep (Table 5.4): 3 retention times x
 * {Periodic, Refrint} x {All, Valid, Dirty, WB(4,4), WB(8,8),
 * WB(16,16), WB(32,32)} per application, plus one SRAM baseline run per
 * application — 43 runs per app.
 *
 * A sweep is expensive (473 simulations at full size), so results are
 * cached in a CSV file keyed by every parameter that affects them; all
 * figure benches share the cache, and re-running a bench is free.
 */

#ifndef REFRINT_HARNESS_SWEEP_HH
#define REFRINT_HARNESS_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace refrint
{

/** The paper's seven data policies for one timing policy. */
std::vector<RefreshPolicy> paperDataPolicies(TimePolicy t);

/** All 14 timing x data combinations, Periodic first (plot order). */
std::vector<RefreshPolicy> paperPolicySweep();

/** The paper's three retention times, in ticks. */
std::vector<Tick> paperRetentions();

/**
 * One point on the sweep's machine axis: the paper machine scaled to
 * @p cores cores, either uniformly eDRAM (policy swept at the LLC) or
 * hybrid (SRAM L1/L2 over the eDRAM LLC).  The SRAM normalization
 * baseline is always the all-SRAM machine at the same core count.
 */
struct MachineAxis
{
    std::uint32_t cores = 16;
    bool hybrid = false;

    bool
    isDefault() const
    {
        return cores == 16 && !hybrid;
    }
};

struct SweepSpec
{
    std::vector<const Workload *> apps; ///< defaults to all 11
    std::vector<Tick> retentions;       ///< defaults to 50/100/200 us
    std::vector<RefreshPolicy> policies; ///< defaults to all 14
    SimParams sim;
    EnergyParams energy = EnergyParams::calibrated();

    /**
     * Machines to sweep.  Empty (the default) runs the paper's
     * 16-core machine — exactly the legacy sweep, byte for byte; its
     * cache rows keep their legacy keys.  Non-default machines key
     * their rows with an extra "|mach=" segment, so they can never
     * collide with (or be satisfied by) a default-machine row.
     */
    std::vector<MachineAxis> machines;

    /**
     * Ambient temperatures (deg C) for the thermal subsystem.  Empty
     * (the default) runs the paper's isothermal machine — exactly the
     * legacy sweep, byte for byte.  Non-empty adds ambient as an outer
     * scenario axis: every (retention x policy) point is simulated once
     * per ambient with activity-driven bank temperatures enabled.  The
     * SRAM baseline is never thermal (SRAM retention is unlimited).
     */
    std::vector<double> ambients;

    /**
     * Worker threads for the sweep: each (app, policy, retention) run
     * simulates on its own thread with its own CmpSystem/EventQueue.
     * 0 means $REFRINT_JOBS, or serial if that is unset.  Results are
     * bit-identical to jobs=1 (same per-run PRNG seeds; collected in
     * spec order regardless of completion order).
     */
    unsigned jobs = 0;

    /** Fill any empty field with the paper defaults; read environment
     *  overrides (REFRINT_REFS, REFRINT_APPS, REFRINT_JOBS). */
    void finalize();
};

/**
 * Observability counters for one plan execution, filled by
 * Session::run() and carried on SweepResult so every consumer — the
 * sweep CLI's progress summary, `refrint serve`'s per-request metrics,
 * embedding code — reports the same numbers instead of ad-hoc log
 * lines.
 */
struct RunMetrics
{
    std::size_t scenarios = 0; ///< rows in the plan
    std::size_t simulated = 0; ///< executed fresh (store misses)
    std::size_t cacheHits = 0; ///< answered from the result store
    std::size_t skipped = 0;   ///< abandoned: run deadline expired
                               ///< before these scenarios started
    double wallSeconds = 0;    ///< plan wall time
    double busySeconds = 0;    ///< summed per-scenario wall time
    unsigned jobs = 1;         ///< worker threads used

    /** Fraction of worker capacity kept busy (1.0 = perfect). */
    double
    utilization() const
    {
        return wallSeconds > 0 && jobs > 0
                   ? busySeconds / (wallSeconds * jobs)
                   : 0.0;
    }
};

/** One app's SRAM baseline plus all its policy runs, normalized. */
struct SweepResult
{
    std::vector<RunResult> raw;             ///< includes SRAM baselines
    std::vector<NormalizedResult> normalized;

    /** Simulations actually executed (cache misses); a warm-cache
     *  sweep reports 0. */
    std::size_t simulations = 0;

    /** Run observability counters (see RunMetrics). */
    RunMetrics metrics;

    /**
     * Mean of @p field over the normalized rows matching the filter
     * (retention in us; empty app list = all apps).  The mean never
     * silently pools across machines: if the matching rows span more
     * than one machine this is fatal — name the machine with the
     * overload below, or pool explicitly via averagePooled().
     */
    double average(double retentionUs, const std::string &config,
                   const std::vector<std::string> &apps,
                   double NormalizedResult::*field) const;

    /** The mean restricted to one machine ("" = the default 16-core
     *  machine). */
    double average(double retentionUs, const std::string &config,
                   const std::vector<std::string> &apps,
                   double NormalizedResult::*field,
                   const std::string &machine) const;

    /** Explicitly opt into pooling every machine's rows into one
     *  mean (the pre-PR-5 behavior of average()). */
    double averagePooled(double retentionUs, const std::string &config,
                         const std::vector<std::string> &apps,
                         double NormalizedResult::*field) const;

    /**
     * Locate a row by (app, retention, config).  retentionUs <= 0
     * matches any retention.  Never silently guesses across the
     * machine/ambient axes: when matching rows disagree on machine or
     * ambient, this is fatal — use the full-identity overload.
     */
    const NormalizedResult *find(const std::string &app,
                                 double retentionUs,
                                 const std::string &config) const;

    /** Locate a row by its full scenario identity ("" = the default
     *  machine, ambientC 0 = the isothermal rows). */
    const NormalizedResult *find(const std::string &app,
                                 double retentionUs,
                                 const std::string &config,
                                 const std::string &machine,
                                 double ambientC = 0.0) const;
};

/** Cache location: $REFRINT_CACHE or ./refrint_sweep_cache.csv. */
std::string defaultCachePath();

/**
 * Run (or load from cache) the sweep described by @p spec.  A thin
 * wrapper over the experiment API: the spec flattens into an
 * ExperimentPlan (api/experiment_plan.hh) and executes through a
 * Session (api/session.hh); output is byte-identical to the historic
 * Cartesian sweep loop.
 * @param cachePath  CSV cache location; empty disables caching.
 */
SweepResult runSweep(SweepSpec spec,
                     const std::string &cachePath = defaultCachePath());

} // namespace refrint

#endif // REFRINT_HARNESS_SWEEP_HH
