#include "harness/report.hh"

#include <algorithm>

#include "harness/binning.hh"

namespace refrint
{

std::vector<std::string>
classAppNames(int paperClass)
{
    std::vector<std::string> names;
    if (paperClass == 0)
        return names; // empty = all apps
    for (const Workload *w : workloadsOfClass(paperClass))
        names.emplace_back(w->name());
    return names;
}

namespace
{

void
printBarHeader(std::FILE *out)
{
    std::fprintf(out, "%-6s %-12s", "ret", "policy");
}

const char *
classLabel(int classFilter)
{
    switch (classFilter) {
      case 1:
        return "class1";
      case 2:
        return "class2";
      case 3:
        return "class3";
      default:
        return "all";
    }
}

/** Distinct machine labels of a result set, in row order.  A default
 *  sweep yields exactly {""}, so single-machine output is unchanged. */
std::vector<std::string>
machinesOf(const SweepResult &s)
{
    std::vector<std::string> machines;
    for (const NormalizedResult &r : s.normalized) {
        if (std::find(machines.begin(), machines.end(), r.machine) ==
            machines.end())
            machines.push_back(r.machine);
    }
    if (machines.empty())
        machines.push_back("");
    return machines;
}

/** Announce the machine a table block belongs to — only in the
 *  multi-machine case, so single-machine output stays byte-identical
 *  to the legacy renderers. */
void
printMachineHeading(const std::vector<std::string> &machines,
                    const std::string &machine, std::FILE *out)
{
    if (machines.size() < 2)
        return;
    std::fprintf(out, "# machine: %s\n",
                 machine.empty() ? "default" : machine.c_str());
}

/**
 * One policy-grid table per machine in the result set.  @p rowFn
 * fills one row: (retentionUs, configName, apps, machine).
 */
template <typename RowFn>
void
printPolicyTable(const SweepResult &s, int classFilter, std::FILE *out,
                 const char *cols, RowFn &&rowFn)
{
    const std::vector<std::string> apps = classAppNames(classFilter);
    const std::vector<std::string> machines = machinesOf(s);
    for (const std::string &machine : machines) {
        printMachineHeading(machines, machine, out);
        printBarHeader(out);
        std::fprintf(out, " %s\n", cols);
        for (Tick ret : paperRetentions()) {
            const double retUs = static_cast<double>(ret) / 1e3;
            for (const RefreshPolicy &pol : paperPolicySweep()) {
                std::fprintf(out, "%-6.0f %-12s", retUs,
                             pol.name().c_str());
                rowFn(retUs, pol.name(), apps, machine);
                std::fprintf(out, "\n");
            }
        }
    }
}

} // namespace

void
printFig61(const SweepResult &s, std::FILE *out)
{
    std::fprintf(out,
                 "# Fig 6.1 — L1/L2/L3/DRAM energy, averaged over all "
                 "apps (normalized to full-SRAM memory energy)\n");
    printPolicyTable(
        s, 0, out, "      L1      L2      L3    DRAM   total",
        [&](double retUs, const std::string &cfg,
            const std::vector<std::string> &apps,
            const std::string &mach) {
            const double l1 =
                s.average(retUs, cfg, apps, &NormalizedResult::l1, mach);
            const double l2 =
                s.average(retUs, cfg, apps, &NormalizedResult::l2, mach);
            const double l3 =
                s.average(retUs, cfg, apps, &NormalizedResult::l3, mach);
            const double dram = s.average(retUs, cfg, apps,
                                          &NormalizedResult::dram, mach);
            std::fprintf(out, " %7.4f %7.4f %7.4f %7.4f %7.4f", l1, l2,
                         l3, dram, l1 + l2 + l3 + dram);
        });
}

void
printFig62(const SweepResult &s, int classFilter, std::FILE *out)
{
    std::fprintf(out,
                 "# Fig 6.2 [%s] — on-chip dynamic/leakage/refresh + "
                 "DRAM energy (normalized to full-SRAM memory energy)\n",
                 classLabel(classFilter));
    printPolicyTable(
        s, classFilter, out,
        "     dyn    leak refresh    DRAM   total",
        [&](double retUs, const std::string &cfg,
            const std::vector<std::string> &apps,
            const std::string &mach) {
            const double dyn = s.average(
                retUs, cfg, apps, &NormalizedResult::dynamic, mach);
            const double leak = s.average(
                retUs, cfg, apps, &NormalizedResult::leakage, mach);
            const double refr = s.average(
                retUs, cfg, apps, &NormalizedResult::refresh, mach);
            const double dram = s.average(retUs, cfg, apps,
                                          &NormalizedResult::dram, mach);
            std::fprintf(out, " %7.4f %7.4f %7.4f %7.4f %7.4f", dyn,
                         leak, refr, dram, dyn + leak + refr + dram);
        });
}

void
printFig63(const SweepResult &s, int classFilter, std::FILE *out)
{
    std::fprintf(out,
                 "# Fig 6.3 [%s] — total system energy "
                 "(normalized to full-SRAM system energy)\n",
                 classLabel(classFilter));
    printPolicyTable(
        s, classFilter, out, "  energy",
        [&](double retUs, const std::string &cfg,
            const std::vector<std::string> &apps,
            const std::string &mach) {
            std::fprintf(out, " %7.4f",
                         s.average(retUs, cfg, apps,
                                   &NormalizedResult::sysEnergy, mach));
        });
}

void
printFig64(const SweepResult &s, int classFilter, std::FILE *out)
{
    std::fprintf(out,
                 "# Fig 6.4 [%s] — execution time "
                 "(normalized to full-SRAM execution time)\n",
                 classLabel(classFilter));
    printPolicyTable(
        s, classFilter, out, "    time",
        [&](double retUs, const std::string &cfg,
            const std::vector<std::string> &apps,
            const std::string &mach) {
            std::fprintf(out, " %7.4f",
                         s.average(retUs, cfg, apps,
                                   &NormalizedResult::time, mach));
        });
}

void
printBinning(std::FILE *out)
{
    std::fprintf(out,
                 "# Table 6.1 — application binning "
                 "(footprint vs LLC, visibility at LLC)\n");
    std::fprintf(out, "%-14s %10s %12s %8s %8s %8s\n", "app",
                 "footprintMB", "wb/kinst", "meas.", "paper", "match");
    for (const Workload *w : paperWorkloads()) {
        const BinningMeasurement m = measureBinning(*w);
        std::fprintf(out, "%-14s %10.1f %12.2f %8d %8d %8s\n", w->name(),
                     m.footprintBytes / (1024.0 * 1024.0),
                     m.writebacksPerKiloInstr, m.measuredClass,
                     w->paperClass(),
                     m.measuredClass == w->paperClass() ? "yes" : "NO");
    }
}

void
printHeadline(const SweepResult &s, std::FILE *out)
{
    std::fprintf(out, "# Headline (paper abstract / §6, 50 us):\n");
    const std::vector<std::string> all;
    struct Row
    {
        const char *cfg;
        double paperMem, paperSys, paperTime;
    };
    const Row rows[] = {
        {"P.all", 0.50, 0.72, 1.18},
        {"R.WB(32,32)", 0.36, 0.61, 1.02},
    };
    const std::vector<std::string> machines = machinesOf(s);
    for (const std::string &mach : machines) {
        printMachineHeading(machines, mach, out);
        std::fprintf(out, "%-14s %10s %10s %10s %10s %10s %10s\n",
                     "config", "mem", "paperMem", "sys", "paperSys",
                     "time", "paperTime");
        for (const Row &r : rows) {
            std::fprintf(
                out,
                "%-14s %10.3f %10.2f %10.3f %10.2f %10.3f %10.2f\n",
                r.cfg,
                s.average(50.0, r.cfg, all,
                          &NormalizedResult::memEnergy, mach),
                r.paperMem,
                s.average(50.0, r.cfg, all,
                          &NormalizedResult::sysEnergy, mach),
                r.paperSys,
                s.average(50.0, r.cfg, all, &NormalizedResult::time,
                          mach),
                r.paperTime);
        }
    }
}

void
FiguresSink::end(const ExperimentPlan &, const SweepResult &s)
{
    printFig61(s, out_);
    for (int cls : {1, 2, 3, 0})
        printFig62(s, cls, out_);
    printFig63(s, 1, out_);
    printFig63(s, 0, out_);
    printFig64(s, 1, out_);
    printFig64(s, 0, out_);
}

void
printThermalStudy(const SweepResult &s, const char *appName,
                  double retentionUs, std::FILE *out)
{
    const ThermalResponse resp; // default curve (DESIGN.md)
    std::fprintf(out,
                 "# Thermal study — %s @ %.0f us nominal retention "
                 "(retention nominal at %.0f C, halving per %.0f C)\n",
                 appName, retentionUs, resp.refTempC,
                 resp.halvingCelsius);
    std::fprintf(out, "%-8s %-12s %8s %9s %9s %9s %9s\n", "ambient",
                 "policy", "peakC", "refresh", "mem", "sys", "time");
    for (const NormalizedResult &n : s.normalized) {
        std::fprintf(out, "%-8.1f %-12s %8.1f %9.4f %9.4f %9.4f %9.4f\n",
                     n.ambientC, n.config.c_str(), n.maxTempC, n.refresh,
                     n.memEnergy, n.sysEnergy, n.time);
    }
    std::fprintf(out, "(refresh/mem normalized to the full-SRAM memory "
                      "energy; sys/time to the full-SRAM run)\n");
}

void
printLatencyTable(const SweepResult &s, std::FILE *out)
{
    bool any = false;
    for (const RunResult &r : s.raw)
        any = any || r.requests > 0;
    if (!any)
        return;
    std::fprintf(out, "# Request latency (us, nearest-rank)\n");
    std::fprintf(out, "%-28s %-12s %8s %10s %9s %9s %9s\n", "app",
                 "config", "ret(us)", "requests", "p50", "p95", "p99");
    for (const RunResult &r : s.raw) {
        if (r.requests <= 0)
            continue;
        std::fprintf(out,
                     "%-28s %-12s %8.1f %10.0f %9.3f %9.3f %9.3f\n",
                     r.app.c_str(), r.config.c_str(), r.retentionUs,
                     r.requests, r.reqP50Us, r.reqP95Us, r.reqP99Us);
    }
}

void
printDisagreement(const SweepResult &s, std::FILE *out)
{
    bool any = false;
    for (const RunResult &r : s.raw)
        any = any || r.hasAlt;
    if (!any)
        return;
    std::fprintf(out, "# Cross-backend energy disagreement\n");
    std::fprintf(out, "%-28s %-12s %8s %12s %12s %8s\n", "app",
                 "config", "ret(us)", "sysJ", "altSysJ", "disagr");
    for (const RunResult &r : s.raw) {
        if (!r.hasAlt)
            continue;
        std::fprintf(out, "%-28s %-12s %8.1f %12.5g %12.5g %7.2f%%\n",
                     r.app.c_str(), r.config.c_str(), r.retentionUs,
                     r.energy.systemTotal(), r.alt.systemTotal(),
                     energyDisagreement(r) * 100.0);
    }
}

} // namespace refrint
