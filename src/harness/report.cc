#include "harness/report.hh"

#include <unordered_set>

#include "harness/binning.hh"

namespace refrint
{

std::vector<std::string>
classAppNames(int paperClass)
{
    std::vector<std::string> names;
    if (paperClass == 0)
        return names; // empty = all apps
    for (const Workload *w : workloadsOfClass(paperClass))
        names.emplace_back(w->name());
    return names;
}

namespace
{

void
printBarHeader(std::FILE *out)
{
    std::fprintf(out, "%-6s %-12s", "ret", "policy");
}

const char *
classLabel(int classFilter)
{
    switch (classFilter) {
      case 1:
        return "class1";
      case 2:
        return "class2";
      case 3:
        return "class3";
      default:
        return "all";
    }
}

template <typename RowFn>
void
printPolicyTable(const SweepResult &s, int classFilter, std::FILE *out,
                 const char *cols, RowFn &&rowFn)
{
    (void)s;
    const std::vector<std::string> apps = classAppNames(classFilter);
    printBarHeader(out);
    std::fprintf(out, " %s\n", cols);
    for (Tick ret : paperRetentions()) {
        const double retUs = static_cast<double>(ret) / 1e3;
        for (const RefreshPolicy &pol : paperPolicySweep()) {
            std::fprintf(out, "%-6.0f %-12s", retUs,
                         pol.name().c_str());
            rowFn(retUs, pol.name(), apps);
            std::fprintf(out, "\n");
        }
    }
}

} // namespace

void
printFig61(const SweepResult &s, std::FILE *out)
{
    std::fprintf(out,
                 "# Fig 6.1 — L1/L2/L3/DRAM energy, averaged over all "
                 "apps (normalized to full-SRAM memory energy)\n");
    printPolicyTable(
        s, 0, out, "      L1      L2      L3    DRAM   total",
        [&](double retUs, const std::string &cfg,
            const std::vector<std::string> &apps) {
            const double l1 =
                s.average(retUs, cfg, apps, &NormalizedResult::l1);
            const double l2 =
                s.average(retUs, cfg, apps, &NormalizedResult::l2);
            const double l3 =
                s.average(retUs, cfg, apps, &NormalizedResult::l3);
            const double dram =
                s.average(retUs, cfg, apps, &NormalizedResult::dram);
            std::fprintf(out, " %7.4f %7.4f %7.4f %7.4f %7.4f", l1, l2,
                         l3, dram, l1 + l2 + l3 + dram);
        });
}

void
printFig62(const SweepResult &s, int classFilter, std::FILE *out)
{
    std::fprintf(out,
                 "# Fig 6.2 [%s] — on-chip dynamic/leakage/refresh + "
                 "DRAM energy (normalized to full-SRAM memory energy)\n",
                 classLabel(classFilter));
    printPolicyTable(
        s, classFilter, out,
        "     dyn    leak refresh    DRAM   total",
        [&](double retUs, const std::string &cfg,
            const std::vector<std::string> &apps) {
            const double dyn =
                s.average(retUs, cfg, apps, &NormalizedResult::dynamic);
            const double leak =
                s.average(retUs, cfg, apps, &NormalizedResult::leakage);
            const double refr =
                s.average(retUs, cfg, apps, &NormalizedResult::refresh);
            const double dram =
                s.average(retUs, cfg, apps, &NormalizedResult::dram);
            std::fprintf(out, " %7.4f %7.4f %7.4f %7.4f %7.4f", dyn,
                         leak, refr, dram, dyn + leak + refr + dram);
        });
}

void
printFig63(const SweepResult &s, int classFilter, std::FILE *out)
{
    std::fprintf(out,
                 "# Fig 6.3 [%s] — total system energy "
                 "(normalized to full-SRAM system energy)\n",
                 classLabel(classFilter));
    printPolicyTable(s, classFilter, out, "  energy",
                     [&](double retUs, const std::string &cfg,
                         const std::vector<std::string> &apps) {
                         std::fprintf(
                             out, " %7.4f",
                             s.average(retUs, cfg, apps,
                                       &NormalizedResult::sysEnergy));
                     });
}

void
printFig64(const SweepResult &s, int classFilter, std::FILE *out)
{
    std::fprintf(out,
                 "# Fig 6.4 [%s] — execution time "
                 "(normalized to full-SRAM execution time)\n",
                 classLabel(classFilter));
    printPolicyTable(s, classFilter, out, "    time",
                     [&](double retUs, const std::string &cfg,
                         const std::vector<std::string> &apps) {
                         std::fprintf(
                             out, " %7.4f",
                             s.average(retUs, cfg, apps,
                                       &NormalizedResult::time));
                     });
}

void
printBinning(std::FILE *out)
{
    std::fprintf(out,
                 "# Table 6.1 — application binning "
                 "(footprint vs LLC, visibility at LLC)\n");
    std::fprintf(out, "%-14s %10s %12s %8s %8s %8s\n", "app",
                 "footprintMB", "wb/kinst", "meas.", "paper", "match");
    for (const Workload *w : paperWorkloads()) {
        const BinningMeasurement m = measureBinning(*w);
        std::fprintf(out, "%-14s %10.1f %12.2f %8d %8d %8s\n", w->name(),
                     m.footprintBytes / (1024.0 * 1024.0),
                     m.writebacksPerKiloInstr, m.measuredClass,
                     w->paperClass(),
                     m.measuredClass == w->paperClass() ? "yes" : "NO");
    }
}

void
printHeadline(const SweepResult &s, std::FILE *out)
{
    std::fprintf(out, "# Headline (paper abstract / §6, 50 us):\n");
    const std::vector<std::string> all;
    struct Row
    {
        const char *cfg;
        double paperMem, paperSys, paperTime;
    };
    const Row rows[] = {
        {"P.all", 0.50, 0.72, 1.18},
        {"R.WB(32,32)", 0.36, 0.61, 1.02},
    };
    std::fprintf(out, "%-14s %10s %10s %10s %10s %10s %10s\n", "config",
                 "mem", "paperMem", "sys", "paperSys", "time",
                 "paperTime");
    for (const Row &r : rows) {
        std::fprintf(
            out, "%-14s %10.3f %10.2f %10.3f %10.2f %10.3f %10.2f\n",
            r.cfg,
            s.average(50.0, r.cfg, all, &NormalizedResult::memEnergy),
            r.paperMem,
            s.average(50.0, r.cfg, all, &NormalizedResult::sysEnergy),
            r.paperSys,
            s.average(50.0, r.cfg, all, &NormalizedResult::time),
            r.paperTime);
    }
}

void
printThermalStudy(const SweepResult &s, const char *appName,
                  double retentionUs, std::FILE *out)
{
    const ThermalResponse resp; // default curve (DESIGN.md)
    std::fprintf(out,
                 "# Thermal study — %s @ %.0f us nominal retention "
                 "(retention nominal at %.0f C, halving per %.0f C)\n",
                 appName, retentionUs, resp.refTempC,
                 resp.halvingCelsius);
    std::fprintf(out, "%-8s %-12s %8s %9s %9s %9s %9s\n", "ambient",
                 "policy", "peakC", "refresh", "mem", "sys", "time");
    for (const NormalizedResult &n : s.normalized) {
        std::fprintf(out, "%-8.1f %-12s %8.1f %9.4f %9.4f %9.4f %9.4f\n",
                     n.ambientC, n.config.c_str(), n.maxTempC, n.refresh,
                     n.memEnergy, n.sysEnergy, n.time);
    }
    std::fprintf(out, "(refresh/mem normalized to the full-SRAM memory "
                      "energy; sys/time to the full-SRAM run)\n");
}

} // namespace refrint
