#include "harness/runner.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.hh"
#include "validate/energy_alt.hh"

namespace refrint
{

namespace
{

/** Nearest-rank percentile of a sorted sample (p in (0, 1]). */
double
percentile(const std::vector<Tick> &sorted, double p)
{
    const std::size_t n = sorted.size();
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(p * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    return static_cast<double>(sorted[std::min(rank, n) - 1]);
}

/** Fill the request-latency fields from the cores' streams (a no-op
 *  for workloads without request structure). */
void
collectLatencies(CmpSystem &sys, RunResult &r)
{
    std::vector<Tick> lat;
    for (CoreId c = 0; c < sys.numCores(); ++c) {
        const std::vector<Tick> *l =
            sys.core(c).stream().requestLatencies();
        if (l != nullptr)
            lat.insert(lat.end(), l->begin(), l->end());
    }
    if (lat.empty())
        return;
    std::sort(lat.begin(), lat.end());
    r.requests = static_cast<double>(lat.size());
    // 1 tick = 1 ns, so microseconds = ticks / 1e3.
    r.reqP50Us = percentile(lat, 0.50) / 1e3;
    r.reqP95Us = percentile(lat, 0.95) / 1e3;
    r.reqP99Us = percentile(lat, 0.99) / 1e3;
}

} // namespace

RunResult
runOnce(const MachineConfig &cfg, const Workload &app,
        const SimParams &params, const EnergyParams &energy, Arena *arena)
{
    CmpSystem sys(cfg, app, params, arena);
    sys.run();

    RunResult r;
    r.app = app.name();
    r.config = cfg.configName();
    r.machine = cfg.machineId;
    r.retentionUs = static_cast<double>(cfg.retention.cellRetention) / 1e3;
    r.execTicks = sys.execTicks();
    r.instructions = sys.totalInstructions();
    r.counts = sys.hierarchy().counts();
    collectLatencies(sys, r);
    if (const ThermalDriver *t = sys.hierarchy().thermal()) {
        r.ambientC = cfg.thermal.ambientC;
        r.maxTempC = t->maxTempC();
    }
    r.energy = computeEnergy(energy, r.counts, cfg, r.execTicks,
                             r.instructions);
    if (energy.altModel != 0) {
        r.alt = computeEnergyAlt(AltEnergyParams::calibrated(),
                                 r.counts, cfg, r.execTicks,
                                 r.instructions);
        r.hasAlt = true;
    }
    return r;
}

double
energyDisagreement(const RunResult &r)
{
    if (!r.hasAlt)
        return 0.0;
    const double a = r.energy.systemTotal();
    const double b = r.alt.systemTotal();
    const double hi = std::max(a, b);
    return hi > 0.0 ? std::abs(a - b) / hi : 0.0;
}

bool
usableBaseline(const RunResult &base)
{
    return base.execTicks > 0 && base.energy.memTotal() > 0.0 &&
           base.energy.systemTotal() > 0.0;
}

NormalizedResult
normalize(const RunResult &r, const RunResult &base)
{
    if (!usableBaseline(base))
        panic("normalize: degenerate baseline for %s (execTicks=%llu "
              "memE=%g sysE=%g) would yield inf/NaN",
              base.app.c_str(),
              static_cast<unsigned long long>(base.execTicks),
              base.energy.memTotal(), base.energy.systemTotal());

    NormalizedResult n;
    n.app = r.app;
    n.config = r.config;
    n.machine = r.machine;
    n.retentionUs = r.retentionUs;
    n.ambientC = r.ambientC;
    n.maxTempC = r.maxTempC;

    const double baseMem = base.energy.memTotal();
    const double baseSys = base.energy.systemTotal();
    const double baseTime = static_cast<double>(base.execTicks);

    n.time = static_cast<double>(r.execTicks) / baseTime;
    n.memEnergy = r.energy.memTotal() / baseMem;
    n.sysEnergy = r.energy.systemTotal() / baseSys;

    n.l1 = r.energy.l1 / baseMem;
    n.l2 = r.energy.l2 / baseMem;
    n.l3 = r.energy.l3 / baseMem;
    n.dram = r.energy.dram / baseMem;
    n.dynamic = r.energy.dynamic / baseMem;
    n.leakage = r.energy.leakage / baseMem;
    n.refresh = r.energy.refresh / baseMem;
    return n;
}

} // namespace refrint
