#include "harness/pool.hh"

#include <atomic>
#include <cstdlib>

#include "common/env.hh"

namespace refrint
{

unsigned
resolveJobs(unsigned jobs)
{
    if (jobs > 0)
        return jobs;
    std::uint64_t env = envU64("REFRINT_JOBS", 1);
    constexpr std::uint64_t kMaxJobs = 4096;
    if (env > kMaxJobs) {
        warn("REFRINT_JOBS: clamping %llu to %llu",
             static_cast<unsigned long long>(env),
             static_cast<unsigned long long>(kMaxJobs));
        env = kMaxJobs;
    }
    return env > 0 ? static_cast<unsigned>(env) : 1;
}

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = 1;
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    hasWork_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push(std::move(task));
        ++inFlight_;
    }
    hasWork_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            hasWork_.wait(lock,
                          [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to do
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    parallelForWorkers(n, jobs,
                       [&fn](std::size_t i, unsigned) { fn(i); });
}

void
parallelForWorkers(std::size_t n, unsigned jobs,
                   const std::function<void(std::size_t, unsigned)> &fn)
{
    if (n == 0)
        return;
    jobs = resolveJobs(jobs);
    if (jobs <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i, 0);
        return;
    }
    if (jobs > n)
        jobs = static_cast<unsigned>(n);

    // One shared index counter: each worker claims the next undone
    // index, so load balances dynamically across uneven run times.
    // Each submission is one worker; its submission index is the
    // stable worker id handed to fn.
    std::atomic<std::size_t> next{0};
    auto drain = [&](unsigned w) {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            fn(i, w);
        }
    };

    ThreadPool pool(jobs);
    for (unsigned w = 0; w < jobs; ++w)
        pool.submit([&drain, w] { drain(w); });
    pool.wait();
}

} // namespace refrint
