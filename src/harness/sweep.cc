#include "harness/sweep.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "common/env.hh"
#include "common/log.hh"
#include "harness/pool.hh"

namespace refrint
{

std::vector<RefreshPolicy>
paperDataPolicies(TimePolicy t)
{
    std::vector<RefreshPolicy> v;
    auto mk = [&](DataPolicy d, std::uint32_t n = 0, std::uint32_t m = 0) {
        RefreshPolicy p;
        p.time = t;
        p.data = d;
        p.n = n;
        p.m = m;
        v.push_back(p);
    };
    mk(DataPolicy::All);
    mk(DataPolicy::Valid);
    mk(DataPolicy::Dirty);
    mk(DataPolicy::WB, 4, 4);
    mk(DataPolicy::WB, 8, 8);
    mk(DataPolicy::WB, 16, 16);
    mk(DataPolicy::WB, 32, 32);
    return v;
}

std::vector<RefreshPolicy>
paperPolicySweep()
{
    std::vector<RefreshPolicy> v = paperDataPolicies(TimePolicy::Periodic);
    for (const auto &p : paperDataPolicies(TimePolicy::Refrint))
        v.push_back(p);
    return v;
}

std::vector<Tick>
paperRetentions()
{
    return {usToTicks(50.0), usToTicks(100.0), usToTicks(200.0)};
}

std::string
defaultCachePath()
{
    if (const char *p = std::getenv("REFRINT_CACHE"))
        return p;
    return "refrint_sweep_cache.csv";
}

void
SweepSpec::finalize()
{
    if (apps.empty())
        apps = paperWorkloads();
    if (retentions.empty())
        retentions = paperRetentions();
    if (policies.empty())
        policies = paperPolicySweep();
    const std::uint64_t refs = envU64("REFRINT_REFS", 0);
    if (refs > 0)
        sim.refsPerCore = refs;
    if (const char *a = std::getenv("REFRINT_APPS")) {
        // Comma-separated allow list, e.g. REFRINT_APPS=fft,lu
        std::vector<const Workload *> keep;
        std::stringstream ss(a);
        std::string tok;
        while (std::getline(ss, tok, ',')) {
            if (const Workload *w = findWorkload(tok))
                keep.push_back(w);
            else
                warn("REFRINT_APPS: unknown app '%s'", tok.c_str());
        }
        if (!keep.empty())
            apps = keep;
    }
    jobs = resolveJobs(jobs);
}

namespace
{

/**
 * Stable textual key identifying one run in the cache.  Thermal runs
 * (@p ambientC != 0) get an extra "|amb=" segment and non-default
 * machines (@p machine != "") an extra "|mach=" segment, so they can
 * never collide with — or be satisfied by — a legacy row, while legacy
 * keys stay exactly as they were.
 */
std::string
runKey(const std::string &app, const std::string &config,
       double retentionUs, const SimParams &sim, double ambientC,
       const std::string &machine)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s|%s|%.1f|%llu|%llu", app.c_str(),
                  config.c_str(), retentionUs,
                  static_cast<unsigned long long>(sim.refsPerCore),
                  static_cast<unsigned long long>(sim.seed));
    std::string key = buf;
    if (ambientC != 0.0) {
        std::snprintf(buf, sizeof(buf), "|amb=%.2f", ambientC);
        key += buf;
    }
    if (!machine.empty())
        key += "|mach=" + machine;
    return key;
}

// v4 introduced named-field serialization (no struct-layout
// reinterpret_cast), %.17g precision so every double round-trips
// exactly, and full-rewrite-only persistence (no append path, no
// duplicate keys).  v5 added the thermal fields (ambientC, maxTempC).
// v6 adds machine-keyed rows ("|mach=" key segment) for the machine
// sweep axis; the row payload is unchanged, so a v5 cache is read in
// place (its rows are all default-machine rows) and rewritten as v6
// only if the sweep simulates something new.
constexpr int kCacheVersion = 6;
constexpr int kOldestReadableVersion = 5;

/** The numeric payload serialized per run. */
struct CacheRow
{
    double execTicks, instructions;
    double l1, l2, l3, dram, dynamic, leakage, refresh, core, net;
    double dramAccesses, l3Misses, refreshes3, refWbs, refInvals;
    double decayed;
    double ambientC, maxTempC;
};

/**
 * Field list in serialization order — the single source of truth for
 * both the reader and the writer, so they cannot drift apart or depend
 * on the struct's memory layout.
 */
constexpr double CacheRow::*kCacheFields[] = {
    &CacheRow::execTicks,    &CacheRow::instructions, &CacheRow::l1,
    &CacheRow::l2,           &CacheRow::l3,           &CacheRow::dram,
    &CacheRow::dynamic,      &CacheRow::leakage,      &CacheRow::refresh,
    &CacheRow::core,         &CacheRow::net,          &CacheRow::dramAccesses,
    &CacheRow::l3Misses,     &CacheRow::refreshes3,   &CacheRow::refWbs,
    &CacheRow::refInvals,    &CacheRow::decayed,      &CacheRow::ambientC,
    &CacheRow::maxTempC,
};
constexpr std::size_t kNumCacheFields =
    sizeof(kCacheFields) / sizeof(kCacheFields[0]);
static_assert(kNumCacheFields == sizeof(CacheRow) / sizeof(double),
              "every CacheRow field must be serialized");

CacheRow
toRow(const RunResult &r)
{
    CacheRow c{};
    c.execTicks = static_cast<double>(r.execTicks);
    c.instructions = static_cast<double>(r.instructions);
    c.l1 = r.energy.l1;
    c.l2 = r.energy.l2;
    c.l3 = r.energy.l3;
    c.dram = r.energy.dram;
    c.dynamic = r.energy.dynamic;
    c.leakage = r.energy.leakage;
    c.refresh = r.energy.refresh;
    c.core = r.energy.core;
    c.net = r.energy.net;
    c.dramAccesses = static_cast<double>(r.counts.dramAccesses);
    c.l3Misses = static_cast<double>(r.counts.l3Misses);
    c.refreshes3 = static_cast<double>(r.counts.l3Refreshes);
    c.refWbs = static_cast<double>(r.counts.refreshWritebacks);
    c.refInvals = static_cast<double>(r.counts.refreshInvalidations);
    c.decayed = static_cast<double>(r.counts.decayedHits);
    c.ambientC = r.ambientC;
    c.maxTempC = r.maxTempC;
    return c;
}

RunResult
fromRow(const std::string &app, const std::string &config,
        double retentionUs, const std::string &machine,
        const CacheRow &c)
{
    RunResult r;
    r.app = app;
    r.config = config;
    r.machine = machine;
    r.retentionUs = retentionUs;
    r.execTicks = static_cast<Tick>(c.execTicks);
    r.instructions = static_cast<std::uint64_t>(c.instructions);
    r.energy.l1 = c.l1;
    r.energy.l2 = c.l2;
    r.energy.l3 = c.l3;
    r.energy.dram = c.dram;
    r.energy.dynamic = c.dynamic;
    r.energy.leakage = c.leakage;
    r.energy.refresh = c.refresh;
    r.energy.core = c.core;
    r.energy.net = c.net;
    r.counts.dramAccesses = static_cast<std::uint64_t>(c.dramAccesses);
    r.counts.l3Misses = static_cast<std::uint64_t>(c.l3Misses);
    r.counts.l3Refreshes = static_cast<std::uint64_t>(c.refreshes3);
    r.counts.refreshWritebacks = static_cast<std::uint64_t>(c.refWbs);
    r.counts.refreshInvalidations =
        static_cast<std::uint64_t>(c.refInvals);
    r.counts.decayedHits = static_cast<std::uint64_t>(c.decayed);
    r.ambientC = c.ambientC;
    r.maxTempC = c.maxTempC;
    return r;
}

/**
 * The sweep's persistent result cache.  Thread-safe: lookup/insert are
 * mutex-guarded so concurrent sweep workers can share it.  The file is
 * only ever written as a full rewrite (periodically during the sweep
 * for crash durability, and once at the end via flush()), so a
 * pre-existing file can never accumulate duplicate keys for a run.
 */
class RunCache
{
  public:
    explicit RunCache(std::string path) : path_(std::move(path))
    {
        if (path_.empty())
            return;
        std::ifstream in(path_);
        if (!in)
            return;
        std::string line;
        bool ok = std::getline(in, line).good();
        if (ok) {
            ok = false;
            for (int v = kOldestReadableVersion; v <= kCacheVersion; ++v)
                ok = ok || line == "v" + std::to_string(v);
        }
        if (!ok) {
            warn("ignoring sweep cache with stale version: %s",
                 path_.c_str());
            return;
        }
        while (std::getline(in, line)) {
            const auto sep = line.find(';');
            if (sep == std::string::npos)
                continue;
            const std::string key = line.substr(0, sep);
            CacheRow c{};
            if (readRow(line.substr(sep + 1), c))
                rows_[key] = c; // last occurrence wins
        }
    }

    bool
    lookup(const std::string &key, CacheRow &out) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = rows_.find(key);
        if (it == rows_.end())
            return false;
        out = it->second;
        return true;
    }

    /** Record a freshly simulated run; persisted on flush().  Every
     *  kFlushInterval inserts the file is also rewritten, so an
     *  interrupted long sweep loses at most that many simulations. */
    void
    insert(const std::string &key, const CacheRow &c)
    {
        std::lock_guard<std::mutex> lock(mu_);
        rows_[key] = c;
        dirty_ = true;
        if (++sinceFlush_ >= kFlushInterval) {
            flushLocked();
            sinceFlush_ = 0;
        }
    }

    /** Rewrite the cache file with every known row. */
    void
    flush()
    {
        std::lock_guard<std::mutex> lock(mu_);
        flushLocked();
    }

  private:
    static constexpr std::size_t kFlushInterval = 16;

    void
    flushLocked()
    {
        if (path_.empty() || !dirty_)
            return;
        // Always a full rewrite of a consistent file — never an
        // append — so duplicate keys cannot accumulate.
        std::ofstream out(path_, std::ios::trunc);
        if (!out) {
            warn("cannot write sweep cache: %s", path_.c_str());
            return;
        }
        out << "v" << kCacheVersion << "\n";
        for (const auto &[k, row] : rows_)
            writeRow(out, k, row);
        dirty_ = false;
    }
    /** Parse "f0,f1,...,f16" into the named fields, all required. */
    static bool
    readRow(const std::string &payload, CacheRow &c)
    {
        std::stringstream ss(payload);
        std::string tok;
        std::size_t i = 0;
        while (i < kNumCacheFields && std::getline(ss, tok, ',')) {
            char *end = nullptr;
            const double v = std::strtod(tok.c_str(), &end);
            if (end == tok.c_str() || *end != '\0')
                return false;
            c.*kCacheFields[i++] = v;
        }
        return i == kNumCacheFields;
    }

    static void
    writeRow(std::ofstream &out, const std::string &key,
             const CacheRow &c)
    {
        out << key << ";";
        char buf[32];
        for (std::size_t i = 0; i < kNumCacheFields; ++i) {
            // %.17g: max_digits10 for double, exact round-trip.
            std::snprintf(buf, sizeof(buf), "%.17g", c.*kCacheFields[i]);
            out << (i ? "," : "") << buf;
        }
        out << "\n";
    }

    std::string path_;
    mutable std::mutex mu_;
    std::map<std::string, CacheRow> rows_;
    std::size_t sinceFlush_ = 0;
    bool dirty_ = false;
};

} // namespace

double
SweepResult::average(double retentionUs, const std::string &config,
                     const std::vector<std::string> &apps,
                     double NormalizedResult::*field) const
{
    double sum = 0;
    std::size_t n = 0;
    for (const auto &r : normalized) {
        if (r.config != config)
            continue;
        if (retentionUs > 0 && r.retentionUs != retentionUs)
            continue;
        if (!apps.empty()) {
            bool found = false;
            for (const auto &a : apps)
                found = found || a == r.app;
            if (!found)
                continue;
        }
        sum += r.*field;
        ++n;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

const NormalizedResult *
SweepResult::find(const std::string &app, double retentionUs,
                  const std::string &config) const
{
    for (const auto &r : normalized) {
        if (r.app == app && r.config == config &&
            (retentionUs <= 0 || r.retentionUs == retentionUs))
            return &r;
    }
    return nullptr;
}

SweepResult
runSweep(SweepSpec spec, const std::string &cachePath)
{
    spec.finalize();
    RunCache cache(cachePath);

    // Flatten the sweep into a deterministic run list in spec order:
    // per machine, per app, the SRAM baseline first, then retention x
    // policy.  The list — not completion order — dictates where every
    // result lands, so jobs=N output is identical to jobs=1.
    struct RunDesc
    {
        const Workload *app;
        MachineConfig cfg;
        double retentionUs;
        std::string config;
        double ambientC; ///< 0 = thermal disabled
    };
    // The machine axis: an empty list means the paper's default
    // machine (exact legacy behavior, legacy cache keys).
    std::vector<MachineAxis> machines = spec.machines;
    if (machines.empty())
        machines.push_back(MachineAxis{});
    // The ambient axis: an empty list means one isothermal pass with
    // the thermal subsystem off (exact legacy behavior).
    const std::size_t perApp = spec.retentions.size() *
                               spec.policies.size() *
                               std::max<std::size_t>(1,
                                                     spec.ambients.size());
    std::vector<RunDesc> runs;
    runs.reserve(machines.size() * spec.apps.size() * (1 + perApp));
    for (const MachineAxis &m : machines) {
        for (const Workload *app : spec.apps) {
            runs.push_back({app, MachineConfig::paperSram(m.cores), 0.0,
                            "SRAM", 0.0});
            auto pushEdram = [&](double ambientC) {
                for (Tick ret : spec.retentions) {
                    const double retUs = static_cast<double>(ret) / 1e3;
                    for (const RefreshPolicy &pol : spec.policies) {
                        MachineConfig cfg =
                            m.hybrid
                                ? MachineConfig::paperHybrid(pol, ret,
                                                             m.cores)
                                : MachineConfig::paperEdram(pol, ret,
                                                            m.cores);
                        if (ambientC != 0.0) {
                            cfg.thermal.enabled = true;
                            cfg.thermal.ambientC = ambientC;
                        }
                        cfg.thermal.energy = spec.energy;
                        runs.push_back(
                            {app, cfg, retUs, pol.name(), ambientC});
                    }
                }
            };
            if (spec.ambients.empty()) {
                pushEdram(0.0);
            } else {
                for (double amb : spec.ambients)
                    pushEdram(amb);
            }
        }
    }

    std::vector<RunResult> results(runs.size());
    std::atomic<std::size_t> simulated{0};

    parallelFor(runs.size(), spec.jobs, [&](std::size_t i) {
        const RunDesc &d = runs[i];
        const std::string key = runKey(d.app->name(), d.config,
                                       d.retentionUs, spec.sim,
                                       d.ambientC, d.cfg.machineId);
        CacheRow row;
        if (cache.lookup(key, row)) {
            results[i] = fromRow(d.app->name(), d.config, d.retentionUs,
                                 d.cfg.machineId, row);
            return;
        }
        char prefix[128];
        if (d.ambientC != 0.0)
            std::snprintf(prefix, sizeof(prefix), "%s/%s@%.0fus/%.0fC%s%s",
                          d.app->name(), d.config.c_str(), d.retentionUs,
                          d.ambientC, d.cfg.machineId.empty() ? "" : "/",
                          d.cfg.machineId.c_str());
        else
            std::snprintf(prefix, sizeof(prefix), "%s/%s@%.0fus%s%s",
                          d.app->name(), d.config.c_str(), d.retentionUs,
                          d.cfg.machineId.empty() ? "" : "/",
                          d.cfg.machineId.c_str());
        LogPrefix scope(prefix);
        inform("simulating ...");
        RunResult r = runOnce(d.cfg, *d.app, spec.sim, spec.energy);
        // Stamp the sweep's label (0.0 for SRAM baselines) so a fresh
        // run and a cache reload of it report the same retention.
        r.retentionUs = d.retentionUs;
        cache.insert(key, toRow(r));
        simulated.fetch_add(1, std::memory_order_relaxed);
        results[i] = r;
    });
    cache.flush();

    // Assemble output in the same spec order the serial sweep used.
    // Each machine's runs normalize against that machine's own SRAM
    // baseline (a 32-core run is compared to the 32-core SRAM run).
    SweepResult out;
    out.simulations = simulated.load();
    std::size_t i = 0;
    for (const MachineAxis &m : machines) {
        (void)m;
        for (const Workload *app : spec.apps) {
            (void)app;
            const RunResult &base = results[i++];
            out.raw.push_back(base);
            const bool usable = usableBaseline(base);
            if (!usable)
                warn("degenerate SRAM baseline for %s (zero energy or "
                     "time); skipping its normalized rows",
                     base.app.c_str());
            for (std::size_t p = 0; p < perApp; ++p) {
                const RunResult &r = results[i++];
                out.raw.push_back(r);
                if (usable)
                    out.normalized.push_back(normalize(r, base));
            }
        }
    }
    return out;
}

} // namespace refrint
