#include "harness/sweep.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "api/experiment_plan.hh"
#include "api/session.hh"
#include "common/env.hh"
#include "common/log.hh"
#include "harness/pool.hh"

namespace refrint
{

std::vector<RefreshPolicy>
paperDataPolicies(TimePolicy t)
{
    std::vector<RefreshPolicy> v;
    auto mk = [&](DataPolicy d, std::uint32_t n = 0, std::uint32_t m = 0) {
        RefreshPolicy p;
        p.time = t;
        p.data = d;
        p.n = n;
        p.m = m;
        v.push_back(p);
    };
    mk(DataPolicy::All);
    mk(DataPolicy::Valid);
    mk(DataPolicy::Dirty);
    mk(DataPolicy::WB, 4, 4);
    mk(DataPolicy::WB, 8, 8);
    mk(DataPolicy::WB, 16, 16);
    mk(DataPolicy::WB, 32, 32);
    return v;
}

std::vector<RefreshPolicy>
paperPolicySweep()
{
    std::vector<RefreshPolicy> v = paperDataPolicies(TimePolicy::Periodic);
    for (const auto &p : paperDataPolicies(TimePolicy::Refrint))
        v.push_back(p);
    return v;
}

std::vector<Tick>
paperRetentions()
{
    return {usToTicks(50.0), usToTicks(100.0), usToTicks(200.0)};
}

std::string
defaultCachePath()
{
    if (const char *p = std::getenv("REFRINT_CACHE"))
        return p;
    return "refrint_sweep_cache.csv";
}

void
SweepSpec::finalize()
{
    if (apps.empty())
        apps = paperWorkloads();
    if (retentions.empty())
        retentions = paperRetentions();
    if (policies.empty())
        policies = paperPolicySweep();
    const std::uint64_t refs = envU64("REFRINT_REFS", 0);
    if (refs > 0)
        sim.refsPerCore = refs;
    if (const char *a = std::getenv("REFRINT_APPS")) {
        // Comma-separated allow list, e.g. REFRINT_APPS=fft,lu
        std::vector<const Workload *> keep;
        std::stringstream ss(a);
        std::string tok;
        while (std::getline(ss, tok, ',')) {
            if (const Workload *w = findWorkload(tok))
                keep.push_back(w);
            else
                warn("REFRINT_APPS: unknown app '%s'", tok.c_str());
        }
        if (!keep.empty())
            apps = keep;
    }
    jobs = resolveJobs(jobs);
}

namespace
{

/** Machine handling of one mean: a single named machine, the sole
 *  machine present (fatal when several match), or an explicit pool. */
enum class MachineRule
{
    Exact,
    Sole,
    Pooled,
};

double
averageRows(const std::vector<NormalizedResult> &rows,
            double retentionUs, const std::string &config,
            const std::vector<std::string> &apps,
            double NormalizedResult::*field, MachineRule rule,
            const std::string &machine)
{
    double sum = 0;
    std::size_t n = 0;
    const std::string *sole = nullptr;
    for (const auto &r : rows) {
        if (r.config != config)
            continue;
        if (retentionUs > 0 && r.retentionUs != retentionUs)
            continue;
        if (!apps.empty() &&
            std::find(apps.begin(), apps.end(), r.app) == apps.end())
            continue;
        if (rule == MachineRule::Exact && r.machine != machine)
            continue;
        if (rule == MachineRule::Sole) {
            if (sole == nullptr)
                sole = &r.machine;
            else if (*sole != r.machine)
                fatal("SweepResult::average(%s @ %.1f us) matches rows "
                      "from several machines ('%s' and '%s'); pass the "
                      "machine explicitly or pool with averagePooled()",
                      config.c_str(), retentionUs, sole->c_str(),
                      r.machine.c_str());
        }
        sum += r.*field;
        ++n;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

} // namespace

double
SweepResult::average(double retentionUs, const std::string &config,
                     const std::vector<std::string> &apps,
                     double NormalizedResult::*field) const
{
    return averageRows(normalized, retentionUs, config, apps, field,
                       MachineRule::Sole, "");
}

double
SweepResult::average(double retentionUs, const std::string &config,
                     const std::vector<std::string> &apps,
                     double NormalizedResult::*field,
                     const std::string &machine) const
{
    return averageRows(normalized, retentionUs, config, apps, field,
                       MachineRule::Exact, machine);
}

double
SweepResult::averagePooled(double retentionUs,
                           const std::string &config,
                           const std::vector<std::string> &apps,
                           double NormalizedResult::*field) const
{
    return averageRows(normalized, retentionUs, config, apps, field,
                       MachineRule::Pooled, "");
}

const NormalizedResult *
SweepResult::find(const std::string &app, double retentionUs,
                  const std::string &config) const
{
    const NormalizedResult *first = nullptr;
    for (const auto &r : normalized) {
        if (r.app != app || r.config != config)
            continue;
        if (retentionUs > 0 && r.retentionUs != retentionUs)
            continue;
        if (first == nullptr) {
            first = &r;
            continue;
        }
        if (first->machine == r.machine && first->ambientC == r.ambientC)
            continue; // same scenario axes: retention wildcard match
        fatal("SweepResult::find(%s, %.1f, %s) is ambiguous across "
              "the machine/ambient axes; pass the full scenario "
              "identity",
              app.c_str(), retentionUs, config.c_str());
    }
    return first;
}

const NormalizedResult *
SweepResult::find(const std::string &app, double retentionUs,
                  const std::string &config,
                  const std::string &machine, double ambientC) const
{
    for (const auto &r : normalized) {
        if (r.app == app && r.config == config &&
            r.machine == machine && r.ambientC == ambientC &&
            (retentionUs <= 0 || r.retentionUs == retentionUs))
            return &r;
    }
    return nullptr;
}

SweepResult
runSweep(SweepSpec spec, const std::string &cachePath)
{
    // fromSweepSpec finalizes the spec; the Session resolves jobs the
    // same way finalize would (explicit value, else $REFRINT_JOBS).
    const unsigned jobs = spec.jobs;
    Session session(SessionOptions{cachePath, jobs});
    return session.run(ExperimentPlan::fromSweepSpec(std::move(spec)));
}

} // namespace refrint
