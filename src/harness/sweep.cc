#include "harness/sweep.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "common/log.hh"

namespace refrint
{

std::vector<RefreshPolicy>
paperDataPolicies(TimePolicy t)
{
    std::vector<RefreshPolicy> v;
    auto mk = [&](DataPolicy d, std::uint32_t n = 0, std::uint32_t m = 0) {
        RefreshPolicy p;
        p.time = t;
        p.data = d;
        p.n = n;
        p.m = m;
        v.push_back(p);
    };
    mk(DataPolicy::All);
    mk(DataPolicy::Valid);
    mk(DataPolicy::Dirty);
    mk(DataPolicy::WB, 4, 4);
    mk(DataPolicy::WB, 8, 8);
    mk(DataPolicy::WB, 16, 16);
    mk(DataPolicy::WB, 32, 32);
    return v;
}

std::vector<RefreshPolicy>
paperPolicySweep()
{
    std::vector<RefreshPolicy> v = paperDataPolicies(TimePolicy::Periodic);
    for (const auto &p : paperDataPolicies(TimePolicy::Refrint))
        v.push_back(p);
    return v;
}

std::vector<Tick>
paperRetentions()
{
    return {usToTicks(50.0), usToTicks(100.0), usToTicks(200.0)};
}

std::string
defaultCachePath()
{
    if (const char *p = std::getenv("REFRINT_CACHE"))
        return p;
    return "refrint_sweep_cache.csv";
}

void
SweepSpec::finalize()
{
    if (apps.empty())
        apps = paperWorkloads();
    if (retentions.empty())
        retentions = paperRetentions();
    if (policies.empty())
        policies = paperPolicySweep();
    if (const char *r = std::getenv("REFRINT_REFS")) {
        const long long v = std::atoll(r);
        if (v > 0)
            sim.refsPerCore = static_cast<std::uint64_t>(v);
    }
    if (const char *a = std::getenv("REFRINT_APPS")) {
        // Comma-separated allow list, e.g. REFRINT_APPS=fft,lu
        std::vector<const Workload *> keep;
        std::stringstream ss(a);
        std::string tok;
        while (std::getline(ss, tok, ',')) {
            if (const Workload *w = findWorkload(tok))
                keep.push_back(w);
            else
                warn("REFRINT_APPS: unknown app '%s'", tok.c_str());
        }
        if (!keep.empty())
            apps = keep;
    }
}

namespace
{

/** Stable textual key identifying one run in the cache. */
std::string
runKey(const std::string &app, const std::string &config,
       double retentionUs, const SimParams &sim)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s|%s|%.1f|%llu|%llu", app.c_str(),
                  config.c_str(), retentionUs,
                  static_cast<unsigned long long>(sim.refsPerCore),
                  static_cast<unsigned long long>(sim.seed));
    return buf;
}

constexpr int kCacheVersion = 3;

/** The numeric payload serialized per run. */
struct CacheRow
{
    double execTicks, instructions;
    double l1, l2, l3, dram, dynamic, leakage, refresh, core, net;
    double dramAccesses, l3Misses, refreshes3, refWbs, refInvals;
    double decayed;
};

CacheRow
toRow(const RunResult &r)
{
    CacheRow c{};
    c.execTicks = static_cast<double>(r.execTicks);
    c.instructions = static_cast<double>(r.instructions);
    c.l1 = r.energy.l1;
    c.l2 = r.energy.l2;
    c.l3 = r.energy.l3;
    c.dram = r.energy.dram;
    c.dynamic = r.energy.dynamic;
    c.leakage = r.energy.leakage;
    c.refresh = r.energy.refresh;
    c.core = r.energy.core;
    c.net = r.energy.net;
    c.dramAccesses = static_cast<double>(r.counts.dramAccesses);
    c.l3Misses = static_cast<double>(r.counts.l3Misses);
    c.refreshes3 = static_cast<double>(r.counts.l3Refreshes);
    c.refWbs = static_cast<double>(r.counts.refreshWritebacks);
    c.refInvals = static_cast<double>(r.counts.refreshInvalidations);
    c.decayed = static_cast<double>(r.counts.decayedHits);
    return c;
}

RunResult
fromRow(const std::string &app, const std::string &config,
        double retentionUs, const CacheRow &c)
{
    RunResult r;
    r.app = app;
    r.config = config;
    r.retentionUs = retentionUs;
    r.execTicks = static_cast<Tick>(c.execTicks);
    r.instructions = static_cast<std::uint64_t>(c.instructions);
    r.energy.l1 = c.l1;
    r.energy.l2 = c.l2;
    r.energy.l3 = c.l3;
    r.energy.dram = c.dram;
    r.energy.dynamic = c.dynamic;
    r.energy.leakage = c.leakage;
    r.energy.refresh = c.refresh;
    r.energy.core = c.core;
    r.energy.net = c.net;
    r.counts.dramAccesses = static_cast<std::uint64_t>(c.dramAccesses);
    r.counts.l3Misses = static_cast<std::uint64_t>(c.l3Misses);
    r.counts.l3Refreshes = static_cast<std::uint64_t>(c.refreshes3);
    r.counts.refreshWritebacks = static_cast<std::uint64_t>(c.refWbs);
    r.counts.refreshInvalidations =
        static_cast<std::uint64_t>(c.refInvals);
    r.counts.decayedHits = static_cast<std::uint64_t>(c.decayed);
    return r;
}

class RunCache
{
  public:
    explicit RunCache(std::string path) : path_(std::move(path))
    {
        if (path_.empty())
            return;
        std::ifstream in(path_);
        if (!in)
            return;
        std::string line;
        if (!std::getline(in, line) ||
            line != "v" + std::to_string(kCacheVersion)) {
            warn("ignoring sweep cache with stale version: %s",
                 path_.c_str());
            return;
        }
        while (std::getline(in, line)) {
            const auto sep = line.find(';');
            if (sep == std::string::npos)
                continue;
            const std::string key = line.substr(0, sep);
            CacheRow c{};
            double *f = reinterpret_cast<double *>(&c);
            std::stringstream ss(line.substr(sep + 1));
            std::string tok;
            std::size_t i = 0;
            const std::size_t nf = sizeof(CacheRow) / sizeof(double);
            while (i < nf && std::getline(ss, tok, ','))
                f[i++] = std::atof(tok.c_str());
            if (i == nf)
                rows_[key] = c;
        }
    }

    bool
    lookup(const std::string &key, CacheRow &out) const
    {
        auto it = rows_.find(key);
        if (it == rows_.end())
            return false;
        out = it->second;
        return true;
    }

    void
    store(const std::string &key, const CacheRow &c)
    {
        rows_[key] = c;
        if (path_.empty())
            return;
        std::ofstream out(path_, dirty_ ? std::ios::app : std::ios::trunc);
        if (!dirty_) {
            // Rewrite whole file once per process to refresh the header.
            out << "v" << kCacheVersion << "\n";
            for (const auto &[k, row] : rows_)
                writeRow(out, k, row);
            dirty_ = true;
            return;
        }
        writeRow(out, key, c);
    }

  private:
    static void
    writeRow(std::ofstream &out, const std::string &key,
             const CacheRow &c)
    {
        out << key << ";";
        const double *f = reinterpret_cast<const double *>(&c);
        const std::size_t nf = sizeof(CacheRow) / sizeof(double);
        for (std::size_t i = 0; i < nf; ++i)
            out << (i ? "," : "") << f[i];
        out << "\n";
    }

    std::string path_;
    std::map<std::string, CacheRow> rows_;
    bool dirty_ = false;
};

} // namespace

double
SweepResult::average(double retentionUs, const std::string &config,
                     const std::vector<std::string> &apps,
                     double NormalizedResult::*field) const
{
    double sum = 0;
    std::size_t n = 0;
    for (const auto &r : normalized) {
        if (r.config != config)
            continue;
        if (retentionUs > 0 && r.retentionUs != retentionUs)
            continue;
        if (!apps.empty()) {
            bool found = false;
            for (const auto &a : apps)
                found = found || a == r.app;
            if (!found)
                continue;
        }
        sum += r.*field;
        ++n;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

const NormalizedResult *
SweepResult::find(const std::string &app, double retentionUs,
                  const std::string &config) const
{
    for (const auto &r : normalized) {
        if (r.app == app && r.config == config &&
            (retentionUs <= 0 || r.retentionUs == retentionUs))
            return &r;
    }
    return nullptr;
}

SweepResult
runSweep(SweepSpec spec, const std::string &cachePath)
{
    spec.finalize();
    RunCache cache(cachePath);
    SweepResult out;

    auto obtain = [&](const HierarchyConfig &cfg, const Workload &app,
                      double retentionUs,
                      const std::string &config) -> RunResult {
        const std::string key =
            runKey(app.name(), config, retentionUs, spec.sim);
        CacheRow row;
        if (cache.lookup(key, row))
            return fromRow(app.name(), config, retentionUs, row);
        inform("simulating %s / %s @ %.0f us ...", app.name(),
               config.c_str(), retentionUs);
        RunResult r = runOnce(cfg, app, spec.sim, spec.energy);
        cache.store(key, toRow(r));
        return r;
    };

    for (const Workload *app : spec.apps) {
        const RunResult base = obtain(HierarchyConfig::paperSram(), *app,
                                      0.0, "SRAM");
        out.raw.push_back(base);
        for (Tick ret : spec.retentions) {
            const double retUs = static_cast<double>(ret) / 1e3;
            for (const RefreshPolicy &pol : spec.policies) {
                HierarchyConfig cfg =
                    HierarchyConfig::paperEdram(pol, ret);
                RunResult r = obtain(cfg, *app, retUs, pol.name());
                out.raw.push_back(r);
                out.normalized.push_back(normalize(r, base));
            }
        }
    }
    return out;
}

} // namespace refrint
