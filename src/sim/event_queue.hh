/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-ordered queue of (tick, sequence) entries.  Components
 * either derive from EventClient and schedule themselves, or enqueue
 * one-shot lambdas.  Sequence numbers break ties so simultaneous events
 * fire in scheduling order, which makes runs fully deterministic.
 *
 * Hot-path layout: entries live in a flat 4-ary implicit heap, split
 * SoA-style into 16-byte ordering keys (tick, seq, cancellation slot)
 * and 16-byte payloads (client*, tag) so sift comparisons scan packed
 * keys only.  The 99% case (an EventClient callback) never touches a
 * std::function; one-shot lambdas are parked in a side slab and
 * referenced by index.  Entries due beyond a horizon wait in an
 * unsorted far band (O(1) admission, batch promotion), keeping the
 * heap at core-count scale instead of holding every retention deadline.
 *
 * Cancellation is lazy and O(1): a handle names a slot stamped with its
 * event's sequence number; cancel() retires the stamp and the dead
 * entry is skipped (without advancing time) when it surfaces.
 */

#ifndef REFRINT_SIM_EVENT_QUEUE_HH
#define REFRINT_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace refrint
{

/** Interface for components that receive scheduled callbacks. */
class EventClient
{
  public:
    virtual ~EventClient() = default;

    /**
     * Called when a scheduled event fires.
     * @param now   The current simulation tick.
     * @param tag   The tag passed at schedule time (dispatch aid for
     *              clients with several event kinds).
     */
    virtual void fire(Tick now, std::uint64_t tag) = 0;
};

/**
 * Names one cancellable scheduled event.  Default-constructed handles
 * are inert: cancel() on them is a no-op returning false.  A handle is
 * spent once the event fires or is cancelled; cancelling a spent handle
 * is safe (the slot's live sequence number no longer matches).
 */
struct EventHandle
{
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    std::uint32_t slot = kNoSlot;
    std::uint32_t seq = 0; ///< sequence number of the named event

    bool pending() const { return slot != kNoSlot; }
};

/**
 * The global event queue.  Not thread-safe by design: the entire
 * simulation is a single deterministic thread.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Schedule @p client->fire(when, tag); @p when must be >= now(). */
    void
    schedule(Tick when, EventClient *client, std::uint64_t tag = 0)
    {
        panicIf(when < now_, "event scheduled in the past");
        admit(Key{when, nextSeq(), EventHandle::kNoSlot},
              Val{client, tag});
        ++live_;
    }

    /**
     * Schedule @p client->fire(when, tag) and return a handle that can
     * revoke it before it fires.  Consumes the same global sequence
     * number a plain schedule() would, so interleavings with other
     * same-tick events are unchanged.
     */
    EventHandle
    scheduleCancellable(Tick when, EventClient *client,
                        std::uint64_t tag = 0)
    {
        panicIf(when < now_, "event scheduled in the past");
        const std::uint32_t slot = allocSlot();
        const std::uint32_t seq = nextSeq();
        slotLive_[slot] = seq;
        admit(Key{when, seq, slot}, Val{client, tag});
        ++live_;
        return EventHandle{slot, seq};
    }

    /**
     * Revoke the event named by @p h.  O(1): the heap entry is marked
     * dead by retiring the slot's live sequence number and melts away
     * when popped.
     * @return true if the event was still pending (and is now dead).
     */
    bool
    cancel(const EventHandle &h)
    {
        // The size check also covers handles that predate a clear():
        // clear() empties the slot table, spending every handle.
        if (!h.pending() || h.slot >= slotLive_.size() ||
            slotLive_[h.slot] != h.seq)
            return false; // inert, already fired, or already cancelled
        freeSlot(h.slot);
        --live_;
        return true;
    }

    /** Schedule a one-shot callable. */
    void
    scheduleFn(Tick when, std::function<void(Tick)> fn)
    {
        panicIf(when < now_, "event scheduled in the past");
        const std::uint32_t idx = allocFn(std::move(fn));
        admit(Key{when, nextSeq(), EventHandle::kNoSlot},
              Val{nullptr, idx});
        ++live_;
    }

    /** Current simulation time (last dispatched event's tick). */
    Tick now() const { return now_; }

    /** Live (non-cancelled) pending events. */
    bool empty() const { return live_ == 0; }
    std::size_t size() const { return live_; }

    /** Dispatch the single earliest live event.  @return false if no
     *  live event remains.  Inline: this is the simulation main loop. */
    bool
    step()
    {
        if (!prepareTop())
            return false;
        const Key k = keys_.front();
        const Val v = vals_.front();
        popTop();
        dispatch(k, v);
        return true;
    }

    /**
     * Run until the queue drains or simulated time would pass @p limit.
     * Events scheduled at exactly @p limit still fire.
     * @return the final simulation time.
     */
    Tick run(Tick limit = kTickNever);

    /** Drop all pending events (used between experiment runs). */
    void clear();

  private:
    /** Ordering key, 16 bytes: four keys per cache line, so the sift
     *  children scans touch a single line per rung. */
    struct Key
    {
        Tick when;
        std::uint32_t seq;  ///< tie-break; doubles as cancel stamp
        std::uint32_t slot; ///< cancellation slot, or kNoSlot

        bool
        before(const Key &o) const
        {
            return when != o.when ? when < o.when : seq < o.seq;
        }
    };

    /** Dispatch payload, 16 bytes; moved alongside its key but never
     *  read during sift comparisons. */
    struct Val
    {
        EventClient *client; ///< nullptr => one-shot fn; tag = fn index
        std::uint64_t tag;
    };

    /** Far-band entry (unsorted storage; never sifted). */
    struct Entry
    {
        Key key;
        Val val;
    };

    static constexpr std::uint32_t kSeqLimit = 0xfffffff0u;

    /**
     * Horizon splitting the two kernel bands.  Entries due within the
     * horizon go straight to the near heap; later ones sit in an
     * unsorted far band (O(1) admission) and are promoted in batches
     * when the heap would otherwise run past them.  Keeping the heap
     * small — cores and imminent refresh wakes, not every retention
     * deadline tens of thousands of ticks out — makes every sift touch
     * two or three rungs instead of five.
     */
    static constexpr Tick kFarHorizon = 4096;

    std::uint32_t
    nextSeq()
    {
        panicIf(seq_ >= kSeqLimit, "event sequence space exhausted");
        return seq_++;
    }

    /** Route a new entry to the near heap or the far band. */
    void
    admit(const Key &k, const Val &v)
    {
        if (k.when >= now_ + kFarHorizon) {
            far_.push_back(Entry{k, v});
            if (k.when < farMin_)
                farMin_ = k.when;
        } else {
            push(k, v);
        }
    }

    /** 4-ary implicit heap: children of i are 4i+1 .. 4i+4.  Sifts use
     *  a hole (move parents/children over it, place the element once);
     *  comparisons read only the packed key array. */
    void
    push(const Key &k, const Val &v)
    {
        keys_.push_back(k); // grow; the value is re-placed below
        vals_.push_back(v);
        std::size_t i = keys_.size() - 1;
        while (i != 0) {
            const std::size_t parent = (i - 1) >> 2;
            if (!k.before(keys_[parent]))
                break;
            keys_[i] = keys_[parent];
            vals_[i] = vals_[parent];
            i = parent;
        }
        keys_[i] = k;
        vals_[i] = v;
    }

    /** Remove the top entry (heap must be non-empty). */
    void
    popTop()
    {
        const Key movedK = keys_.back();
        const Val movedV = vals_.back();
        keys_.pop_back();
        vals_.pop_back();
        const std::size_t n = keys_.size();
        if (n == 0)
            return;
        std::size_t i = 0;
        for (;;) {
            const std::size_t base = (i << 2) + 1;
            if (base >= n)
                break;
            std::size_t best = base;
            const std::size_t end = base + 4 < n ? base + 4 : n;
            for (std::size_t c = base + 1; c < end; ++c) {
                if (keys_[c].before(keys_[best]))
                    best = c;
            }
            if (!keys_[best].before(movedK))
                break;
            keys_[i] = keys_[best];
            vals_[i] = vals_[best];
            i = best;
        }
        keys_[i] = movedK;
        vals_[i] = movedV;
    }

    /** Whether a popped entry was cancelled after being armed. */
    bool
    dead(const Key &k) const
    {
        return k.slot != EventHandle::kNoSlot &&
               slotLive_[k.slot] != k.seq;
    }

    /**
     * Make the globally earliest live entry the heap top: discard
     * cancelled tops and pull the far band in whenever its earliest
     * entry could order before (or tie-break against) the heap top.
     * @return false when no live entry remains anywhere.
     */
    bool
    prepareTop()
    {
        for (;;) {
            while (!keys_.empty() && dead(keys_.front()))
                popTop();
            if (far_.empty())
                return !keys_.empty();
            if (!keys_.empty() && keys_.front().when < farMin_)
                return true; // strict <: an equal-tick far entry could
                             // carry a smaller seq
            promoteFar();
        }
    }

    /** Move the far band's next horizon window into the near heap. */
    void promoteFar();

    static constexpr std::uint32_t kNoLiveSeq = 0xffffffffu;

    std::uint32_t
    allocSlot()
    {
        if (!freeSlots_.empty()) {
            const std::uint32_t s = freeSlots_.back();
            freeSlots_.pop_back();
            return s;
        }
        slotLive_.push_back(kNoLiveSeq);
        return static_cast<std::uint32_t>(slotLive_.size() - 1);
    }

    /** Retire the slot's live event (fired or cancelled) and make the
     *  slot reusable.  Sequence numbers are unique, so a stale handle
     *  or heap entry can never match a later occupant. */
    void
    freeSlot(std::uint32_t slot)
    {
        slotLive_[slot] = kNoLiveSeq;
        freeSlots_.push_back(slot);
    }

    std::uint32_t
    allocFn(std::function<void(Tick)> fn)
    {
        if (!freeFns_.empty()) {
            const std::uint32_t i = freeFns_.back();
            freeFns_.pop_back();
            fns_[i] = std::move(fn);
            return i;
        }
        fns_.push_back(std::move(fn));
        return static_cast<std::uint32_t>(fns_.size() - 1);
    }

    /** Dispatch a live popped entry (already removed from the heap). */
    void
    dispatch(const Key &k, const Val &v)
    {
        --live_;
        now_ = k.when;
        if (k.slot != EventHandle::kNoSlot)
            freeSlot(k.slot); // the handle is spent once the event fires
        if (v.client != nullptr)
            v.client->fire(now_, v.tag);
        else
            dispatchFn(v);
    }

    /** One-shot slab path, out of line (the rare case). */
    void dispatchFn(const Val &v);

    std::vector<Key> keys_; ///< near band (implicit 4-ary heap), keys
    std::vector<Val> vals_; ///< near band payloads, parallel to keys_
    std::vector<Entry> far_; ///< far band (unsorted; batch-promoted)
    Tick farMin_ = kTickNever; ///< earliest `when` in the far band
    std::vector<std::function<void(Tick)>> fns_; ///< one-shot slab
    std::vector<std::uint32_t> freeFns_;
    std::vector<std::uint32_t> slotLive_; ///< live event seq per slot
    std::vector<std::uint32_t> freeSlots_;
    std::size_t live_ = 0;
    Tick now_ = 0;

    /** 32-bit so the heap key stays 16 bytes; ~4.3e9 events per queue
     *  lifetime, guarded by nextSeq()'s clean panic.  The largest
     *  paper-scale runs schedule tens of millions. */
    std::uint32_t seq_ = 0;
};

} // namespace refrint

#endif // REFRINT_SIM_EVENT_QUEUE_HH
