/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-ordered queue of (tick, sequence, callback) entries.
 * Components either derive from EventClient and schedule themselves, or
 * enqueue one-shot lambdas.  Sequence numbers break ties so simultaneous
 * events fire in scheduling order, which makes runs fully deterministic.
 */

#ifndef REFRINT_SIM_EVENT_QUEUE_HH
#define REFRINT_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace refrint
{

/** Interface for components that receive scheduled callbacks. */
class EventClient
{
  public:
    virtual ~EventClient() = default;

    /**
     * Called when a scheduled event fires.
     * @param now   The current simulation tick.
     * @param tag   The tag passed at schedule time (dispatch aid for
     *              clients with several event kinds).
     */
    virtual void fire(Tick now, std::uint64_t tag) = 0;
};

/**
 * The global event queue.  Not thread-safe by design: the entire
 * simulation is a single deterministic thread.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Schedule @p client->fire(when, tag); @p when must be >= now(). */
    void
    schedule(Tick when, EventClient *client, std::uint64_t tag = 0)
    {
        panicIf(when < now_, "event scheduled in the past");
        heap_.push(Entry{when, seq_++, client, tag, {}});
    }

    /** Schedule a one-shot callable. */
    void
    scheduleFn(Tick when, std::function<void(Tick)> fn)
    {
        panicIf(when < now_, "event scheduled in the past");
        heap_.push(Entry{when, seq_++, nullptr, 0, std::move(fn)});
    }

    /** Current simulation time (last dispatched event's tick). */
    Tick now() const { return now_; }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Dispatch the single earliest event.  @return false if empty. */
    bool step();

    /**
     * Run until the queue drains or simulated time would pass @p limit.
     * Events scheduled at exactly @p limit still fire.
     * @return the final simulation time.
     */
    Tick run(Tick limit = kTickNever);

    /** Drop all pending events (used between experiment runs). */
    void clear();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventClient *client;
        std::uint64_t tag;
        std::function<void(Tick)> fn;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace refrint

#endif // REFRINT_SIM_EVENT_QUEUE_HH
