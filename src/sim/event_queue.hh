/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-ordered queue of (tick, sequence) entries.  Components
 * either derive from EventClient and schedule themselves, or enqueue
 * one-shot lambdas.  Sequence numbers break ties so simultaneous events
 * fire in scheduling order, which makes runs fully deterministic.
 *
 * Hot-path layout, three bands by time-to-fire:
 *
 *  - Wheel (due within kWheelSpan ticks): a 64-slot timing wheel —
 *    one bucket per tick of the sliding window [base_, base_+63], a
 *    64-bit occupancy mask, O(1) admission and dispatch.  Core-like
 *    clients reschedule a handful of ticks out, so the dominant event
 *    population never touches a comparison sort at all; per-event cost
 *    is flat in the client count (the 4-ary heap's sift depth grew
 *    with the core count, which is why a 32-core machine used to
 *    dispatch slower than a 16-core one).
 *
 *  - Heap (due within kFarHorizon): a flat 4-ary implicit heap, split
 *    SoA-style into 16-byte ordering keys (tick, seq, cancellation
 *    slot) and 16-byte payloads so sift comparisons scan packed keys
 *    only.  Entries migrate heap -> wheel in pop order when the window
 *    slides over them, which preserves the (when, seq) total order.
 *
 *  - Far band (beyond kFarHorizon): unsorted, O(1) admission, batch
 *    promotion into the heap, keeping the heap at core-count scale
 *    instead of holding every retention deadline.
 *
 * The 99% case (an EventClient callback) never touches a
 * std::function; one-shot lambdas are parked in a side slab and
 * referenced by index.
 *
 * Cancellation is lazy and O(1): a handle names a slot stamped with its
 * event's sequence number; cancel() retires the stamp and the dead
 * entry is skipped (without advancing time) when it surfaces.
 *
 * Ordering invariants the wheel maintains (see DESIGN.md "Kernel
 * round 2"):
 *  - every bucket holds entries of exactly one absolute tick, kept
 *    seq-sorted: fresh admissions always carry the largest seq so far
 *    (append), and heap migrations arrive in heap pop order (a rare
 *    backward insert positions an old-seq migrant before same-tick
 *    fresh entries);
 *  - user code only runs during dispatch, when now_ == base_, so a
 *    schedule() can never target a bucket behind the window;
 *  - a bounded run() that leaves base_ ahead of now_ may later see an
 *    admission behind the window; it lands in the heap and a backward
 *    window move flushes the wheel through the heap first, so buckets
 *    never mix ticks.
 */

#ifndef REFRINT_SIM_EVENT_QUEUE_HH
#define REFRINT_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/arena.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace refrint
{

/** Interface for components that receive scheduled callbacks. */
class EventClient
{
  public:
    virtual ~EventClient() = default;

    /**
     * Called when a scheduled event fires.
     * @param now   The current simulation tick.
     * @param tag   The tag passed at schedule time (dispatch aid for
     *              clients with several event kinds).
     */
    virtual void fire(Tick now, std::uint64_t tag) = 0;
};

/**
 * Names one cancellable scheduled event.  Default-constructed handles
 * are inert: cancel() on them is a no-op returning false.  A handle is
 * spent once the event fires or is cancelled; cancelling a spent handle
 * is safe (the slot's live sequence number no longer matches).
 */
struct EventHandle
{
    static constexpr std::uint32_t kNoSlot = 0xffffffffu;

    std::uint32_t slot = kNoSlot;
    std::uint32_t seq = 0; ///< sequence number of the named event

    bool pending() const { return slot != kNoSlot; }
};

/**
 * The global event queue.  Not thread-safe by design: the entire
 * simulation is a single deterministic thread.
 */
class EventQueue
{
  public:
    /** @p arena, when non-null, backs the kernel's bands and slabs so
     *  a worker can recycle them across runs (common/arena.hh). */
    explicit EventQueue(Arena *arena = nullptr)
        : keys_(ArenaAllocator<Key>(arena)),
          vals_(ArenaAllocator<Val>(arena)),
          far_(ArenaAllocator<Entry>(arena)),
          freeFns_(ArenaAllocator<std::uint32_t>(arena)),
          slotLive_(ArenaAllocator<std::uint32_t>(arena)),
          freeSlots_(ArenaAllocator<std::uint32_t>(arena))
    {
        for (auto &b : wheel_)
            b = ArenaVector<Entry>(ArenaAllocator<Entry>(arena));
    }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Schedule @p client->fire(when, tag); @p when must be >= now(). */
    void
    schedule(Tick when, EventClient *client, std::uint64_t tag = 0)
    {
        panicIf(when < now_, "event scheduled in the past");
        admit(Key{when, nextSeq(), EventHandle::kNoSlot},
              Val{client, tag});
        ++live_;
    }

    /**
     * Schedule @p client->fire(when, tag) and return a handle that can
     * revoke it before it fires.  Consumes the same global sequence
     * number a plain schedule() would, so interleavings with other
     * same-tick events are unchanged.
     */
    EventHandle
    scheduleCancellable(Tick when, EventClient *client,
                        std::uint64_t tag = 0)
    {
        panicIf(when < now_, "event scheduled in the past");
        const std::uint32_t slot = allocSlot();
        const std::uint32_t seq = nextSeq();
        slotLive_[slot] = seq;
        admit(Key{when, seq, slot}, Val{client, tag});
        ++live_;
        return EventHandle{slot, seq};
    }

    /**
     * Revoke the event named by @p h.  O(1): the entry is marked dead
     * by retiring the slot's live sequence number and melts away when
     * it surfaces.
     * @return true if the event was still pending (and is now dead).
     */
    bool
    cancel(const EventHandle &h)
    {
        // The size check also covers handles that predate a clear():
        // clear() empties the slot table, spending every handle.
        if (!h.pending() || h.slot >= slotLive_.size() ||
            slotLive_[h.slot] != h.seq)
            return false; // inert, already fired, or already cancelled
        freeSlot(h.slot);
        --live_;
        return true;
    }

    /** Schedule a one-shot callable. */
    void
    scheduleFn(Tick when, std::function<void(Tick)> fn)
    {
        panicIf(when < now_, "event scheduled in the past");
        const std::uint32_t idx = allocFn(std::move(fn));
        admit(Key{when, nextSeq(), EventHandle::kNoSlot},
              Val{nullptr, idx});
        ++live_;
    }

    /** Current simulation time (last dispatched event's tick). */
    Tick now() const { return now_; }

    /** Live (non-cancelled) pending events. */
    bool empty() const { return live_ == 0; }
    std::size_t size() const { return live_; }

    /** Dispatch the single earliest live event.  @return false if no
     *  live event remains.  Inline: this is the simulation main loop. */
    bool
    step()
    {
        for (;;) {
            const ArenaVector<Entry> &b = bucketOf(base_);
            while (pos_ < b.size()) {
                const Entry e = b[pos_++]; // copy: fire() may grow b
                if (dead(e.key))
                    continue; // cancelled: melts, time does not advance
                dispatch(e.key, e.val);
                return true;
            }
            if (!prepareNext(kTickNever))
                return false;
        }
    }

    /**
     * Run until the queue drains or simulated time would pass @p limit.
     * Events scheduled at exactly @p limit still fire.
     * @return the final simulation time.
     */
    Tick run(Tick limit = kTickNever);

    /** Drop all pending events (used between experiment runs). */
    void clear();

  private:
    /** Ordering key, 16 bytes: four keys per cache line, so the sift
     *  children scans touch a single line per rung. */
    struct Key
    {
        Tick when;
        std::uint32_t seq;  ///< tie-break; doubles as cancel stamp
        std::uint32_t slot; ///< cancellation slot, or kNoSlot

        bool
        before(const Key &o) const
        {
            return when != o.when ? when < o.when : seq < o.seq;
        }
    };

    /** Dispatch payload, 16 bytes; moved alongside its key but never
     *  read during sift comparisons. */
    struct Val
    {
        EventClient *client; ///< nullptr => one-shot fn; tag = fn index
        std::uint64_t tag;
    };

    /** Wheel-bucket / far-band entry (unsorted storage; never sifted). */
    struct Entry
    {
        Key key;
        Val val;
    };

    static constexpr std::uint32_t kSeqLimit = 0xfffffff0u;

    /** Timing-wheel geometry: one bucket per tick of the sliding
     *  window [base_, base_ + kWheelMask].  64 slots so the occupancy
     *  mask is a single word and the window comfortably covers the
     *  few-tick self-reschedule deltas core-like clients use. */
    static constexpr unsigned kWheelSize = 64;
    static constexpr Tick kWheelMask = kWheelSize - 1;

    /**
     * Horizon splitting the heap from the far band.  Entries due within
     * the horizon (but beyond the wheel) go to the near heap; later
     * ones sit in an unsorted far band (O(1) admission) and are
     * promoted in batches when the heap would otherwise run past them.
     * Keeping the heap small — imminent refresh wakes, not every
     * retention deadline tens of thousands of ticks out — makes every
     * sift touch two or three rungs instead of five.
     */
    static constexpr Tick kFarHorizon = 4096;

    std::uint32_t
    nextSeq()
    {
        panicIf(seq_ >= kSeqLimit, "event sequence space exhausted");
        return seq_++;
    }

    ArenaVector<Entry> &bucketOf(Tick t) { return wheel_[t & kWheelMask]; }

    /** Route a new entry to the wheel, the near heap or the far band.
     *  Callers run either before the first dispatch or inside one, so
     *  now_ == base_ and `when - base_` cannot underflow for any
     *  admissible when — except after a bounded run() left base_ ahead
     *  of now_, where the underflow wraps huge and correctly routes
     *  the entry to the heap (see prepareNext's backward-move flush). */
    void
    admit(const Key &k, const Val &v)
    {
        if (k.when >= now_ + kFarHorizon) {
            far_.push_back(Entry{k, v});
            if (k.when < farMin_)
                farMin_ = k.when;
        } else if (k.when - base_ < kWheelSize) {
            bucketInsert(k, v);
        } else {
            push(k, v);
        }
    }

    /**
     * Insert into the bucket of k.when, keeping the bucket seq-sorted.
     * Fresh admissions always carry the largest seq yet, so the append
     * fast path covers them; only heap->wheel migrants (admitted long
     * ago, hence smaller seq than same-tick fresh entries) take the
     * backward walk, and never into the consumed prefix of the current
     * bucket (migration only happens at a window move, pos_ == 0).
     */
    void
    bucketInsert(const Key &k, const Val &v)
    {
        ArenaVector<Entry> &b = bucketOf(k.when);
        occ_ |= 1ull << (k.when & kWheelMask);
        if (b.empty() || b.back().key.seq < k.seq) {
            b.push_back(Entry{k, v});
            return;
        }
        auto it = b.end();
        while (it != b.begin() && (it - 1)->key.seq > k.seq)
            --it;
        b.insert(it, Entry{k, v});
    }

    /** 4-ary implicit heap: children of i are 4i+1 .. 4i+4.  Sifts use
     *  a hole (move parents/children over it, place the element once);
     *  comparisons read only the packed key array. */
    void
    push(const Key &k, const Val &v)
    {
        keys_.push_back(k); // grow; the value is re-placed below
        vals_.push_back(v);
        std::size_t i = keys_.size() - 1;
        while (i != 0) {
            const std::size_t parent = (i - 1) >> 2;
            if (!k.before(keys_[parent]))
                break;
            keys_[i] = keys_[parent];
            vals_[i] = vals_[parent];
            i = parent;
        }
        keys_[i] = k;
        vals_[i] = v;
    }

    /** Remove the top entry (heap must be non-empty). */
    void
    popTop()
    {
        const Key movedK = keys_.back();
        const Val movedV = vals_.back();
        keys_.pop_back();
        vals_.pop_back();
        const std::size_t n = keys_.size();
        if (n == 0)
            return;
        std::size_t i = 0;
        for (;;) {
            const std::size_t base = (i << 2) + 1;
            if (base >= n)
                break;
            std::size_t best = base;
            const std::size_t end = base + 4 < n ? base + 4 : n;
            for (std::size_t c = base + 1; c < end; ++c) {
                if (keys_[c].before(keys_[best]))
                    best = c;
            }
            if (!keys_[best].before(movedK))
                break;
            keys_[i] = keys_[best];
            vals_[i] = vals_[best];
            i = best;
        }
        keys_[i] = movedK;
        vals_[i] = movedV;
    }

    /** Whether an entry was cancelled after being armed. */
    bool
    dead(const Key &k) const
    {
        return k.slot != EventHandle::kNoSlot &&
               slotLive_[k.slot] != k.seq;
    }

    /**
     * The current bucket is exhausted: retire it and slide the window
     * to the earliest pending tick anywhere in the kernel (wheel,
     * heap, or far band), migrating heap entries that fall inside the
     * new window into their buckets.  Commits nothing past @p limit.
     * @return false when there is nothing to dispatch at or before
     * @p limit (base_ is then left unmoved).
     */
    bool prepareNext(Tick limit);

    /** Earliest occupied wheel tick strictly after base_, or never. */
    Tick
    nextWheelTick() const
    {
        if (occ_ == 0)
            return kTickNever;
        const unsigned from = static_cast<unsigned>((base_ + 1) & kWheelMask);
        const std::uint64_t r =
            (occ_ >> from) | (from == 0 ? 0 : occ_ << (kWheelSize - from));
        return base_ + 1 +
               static_cast<Tick>(__builtin_ctzll(r));
    }

    /** Rare slow path: a bounded run() slid the window past now_ and a
     *  caller then scheduled behind it — push every bucketed entry back
     *  through the heap so the window can move backward without ever
     *  mixing ticks in a bucket. */
    void flushWheelToHeap();

    /** Move the far band's next horizon window into the near heap. */
    void promoteFar();

    static constexpr std::uint32_t kNoLiveSeq = 0xffffffffu;

    std::uint32_t
    allocSlot()
    {
        if (!freeSlots_.empty()) {
            const std::uint32_t s = freeSlots_.back();
            freeSlots_.pop_back();
            return s;
        }
        slotLive_.push_back(kNoLiveSeq);
        return static_cast<std::uint32_t>(slotLive_.size() - 1);
    }

    /** Retire the slot's live event (fired or cancelled) and make the
     *  slot reusable.  Sequence numbers are unique, so a stale handle
     *  or queue entry can never match a later occupant. */
    void
    freeSlot(std::uint32_t slot)
    {
        slotLive_[slot] = kNoLiveSeq;
        freeSlots_.push_back(slot);
    }

    std::uint32_t
    allocFn(std::function<void(Tick)> fn)
    {
        if (!freeFns_.empty()) {
            const std::uint32_t i = freeFns_.back();
            freeFns_.pop_back();
            fns_[i] = std::move(fn);
            return i;
        }
        fns_.push_back(std::move(fn));
        return static_cast<std::uint32_t>(fns_.size() - 1);
    }

    /** Dispatch a live entry (already consumed from its bucket). */
    void
    dispatch(const Key &k, const Val &v)
    {
        --live_;
        now_ = k.when;
        if (k.slot != EventHandle::kNoSlot)
            freeSlot(k.slot); // the handle is spent once the event fires
        if (v.client != nullptr)
            v.client->fire(now_, v.tag);
        else
            dispatchFn(v);
    }

    /** One-shot slab path, out of line (the rare case). */
    void dispatchFn(const Val &v);

    /** Timing wheel: bucket (t & 63) holds the entries of absolute
     *  tick t for t in [base_, base_+63], each bucket seq-sorted. */
    std::array<ArenaVector<Entry>, kWheelSize> wheel_;
    std::uint64_t occ_ = 0; ///< bucket-occupied bits, indexed (t & 63)
    Tick base_ = 0;         ///< window start == tick being dispatched
    std::size_t pos_ = 0;   ///< consumed prefix of the current bucket

    ArenaVector<Key> keys_; ///< mid band (implicit 4-ary heap), keys
    ArenaVector<Val> vals_; ///< mid band payloads, parallel to keys_
    ArenaVector<Entry> far_; ///< far band (unsorted; batch-promoted)
    Tick farMin_ = kTickNever; ///< earliest `when` in the far band
    std::vector<std::function<void(Tick)>> fns_; ///< one-shot slab
    ArenaVector<std::uint32_t> freeFns_;
    ArenaVector<std::uint32_t> slotLive_; ///< live event seq per slot
    ArenaVector<std::uint32_t> freeSlots_;
    std::size_t live_ = 0;
    Tick now_ = 0;

    /** 32-bit so the heap key stays 16 bytes; ~4.3e9 events per queue
     *  lifetime, guarded by nextSeq()'s clean panic.  The largest
     *  paper-scale runs schedule tens of millions. */
    std::uint32_t seq_ = 0;
};

} // namespace refrint

#endif // REFRINT_SIM_EVENT_QUEUE_HH
