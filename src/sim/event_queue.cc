#include "sim/event_queue.hh"

namespace refrint
{

void
EventQueue::dispatchFn(const Val &v)
{
    const auto idx = static_cast<std::uint32_t>(v.tag);
    // Move the callable out and free its slab slot *before* calling:
    // the body may schedule further one-shots (chain patterns).
    std::function<void(Tick)> fn = std::move(fns_[idx]);
    fns_[idx] = nullptr;
    freeFns_.push_back(idx);
    fn(now_);
}

void
EventQueue::promoteFar()
{
    // Pull everything inside the next horizon window into the heap and
    // compact the remainder in place; each entry is promoted at most
    // once, so the rescans amortize to O(1) per event.  Cancelled far
    // entries evaporate here without ever touching the heap.
    const Tick limit = farMin_ > kTickNever - kFarHorizon
                           ? kTickNever
                           : farMin_ + kFarHorizon;
    Tick newMin = kTickNever;
    std::size_t out = 0;
    for (const Entry &e : far_) {
        if (dead(e.key))
            continue;
        if (e.key.when <= limit) {
            push(e.key, e.val);
        } else {
            far_[out++] = e;
            if (e.key.when < newMin)
                newMin = e.key.when;
        }
    }
    far_.resize(out);
    farMin_ = newMin;
}

Tick
EventQueue::run(Tick limit)
{
    while (prepareTop() && keys_.front().when <= limit) {
        const Key k = keys_.front();
        const Val v = vals_.front();
        popTop();
        dispatch(k, v);
    }
    return now_;
}

void
EventQueue::clear()
{
    keys_.clear();
    vals_.clear();
    far_.clear();
    farMin_ = kTickNever;
    fns_.clear();
    freeFns_.clear();
    slotLive_.clear();
    freeSlots_.clear();
    live_ = 0;
    now_ = 0;
    // seq_ deliberately survives: ordering is relative, and keeping it
    // monotonic guarantees a pre-clear EventHandle can never alias a
    // post-clear event that recycles its slot.
}

} // namespace refrint
