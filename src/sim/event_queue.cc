#include "sim/event_queue.hh"

namespace refrint
{

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.when;
    if (e.client != nullptr)
        e.client->fire(now_, e.tag);
    else
        e.fn(now_);
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit)
        step();
    return now_;
}

void
EventQueue::clear()
{
    heap_ = {};
    now_ = 0;
    seq_ = 0;
}

} // namespace refrint
