#include "sim/event_queue.hh"

namespace refrint
{

void
EventQueue::dispatchFn(const Val &v)
{
    const auto idx = static_cast<std::uint32_t>(v.tag);
    // Move the callable out and free its slab slot *before* calling:
    // the body may schedule further one-shots (chain patterns).
    std::function<void(Tick)> fn = std::move(fns_[idx]);
    fns_[idx] = nullptr;
    freeFns_.push_back(idx);
    fn(now_);
}

void
EventQueue::promoteFar()
{
    // Pull everything inside the next horizon window into the heap and
    // compact the remainder in place; each entry is promoted at most
    // once, so the rescans amortize to O(1) per event.  Cancelled far
    // entries evaporate here without ever touching the heap.  Promotion
    // targets the heap only — the window slide migrates heap entries
    // into wheel buckets in pop order, which keeps buckets seq-sorted.
    const Tick limit = farMin_ > kTickNever - kFarHorizon
                           ? kTickNever
                           : farMin_ + kFarHorizon;
    Tick newMin = kTickNever;
    std::size_t out = 0;
    for (const Entry &e : far_) {
        if (dead(e.key))
            continue;
        if (e.key.when <= limit) {
            push(e.key, e.val);
        } else {
            far_[out++] = e;
            if (e.key.when < newMin)
                newMin = e.key.when;
        }
    }
    far_.resize(out);
    farMin_ = newMin;
}

void
EventQueue::flushWheelToHeap()
{
    for (auto &b : wheel_) {
        for (const Entry &e : b) {
            if (!dead(e.key))
                push(e.key, e.val);
        }
        b.clear();
    }
    occ_ = 0;
    pos_ = 0;
}

bool
EventQueue::prepareNext(Tick limit)
{
    for (;;) {
        // Retire the exhausted current bucket (every entry consumed).
        bucketOf(base_).clear();
        occ_ &= ~(1ull << (base_ & kWheelMask));
        pos_ = 0;

        // Melt cancelled heap tops so hNext names a live entry.
        while (!keys_.empty() && dead(keys_.front()))
            popTop();

        const Tick wNext = nextWheelTick();
        const Tick hNext = keys_.empty() ? kTickNever : keys_.front().when;
        const Tick cand = wNext < hNext ? wNext : hNext;

        // <= so an equal-tick far entry (which can carry a smaller seq
        // than the heap/wheel candidate) is promoted before committing.
        if (!far_.empty() && farMin_ <= cand) {
            promoteFar();
            continue; // recompute against the promoted entries
        }
        if (cand == kTickNever || cand > limit)
            return false; // base_ stays: the window has not moved

        if (cand < base_) {
            // A bounded run() slid the window past now_, and a caller
            // then scheduled earlier (heap-routed) work.  Rewind
            // through the heap so buckets never mix ticks.
            flushWheelToHeap();
        }
        base_ = cand;
        pos_ = 0;

        // Slide the window over the heap: entries now inside it become
        // bucket entries, in (when, seq) pop order.
        while (!keys_.empty() && keys_.front().when <= base_ + kWheelMask) {
            const Key k = keys_.front();
            const Val v = vals_.front();
            popTop();
            if (!dead(k))
                bucketInsert(k, v);
        }
        return true;
    }
}

Tick
EventQueue::run(Tick limit)
{
    for (;;) {
        const ArenaVector<Entry> &b = bucketOf(base_);
        bool dispatched = false;
        while (pos_ < b.size()) {
            const Entry e = b[pos_]; // copy: fire() may grow b
            if (dead(e.key)) {
                ++pos_;
                continue; // cancelled: melts, time does not advance
            }
            if (e.key.when > limit)
                return now_; // left pending for the next run()
            ++pos_;
            dispatch(e.key, e.val);
            dispatched = true;
            break;
        }
        if (dispatched)
            continue; // re-read the bucket: fire() may have grown it
        if (!prepareNext(limit))
            return now_;
    }
}

void
EventQueue::clear()
{
    for (auto &b : wheel_)
        b.clear();
    occ_ = 0;
    base_ = 0;
    pos_ = 0;
    keys_.clear();
    vals_.clear();
    far_.clear();
    farMin_ = kTickNever;
    fns_.clear();
    freeFns_.clear();
    slotLive_.clear();
    freeSlots_.clear();
    live_ = 0;
    now_ = 0;
    // seq_ deliberately survives: ordering is relative, and keeping it
    // monotonic guarantees a pre-clear EventHandle can never alias a
    // post-clear event that recycles its slot.
}

} // namespace refrint
