/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * We use our own PCG32 implementation rather than std::mt19937 so that
 * reference streams are reproducible across standard libraries and fast
 * enough to sit on the per-reference hot path.
 */

#ifndef REFRINT_COMMON_PRNG_HH
#define REFRINT_COMMON_PRNG_HH

#include <cstdint>

namespace refrint
{

/**
 * PCG32 generator (O'Neill, pcg-random.org, XSH-RR variant).
 *
 * Deterministic, 64-bit state, 32-bit output, cheap enough to call per
 * simulated memory reference.
 */
class Prng
{
  public:
    /** Seed with a stream id so per-core generators never collide. */
    explicit Prng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                  std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1u) | 1u;
        next();
        state_ += seed;
        next();
    }

    /** Next raw 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        auto rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** Uniform integer in [0, bound) with rejection for exactness. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        if (bound <= 1)
            return 0;
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Skewed rank in [0, n): rank = floor(n * u^s) for skew s >= 1.
     *
     * s == 1 degenerates to uniform; larger s concentrates draws near
     * rank 0, giving workload address streams a hot/cold temporal-locality
     * profile without a per-draw lookup table.  With skew s the hottest
     * 10% of ranks receive 1 - 0.1^(1/s)... i.e. s = 3 sends ~54% of
     * draws to the hottest 10%.
     */
    std::uint32_t
    skewed(std::uint32_t n, double s)
    {
        if (n <= 1)
            return 0;
        if (s <= 1.0)
            return below(n);
        double u = uniform();
        double v = u;
        // u^s for small integer-ish s without libm pow in the hot path.
        int whole = static_cast<int>(s);
        double acc = 1.0;
        for (int i = 0; i < whole; ++i)
            acc *= v;
        double frac = s - whole;
        if (frac > 1e-9)
            acc *= 1.0 - frac * (1.0 - v); // linear blend approximation
        auto idx = static_cast<std::uint32_t>(acc * n);
        return idx >= n ? n - 1 : idx;
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace refrint

#endif // REFRINT_COMMON_PRNG_HH
