#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace refrint
{
namespace detail
{

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

void
abortMsg(const char *tag, const std::string &msg)
{
    emit(tag, msg);
    std::abort();
}

} // namespace detail
} // namespace refrint
