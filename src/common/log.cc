#include "common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace refrint
{

namespace
{

std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

thread_local std::string tlPrefix;

} // namespace

LogPrefix::LogPrefix(std::string prefix) : prev_(std::move(tlPrefix))
{
    tlPrefix = std::move(prefix);
}

LogPrefix::~LogPrefix()
{
    tlPrefix = std::move(prev_);
}

namespace detail
{

void
emit(const char *tag, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    if (tlPrefix.empty())
        std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
    else
        std::fprintf(stderr, "[%s] (%s) %s\n", tag, tlPrefix.c_str(),
                     msg.c_str());
}

void
abortMsg(const char *tag, const std::string &msg)
{
    emit(tag, msg);
    std::abort();
}

} // namespace detail
} // namespace refrint
