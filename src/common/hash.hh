/**
 * @file
 * FNV-1a 64-bit hashing, shared by every keyed subsystem.
 *
 * One implementation serves the record-framing checksums and shard
 * selection of the experiment service (service/framing.hh,
 * service/store.cc) and the energy-model cache-key tag
 * (api/experiment_plan.cc).  The constants are load-bearing: framed
 * store files and |en=-tagged sweep-cache rows persist hashes on disk,
 * so changing them would orphan every existing store.
 */

#ifndef REFRINT_COMMON_HASH_HH
#define REFRINT_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace refrint
{

/** FNV-1a 64-bit basis / prime.  The basis is the value this repo has
 *  always used (it differs from the canonical FNV offset basis) — it
 *  is persisted in framed store files, so it must never change. */
constexpr std::uint64_t kFnv64Basis = 1469598103934665603ULL;
constexpr std::uint64_t kFnv64Prime = 1099511628211ULL;

/** Mix @p n bytes at @p data into a running FNV-1a state @p h. */
inline std::uint64_t
fnv64Mix(const void *data, std::size_t n,
         std::uint64_t h = kFnv64Basis)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnv64Prime;
    }
    return h;
}

/** FNV-1a 64 of a string's bytes. */
inline std::uint64_t
fnv64(const std::string &s)
{
    return fnv64Mix(s.data(), s.size());
}

} // namespace refrint

#endif // REFRINT_COMMON_HASH_HH
