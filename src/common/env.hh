/**
 * @file
 * Strict environment-variable parsing.
 *
 * The harness and the benches both read numeric knobs from the
 * environment (REFRINT_REFS, REFRINT_JOBS).  atoll-style parsing
 * silently turns garbage like "1e6" into 1, which makes a 120'000-ref
 * sweep quietly run one reference per core — so parsing is strict
 * here: plain decimal digits only, and anything else is rejected with
 * a warning.
 */

#ifndef REFRINT_COMMON_ENV_HH
#define REFRINT_COMMON_ENV_HH

#include <cerrno>
#include <cstdint>
#include <cstdlib>

#include "common/log.hh"

namespace refrint
{

/**
 * Parse @p s as a strictly-decimal unsigned integer.
 * @return true and set @p out only if the whole string is digits and
 *         fits in 64 bits; "1e6", "12k", "-3", "" all fail.
 */
inline bool
parseU64Strict(const char *s, std::uint64_t &out)
{
    if (s == nullptr || *s == '\0')
        return false;
    for (const char *p = s; *p != '\0'; ++p)
        if (*p < '0' || *p > '9')
            return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (errno == ERANGE || end == s || *end != '\0')
        return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

/**
 * Parse @p s as a strict finite decimal floating-point number: the
 * whole string must be consumed and the value must be finite.  Unlike
 * atof, "abc" and "" fail instead of silently becoming 0, and trailing
 * junk ("50us") is rejected.
 */
inline bool
parseF64Strict(const char *s, double &out)
{
    if (s == nullptr || *s == '\0')
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(s, &end);
    if (errno == ERANGE || end == s || *end != '\0')
        return false;
    if (!(v == v) || v > 1e300 || v < -1e300) // NaN / inf guards
        return false;
    out = v;
    return true;
}

/**
 * Read $@p name as a strict decimal integer; a malformed value is
 * warned about (naming the variable) and @p fallback is returned, as
 * it is for an unset variable.
 */
inline std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *s = std::getenv(name);
    if (s == nullptr)
        return fallback;
    std::uint64_t v = 0;
    if (!parseU64Strict(s, v)) {
        warn("%s: ignoring malformed value '%s' (want plain decimal "
             "digits)", name, s);
        return fallback;
    }
    return v;
}

} // namespace refrint

#endif // REFRINT_COMMON_ENV_HH
