/**
 * @file
 * Bump arena with chunk recycling, plus an STL allocator adaptor.
 *
 * A sweep builds and tears down one CmpSystem per scenario — hierarchy
 * units, refresh-engine heaps, event-queue bands — 473+ times for the
 * default plan.  Instead of round-tripping every vector through
 * malloc/free each time, a worker thread owns one Arena, hands it to
 * the run's construction chain, and reset()s it between scenarios: the
 * chunks stay hot in the worker's cache and the allocator becomes a
 * pointer bump.
 *
 * Ownership/lifetime contract:
 *  - The Arena must outlive every container allocated from it (Session
 *    resets a worker's arena only after the scenario's RunResult has
 *    been copied out; nothing arena-backed escapes a run).
 *  - reset() recycles all chunks without returning them to the OS;
 *    individual deallocation is a no-op (freed blocks are reclaimed at
 *    the next reset).  Vectors that grow leave their old blocks behind
 *    until then — bounded by the usual geometric-growth constant.
 *  - Arena* is nullable everywhere it is threaded: a null arena makes
 *    ArenaAllocator fall back to operator new/delete, so standalone
 *    construction (tests, tools) needs no arena at all.
 *  - An Arena serves one thread at a time (no internal locking).
 *
 * Determinism: the arena only changes *where* containers live, never
 * what they hold or how they iterate, so simulated results are
 * byte-identical with and without one.
 */

#ifndef REFRINT_COMMON_ARENA_HH
#define REFRINT_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace refrint
{

class Arena
{
  public:
    explicit Arena(std::size_t chunkBytes = 1u << 20)
        : chunkBytes_(chunkBytes < 4096 ? 4096 : chunkBytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Allocate @p bytes aligned to @p align (a power of two). */
    void *
    allocate(std::size_t bytes, std::size_t align)
    {
        if (bytes == 0)
            bytes = 1;
        for (;;) {
            if (cur_ < chunks_.size()) {
                Chunk &c = chunks_[cur_];
                // Align the absolute address, not the chunk offset:
                // operator new[] only guarantees max_align_t, so
                // over-aligned requests need the full computation.
                const auto base =
                    reinterpret_cast<std::uintptr_t>(c.mem.get());
                const std::size_t at =
                    alignUp(base + off_, align) - base;
                if (at + bytes <= c.size) {
                    off_ = at + bytes;
                    allocated_ += bytes;
                    return c.mem.get() + at;
                }
                // This chunk is exhausted for a request this size; move
                // on (the tail sliver is reclaimed at the next reset).
                ++cur_;
                off_ = 0;
                continue;
            }
            addChunk(bytes + align);
        }
    }

    /** Recycle every chunk: subsequent allocations reuse the existing
     *  memory from the start.  All outstanding blocks must be dead. */
    void
    reset()
    {
        cur_ = 0;
        off_ = 0;
        allocated_ = 0;
    }

    /** Bytes handed out since the last reset (diagnostics). */
    std::size_t allocatedBytes() const { return allocated_; }

    /** Total bytes of chunk capacity ever reserved (diagnostics). */
    std::size_t
    capacityBytes() const
    {
        std::size_t n = 0;
        for (const Chunk &c : chunks_)
            n += c.size;
        return n;
    }

  private:
    struct Chunk
    {
        std::unique_ptr<unsigned char[]> mem;
        std::size_t size = 0;
    };

    static std::size_t
    alignUp(std::size_t v, std::size_t align)
    {
        return (v + align - 1) & ~(align - 1);
    }

    void
    addChunk(std::size_t atLeast)
    {
        Chunk c;
        c.size = atLeast > chunkBytes_ ? atLeast : chunkBytes_;
        c.mem = std::make_unique<unsigned char[]>(c.size);
        chunks_.push_back(std::move(c));
        cur_ = chunks_.size() - 1;
        off_ = 0;
    }

    std::size_t chunkBytes_;
    std::vector<Chunk> chunks_;
    std::size_t cur_ = 0; ///< index of the chunk being bumped
    std::size_t off_ = 0; ///< bump offset within chunks_[cur_]
    std::size_t allocated_ = 0;
};

/**
 * STL allocator over a (nullable) Arena.  With a null arena it is
 * exactly operator new/delete, so arena-typed containers behave like
 * plain std::vector when no arena is supplied.
 */
template <typename T>
class ArenaAllocator
{
  public:
    using value_type = T;
    using propagate_on_container_copy_assignment = std::true_type;
    using propagate_on_container_move_assignment = std::true_type;
    using propagate_on_container_swap = std::true_type;

    ArenaAllocator() = default;
    explicit ArenaAllocator(Arena *arena) : arena_(arena) {}

    template <typename U>
    ArenaAllocator(const ArenaAllocator<U> &o) : arena_(o.arena())
    {
    }

    T *
    allocate(std::size_t n)
    {
        const std::size_t bytes = n * sizeof(T);
        if (arena_ != nullptr)
            return static_cast<T *>(arena_->allocate(bytes, alignof(T)));
        return static_cast<T *>(::operator new(bytes));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        if (arena_ == nullptr)
            ::operator delete(p);
        // Arena blocks are reclaimed wholesale at reset().
    }

    Arena *arena() const { return arena_; }

    template <typename U>
    bool
    operator==(const ArenaAllocator<U> &o) const
    {
        return arena_ == o.arena();
    }

    template <typename U>
    bool
    operator!=(const ArenaAllocator<U> &o) const
    {
        return arena_ != o.arena();
    }

  private:
    Arena *arena_ = nullptr;
};

/** Vector whose storage may come from a worker's recycled arena. */
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

} // namespace refrint

#endif // REFRINT_COMMON_ARENA_HH
