/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Every simulator component owns a StatGroup; counters register themselves
 * with a hierarchical name ("l3.bank0.refreshes") so the harness can dump
 * a flat map at the end of a run.  Counters are plain uint64 adds on the
 * hot path — no virtual dispatch, no locks (the simulator is
 * single-threaded).
 */

#ifndef REFRINT_COMMON_STATS_HH
#define REFRINT_COMMON_STATS_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace refrint
{

class StatGroup;

/** A single monotonically increasing counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t by = 1) { value_ += by; }
    void set(std::uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** A double-valued accumulator (energies in joules, fractions, ...). */
class Accum
{
  public:
    Accum() = default;

    void add(double by) { value_ += by; }
    void set(double v) { value_ = v; }
    void reset() { value_ = 0.0; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * A group of named statistics.
 *
 * Groups own their counters by value (stable addresses via deque-like
 * storage) and can be nested by name prefix only — there is no parent
 * pointer, keeping components decoupled.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string prefix) : prefix_(std::move(prefix)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register and return a counter named prefix.name. */
    Counter &counter(const std::string &name);

    /** Register and return an accumulator named prefix.name. */
    Accum &accum(const std::string &name);

    /** Counter registered as @p name, or nullptr.  Lets consumers keep
     *  direct handles instead of rebuilding keyed string maps. */
    const Counter *findCounter(const std::string &name) const;

    /** Accumulator registered as @p name, or nullptr. */
    const Accum *findAccum(const std::string &name) const;

    /** Flatten all registered stats into @p out (appends). */
    void dump(std::map<std::string, double> &out) const;

    /** Reset every stat in the group to zero. */
    void resetAll();

    const std::string &prefix() const { return prefix_; }

  private:
    /** (Re)build the cached dump index of prefixed names. */
    void rebuildIndex() const;

    std::string prefix_;
    // Stats live in deques (stable addresses — components cache
    // Counter& across the run — and chunk-contiguous storage, so a
    // group's hot counters share a couple of cache lines instead of
    // one scattered map node each); the maps only index them by name.
    std::deque<Counter> counterStore_;
    std::deque<Accum> accumStore_;
    std::map<std::string, Counter *> counters_;
    std::map<std::string, Accum *> accums_;

    /** Sorted (full name, stat) index built once per registration epoch
     *  and reused by every dump() — the full-name strings are not
     *  re-concatenated per call. */
    struct IndexEntry
    {
        std::string fullName;
        const Counter *counter; ///< one of counter/accum is set
        const Accum *accum;
    };
    mutable std::vector<IndexEntry> index_;
    mutable bool indexStale_ = true;
};

} // namespace refrint

#endif // REFRINT_COMMON_STATS_HH
