#include "common/stats.hh"

namespace refrint
{

Counter &
StatGroup::counter(const std::string &name)
{
    return counters_[name];
}

Accum &
StatGroup::accum(const std::string &name)
{
    return accums_[name];
}

void
StatGroup::dump(std::map<std::string, double> &out) const
{
    for (const auto &[name, c] : counters_)
        out[prefix_ + "." + name] = static_cast<double>(c.value());
    for (const auto &[name, a] : accums_)
        out[prefix_ + "." + name] = a.value();
}

void
StatGroup::resetAll()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, a] : accums_)
        a.reset();
}

} // namespace refrint
