#include "common/stats.hh"

namespace refrint
{

Counter &
StatGroup::counter(const std::string &name)
{
    auto [it, inserted] = counters_.try_emplace(name, nullptr);
    if (inserted) {
        counterStore_.emplace_back();
        it->second = &counterStore_.back();
        indexStale_ = true;
    }
    return *it->second;
}

Accum &
StatGroup::accum(const std::string &name)
{
    auto [it, inserted] = accums_.try_emplace(name, nullptr);
    if (inserted) {
        accumStore_.emplace_back();
        it->second = &accumStore_.back();
        indexStale_ = true;
    }
    return *it->second;
}

const Counter *
StatGroup::findCounter(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second;
}

const Accum *
StatGroup::findAccum(const std::string &name) const
{
    const auto it = accums_.find(name);
    return it == accums_.end() ? nullptr : it->second;
}

void
StatGroup::rebuildIndex() const
{
    index_.clear();
    index_.reserve(counters_.size() + accums_.size());
    for (const auto &[name, c] : counters_)
        index_.push_back(IndexEntry{prefix_ + "." + name, c, nullptr});
    for (const auto &[name, a] : accums_)
        index_.push_back(IndexEntry{prefix_ + "." + name, nullptr, a});
    indexStale_ = false;
}

void
StatGroup::dump(std::map<std::string, double> &out) const
{
    if (indexStale_)
        rebuildIndex();
    for (const IndexEntry &e : index_) {
        out[e.fullName] = e.counter != nullptr
                              ? static_cast<double>(e.counter->value())
                              : e.accum->value();
    }
}

void
StatGroup::resetAll()
{
    for (Counter &c : counterStore_)
        c.reset();
    for (Accum &a : accumStore_)
        a.reset();
}

} // namespace refrint
