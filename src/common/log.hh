/**
 * @file
 * Error reporting helpers in the gem5 spirit.
 *
 * panic()  — an internal simulator invariant was violated; aborts.
 * fatal()  — the user supplied an impossible configuration; exits.
 * warn()   — something is suspicious but the simulation can continue.
 * inform() — plain status output.
 */

#ifndef REFRINT_COMMON_LOG_HH
#define REFRINT_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace refrint
{

namespace detail
{
/** Emit a tagged message to stderr; defined out of line.  Serialized
 *  by an internal mutex so concurrent sweep workers never interleave
 *  partial lines. */
void emit(const char *tag, const std::string &msg);
[[noreturn]] void abortMsg(const char *tag, const std::string &msg);
} // namespace detail

/**
 * RAII log prefix for the calling thread: while alive, every message
 * emitted from this thread is tagged "(prefix) ".  Sweep workers use
 * it to label output with their (app, policy, retention) run, since
 * with --jobs > 1 lines from different runs interleave.  Nests;
 * restores the previous prefix on destruction.
 */
class LogPrefix
{
  public:
    explicit LogPrefix(std::string prefix);
    ~LogPrefix();

    LogPrefix(const LogPrefix &) = delete;
    LogPrefix &operator=(const LogPrefix &) = delete;

  private:
    std::string prev_;
};

/** Report an internal invariant violation and abort. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    char buf[1024];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    detail::abortMsg("panic", buf);
}

inline void
panicIf(bool cond, const char *msg)
{
    if (cond)
        detail::abortMsg("panic", msg);
}

/** Report an unusable user configuration and exit with an error code. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    char buf[1024];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    detail::emit("fatal", buf);
    std::exit(1);
}

/** Warn about behaviour that might be wrong but is survivable. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    char buf[1024];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    detail::emit("warn", buf);
}

/** Plain, non-alarming status message. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    char buf[1024];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    detail::emit("info", buf);
}

} // namespace refrint

#endif // REFRINT_COMMON_LOG_HH
