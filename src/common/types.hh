/**
 * @file
 * Fundamental types shared across the Refrint simulator.
 *
 * The simulated chip runs at 1 GHz (Table 5.1), so one tick equals one
 * cycle equals one nanosecond.  All latencies in the paper are given in
 * nanoseconds, which keeps conversions trivial.
 */

#ifndef REFRINT_COMMON_TYPES_HH
#define REFRINT_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace refrint
{

/** Simulation time in cycles (1 cycle == 1 ns at the 1 GHz target). */
using Tick = std::uint64_t;

/** Physical byte address. */
using Addr = std::uint64_t;

/** Core (and tile) identifier, 0..15 on the evaluated 16-core CMP. */
using CoreId = std::uint32_t;

/** Sentinel for "no tick scheduled". */
inline constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/** Simulated clock frequency, cycles per second. */
inline constexpr std::uint64_t kTicksPerSecond = 1'000'000'000ULL;

/** Convert microseconds of wall time into ticks at 1 GHz. */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * 1e3);
}

/** Convert nanoseconds into ticks at 1 GHz. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns);
}

/** Convert ticks into seconds of simulated time. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSecond);
}

/** Integer log2 for power-of-two values (used for address slicing). */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    unsigned r = 0;
    while (x > 1) {
        x >>= 1;
        ++r;
    }
    return r;
}

/** True iff @p x is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace refrint

#endif // REFRINT_COMMON_TYPES_HH
