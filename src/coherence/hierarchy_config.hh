/**
 * @file
 * Configuration of the full CMP memory hierarchy (paper Table 5.1)
 * including the cell technology and refresh setup (Tables 5.2/5.4).
 */

#ifndef REFRINT_COHERENCE_HIERARCHY_CONFIG_HH
#define REFRINT_COHERENCE_HIERARCHY_CONFIG_HH

#include <cstdint>

#include "common/types.hh"
#include "edram/refresh_engine.hh"
#include "edram/refresh_policy.hh"
#include "edram/retention.hh"
#include "mem/cache_geometry.hh"
#include "related/decay.hh"
#include "thermal/thermal_model.hh"

namespace refrint
{

/** Memory cell technology of the on-chip hierarchy (Table 5.2). */
enum class CellTech : std::uint8_t
{
    Sram = 0, ///< baseline: high leakage, no refresh
    Edram,    ///< proposed: quarter leakage, needs refresh
};

const char *cellTechName(CellTech t);

struct HierarchyConfig
{
    std::uint32_t numCores = 16;
    std::uint32_t numBanks = 16;
    std::uint32_t torusDim = 4;

    // Table 5.1 cache parameters; latencies in cycles at 1 GHz.
    CacheGeometry il1{32 * 1024, 2, 64, 1};
    CacheGeometry dl1{32 * 1024, 4, 64, 1};
    CacheGeometry l2{256 * 1024, 8, 64, 2};
    // The L3 bank's set index skips the 4 bank-select bits (indexShift).
    // hashSets: the shared L3 XOR-folds the index (see cache_geometry.hh).
    CacheGeometry l3Bank{1024 * 1024, 8, 64, 4, 4, true};

    Tick hopLatency = 2;         ///< per torus router+link traversal
    Tick dataSerialization = 4;  ///< extra cycles for a 64B payload
    Tick dramLatency = 40;       ///< Table 5.1: 40 ns
    Tick dramMinGap = 4;         ///< channel occupancy per access

    CellTech tech = CellTech::Edram;

    /** Swept refresh policy, applied at the shared L3 (§6.2). */
    RefreshPolicy l3Policy = RefreshPolicy::refrint(DataPolicy::Valid);

    /**
     * Data policy pinned at L1/L2.  The paper always runs the private
     * levels at Valid because they carry almost no refresh energy and
     * replacement already evicts their dead lines quickly (§6.2).
     */
    DataPolicy upperDataPolicy = DataPolicy::Valid;

    RetentionParams retention{usToTicks(50.0), kTickNever, {}, {}};

    /** Activity-driven per-bank temperatures feeding back into the
     *  retention (src/thermal/); disabled by default, which preserves
     *  the paper's isothermal evaluation bit for bit. */
    ThermalParams thermal;

    /** Cache-decay comparator settings (SRAM machines only, §7). */
    DecayConfig decay;

    // Engine microarchitecture (paper §5): sentry interrupt grouping of
    // 1/4/16 lines for L1/L2/L3 and 4 periodic groups per bank.
    EngineGeometry l1Engine{1, 4, 16};
    EngineGeometry l2Engine{4, 4, 32};
    EngineGeometry l3Engine{16, 4, 64};

    bool refreshEnabled() const { return tech == CellTech::Edram; }

    /** Refresh policy effective at the private levels. */
    RefreshPolicy
    upperPolicy() const
    {
        RefreshPolicy p = l3Policy;
        p.data = upperDataPolicy;
        return p;
    }

    /** Shrink every cache by @p factor (power of two) for fast tests. */
    HierarchyConfig scaledDown(std::uint32_t factor) const;

    /** The paper's evaluated machine with an SRAM hierarchy. */
    static HierarchyConfig paperSram();

    /** The SRAM machine with cache decay enabled at L2/L3 (§7). */
    static HierarchyConfig paperSramDecay(Tick interval);

    /** The paper's machine with eDRAM + the given policy/retention. */
    static HierarchyConfig paperEdram(const RefreshPolicy &policy,
                                      Tick retention);

    /** The eDRAM machine with the thermal subsystem enabled at the
     *  given ambient temperature (deg C). */
    static HierarchyConfig paperEdramThermal(const RefreshPolicy &policy,
                                             Tick retention,
                                             double ambientC);
};

} // namespace refrint

#endif // REFRINT_COHERENCE_HIERARCHY_CONFIG_HH
