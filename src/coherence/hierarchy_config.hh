/**
 * @file
 * Compatibility shim: the fixed-shape HierarchyConfig grew into the
 * level-descriptor-driven MachineConfig (src/config/machine_config.hh).
 * Includers of the old header keep working through this alias.
 */

#ifndef REFRINT_COHERENCE_HIERARCHY_CONFIG_HH
#define REFRINT_COHERENCE_HIERARCHY_CONFIG_HH

#include "config/machine_config.hh"

#endif // REFRINT_COHERENCE_HIERARCHY_CONFIG_HH
