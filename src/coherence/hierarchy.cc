#include "coherence/hierarchy.hh"

#include <string>

#include "common/log.hh"
#include "edram/refresh_engine.hh"

namespace refrint
{

/**
 * Adapter binding a refresh engine to one cache unit within the
 * hierarchy.  Heavy actions (write-back, invalidation) route back into
 * the hierarchy so coherence and inclusion stay correct.
 */
struct Hierarchy::TargetAdapter : public RefreshTarget
{
    enum class Level
    {
        L1,
        L2,
        L3
    };

    TargetAdapter(Hierarchy &h, CacheUnit &u, Level lvl, std::uint32_t id,
                  std::string nm)
        : hier(h), unit(u), level(lvl), unitId(id), label(std::move(nm))
    {
    }

    /** Protocol role class of a descriptor (both L1s are one class). */
    static Level
    of(LevelRole r)
    {
        switch (r) {
          case LevelRole::IL1:
          case LevelRole::DL1:
            return Level::L1;
          case LevelRole::L2:
            return Level::L2;
          case LevelRole::LLC:
            return Level::L3;
        }
        panic("bad level role");
    }

    CacheArray &array() override { return unit.array; }

    void
    refreshLine(std::uint32_t idx, Tick now) override
    {
        (void)idx;
        (void)now;
        // Energy is charged from the engine's line_refreshes counter;
        // the per-unit tally feeds the thermal model's power input.
        unit.noteRefresh();
    }

    bool supportsBulkRefresh() const override { return true; }

    void
    refreshLinesBulk(std::uint32_t count, Tick now) override
    {
        (void)now;
        unit.noteRefresh(count);
    }

    void
    writebackLine(std::uint32_t idx, Tick now) override
    {
        switch (level) {
          case Level::L3:
            hier.l3RefreshWriteback(unitId, idx, now);
            break;
          case Level::L2:
            hier.l2RefreshWriteback(static_cast<CoreId>(unitId), idx, now);
            break;
          case Level::L1:
            panic("%s: L1 lines are never dirty (DL1 is write-through)",
                  label.c_str());
        }
    }

    void
    invalidateLine(std::uint32_t idx, Tick now) override
    {
        switch (level) {
          case Level::L3:
            hier.l3RefreshInvalidate(unitId, idx, now);
            break;
          case Level::L2:
          case Level::L1:
            hier.upperRefreshInvalidate(unit, static_cast<CoreId>(
                                                  unitId % hier.cfg_.numCores),
                                        idx, now);
            break;
        }
    }

    void
    addBusy(Tick now, Tick cycles) override
    {
        unit.addBusy(now, cycles);
    }

    const char *name() const override { return label.c_str(); }

    Hierarchy &hier;
    CacheUnit &unit;
    Level level;
    std::uint32_t unitId;
    std::string label;
};

Hierarchy::Hierarchy(const MachineConfig &cfg, EventQueue &eq,
                     Arena *arena)
    : cfg_(cfg),
      eq_(eq),
      arena_(arena),
      net_(cfg.torusDim, cfg.hopLatency, cfg.dataSerialization, netStats_),
      dram_(cfg.dramLatency, cfg.dramMinGap, dramStats_)
{
    cfg_.validate();
    llcGeom_ = cfg_.llc().geom;
    refreshAtLlc_ = cfg_.llc().refreshed();
    bankShift_ = llcGeom_.lineBits();
    bankMask_ = isPowerOfTwo(cfg_.numBanks) ? cfg_.numBanks - 1 : 0;

    buildUnits();
    if (cfg_.anyEdram())
        buildRefreshEngines();
    else if (cfg_.decay.enabled)
        buildDecayEngines();
    if (cfg_.thermal.enabled)
        buildThermal();
}

Hierarchy::~Hierarchy() = default;

const Hierarchy::Level &
Hierarchy::levelOf(LevelRole r) const
{
    for (const Level &lv : levels_)
        if (lv.spec->role == r)
            return lv;
    panic("hierarchy has no %s level", levelRoleName(r));
}

void
Hierarchy::buildUnits()
{
    // One Level per descriptor, in descriptor order; refresh stats are
    // shared per role class (the paper reports three refresh levels).
    for (const CacheLevelSpec &spec : cfg_.levels) {
        Level lv;
        lv.spec = &spec;
        lv.stats = std::make_unique<StatGroup>(spec.name);
        switch (TargetAdapter::of(spec.role)) {
          case TargetAdapter::Level::L1:
            lv.refreshStats = &refreshL1Stats_;
            break;
          case TargetAdapter::Level::L2:
            lv.refreshStats = &refreshL2Stats_;
            break;
          case TargetAdapter::Level::L3:
            lv.refreshStats = &refreshL3Stats_;
            break;
        }
        levels_.push_back(std::move(lv));
    }

    // Instantiate units: core-major across the private levels (one
    // tile's caches are adjacent), then the shared levels per bank.
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        for (Level &lv : levels_) {
            if (lv.spec->sharing != Sharing::Private)
                continue;
            lv.units.push_back(std::make_unique<CacheUnit>(
                lv.spec->name, lv.spec->geom, *lv.stats, arena_));
        }
    }
    for (Level &lv : levels_) {
        if (lv.spec->sharing != Sharing::BankedShared)
            continue;
        for (std::uint32_t b = 0; b < cfg_.numBanks; ++b) {
            lv.units.push_back(std::make_unique<CacheUnit>(
                lv.spec->name, lv.spec->geom, *lv.stats, arena_));
        }
    }

    // Resolve the protocol's role handles.
    il1L_ = &levelOf(LevelRole::IL1);
    dl1L_ = &levelOf(LevelRole::DL1);
    l2L_ = &levelOf(LevelRole::L2);
    llcL_ = &levelOf(LevelRole::LLC);
    auto view = [](const Level &lv) {
        std::vector<CacheUnit *> v;
        v.reserve(lv.units.size());
        for (const auto &u : lv.units)
            v.push_back(u.get());
        return v;
    };
    il1s_ = view(*il1L_);
    dl1s_ = view(*dl1L_);
    l2s_ = view(*l2L_);
    l3s_ = view(*llcL_);
}

void
Hierarchy::buildRefreshEngines()
{
    auto build = [&](Level &lv, CacheUnit &u, std::uint32_t id) {
        targets_.push_back(std::make_unique<TargetAdapter>(
            *this, u, TargetAdapter::of(lv.spec->role), id, lv.spec->name));
        engines_.push_back(makeRefreshEngine(*targets_.back(),
                                             lv.spec->policy,
                                             cfg_.retention,
                                             lv.spec->engine, eq_,
                                             *lv.refreshStats, arena_));
        u.engine = engines_.back().get();
    };

    // Engine order mirrors unit order (core-major private levels, then
    // the shared banks): engine start order determines same-tick event
    // FIFO order, so this order is part of the machine's definition.
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        for (Level &lv : levels_) {
            if (lv.spec->sharing != Sharing::Private ||
                !lv.spec->refreshed())
                continue;
            build(lv, *lv.units[c], c);
        }
    }
    for (Level &lv : levels_) {
        if (lv.spec->sharing != Sharing::BankedShared ||
            !lv.spec->refreshed())
            continue;
        for (std::uint32_t b = 0; b < cfg_.numBanks; ++b)
            build(lv, *lv.units[b], b);
    }
}

void
Hierarchy::buildDecayEngines()
{
    auto build = [&](Level &lv, CacheUnit &u, std::uint32_t id) {
        targets_.push_back(std::make_unique<TargetAdapter>(
            *this, u, TargetAdapter::of(lv.spec->role), id, lv.spec->name));
        engines_.push_back(std::make_unique<DecayEngine>(
            *targets_.back(), cfg_.decay, eq_, *lv.refreshStats));
        u.engine = engines_.back().get();
    };

    for (Level &lv : levels_) {
        const bool wanted =
            (lv.spec->role == LevelRole::L2 && cfg_.decay.atL2) ||
            (lv.spec->role == LevelRole::LLC && cfg_.decay.atL3);
        if (!wanted)
            continue;
        for (std::uint32_t i = 0; i < lv.units.size(); ++i)
            build(lv, *lv.units[i], i);
    }
}

void
Hierarchy::buildThermal()
{
    panicIf(!cfg_.anyEdram(),
            "thermal model requires an eDRAM level (SRAM retention "
            "is not temperature-limited)");
    thermal_ = std::make_unique<ThermalDriver>(
        cfg_.thermal, cfg_.retention.thermal, eq_, thermalStats_);
    // Every eDRAM unit is one lumped node.  Leakage and access energy
    // come from the same calibrated coefficients the end-of-run energy
    // model uses, with the Table 5.2 eDRAM leakage ratio applied.
    const EnergyParams &ep = cfg_.thermal.energy;
    const double lr = ep.edramLeakRatio;
    auto coeffs = [&](LevelRole r, double &leakW, double &accessJ) {
        switch (TargetAdapter::of(r)) {
          case TargetAdapter::Level::L1:
            leakW = ep.leakL1;
            accessJ = ep.eL1Access;
            break;
          case TargetAdapter::Level::L2:
            leakW = ep.leakL2;
            accessJ = ep.eL2Access;
            break;
          case TargetAdapter::Level::L3:
            leakW = ep.leakL3Bank;
            accessJ = ep.eL3Access;
            break;
        }
    };
    // Node order mirrors unit order (see buildRefreshEngines).
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        for (Level &lv : levels_) {
            if (lv.spec->sharing != Sharing::Private ||
                !lv.spec->refreshed())
                continue;
            double leakW = 0, accessJ = 0;
            coeffs(lv.spec->role, leakW, accessJ);
            thermal_->addUnit(*lv.units[c], leakW * lr, accessJ);
        }
    }
    for (Level &lv : levels_) {
        if (lv.spec->sharing != Sharing::BankedShared ||
            !lv.spec->refreshed())
            continue;
        double leakW = 0, accessJ = 0;
        coeffs(lv.spec->role, leakW, accessJ);
        for (std::uint32_t b = 0; b < cfg_.numBanks; ++b)
            thermal_->addUnit(*lv.units[b], leakW * lr, accessJ);
    }
}

void
Hierarchy::start(Tick now)
{
    for (auto &e : engines_)
        e->start(now);
    if (thermal_ != nullptr)
        thermal_->start(now);
}

void
Hierarchy::finishEngines(Tick now)
{
    for (auto &e : engines_)
        e->finish(now);
}

// ---------------------------------------------------------------------
// Demand access path
// ---------------------------------------------------------------------

Tick
Hierarchy::access(CoreId c, Addr a, AccessType type, Tick now,
                  std::uint32_t blocks)
{
    panicIf(c >= cfg_.numCores, "core id out of range");
    a = llcGeom_.lineAddr(a);

    const bool isStore = type == AccessType::Store;
    CacheUnit &l1 = type == AccessType::Fetch ? *il1s_[c] : *dl1s_[c];

    // ---- L1 ----
    Tick t = l1.admit(now) + l1.latency;
    if (isStore)
        l1.noteWrite();
    else
        l1.noteRead(blocks);
    CacheLine *l1Line = l1.array.lookup(a);
    if (l1Line != nullptr)
        l1.touchLine(*l1Line, t);
    else
        l1.misses->inc();

    if (l1Line != nullptr && !isStore)
        return t; // load/fetch hit: done

    // ---- L2 (loads on L1 miss; every store — DL1 is write-through) ----
    CacheUnit &l2u = *l2s_[c];
    t = l2u.admit(t) + l2u.latency;
    if (isStore)
        l2u.noteWrite();
    else
        l2u.noteRead();
    CacheLine *l2Line = l2u.array.lookup(a);

    if (l2Line != nullptr && !isStore) {
        l2u.touchLine(*l2Line, t);
        l1Fill(l1, a, t);
        return t;
    }
    if (l2Line != nullptr && isStore) {
        if (l2Line->state == Mesi::Modified) {
            l2u.touchLine(*l2Line, t);
            return t;
        }
        if (l2Line->state == Mesi::Exclusive) {
            // Silent E->M upgrade; the directory already records this
            // core as the owner.
            l2Line->state = Mesi::Modified;
            l2Line->dirty = true;
            l2u.touchLine(*l2Line, t);
            return t;
        }
        // Shared: fall through to the directory for an upgrade.
    }
    if (l2Line == nullptr)
        l2u.misses->inc();

    // ---- LLC home bank / directory ----
    const std::uint32_t bank = bankOf(a);
    t += net_.traverse(c, bank, MsgClass::Control);
    CacheUnit &l3u = *l3s_[bank];
    t = l3u.admit(t) + l3u.latency;
    l3u.noteRead();
    CacheLine *line = l3u.array.lookup(a);

    if (line == nullptr) {
        l3u.misses->inc();
        line = l3MissFill(bank, a, t);
    } else {
        if (line->owner >= 0 && static_cast<CoreId>(line->owner) != c)
            t += ownerIntervention(bank, *line, t, /*invalidate=*/isStore);
        l3u.touchLine(*line, t);
    }

    if (isStore) {
        // Request for ownership: every other copy must go.
        t += invalidateSharers(bank, *line, c, t);
        line->sharers = std::uint64_t{1} << c;
        line->owner = static_cast<std::int8_t>(c);
    } else {
        line->sharers |= std::uint64_t{1} << c;
        if (line->sharers == (std::uint64_t{1} << c) && line->owner < 0)
            line->owner = static_cast<std::int8_t>(c); // grant Exclusive
    }

    // Data (or ownership grant) back to the requester.
    t += net_.traverse(bank, c, MsgClass::Data);

    // Fill the private hierarchy.
    if (isStore) {
        if (l2Line != nullptr) {
            // S -> M upgrade in place.
            l2Line->state = Mesi::Modified;
            l2Line->dirty = true;
            l2u.touchLine(*l2Line, t);
        } else {
            l2Fill(c, a, Mesi::Modified, t);
        }
        // DL1 is no-write-allocate: update only an existing L1 copy
        // (already touched above if present).
    } else {
        const Mesi grant =
            (line->owner >= 0 && static_cast<CoreId>(line->owner) == c)
                ? Mesi::Exclusive
                : Mesi::Shared;
        l2Fill(c, a, grant, t);
        l1Fill(l1, a, t);
    }
    return t;
}

// ---------------------------------------------------------------------
// Fills, evictions, directory actions
// ---------------------------------------------------------------------

CacheLine *
Hierarchy::l3MissFill(std::uint32_t bank, Addr a, Tick &t)
{
    CacheUnit &l3u = *l3s_[bank];
    VictimRef v = l3u.array.pickVictim(a);
    if (v.line->valid()) {
        l3u.evictions->inc();
        dropL3Line(bank, *v.line, t, /*refreshCaused=*/false);
    }
    t = dram_.read(t);
    l3u.array.install(v, a, t, Mesi::Shared); // "valid" marker at LLC
    CacheLine &line = *v.line;
    l3u.noteWrite(); // the fill writes the data array
    l3u.fills->inc();
    l3u.installLine(line, t);
    return &line;
}

void
Hierarchy::dropL3Line(std::uint32_t bank, CacheLine &line, Tick now,
                      bool refreshCaused)
{
    const Addr a = line.tag;
    bool dataToDram = line.dirty;

    if (line.owner >= 0) {
        // The owner may hold newer (Modified) data; rescue it.
        const auto o = static_cast<CoreId>(line.owner);
        net_.traverse(bank, o, MsgClass::Control);
        CacheLine *ol = l2s_[o]->array.lookup(a);
        if (ol != nullptr && ol->state == Mesi::Modified) {
            net_.traverse(o, bank, MsgClass::Data);
            dataToDram = true;
        } else {
            net_.traverse(o, bank, MsgClass::Control); // ack
        }
    }
    // Invalidate every private copy (inclusive hierarchy, §3.1).
    // Iterate set bits of the sharer mask; most lines have 0-2 sharers.
    for (std::uint64_t m = line.sharers; m != 0; m &= m - 1) {
        const auto s = static_cast<CoreId>(__builtin_ctzll(m));
        if (line.owner < 0 || static_cast<CoreId>(line.owner) != s)
            net_.traverse(bank, s, MsgClass::Control);
        invalidatePrivateCopies(s, a, /*countBackInval=*/true);
    }
    if (dataToDram)
        dram_.write(now);
    (void)refreshCaused;
    l3s_[bank]->array.invalidate(line);
}

Tick
Hierarchy::ownerIntervention(std::uint32_t bank, CacheLine &line, Tick t,
                             bool invalidateOwner)
{
    const auto o = static_cast<CoreId>(line.owner);
    CacheUnit &l3u = *l3s_[bank];
    CacheUnit &ol2 = *l2s_[o];

    Tick lat = net_.traverse(bank, o, MsgClass::Control);
    Tick ot = ol2.admit(t + lat) + ol2.latency;
    ol2.noteRead();

    CacheLine *ol = ol2.array.lookup(line.tag);
    panicIf(ol == nullptr, "directory owner lost its line");
    const bool wasModified = ol->state == Mesi::Modified;

    if (wasModified) {
        // Data flows back to the LLC (and becomes the LLC's dirty copy).
        lat = (ot - t) + net_.traverse(o, bank, MsgClass::Data);
        line.dirty = true;
        l3u.noteWrite();
    } else {
        lat = (ot - t) + net_.traverse(o, bank, MsgClass::Control);
    }

    if (invalidateOwner) {
        invalidatePrivateCopies(o, line.tag, /*countBackInval=*/false);
        line.sharers &= ~(std::uint64_t{1} << o);
    } else {
        // Downgrade to Shared; owner keeps a clean copy.
        ol->state = Mesi::Shared;
        ol->dirty = false;
    }
    line.owner = -1;
    return lat;
}

Tick
Hierarchy::invalidateSharers(std::uint32_t bank, CacheLine &line,
                             CoreId except, Tick t)
{
    Tick maxLat = 0;
    for (std::uint64_t m = line.sharers; m != 0; m &= m - 1) {
        const auto s = static_cast<CoreId>(__builtin_ctzll(m));
        if (s == except)
            continue;
        const Tick out = net_.traverse(bank, s, MsgClass::Control);
        const Tick back = net_.traverse(s, bank, MsgClass::Control);
        invalidatePrivateCopies(s, line.tag, /*countBackInval=*/false);
        maxLat = std::max(maxLat, out + back);
    }
    (void)t;
    return maxLat;
}

void
Hierarchy::invalidatePrivateCopies(CoreId c, Addr a, bool countBackInval)
{
    CacheLine *l2l = l2s_[c]->array.lookup(a);
    if (l2l != nullptr) {
        l2s_[c]->array.invalidate(*l2l);
        if (countBackInval)
            l2s_[c]->backInvals->inc();
    }
    if (CacheLine *l = dl1s_[c]->array.lookup(a)) {
        dl1s_[c]->array.invalidate(*l);
        if (countBackInval)
            dl1s_[c]->backInvals->inc();
    }
    if (CacheLine *l = il1s_[c]->array.lookup(a)) {
        il1s_[c]->array.invalidate(*l);
        if (countBackInval)
            il1s_[c]->backInvals->inc();
    }
}

CacheLine *
Hierarchy::l2Fill(CoreId c, Addr a, Mesi st, Tick now)
{
    CacheUnit &l2u = *l2s_[c];
    VictimRef v = l2u.array.pickVictim(a);
    if (v.line->valid()) {
        l2u.evictions->inc();
        evictL2Victim(c, *v.line, now);
    }
    l2u.array.install(v, a, now, st);
    CacheLine &line = *v.line;
    line.dirty = st == Mesi::Modified;
    l2u.noteWrite(); // fill write
    l2u.fills->inc();
    l2u.installLine(line, now);
    return &line;
}

void
Hierarchy::l1Fill(CacheUnit &l1, Addr a, Tick now)
{
    if (l1.array.lookup(a) != nullptr)
        return; // e.g. a store left the line behind
    VictimRef v = l1.array.pickVictim(a);
    if (v.line->valid())
        l1.evictions->inc(); // L1 lines are clean: silent drop
    l1.array.install(v, a, now, Mesi::Shared);
    l1.noteWrite();
    l1.fills->inc();
    l1.installLine(*v.line, now);
}

void
Hierarchy::evictL2Victim(CoreId c, CacheLine &victim, Tick now)
{
    const Addr a = victim.tag;
    const std::uint32_t bank = bankOf(a);
    CacheUnit &l3u = *l3s_[bank];
    CacheLine *l3l = l3u.array.lookup(a);
    panicIf(l3l == nullptr, "inclusion violated: L2 line missing in L3");

    if (victim.state == Mesi::Modified) {
        // Dirty write-back to the LLC: the LLC copy becomes dirty and
        // the access refreshes the LLC line.  This is the "visibility"
        // the paper's Class 1/2 applications give the last-level cache.
        net_.traverse(c, bank, MsgClass::Data);
        l3u.noteWrite();
        l3l->dirty = true;
        l3u.touchLine(*l3l, now);
    } else {
        // Clean eviction: notify the directory so its sharer list stays
        // exact (control message only).
        net_.traverse(c, bank, MsgClass::Control);
    }
    if (l3l->owner >= 0 && static_cast<CoreId>(l3l->owner) == c)
        l3l->owner = -1;
    l3l->sharers &= ~(std::uint64_t{1} << c);

    // Inclusion: L1 copies go with the L2 line.
    if (CacheLine *l = dl1s_[c]->array.lookup(a))
        dl1s_[c]->array.invalidate(*l);
    if (CacheLine *l = il1s_[c]->array.lookup(a))
        il1s_[c]->array.invalidate(*l);
    l2s_[c]->array.invalidate(victim);
}

// ---------------------------------------------------------------------
// Refresh-triggered actions
// ---------------------------------------------------------------------

void
Hierarchy::l3RefreshWriteback(std::uint32_t bank, std::uint32_t idx,
                              Tick now)
{
    CacheUnit &l3u = *l3s_[bank];
    CacheLine &line = l3u.array.lineAt(idx);
    panicIf(!line.valid() || !line.dirty,
            "refresh write-back of a non-dirty line");
    // Read the line out and post it to DRAM; it stays Valid-Clean.
    l3u.noteRead();
    dram_.write(now);
    line.dirty = false;
}

void
Hierarchy::l3RefreshInvalidate(std::uint32_t bank, std::uint32_t idx,
                               Tick now)
{
    CacheUnit &l3u = *l3s_[bank];
    CacheLine &line = l3u.array.lineAt(idx);
    panicIf(!line.valid(), "refresh invalidation of an invalid line");
    dropL3Line(bank, line, now, /*refreshCaused=*/true);
}

void
Hierarchy::l2RefreshWriteback(CoreId c, std::uint32_t idx, Tick now)
{
    CacheUnit &l2u = *l2s_[c];
    CacheLine &line = l2u.array.lineAt(idx);
    panicIf(!line.valid() || line.state != Mesi::Modified,
            "L2 refresh write-back of a non-Modified line");
    const Addr a = line.tag;
    const std::uint32_t bank = bankOf(a);
    CacheUnit &l3u = *l3s_[bank];
    CacheLine *l3l = l3u.array.lookup(a);
    panicIf(l3l == nullptr, "inclusion violated on L2 refresh WB");
    net_.traverse(c, bank, MsgClass::Data);
    l3u.noteWrite();
    l3l->dirty = true;
    l3u.touchLine(*l3l, now);
    // The line stays resident, now clean: M -> E (the directory still
    // records this core as owner, which covers both E and M).
    line.state = Mesi::Exclusive;
    line.dirty = false;
}

void
Hierarchy::upperRefreshInvalidate(CacheUnit &unit, CoreId c,
                                  std::uint32_t idx, Tick now)
{
    CacheLine &line = unit.array.lineAt(idx);
    panicIf(!line.valid(), "refresh invalidation of an invalid line");
    const Addr a = line.tag;

    const bool isL2 = &unit == l2s_[c];
    if (isL2) {
        if (line.state == Mesi::Modified)
            l2RefreshWriteback(c, idx, now);
        // Notify the directory and drop the whole private subtree.
        const std::uint32_t bank = bankOf(a);
        CacheLine *l3l = l3s_[bank]->array.lookup(a);
        if (l3l != nullptr) {
            if (l3l->owner >= 0 && static_cast<CoreId>(l3l->owner) == c)
                l3l->owner = -1;
            l3l->sharers &= ~(std::uint64_t{1} << c);
        }
        net_.traverse(c, bankOf(a), MsgClass::Control);
        if (CacheLine *l = dl1s_[c]->array.lookup(a))
            dl1s_[c]->array.invalidate(*l);
        if (CacheLine *l = il1s_[c]->array.lookup(a))
            il1s_[c]->array.invalidate(*l);
    }
    unit.array.invalidate(line);
}

// ---------------------------------------------------------------------
// End-of-run + verification
// ---------------------------------------------------------------------

void
Hierarchy::flushDirty()
{
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        l2s_[c]->array.forEachLine([&](std::uint32_t, CacheLine &l) {
            if (l.valid() && l.state == Mesi::Modified)
                dram_.accountUntimedWrite();
        });
    }
    for (CacheUnit *bank : l3s_) {
        bank->array.forEachLine([&](std::uint32_t, CacheLine &l) {
            if (l.valid() && l.dirty)
                dram_.accountUntimedWrite();
        });
    }
}

void
Hierarchy::checkInvariants(Tick now) const
{
    auto &self = const_cast<Hierarchy &>(*this);
    // The packed probe mirrors must agree with the line structs.
    for (const Level &lv : levels_)
        for (const auto &u : lv.units)
            u->array.checkProbeCoherence();
    // L1 subset-of L2; L2 subset-of L3; directory exactness.
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        for (CacheUnit *l1 : {self.il1s_[c], self.dl1s_[c]}) {
            l1->array.forEachLine([&](std::uint32_t, CacheLine &l) {
                if (!l.valid())
                    return;
                panicIf(self.l2s_[c]->array.lookup(l.tag) == nullptr,
                        "L1 line not present in L2 (inclusion)");
            });
        }
        self.l2s_[c]->array.forEachLine([&](std::uint32_t, CacheLine &l) {
            if (!l.valid())
                return;
            CacheLine *l3l =
                self.l3s_[self.bankOf(l.tag)]->array.lookup(l.tag);
            panicIf(l3l == nullptr, "L2 line not present in L3");
            panicIf(!hasSharer(*l3l, c),
                    "directory lost a sharer");
            if (l.state == Mesi::Modified || l.state == Mesi::Exclusive) {
                panicIf(l3l->owner != static_cast<std::int8_t>(c),
                        "directory owner mismatch");
            }
            panicIf(l.dirty != (l.state == Mesi::Modified),
                    "dirty flag out of sync with MESI state");
        });
    }
    for (std::uint32_t b = 0; b < cfg_.numBanks; ++b) {
        self.l3s_[b]->array.forEachLine([&](std::uint32_t, CacheLine &l) {
            if (!l.valid()) {
                panicIf(l.sharers != 0 || l.owner >= 0,
                        "invalid L3 line with directory residue");
                return;
            }
            if (l.owner >= 0) {
                const auto o = static_cast<CoreId>(l.owner);
                panicIf(!hasSharer(l, o), "owner missing from sharers");
                CacheLine *ol = self.l2s_[o]->array.lookup(l.tag);
                panicIf(ol == nullptr, "owner L2 lost the line");
                panicIf(ol->state != Mesi::Modified &&
                            ol->state != Mesi::Exclusive,
                        "owner L2 not in E/M");
            }
            for (CoreId s = 0; s < cfg_.numCores; ++s) {
                if (!hasSharer(l, s))
                    continue;
                panicIf(self.l2s_[s]->array.lookup(l.tag) == nullptr,
                        "directory sharer without an L2 copy");
            }
            if (refreshAtLlc_) {
                // 256-tick slack: see kWalkLookaheadSlack in cache_unit.
                panicIf(l.dataExpiry + 256 < now,
                        "valid L3 line past its retention deadline");
            }
        });
    }
}

HierarchyCounts
Hierarchy::counts() const
{
    // Direct counter reads — no per-run string-keyed map rebuild.
    auto get = [](const StatGroup &g, const char *k) {
        const Counter *c = g.findCounter(k);
        return c == nullptr ? 0ull : c->value();
    };
    auto getd = [](const StatGroup &g, const char *k) {
        const Accum *a = g.findAccum(k);
        return a == nullptr ? 0.0 : a->value();
    };
    const StatGroup &il1Stats = *il1L_->stats;
    const StatGroup &dl1Stats = *dl1L_->stats;
    const StatGroup &l2Stats = *l2L_->stats;
    const StatGroup &l3Stats = *llcL_->stats;
    HierarchyCounts n;
    n.l1Reads = get(il1Stats, "reads") + get(dl1Stats, "reads");
    n.l1Writes = get(il1Stats, "writes") + get(dl1Stats, "writes");
    n.l2Reads = get(l2Stats, "reads");
    n.l2Writes = get(l2Stats, "writes");
    n.l3Reads = get(l3Stats, "reads");
    n.l3Writes = get(l3Stats, "writes");
    n.l1Refreshes = get(refreshL1Stats_, "line_refreshes");
    n.l2Refreshes = get(refreshL2Stats_, "line_refreshes");
    n.l3Refreshes = get(refreshL3Stats_, "line_refreshes");
    n.dramAccesses = get(dramStats_, "reads") + get(dramStats_, "writes");
    n.netHops = get(netStats_, "hops");
    n.netDataMsgs = get(netStats_, "data_msgs");
    n.netCtrlMsgs = get(netStats_, "ctrl_msgs");
    n.l3Misses = get(l3Stats, "misses");
    n.l2Misses = get(l2Stats, "misses");
    n.dl1Misses = get(dl1Stats, "misses");
    n.refreshWritebacks = get(refreshL1Stats_, "refresh_writebacks") +
                          get(refreshL2Stats_, "refresh_writebacks") +
                          get(refreshL3Stats_, "refresh_writebacks");
    n.refreshInvalidations =
        get(refreshL1Stats_, "refresh_invalidations") +
        get(refreshL2Stats_, "refresh_invalidations") +
        get(refreshL3Stats_, "refresh_invalidations");
    n.decayedHits = get(il1Stats, "decayed_hits") +
                    get(dl1Stats, "decayed_hits") +
                    get(l2Stats, "decayed_hits") +
                    get(l3Stats, "decayed_hits");
    n.l2OffLineTicks = getd(refreshL2Stats_, "off_line_ticks");
    n.l3OffLineTicks = getd(refreshL3Stats_, "off_line_ticks");
    return n;
}

void
Hierarchy::dumpStats(std::map<std::string, double> &out) const
{
    for (const Level &lv : levels_)
        lv.stats->dump(out);
    netStats_.dump(out);
    dramStats_.dump(out);
    refreshL1Stats_.dump(out);
    refreshL2Stats_.dump(out);
    refreshL3Stats_.dump(out);
    thermalStats_.dump(out);
}

} // namespace refrint
