/**
 * @file
 * The coherent three-level CMP memory hierarchy (paper Table 5.1):
 * per-core IL1/DL1/L2, a banked shared inclusive LLC with a full-map
 * directory MESI protocol, a square-torus interconnect and off-chip
 * DRAM.
 *
 * The machine is built from a MachineConfig's level descriptors: the
 * constructor iterates cfg.levels, instantiating one CacheUnit per
 * core for private levels and one per bank for the shared LLC, and
 * wiring refresh engines and thermal nodes per descriptor.  The MESI
 * walk itself resolves role handles (IL1/DL1/L2/LLC) out of the
 * descriptor set once at construction, so the hot path pays nothing
 * for the generality.
 *
 * The simulator is state-accurate and timing-approximate: a memory
 * reference walks the hierarchy synchronously, updating all cache and
 * directory state and accumulating latency (cache latencies, torus
 * hops, DRAM, and refresh-induced port blocking).  Refresh engines run
 * on the shared event queue and interact with the hierarchy through
 * RefreshTarget adapters — a refresh-triggered invalidation at the
 * LLC, for example, back-invalidates upper-level copies exactly like
 * an LLC eviction does (§3.1: inclusivity).
 */

#ifndef REFRINT_COHERENCE_HIERARCHY_HH
#define REFRINT_COHERENCE_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "coherence/hierarchy_config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/dram.hh"
#include "mem/cache_unit.hh"
#include "net/torus.hh"
#include "sim/event_queue.hh"
#include "thermal/thermal_model.hh"

namespace refrint
{

/** Kind of access issued by a core. */
enum class AccessType : std::uint8_t
{
    Load = 0,
    Store,
    Fetch, ///< instruction fetch (IL1 path)
};

/** Aggregated counts the energy model consumes. */
struct HierarchyCounts
{
    std::uint64_t l1Reads = 0, l1Writes = 0, l1Refreshes = 0;
    std::uint64_t l2Reads = 0, l2Writes = 0, l2Refreshes = 0;
    std::uint64_t l3Reads = 0, l3Writes = 0, l3Refreshes = 0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t netHops = 0, netDataMsgs = 0, netCtrlMsgs = 0;
    std::uint64_t l3Misses = 0, l2Misses = 0, dl1Misses = 0;
    std::uint64_t refreshWritebacks = 0, refreshInvalidations = 0;
    std::uint64_t decayedHits = 0;

    /** Cache-decay comparator: integrated line-OFF time (ticks x lines)
     *  per level; zero unless decay is enabled on an SRAM machine. */
    double l2OffLineTicks = 0, l3OffLineTicks = 0;
};

class Hierarchy
{
  public:
    /** @p arena, when non-null, backs the cache arrays and refresh
     *  engine heaps (a sweep worker recycles it between scenarios; see
     *  common/arena.hh).  The hierarchy must not outlive it. */
    Hierarchy(const MachineConfig &cfg, EventQueue &eq,
              Arena *arena = nullptr);
    ~Hierarchy();

    Hierarchy(const Hierarchy &) = delete;
    Hierarchy &operator=(const Hierarchy &) = delete;

    /** Begin refresh/decay operation (no-op for plain SRAM). */
    void start(Tick now);

    /** Settle engine accounting at the end of the timed window. */
    void finishEngines(Tick now);

    /**
     * Perform one memory access for core @p c starting at @p now.
     * @param blocks  For Fetch: number of 4-instruction fetch blocks to
     *                charge to IL1 dynamic energy (one array probe is
     *                simulated either way).
     * @return completion tick.
     */
    Tick access(CoreId c, Addr a, AccessType type, Tick now,
                std::uint32_t blocks = 1);

    /** Charge the end-of-run write-back of all dirty data (§6). */
    void flushDirty();

    /** Verify inclusion/directory/retention invariants; panics on
     *  violation.  Used by the property tests. */
    void checkInvariants(Tick now) const;

    const MachineConfig &config() const { return cfg_; }

    HierarchyCounts counts() const;

    /** Dump all named stats (tests, reporting). */
    void dumpStats(std::map<std::string, double> &out) const;

    // --- component access for tests and diagnostics ---
    CacheUnit &il1(CoreId c) { return *il1s_[c]; }
    CacheUnit &dl1(CoreId c) { return *dl1s_[c]; }
    CacheUnit &l2(CoreId c) { return *l2s_[c]; }
    CacheUnit &l3Bank(std::uint32_t b) { return *l3s_[b]; }
    Dram &dram() { return dram_; }
    TorusNetwork &network() { return net_; }
    std::uint32_t numBanks() const { return cfg_.numBanks; }

    /** Thermal driver, or null when the subsystem is disabled. */
    const ThermalDriver *thermal() const { return thermal_.get(); }

    /** Home LLC bank of address @p a (static interleaving, §5).
     *  Shift and mask are precomputed: this sits on the access path
     *  several times per reference and the geometry would otherwise
     *  recompute log2(lineSize) and a modulo on each call.  Non-power-
     *  of-two bank counts keep the modulo. */
    std::uint32_t
    bankOf(Addr a) const
    {
        const Addr idx = a >> bankShift_;
        return static_cast<std::uint32_t>(
            bankMask_ != 0 ? idx & bankMask_ : idx % cfg_.numBanks);
    }

    // --- refresh actions, shared with the RefreshTarget adapters ---

    /** Refresh-triggered write-back of a dirty LLC line to DRAM. */
    void l3RefreshWriteback(std::uint32_t bank, std::uint32_t idx,
                            Tick now);

    /** Refresh-triggered invalidation of an LLC line (back-invalidates
     *  every upper-level copy; rescues Modified data to DRAM). */
    void l3RefreshInvalidate(std::uint32_t bank, std::uint32_t idx,
                             Tick now);

    /** Refresh-triggered write-back of a dirty private-L2 line. */
    void l2RefreshWriteback(CoreId c, std::uint32_t idx, Tick now);

    /** Refresh-triggered invalidation of a private L1/L2 line. */
    void upperRefreshInvalidate(CacheUnit &unit, CoreId c,
                                std::uint32_t idx, Tick now);

  private:
    /** One constructed level: the descriptor it was built from, its
     *  per-level demand StatGroup and its units (per core for private
     *  levels, per bank for the shared LLC). */
    struct Level
    {
        const CacheLevelSpec *spec;
        std::unique_ptr<StatGroup> stats;
        StatGroup *refreshStats; ///< shared per role class (L1/L2/L3)
        std::vector<std::unique_ptr<CacheUnit>> units;
    };

    /** One-line helpers over the directory bitmask. */
    static bool
    hasSharer(const CacheLine &l, CoreId c)
    {
        return (l.sharers >> c) & 1u;
    }

    void buildUnits();
    void buildRefreshEngines();
    void buildDecayEngines();
    void buildThermal();

    const Level &levelOf(LevelRole r) const;

    /** LLC miss: evict a victim, fetch from DRAM, install.  Advances
     *  @p t past the DRAM access. */
    CacheLine *l3MissFill(std::uint32_t bank, Addr a, Tick &t);

    /** Evict/invalidate an LLC line: back-invalidate all upper copies,
     *  rescue dirty data to DRAM. */
    void dropL3Line(std::uint32_t bank, CacheLine &line, Tick now,
                    bool refreshCaused);

    /** Fetch Modified data from the owning L2 into the LLC (read path:
     *  downgrade to Shared; write path: invalidate).  Returns added
     *  latency on the requester's critical path. */
    Tick ownerIntervention(std::uint32_t bank, CacheLine &line, Tick t,
                           bool invalidateOwner);

    /** Invalidate every sharer except @p except; returns the max
     *  invalidation round-trip latency (acks are collected at the
     *  directory before the write is granted). */
    Tick invalidateSharers(std::uint32_t bank, CacheLine &line,
                           CoreId except, Tick t);

    /** Remove one core's private copies (L2 + both L1s) of @p a. */
    void invalidatePrivateCopies(CoreId c, Addr a, bool countBackInval);

    /** Install @p a into core @p c's L2 with state @p st. */
    CacheLine *l2Fill(CoreId c, Addr a, Mesi st, Tick now);

    /** Install @p a into an L1 (clean, Shared-as-valid). */
    void l1Fill(CacheUnit &l1, Addr a, Tick now);

    /** Handle eviction of a valid L2 victim (write-back + dir update). */
    void evictL2Victim(CoreId c, CacheLine &victim, Tick now);

    MachineConfig cfg_;
    EventQueue &eq_;
    Arena *arena_ = nullptr; ///< optional recycled backing store

    /** Precomputed bankOf() slicing; mask 0 = non-power-of-two bank
     *  count, fall back to modulo. */
    unsigned bankShift_ = 0;
    Addr bankMask_ = 0;

    /** LLC bank geometry, copied out of the descriptor for the hot
     *  access path (line alignment, index math). */
    CacheGeometry llcGeom_;

    /** Refresh engines exist (the LLC is eDRAM). */
    bool refreshAtLlc_ = false;

    StatGroup netStats_{"net"}, dramStats_{"dram"},
        refreshL1Stats_{"refresh.l1"}, refreshL2Stats_{"refresh.l2"},
        refreshL3Stats_{"refresh.l3"}, thermalStats_{"thermal"};

    /** Constructed levels, in descriptor order. */
    std::vector<Level> levels_;

    /** Non-owning role views into levels_ for the protocol hot path. */
    std::vector<CacheUnit *> il1s_, dl1s_, l2s_, l3s_;
    const Level *il1L_ = nullptr, *dl1L_ = nullptr, *l2L_ = nullptr,
                *llcL_ = nullptr;

    TorusNetwork net_;
    Dram dram_;

    struct TargetAdapter;
    std::vector<std::unique_ptr<TargetAdapter>> targets_;
    std::vector<std::unique_ptr<RefreshEngine>> engines_;
    std::unique_ptr<ThermalDriver> thermal_;
};

} // namespace refrint

#endif // REFRINT_COHERENCE_HIERARCHY_HH
