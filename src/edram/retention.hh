/**
 * @file
 * eDRAM retention parameters and the Sentry-bit margin rule of §4.1.
 *
 * The Sentry bit is a deliberately weaker 1T-1C cell that decays before
 * the data cells of its line and thereby acts as a canary.  It must lead
 * the data cells by at least as many cycles as the maximum number of
 * sentry bits that can fire together, so that the (pipelined, one line
 * per cycle) interrupt service never lets a data cell expire.  The paper
 * takes the most conservative bound: every sentry bit in the cache can
 * fire in the same cycle, so margin = number of lines in the cache
 * (16 us at 1 GHz for a 16K-line L3 bank).
 */

#ifndef REFRINT_EDRAM_RETENTION_HH
#define REFRINT_EDRAM_RETENTION_HH

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/prng.hh"
#include "common/types.hh"

namespace refrint
{

/**
 * Process-variation model for the eDRAM retention time (§4.1 discusses
 * variation but the paper's evaluation disables it; we expose it as an
 * extension and study it in bench_ablation_variation).
 *
 * Each line draws a retention factor from a truncated normal around the
 * nominal period.  Weak lines refresh more often; under the Periodic
 * scheme the whole cache must be cycled at the *weakest* line's period
 * (the controller has no per-line knowledge), whereas Refrint's
 * per-line sentry naturally tracks each line's own retention.
 */
struct VariationParams
{
    bool enabled = false;

    /** Relative standard deviation of the per-line retention factor. */
    double sigma = 0.05;

    /** Truncation floor, as a fraction of the nominal retention. */
    double minFactor = 0.70;

    /** Truncation ceiling (strong cells; capped because exploiting
     *  longer-than-nominal retention needs post-silicon profiling). */
    double maxFactor = 1.00;

    std::uint64_t seed = 1;
};

/**
 * Temperature dependence of the eDRAM retention time.
 *
 * The paper quotes its 50/100/200 us retention periods *at operating
 * temperature*; physically, eDRAM cell leakage is thermally activated
 * (Arrhenius), which over the temperature range of interest is well
 * approximated by retention halving for every @ref halvingCelsius
 * degrees of temperature rise.  The nominal retention is taken to hold
 * at @ref refTempC — the worst-case junction temperature retention is
 * specified at — so a die running cooler retains *longer* than nominal
 * and a hot-spot bank retains shorter.  The thermal subsystem
 * (src/thermal/) samples this curve once per thermal epoch; constants
 * are documented in DESIGN.md.
 */
struct ThermalResponse
{
    /** Temperature (deg C) at which the nominal retention holds. */
    double refTempC = 85.0;

    /** Degrees of warming that halve the retention time. */
    double halvingCelsius = 10.0;

    /** Clamp on the retention scale factor (hot outliers). */
    double minFactor = 1.0 / 32.0;

    /** Clamp on the retention scale factor (cold dies; bounded because
     *  exploiting very long retention needs post-silicon profiling,
     *  mirroring VariationParams::maxFactor). */
    double maxFactor = 32.0;

    /** Retention scale factor at @p tempC: 1.0 at refTempC, halving
     *  per halvingCelsius of warming, clamped to [min, max]. */
    double
    factorAt(double tempC) const
    {
        const double f = std::exp2((refTempC - tempC) / halvingCelsius);
        return std::min(std::max(f, minFactor), maxFactor);
    }

    // The ambient band the curve actually resolves: outside it the
    // scale factor sits on a clamp and two different temperatures
    // become indistinguishable.  Plan/CLI ambient validation rejects
    // temperatures outside [minAmbientC, maxAmbientC] up front instead
    // of letting them clamp silently deep inside the thermal path.
    double
    minAmbientC() const
    {
        return refTempC - halvingCelsius * std::log2(maxFactor);
    }

    double
    maxAmbientC() const
    {
        return refTempC - halvingCelsius * std::log2(minFactor);
    }
};

/** Retention timing for one eDRAM cache. */
struct RetentionParams
{
    /** Data-cell retention period, ticks (50/100/200 us in the sweep). */
    Tick cellRetention = usToTicks(50.0);

    /**
     * How much earlier than the data cells the Sentry bit decays.
     * kTickNever means "derive the conservative default" (= #lines).
     */
    Tick sentryMargin = kTickNever;

    /** Per-line retention variation (disabled in the paper's sweep). */
    VariationParams variation;

    /** Temperature response (consulted only when the thermal subsystem
     *  is enabled; otherwise retention stays at the static nominal). */
    ThermalResponse thermal;

    /** Nominal retention scaled for temperature @p tempC. */
    Tick
    cellRetentionAt(double tempC) const
    {
        return static_cast<Tick>(static_cast<double>(cellRetention) *
                                 thermal.factorAt(tempC));
    }

    /** Resolve the margin for a cache with @p numLines lines. */
    Tick
    marginFor(std::uint32_t numLines) const
    {
        return sentryMargin == kTickNever ? Tick{numLines} : sentryMargin;
    }

    /** Sentry-bit retention period for a cache with @p numLines lines. */
    Tick
    sentryRetention(std::uint32_t numLines) const
    {
        const Tick margin = marginFor(numLines);
        panicIf(margin >= cellRetention,
                "sentry margin consumes the entire retention period");
        return cellRetention - margin;
    }

    /**
     * Draw the per-line retention periods of one cache under the
     * variation model.  Returns an empty vector when variation is off
     * (callers fall back to the scalar cellRetention).  Deterministic
     * in (seed, numLines); a Box-Muller normal truncated to
     * [minFactor, maxFactor] x nominal.
     */
    std::vector<Tick>
    drawLineRetentions(std::uint32_t numLines) const
    {
        if (!variation.enabled)
            return {};
        panicIf(variation.minFactor <= 0.0 ||
                    variation.minFactor > variation.maxFactor,
                "bad variation truncation window");
        std::vector<Tick> out(numLines);
        Prng rng(variation.seed, /*stream=*/numLines);
        for (std::uint32_t i = 0; i < numLines; ++i) {
            const double u1 = std::max(rng.uniform(), 1e-12);
            const double u2 = rng.uniform();
            const double z = std::sqrt(-2.0 * std::log(u1)) *
                             std::cos(2.0 * 3.14159265358979323846 * u2);
            double f = 1.0 + variation.sigma * z;
            f = std::min(std::max(f, variation.minFactor),
                         variation.maxFactor);
            out[i] = static_cast<Tick>(
                static_cast<double>(cellRetention) * f);
        }
        return out;
    }
};

} // namespace refrint

#endif // REFRINT_EDRAM_RETENTION_HH
