#include "edram/refresh_engine.hh"

#include "common/log.hh"

namespace refrint
{

RefreshEngine::RefreshEngine(RefreshTarget &target,
                             const RefreshPolicy &policy,
                             const RetentionParams &retention,
                             const EngineGeometry &geom, EventQueue &eq,
                             StatGroup &stats)
    : target_(target), policy_(policy), geom_(geom), eq_(eq)
{
    const std::uint32_t lines = target.array().numLines();
    cellRetention_ = retention.cellRetention;
    sentryRetention_ = retention.sentryRetention(lines);
    nominalCell_ = cellRetention_;
    margin_ = cellRetention_ - sentryRetention_;
    lineRetention_ = retention.drawLineRetentions(lines);
    nominalLineRetention_ = lineRetention_;

    refreshes_ = &stats.counter("line_refreshes");
    wbs_ = &stats.counter("refresh_writebacks");
    invals_ = &stats.counter("refresh_invalidations");
    skips_ = &stats.counter("refresh_skips");
    visits_ = &stats.counter("refresh_visits");
}

bool
RefreshEngine::visitLine(std::uint32_t idx, Tick now)
{
    CacheLine &line = target_.array().lineAt(idx);
    visits_->inc();
    const RefreshAction action = decideRefresh(policy_, line);
    switch (action) {
      case RefreshAction::Refresh:
        refreshes_->inc();
        target_.refreshLine(idx, now);
        renewClocks(idx, line, now);
        return true;

      case RefreshAction::Writeback:
        // The write-back reads the line out, which refreshes its cells;
        // it stays resident as Valid-Clean (Fig. 4.1).
        wbs_->inc();
        target_.writebackLine(idx, now);
        renewClocks(idx, line, now);
        return true;

      case RefreshAction::Invalidate:
        invals_->inc();
        target_.invalidateLine(idx, now);
        return false;

      case RefreshAction::Skip:
        skips_->inc();
        return false;
    }
    panic("unreachable refresh action");
}

namespace
{

/** Affinely rescale a future stamp around @p now by @p rho. */
Tick
rescaleStamp(Tick t, Tick now, double rho)
{
    if (t == kTickNever || t <= now)
        return t;
    return now + static_cast<Tick>(static_cast<double>(t - now) * rho);
}

} // namespace

bool
RefreshEngine::setRetentionScale(double factor, Tick now)
{
    if (!supportsRetentionScaling())
        return false;
    panicIf(!(factor > 0.0), "retention scale factor must be positive");

    Tick newCell =
        static_cast<Tick>(static_cast<double>(nominalCell_) * factor);
    // Floor: the sentry margin is an absolute service-time bound, so a
    // retention that approaches it would mean continuous refresh.  Cap
    // the scaling there rather than panicking mid-run.
    const Tick floor = std::max<Tick>(2 * margin_, 16);
    if (newCell < floor) {
        if (!warnedFloor_) {
            warn("%s: thermal retention %llu would consume the sentry "
                 "margin; flooring at %llu",
                 target_.name(), static_cast<unsigned long long>(newCell),
                 static_cast<unsigned long long>(floor));
            warnedFloor_ = true;
        }
        newCell = floor;
    }
    scale_ = factor;
    if (newCell == cellRetention_)
        return false;

    const double rho = static_cast<double>(newCell) /
                       static_cast<double>(cellRetention_);
    cellRetention_ = newCell;
    sentryRetention_ = cellRetention_ - margin_;
    for (std::size_t i = 0; i < lineRetention_.size(); ++i) {
        lineRetention_[i] = std::max<Tick>(
            1, static_cast<Tick>(
                   static_cast<double>(nominalLineRetention_[i]) *
                   static_cast<double>(newCell) /
                   static_cast<double>(nominalCell_)));
    }

    // Re-stamp every line clock affinely around now: expiries and the
    // engine deadlines that renew them scale together, so visit-before-
    // expiry is preserved in both the warming and cooling directions.
    target_.array().forEachLine([&](std::uint32_t, CacheLine &line) {
        line.dataExpiry = rescaleStamp(line.dataExpiry, now, rho);
        line.sentryExpiry = rescaleStamp(line.sentryExpiry, now, rho);
    });
    onRetentionRescaled(rho, now);
    return true;
}

// ---------------------------------------------------------------------
// PeriodicEngine
// ---------------------------------------------------------------------

PeriodicEngine::PeriodicEngine(RefreshTarget &target,
                               const RefreshPolicy &policy,
                               const RetentionParams &retention,
                               const EngineGeometry &geom, EventQueue &eq,
                               StatGroup &stats)
    : RefreshEngine(target, policy, retention, geom, eq, stats)
{
    // A periodic controller has no per-line retention knowledge: under
    // process variation the whole cache must be cycled at the weakest
    // line's period (§4.1 discussion; bench_ablation_variation).
    if (!lineRetention_.empty()) {
        Tick weakest = cellRetention_;
        for (Tick r : lineRetention_)
            weakest = std::min(weakest, r);
        cellRetention_ = weakest;
        nominalCell_ = weakest;
        panicIf(margin_ >= cellRetention_,
                "sentry margin consumes the weakest line's retention");
        sentryRetention_ = cellRetention_ - margin_;
    }
    const std::uint32_t lines = target.array().numLines();
    const std::uint32_t groups = std::max(1u, geom_.periodicGroups);
    const std::uint32_t perGroup = (lines + groups - 1) / groups;
    linesPerBurst_ = std::min(std::max(1u, geom_.periodicBurstLines),
                              perGroup);
    // Bursts cover the line space contiguously; group boundaries are
    // implicit since bursts are evenly staggered anyway.
    numBursts_ = (lines + linesPerBurst_ - 1) / linesPerBurst_;
    burstNext_.assign(numBursts_, 0);
    bursts_ = &stats.counter("periodic_bursts");
}

void
PeriodicEngine::start(Tick now)
{
    // Stagger burst k at phase k * T / numBursts so that the refresh of
    // the full cache is spread across an entire retention period (§3.2).
    started_ = true;
    for (std::uint32_t k = 0; k < numBursts_; ++k) {
        const Tick phase =
            cellRetention_ * static_cast<Tick>(k) / numBursts_;
        burstNext_[k] = now + phase + 1;
        eq_.schedule(burstNext_[k], this, burstTag(k, gen_));
    }
}

void
PeriodicEngine::onInstall(std::uint32_t idx, Tick now)
{
    CacheLine &line = target_.array().lineAt(idx);
    // The fill writes the cells: full (per-line) retention from now.
    // The periodic schedule guarantees a visit within one period.
    line.dataExpiry = now + cellRetentionOf(idx);
    noteAccess(policy_, line);
}

void
PeriodicEngine::onAccess(std::uint32_t idx, Tick now)
{
    CacheLine &line = target_.array().lineAt(idx);
    line.dataExpiry = now + cellRetentionOf(idx);
    noteAccess(policy_, line);
}

void
PeriodicEngine::fire(Tick now, std::uint64_t tag)
{
    if (static_cast<std::uint32_t>(tag >> 32) != gen_)
        return; // superseded schedule (retention was rescaled)
    const std::uint64_t burstIdx = tag & 0xffffffffULL;
    const std::uint32_t lines = target_.array().numLines();
    const std::uint32_t lo =
        static_cast<std::uint32_t>(burstIdx) * linesPerBurst_;
    const std::uint32_t hi = std::min(lines, lo + linesPerBurst_);

    std::uint32_t serviced = 0;
    for (std::uint32_t idx = lo; idx < hi; ++idx) {
        if (visitLine(idx, now))
            ++serviced;
        else if (policy_.data != DataPolicy::All) {
            // Invalidated/skipped lines still occupied the pipeline for
            // their tag+state read, but that is off the data array; we
            // only block for actual line refreshes.
        }
    }
    bursts_->inc();
    // The bank is unavailable while the burst streams through the data
    // array, one line per cycle (Table 5.2: refresh time = access time).
    if (serviced > 0)
        target_.addBusy(now, serviced);
    const std::uint32_t k = static_cast<std::uint32_t>(burstIdx);
    burstNext_[k] = now + cellRetention_;
    eq_.schedule(burstNext_[k], this, burstTag(k, gen_));
}

void
PeriodicEngine::onRetentionRescaled(double rho, Tick now)
{
    if (!started_)
        return; // start() will use the updated retention directly
    // Retire the whole old schedule and replay it with every burst's
    // next firing moved affinely around now — each burst keeps its
    // phase position inside the (new) period, so the lines it renews
    // (whose expiries were re-stamped by the same map) are still
    // visited before they decay.
    ++gen_;
    for (std::uint32_t k = 0; k < numBursts_; ++k) {
        burstNext_[k] = rescaleStamp(burstNext_[k], now, rho);
        if (burstNext_[k] < now)
            burstNext_[k] = now;
        eq_.schedule(burstNext_[k], this, burstTag(k, gen_));
    }
}

// ---------------------------------------------------------------------
// RefrintEngine
// ---------------------------------------------------------------------

RefrintEngine::RefrintEngine(RefreshTarget &target,
                             const RefreshPolicy &policy,
                             const RetentionParams &retention,
                             const EngineGeometry &geom, EventQueue &eq,
                             StatGroup &stats)
    : RefreshEngine(target, policy, retention, geom, eq, stats)
{
    const std::uint32_t lines = target.array().numLines();
    geom_.sentryGroupSize = std::max(1u, geom_.sentryGroupSize);
    numGroups_ =
        (lines + geom_.sentryGroupSize - 1) / geom_.sentryGroupSize;
    groupStamp_.assign(numGroups_, 0);
    groupArmed_.assign(numGroups_, false);
    interrupts_ = &stats.counter("sentry_interrupts");
}

void
RefrintEngine::start(Tick now)
{
    if (policy_.data != DataPolicy::All)
        return; // groups arm lazily as lines are installed
    // The All policy refreshes even invalid lines, so every sentry is
    // live from power-on.  Stagger initial phases uniformly to model the
    // steady state and avoid a synchronized interrupt storm.
    CacheArray &arr = target_.array();
    for (std::uint32_t g = 0; g < numGroups_; ++g) {
        const Tick phase =
            1 + sentryRetention_ * static_cast<Tick>(g) / numGroups_;
        const std::uint32_t lo = groupBase(g);
        const std::uint32_t hi =
            std::min(arr.numLines(), lo + geom_.sentryGroupSize);
        for (std::uint32_t idx = lo; idx < hi; ++idx) {
            CacheLine &line = arr.lineAt(idx);
            line.sentryExpiry = now + phase;
            line.dataExpiry = now + phase + (cellRetention_ -
                                             sentryRetention_);
        }
        armGroup(g, now + phase);
    }
    maybeSchedule();
}

Tick
RefrintEngine::groupDeadline(std::uint32_t g) const
{
    CacheArray &arr = target_.array();
    const std::uint32_t lo = g * geom_.sentryGroupSize;
    const std::uint32_t hi =
        std::min(arr.numLines(), lo + geom_.sentryGroupSize);
    Tick dl = kTickNever;
    for (std::uint32_t idx = lo; idx < hi; ++idx) {
        const CacheLine &line = arr.lineAt(idx);
        const bool relevant =
            policy_.data == DataPolicy::All || line.valid();
        if (relevant && line.sentryExpiry < dl)
            dl = line.sentryExpiry;
    }
    return dl;
}

void
RefrintEngine::armGroup(std::uint32_t g, Tick deadline)
{
    ++groupStamp_[g];
    groupArmed_[g] = true;
    heap_.push(HeapEntry{deadline, g, groupStamp_[g]});
}

void
RefrintEngine::maybeSchedule()
{
    if (heap_.empty())
        return;
    const Tick top = heap_.top().expiry;
    if (top < scheduledAt_) {
        scheduledAt_ = top;
        eq_.schedule(top, this, 0);
    }
}

void
RefrintEngine::onRetentionRescaled(double, Tick)
{
    // Line sentry expiries were just re-stamped; push a fresh heap
    // entry for every armed group at its new deadline.  Old entries
    // (and any event scheduled for them) die via the lazy-deletion
    // stamps when they pop.
    for (std::uint32_t g = 0; g < numGroups_; ++g) {
        if (!groupArmed_[g])
            continue;
        const Tick dl = groupDeadline(g);
        if (dl == kTickNever)
            groupArmed_[g] = false;
        else
            armGroup(g, dl);
    }
    scheduledAt_ = kTickNever;
    maybeSchedule();
}

void
RefrintEngine::onInstall(std::uint32_t idx, Tick now)
{
    CacheLine &line = target_.array().lineAt(idx);
    renewClocks(idx, line, now);
    noteAccess(policy_, line);
    const std::uint32_t g = groupOf(idx);
    if (!groupArmed_[g]) {
        armGroup(g, line.sentryExpiry);
        maybeSchedule();
    }
}

void
RefrintEngine::onAccess(std::uint32_t idx, Tick now)
{
    // Accessing a line automatically refreshes both the line and its
    // sentry (§3.2) — just push the clocks out.  The live heap entry, if
    // any, re-arms itself lazily when it pops.
    CacheLine &line = target_.array().lineAt(idx);
    renewClocks(idx, line, now);
    noteAccess(policy_, line);
    const std::uint32_t g = groupOf(idx);
    if (!groupArmed_[g]) {
        armGroup(g, line.sentryExpiry);
        maybeSchedule();
    }
}

void
RefrintEngine::fire(Tick now, std::uint64_t)
{
    scheduledAt_ = kTickNever;
    CacheArray &arr = target_.array();

    while (!heap_.empty() && heap_.top().expiry <= now) {
        const HeapEntry e = heap_.top();
        heap_.pop();
        if (e.stamp != groupStamp_[e.group])
            continue; // superseded entry (lazy deletion)

        // Accesses may have pushed the real deadline out since this
        // entry was armed; if so, re-arm at the true deadline.
        const Tick dl = groupDeadline(e.group);
        if (dl == kTickNever) {
            groupArmed_[e.group] = false;
            continue;
        }
        if (dl > now) {
            armGroup(e.group, dl);
            continue;
        }

        // Genuine sentry interrupt: service every line in the group in
        // a pipelined fashion (§4.2), with priority over plain R/W.
        interrupts_->inc();
        const std::uint32_t lo = groupBase(e.group);
        const std::uint32_t hi =
            std::min(arr.numLines(), lo + geom_.sentryGroupSize);
        std::uint32_t serviced = 0;
        bool anyAlive = false;
        for (std::uint32_t idx = lo; idx < hi; ++idx) {
            CacheLine &line = arr.lineAt(idx);
            const bool relevant =
                policy_.data == DataPolicy::All || line.valid();
            if (!relevant)
                continue;
            if (visitLine(idx, now))
                ++serviced;
            anyAlive = anyAlive || line.valid() ||
                       policy_.data == DataPolicy::All;
        }
        if (serviced > 0)
            target_.addBusy(now, serviced);

        const Tick next = groupDeadline(e.group);
        if (next != kTickNever)
            armGroup(e.group, next);
        else
            groupArmed_[e.group] = false;
    }
    maybeSchedule();
}

// ---------------------------------------------------------------------

std::unique_ptr<RefreshEngine>
makeRefreshEngine(RefreshTarget &target, const RefreshPolicy &policy,
                  const RetentionParams &retention,
                  const EngineGeometry &geom, EventQueue &eq,
                  StatGroup &stats)
{
    switch (policy.time) {
      case TimePolicy::Periodic:
        return std::make_unique<PeriodicEngine>(target, policy, retention,
                                                geom, eq, stats);
      case TimePolicy::Refrint:
        return std::make_unique<RefrintEngine>(target, policy, retention,
                                               geom, eq, stats);
      case TimePolicy::SmartRefresh:
        return makeSmartRefreshEngine(target, policy, retention, geom, eq,
                                      stats);
    }
    panic("unreachable time policy");
}

} // namespace refrint
