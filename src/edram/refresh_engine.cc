#include "edram/refresh_engine.hh"

#include <algorithm>
#include <functional>

#include "common/log.hh"

namespace refrint
{

RefreshEngine::RefreshEngine(RefreshTarget &target,
                             const RefreshPolicy &policy,
                             const RetentionParams &retention,
                             const EngineGeometry &geom, EventQueue &eq,
                             StatGroup &stats, Arena *arena)
    : target_(target), arr_(target.array()), policy_(policy), geom_(geom),
      eq_(eq),
      lineRetention_(ArenaAllocator<Tick>(arena)),
      nominalLineRetention_(ArenaAllocator<Tick>(arena))
{
    const std::uint32_t lines = target.array().numLines();
    cellRetention_ = retention.cellRetention;
    sentryRetention_ = retention.sentryRetention(lines);
    nominalCell_ = cellRetention_;
    margin_ = cellRetention_ - sentryRetention_;
    const std::vector<Tick> draws = retention.drawLineRetentions(lines);
    lineRetention_.assign(draws.begin(), draws.end());
    nominalLineRetention_.assign(draws.begin(), draws.end());

    refreshes_ = &stats.counter("line_refreshes");
    wbs_ = &stats.counter("refresh_writebacks");
    invals_ = &stats.counter("refresh_invalidations");
    skips_ = &stats.counter("refresh_skips");
    visits_ = &stats.counter("refresh_visits");
}

bool
RefreshEngine::visitLine(std::uint32_t idx, Tick now)
{
    CacheLine &line = arr_.lineAt(idx);
    visits_->inc();
    const RefreshAction action = decideRefresh(policy_, line);
    switch (action) {
      case RefreshAction::Refresh:
        refreshes_->inc();
        target_.refreshLine(idx, now);
        renewClocks(idx, line, now);
        return true;

      case RefreshAction::Writeback:
        // The write-back reads the line out, which refreshes its cells;
        // it stays resident as Valid-Clean (Fig. 4.1).
        wbs_->inc();
        target_.writebackLine(idx, now);
        renewClocks(idx, line, now);
        return true;

      case RefreshAction::Invalidate:
        invals_->inc();
        target_.invalidateLine(idx, now);
        return false;

      case RefreshAction::Skip:
        skips_->inc();
        return false;
    }
    panic("unreachable refresh action");
}

namespace
{

/** Affinely rescale a future stamp around @p now by @p rho. */
Tick
rescaleStamp(Tick t, Tick now, double rho)
{
    if (t == kTickNever || t <= now)
        return t;
    return now + static_cast<Tick>(static_cast<double>(t - now) * rho);
}

} // namespace

bool
RefreshEngine::setRetentionScale(double factor, Tick now)
{
    if (!supportsRetentionScaling())
        return false;
    panicIf(!(factor > 0.0), "retention scale factor must be positive");

    Tick newCell =
        static_cast<Tick>(static_cast<double>(nominalCell_) * factor);
    // Floor: the sentry margin is an absolute service-time bound, so a
    // retention that approaches it would mean continuous refresh.  Cap
    // the scaling there rather than panicking mid-run.
    const Tick floor = std::max<Tick>(2 * margin_, 16);
    if (newCell < floor) {
        if (!warnedFloor_) {
            warn("%s: thermal retention %llu would consume the sentry "
                 "margin; flooring at %llu",
                 target_.name(), static_cast<unsigned long long>(newCell),
                 static_cast<unsigned long long>(floor));
            warnedFloor_ = true;
        }
        newCell = floor;
    }
    scale_ = factor;
    if (newCell == cellRetention_)
        return false;

    const double rho = static_cast<double>(newCell) /
                       static_cast<double>(cellRetention_);
    cellRetention_ = newCell;
    sentryRetention_ = cellRetention_ - margin_;
    for (std::size_t i = 0; i < lineRetention_.size(); ++i) {
        lineRetention_[i] = std::max<Tick>(
            1, static_cast<Tick>(
                   static_cast<double>(nominalLineRetention_[i]) *
                   static_cast<double>(newCell) /
                   static_cast<double>(nominalCell_)));
    }

    // Re-stamp every line clock affinely around now: expiries and the
    // engine deadlines that renew them scale together, so visit-before-
    // expiry is preserved in both the warming and cooling directions.
    arr_.forEachLine([&](std::uint32_t idx, CacheLine &line) {
        line.dataExpiry = rescaleStamp(line.dataExpiry, now, rho);
        if (sentryMirror_ != nullptr)
            sentryMirror_[idx] = rescaleStamp(sentryMirror_[idx], now, rho);
    });
    onRetentionRescaled(rho, now);
    return true;
}

// ---------------------------------------------------------------------
// PeriodicEngine
// ---------------------------------------------------------------------

PeriodicEngine::PeriodicEngine(RefreshTarget &target,
                               const RefreshPolicy &policy,
                               const RetentionParams &retention,
                               const EngineGeometry &geom, EventQueue &eq,
                               StatGroup &stats, Arena *arena)
    : RefreshEngine(target, policy, retention, geom, eq, stats, arena),
      burstNext_(ArenaAllocator<Tick>(arena)),
      burstEvents_(ArenaAllocator<EventHandle>(arena))
{
    kind_ = EngineKind::Periodic;
    // A periodic controller has no per-line retention knowledge: under
    // process variation the whole cache must be cycled at the weakest
    // line's period (§4.1 discussion; bench_ablation_variation).
    if (!lineRetention_.empty()) {
        Tick weakest = cellRetention_;
        for (Tick r : lineRetention_)
            weakest = std::min(weakest, r);
        cellRetention_ = weakest;
        nominalCell_ = weakest;
        panicIf(margin_ >= cellRetention_,
                "sentry margin consumes the weakest line's retention");
        sentryRetention_ = cellRetention_ - margin_;
    }
    const std::uint32_t lines = target.array().numLines();
    const std::uint32_t groups = std::max(1u, geom_.periodicGroups);
    const std::uint32_t perGroup = (lines + groups - 1) / groups;
    linesPerBurst_ = std::min(std::max(1u, geom_.periodicBurstLines),
                              perGroup);
    // Bursts cover the line space contiguously; group boundaries are
    // implicit since bursts are evenly staggered anyway.
    numBursts_ = (lines + linesPerBurst_ - 1) / linesPerBurst_;
    burstNext_.assign(numBursts_, 0);
    burstEvents_.assign(numBursts_, EventHandle{});
    bursts_ = &stats.counter("periodic_bursts");
}

void
PeriodicEngine::start(Tick now)
{
    // Stagger burst k at phase k * T / numBursts so that the refresh of
    // the full cache is spread across an entire retention period (§3.2).
    started_ = true;
    for (std::uint32_t k = 0; k < numBursts_; ++k) {
        const Tick phase =
            cellRetention_ * static_cast<Tick>(k) / numBursts_;
        burstNext_[k] = now + phase + 1;
        burstEvents_[k] = eq_.scheduleCancellable(burstNext_[k], this, k);
    }
}

void
PeriodicEngine::fire(Tick now, std::uint64_t tag)
{
    const std::uint32_t k = static_cast<std::uint32_t>(tag);
    const std::uint32_t lines = arr_.numLines();
    const std::uint32_t lo = k * linesPerBurst_;
    const std::uint32_t hi = std::min(lines, lo + linesPerBurst_);

    std::uint32_t serviced = 0;
    if (policy_.data == DataPolicy::All && target_.supportsBulkRefresh()) {
        // Fast path: under All every visit is a refresh, so the whole
        // burst reduces to bulk counter charges plus the per-line clock
        // re-stamp (visitLine would branch and virtual-call per line).
        const std::uint32_t n = hi - lo;
        visits_->inc(n);
        refreshes_->inc(n);
        target_.refreshLinesBulk(n, now);
        for (std::uint32_t idx = lo; idx < hi; ++idx)
            renewClocks(idx, arr_.lineAt(idx), now);
        serviced = n;
    } else if (policy_.data == DataPolicy::Valid &&
               target_.supportsBulkRefresh()) {
        // Fast path: Valid refreshes exactly the probe-valid lines and
        // skips the rest; no action ever mutates line state.
        visits_->inc(hi - lo);
        const Addr *probe = arr_.probeData();
        for (std::uint32_t idx = lo; idx < hi; ++idx) {
            if (probe[idx] != 0) {
                renewClocks(idx, arr_.lineAt(idx), now);
                ++serviced;
            }
        }
        refreshes_->inc(serviced);
        skips_->inc((hi - lo) - serviced);
        if (serviced > 0)
            target_.refreshLinesBulk(serviced, now);
    } else {
        for (std::uint32_t idx = lo; idx < hi; ++idx) {
            if (visitLine(idx, now))
                ++serviced;
            else if (policy_.data != DataPolicy::All) {
                // Invalidated/skipped lines still occupied the pipeline
                // for their tag+state read, but that is off the data
                // array; we only block for actual line refreshes.
            }
        }
    }
    bursts_->inc();
    // The bank is unavailable while the burst streams through the data
    // array, one line per cycle (Table 5.2: refresh time = access time).
    if (serviced > 0)
        target_.addBusy(now, serviced);
    burstNext_[k] = now + cellRetention_;
    burstEvents_[k] = eq_.scheduleCancellable(burstNext_[k], this, k);
}

void
PeriodicEngine::onRetentionRescaled(double rho, Tick now)
{
    if (!started_)
        return; // start() will use the updated retention directly
    // Retire the whole old schedule and replay it with every burst's
    // next firing moved affinely around now — each burst keeps its
    // phase position inside the (new) period, so the lines it renews
    // (whose expiries were re-stamped by the same map) are still
    // visited before they decay.  Cancelling through the handles frees
    // the retired events' kernel heap slots immediately.
    for (std::uint32_t k = 0; k < numBursts_; ++k) {
        eq_.cancel(burstEvents_[k]);
        burstNext_[k] = rescaleStamp(burstNext_[k], now, rho);
        if (burstNext_[k] < now)
            burstNext_[k] = now;
        burstEvents_[k] = eq_.scheduleCancellable(burstNext_[k], this, k);
    }
}

// ---------------------------------------------------------------------
// RefrintEngine
// ---------------------------------------------------------------------

RefrintEngine::RefrintEngine(RefreshTarget &target,
                             const RefreshPolicy &policy,
                             const RetentionParams &retention,
                             const EngineGeometry &geom, EventQueue &eq,
                             StatGroup &stats, Arena *arena)
    : RefreshEngine(target, policy, retention, geom, eq, stats, arena),
      heap_(arena), sentryM_(ArenaAllocator<Tick>(arena)),
      ghosts_(ArenaAllocator<Tick>(arena))
{
    kind_ = EngineKind::Refrint;
    const std::uint32_t lines = target.array().numLines();
    geom_.sentryGroupSize = std::max(1u, geom_.sentryGroupSize);
    numGroups_ =
        (lines + geom_.sentryGroupSize - 1) / geom_.sentryGroupSize;
    heap_.reset(numGroups_);
    sentryM_.assign(lines, kTickNever);
    sentryMirror_ = sentryM_.data();
    interrupts_ = &stats.counter("sentry_interrupts");
}

// Indexed 16-ary min-heap over armed groups -------------------------------

void
RefrintEngine::GroupHeap::siftUp(std::size_t i)
{
    const Tick heldExpiry = expiry_[i];
    const std::uint32_t heldGroup = group_[i];
    while (i != 0) {
        const std::size_t parent = (i - 1) >> 4;
        if (expiry_[parent] <= heldExpiry)
            break;
        expiry_[i] = expiry_[parent];
        group_[i] = group_[parent];
        pos_[group_[i]] = static_cast<std::uint32_t>(i);
        i = parent;
    }
    expiry_[i] = heldExpiry;
    group_[i] = heldGroup;
    pos_[heldGroup] = static_cast<std::uint32_t>(i);
}

void
RefrintEngine::GroupHeap::siftDown(std::size_t i)
{
    const Tick heldExpiry = expiry_[i];
    const std::uint32_t heldGroup = group_[i];
    const std::size_t n = expiry_.size();
    for (;;) {
        const std::size_t base = (i << 4) + 1;
        if (base >= n)
            break;
        std::size_t best = base;
        const std::size_t end = base + 16 < n ? base + 16 : n;
        for (std::size_t c = base + 1; c < end; ++c) {
            if (expiry_[c] < expiry_[best])
                best = c;
        }
        if (heldExpiry <= expiry_[best])
            break;
        expiry_[i] = expiry_[best];
        group_[i] = group_[best];
        pos_[group_[i]] = static_cast<std::uint32_t>(i);
        i = best;
    }
    expiry_[i] = heldExpiry;
    group_[i] = heldGroup;
    pos_[heldGroup] = static_cast<std::uint32_t>(i);
}

void
RefrintEngine::GroupHeap::arm(std::uint32_t g, Tick expiry)
{
    std::uint32_t i = pos_[g];
    if (i == kAbsent) {
        i = static_cast<std::uint32_t>(expiry_.size());
        expiry_.push_back(expiry);
        group_.push_back(g);
        pos_[g] = i;
        siftUp(i);
        return;
    }
    const Tick old = expiry_[i];
    expiry_[i] = expiry;
    if (expiry < old)
        siftUp(i);
    else if (expiry > old)
        siftDown(i);
}

void
RefrintEngine::GroupHeap::popTop()
{
    remove(group_.front());
}

void
RefrintEngine::GroupHeap::remove(std::uint32_t g)
{
    const std::uint32_t i = pos_[g];
    if (i == kAbsent)
        return;
    pos_[g] = kAbsent;
    const std::size_t last = expiry_.size() - 1;
    if (i != last) {
        expiry_[i] = expiry_[last];
        group_[i] = group_[last];
        pos_[group_[i]] = i;
        expiry_.pop_back();
        group_.pop_back();
        siftUp(i);
        siftDown(i);
    } else {
        expiry_.pop_back();
        group_.pop_back();
    }
}

void
RefrintEngine::start(Tick now)
{
    if (policy_.data != DataPolicy::All)
        return; // groups arm lazily as lines are installed
    // The All policy refreshes even invalid lines, so every sentry is
    // live from power-on.  Stagger initial phases uniformly to model the
    // steady state and avoid a synchronized interrupt storm.
    CacheArray &arr = arr_;
    for (std::uint32_t g = 0; g < numGroups_; ++g) {
        const Tick phase =
            1 + sentryRetention_ * static_cast<Tick>(g) / numGroups_;
        const std::uint32_t lo = groupBase(g);
        const std::uint32_t hi =
            std::min(arr.numLines(), lo + geom_.sentryGroupSize);
        for (std::uint32_t idx = lo; idx < hi; ++idx) {
            CacheLine &line = arr.lineAt(idx);
            line.dataExpiry = now + phase + (cellRetention_ -
                                             sentryRetention_);
            sentryM_[idx] = now + phase;
        }
        armGroup(g, now + phase);
    }
    maybeSchedule();
}

namespace
{

#if defined(REFRINT_PROBE_AVX2)

/** Lane-wise unsigned min over 64-bit lanes (AVX2 has no unsigned
 *  64-bit compare: flip the sign bit and compare signed). */
inline __m256i
minU64(__m256i a, __m256i b)
{
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ull));
    const __m256i gt = _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias),
                                          _mm256_xor_si256(b, bias));
    return _mm256_blendv_epi8(a, b, gt); // a > b ? b : a
}

inline Tick
hminU64(__m256i v)
{
    alignas(32) Tick lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), v);
    Tick m = lanes[0];
    for (int i = 1; i < 4; ++i)
        m = lanes[i] < m ? lanes[i] : m;
    return m;
}

#endif // REFRINT_PROBE_AVX2

/** Min of sm[lo..hi); under Valid gating only probe-valid lanes count.
 *  Vector body over aligned-count chunks, scalar tail — nothing past
 *  hi is ever read, so a partial last group can never see its
 *  neighbour's sentries. */
inline Tick
sentryScanMin(const Tick *sm, const Addr *probe, std::uint32_t lo,
              std::uint32_t hi)
{
    Tick dl = kTickNever;
    std::uint32_t idx = lo;
#if defined(REFRINT_PROBE_AVX2)
    __m256i acc = _mm256_set1_epi64x(-1); // kTickNever in every lane
    for (; idx + 4 <= hi; idx += 4) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(sm + idx));
        if (probe != nullptr) {
            // Invalid lanes (probe word 0) must not contribute: the
            // compare mask is all-ones exactly there, and OR-ing it in
            // turns the lane into kTickNever.
            const __m256i pv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(probe + idx));
            v = _mm256_or_si256(
                v, _mm256_cmpeq_epi64(pv, _mm256_setzero_si256()));
        }
        acc = minU64(acc, v);
    }
    dl = hminU64(acc);
#endif
    for (; idx < hi; ++idx) {
        if ((probe == nullptr || probe[idx] != 0) && sm[idx] < dl)
            dl = sm[idx];
    }
    return dl;
}

} // namespace

Tick
RefrintEngine::groupDeadline(std::uint32_t g) const
{
    // Dense scan: packed sentry expiries gated by the packed validity
    // probe — no CacheLine structs are touched, and the scan body is
    // vectorized (sentryScanMin above).
    const std::uint32_t lo = g * geom_.sentryGroupSize;
    const std::uint32_t hi =
        std::min(arr_.numLines(), lo + geom_.sentryGroupSize);
    const Addr *probe =
        policy_.data == DataPolicy::All ? nullptr : arr_.probeData();
    return sentryScanMin(sentryM_.data(), probe, lo, hi);
}

void
RefrintEngine::armGroup(std::uint32_t g, Tick deadline)
{
    heap_.arm(g, deadline);
}

void
RefrintEngine::maybeSchedule()
{
    Tick top = kTickNever;
    if (!heap_.empty())
        top = heap_.topExpiry();
    if (!ghosts_.empty() && ghosts_.front() < top)
        top = ghosts_.front();
    if (top != kTickNever && top < scheduledAt_) {
        scheduledAt_ = top;
        eq_.schedule(top, this, 0);
    }
}

void
RefrintEngine::onRetentionRescaled(double, Tick)
{
    // Line sentry expiries were just re-stamped; re-key every armed
    // group to its new deadline in place.  The superseded deadline is
    // kept as a ghost wake time so the engine's kernel wake schedule
    // (and with it every later event's tie-break position) matches the
    // historical duplicate-entry heap tick for tick.
    for (std::uint32_t g = 0; g < numGroups_; ++g) {
        if (!heap_.contains(g))
            continue;
        ghosts_.push_back(heap_.expiryOf(g));
        std::push_heap(ghosts_.begin(), ghosts_.end(),
                       std::greater<>());
        const Tick dl = groupDeadline(g);
        if (dl == kTickNever)
            heap_.remove(g);
        else
            armGroup(g, dl);
    }
    scheduledAt_ = kTickNever;
    maybeSchedule();
}

void
RefrintEngine::fire(Tick now, std::uint64_t)
{
    scheduledAt_ = kTickNever;
    CacheArray &arr = arr_;

    // Expired ghost deadlines melt silently (see ghosts_).
    while (!ghosts_.empty() && ghosts_.front() <= now) {
        std::pop_heap(ghosts_.begin(), ghosts_.end(), std::greater<>());
        ghosts_.pop_back();
    }

    // Drain every group whose armed deadline has passed: same-tick
    // sentry interrupts are batched into this one kernel dispatch.
    while (!heap_.empty() && heap_.topExpiry() <= now) {
        const std::uint32_t g = heap_.topGroup();

        // Accesses may have pushed the real deadline out since this
        // group was armed; if so, re-key the root node in place (one
        // sift) rather than pop + reinsert.
        const Tick dl = groupDeadline(g);
        if (dl == kTickNever) {
            heap_.popTop();
            continue;
        }
        if (dl > now) {
            armGroup(g, dl);
            continue;
        }

        // Genuine sentry interrupt: service every line in the group in
        // a pipelined fashion (§4.2), with priority over plain R/W.
        interrupts_->inc();
        const std::uint32_t lo = groupBase(g);
        const std::uint32_t hi =
            std::min(arr.numLines(), lo + geom_.sentryGroupSize);
        const bool all = policy_.data == DataPolicy::All;
        const Addr *probe = arr.probeData();
        std::uint32_t serviced = 0;
        Tick next = kTickNever;
        if ((all || policy_.data == DataPolicy::Valid) &&
            target_.supportsBulkRefresh()) {
            // Fast path: every relevant line is refreshed (All/Valid
            // never write back, invalidate or mutate state), so the
            // visit reduces to the clock re-stamp plus bulk charges —
            // and the group's next deadline falls out of the renewed
            // stamps, saving the post-service group re-scan.
            for (std::uint32_t idx = lo; idx < hi; ++idx) {
                if (!all && probe[idx] == 0)
                    continue;
                renewClocks(idx, arr.lineAt(idx), now);
                if (sentryM_[idx] < next)
                    next = sentryM_[idx];
                ++serviced;
            }
            visits_->inc(serviced);
            refreshes_->inc(serviced);
            if (serviced > 0)
                target_.refreshLinesBulk(serviced, now);
        } else {
            for (std::uint32_t idx = lo; idx < hi; ++idx) {
                if (!all && probe[idx] == 0)
                    continue;
                if (visitLine(idx, now))
                    ++serviced;
            }
            next = groupDeadline(g);
        }
        if (serviced > 0)
            target_.addBusy(now, serviced);

        if (next != kTickNever)
            armGroup(g, next); // re-keys the root in place
        else
            heap_.popTop();
    }
    maybeSchedule();
}

// ---------------------------------------------------------------------

std::unique_ptr<RefreshEngine>
makeRefreshEngine(RefreshTarget &target, const RefreshPolicy &policy,
                  const RetentionParams &retention,
                  const EngineGeometry &geom, EventQueue &eq,
                  StatGroup &stats, Arena *arena)
{
    switch (policy.time) {
      case TimePolicy::Periodic:
        return std::make_unique<PeriodicEngine>(target, policy, retention,
                                                geom, eq, stats, arena);
      case TimePolicy::Refrint:
        return std::make_unique<RefrintEngine>(target, policy, retention,
                                               geom, eq, stats, arena);
      case TimePolicy::SmartRefresh:
        // The comparator engine is rarely on a sweep's hot path; it
        // keeps plain heap storage (arena not threaded through).
        return makeSmartRefreshEngine(target, policy, retention, geom, eq,
                                      stats);
    }
    panic("unreachable time policy");
}

} // namespace refrint
