/**
 * @file
 * Refresh engines: the time-based half of a refresh policy.
 *
 * Both engines drive the shared data-policy decision of Fig. 4.1 against
 * a cache's line array, but differ in *when* lines are visited:
 *
 *  - PeriodicEngine visits every line once per retention period, in
 *    groups (one per CACTI sub-array, paper §5) staggered across the
 *    period.  Servicing a burst blocks the bank — the availability cost
 *    the paper attributes to periodic refresh.
 *
 *  - RefrintEngine arms a Sentry bit per line (grouped onto shared
 *    interrupt wires, §4.1) and visits a group only when its earliest
 *    sentry decays.  An access auto-refreshes line + sentry, so hot
 *    lines are never explicitly refreshed.  Each serviced line steals a
 *    single pipelined cycle with priority over plain R/W requests.
 */

#ifndef REFRINT_EDRAM_REFRESH_ENGINE_HH
#define REFRINT_EDRAM_REFRESH_ENGINE_HH

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "edram/refresh_policy.hh"
#include "edram/retention.hh"
#include "mem/cache_array.hh"
#include "sim/event_queue.hh"

namespace refrint
{

/**
 * What a refresh engine needs from the cache it manages.  The cache
 * level (via the coherence hierarchy) implements the heavyweight
 * actions; the engine only makes decisions and keeps the clocks.
 */
class RefreshTarget
{
  public:
    virtual ~RefreshTarget() = default;

    virtual CacheArray &array() = 0;

    /** Charge one line refresh (energy accounting). */
    virtual void refreshLine(std::uint32_t idx, Tick now) = 0;

    /** Write the (dirty) line back to the next level; make it clean. */
    virtual void writebackLine(std::uint32_t idx, Tick now) = 0;

    /** Invalidate the line, including upper-level copies. */
    virtual void invalidateLine(std::uint32_t idx, Tick now) = 0;

    /** Make the bank unavailable for @p cycles starting at @p now. */
    virtual void addBusy(Tick now, Tick cycles) = 0;

    virtual const char *name() const = 0;
};

/** Tunables that are microarchitectural rather than policy choices. */
struct EngineGeometry
{
    /** Refrint: sentry bits ganged per interrupt wire (1/4/16, §5). */
    std::uint32_t sentryGroupSize = 1;

    /** Periodic: number of refresh groups (CACTI sub-arrays, §5). */
    std::uint32_t periodicGroups = 4;

    /**
     * Periodic: lines refreshed per contiguous bank-blocking burst.
     * A group is served in ceil(group/burst) bursts spread evenly over
     * the group's slot of the retention period.
     */
    std::uint32_t periodicBurstLines = 256;

    /** SmartRefresh comparator: per-line timeout counter width k; the
     *  phase clock ticks 2^k times per retention period. */
    std::uint32_t smartCounterBits = 3;
};

/** Common interface + bookkeeping shared by the two engines. */
class RefreshEngine : public EventClient
{
  public:
    RefreshEngine(RefreshTarget &target, const RefreshPolicy &policy,
                  const RetentionParams &retention,
                  const EngineGeometry &geom, EventQueue &eq,
                  StatGroup &stats);
    ~RefreshEngine() override = default;

    RefreshEngine(const RefreshEngine &) = delete;
    RefreshEngine &operator=(const RefreshEngine &) = delete;

    /** Begin operation (schedules the initial events). */
    virtual void start(Tick now) = 0;

    /** A line was filled into the cache at flat index @p idx. */
    virtual void onInstall(std::uint32_t idx, Tick now) = 0;

    /** A normal R/W access touched line @p idx (auto-refresh, §2). */
    virtual void onAccess(std::uint32_t idx, Tick now) = 0;

    /** End of the timed window: settle any open accounting (e.g. the
     *  decay engine's line-OFF integration). */
    virtual void finish(Tick now) { (void)now; }

    /**
     * Whether the engine can adapt to retention rescaling at run time
     * (thermal subsystem).  Engines that answer false are left at their
     * nominal retention; the thermal driver warns about them once.
     */
    virtual bool supportsRetentionScaling() const { return false; }

    /**
     * Set the effective retention to nominal x @p factor (temperature
     * update from the thermal driver, src/thermal/).
     *
     * Every line clock and every pending engine deadline is rescaled
     * *affinely around @p now*: a stamp t becomes now + (t - now) * rho,
     * where rho is the ratio of new to old retention.  Because a line's
     * expiry is never earlier than the engine visit that will renew it,
     * the affine map preserves that ordering in both directions —
     * warming compresses both towards now, cooling stretches both — so
     * no line can decay across a retention change.  Physically the map
     * models the remaining charge lifetime contracting or dilating with
     * temperature.
     *
     * The effective retention is floored at twice the sentry margin so
     * a pathological temperature can never consume the entire period.
     * No-op on engines that do not support scaling.
     *
     * @return true if the effective retention actually changed.
     */
    bool setRetentionScale(double factor, Tick now);

    /** Current retention scale factor actually applied (1.0 nominal). */
    double retentionScale() const { return scale_; }

    /** Current (possibly rescaled) data-cell retention period. */
    Tick currentCellRetention() const { return cellRetention_; }

    const RefreshPolicy &policy() const { return policy_; }

    std::uint64_t lineRefreshes() const { return refreshes_->value(); }
    std::uint64_t writebacks() const { return wbs_->value(); }
    std::uint64_t invalidations() const { return invals_->value(); }

  protected:
    /** Run the Fig. 4.1 decision for @p idx and apply the outcome.
     *  @return true if the line remains alive (was refreshed / WB'd). */
    bool visitLine(std::uint32_t idx, Tick now);

    /** Line @p idx's own data retention (per-line under variation). */
    Tick
    cellRetentionOf(std::uint32_t idx) const
    {
        return lineRetention_.empty() ? cellRetention_
                                      : lineRetention_[idx];
    }

    /** Line @p idx's sentry retention: its cell retention minus the
     *  global firing margin (§4.1).  The margin is an interrupt-service
     *  bound in cycles, so it does *not* scale with temperature — a hot
     *  bank keeps the same absolute lead time on a shorter period. */
    Tick
    sentryRetentionOf(std::uint32_t idx) const
    {
        const Tick cell = cellRetentionOf(idx);
        return cell > margin_ ? cell - margin_ : 1;
    }

    /** Stamp fresh retention clocks on line @p idx. */
    void
    renewClocks(std::uint32_t idx, CacheLine &line, Tick now)
    {
        line.dataExpiry = now + cellRetentionOf(idx);
        line.sentryExpiry = now + sentryRetentionOf(idx);
    }

    /** Hook for engines to reshape their visit schedule after a
     *  retention rescale; line clocks are already re-stamped.  @p rho
     *  is newRetention / oldRetention. */
    virtual void
    onRetentionRescaled(double rho, Tick now)
    {
        (void)rho;
        (void)now;
    }

    RefreshTarget &target_;
    RefreshPolicy policy_;
    EngineGeometry geom_;
    EventQueue &eq_;

    Tick cellRetention_;   ///< current (possibly thermally rescaled)
    Tick sentryRetention_; ///< current cellRetention_ - margin_
    Tick nominalCell_;     ///< retention at the reference temperature
    Tick margin_;          ///< sentry firing margin, absolute cycles
    double scale_ = 1.0;   ///< applied retention scale factor
    bool warnedFloor_ = false;

    /** Per-line retention draws; empty when variation is disabled.
     *  lineRetention_ holds the current (scaled) periods, the nominal
     *  draws are kept for exact rescaling. */
    std::vector<Tick> lineRetention_;
    std::vector<Tick> nominalLineRetention_;

    Counter *refreshes_; ///< individual line refreshes performed
    Counter *wbs_;       ///< refresh-triggered write-backs
    Counter *invals_;    ///< refresh-triggered invalidations
    Counter *skips_;     ///< deadline visits that did nothing
    Counter *visits_;    ///< total line visits at deadlines
};

/** Trivial periodic time policy (baseline, Table 3.1). */
class PeriodicEngine : public RefreshEngine
{
  public:
    PeriodicEngine(RefreshTarget &target, const RefreshPolicy &policy,
                   const RetentionParams &retention,
                   const EngineGeometry &geom, EventQueue &eq,
                   StatGroup &stats);

    void start(Tick now) override;
    void onInstall(std::uint32_t idx, Tick now) override;
    void onAccess(std::uint32_t idx, Tick now) override;

    void fire(Tick now, std::uint64_t tag) override;

    bool supportsRetentionScaling() const override { return true; }

    std::uint32_t numBursts() const { return numBursts_; }

  protected:
    /** Reschedule every burst at its phase position compressed (or
     *  stretched) to the new period; stale events die by generation. */
    void onRetentionRescaled(double rho, Tick now) override;

  private:
    /** Event tags pack (generation << 32 | burst) so that a retention
     *  rescale can atomically retire the whole old schedule. */
    static std::uint64_t
    burstTag(std::uint32_t burst, std::uint32_t gen)
    {
        return (static_cast<std::uint64_t>(gen) << 32) | burst;
    }

    std::uint32_t linesPerBurst_;
    std::uint32_t numBursts_;
    std::uint32_t gen_ = 0;        ///< live schedule generation
    std::vector<Tick> burstNext_;  ///< next firing time per burst
    bool started_ = false;

    Counter *bursts_;
};

/** Refrint sentry-interrupt time policy (the paper's proposal). */
class RefrintEngine : public RefreshEngine
{
  public:
    RefrintEngine(RefreshTarget &target, const RefreshPolicy &policy,
                  const RetentionParams &retention,
                  const EngineGeometry &geom, EventQueue &eq,
                  StatGroup &stats);

    void start(Tick now) override;
    void onInstall(std::uint32_t idx, Tick now) override;
    void onAccess(std::uint32_t idx, Tick now) override;

    void fire(Tick now, std::uint64_t tag) override;

    bool supportsRetentionScaling() const override { return true; }

    /** Number of sentry interrupt groups (priority-encoder inputs). */
    std::uint32_t numGroups() const { return numGroups_; }

  protected:
    /** Re-arm every armed group at its (re-stamped) deadline; old heap
     *  entries die by the lazy-deletion stamps. */
    void onRetentionRescaled(double rho, Tick now) override;

  private:
    struct HeapEntry
    {
        Tick expiry;
        std::uint32_t group;
        std::uint64_t stamp;

        bool
        operator>(const HeapEntry &o) const
        {
            return expiry > o.expiry;
        }
    };

    /** First line of sentry group @p g. */
    std::uint32_t
    groupBase(std::uint32_t g) const
    {
        return g * geom_.sentryGroupSize;
    }

    std::uint32_t
    groupOf(std::uint32_t idx) const
    {
        return idx / geom_.sentryGroupSize;
    }

    /**
     * Earliest sentry expiry among the group's policy-relevant lines,
     * or kTickNever if the group has nothing to watch.
     */
    Tick groupDeadline(std::uint32_t g) const;

    /** Push a heap entry for group @p g at @p deadline. */
    void armGroup(std::uint32_t g, Tick deadline);

    /** Make sure an event is scheduled for the heap top. */
    void maybeSchedule();

    std::uint32_t numGroups_;
    std::vector<std::uint64_t> groupStamp_; ///< live heap entry stamp
    std::vector<bool> groupArmed_;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
        heap_;
    Tick scheduledAt_ = kTickNever;

    Counter *interrupts_; ///< sentry interrupts serviced (groups)
};

/** Factory covering every timing policy (including the SmartRefresh
 *  comparator, which lives in related/smart_refresh.hh). */
std::unique_ptr<RefreshEngine>
makeRefreshEngine(RefreshTarget &target, const RefreshPolicy &policy,
                  const RetentionParams &retention,
                  const EngineGeometry &geom, EventQueue &eq,
                  StatGroup &stats);

/** Implemented in related/smart_refresh.cc; kept behind a factory so
 *  the edram module does not include related/ headers. */
std::unique_ptr<RefreshEngine>
makeSmartRefreshEngine(RefreshTarget &target, const RefreshPolicy &policy,
                       const RetentionParams &retention,
                       const EngineGeometry &geom, EventQueue &eq,
                       StatGroup &stats);

} // namespace refrint

#endif // REFRINT_EDRAM_REFRESH_ENGINE_HH
