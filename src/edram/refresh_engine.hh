/**
 * @file
 * Refresh engines: the time-based half of a refresh policy.
 *
 * Both engines drive the shared data-policy decision of Fig. 4.1 against
 * a cache's line array, but differ in *when* lines are visited:
 *
 *  - PeriodicEngine visits every line once per retention period, in
 *    groups (one per CACTI sub-array, paper §5) staggered across the
 *    period.  Servicing a burst blocks the bank — the availability cost
 *    the paper attributes to periodic refresh.
 *
 *  - RefrintEngine arms a Sentry bit per line (grouped onto shared
 *    interrupt wires, §4.1) and visits a group only when its earliest
 *    sentry decays.  An access auto-refreshes line + sentry, so hot
 *    lines are never explicitly refreshed.  Each serviced line steals a
 *    single pipelined cycle with priority over plain R/W requests.
 */

#ifndef REFRINT_EDRAM_REFRESH_ENGINE_HH
#define REFRINT_EDRAM_REFRESH_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "edram/refresh_policy.hh"
#include "edram/retention.hh"
#include "mem/cache_array.hh"
#include "sim/event_queue.hh"

namespace refrint
{

/**
 * What a refresh engine needs from the cache it manages.  The cache
 * level (via the coherence hierarchy) implements the heavyweight
 * actions; the engine only makes decisions and keeps the clocks.
 */
class RefreshTarget
{
  public:
    virtual ~RefreshTarget() = default;

    virtual CacheArray &array() = 0;

    /** Charge one line refresh (energy accounting). */
    virtual void refreshLine(std::uint32_t idx, Tick now) = 0;

    /**
     * Whether refreshLine() is a pure per-line tally (no per-index
     * bookkeeping) so a burst may charge @p count refreshes in one call
     * via refreshLinesBulk().  Targets that record per-line actions
     * (test mocks, tracers) leave this false and keep the general
     * per-line path.
     */
    virtual bool supportsBulkRefresh() const { return false; }

    /** Charge @p count line refreshes at once (see supportsBulkRefresh). */
    virtual void
    refreshLinesBulk(std::uint32_t count, Tick now)
    {
        (void)count;
        (void)now;
        panic("refreshLinesBulk on a target without bulk support");
    }

    /** Write the (dirty) line back to the next level; make it clean. */
    virtual void writebackLine(std::uint32_t idx, Tick now) = 0;

    /** Invalidate the line, including upper-level copies. */
    virtual void invalidateLine(std::uint32_t idx, Tick now) = 0;

    /** Make the bank unavailable for @p cycles starting at @p now. */
    virtual void addBusy(Tick now, Tick cycles) = 0;

    virtual const char *name() const = 0;
};

/** Tunables that are microarchitectural rather than policy choices. */
struct EngineGeometry
{
    /** Refrint: sentry bits ganged per interrupt wire (1/4/16, §5). */
    std::uint32_t sentryGroupSize = 1;

    /** Periodic: number of refresh groups (CACTI sub-arrays, §5). */
    std::uint32_t periodicGroups = 4;

    /**
     * Periodic: lines refreshed per contiguous bank-blocking burst.
     * A group is served in ceil(group/burst) bursts spread evenly over
     * the group's slot of the retention period.
     */
    std::uint32_t periodicBurstLines = 256;

    /** SmartRefresh comparator: per-line timeout counter width k; the
     *  phase clock ticks 2^k times per retention period. */
    std::uint32_t smartCounterBits = 3;
};

/** Concrete engine kind, for hot-path devirtualization (CacheUnit
 *  dispatches onAccess/onInstall through a switch on this instead of a
 *  virtual call; see touchLine). */
enum class EngineKind : std::uint8_t
{
    Other = 0, ///< SmartRefresh, Decay, test doubles
    Periodic,
    Refrint,
};

/** Common interface + bookkeeping shared by the two engines. */
class RefreshEngine : public EventClient
{
  public:
    /** @p arena, when non-null, backs the engine's per-line arrays and
     *  heaps (sweep workers recycle it across scenarios); the engine
     *  must not outlive it. */
    RefreshEngine(RefreshTarget &target, const RefreshPolicy &policy,
                  const RetentionParams &retention,
                  const EngineGeometry &geom, EventQueue &eq,
                  StatGroup &stats, Arena *arena = nullptr);
    ~RefreshEngine() override = default;

    RefreshEngine(const RefreshEngine &) = delete;
    RefreshEngine &operator=(const RefreshEngine &) = delete;

    /** Begin operation (schedules the initial events). */
    virtual void start(Tick now) = 0;

    /** A line was filled into the cache at flat index @p idx. */
    virtual void onInstall(std::uint32_t idx, Tick now) = 0;

    /** A normal R/W access touched line @p idx (auto-refresh, §2). */
    virtual void onAccess(std::uint32_t idx, Tick now) = 0;

    /** End of the timed window: settle any open accounting (e.g. the
     *  decay engine's line-OFF integration). */
    virtual void finish(Tick now) { (void)now; }

    /**
     * Whether the engine can adapt to retention rescaling at run time
     * (thermal subsystem).  Engines that answer false are left at their
     * nominal retention; the thermal driver warns about them once.
     */
    virtual bool supportsRetentionScaling() const { return false; }

    /**
     * Set the effective retention to nominal x @p factor (temperature
     * update from the thermal driver, src/thermal/).
     *
     * Every line clock and every pending engine deadline is rescaled
     * *affinely around @p now*: a stamp t becomes now + (t - now) * rho,
     * where rho is the ratio of new to old retention.  Because a line's
     * expiry is never earlier than the engine visit that will renew it,
     * the affine map preserves that ordering in both directions —
     * warming compresses both towards now, cooling stretches both — so
     * no line can decay across a retention change.  Physically the map
     * models the remaining charge lifetime contracting or dilating with
     * temperature.
     *
     * The effective retention is floored at twice the sentry margin so
     * a pathological temperature can never consume the entire period.
     * No-op on engines that do not support scaling.
     *
     * @return true if the effective retention actually changed.
     */
    bool setRetentionScale(double factor, Tick now);

    /** Current retention scale factor actually applied (1.0 nominal). */
    double retentionScale() const { return scale_; }

    /** Current (possibly rescaled) data-cell retention period. */
    Tick currentCellRetention() const { return cellRetention_; }

    const RefreshPolicy &policy() const { return policy_; }

    /** Concrete kind for devirtualized hot-path dispatch. */
    EngineKind kind() const { return kind_; }

    std::uint64_t lineRefreshes() const { return refreshes_->value(); }
    std::uint64_t writebacks() const { return wbs_->value(); }
    std::uint64_t invalidations() const { return invals_->value(); }

  protected:
    /** Run the Fig. 4.1 decision for @p idx and apply the outcome.
     *  @return true if the line remains alive (was refreshed / WB'd). */
    bool visitLine(std::uint32_t idx, Tick now);

    /** Line @p idx's own data retention (per-line under variation). */
    Tick
    cellRetentionOf(std::uint32_t idx) const
    {
        return lineRetention_.empty() ? cellRetention_
                                      : lineRetention_[idx];
    }

    /** Line @p idx's sentry retention: its cell retention minus the
     *  global firing margin (§4.1).  The margin is an interrupt-service
     *  bound in cycles, so it does *not* scale with temperature — a hot
     *  bank keeps the same absolute lead time on a shorter period. */
    Tick
    sentryRetentionOf(std::uint32_t idx) const
    {
        const Tick cell = cellRetentionOf(idx);
        return cell > margin_ ? cell - margin_ : 1;
    }

    /** Stamp fresh retention clocks on line @p idx.  The sentry clock
     *  lives only in the engine's packed mirror (engines without one —
     *  Periodic, SmartRefresh, Decay — never read it). */
    void
    renewClocks(std::uint32_t idx, CacheLine &line, Tick now)
    {
        line.dataExpiry = now + cellRetentionOf(idx);
        if (sentryMirror_ != nullptr)
            sentryMirror_[idx] = now + sentryRetentionOf(idx);
    }

    /** Hook for engines to reshape their visit schedule after a
     *  retention rescale; line clocks are already re-stamped.  @p rho
     *  is newRetention / oldRetention. */
    virtual void
    onRetentionRescaled(double rho, Tick now)
    {
        (void)rho;
        (void)now;
    }

    RefreshTarget &target_;
    CacheArray &arr_; ///< target_.array(), cached (no virtual dispatch)
    RefreshPolicy policy_;
    EngineGeometry geom_;
    EventQueue &eq_;
    EngineKind kind_ = EngineKind::Other; ///< set by concrete ctors

    /** Optional dense mirror of line.sentryExpiry, one Tick per flat
     *  index, kept in lockstep by renewClocks()/setRetentionScale().
     *  Engines that scan sentry deadlines on their hot path (Refrint)
     *  point this at their own packed array so the scan touches dense
     *  Ticks instead of striding CacheLine structs. */
    Tick *sentryMirror_ = nullptr;

    Tick cellRetention_;   ///< current (possibly thermally rescaled)
    Tick sentryRetention_; ///< current cellRetention_ - margin_
    Tick nominalCell_;     ///< retention at the reference temperature
    Tick margin_;          ///< sentry firing margin, absolute cycles
    double scale_ = 1.0;   ///< applied retention scale factor
    bool warnedFloor_ = false;

    /** Per-line retention draws; empty when variation is disabled.
     *  lineRetention_ holds the current (scaled) periods, the nominal
     *  draws are kept for exact rescaling. */
    ArenaVector<Tick> lineRetention_;
    ArenaVector<Tick> nominalLineRetention_;

    Counter *refreshes_; ///< individual line refreshes performed
    Counter *wbs_;       ///< refresh-triggered write-backs
    Counter *invals_;    ///< refresh-triggered invalidations
    Counter *skips_;     ///< deadline visits that did nothing
    Counter *visits_;    ///< total line visits at deadlines
};

/** Trivial periodic time policy (baseline, Table 3.1). */
class PeriodicEngine : public RefreshEngine
{
  public:
    PeriodicEngine(RefreshTarget &target, const RefreshPolicy &policy,
                   const RetentionParams &retention,
                   const EngineGeometry &geom, EventQueue &eq,
                   StatGroup &stats, Arena *arena = nullptr);

    void start(Tick now) override;

    /** Inline: called once or twice per memory reference. */
    void
    onInstall(std::uint32_t idx, Tick now) override
    {
        CacheLine &line = arr_.lineAt(idx);
        // The fill writes the cells: full (per-line) retention from
        // now.  The periodic schedule guarantees a visit in-period.
        line.dataExpiry = now + cellRetentionOf(idx);
        noteAccess(policy_, line);
    }

    void
    onAccess(std::uint32_t idx, Tick now) override
    {
        CacheLine &line = arr_.lineAt(idx);
        line.dataExpiry = now + cellRetentionOf(idx);
        noteAccess(policy_, line);
    }

    void fire(Tick now, std::uint64_t tag) override;

    bool supportsRetentionScaling() const override { return true; }

    std::uint32_t numBursts() const { return numBursts_; }

  protected:
    /** Reschedule every burst at its phase position compressed (or
     *  stretched) to the new period; the retired schedule is cancelled
     *  through its event handles, vacating the kernel heap slots. */
    void onRetentionRescaled(double rho, Tick now) override;

  private:
    std::uint32_t linesPerBurst_;
    std::uint32_t numBursts_;
    ArenaVector<Tick> burstNext_;  ///< next firing time per burst
    ArenaVector<EventHandle> burstEvents_; ///< live event per burst
    bool started_ = false;

    Counter *bursts_;
};

/** Refrint sentry-interrupt time policy (the paper's proposal). */
class RefrintEngine : public RefreshEngine
{
  public:
    RefrintEngine(RefreshTarget &target, const RefreshPolicy &policy,
                  const RetentionParams &retention,
                  const EngineGeometry &geom, EventQueue &eq,
                  StatGroup &stats, Arena *arena = nullptr);

    void start(Tick now) override;

    /** Inline: called once or twice per memory reference.  An access
     *  automatically refreshes line + sentry (§3.2) — push the clocks
     *  out; the group's heap node, if any, re-keys itself lazily when
     *  it reaches the top. */
    void
    onInstall(std::uint32_t idx, Tick now) override
    {
        CacheLine &line = arr_.lineAt(idx);
        renewClocks(idx, line, now);
        noteAccess(policy_, line);
        const std::uint32_t g = groupOf(idx);
        if (!heap_.contains(g)) {
            armGroup(g, sentryM_[idx]);
            maybeSchedule();
        }
    }

    void
    onAccess(std::uint32_t idx, Tick now) override
    {
        onInstall(idx, now); // identical bookkeeping (§3.2 auto-refresh)
    }

    void fire(Tick now, std::uint64_t tag) override;

    bool supportsRetentionScaling() const override { return true; }

    /** Number of sentry interrupt groups (priority-encoder inputs). */
    std::uint32_t numGroups() const { return numGroups_; }

  protected:
    /** Re-arm every armed group at its (re-stamped) deadline. */
    void onRetentionRescaled(double rho, Tick now) override;

  private:
    /**
     * Indexed min-heap of armed sentry groups, keyed by expiry.  Each
     * group owns at most one node (a position index supports in-place
     * re-keying), so superseded deadlines never linger as dead heap
     * slots the way stamped duplicate entries used to.  Flat 16-ary
     * sift over SoA storage: re-keying the root (the common operation —
     * every serviced or access-renewed group) walks log16 rungs, each a
     * packed one-or-two-cache-line key scan.
     */
    class GroupHeap
    {
      public:
        explicit GroupHeap(Arena *arena = nullptr)
            : expiry_(ArenaAllocator<Tick>(arena)),
              group_(ArenaAllocator<std::uint32_t>(arena)),
              pos_(ArenaAllocator<std::uint32_t>(arena))
        {
        }

        void
        reset(std::uint32_t numGroups)
        {
            expiry_.clear();
            expiry_.reserve(numGroups);
            group_.clear();
            group_.reserve(numGroups);
            pos_.assign(numGroups, kAbsent);
        }

        bool empty() const { return expiry_.empty(); }
        bool contains(std::uint32_t g) const { return pos_[g] != kAbsent; }
        Tick topExpiry() const { return expiry_.front(); }
        std::uint32_t topGroup() const { return group_.front(); }
        Tick expiryOf(std::uint32_t g) const { return expiry_[pos_[g]]; }

        /** Insert group @p g or move its existing node to @p expiry. */
        void arm(std::uint32_t g, Tick expiry);

        /** Remove the minimum node (heap must be non-empty). */
        void popTop();

        /** Remove group @p g's node if present. */
        void remove(std::uint32_t g);

      private:
        static constexpr std::uint32_t kAbsent = 0xffffffffu;

        void siftUp(std::size_t i);
        void siftDown(std::size_t i);

        // SoA node storage: the sift comparisons scan the packed key
        // array (16 children = two cache lines); group ids ride along.
        ArenaVector<Tick> expiry_;
        ArenaVector<std::uint32_t> group_;
        ArenaVector<std::uint32_t> pos_; ///< group -> node index
    };

    /** First line of sentry group @p g. */
    std::uint32_t
    groupBase(std::uint32_t g) const
    {
        return g * geom_.sentryGroupSize;
    }

    std::uint32_t
    groupOf(std::uint32_t idx) const
    {
        return idx / geom_.sentryGroupSize;
    }

    /**
     * Earliest sentry expiry among the group's policy-relevant lines,
     * or kTickNever if the group has nothing to watch.
     */
    Tick groupDeadline(std::uint32_t g) const;

    /** Arm (or re-key) group @p g at @p deadline. */
    void armGroup(std::uint32_t g, Tick deadline);

    /** Make sure an event is scheduled for the heap top. */
    void maybeSchedule();

    std::uint32_t numGroups_;
    GroupHeap heap_;
    ArenaVector<Tick> sentryM_; ///< packed sentry expiries (mirror)
    Tick scheduledAt_ = kTickNever;

    /**
     * Deadlines superseded by a retention rescale, min-heap ordered.
     * The engine still wakes at these times (a no-op wake that melts
     * the ghost), reproducing the wake schedule of the historical
     * duplicate-entry sentry heap exactly — without them, a cooling
     * rescale would shift the sequence numbers of subsequent wakes and
     * with them the same-tick interleaving against core events.
     * Empty in isothermal runs.
     */
    ArenaVector<Tick> ghosts_;

    Counter *interrupts_; ///< sentry interrupts serviced (groups)
};

/** Factory covering every timing policy (including the SmartRefresh
 *  comparator, which lives in related/smart_refresh.hh). */
std::unique_ptr<RefreshEngine>
makeRefreshEngine(RefreshTarget &target, const RefreshPolicy &policy,
                  const RetentionParams &retention,
                  const EngineGeometry &geom, EventQueue &eq,
                  StatGroup &stats, Arena *arena = nullptr);

/** Implemented in related/smart_refresh.cc; kept behind a factory so
 *  the edram module does not include related/ headers. */
std::unique_ptr<RefreshEngine>
makeSmartRefreshEngine(RefreshTarget &target, const RefreshPolicy &policy,
                       const RetentionParams &retention,
                       const EngineGeometry &geom, EventQueue &eq,
                       StatGroup &stats);

} // namespace refrint

#endif // REFRINT_EDRAM_REFRESH_ENGINE_HH
