#include "edram/refresh_policy.hh"

#include <cstdio>

#include "common/log.hh"

namespace refrint
{

const char *
timePolicyName(TimePolicy t)
{
    switch (t) {
      case TimePolicy::Periodic:
        return "P";
      case TimePolicy::Refrint:
        return "R";
      case TimePolicy::SmartRefresh:
        return "S";
    }
    return "?";
}

const char *
dataPolicyName(DataPolicy d)
{
    switch (d) {
      case DataPolicy::All:
        return "all";
      case DataPolicy::Valid:
        return "valid";
      case DataPolicy::Dirty:
        return "dirty";
      case DataPolicy::WB:
        return "WB";
    }
    return "?";
}

const char *
refreshActionName(RefreshAction a)
{
    switch (a) {
      case RefreshAction::Refresh:
        return "refresh";
      case RefreshAction::Writeback:
        return "writeback";
      case RefreshAction::Invalidate:
        return "invalidate";
      case RefreshAction::Skip:
        return "skip";
    }
    return "?";
}

std::string
RefreshPolicy::name() const
{
    std::string s = timePolicyName(time);
    s += ".";
    if (data == DataPolicy::WB) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "WB(%u,%u)", n, m);
        s += buf;
    } else {
        s += dataPolicyName(data);
    }
    return s;
}

RefreshPolicy
RefreshPolicy::periodic(DataPolicy d, std::uint32_t n, std::uint32_t m)
{
    return RefreshPolicy{TimePolicy::Periodic, d, n, m};
}

RefreshPolicy
RefreshPolicy::refrint(DataPolicy d, std::uint32_t n, std::uint32_t m)
{
    return RefreshPolicy{TimePolicy::Refrint, d, n, m};
}

RefreshPolicy
parsePolicy(const std::string &s)
{
    RefreshPolicy p;
    if (s.size() < 3 || (s[0] != 'P' && s[0] != 'R' && s[0] != 'S') ||
        s[1] != '.')
        fatal("cannot parse policy '%s'", s.c_str());
    p.time = s[0] == 'P'   ? TimePolicy::Periodic
             : s[0] == 'R' ? TimePolicy::Refrint
                           : TimePolicy::SmartRefresh;
    const std::string body = s.substr(2);
    if (body == "all") {
        p.data = DataPolicy::All;
    } else if (body == "valid") {
        p.data = DataPolicy::Valid;
    } else if (body == "dirty") {
        p.data = DataPolicy::Dirty;
    } else {
        unsigned n = 0, m = 0;
        if (std::sscanf(body.c_str(), "WB(%u,%u)", &n, &m) != 2)
            fatal("cannot parse policy '%s'", s.c_str());
        p.data = DataPolicy::WB;
        p.n = n;
        p.m = m;
    }
    return p;
}

} // namespace refrint
