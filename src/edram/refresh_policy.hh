/**
 * @file
 * Refrint refresh policies (paper Table 3.1) and the per-line decision
 * algorithm of Fig. 4.1.
 *
 * A policy has a time-based component (when to refresh: Periodic or
 * Refrint/sentry-interrupt) and a data-based component (what to refresh:
 * All, Valid, Dirty, or WB(n,m)).  Either time policy combines with any
 * data policy; the paper sweeps the full cross product (Table 5.4).
 */

#ifndef REFRINT_EDRAM_REFRESH_POLICY_HH
#define REFRINT_EDRAM_REFRESH_POLICY_HH

#include <cstdint>
#include <string>

#include "common/log.hh"
#include "common/types.hh"
#include "mem/line_state.hh"

namespace refrint
{

/** When to refresh (Table 3.1, top half, plus the related-work
 *  comparator of §7). */
enum class TimePolicy : std::uint8_t
{
    Periodic = 0, ///< refresh groups of lines on a fixed schedule
    Refrint,      ///< refresh on Sentry-bit decay interrupts
    /** SmartRefresh (Ghosh & Lee, MICRO'07): per-line timeout counters
     *  polled at a coarse phase clock skip lines that a recent access
     *  already refreshed.  Implemented in related/smart_refresh.hh;
     *  evaluated as a comparator, not part of the paper's sweep. */
    SmartRefresh,
};

/** What to refresh (Table 3.1, bottom half). */
enum class DataPolicy : std::uint8_t
{
    All = 0, ///< every line, valid or not (reference policy)
    Valid,   ///< only valid lines; everything else decays
    Dirty,   ///< only dirty lines; clean valid lines are invalidated
    WB,      ///< WB(n,m): n refreshes then write back; m then invalidate
};

const char *timePolicyName(TimePolicy t);
const char *dataPolicyName(DataPolicy d);

/** Full policy: time component, data component and the WB tuple. */
struct RefreshPolicy
{
    TimePolicy time = TimePolicy::Refrint;
    DataPolicy data = DataPolicy::Valid;
    std::uint32_t n = 0; ///< WB: refreshes before write-back (dirty lines)
    std::uint32_t m = 0; ///< WB: refreshes before invalidation (clean)

    /** "R.WB(32,32)", "P.valid", ... matching the paper's bar labels. */
    std::string name() const;

    static RefreshPolicy periodic(DataPolicy d, std::uint32_t n = 0,
                                  std::uint32_t m = 0);
    static RefreshPolicy refrint(DataPolicy d, std::uint32_t n = 0,
                                 std::uint32_t m = 0);
};

/** Outcome of a refresh-deadline decision for one line. */
enum class RefreshAction : std::uint8_t
{
    Refresh = 0, ///< refresh line (and sentry bit)
    Writeback,   ///< write dirty data down, keep line as Valid-Clean
    Invalidate,  ///< drop the line (and upper-level copies)
    Skip,        ///< do nothing; the line may decay
};

const char *refreshActionName(RefreshAction a);

/**
 * Decide what to do with @p line when its refresh deadline arrives
 * (sentry interrupt for Refrint, scheduled visit for Periodic).
 *
 * Implements Fig. 4.1 for WB(n,m), including the Count decrement; for
 * the Writeback outcome the caller must complete the state change
 * (mark clean, reset Count to m) after performing the write-back, which
 * this function anticipates by setting count = m.
 *
 * The line is identified as dirty via its local dirty flag — at the
 * shared L3 this deliberately ignores Modified copies in upper levels,
 * reproducing the visibility limitation discussed in §3.2.
 *
 * Inline: this runs once per line visit, millions of times per run.
 */
inline RefreshAction
decideRefresh(const RefreshPolicy &policy, CacheLine &line)
{
    switch (policy.data) {
      case DataPolicy::All:
        // Refresh every line, irrespective of validity (§3.2).
        return RefreshAction::Refresh;

      case DataPolicy::Valid:
        return line.valid() ? RefreshAction::Refresh : RefreshAction::Skip;

      case DataPolicy::Dirty:
        // Refresh dirty lines; invalidate valid-clean ones; let the rest
        // decay.  Equivalent to WB(inf, 0).
        if (!line.valid())
            return RefreshAction::Skip;
        return line.dirty ? RefreshAction::Refresh
                          : RefreshAction::Invalidate;

      case DataPolicy::WB:
        // Fig. 4.1.
        if (!line.valid())
            return RefreshAction::Skip;
        if (line.count >= 1) {
            --line.count;
            return RefreshAction::Refresh;
        }
        if (line.dirty) {
            // Write back; the write-back itself refreshes the line and
            // it continues life as Valid-Clean with Count = m.
            line.count = policy.m;
            return RefreshAction::Writeback;
        }
        return RefreshAction::Invalidate;
    }
    panic("unreachable data policy");
}

/**
 * Reset the WB(n,m) Count on a normal (non-refresh) access, per §3.2:
 * "On any normal, non-refresh access to the line, Count is reset to its
 * reference value" — n if the line is dirty, m if clean.
 */
inline void
noteAccess(const RefreshPolicy &policy, CacheLine &line)
{
    if (policy.data == DataPolicy::WB)
        line.count = line.dirty ? policy.n : policy.m;
}

/** Parse "R.WB(32,32)" / "P.valid" style names (round-trips name()). */
RefreshPolicy parsePolicy(const std::string &s);

} // namespace refrint

#endif // REFRINT_EDRAM_REFRESH_POLICY_HH
