#include "system/cmp_system.hh"

#include "common/log.hh"

namespace refrint
{

CmpSystem::CmpSystem(const MachineConfig &cfg, const Workload &app,
                     const SimParams &params, Arena *arena)
    : eq_(arena), params_(params)
{
    hier_ = std::make_unique<Hierarchy>(cfg, eq_, arena);
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        cores_.push_back(std::make_unique<Core>(
            c, *hier_, eq_, app.makeStream(c, cfg.numCores, params.seed),
            params.refsPerCore, app.codeLines(), params.seed,
            [this](CoreId) { ++doneCount_; }, coreStats_));
    }
}

CmpSystem::~CmpSystem() = default;

Tick
CmpSystem::run()
{
    hier_->start(0);
    for (auto &core : cores_)
        core->start(0);

    const std::uint32_t want =
        static_cast<std::uint32_t>(cores_.size());
    while (doneCount_ < want && eq_.step()) {
        if (eq_.now() > params_.maxTicks) {
            fatal("simulation exceeded the %llu-tick safety limit",
                  static_cast<unsigned long long>(params_.maxTicks));
        }
    }
    panicIf(doneCount_ < want, "event queue drained before completion");

    execTicks_ = 0;
    for (auto &core : cores_)
        execTicks_ = std::max(execTicks_, core->doneTick());
    hier_->finishEngines(execTicks_);
    hier_->flushDirty();
    return execTicks_;
}

std::uint64_t
CmpSystem::totalInstructions() const
{
    std::uint64_t sum = 0;
    for (const auto &core : cores_)
        sum += core->instructions();
    return sum;
}

} // namespace refrint
