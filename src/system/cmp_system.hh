/**
 * @file
 * CmpSystem assembles one machine from its MachineConfig descriptors:
 * event queue, coherent hierarchy with refresh engines, and one
 * trace-driven core per configured core replaying one workload.  One
 * CmpSystem instance is one experiment run.
 */

#ifndef REFRINT_SYSTEM_CMP_SYSTEM_HH
#define REFRINT_SYSTEM_CMP_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "coherence/hierarchy.hh"
#include "common/stats.hh"
#include "core/core.hh"
#include "sim/event_queue.hh"
#include "workload/workload.hh"

namespace refrint
{

/** Knobs of one simulation run (not of the simulated machine). */
struct SimParams
{
    std::uint64_t refsPerCore = 200'000;
    std::uint64_t seed = 1;

    /** Safety net: abort the run after this much simulated time. */
    Tick maxTicks = usToTicks(100'000.0);
};

class CmpSystem
{
  public:
    /** @p arena, when non-null, backs the event queue's bands, the
     *  cache arrays and the refresh-engine heaps so a sweep worker can
     *  recycle one allocation across scenarios (see common/arena.hh).
     *  The system must be destroyed before the arena is reset. */
    CmpSystem(const MachineConfig &cfg, const Workload &app,
              const SimParams &params, Arena *arena = nullptr);
    ~CmpSystem();

    CmpSystem(const CmpSystem &) = delete;
    CmpSystem &operator=(const CmpSystem &) = delete;

    /**
     * Run the workload to completion (every core issues its refs),
     * then charge the end-of-run dirty flush.
     * @return execution time in ticks (latest core completion).
     */
    Tick run();

    Tick execTicks() const { return execTicks_; }
    std::uint64_t totalInstructions() const;

    Hierarchy &hierarchy() { return *hier_; }
    const Hierarchy &hierarchy() const { return *hier_; }
    EventQueue &eventQueue() { return eq_; }
    Core &core(CoreId c) { return *cores_[c]; }
    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }

  private:
    EventQueue eq_;
    std::unique_ptr<Hierarchy> hier_;
    StatGroup coreStats_{"core"};
    std::vector<std::unique_ptr<Core>> cores_;
    SimParams params_;
    std::uint32_t doneCount_ = 0;
    Tick execTicks_ = 0;
};

} // namespace refrint

#endif // REFRINT_SYSTEM_CMP_SYSTEM_HH
