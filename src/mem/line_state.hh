/**
 * @file
 * Cache line state for the MESI hierarchy plus the eDRAM refresh
 * metadata that Refrint attaches to every line.
 */

#ifndef REFRINT_MEM_LINE_STATE_HH
#define REFRINT_MEM_LINE_STATE_HH

#include <cstdint>

#include "common/types.hh"

namespace refrint
{

/** Classic MESI states as seen by a private cache. */
enum class Mesi : std::uint8_t
{
    Invalid = 0,
    Shared,
    Exclusive,
    Modified,
};

/** Printable name for a MESI state. */
const char *mesiName(Mesi s);

/**
 * One cache line's bookkeeping.
 *
 * The same struct serves L1, L2 and L3; the directory fields (sharers /
 * owner) are only meaningful at L3, and the refresh fields only when the
 * enclosing cache is built from eDRAM.  Keeping one POD avoids a
 * templated cache array at negligible memory cost for a simulator.
 */
struct CacheLine
{
    // 32 bytes: two lines per hardware cache line.  Hot per-line data
    // that is scanned rather than point-accessed lives in packed SoA
    // arrays instead of here: the tag/valid probe word and the LRU
    // timestamp in CacheArray, and the Sentry decay clock (paper §4.1)
    // in the Refrint engine's sentry-expiry mirror.

    Addr tag = 0;

    /** Tick at which the data cells themselves decay (§3.2). */
    Tick dataExpiry = kTickNever;

    // ---- directory state (valid only at the shared LLC) ----

    /** Bitmask of cores whose private hierarchy may hold this line.
     *  64 bits: machines scale to 64 cores (MachineConfig). */
    std::uint64_t sharers = 0;

    /** WB(n,m) Count field: refreshes remaining before WB/invalidate. */
    std::uint32_t count = 0;

    Mesi state = Mesi::Invalid;

    /** Local data is newer than the next level (L2/L3 write-back). */
    bool dirty = false;

    /** Core whose L2 holds the line Modified/Exclusive, or -1. */
    std::int8_t owner = -1;

    bool valid() const { return state != Mesi::Invalid; }

    /** Reset everything except refresh clocks (used on invalidate). */
    void
    invalidate()
    {
        state = Mesi::Invalid;
        dirty = false;
        sharers = 0;
        owner = -1;
        count = 0;
    }
};

// Two lines per hardware cache line: the 64-core sharer mask widened
// to 64 bits without growing the struct (the u32 count packs into what
// used to be padding).
static_assert(sizeof(CacheLine) == 32, "CacheLine must stay 32 bytes");

} // namespace refrint

#endif // REFRINT_MEM_LINE_STATE_HH
