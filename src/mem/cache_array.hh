/**
 * @file
 * Set-associative tag/state array with LRU replacement.
 *
 * This is the storage substrate shared by all cache levels.  It is
 * state-only (no data payloads — the simulator is state-accurate, not
 * value-accurate) and exposes flat line indices so the eDRAM refresh
 * engines can address lines the way the hardware's sentry wires do.
 *
 * Probe path: lookup() and pickVictim() scan a packed per-set probe
 * array (one 8-byte word per way encoding tag + valid) instead of
 * striding full CacheLine structs, so an associativity-wide search
 * touches one or two cache lines.  The probe array is a derived mirror
 * of the authoritative CacheLine state, kept coherent at the two
 * choke points every Invalid<->valid transition passes through:
 * install() and invalidate().
 */

#ifndef REFRINT_MEM_CACHE_ARRAY_HH
#define REFRINT_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "mem/cache_geometry.hh"
#include "mem/line_state.hh"

namespace refrint
{

/** Result of a victim search. */
struct VictimRef
{
    CacheLine *line = nullptr;
    std::uint32_t index = 0; ///< flat line index
};

class CacheArray
{
  public:
    CacheArray(const CacheGeometry &geom, const char *name);

    CacheArray(const CacheArray &) = delete;
    CacheArray &operator=(const CacheArray &) = delete;

    const CacheGeometry &geometry() const { return geom_; }
    std::uint32_t numLines() const { return numLines_; }

    /**
     * Set index of @p addr.  Same slicing as CacheGeometry::setIndex,
     * but the shifts/masks are precomputed at construction — the
     * geometry recomputes log2s and divisions per call, which is far
     * too slow for the probe path.
     */
    std::uint32_t
    setIndexOf(Addr addr) const
    {
        Addr idx = addr >> setShift_;
        if (hashSets_) {
            Addr folded = 0;
            for (Addr v = idx; v != 0; v >>= setBits_)
                folded ^= v;
            idx = folded;
        }
        return static_cast<std::uint32_t>(idx & setMask_);
    }

    /** Line-aligned tag of @p addr (== geometry().tagOf). */
    Addr tagOf(Addr addr) const { return addr & ~lineMask_; }

    /** Find the line holding @p addr, or nullptr on miss. */
    CacheLine *
    lookup(Addr addr)
    {
        const std::uint32_t set = setIndexOf(addr);
        const Addr want = tagOf(addr) | 1;
        const std::size_t base = static_cast<std::size_t>(set) * assoc_;
        const Addr *p = probe_.data() + base;
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (p[w] == want)
                return &lines_[base + w];
        }
        return nullptr;
    }

    const CacheLine *
    lookup(Addr addr) const
    {
        return const_cast<CacheArray *>(this)->lookup(addr);
    }

    /** Flat index of @p line (must belong to this array). */
    std::uint32_t
    indexOf(const CacheLine *line) const
    {
        return static_cast<std::uint32_t>(line - lines_.data());
    }

    /** Line at flat index @p idx. */
    CacheLine &lineAt(std::uint32_t idx) { return lines_[idx]; }
    const CacheLine &lineAt(std::uint32_t idx) const { return lines_[idx]; }

    /** Raw packed probe words ((tag | 1) when valid, 0 otherwise), one
     *  per flat line index.  Lets the refresh engines test validity
     *  from a dense array instead of striding line structs. */
    const Addr *probeData() const { return probe_.data(); }

    /**
     * Choose a victim way in @p addr's set: an invalid way if one
     * exists, otherwise the LRU way.  Does not modify the line.
     */
    VictimRef pickVictim(Addr addr);

    /**
     * Install @p addr into @p v (caller already evicted the victim)
     * with initial MESI state @p st.  Resets all other metadata to
     * clean defaults.
     */
    void
    install(VictimRef v, Addr addr, Tick now, Mesi st)
    {
        CacheLine &l = *v.line;
        l.tag = tagOf(addr);
        l.state = st;
        l.dirty = false;
        l.sharers = 0;
        l.owner = -1;
        l.count = 0;
        lastTouch_[v.index] = now;
        probe_[v.index] = st != Mesi::Invalid ? (l.tag | 1) : 0;
    }

    /** Invalidate @p line (MESI + directory residue + probe mirror).
     *  The single choke point for every valid -> Invalid transition. */
    void
    invalidate(CacheLine &line)
    {
        line.invalidate();
        probe_[indexOf(&line)] = 0;
    }

    /** Update LRU on an access. */
    void
    touch(const CacheLine &line, Tick now)
    {
        lastTouch_[indexOf(&line)] = now;
    }

    /** LRU timestamp of line @p idx (ties broken by way order). */
    Tick lastTouchOf(std::uint32_t idx) const { return lastTouch_[idx]; }

    /** Count lines in a given validity predicate (tests/diagnostics). */
    std::uint32_t countValid() const;
    std::uint32_t countDirty() const;

    /** Verify the packed probe mirror against the authoritative line
     *  structs; panics on divergence.  Invariant-checker hook. */
    void checkProbeCoherence() const;

    /** Iterate every line (refresh engines, invariant checkers). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn)
    {
        for (std::uint32_t i = 0; i < numLines_; ++i)
            fn(i, lines_[i]);
    }

  private:
    CacheGeometry geom_;
    std::uint32_t numLines_;

    // Precomputed address slicing (see setIndexOf).
    unsigned setShift_ = 0;
    unsigned setBits_ = 0;
    Addr setMask_ = 0;
    Addr lineMask_ = 0;
    std::uint32_t assoc_ = 1;
    bool hashSets_ = false;

    std::vector<CacheLine> lines_;

    /** Packed probe word per line: (tag | 1) when valid, 0 otherwise.
     *  Tags are line-aligned so bit 0 is free to carry validity. */
    std::vector<Addr> probe_;

    /** Packed LRU timestamps, one per flat line index. */
    std::vector<Tick> lastTouch_;
};

} // namespace refrint

#endif // REFRINT_MEM_CACHE_ARRAY_HH
