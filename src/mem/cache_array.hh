/**
 * @file
 * Set-associative tag/state array with LRU replacement.
 *
 * This is the storage substrate shared by all cache levels.  It is
 * state-only (no data payloads — the simulator is state-accurate, not
 * value-accurate) and exposes flat line indices so the eDRAM refresh
 * engines can address lines the way the hardware's sentry wires do.
 */

#ifndef REFRINT_MEM_CACHE_ARRAY_HH
#define REFRINT_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "mem/cache_geometry.hh"
#include "mem/line_state.hh"

namespace refrint
{

/** Result of a victim search. */
struct VictimRef
{
    CacheLine *line = nullptr;
    std::uint32_t index = 0; ///< flat line index
};

class CacheArray
{
  public:
    CacheArray(const CacheGeometry &geom, const char *name);

    CacheArray(const CacheArray &) = delete;
    CacheArray &operator=(const CacheArray &) = delete;

    const CacheGeometry &geometry() const { return geom_; }
    std::uint32_t numLines() const { return numLines_; }

    /** Find the line holding @p addr, or nullptr on miss. */
    CacheLine *lookup(Addr addr);
    const CacheLine *lookup(Addr addr) const;

    /** Flat index of @p line (must belong to this array). */
    std::uint32_t
    indexOf(const CacheLine *line) const
    {
        return static_cast<std::uint32_t>(line - lines_.data());
    }

    /** Line at flat index @p idx. */
    CacheLine &lineAt(std::uint32_t idx) { return lines_[idx]; }
    const CacheLine &lineAt(std::uint32_t idx) const { return lines_[idx]; }

    /**
     * Choose a victim way in @p addr's set: an invalid way if one
     * exists, otherwise the LRU way.  Does not modify the line.
     */
    VictimRef pickVictim(Addr addr);

    /**
     * Install @p addr into @p v (caller already evicted the victim).
     * Resets state to Invalid-like defaults; caller sets MESI state.
     */
    void
    install(VictimRef v, Addr addr, Tick now)
    {
        CacheLine &l = *v.line;
        l.tag = geom_.tagOf(addr);
        l.state = Mesi::Invalid;
        l.dirty = false;
        l.sharers = 0;
        l.owner = -1;
        l.count = 0;
        l.lastTouch = now;
    }

    /** Update LRU on an access. */
    void touch(CacheLine &line, Tick now) { line.lastTouch = now; }

    /** Count lines in a given validity predicate (tests/diagnostics). */
    std::uint32_t countValid() const;
    std::uint32_t countDirty() const;

    /** Iterate every line (refresh engines, invariant checkers). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn)
    {
        for (std::uint32_t i = 0; i < numLines_; ++i)
            fn(i, lines_[i]);
    }

  private:
    CacheGeometry geom_;
    std::uint32_t numLines_;
    std::vector<CacheLine> lines_;
};

} // namespace refrint

#endif // REFRINT_MEM_CACHE_ARRAY_HH
