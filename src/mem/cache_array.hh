/**
 * @file
 * Set-associative tag/state array with LRU replacement.
 *
 * This is the storage substrate shared by all cache levels.  It is
 * state-only (no data payloads — the simulator is state-accurate, not
 * value-accurate) and exposes flat line indices so the eDRAM refresh
 * engines can address lines the way the hardware's sentry wires do.
 *
 * Probe path: lookup() and pickVictim() scan a packed per-set probe
 * array (one 8-byte word per way encoding tag + valid) instead of
 * striding full CacheLine structs, so an associativity-wide search
 * touches one or two cache lines.  The probe array is a derived mirror
 * of the authoritative CacheLine state, kept coherent at the two
 * choke points every Invalid<->valid transition passes through:
 * install() and invalidate().
 *
 * The set scan itself is vectorized (probeFindWay below): one 256-bit
 * AVX2 or 128-bit SSE2 compare covers 4 or 2 ways per step, selected
 * at compile time with a scalar fallback.  The probe array carries a
 * few zero pad words past the last line so a vector may over-read the
 * final set; tail lanes are masked out of every match so the padding
 * (and a neighbouring set, were the layout ever to change) can never
 * produce a hit.  A probe word is the full line-aligned address | 1,
 * so equal words imply equal set index — a cross-set false match is
 * structurally impossible even without the mask.
 */

#ifndef REFRINT_MEM_CACHE_ARRAY_HH
#define REFRINT_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "common/arena.hh"
#include "mem/cache_geometry.hh"
#include "mem/line_state.hh"

#if defined(__AVX2__)
#include <immintrin.h>
#define REFRINT_PROBE_AVX2 1
#elif defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#if defined(__SSE4_1__)
#include <smmintrin.h>
#endif
#define REFRINT_PROBE_SSE2 1
#endif

namespace refrint
{

/** Zero words appended to the probe array so the widest vector step
 *  may read past the last way of the last set. */
constexpr std::uint32_t kProbePad = 4;

/** Reference scan: index of the first word equal to @p want among
 *  p[0..n), or -1.  The vector path below must agree with this exactly
 *  (checkProbeCoherence verifies it on live data). */
inline int
probeFindWayScalar(const Addr *p, std::uint32_t n, Addr want)
{
    for (std::uint32_t w = 0; w < n; ++w) {
        if (p[w] == want)
            return static_cast<int>(w);
    }
    return -1;
}

/**
 * Index of the first word equal to @p want among p[0..n), or -1.
 * @p p must have kProbePad readable words past p[n-1] (the probe
 * array's padding); lanes >= n are masked out of the match, so the
 * over-read can never affect the result — including want == 0 scans,
 * which the zero padding would otherwise satisfy.
 */
inline int
probeFindWay(const Addr *p, std::uint32_t n, Addr want)
{
#if defined(REFRINT_PROBE_AVX2)
    const __m256i w = _mm256_set1_epi64x(static_cast<long long>(want));
    for (std::uint32_t base = 0; base < n; base += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p + base));
        unsigned m = static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, w))));
        if (n - base < 4)
            m &= (1u << (n - base)) - 1u; // tail: mask pad lanes
        if (m != 0)
            return static_cast<int>(base) +
                   __builtin_ctz(m); // lowest lane = first way
    }
    return -1;
#elif defined(REFRINT_PROBE_SSE2)
    const __m128i w = _mm_set1_epi64x(static_cast<long long>(want));
    for (std::uint32_t base = 0; base < n; base += 2) {
#if defined(__SSE4_1__)
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(p + base));
        unsigned m = static_cast<unsigned>(
            _mm_movemask_pd(_mm_castsi128_pd(_mm_cmpeq_epi64(v, w))));
#else
        // Plain SSE2 has no 64-bit compare: compare 32-bit halves and
        // require both halves of a lane to match.
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(p + base));
        const unsigned m8 = static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi32(v, w)));
        const unsigned m = ((m8 & 0xffu) == 0xffu ? 1u : 0u) |
                           ((m8 >> 8) == 0xffu ? 2u : 0u);
#endif
        unsigned mm = m;
        if (n - base < 2)
            mm &= 1u; // tail: mask the pad lane
        if (mm != 0)
            return static_cast<int>(base) + static_cast<int>(mm & 1u ? 0 : 1);
    }
    return -1;
#else
    return probeFindWayScalar(p, n, want);
#endif
}

/** Result of a victim search. */
struct VictimRef
{
    CacheLine *line = nullptr;
    std::uint32_t index = 0; ///< flat line index
};

class CacheArray
{
  public:
    /** @p arena, when non-null, backs the line/probe/LRU arrays so a
     *  sweep worker can recycle them across scenarios (see arena.hh);
     *  null keeps plain heap allocation. */
    CacheArray(const CacheGeometry &geom, const char *name,
               Arena *arena = nullptr);

    CacheArray(const CacheArray &) = delete;
    CacheArray &operator=(const CacheArray &) = delete;

    const CacheGeometry &geometry() const { return geom_; }
    std::uint32_t numLines() const { return numLines_; }

    /**
     * Set index of @p addr.  Same slicing as CacheGeometry::setIndex,
     * but the shifts/masks are precomputed at construction — the
     * geometry recomputes log2s and divisions per call, which is far
     * too slow for the probe path.
     */
    std::uint32_t
    setIndexOf(Addr addr) const
    {
        Addr idx = addr >> setShift_;
        if (hashSets_) {
            Addr folded = 0;
            for (Addr v = idx; v != 0; v >>= setBits_)
                folded ^= v;
            idx = folded;
        }
        return static_cast<std::uint32_t>(idx & setMask_);
    }

    /** Line-aligned tag of @p addr (== geometry().tagOf). */
    Addr tagOf(Addr addr) const { return addr & ~lineMask_; }

    /** Find the line holding @p addr, or nullptr on miss.  One or two
     *  vector compares cover the whole set (probeFindWay above). */
    CacheLine *
    lookup(Addr addr)
    {
        const std::uint32_t set = setIndexOf(addr);
        const Addr want = tagOf(addr) | 1;
        const std::size_t base = static_cast<std::size_t>(set) * assoc_;
        const int w = probeFindWay(probe_.data() + base, assoc_, want);
        return w >= 0 ? &lines_[base + static_cast<std::uint32_t>(w)]
                      : nullptr;
    }

    const CacheLine *
    lookup(Addr addr) const
    {
        return const_cast<CacheArray *>(this)->lookup(addr);
    }

    /** Flat index of @p line (must belong to this array). */
    std::uint32_t
    indexOf(const CacheLine *line) const
    {
        return static_cast<std::uint32_t>(line - lines_.data());
    }

    /** Line at flat index @p idx. */
    CacheLine &lineAt(std::uint32_t idx) { return lines_[idx]; }
    const CacheLine &lineAt(std::uint32_t idx) const { return lines_[idx]; }

    /** Raw packed probe words ((tag | 1) when valid, 0 otherwise), one
     *  per flat line index.  Lets the refresh engines test validity
     *  from a dense array instead of striding line structs. */
    const Addr *probeData() const { return probe_.data(); }

    /**
     * Choose a victim way in @p addr's set: an invalid way if one
     * exists, otherwise the LRU way.  Does not modify the line.
     */
    VictimRef pickVictim(Addr addr);

    /**
     * Install @p addr into @p v (caller already evicted the victim)
     * with initial MESI state @p st.  Resets all other metadata to
     * clean defaults.
     */
    void
    install(VictimRef v, Addr addr, Tick now, Mesi st)
    {
        CacheLine &l = *v.line;
        l.tag = tagOf(addr);
        l.state = st;
        l.dirty = false;
        l.sharers = 0;
        l.owner = -1;
        l.count = 0;
        lastTouch_[v.index] = now;
        probe_[v.index] = st != Mesi::Invalid ? (l.tag | 1) : 0;
    }

    /** Invalidate @p line (MESI + directory residue + probe mirror).
     *  The single choke point for every valid -> Invalid transition. */
    void
    invalidate(CacheLine &line)
    {
        line.invalidate();
        probe_[indexOf(&line)] = 0;
    }

    /** Update LRU on an access. */
    void
    touch(const CacheLine &line, Tick now)
    {
        lastTouch_[indexOf(&line)] = now;
    }

    /** LRU timestamp of line @p idx (ties broken by way order). */
    Tick lastTouchOf(std::uint32_t idx) const { return lastTouch_[idx]; }

    /** Count lines in a given validity predicate (tests/diagnostics). */
    std::uint32_t countValid() const;
    std::uint32_t countDirty() const;

    /** Verify the packed probe mirror against the authoritative line
     *  structs; panics on divergence.  Invariant-checker hook. */
    void checkProbeCoherence() const;

    /** Iterate every line (refresh engines, invariant checkers). */
    template <typename Fn>
    void
    forEachLine(Fn &&fn)
    {
        for (std::uint32_t i = 0; i < numLines_; ++i)
            fn(i, lines_[i]);
    }

  private:
    CacheGeometry geom_;
    std::uint32_t numLines_;

    // Precomputed address slicing (see setIndexOf).
    unsigned setShift_ = 0;
    unsigned setBits_ = 0;
    Addr setMask_ = 0;
    Addr lineMask_ = 0;
    std::uint32_t assoc_ = 1;
    bool hashSets_ = false;

    ArenaVector<CacheLine> lines_;

    /** Packed probe word per line: (tag | 1) when valid, 0 otherwise.
     *  Tags are line-aligned so bit 0 is free to carry validity.
     *  Sized numLines_ + kProbePad: the pad words stay 0 forever and
     *  exist only so a vector probe may over-read the last set. */
    ArenaVector<Addr> probe_;

    /** Packed LRU timestamps, one per flat line index. */
    ArenaVector<Tick> lastTouch_;
};

} // namespace refrint

#endif // REFRINT_MEM_CACHE_ARRAY_HH
