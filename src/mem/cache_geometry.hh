/**
 * @file
 * Cache geometry: size/associativity/line-size and the address slicing
 * derived from them.  Mirrors the per-level parameters of Table 5.1.
 */

#ifndef REFRINT_MEM_CACHE_GEOMETRY_HH
#define REFRINT_MEM_CACHE_GEOMETRY_HH

#include <cstdint>
#include <string>

#include "common/log.hh"
#include "common/types.hh"

namespace refrint
{

/** Static shape of one cache (or one bank of a banked cache). */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;
    std::uint32_t assoc = 1;
    std::uint32_t lineSize = 64;

    /** Access latency in cycles (Table 5.1: L1 1, L2 2, L3 4). */
    Tick latency = 1;

    /**
     * Address bits to skip between the line offset and the set index.
     * Banked caches (the L3) consume log2(numBanks) bits to pick the
     * home bank; the per-bank set index must come from the bits above
     * them or every bank would only ever see 1/numBanks of its sets.
     */
    unsigned indexShift = 0;

    /**
     * XOR-fold every setBits-wide address window above the set window
     * into the set index (a standard LLC index hash).  Without it,
     * regions that different cores allocate at large power-of-two
     * strides alias into identical sets and a 16-core machine thrashes
     * 8-way sets systematically — an artifact no physically-indexed
     * machine with page-granular allocation exhibits.  Enabled for the
     * shared L3; private L1/L2 use straight indexing as real cores do.
     */
    bool hashSets = false;

    std::uint32_t
    numLines() const
    {
        return static_cast<std::uint32_t>(sizeBytes / lineSize);
    }

    std::uint32_t numSets() const { return numLines() / assoc; }

    unsigned lineBits() const { return floorLog2(lineSize); }
    unsigned setBits() const { return floorLog2(numSets()); }

    /** Line-aligned address. */
    Addr
    lineAddr(Addr a) const
    {
        return a & ~static_cast<Addr>(lineSize - 1);
    }

    /** Set index for @p a. */
    std::uint32_t
    setIndex(Addr a) const
    {
        const unsigned shift = lineBits() + indexShift;
        const std::uint32_t mask = numSets() - 1;
        Addr idx = a >> shift;
        if (hashSets) {
            Addr folded = 0;
            const unsigned sb = setBits();
            for (Addr v = idx; v != 0; v >>= sb)
                folded ^= v;
            idx = folded;
        }
        return static_cast<std::uint32_t>(idx & mask);
    }


    /** Tag for @p a (we keep full line addresses as tags for clarity). */
    Addr tagOf(Addr a) const { return lineAddr(a); }

    /** Validate invariants; call once at construction time. */
    void
    check(const char *name) const
    {
        if (!isPowerOfTwo(lineSize) || !isPowerOfTwo(assoc) ||
            sizeBytes == 0 || sizeBytes % (static_cast<std::uint64_t>(
                                               lineSize) * assoc) != 0 ||
            !isPowerOfTwo(numSets())) {
            fatal("bad cache geometry for %s: size=%llu assoc=%u line=%u",
                  name, static_cast<unsigned long long>(sizeBytes), assoc,
                  lineSize);
        }
    }
};

} // namespace refrint

#endif // REFRINT_MEM_CACHE_GEOMETRY_HH
