/**
 * @file
 * CacheUnit: one physical cache (an L1, a private L2, or one L3 bank)
 * — the tag/state array plus port availability, access counters and the
 * optional eDRAM refresh engine attached to it.
 */

#ifndef REFRINT_MEM_CACHE_UNIT_HH
#define REFRINT_MEM_CACHE_UNIT_HH

#include <algorithm>
#include <memory>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache_array.hh"

namespace refrint
{

class RefreshEngine;

class CacheUnit
{
  public:
    /**
     * @param stats  Shared per-level stat group: all units of a level
     *               aggregate into the same counters (the paper reports
     *               per-level energy, never per-unit).
     */
    CacheUnit(const char *name, const CacheGeometry &geom,
              StatGroup &stats)
        : array(geom, name), latency(geom.latency)
    {
        reads = &stats.counter("reads");
        writes = &stats.counter("writes");
        misses = &stats.counter("misses");
        fills = &stats.counter("fills");
        evictions = &stats.counter("evictions");
        backInvals = &stats.counter("back_invalidations");
        decayed = &stats.counter("decayed_hits");
    }

    CacheUnit(const CacheUnit &) = delete;
    CacheUnit &operator=(const CacheUnit &) = delete;

    /** Earliest tick at which a request arriving at @p t is served —
     *  refresh activity has priority over plain R/W requests (§4.2). */
    Tick admit(Tick t) const { return std::max(t, busyUntil); }

    /** Block the unit's port for @p cycles starting no earlier than
     *  @p now (refresh bursts, sentry interrupt service). */
    void
    addBusy(Tick now, Tick cycles)
    {
        busyUntil = std::max(busyUntil, now) + cycles;
    }

    /** Record a demand access to a resident line: LRU, WB(n,m) Count
     *  reset and the automatic line+sentry refresh. */
    void touchLine(CacheLine &line, Tick now);

    /** Record a fresh install of @p line. */
    void installLine(CacheLine &line, Tick now);

    // Per-unit activity taps.  The shared per-level StatGroup counters
    // aggregate across all units of a level (the paper reports
    // per-level energy), but the thermal model needs *this* unit's
    // activity — so reads/writes are counted through these wrappers,
    // which also bump a local tally the thermal driver samples per
    // epoch.  Plain uint64 adds: zero cost when thermal is off.

    /** Count @p n array reads on this unit. */
    void
    noteRead(std::uint64_t n = 1)
    {
        reads->inc(n);
        accessTally += n;
    }

    /** Count one array write on this unit. */
    void
    noteWrite()
    {
        writes->inc();
        accessTally += 1;
    }

    /** Count one refresh-engine line refresh on this unit. */
    void noteRefresh() { refreshTally += 1; }

    CacheArray array;
    Tick latency;
    Tick busyUntil = 0;

    /** Refresh engine for eDRAM configurations; null for SRAM. */
    RefreshEngine *engine = nullptr;

    /** Per-unit activity tallies (thermal model power integration). */
    std::uint64_t accessTally = 0;
    std::uint64_t refreshTally = 0;

    Counter *reads;
    Counter *writes;
    Counter *misses;
    Counter *fills;
    Counter *evictions;
    Counter *backInvals;
    /** Accesses that found a line past its data retention — must stay 0;
     *  a nonzero value indicates a refresh-engine bug. */
    Counter *decayed;
};

} // namespace refrint

#endif // REFRINT_MEM_CACHE_UNIT_HH
