/**
 * @file
 * CacheUnit: one physical cache (an L1, a private L2, or one L3 bank)
 * — the tag/state array plus port availability, access counters and the
 * optional eDRAM refresh engine attached to it.
 */

#ifndef REFRINT_MEM_CACHE_UNIT_HH
#define REFRINT_MEM_CACHE_UNIT_HH

#include <algorithm>
#include <memory>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache_array.hh"

namespace refrint
{

class RefreshEngine;

class CacheUnit
{
  public:
    /**
     * @param stats  Shared per-level stat group: all units of a level
     *               aggregate into the same counters (the paper reports
     *               per-level energy, never per-unit).
     */
    CacheUnit(const char *name, const CacheGeometry &geom,
              StatGroup &stats)
        : array(geom, name), latency(geom.latency)
    {
        reads = &stats.counter("reads");
        writes = &stats.counter("writes");
        misses = &stats.counter("misses");
        fills = &stats.counter("fills");
        evictions = &stats.counter("evictions");
        backInvals = &stats.counter("back_invalidations");
        decayed = &stats.counter("decayed_hits");
    }

    CacheUnit(const CacheUnit &) = delete;
    CacheUnit &operator=(const CacheUnit &) = delete;

    /** Earliest tick at which a request arriving at @p t is served —
     *  refresh activity has priority over plain R/W requests (§4.2). */
    Tick admit(Tick t) const { return std::max(t, busyUntil); }

    /** Block the unit's port for @p cycles starting no earlier than
     *  @p now (refresh bursts, sentry interrupt service). */
    void
    addBusy(Tick now, Tick cycles)
    {
        busyUntil = std::max(busyUntil, now) + cycles;
    }

    /** Record a demand access to a resident line: LRU, WB(n,m) Count
     *  reset and the automatic line+sentry refresh. */
    void touchLine(CacheLine &line, Tick now);

    /** Record a fresh install of @p line. */
    void installLine(CacheLine &line, Tick now);

    CacheArray array;
    Tick latency;
    Tick busyUntil = 0;

    /** Refresh engine for eDRAM configurations; null for SRAM. */
    RefreshEngine *engine = nullptr;

    Counter *reads;
    Counter *writes;
    Counter *misses;
    Counter *fills;
    Counter *evictions;
    Counter *backInvals;
    /** Accesses that found a line past its data retention — must stay 0;
     *  a nonzero value indicates a refresh-engine bug. */
    Counter *decayed;
};

} // namespace refrint

#endif // REFRINT_MEM_CACHE_UNIT_HH
