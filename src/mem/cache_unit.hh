/**
 * @file
 * CacheUnit: one physical cache (an L1, a private L2, or one L3 bank)
 * — the tag/state array plus port availability, access counters and the
 * optional eDRAM refresh engine attached to it.
 */

#ifndef REFRINT_MEM_CACHE_UNIT_HH
#define REFRINT_MEM_CACHE_UNIT_HH

#include <algorithm>
#include <memory>

#include "common/stats.hh"
#include "common/types.hh"
#include "edram/refresh_engine.hh"
#include "mem/cache_array.hh"

namespace refrint
{

/** Hierarchy-walk lookahead tolerated by the decay check (touchLine). */
constexpr Tick kWalkLookaheadSlack = 256;

class CacheUnit
{
  public:
    /**
     * @param stats  Shared per-level stat group: all units of a level
     *               aggregate into the same counters (the paper reports
     *               per-level energy, never per-unit).
     * @param arena  Optional recycled backing store for the tag/probe
     *               arrays (sweep workers; see common/arena.hh).
     */
    CacheUnit(const char *name, const CacheGeometry &geom,
              StatGroup &stats, Arena *arena = nullptr)
        : array(geom, name, arena), latency(geom.latency)
    {
        reads = &stats.counter("reads");
        writes = &stats.counter("writes");
        misses = &stats.counter("misses");
        fills = &stats.counter("fills");
        evictions = &stats.counter("evictions");
        backInvals = &stats.counter("back_invalidations");
        decayed = &stats.counter("decayed_hits");
    }

    CacheUnit(const CacheUnit &) = delete;
    CacheUnit &operator=(const CacheUnit &) = delete;

    /** Earliest tick at which a request arriving at @p t is served —
     *  refresh activity has priority over plain R/W requests (§4.2). */
    Tick admit(Tick t) const { return std::max(t, busyUntil); }

    /** Block the unit's port for @p cycles starting no earlier than
     *  @p now (refresh bursts, sentry interrupt service). */
    void
    addBusy(Tick now, Tick cycles)
    {
        busyUntil = std::max(busyUntil, now) + cycles;
    }

    /** Record a demand access to a resident line: LRU, WB(n,m) Count
     *  reset and the automatic line+sentry refresh.
     *
     * The decay check tolerates the hierarchy walk's synchronous
     * lookahead: an access starting at event time T0 may touch a lower
     * level at T0 + ~100 cycles, before refresh events scheduled in
     * (T0, T0+100) have fired.  Genuine refresh-engine bugs miss
     * deadlines by a whole retention period, far beyond this slack.
     */
    void
    touchLine(CacheLine &line, Tick now)
    {
        // kTickNever marks non-decaying cells (SRAM under the decay
        // comparator); the addition would wrap on it.
        if (engine != nullptr && line.dataExpiry != kTickNever &&
            line.dataExpiry + kWalkLookaheadSlack < now)
            decayed->inc();
        array.touch(line, now);
        if (engine != nullptr)
            notifyAccess(array.indexOf(&line), now);
    }

    /** Record a fresh install of @p line. */
    void
    installLine(CacheLine &line, Tick now)
    {
        array.touch(line, now);
        if (engine != nullptr)
            notifyInstall(array.indexOf(&line), now);
    }

    // Per-unit activity taps.  The shared per-level StatGroup counters
    // aggregate across all units of a level (the paper reports
    // per-level energy), but the thermal model needs *this* unit's
    // activity — so reads/writes are counted through these wrappers,
    // which also bump a local tally the thermal driver samples per
    // epoch.  Plain uint64 adds: zero cost when thermal is off.

    /** Count @p n array reads on this unit. */
    void
    noteRead(std::uint64_t n = 1)
    {
        reads->inc(n);
        accessTally += n;
    }

    /** Count one array write on this unit. */
    void
    noteWrite()
    {
        writes->inc();
        accessTally += 1;
    }

    /** Count @p n refresh-engine line refreshes on this unit. */
    void noteRefresh(std::uint64_t n = 1) { refreshTally += n; }

    /** Engine callback on a demand access, devirtualized for the two
     *  concrete engine kinds (qualified calls compile to direct,
     *  inlinable calls — this runs once or twice per reference). */
    void
    notifyAccess(std::uint32_t idx, Tick now)
    {
        switch (engine->kind()) {
          case EngineKind::Refrint:
            static_cast<RefrintEngine *>(engine)->RefrintEngine::onAccess(
                idx, now);
            break;
          case EngineKind::Periodic:
            static_cast<PeriodicEngine *>(engine)
                ->PeriodicEngine::onAccess(idx, now);
            break;
          case EngineKind::Other:
            engine->onAccess(idx, now);
            break;
        }
    }

    /** Engine callback on a line install (see notifyAccess). */
    void
    notifyInstall(std::uint32_t idx, Tick now)
    {
        switch (engine->kind()) {
          case EngineKind::Refrint:
            static_cast<RefrintEngine *>(engine)
                ->RefrintEngine::onInstall(idx, now);
            break;
          case EngineKind::Periodic:
            static_cast<PeriodicEngine *>(engine)
                ->PeriodicEngine::onInstall(idx, now);
            break;
          case EngineKind::Other:
            engine->onInstall(idx, now);
            break;
        }
    }

    CacheArray array;
    Tick latency;
    Tick busyUntil = 0;

    /** Refresh engine for eDRAM configurations; null for SRAM. */
    RefreshEngine *engine = nullptr;

    /** Per-unit activity tallies (thermal model power integration). */
    std::uint64_t accessTally = 0;
    std::uint64_t refreshTally = 0;

    Counter *reads;
    Counter *writes;
    Counter *misses;
    Counter *fills;
    Counter *evictions;
    Counter *backInvals;
    /** Accesses that found a line past its data retention — must stay 0;
     *  a nonzero value indicates a refresh-engine bug. */
    Counter *decayed;
};

} // namespace refrint

#endif // REFRINT_MEM_CACHE_UNIT_HH
