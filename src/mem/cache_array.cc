#include "mem/cache_array.hh"

namespace refrint
{

const char *
mesiName(Mesi s)
{
    switch (s) {
      case Mesi::Invalid:
        return "I";
      case Mesi::Shared:
        return "S";
      case Mesi::Exclusive:
        return "E";
      case Mesi::Modified:
        return "M";
    }
    return "?";
}

CacheArray::CacheArray(const CacheGeometry &geom, const char *name)
    : geom_(geom), numLines_(geom.numLines()), lines_(geom.numLines())
{
    geom_.check(name);
}

CacheLine *
CacheArray::lookup(Addr addr)
{
    const std::uint32_t set = geom_.setIndex(addr);
    const Addr tag = geom_.tagOf(addr);
    CacheLine *base = lines_.data() +
                      static_cast<std::size_t>(set) * geom_.assoc;
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        CacheLine &l = base[w];
        if (l.state != Mesi::Invalid && l.tag == tag)
            return &l;
    }
    return nullptr;
}

const CacheLine *
CacheArray::lookup(Addr addr) const
{
    return const_cast<CacheArray *>(this)->lookup(addr);
}

VictimRef
CacheArray::pickVictim(Addr addr)
{
    const std::uint32_t set = geom_.setIndex(addr);
    const std::uint32_t base =
        set * geom_.assoc;
    // Prefer an invalid way.
    for (std::uint32_t w = 0; w < geom_.assoc; ++w) {
        CacheLine &l = lines_[base + w];
        if (l.state == Mesi::Invalid)
            return {&l, base + w};
    }
    // Otherwise evict true-LRU (earliest lastTouch; way order ties).
    std::uint32_t best = base;
    for (std::uint32_t w = 1; w < geom_.assoc; ++w) {
        if (lines_[base + w].lastTouch < lines_[best].lastTouch)
            best = base + w;
    }
    return {&lines_[best], best};
}

std::uint32_t
CacheArray::countValid() const
{
    std::uint32_t n = 0;
    for (const auto &l : lines_)
        n += l.state != Mesi::Invalid ? 1 : 0;
    return n;
}

std::uint32_t
CacheArray::countDirty() const
{
    std::uint32_t n = 0;
    for (const auto &l : lines_)
        n += (l.state != Mesi::Invalid && l.dirty) ? 1 : 0;
    return n;
}

} // namespace refrint
