#include "mem/cache_array.hh"

namespace refrint
{

const char *
mesiName(Mesi s)
{
    switch (s) {
      case Mesi::Invalid:
        return "I";
      case Mesi::Shared:
        return "S";
      case Mesi::Exclusive:
        return "E";
      case Mesi::Modified:
        return "M";
    }
    return "?";
}

CacheArray::CacheArray(const CacheGeometry &geom, const char *name,
                       Arena *arena)
    : geom_(geom),
      numLines_(geom.numLines()),
      lines_(geom.numLines(), ArenaAllocator<CacheLine>(arena)),
      probe_(geom.numLines() + kProbePad, 0, ArenaAllocator<Addr>(arena)),
      lastTouch_(geom.numLines(), 0, ArenaAllocator<Tick>(arena))
{
    geom_.check(name);
    // The probe word carries validity in bit 0 of the line-aligned tag.
    panicIf(geom_.lineSize < 2, "probe encoding needs lineSize >= 2");
    setShift_ = geom_.lineBits() + geom_.indexShift;
    setBits_ = geom_.setBits();
    setMask_ = geom_.numSets() - 1;
    lineMask_ = static_cast<Addr>(geom_.lineSize) - 1;
    assoc_ = geom_.assoc;
    hashSets_ = geom_.hashSets;
}

VictimRef
CacheArray::pickVictim(Addr addr)
{
    const std::uint32_t set = setIndexOf(addr);
    const std::uint32_t base = set * assoc_;
    // Prefer an invalid way (vector probe scan for a zero word; the
    // tail mask keeps the zero padding from matching).
    const int inv = probeFindWay(probe_.data() + base, assoc_, 0);
    if (inv >= 0) {
        const std::uint32_t w = base + static_cast<std::uint32_t>(inv);
        return {&lines_[w], w};
    }
    // Otherwise evict true-LRU (earliest lastTouch; way order ties).
    // Packed scan: one cache line of Ticks covers an 8-way set.
    const Tick *lt = lastTouch_.data() + base;
    std::uint32_t best = 0;
    for (std::uint32_t w = 1; w < assoc_; ++w) {
        if (lt[w] < lt[best])
            best = w;
    }
    return {&lines_[base + best], base + best};
}

std::uint32_t
CacheArray::countValid() const
{
    std::uint32_t n = 0;
    for (const auto &l : lines_)
        n += l.state != Mesi::Invalid ? 1 : 0;
    return n;
}

std::uint32_t
CacheArray::countDirty() const
{
    std::uint32_t n = 0;
    for (const auto &l : lines_)
        n += (l.state != Mesi::Invalid && l.dirty) ? 1 : 0;
    return n;
}

void
CacheArray::checkProbeCoherence() const
{
    for (std::uint32_t i = 0; i < numLines_; ++i) {
        const Addr want = lines_[i].valid() ? (lines_[i].tag | 1) : 0;
        if (probe_[i] != want) {
            panic("probe mirror diverged at line %u (probe=%llx "
                  "want=%llx)",
                  i, static_cast<unsigned long long>(probe_[i]),
                  static_cast<unsigned long long>(want));
        }
    }
    for (std::uint32_t i = numLines_; i < numLines_ + kProbePad; ++i) {
        if (probe_[i] != 0)
            panic("probe padding word %u is nonzero", i);
    }
    // Differential check of the vector probe against the scalar
    // reference on live data: every resident word and the invalid-way
    // scan must agree, set by set.
    const std::uint32_t sets = numLines_ / assoc_;
    for (std::uint32_t s = 0; s < sets; ++s) {
        const Addr *p = probe_.data() +
                        static_cast<std::size_t>(s) * assoc_;
        if (probeFindWay(p, assoc_, 0) !=
            probeFindWayScalar(p, assoc_, 0))
            panic("vector/scalar probe divergence (invalid scan, "
                  "set %u)", s);
        for (std::uint32_t w = 0; w < assoc_; ++w) {
            if (p[w] == 0)
                continue;
            if (probeFindWay(p, assoc_, p[w]) !=
                probeFindWayScalar(p, assoc_, p[w]))
                panic("vector/scalar probe divergence (set %u way %u)",
                      s, w);
        }
    }
}

} // namespace refrint
