#include "mem/cache_array.hh"

namespace refrint
{

const char *
mesiName(Mesi s)
{
    switch (s) {
      case Mesi::Invalid:
        return "I";
      case Mesi::Shared:
        return "S";
      case Mesi::Exclusive:
        return "E";
      case Mesi::Modified:
        return "M";
    }
    return "?";
}

CacheArray::CacheArray(const CacheGeometry &geom, const char *name)
    : geom_(geom),
      numLines_(geom.numLines()),
      lines_(geom.numLines()),
      probe_(geom.numLines(), 0),
      lastTouch_(geom.numLines(), 0)
{
    geom_.check(name);
    // The probe word carries validity in bit 0 of the line-aligned tag.
    panicIf(geom_.lineSize < 2, "probe encoding needs lineSize >= 2");
    setShift_ = geom_.lineBits() + geom_.indexShift;
    setBits_ = geom_.setBits();
    setMask_ = geom_.numSets() - 1;
    lineMask_ = static_cast<Addr>(geom_.lineSize) - 1;
    assoc_ = geom_.assoc;
    hashSets_ = geom_.hashSets;
}

VictimRef
CacheArray::pickVictim(Addr addr)
{
    const std::uint32_t set = setIndexOf(addr);
    const std::uint32_t base = set * assoc_;
    // Prefer an invalid way (packed probe scan).
    const Addr *p = probe_.data() + base;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (p[w] == 0)
            return {&lines_[base + w], base + w};
    }
    // Otherwise evict true-LRU (earliest lastTouch; way order ties).
    // Packed scan: one cache line of Ticks covers an 8-way set.
    const Tick *lt = lastTouch_.data() + base;
    std::uint32_t best = 0;
    for (std::uint32_t w = 1; w < assoc_; ++w) {
        if (lt[w] < lt[best])
            best = w;
    }
    return {&lines_[base + best], base + best};
}

std::uint32_t
CacheArray::countValid() const
{
    std::uint32_t n = 0;
    for (const auto &l : lines_)
        n += l.state != Mesi::Invalid ? 1 : 0;
    return n;
}

std::uint32_t
CacheArray::countDirty() const
{
    std::uint32_t n = 0;
    for (const auto &l : lines_)
        n += (l.state != Mesi::Invalid && l.dirty) ? 1 : 0;
    return n;
}

void
CacheArray::checkProbeCoherence() const
{
    for (std::uint32_t i = 0; i < numLines_; ++i) {
        const Addr want = lines_[i].valid() ? (lines_[i].tag | 1) : 0;
        if (probe_[i] != want) {
            panic("probe mirror diverged at line %u (probe=%llx "
                  "want=%llx)",
                  i, static_cast<unsigned long long>(probe_[i]),
                  static_cast<unsigned long long>(want));
        }
    }
}

} // namespace refrint
