// CacheUnit is header-only (the access taps sit on the simulation hot
// path and must inline); this TU just validates the header standalone.
#include "mem/cache_unit.hh"
