#include "mem/cache_unit.hh"

#include "edram/refresh_engine.hh"

namespace refrint
{

/**
 * The hierarchy walk is synchronous: an access starting at event time
 * T0 may touch a lower level at T0 + ~100 cycles, before refresh events
 * scheduled in (T0, T0+100) have fired.  The decay check tolerates that
 * lookahead window; genuine refresh-engine bugs miss deadlines by a
 * whole retention period, orders of magnitude beyond this slack.
 */
static constexpr Tick kWalkLookaheadSlack = 256;

void
CacheUnit::touchLine(CacheLine &line, Tick now)
{
    // kTickNever marks non-decaying cells (SRAM under the decay
    // comparator); the addition would wrap on it.
    if (engine != nullptr && line.dataExpiry != kTickNever &&
        line.dataExpiry + kWalkLookaheadSlack < now)
        decayed->inc();
    line.lastTouch = now;
    if (engine != nullptr)
        engine->onAccess(array.indexOf(&line), now);
}

void
CacheUnit::installLine(CacheLine &line, Tick now)
{
    line.lastTouch = now;
    if (engine != nullptr)
        engine->onInstall(array.indexOf(&line), now);
}

} // namespace refrint
