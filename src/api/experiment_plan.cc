#include "api/experiment_plan.hh"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "api/json.hh"
#include "common/hash.hh"
#include "common/log.hh"
#include "workload/method.hh"

namespace refrint
{

namespace
{

constexpr int kPlanVersion = 1;

/** EnergyParams fields by name — the single source of truth for the
 *  plan serializer and loader, mirroring the CacheRow field table. */
constexpr struct
{
    const char *name;
    double EnergyParams::*field;
} kEnergyFields[] = {
    {"eL1Access", &EnergyParams::eL1Access},
    {"eL2Access", &EnergyParams::eL2Access},
    {"eL3Access", &EnergyParams::eL3Access},
    {"eDramAccess", &EnergyParams::eDramAccess},
    {"leakL1", &EnergyParams::leakL1},
    {"leakL2", &EnergyParams::leakL2},
    {"leakL3Bank", &EnergyParams::leakL3Bank},
    {"edramLeakRatio", &EnergyParams::edramLeakRatio},
    {"eCorePerInstr", &EnergyParams::eCorePerInstr},
    {"leakCore", &EnergyParams::leakCore},
    {"eNetPerHop", &EnergyParams::eNetPerHop},
    {"eNetPerDataMsg", &EnergyParams::eNetPerDataMsg},
};

/**
 * Parse failure inside tryFromJson: thrown by the require* helpers,
 * caught at the tryFromJson boundary and surfaced as (err, false) —
 * or as a fatal exit 1 through fromJson.  Never escapes this file.
 */
struct PlanError
{
    std::string msg;
};

template <typename... Args>
[[noreturn]] void
planError(const char *fmt, Args... args)
{
    char buf[512];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    throw PlanError{buf};
}

double
requireNumber(const JsonValue &obj, const char *key, const char *where)
{
    const JsonValue *v = obj.get(key);
    if (v == nullptr || !v->isNumber())
        planError("plan %s: missing numeric field \"%s\"", where, key);
    return v->asNumber();
}

std::string
requireString(const JsonValue &obj, const char *key, const char *where)
{
    const JsonValue *v = obj.get(key);
    if (v == nullptr || !v->isString())
        planError("plan %s: missing string field \"%s\"", where, key);
    return v->asString();
}

/** A non-negative integer-valued number, range-checked before the
 *  cast so a malformed plan can never reach undefined behavior. */
std::uint64_t
requireU64(const JsonValue &obj, const char *key, const char *where,
           double minimum = 0)
{
    const double v = requireNumber(obj, key, where);
    if (v < minimum || v > 9.0e15 ||
        v != static_cast<double>(static_cast<std::uint64_t>(v)))
        planError("plan %s: \"%s\" must be an integer in [%g, 9e15]",
                  where, key, minimum);
    return static_cast<std::uint64_t>(v);
}

bool
optionalBool(const JsonValue &obj, const char *key, bool dflt)
{
    const JsonValue *v = obj.get(key);
    if (v == nullptr)
        return dflt;
    if (!v->isBool())
        planError("plan field \"%s\" must be a boolean", key);
    return v->asBool();
}

} // namespace

int
ExperimentPlan::addBaseline(Scenario s)
{
    scenarios.push_back(std::move(s));
    baseline.push_back(-1);
    return static_cast<int>(scenarios.size()) - 1;
}

void
ExperimentPlan::add(Scenario s, int baselineIdx)
{
    scenarios.push_back(std::move(s));
    baseline.push_back(baselineIdx);
}

void
ExperimentPlan::validate() const
{
    panicIf(scenarios.size() != baseline.size(),
            "plan scenario/baseline lists out of sync");
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const int b = baseline[i];
        panicIf(b < -1, "plan baseline index must be -1 or an index");
        if (b < 0)
            continue;
        panicIf(static_cast<std::size_t>(b) >= i,
                "plan baseline must precede the scenarios it "
                "normalizes");
        panicIf(baseline[static_cast<std::size_t>(b)] != -1,
                "plan baseline index points at a non-baseline row");
    }
}

std::string
ExperimentPlan::toJson() const
{
    validate();
    JsonValue doc = JsonValue::object();
    doc.set("plan", JsonValue::string(name));
    doc.set("version", JsonValue::number(kPlanVersion));

    JsonValue en = JsonValue::object();
    for (const auto &f : kEnergyFields)
        en.set(f.name, JsonValue::number(energy.*f.field));
    en.set("altModel", JsonValue::number(energy.altModel));
    doc.set("energy", std::move(en));

    JsonValue list = JsonValue::array();
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const Scenario &s = scenarios[i];
        JsonValue o = JsonValue::object();
        o.set("app", JsonValue::string(s.app));
        o.set("config", JsonValue::string(s.config));
        o.set("retentionUs", JsonValue::number(s.retentionUs));
        o.set("ambientC", JsonValue::number(s.ambientC));
        o.set("cores", JsonValue::number(s.cores));
        o.set("hybrid", JsonValue::boolean(s.hybrid));
        o.set("refs",
              JsonValue::number(static_cast<double>(s.sim.refsPerCore)));
        o.set("seed",
              JsonValue::number(static_cast<double>(s.sim.seed)));
        o.set("maxTicks",
              JsonValue::number(static_cast<double>(s.sim.maxTicks)));
        o.set("baseline", JsonValue::number(baseline[i]));
        list.push(std::move(o));
    }
    doc.set("scenarios", std::move(list));
    return doc.dump(2) + "\n";
}

bool
ExperimentPlan::tryFromJson(const std::string &text, ExperimentPlan &out,
                            std::string &err)
{
    JsonValue doc;
    if (!JsonValue::parse(text, doc, err)) {
        err = "cannot parse plan: " + err;
        return false;
    }
    ExperimentPlan plan;
    try {
        if (!doc.isObject())
            planError("plan document must be a JSON object");

        plan.name = requireString(doc, "plan", "document");
        const double version =
            requireNumber(doc, "version", "document");
        if (version != kPlanVersion)
            planError("unsupported plan version %g (this build reads "
                      "%d)",
                      version, kPlanVersion);

        if (const JsonValue *en = doc.get("energy")) {
            if (!en->isObject())
                planError("plan \"energy\" must be an object");
            for (const auto &f : kEnergyFields)
                plan.energy.*f.field =
                    requireNumber(*en, f.name, "energy");
            // Backend selector, not a coefficient: optional so plans
            // dumped before it existed still load (as 0 = primary
            // backend only).
            if (en->get("altModel") != nullptr)
                plan.energy.altModel =
                    requireNumber(*en, "altModel", "energy");
        }

        const JsonValue *list = doc.get("scenarios");
        if (list == nullptr || !list->isArray())
            planError("plan needs a \"scenarios\" array");
        for (const JsonValue &o : list->items()) {
            if (!o.isObject())
                planError("every scenario must be a JSON object");
            Scenario s;
            s.app = requireString(o, "app", "scenario");
            s.config = requireString(o, "config", "scenario");
            s.retentionUs = requireNumber(o, "retentionUs", "scenario");
            s.ambientC = requireNumber(o, "ambientC", "scenario");
            // Outside the thermal response's resolvable band the
            // retention scale factor sits on a clamp, so two different
            // ambients silently produce identical runs.  Reject up
            // front (0 = thermal subsystem off is always valid).
            if (s.ambientC != 0) {
                const ThermalResponse resp{};
                if (s.ambientC < resp.minAmbientC() ||
                    s.ambientC > resp.maxAmbientC())
                    planError(
                        "scenario \"ambientC\" %g is outside the "
                        "thermal response's resolvable range [%g, %g] "
                        "deg C (0 disables the thermal subsystem)",
                        s.ambientC, resp.minAmbientC(),
                        resp.maxAmbientC());
            }
            const double cores = requireNumber(o, "cores", "scenario");
            // The paper machine's own range: reject here so a bad plan
            // fails with a clean fatal before any simulation starts,
            // rather than panicking inside a worker.
            if (cores < 4 || cores > 64 ||
                cores != static_cast<double>(
                             static_cast<std::uint32_t>(cores)))
                planError("scenario \"cores\" must be an integer in "
                          "[4, 64]");
            s.cores = static_cast<std::uint32_t>(cores);
            s.hybrid = optionalBool(o, "hybrid", false);
            s.sim.refsPerCore = requireU64(o, "refs", "scenario");
            s.sim.seed = requireU64(o, "seed", "scenario");
            // The tick safety net: absent keeps the SimParams default,
            // 0 would abort every run, so a given value must be
            // positive.
            if (o.get("maxTicks") != nullptr)
                s.sim.maxTicks = static_cast<Tick>(requireU64(
                    o, "maxTicks", "scenario", /*minimum=*/1));
            const double b = requireNumber(o, "baseline", "scenario");
            // -1 or the index of an earlier scenario; range-checked in
            // double before the cast (validate() then checks it points
            // at a baseline).
            if (b < -1 ||
                b >= static_cast<double>(plan.scenarios.size()) ||
                b != std::floor(b))
                planError("plan scenario: \"baseline\" must be -1 or "
                          "the index of an earlier baseline scenario "
                          "(got %g)",
                          b);
            // A baseline normalizes rows of its own family only: same
            // app, same machine scale.  Pointing fft rows at an lu
            // baseline — or 32-core rows at a 16-core baseline — would
            // silently produce meaningless normalized output.
            if (b >= 0) {
                const Scenario &bs =
                    plan.scenarios[static_cast<std::size_t>(b)];
                // validate() would only panic on this later; a parse
                // error keeps long-running consumers (serve) alive.
                if (plan.baseline[static_cast<std::size_t>(b)] != -1)
                    planError("plan scenario '%s': baseline %g is not "
                              "itself a baseline scenario",
                              s.app.c_str(), b);
                if (bs.app != s.app)
                    planError("plan scenario '%s': baseline %g is the "
                              "baseline of a different workload "
                              "('%s') — a scenario normalizes against "
                              "the SRAM baseline of its own app",
                              s.app.c_str(), b, bs.app.c_str());
                if (bs.cores != s.cores)
                    planError("plan scenario '%s' (%u cores): baseline "
                              "%g runs a different machine (%u "
                              "cores) — a scenario normalizes against "
                              "the SRAM baseline of its own machine "
                              "scale",
                              s.app.c_str(), s.cores, b, bs.cores);
            }
            // Resolve the workload eagerly so a bad plan fails before
            // any simulation starts.
            if (findWorkload(s.app) == nullptr)
                planError("plan scenario names unknown application "
                          "'%s'\n%s",
                          s.app.c_str(),
                          workloadRegistry().describe().c_str());
            plan.scenarios.push_back(std::move(s));
            plan.baseline.push_back(static_cast<int>(b));
        }
    } catch (const PlanError &e) {
        err = e.msg;
        return false;
    }
    plan.validate();
    out = std::move(plan);
    return true;
}

ExperimentPlan
ExperimentPlan::fromJson(const std::string &text)
{
    ExperimentPlan plan;
    std::string err;
    if (!tryFromJson(text, plan, err))
        fatal("%s", err.c_str());
    return plan;
}

ExperimentPlan
ExperimentPlan::loadFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read plan file: %s", path.c_str());
    std::stringstream ss;
    ss << in.rdbuf();
    return fromJson(ss.str());
}

void
ExperimentPlan::saveFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("cannot write plan file: %s", path.c_str());
    out << toJson();
}

ExperimentPlan
ExperimentPlan::fromSweepSpec(SweepSpec spec)
{
    spec.finalize();

    ExperimentPlan plan;
    plan.name = "paper-sweep";
    plan.energy = spec.energy;

    // The machine axis: an empty list means the paper's default
    // machine (exact legacy behavior, legacy cache keys).
    std::vector<MachineAxis> machines = spec.machines;
    if (machines.empty())
        machines.push_back(MachineAxis{});

    const std::size_t perApp =
        spec.retentions.size() * spec.policies.size() *
        std::max<std::size_t>(1, spec.ambients.size());
    plan.scenarios.reserve(machines.size() * spec.apps.size() *
                           (1 + perApp));
    plan.baseline.reserve(plan.scenarios.capacity());

    for (const MachineAxis &m : machines) {
        for (const Workload *app : spec.apps) {
            Scenario base;
            base.app = app->name();
            base.config = "SRAM";
            base.cores = m.cores;
            base.sim = spec.sim;
            base.workload = app;
            const int baseIdx = plan.addBaseline(std::move(base));

            auto pushEdram = [&](double ambientC) {
                for (Tick ret : spec.retentions) {
                    const double retUs =
                        static_cast<double>(ret) / 1e3;
                    for (const RefreshPolicy &pol : spec.policies) {
                        Scenario s;
                        s.app = app->name();
                        s.config = pol.name();
                        s.retentionUs = retUs;
                        s.ambientC = ambientC;
                        s.cores = m.cores;
                        s.hybrid = m.hybrid;
                        s.sim = spec.sim;
                        s.workload = app;
                        plan.add(std::move(s), baseIdx);
                    }
                }
            };
            if (spec.ambients.empty()) {
                pushEdram(0.0);
            } else {
                for (double amb : spec.ambients)
                    pushEdram(amb);
            }
        }
    }
    return plan;
}

ExperimentPlan
ExperimentPlan::paperSweep()
{
    return fromSweepSpec(SweepSpec{});
}

ExperimentPlan
ExperimentPlan::figures()
{
    ExperimentPlan plan = fromSweepSpec(SweepSpec{});
    plan.name = "figures";
    return plan;
}

ExperimentPlan
ExperimentPlan::thermalStudy(const std::string &app, double retentionUs,
                             const std::vector<double> &ambients,
                             const SimParams &sim,
                             const std::vector<MachineAxis> &machines)
{
    const Workload *w = findWorkload(app);
    if (w == nullptr)
        fatal("thermal study names unknown application '%s'\n%s",
              app.c_str(), workloadRegistry().describe().c_str());
    SweepSpec spec;
    spec.apps = {w};
    spec.retentions = {usToTicks(retentionUs)};
    spec.policies = {RefreshPolicy::periodic(DataPolicy::All),
                     RefreshPolicy::refrint(DataPolicy::WB, 32, 32)};
    spec.ambients = ambients;
    spec.sim = sim;
    spec.machines = machines;
    ExperimentPlan plan = fromSweepSpec(std::move(spec));
    plan.name = "thermal-study";
    return plan;
}

ExperimentPlan
ExperimentPlan::binning()
{
    ExperimentPlan plan;
    plan.name = "binning";
    return plan;
}

std::string
energyKeyTag(const EnergyParams &energy)
{
    const EnergyParams calibrated = EnergyParams::calibrated();
    bool isDefault = energy.altModel == calibrated.altModel;
    for (const auto &f : kEnergyFields)
        isDefault = isDefault && energy.*f.field == calibrated.*f.field;
    if (isDefault)
        return "";
    // FNV-1a over the exact serialized field values, so the tag is
    // stable across platforms and identical for identical models.
    std::uint64_t h = kFnv64Basis;
    char buf[40];
    for (const auto &f : kEnergyFields) {
        std::snprintf(buf, sizeof(buf), "%.17g", energy.*f.field);
        h = fnv64Mix(buf, std::strlen(buf), h);
    }
    // The alt-backend selector joins the hash only when set, so every
    // tag minted before it existed — and every cached |en= row keyed
    // by one — is preserved byte for byte.
    if (energy.altModel != 0) {
        std::snprintf(buf, sizeof(buf), "alt=%.17g", energy.altModel);
        h = fnv64Mix(buf, std::strlen(buf), h);
    }
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

bool
ExperimentPlan::operator==(const ExperimentPlan &o) const
{
    if (name != o.name || scenarios.size() != o.scenarios.size() ||
        baseline != o.baseline)
        return false;
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        if (scenarios[i] != o.scenarios[i])
            return false;
    for (const auto &f : kEnergyFields)
        if (energy.*f.field != o.energy.*f.field)
            return false;
    return energy.altModel == o.energy.altModel;
}

} // namespace refrint
