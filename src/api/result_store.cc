#include "api/result_store.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace refrint
{

namespace
{

/**
 * Field list in serialization order — the single source of truth for
 * both the reader and the writer, so they cannot drift apart or depend
 * on the struct's memory layout.
 */
constexpr double CacheRow::*kCacheFields[] = {
    &CacheRow::execTicks,    &CacheRow::instructions, &CacheRow::l1,
    &CacheRow::l2,           &CacheRow::l3,           &CacheRow::dram,
    &CacheRow::dynamic,      &CacheRow::leakage,      &CacheRow::refresh,
    &CacheRow::core,         &CacheRow::net,          &CacheRow::dramAccesses,
    &CacheRow::l3Misses,     &CacheRow::refreshes3,   &CacheRow::refWbs,
    &CacheRow::refInvals,    &CacheRow::decayed,      &CacheRow::ambientC,
    &CacheRow::maxTempC,     &CacheRow::requests,     &CacheRow::reqP50Us,
    &CacheRow::reqP95Us,     &CacheRow::reqP99Us,  &CacheRow::altPresent,
    &CacheRow::altL1,        &CacheRow::altL2,     &CacheRow::altL3,
    &CacheRow::altDram,      &CacheRow::altDynamic,
    &CacheRow::altLeakage,   &CacheRow::altRefresh,
    &CacheRow::altCore,      &CacheRow::altNet,
};
constexpr std::size_t kNumCacheFields =
    sizeof(kCacheFields) / sizeof(kCacheFields[0]);
static_assert(kNumCacheFields == sizeof(CacheRow) / sizeof(double),
              "every CacheRow field must be serialized");

/** Field count of the v8 alternate-backend tail (altPresent..altNet). */
constexpr std::size_t kNumAltCacheFields = 10;

/** Field count of a v7 row: everything up to reqP99Us.  Rows without a
 *  second-opinion estimate are still written at this length, so the
 *  default corpus stays byte-identical across the v8 schema bump. */
constexpr std::size_t kNumBaseCacheFields =
    kNumCacheFields - kNumAltCacheFields;

/** Field count of a pre-v7 (v5/v6) row: everything up to maxTempC. */
constexpr std::size_t kNumLegacyCacheFields = kNumBaseCacheFields - 4;

} // namespace

std::string
encodeCacheRow(const CacheRow &c)
{
    std::string out;
    out.reserve(kNumCacheFields * 8);
    char buf[32];
    const std::size_t fields =
        c.altPresent != 0 ? kNumCacheFields : kNumBaseCacheFields;
    for (std::size_t i = 0; i < fields; ++i) {
        // %.17g: max_digits10 for double, exact round-trip.
        std::snprintf(buf, sizeof(buf), "%.17g", c.*kCacheFields[i]);
        if (i)
            out += ',';
        out += buf;
    }
    return out;
}

bool
decodeCacheRow(const std::string &payload, CacheRow &c)
{
    std::stringstream ss(payload);
    std::string tok;
    std::size_t i = 0;
    while (i < kNumCacheFields && std::getline(ss, tok, ',')) {
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0')
            return false;
        c.*kCacheFields[i++] = v;
    }
    return i == kNumCacheFields || i == kNumBaseCacheFields ||
           i == kNumLegacyCacheFields;
}

CacheRow
cacheRowOf(const RunResult &r)
{
    CacheRow c{};
    c.execTicks = static_cast<double>(r.execTicks);
    c.instructions = static_cast<double>(r.instructions);
    c.l1 = r.energy.l1;
    c.l2 = r.energy.l2;
    c.l3 = r.energy.l3;
    c.dram = r.energy.dram;
    c.dynamic = r.energy.dynamic;
    c.leakage = r.energy.leakage;
    c.refresh = r.energy.refresh;
    c.core = r.energy.core;
    c.net = r.energy.net;
    c.dramAccesses = static_cast<double>(r.counts.dramAccesses);
    c.l3Misses = static_cast<double>(r.counts.l3Misses);
    c.refreshes3 = static_cast<double>(r.counts.l3Refreshes);
    c.refWbs = static_cast<double>(r.counts.refreshWritebacks);
    c.refInvals = static_cast<double>(r.counts.refreshInvalidations);
    c.decayed = static_cast<double>(r.counts.decayedHits);
    c.ambientC = r.ambientC;
    c.maxTempC = r.maxTempC;
    c.requests = r.requests;
    c.reqP50Us = r.reqP50Us;
    c.reqP95Us = r.reqP95Us;
    c.reqP99Us = r.reqP99Us;
    if (r.hasAlt) {
        c.altPresent = 1;
        c.altL1 = r.alt.l1;
        c.altL2 = r.alt.l2;
        c.altL3 = r.alt.l3;
        c.altDram = r.alt.dram;
        c.altDynamic = r.alt.dynamic;
        c.altLeakage = r.alt.leakage;
        c.altRefresh = r.alt.refresh;
        c.altCore = r.alt.core;
        c.altNet = r.alt.net;
    }
    return c;
}

RunResult
runFromCacheRow(const std::string &app, const std::string &config,
                double retentionUs, const std::string &machine,
                const CacheRow &c)
{
    RunResult r;
    r.app = app;
    r.config = config;
    r.machine = machine;
    r.retentionUs = retentionUs;
    r.execTicks = static_cast<Tick>(c.execTicks);
    r.instructions = static_cast<std::uint64_t>(c.instructions);
    r.energy.l1 = c.l1;
    r.energy.l2 = c.l2;
    r.energy.l3 = c.l3;
    r.energy.dram = c.dram;
    r.energy.dynamic = c.dynamic;
    r.energy.leakage = c.leakage;
    r.energy.refresh = c.refresh;
    r.energy.core = c.core;
    r.energy.net = c.net;
    r.counts.dramAccesses = static_cast<std::uint64_t>(c.dramAccesses);
    r.counts.l3Misses = static_cast<std::uint64_t>(c.l3Misses);
    r.counts.l3Refreshes = static_cast<std::uint64_t>(c.refreshes3);
    r.counts.refreshWritebacks = static_cast<std::uint64_t>(c.refWbs);
    r.counts.refreshInvalidations =
        static_cast<std::uint64_t>(c.refInvals);
    r.counts.decayedHits = static_cast<std::uint64_t>(c.decayed);
    r.ambientC = c.ambientC;
    r.maxTempC = c.maxTempC;
    r.requests = c.requests;
    r.reqP50Us = c.reqP50Us;
    r.reqP95Us = c.reqP95Us;
    r.reqP99Us = c.reqP99Us;
    if (c.altPresent != 0) {
        // Only the aggregates survive a round-trip; the alternate
        // backend's per-level matrix is recomputable solely from fresh
        // counts and stays zero on reload.
        r.hasAlt = true;
        r.alt.l1 = c.altL1;
        r.alt.l2 = c.altL2;
        r.alt.l3 = c.altL3;
        r.alt.dram = c.altDram;
        r.alt.dynamic = c.altDynamic;
        r.alt.leakage = c.altLeakage;
        r.alt.refresh = c.altRefresh;
        r.alt.core = c.altCore;
        r.alt.net = c.altNet;
    }
    return r;
}

} // namespace refrint
