#include "api/result_sink.hh"

#include <cerrno>
#include <cstring>

#include "api/experiment_plan.hh"
#include "api/json.hh"
#include "common/log.hh"

namespace refrint
{

namespace
{

/** RFC-4180 field quoting: policy names like "R.WB(32,32)" carry
 *  commas and must not shift the column structure. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
CsvSink::begin(const ExperimentPlan &plan)
{
    (void)plan;
    std::fprintf(out_,
                 "app,config,machine,retentionUs,ambientC,maxTempC,"
                 "execTicks,instructions,"
                 "eL1,eL2,eL3,eDram,eDynamic,eLeakage,eRefresh,eCore,"
                 "eNet,dramAccesses,l3Misses,l3Refreshes,"
                 "refreshWritebacks,refreshInvalidations,decayedHits,"
                 "requests,reqP50Us,reqP95Us,reqP99Us,"
                 "simulated,normTime,normMemEnergy,normSysEnergy,"
                 "altMemEnergy,altSysEnergy,altDisagreement\n");
}

void
CsvSink::consume(const ExperimentPlan &plan, std::size_t index,
                 const RunResult &r, const NormalizedResult *norm,
                 bool simulated)
{
    (void)plan;
    (void)index;
    std::fprintf(out_,
                 "%s,%s,%s,%.17g,%.17g,%.17g,%llu,%llu,"
                 "%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,"
                 "%.17g,%llu,%llu,%llu,%llu,%llu,%llu,"
                 "%.17g,%.17g,%.17g,%.17g,%d",
                 csvField(r.app).c_str(), csvField(r.config).c_str(),
                 csvField(r.machine).c_str(),
                 r.retentionUs, r.ambientC, r.maxTempC,
                 static_cast<unsigned long long>(r.execTicks),
                 static_cast<unsigned long long>(r.instructions),
                 r.energy.l1, r.energy.l2, r.energy.l3, r.energy.dram,
                 r.energy.dynamic, r.energy.leakage, r.energy.refresh,
                 r.energy.core, r.energy.net,
                 static_cast<unsigned long long>(r.counts.dramAccesses),
                 static_cast<unsigned long long>(r.counts.l3Misses),
                 static_cast<unsigned long long>(r.counts.l3Refreshes),
                 static_cast<unsigned long long>(
                     r.counts.refreshWritebacks),
                 static_cast<unsigned long long>(
                     r.counts.refreshInvalidations),
                 static_cast<unsigned long long>(r.counts.decayedHits),
                 r.requests, r.reqP50Us, r.reqP95Us, r.reqP99Us,
                 simulated ? 1 : 0);
    if (norm != nullptr)
        std::fprintf(out_, ",%.17g,%.17g,%.17g", norm->time,
                     norm->memEnergy, norm->sysEnergy);
    else
        std::fprintf(out_, ",,,");
    // Alternate-backend columns stay empty unless the plan selected a
    // second energy model (energy.altModel != 0).
    if (r.hasAlt)
        std::fprintf(out_, ",%.17g,%.17g,%.17g\n", r.alt.memTotal(),
                     r.alt.systemTotal(), energyDisagreement(r));
    else
        std::fprintf(out_, ",,,\n");
}

void
JsonLinesSink::begin(const ExperimentPlan &plan)
{
    energyTag_ = energyKeyTag(plan.energy);
}

void
JsonLinesSink::consume(const ExperimentPlan &plan, std::size_t index,
                       const RunResult &r, const NormalizedResult *norm,
                       bool simulated)
{
    JsonValue o = JsonValue::object();
    o.set("plan", JsonValue::string(plan.name));
    // The row's actual cache identity, including the plan's energy
    // tag, so rows from different energy models never alias.
    ScenarioKey key = plan.scenarios[index].key();
    key.energy = energyTag_;
    o.set("key", JsonValue::string(key.str()));
    o.set("app", JsonValue::string(r.app));
    o.set("config", JsonValue::string(r.config));
    o.set("machine", JsonValue::string(r.machine));
    o.set("retentionUs", JsonValue::number(r.retentionUs));
    o.set("ambientC", JsonValue::number(r.ambientC));
    o.set("maxTempC", JsonValue::number(r.maxTempC));
    o.set("execTicks",
          JsonValue::number(static_cast<double>(r.execTicks)));
    o.set("instructions",
          JsonValue::number(static_cast<double>(r.instructions)));
    o.set("simulated", JsonValue::boolean(simulated));
    o.set("requests", JsonValue::number(r.requests));

    // Always present (zeros for request-less workloads) so consumers
    // can rely on the shape of every row.
    JsonValue lat = JsonValue::object();
    lat.set("p50", JsonValue::number(r.reqP50Us));
    lat.set("p95", JsonValue::number(r.reqP95Us));
    lat.set("p99", JsonValue::number(r.reqP99Us));
    o.set("latencyUs", std::move(lat));

    JsonValue en = JsonValue::object();
    en.set("l1", JsonValue::number(r.energy.l1));
    en.set("l2", JsonValue::number(r.energy.l2));
    en.set("l3", JsonValue::number(r.energy.l3));
    en.set("dram", JsonValue::number(r.energy.dram));
    en.set("dynamic", JsonValue::number(r.energy.dynamic));
    en.set("leakage", JsonValue::number(r.energy.leakage));
    en.set("refresh", JsonValue::number(r.energy.refresh));
    en.set("core", JsonValue::number(r.energy.core));
    en.set("net", JsonValue::number(r.energy.net));
    o.set("energy", std::move(en));

    // Per-level component matrix (dyn/leak/ref per cache level).
    // Always present: exact for fresh runs, reconstructed by the
    // documented closure for cache reloads (energy_model.hh).
    JsonValue bd = JsonValue::object();
    bd.set("l1Dyn", JsonValue::number(r.energy.l1Dyn));
    bd.set("l1Leak", JsonValue::number(r.energy.l1Leak));
    bd.set("l1Ref", JsonValue::number(r.energy.l1Ref));
    bd.set("l2Dyn", JsonValue::number(r.energy.l2Dyn));
    bd.set("l2Leak", JsonValue::number(r.energy.l2Leak));
    bd.set("l2Ref", JsonValue::number(r.energy.l2Ref));
    bd.set("l3Dyn", JsonValue::number(r.energy.l3Dyn));
    bd.set("l3Leak", JsonValue::number(r.energy.l3Leak));
    bd.set("l3Ref", JsonValue::number(r.energy.l3Ref));
    o.set("breakdown", std::move(bd));

    // Second-opinion backend, only when the plan selected one — rows
    // of the default model keep their exact legacy shape plus the
    // breakdown above.
    if (r.hasAlt) {
        JsonValue av = JsonValue::object();
        av.set("l1", JsonValue::number(r.alt.l1));
        av.set("l2", JsonValue::number(r.alt.l2));
        av.set("l3", JsonValue::number(r.alt.l3));
        av.set("dram", JsonValue::number(r.alt.dram));
        av.set("dynamic", JsonValue::number(r.alt.dynamic));
        av.set("leakage", JsonValue::number(r.alt.leakage));
        av.set("refresh", JsonValue::number(r.alt.refresh));
        av.set("core", JsonValue::number(r.alt.core));
        av.set("net", JsonValue::number(r.alt.net));
        o.set("energyAlt", std::move(av));
        o.set("disagreement",
              JsonValue::number(energyDisagreement(r)));
    }

    JsonValue ct = JsonValue::object();
    ct.set("dramAccesses",
           JsonValue::number(static_cast<double>(r.counts.dramAccesses)));
    ct.set("l3Misses",
           JsonValue::number(static_cast<double>(r.counts.l3Misses)));
    ct.set("l3Refreshes",
           JsonValue::number(static_cast<double>(r.counts.l3Refreshes)));
    ct.set("refreshWritebacks",
           JsonValue::number(
               static_cast<double>(r.counts.refreshWritebacks)));
    ct.set("refreshInvalidations",
           JsonValue::number(
               static_cast<double>(r.counts.refreshInvalidations)));
    ct.set("decayedHits",
           JsonValue::number(static_cast<double>(r.counts.decayedHits)));
    o.set("counts", std::move(ct));

    if (norm != nullptr) {
        JsonValue nv = JsonValue::object();
        nv.set("time", JsonValue::number(norm->time));
        nv.set("memEnergy", JsonValue::number(norm->memEnergy));
        nv.set("sysEnergy", JsonValue::number(norm->sysEnergy));
        nv.set("refresh", JsonValue::number(norm->refresh));
        o.set("normalized", std::move(nv));
    } else {
        o.set("normalized", JsonValue::null());
    }

    const std::string line = o.dump(0);
    // A dropped row would silently desynchronize downstream consumers
    // (coordinator merge offsets, salvage line counts), so any write
    // failure — full disk, closed pipe — is fatal here, not deferred.
    // Non-strict sinks (serve) tolerate it; the caller checks ferror().
    if ((std::fprintf(out_, "%s\n", line.c_str()) < 0 ||
         std::ferror(out_)) &&
        strict_)
        fatal("JSONL row stream write failed at offset %lld "
              "(row %zu of plan %s): %s",
              static_cast<long long>(std::ftell(out_)), index,
              plan.name.c_str(), std::strerror(errno));
}

void
ProgressSink::consume(const ExperimentPlan &plan, std::size_t index,
                      const RunResult &r, const NormalizedResult *norm,
                      bool simulated)
{
    (void)r;
    (void)norm;
    std::fprintf(out_, "[%zu/%zu] %s %s\n", index + 1, plan.size(),
                 plan.scenarios[index].logLabel().c_str(),
                 simulated ? "simulated" : "cached");
}

void
ProgressSink::end(const ExperimentPlan &plan, const SweepResult &result)
{
    const RunMetrics &m = result.metrics;
    std::fprintf(out_,
                 "[%s] %zu scenarios: %zu simulated, %zu cached in "
                 "%.2fs (%u jobs, %.0f%% utilization)\n",
                 plan.name.c_str(), m.scenarios, m.simulated,
                 m.cacheHits, m.wallSeconds, m.jobs,
                 m.utilization() * 100.0);
}

} // namespace refrint
