#include "api/session.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

#include "api/run_cache.hh"
#include "common/arena.hh"
#include "common/log.hh"
#include "harness/pool.hh"

namespace refrint
{

namespace
{

/**
 * Private scratch state of one sweep worker, reused across every
 * scenario the worker claims:
 *
 *  - arena: backing store for each run's simulator allocations (cache
 *    arrays, refresh heaps, event-queue bands).  reset() before each
 *    simulation recycles the chunks instead of round-tripping them
 *    through malloc — by the second scenario a worker allocates
 *    nothing from the OS.
 *  - machines: memoized MachineConfig per distinct machine identity.
 *    A plan axis typically crosses many workloads with few machines,
 *    so most runs reuse a read-only config instead of rebuilding the
 *    descriptor set.
 *  - workloads: memoized registry resolution per app spec, skipping
 *    the registry's parse + lock on repeat specs.
 *
 * None of this can affect results: configs and workloads are
 * value-identical to what Scenario would rebuild, and the arena only
 * moves allocations (common/arena.hh, determinism note).
 */
struct WorkerCtx
{
    Arena arena;
    std::map<std::string, MachineConfig> machines;
    std::map<std::string, const Workload *> workloads;
};

/** Memo key capturing everything Scenario::machine() reads (the
 *  plan-wide energy model is constant across the sweep). */
std::string
machineMemoKey(const Scenario &sc)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "|%.17g|%.17g|%u|%d", sc.retentionUs,
                  sc.ambientC, sc.cores, sc.hybrid ? 1 : 0);
    return sc.config + buf;
}

} // namespace

Session::Session(SessionOptions opts)
    : jobs_(opts.jobs),
      store_(std::make_unique<RunCache>(std::move(opts.cachePath)))
{
}

Session::Session(std::unique_ptr<ResultStore> store, unsigned jobs)
    : jobs_(jobs), store_(std::move(store))
{
    panicIf(store_ == nullptr, "Session needs a result store");
}

Session::~Session() = default;

SweepResult
Session::run(const ExperimentPlan &plan,
             const std::vector<ResultSink *> &sinks,
             double deadlineSeconds)
{
    plan.validate();
    for (ResultSink *s : sinks)
        s->begin(plan);

    const std::size_t n = plan.size();
    std::vector<RunResult> results(n);
    std::vector<char> simulatedFlag(n, 0);
    std::vector<char> skippedFlag(n, 0);
    std::atomic<std::size_t> simulated{0};
    std::atomic<std::size_t> skipped{0};
    std::atomic<std::int64_t> busyNanos{0};
    const auto wallStart = std::chrono::steady_clock::now();
    const auto deadline =
        wallStart + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(deadlineSeconds));

    SweepResult out;

    // Streaming frontier: rows are emitted to the sinks (and into the
    // aggregate) strictly in plan order, each as soon as it and every
    // earlier row is complete.  Baselines precede their dependents in
    // plan order (validate() checks), so a row's baseline has always
    // been emitted — and its usability decided — before the row.
    std::mutex mu;
    std::vector<char> done(n, 0);
    std::vector<char> baselineUsable(n, 0);
    std::size_t frontier = 0;

    auto emitReadyLocked = [&]() {
        while (frontier < n && done[frontier]) {
            const std::size_t i = frontier++;
            if (skippedFlag[i])
                continue; // abandoned past the deadline: no row
            const RunResult &r = results[i];
            out.raw.push_back(r);
            const int b = plan.baseline[i];
            const NormalizedResult *normPtr = nullptr;
            NormalizedResult norm;
            if (b < 0) {
                baselineUsable[i] = usableBaseline(r);
                if (!baselineUsable[i])
                    warn("degenerate SRAM baseline for %s (zero energy "
                         "or time); skipping its normalized rows",
                         r.app.c_str());
            } else if (baselineUsable[static_cast<std::size_t>(b)]) {
                norm = normalize(
                    r, results[static_cast<std::size_t>(b)]);
                out.normalized.push_back(norm);
                normPtr = &norm;
            }
            for (ResultSink *s : sinks)
                s->consume(plan, i, r, normPtr, simulatedFlag[i] != 0);
        }
    };

    // Non-default energy models key their rows separately (|en= tag);
    // the calibrated defaults keep the legacy keys byte-identical.
    const std::string energyTag = energyKeyTag(plan.energy);

    const unsigned jobs = resolveJobs(jobs_);
    std::vector<WorkerCtx> ctxs(jobs);
    parallelForWorkers(n, jobs, [&](std::size_t i, unsigned worker) {
        const auto t0 = std::chrono::steady_clock::now();
        if (deadlineSeconds > 0 && t0 >= deadline) {
            // Cooperative overload control: the budget is spent, so
            // abandon instead of starting more work.
            skipped.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mu);
            skippedFlag[i] = 1;
            done[i] = 1;
            emitReadyLocked();
            return;
        }
        const Scenario &sc = plan.scenarios[i];
        ScenarioKey sk = sc.key();
        sk.energy = energyTag;
        const std::string key = sk.str();
        CacheRow row;
        if (store_->lookup(key, row)) {
            RunResult r = runFromCacheRow(sc.app, sc.config,
                                          sc.retentionUs,
                                          sc.machineLabel(), row);
            // Cache rows carry only the per-level totals; rebuild the
            // dyn/leak/ref matrix from them (leakage and LLC refresh
            // exact, upper-level split by the documented closure —
            // energy_model.hh).  The fresh path below applies the same
            // closure, so a warm reload is byte-identical to the run
            // that produced the row (coordinator salvage depends on
            // this).
            WorkerCtx &ctx = ctxs[worker];
            auto [mit, minserted] =
                ctx.machines.try_emplace(machineMemoKey(sc));
            if (minserted)
                mit->second = sc.machine(plan.energy);
            reconstructEnergyMatrix(r.energy, plan.energy, mit->second,
                                    r.execTicks, row.refreshes3);
            results[i] = std::move(r);
        } else {
            LogPrefix scope(sc.logLabel());
            inform("simulating ...");
            WorkerCtx &ctx = ctxs[worker];
            // Batch effect of per-worker claiming: scenarios sharing a
            // machine or an app spec hit the worker's memos, so only
            // the first run of each pays construction/resolution.
            auto [mit, minserted] =
                ctx.machines.try_emplace(machineMemoKey(sc));
            if (minserted)
                mit->second = sc.machine(plan.energy);
            const Workload *wl = sc.workload;
            if (wl == nullptr) {
                const Workload *&slot = ctx.workloads[sc.app];
                if (slot == nullptr)
                    slot = &sc.resolveWorkload();
                wl = slot;
            }
            // All prior arena-backed state (the previous scenario's
            // simulator) is dead by now; recycle the chunks.
            ctx.arena.reset();
            RunResult r = runOnce(mit->second, *wl, sc.sim, plan.energy,
                                  &ctx.arena);
            // Stamp the plan's labels (0.0 retention for SRAM
            // baselines; the scenario's own app spelling, which for a
            // spec workload may be terser than the canonical name the
            // runner saw) so a fresh run and a cache reload of it
            // report identically.
            r.retentionUs = sc.retentionUs;
            r.app = sc.app;
            // Replace the simulator's exact dyn/leak/ref matrix with
            // the closure over the cacheable aggregates — the same
            // function the warm path applies — so a future cache
            // reload of this row reproduces it byte-for-byte.
            reconstructEnergyMatrix(
                r.energy, plan.energy, mit->second, r.execTicks,
                static_cast<double>(r.counts.l3Refreshes));
            store_->insert(key, cacheRowOf(r));
            simulated.fetch_add(1, std::memory_order_relaxed);
            simulatedFlag[i] = 1;
            results[i] = std::move(r);
        }
        busyNanos.fetch_add(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count(),
            std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu);
        done[i] = 1;
        emitReadyLocked();
    });
    store_->flush();

    out.simulations = simulated.load();
    out.metrics.scenarios = n;
    out.metrics.simulated = out.simulations;
    out.metrics.skipped = skipped.load();
    out.metrics.cacheHits = n - out.simulations - out.metrics.skipped;
    if (out.metrics.skipped > 0)
        warn("run deadline (%.2fs) expired: abandoned %zu of %zu "
             "scenario(s) before they started",
             deadlineSeconds, out.metrics.skipped, n);
    out.metrics.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wallStart)
            .count();
    out.metrics.busySeconds =
        static_cast<double>(busyNanos.load()) * 1e-9;
    out.metrics.jobs = jobs;
    for (ResultSink *s : sinks)
        s->end(plan, out);
    return out;
}

} // namespace refrint
