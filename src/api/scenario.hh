/**
 * @file
 * Scenario: one fully-specified run point as a first-class value.
 *
 * A Scenario names everything that affects a simulation's result —
 * workload, refresh configuration, retention, ambient temperature,
 * machine scale/technology, and the simulation parameters — so an
 * experiment is a list of values rather than a nest of loop indices.
 * Its ScenarioKey is the canonical structured identity of the run:
 * the key's string form reproduces the legacy sweep-cache keys byte
 * for byte (v5/v6 cache files stay valid), and two scenarios collide
 * exactly when their keys compare equal.
 *
 * Key-compat contract (see DESIGN.md "Experiment API"):
 *
 *     app|config|retentionUs|refs|seed[|wl=P][|amb=C][|mach=M][|en=H]
 *
 * with retentionUs printed %.1f, ambient %.2f (only when nonzero), and
 * the machine label (only when non-default) from machineIdFor().  The
 * |wl= segment carries a parameterized workload method's canonical
 * parameter list (workload/method.hh); it is always present for a
 * method instance — even at all-default parameters — and never for a
 * legacy-named workload, so method rows cannot alias legacy rows and
 * every pre-registry key stays byte-identical.
 */

#ifndef REFRINT_API_SCENARIO_HH
#define REFRINT_API_SCENARIO_HH

#include <cstdint>
#include <string>

#include "config/machine_config.hh"
#include "energy/energy_params.hh"
#include "system/cmp_system.hh"
#include "workload/workload.hh"

namespace refrint
{

/** Canonical structured identity of one run: every field that keys the
 *  result cache.  str() is the (legacy-compatible) cache-key string. */
struct ScenarioKey
{
    std::string app;
    std::string config; ///< "SRAM" or a policy name, e.g. "R.WB(32,32)"

    /** Canonical parameter list of a workload-method instance (the
     *  "|wl=" payload, e.g. "tables=shared,..."); "" for legacy-named
     *  workloads. */
    std::string workload;
    double retentionUs = 0;
    std::uint64_t refs = 0;
    std::uint64_t seed = 0;
    double ambientC = 0;    ///< 0 = isothermal (no |amb= segment)
    std::string machine;    ///< "" = default machine (no |mach= segment)

    /** Energy-model tag (energyKeyTag of the plan's EnergyParams):
     *  "" = the calibrated defaults (no |en= segment), so rows from a
     *  re-parameterized energy model can never be satisfied by — or
     *  poison — rows computed under the defaults. */
    std::string energy;

    /** Canonical key string; byte-identical to the legacy v5/v6 cache
     *  keys for every scenario the old sweep could express.  Built by
     *  segment, so no axis can ever truncate the key. */
    std::string str() const;

    /**
     * Inverse of str(): rebuild the structured key from a cache-key
     * string (the validate subcommand walks a corpus it did not
     * produce).  Returns false on anything str() could not have
     * emitted — wrong segment count, malformed numbers, an unknown
     * tagged segment, or tagged segments out of canonical order.
     * parse(k.str(), k2) implies k == k2 up to the %.1f/%.2f rounding
     * str() applies to retention and ambient.
     */
    static bool parse(const std::string &key, ScenarioKey &out);

    bool operator==(const ScenarioKey &o) const;
    bool operator!=(const ScenarioKey &o) const { return !(*this == o); }
};

/**
 * One fully-specified run point, as data.  Value semantics: scenarios
 * can be compared, copied, serialized into plan files, and replayed.
 */
struct Scenario
{
    std::string app;             ///< workload spec ("fft", "agg:...")
    std::string config = "SRAM"; ///< "SRAM" or LLC policy name
    double retentionUs = 0;      ///< 0 for SRAM runs
    double ambientC = 0;         ///< 0 = thermal subsystem off
    std::uint32_t cores = 16;    ///< machine scale (4..64)
    bool hybrid = false;         ///< SRAM L1/L2 over the eDRAM LLC
    SimParams sim;               ///< refs/core, seed, tick budget

    /**
     * Resolved workload.  Plan builders that already hold a Workload
     * (including non-paper micro workloads) set it directly; scenarios
     * loaded from a JSON plan leave it null and resolve by name.
     */
    const Workload *workload = nullptr;

    bool isSram() const { return config == "SRAM"; }

    /** The machine label this scenario's rows are keyed under.  Note
     *  that SRAM baselines are never hybrid (the baseline of a hybrid
     *  machine is the all-SRAM machine at the same core count). */
    std::string machineLabel() const;

    /** The canonical cache/identity key. */
    ScenarioKey key() const;

    /** Build the machine this scenario runs on.  @p energy feeds the
     *  thermal subsystem's leakage estimate (eDRAM machines only). */
    MachineConfig machine(const EnergyParams &energy) const;

    /** Resolve the workload pointer (by name when unset); fatal if the
     *  name is unknown. */
    const Workload &resolveWorkload() const;

    /** The log prefix a sweep worker uses for this run, e.g.
     *  "fft/P.all@50us", "fft/P.all@50us/65C/c32". */
    std::string logLabel() const;

    /** Identity comparison (the workload pointer is not identity —
     *  two scenarios naming the same app are equal). */
    bool operator==(const Scenario &o) const;
    bool operator!=(const Scenario &o) const { return !(*this == o); }
};

} // namespace refrint

#endif // REFRINT_API_SCENARIO_HH
