/**
 * @file
 * Minimal JSON value tree used by the experiment API: plan files
 * (ExperimentPlan load/dump) and the JSON Lines result sink.
 *
 * Deliberately small and dependency-free: objects keep insertion
 * order (so a dumped plan is stable and diffs cleanly), numbers are
 * doubles printed with %.17g (exact double round-trip, integers render
 * without an exponent), and parse errors carry a character offset.
 */

#ifndef REFRINT_API_JSON_HH
#define REFRINT_API_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace refrint
{

class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null = 0,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;
    static JsonValue null() { return JsonValue(); }
    static JsonValue boolean(bool b);
    static JsonValue number(double v);
    static JsonValue string(std::string s);
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return bool_; }
    double asNumber() const { return num_; }
    const std::string &asString() const { return str_; }

    const std::vector<JsonValue> &items() const { return arr_; }
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return obj_;
    }

    /** Append to an array value. */
    void push(JsonValue v);

    /** Set (or append) an object member, keeping insertion order. */
    void set(const std::string &key, JsonValue v);

    /** Object member lookup; null when absent or not an object. */
    const JsonValue *get(const std::string &key) const;

    /**
     * Serialize.  @p indent 0 renders one compact line (JSON Lines
     * friendly); > 0 pretty-prints with that many spaces per level.
     */
    std::string dump(int indent = 0) const;

    /** Parse @p text (one complete JSON document, trailing whitespace
     *  allowed).  On failure returns false and sets @p err. */
    static bool parse(const std::string &text, JsonValue &out,
                      std::string &err);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> obj_;

    void dumpTo(std::string &out, int indent, int depth) const;
};

/** Escape @p s as a JSON string literal, including the quotes. */
std::string jsonQuote(const std::string &s);

/** Render a double the way the experiment API serializes numbers:
 *  integral values without exponent/decimals, %.17g otherwise. */
std::string jsonNumber(double v);

} // namespace refrint

#endif // REFRINT_API_JSON_HH
