/**
 * @file
 * ExperimentPlan: an experiment as a first-class, serializable value.
 *
 * A plan is an ordered list of scenarios plus, for each scenario, the
 * index of the SRAM baseline it normalizes against (-1 for baselines
 * themselves).  Plan order is execution/reporting order, exactly the
 * order the legacy Cartesian sweep used, so running the default paper
 * plan reproduces the legacy sweep byte for byte.
 *
 * Plans serialize to JSON (toJson/fromJson, loadFile/saveFile), making
 * any experiment declarative and shareable: `refrint_cli plan dump`
 * writes one, `refrint_cli sweep --plan file.json` replays it, and a
 * round trip (load -> dump -> load) is identity.
 */

#ifndef REFRINT_API_EXPERIMENT_PLAN_HH
#define REFRINT_API_EXPERIMENT_PLAN_HH

#include <string>
#include <vector>

#include "api/scenario.hh"
#include "harness/sweep.hh"

namespace refrint
{

struct ExperimentPlan
{
    std::string name = "custom";
    EnergyParams energy = EnergyParams::calibrated();

    /** Scenarios in execution (and reporting) order. */
    std::vector<Scenario> scenarios;

    /** Per scenario: index of its normalization baseline within
     *  scenarios, or -1 when the scenario is itself a baseline. */
    std::vector<int> baseline;

    std::size_t size() const { return scenarios.size(); }

    /** Append a baseline scenario; returns its index. */
    int addBaseline(Scenario s);

    /** Append a measured scenario normalizing against @p baselineIdx. */
    void add(Scenario s, int baselineIdx);

    /** Panic unless the plan is runnable: baseline/scenario sizes
     *  match, every baseline index points backwards at a baseline. */
    void validate() const;

    // ---- serialization ----

    std::string toJson() const;

    /** Parse a plan document; fatal (exit 1) on malformed input. */
    static ExperimentPlan fromJson(const std::string &text);

    /**
     * Non-fatal parse, for long-running consumers (`refrint serve`)
     * that must survive malformed requests: returns false and sets
     * @p err instead of exiting.  Applies exactly the fromJson checks,
     * including the baseline-family rule (a scenario may only
     * normalize against the SRAM baseline of its own app and machine).
     */
    static bool tryFromJson(const std::string &text, ExperimentPlan &out,
                            std::string &err);

    /** Load/save a plan file; fatal (exit 1) on I/O or parse errors. */
    static ExperimentPlan loadFile(const std::string &path);
    void saveFile(const std::string &path) const;

    // ---- named builders ----

    /**
     * Flatten a sweep spec into a plan, in the exact legacy order:
     * per machine, per app, the SRAM baseline first, then ambient x
     * retention x policy.  Finalizes the spec (paper defaults, env
     * overrides) first.
     */
    static ExperimentPlan fromSweepSpec(SweepSpec spec);

    /** The paper's full Table 5.4 sweep (473 runs at paper scale). */
    static ExperimentPlan paperSweep();

    /** Scenario set behind Figs. 6.1-6.4 + the headline table (the
     *  same grid as paperSweep; figures are a reporting choice). */
    static ExperimentPlan figures();

    /**
     * The ambient-temperature study: the headline policy pair
     * (P.all, R.WB(32,32)) at @p retentionUs for @p app, once per
     * ambient, plus the SRAM baseline.
     */
    static ExperimentPlan thermalStudy(const std::string &app,
                                       double retentionUs,
                                       const std::vector<double> &ambients,
                                       const SimParams &sim = {},
                                       const std::vector<MachineAxis>
                                           &machines = {});

    /** The Table 6.1 classification: no simulations of its own (the
     *  binning harness measures directly); pairs with BinningSink. */
    static ExperimentPlan binning();

    bool operator==(const ExperimentPlan &o) const;
    bool operator!=(const ExperimentPlan &o) const { return !(*this == o); }
};

/**
 * Cache-key tag for an energy-model parameterization: "" for the
 * calibrated defaults (legacy keys stay byte-identical), otherwise a
 * 16-hex-digit fingerprint over every EnergyParams field.  Keys carry
 * it as an |en= segment so results computed under different energy
 * models can never satisfy each other.
 */
std::string energyKeyTag(const EnergyParams &energy);

} // namespace refrint

#endif // REFRINT_API_EXPERIMENT_PLAN_HH
