/**
 * @file
 * Session: the facade that runs experiment plans.
 *
 * A Session owns the persistent run cache and the worker configuration;
 * Session::run(plan, sinks) executes every scenario of a plan —
 * cache-first, in parallel, results streamed to the sinks in plan
 * order — and returns the same SweepResult aggregate the legacy
 * runSweep() produced.  runSweep(), the thermal study, and the figure
 * pipeline are all thin plan-builders over this one entry point.
 *
 * Determinism contract (inherited from the legacy sweep engine):
 * results land in plan order regardless of completion order, every run
 * simulates with its own CmpSystem/EventQueue and scenario-derived
 * seeds, so jobs=N output is bit-identical to jobs=1, and the default
 * paper plan reproduces the legacy sweep — stdout, cache keys and rows
 * — byte for byte.
 */

#ifndef REFRINT_API_SESSION_HH
#define REFRINT_API_SESSION_HH

#include <memory>
#include <string>
#include <vector>

#include "api/experiment_plan.hh"
#include "api/result_sink.hh"
#include "harness/sweep.hh"

namespace refrint
{

class ResultStore;

struct SessionOptions
{
    /** Result cache location; empty disables persistence.  Defaults
     *  to $REFRINT_CACHE or ./refrint_sweep_cache.csv. */
    std::string cachePath;

    /** Worker threads; 0 means $REFRINT_JOBS, or serial if unset. */
    unsigned jobs = 0;

    SessionOptions() : cachePath(defaultCachePath()) {}
    SessionOptions(std::string cache, unsigned j)
        : cachePath(std::move(cache)), jobs(j)
    {
    }
};

class Session
{
  public:
    explicit Session(SessionOptions opts = {});

    /**
     * Run against an explicit result store (e.g. the experiment
     * service's ShardedStore) instead of the legacy single-file cache.
     * @p jobs as in SessionOptions.
     */
    Session(std::unique_ptr<ResultStore> store, unsigned jobs);

    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * Execute @p plan: cached scenarios load instantly, the rest
     * simulate on up to `jobs` workers.  Rows stream to @p sinks in
     * plan order (serialized — sinks need no locking); the store is
     * flushed before end() fires.  The store stays loaded across
     * run() calls, so successive plans in one session share warm rows.
     * The returned SweepResult carries RunMetrics (simulated vs.
     * cache-hit counts, wall time, worker utilization).
     *
     * @p deadlineSeconds > 0 bounds the run's wall time cooperatively:
     * once the budget is spent, scenarios that have not yet STARTED
     * are abandoned (no row is emitted for them; in-flight simulations
     * still finish) and counted in RunMetrics.skipped.  Rows whose
     * baseline was abandoned emit without a normalized view.  Overload
     * control for `refrint serve`; 0 (the default) never skips.
     */
    SweepResult run(const ExperimentPlan &plan,
                    const std::vector<ResultSink *> &sinks = {},
                    double deadlineSeconds = 0);

  private:
    unsigned jobs_ = 0;
    std::unique_ptr<ResultStore> store_;
};

} // namespace refrint

#endif // REFRINT_API_SESSION_HH
