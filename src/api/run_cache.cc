#include "api/run_cache.hh"

#include <algorithm>
#include <fstream>

#include "common/log.hh"

namespace refrint
{

namespace
{

constexpr int kCacheVersion = 8;
constexpr int kOldestReadableVersion = 5;

} // namespace

RunCache::RunCache(std::string path) : path_(std::move(path))
{
    if (path_.empty())
        return;
    std::ifstream in(path_);
    if (!in)
        return;
    std::string line;
    bool ok = std::getline(in, line).good();
    if (ok) {
        ok = false;
        for (int v = kOldestReadableVersion; v <= kCacheVersion; ++v)
            ok = ok || line == "v" + std::to_string(v);
    }
    if (!ok) {
        warn("ignoring sweep cache with stale version: %s",
             path_.c_str());
        return;
    }
    while (std::getline(in, line)) {
        const auto sep = line.find(';');
        if (sep == std::string::npos)
            continue;
        const std::string key = line.substr(0, sep);
        CacheRow c{};
        if (decodeCacheRow(line.substr(sep + 1), c))
            rows_[key] = c; // last occurrence wins
    }
}

bool
RunCache::lookup(const std::string &key, CacheRow &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = rows_.find(key);
    if (it == rows_.end())
        return false;
    out = it->second;
    return true;
}

void
RunCache::insert(const std::string &key, const CacheRow &c)
{
    std::lock_guard<std::mutex> lock(mu_);
    rows_[key] = c;
    dirty_ = true;
    // Durability rewrite, amortized: the threshold grows with the
    // cache so a long sweep rewrites the file O(log rows) times
    // instead of every kFlushInterval inserts (which made total
    // persistence cost quadratic in the row count).
    const std::size_t threshold =
        std::max(kFlushInterval, rows_.size() / 8);
    if (++sinceFlush_ >= threshold) {
        flushLocked();
        sinceFlush_ = 0;
    }
}

void
RunCache::flush()
{
    std::lock_guard<std::mutex> lock(mu_);
    flushLocked();
}

std::size_t
RunCache::rowCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rows_.size();
}

std::size_t
RunCache::rewrites() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rewrites_;
}

std::map<std::string, CacheRow>
RunCache::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return rows_;
}

void
RunCache::flushLocked()
{
    if (path_.empty() || !dirty_)
        return;
    // Always a full rewrite of a consistent file — never an append —
    // so duplicate keys cannot accumulate.
    std::ofstream out(path_, std::ios::trunc);
    if (!out) {
        warn("cannot write sweep cache: %s", path_.c_str());
        return;
    }
    out << "v" << kCacheVersion << "\n";
    for (const auto &[k, row] : rows_)
        out << k << ";" << encodeCacheRow(row) << "\n";
    ++rewrites_;
    dirty_ = false;
}

} // namespace refrint
