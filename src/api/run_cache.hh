/**
 * @file
 * The legacy persistent result cache behind Session: one CSV row per
 * simulated scenario, keyed by ScenarioKey::str(), in a single file.
 *
 * File-format history: v4 introduced named-field serialization (no
 * struct-layout reinterpret_cast), %.17g precision so every double
 * round-trips exactly, and full-rewrite-only persistence (no append
 * path, no duplicate keys).  v5 added the thermal fields (ambientC,
 * maxTempC).  v6 added machine-keyed rows ("|mach=" key segment) for
 * the machine sweep axis; the row payload is unchanged, so a v5 cache
 * is read in place (its rows are all default-machine rows) and
 * rewritten as v6 only if the sweep simulates something new.  v7
 * appends the request-latency fields (requests, p50/p95/p99 us); v5/v6
 * rows are read in place with those fields zero — which is their true
 * value, since legacy workloads have no request structure.  v8 appends
 * the alternate-energy-backend tail (altPresent + nine aggregates);
 * rows without a second-opinion estimate are written at the v7 length,
 * so a default-backend corpus round-trips byte-identically and a v7
 * cache replays warm with zero simulations.
 *
 * This is one of two ResultStore implementations (see
 * api/result_store.hh); the experiment service's sharded store
 * (service/store.hh) supersedes it for concurrent-writer workloads,
 * and `refrint_cli cache migrate` imports a file like this one into a
 * store directory.
 */

#ifndef REFRINT_API_RUN_CACHE_HH
#define REFRINT_API_RUN_CACHE_HH

#include <map>
#include <mutex>
#include <string>

#include "api/result_store.hh"

namespace refrint
{

/**
 * The sweep's persistent result cache.  Thread-safe: lookup/insert are
 * mutex-guarded so concurrent sweep workers can share it.  The file is
 * only ever written as a full rewrite (periodically during the sweep
 * for crash durability, and once at the end via flush()), so a
 * pre-existing file can never accumulate duplicate keys for a run.
 */
class RunCache : public ResultStore
{
  public:
    /** Load @p path if it exists and has a readable version; an empty
     *  path disables persistence entirely. */
    explicit RunCache(std::string path);

    bool lookup(const std::string &key, CacheRow &out) const override;

    /**
     * Record a freshly simulated run; persisted on flush().  For crash
     * durability during a long sweep the file is also rewritten
     * periodically — but only once the pending (not yet persisted) row
     * count passes max(kFlushInterval, rows/8).  The size-proportional
     * threshold keeps the total periodic-rewrite cost O(rows log rows)
     * instead of the historic O(rows^2 / kFlushInterval), while an
     * interrupted sweep still loses at most ~12% of its new rows.
     */
    void insert(const std::string &key, const CacheRow &c) override;

    /** Rewrite the cache file with every known row. */
    void flush() override;

    std::size_t rowCount() const override;

    /** Full rewrites performed so far (observability for the flush
     *  threshold; see DESIGN.md "Experiment service"). */
    std::size_t rewrites() const;

    /** Copy of every known row, for the `cache migrate` import path. */
    std::map<std::string, CacheRow> snapshot() const;

  private:
    static constexpr std::size_t kFlushInterval = 16;

    void flushLocked();

    std::string path_;
    mutable std::mutex mu_;
    std::map<std::string, CacheRow> rows_;
    std::size_t sinceFlush_ = 0;
    std::size_t rewrites_ = 0;
    bool dirty_ = false;
};

} // namespace refrint

#endif // REFRINT_API_RUN_CACHE_HH
