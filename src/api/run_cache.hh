/**
 * @file
 * The persistent result cache behind Session: one CSV row per
 * simulated scenario, keyed by ScenarioKey::str().
 *
 * File-format history: v4 introduced named-field serialization (no
 * struct-layout reinterpret_cast), %.17g precision so every double
 * round-trips exactly, and full-rewrite-only persistence (no append
 * path, no duplicate keys).  v5 added the thermal fields (ambientC,
 * maxTempC).  v6 added machine-keyed rows ("|mach=" key segment) for
 * the machine sweep axis; the row payload is unchanged, so a v5 cache
 * is read in place (its rows are all default-machine rows) and
 * rewritten as v6 only if the sweep simulates something new.  v7
 * appends the request-latency fields (requests, p50/p95/p99 us); v5/v6
 * rows are read in place with those fields zero — which is their true
 * value, since legacy workloads have no request structure.
 */

#ifndef REFRINT_API_RUN_CACHE_HH
#define REFRINT_API_RUN_CACHE_HH

#include <map>
#include <mutex>
#include <string>

#include "harness/runner.hh"

namespace refrint
{

/** The numeric payload serialized per run. */
struct CacheRow
{
    double execTicks, instructions;
    double l1, l2, l3, dram, dynamic, leakage, refresh, core, net;
    double dramAccesses, l3Misses, refreshes3, refWbs, refInvals;
    double decayed;
    double ambientC, maxTempC;
    double requests, reqP50Us, reqP95Us, reqP99Us;
};

/** Flatten a run result into its cache payload. */
CacheRow cacheRowOf(const RunResult &r);

/** Rebuild a run result from a cached payload plus its identity. */
RunResult runFromCacheRow(const std::string &app,
                          const std::string &config, double retentionUs,
                          const std::string &machine, const CacheRow &c);

/**
 * The sweep's persistent result cache.  Thread-safe: lookup/insert are
 * mutex-guarded so concurrent sweep workers can share it.  The file is
 * only ever written as a full rewrite (periodically during the sweep
 * for crash durability, and once at the end via flush()), so a
 * pre-existing file can never accumulate duplicate keys for a run.
 */
class RunCache
{
  public:
    /** Load @p path if it exists and has a readable version; an empty
     *  path disables persistence entirely. */
    explicit RunCache(std::string path);

    bool lookup(const std::string &key, CacheRow &out) const;

    /** Record a freshly simulated run; persisted on flush().  Every
     *  kFlushInterval inserts the file is also rewritten, so an
     *  interrupted long sweep loses at most that many simulations. */
    void insert(const std::string &key, const CacheRow &c);

    /** Rewrite the cache file with every known row. */
    void flush();

  private:
    static constexpr std::size_t kFlushInterval = 16;

    void flushLocked();

    std::string path_;
    mutable std::mutex mu_;
    std::map<std::string, CacheRow> rows_;
    std::size_t sinceFlush_ = 0;
    bool dirty_ = false;
};

} // namespace refrint

#endif // REFRINT_API_RUN_CACHE_HH
