/**
 * @file
 * ResultSink: streaming observers over a running experiment plan.
 *
 * Session::run() drives any number of sinks through a fixed protocol:
 *
 *   begin(plan)                       once, before the first run
 *   consume(plan, i, raw, norm, sim)  once per scenario, in plan order,
 *                                     as soon as the row (and its
 *                                     baseline) is available — rows
 *                                     stream while later scenarios are
 *                                     still simulating
 *   end(plan, result)                 once, after the full aggregate
 *
 * consume() calls are serialized (never concurrent) and always arrive
 * in plan order, so sinks need no locking of their own.  @p norm is
 * null for baseline rows and for rows whose baseline is degenerate;
 * @p simulated tells a fresh simulation from a cache hit.
 *
 * The console report, CSV, and JSON Lines writers here — plus the
 * figure/headline/thermal renderers in harness/report.hh — are all
 * implementations of this one interface.
 */

#ifndef REFRINT_API_RESULT_SINK_HH
#define REFRINT_API_RESULT_SINK_HH

#include <cstdio>
#include <string>

#include "harness/runner.hh"

namespace refrint
{

struct ExperimentPlan;
struct SweepResult;

class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    virtual void
    begin(const ExperimentPlan &plan)
    {
        (void)plan;
    }

    virtual void
    consume(const ExperimentPlan &plan, std::size_t index,
            const RunResult &raw, const NormalizedResult *norm,
            bool simulated)
    {
        (void)plan;
        (void)index;
        (void)raw;
        (void)norm;
        (void)simulated;
    }

    virtual void
    end(const ExperimentPlan &plan, const SweepResult &result)
    {
        (void)plan;
        (void)result;
    }
};

/** One CSV row per run (raw metrics + normalized view), header first.
 *  Does not own @p out. */
class CsvSink : public ResultSink
{
  public:
    explicit CsvSink(std::FILE *out) : out_(out) {}

    void begin(const ExperimentPlan &plan) override;
    void consume(const ExperimentPlan &plan, std::size_t index,
                 const RunResult &raw, const NormalizedResult *norm,
                 bool simulated) override;

  private:
    std::FILE *out_;
};

/** One compact JSON object per run — machine-readable streaming
 *  results (`python3 -m json.tool --json-lines` friendly).  Does not
 *  own @p out. */
class JsonLinesSink : public ResultSink
{
  public:
    /**
     * @p strict (the default) makes any row write failure fatal with
     * the stream offset — right for files and pipes feeding the
     * coordinator merge, where a silently dropped row desynchronizes
     * salvage line counts and merge offsets.  Pass false for
     * best-effort streams (a serve client that hangs up mid-response
     * must not kill the service); the caller then checks ferror().
     */
    explicit JsonLinesSink(std::FILE *out, bool strict = true)
        : out_(out), strict_(strict)
    {
    }

    void begin(const ExperimentPlan &plan) override;
    void consume(const ExperimentPlan &plan, std::size_t index,
                 const RunResult &raw, const NormalizedResult *norm,
                 bool simulated) override;

  private:
    std::FILE *out_;
    bool strict_;
    std::string energyTag_; ///< plan's |en= key segment ("" = default)
};

/** Human progress ticker on stderr: one line per completed run, plus
 *  a final RunMetrics summary (simulated/cached counts, wall time,
 *  worker utilization) when the plan finishes. */
class ProgressSink : public ResultSink
{
  public:
    explicit ProgressSink(std::FILE *out = stderr) : out_(out) {}

    void consume(const ExperimentPlan &plan, std::size_t index,
                 const RunResult &raw, const NormalizedResult *norm,
                 bool simulated) override;
    void end(const ExperimentPlan &plan,
             const SweepResult &result) override;

  private:
    std::FILE *out_;
};

} // namespace refrint

#endif // REFRINT_API_RESULT_SINK_HH
