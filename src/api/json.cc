#include "api/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace refrint
{

JsonValue
JsonValue::boolean(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::number(double d)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = d;
    return v;
}

JsonValue
JsonValue::string(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

void
JsonValue::push(JsonValue v)
{
    kind_ = Kind::Array;
    arr_.push_back(std::move(v));
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    kind_ = Kind::Object;
    for (auto &[k, old] : obj_) {
        if (k == key) {
            old = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

const JsonValue *
JsonValue::get(const std::string &key) const
{
    for (const auto &[k, v] : obj_)
        if (k == key)
            return &v;
    return nullptr;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[40];
    // Integral values (counts, seeds, tick budgets) render as plain
    // integers so plan files diff cleanly; everything else is %.17g,
    // which round-trips a double exactly.
    if (std::nearbyint(v) == v && std::fabs(v) < 9.0e15)
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    else
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad(static_cast<std::size_t>(indent) *
                              (static_cast<std::size_t>(depth) + 1),
                          ' ');
    const std::string closePad(
        static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
        ' ');
    const char *nl = indent > 0 ? "\n" : "";
    const char *colon = indent > 0 ? ": " : ":";

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        out += jsonNumber(num_);
        break;
      case Kind::String:
        out += jsonQuote(str_);
        break;
      case Kind::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            out += pad;
            arr_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < arr_.size())
                out += ',';
            out += nl;
        }
        out += closePad;
        out += ']';
        break;
      case Kind::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            out += pad;
            out += jsonQuote(obj_[i].first);
            out += colon;
            obj_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < obj_.size())
                out += ',';
            out += nl;
        }
        out += closePad;
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

/** Recursive-descent parser over a raw character range. */
class Parser
{
  public:
    Parser(const std::string &text, std::string &err)
        : text_(text), err_(err)
    {
    }

    bool
    document(JsonValue &out)
    {
        skipWs();
        if (!value(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &what)
    {
        err_ = what + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *word, JsonValue v, JsonValue &out)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return fail("unrecognized token");
        pos_ += n;
        out = std::move(v);
        return true;
    }

    bool
    stringBody(std::string &out)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= text_.size())
                    return fail("dangling escape");
                const char e = text_[++pos_];
                ++pos_;
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    char *end = nullptr;
                    const std::string hex = text_.substr(pos_, 4);
                    const long cp = std::strtol(hex.c_str(), &end, 16);
                    if (end != hex.c_str() + 4)
                        return fail("bad \\u escape");
                    pos_ += 4;
                    // Plan files are ASCII; encode BMP code points as
                    // UTF-8 without surrogate-pair handling.
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xC0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (cp >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((cp >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                continue;
            }
            out += c;
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    value(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == 'n')
            return literal("null", JsonValue::null(), out);
        if (c == 't')
            return literal("true", JsonValue::boolean(true), out);
        if (c == 'f')
            return literal("false", JsonValue::boolean(false), out);
        if (c == '"') {
            std::string s;
            if (!stringBody(s))
                return false;
            out = JsonValue::string(std::move(s));
            return true;
        }
        if (c == '[') {
            ++pos_;
            out = JsonValue::array();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                JsonValue item;
                skipWs();
                if (!value(item, depth + 1))
                    return false;
                out.push(std::move(item));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '{') {
            ++pos_;
            out = JsonValue::object();
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != '"')
                    return fail("expected object key");
                std::string key;
                if (!stringBody(key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':'");
                ++pos_;
                skipWs();
                JsonValue member;
                if (!value(member, depth + 1))
                    return false;
                out.set(key, std::move(member));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        // Number.  strtod also accepts "nan"/"inf", which JSON does
        // not — and which would poison downstream integer casts.
        {
            const char *start = text_.c_str() + pos_;
            char *end = nullptr;
            const double v = std::strtod(start, &end);
            if (end == start || !std::isfinite(v))
                return fail("unrecognized token");
            pos_ += static_cast<std::size_t>(end - start);
            out = JsonValue::number(v);
            return true;
        }
    }

    const std::string &text_;
    std::string &err_;
    std::size_t pos_ = 0;
};

} // namespace

bool
JsonValue::parse(const std::string &text, JsonValue &out,
                 std::string &err)
{
    Parser p(text, err);
    return p.document(out);
}

} // namespace refrint
