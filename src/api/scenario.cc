#include "api/scenario.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/log.hh"
#include "workload/method.hh"

namespace refrint
{

std::string
ScenarioKey::str() const
{
    // Each numeric segment is bounded (a %.1f double is at most ~310
    // digits plus sign and fraction); the textual segments are
    // appended as strings, so the key can never truncate no matter how
    // many axes (or how long an app/config name) the plan grows.
    char buf[384];
    std::snprintf(buf, sizeof(buf), "|%.1f|%llu|%llu", retentionUs,
                  static_cast<unsigned long long>(refs),
                  static_cast<unsigned long long>(seed));
    std::string key = app + "|" + config + buf;
    if (!workload.empty())
        key += "|wl=" + workload;
    if (ambientC != 0.0) {
        std::snprintf(buf, sizeof(buf), "|amb=%.2f", ambientC);
        key += buf;
    }
    if (!machine.empty())
        key += "|mach=" + machine;
    if (!energy.empty())
        key += "|en=" + energy;
    return key;
}

bool
ScenarioKey::parse(const std::string &key, ScenarioKey &out)
{
    // Split on '|'.  No produced segment can contain the separator:
    // app specs, config names and the canonical workload parameter
    // list are all drawn from grammars without it.
    std::vector<std::string> seg;
    std::size_t start = 0;
    for (;;) {
        const std::size_t bar = key.find('|', start);
        if (bar == std::string::npos) {
            seg.push_back(key.substr(start));
            break;
        }
        seg.push_back(key.substr(start, bar - start));
        start = bar + 1;
    }
    if (seg.size() < 5)
        return false;

    auto number = [](const std::string &s, double &v) {
        char *end = nullptr;
        v = std::strtod(s.c_str(), &end);
        return !s.empty() && end == s.c_str() + s.size();
    };

    ScenarioKey k;
    k.app = seg[0];
    k.config = seg[1];
    double refs = 0, seed = 0;
    if (k.app.empty() || k.config.empty() ||
        !number(seg[2], k.retentionUs) || !number(seg[3], refs) ||
        !number(seg[4], seed) || refs < 0 || seed < 0)
        return false;
    k.refs = static_cast<std::uint64_t>(refs);
    k.seed = static_cast<std::uint64_t>(seed);

    // Optional tagged segments, in the fixed order str() emits them.
    std::size_t i = 5;
    auto tagged = [&](const char *tag, std::string &v) {
        const std::size_t len = std::strlen(tag);
        if (i < seg.size() && seg[i].compare(0, len, tag) == 0) {
            v = seg[i].substr(len);
            ++i;
            return true;
        }
        return false;
    };
    std::string amb;
    tagged("wl=", k.workload);
    if (tagged("amb=", amb) &&
        (!number(amb, k.ambientC) || k.ambientC == 0.0))
        return false;
    tagged("mach=", k.machine);
    tagged("en=", k.energy);
    if (i != seg.size())
        return false;
    out = k;
    return true;
}

bool
ScenarioKey::operator==(const ScenarioKey &o) const
{
    return app == o.app && config == o.config &&
           workload == o.workload && retentionUs == o.retentionUs &&
           refs == o.refs && seed == o.seed && ambientC == o.ambientC &&
           machine == o.machine && energy == o.energy;
}

std::string
Scenario::machineLabel() const
{
    return machineIdFor(cores, !isSram() && hybrid);
}

ScenarioKey
Scenario::key() const
{
    // The key's workload identity comes from the canonical spec: a
    // held workload supplies its own (a registry instance's spec is
    // already canonical; a directly-constructed workload's is its bare
    // name, keeping legacy keys); a name-only scenario canonicalizes
    // through the registry, so "agg" and "agg:tables=shared" key
    // identically with every default made explicit.
    std::string spec = workload != nullptr ? workload->spec() : app;
    if (workload == nullptr) {
        ResolvedWorkload rw;
        std::string err;
        if (workloadRegistry().resolve(spec, rw, err))
            spec = rw.spec;
    }
    const auto colon = spec.find(':');

    ScenarioKey k;
    if (colon == std::string::npos) {
        k.app = spec;
    } else {
        k.app = spec.substr(0, colon);
        k.workload = spec.substr(colon + 1);
    }
    k.config = config;
    k.retentionUs = retentionUs;
    k.refs = sim.refsPerCore;
    k.seed = sim.seed;
    k.ambientC = ambientC;
    k.machine = machineLabel();
    return k;
}

MachineConfig
Scenario::machine(const EnergyParams &energy) const
{
    if (isSram())
        return MachineConfig::paperSram(cores);
    const RefreshPolicy policy = parsePolicy(config);
    const Tick retention = usToTicks(retentionUs);
    MachineConfig cfg =
        hybrid ? MachineConfig::paperHybrid(policy, retention, cores)
               : MachineConfig::paperEdram(policy, retention, cores);
    if (ambientC != 0.0) {
        cfg.thermal.enabled = true;
        cfg.thermal.ambientC = ambientC;
    }
    cfg.thermal.energy = energy;
    return cfg;
}

const Workload &
Scenario::resolveWorkload() const
{
    if (workload != nullptr)
        return *workload;
    ResolvedWorkload rw;
    std::string err;
    if (!workloadRegistry().resolve(app, rw, err))
        fatal("scenario names unknown application '%s' (%s)\n%s",
              app.c_str(), err.c_str(),
              workloadRegistry().describe().c_str());
    return *rw.workload;
}

std::string
Scenario::logLabel() const
{
    const std::string mach = machineLabel();
    char buf[64];
    std::string label = app + "/" + config;
    if (ambientC != 0.0)
        std::snprintf(buf, sizeof(buf), "@%.0fus/%.0fC", retentionUs,
                      ambientC);
    else
        std::snprintf(buf, sizeof(buf), "@%.0fus", retentionUs);
    label += buf;
    if (!mach.empty())
        label += "/" + mach;
    return label;
}

bool
Scenario::operator==(const Scenario &o) const
{
    return app == o.app && config == o.config &&
           retentionUs == o.retentionUs && ambientC == o.ambientC &&
           cores == o.cores && hybrid == o.hybrid &&
           sim.refsPerCore == o.sim.refsPerCore &&
           sim.seed == o.sim.seed && sim.maxTicks == o.sim.maxTicks;
}

} // namespace refrint
