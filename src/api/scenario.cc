#include "api/scenario.hh"

#include <cstdio>

#include "common/log.hh"
#include "workload/method.hh"

namespace refrint
{

std::string
ScenarioKey::str() const
{
    // Each numeric segment is bounded (a %.1f double is at most ~310
    // digits plus sign and fraction); the textual segments are
    // appended as strings, so the key can never truncate no matter how
    // many axes (or how long an app/config name) the plan grows.
    char buf[384];
    std::snprintf(buf, sizeof(buf), "|%.1f|%llu|%llu", retentionUs,
                  static_cast<unsigned long long>(refs),
                  static_cast<unsigned long long>(seed));
    std::string key = app + "|" + config + buf;
    if (!workload.empty())
        key += "|wl=" + workload;
    if (ambientC != 0.0) {
        std::snprintf(buf, sizeof(buf), "|amb=%.2f", ambientC);
        key += buf;
    }
    if (!machine.empty())
        key += "|mach=" + machine;
    if (!energy.empty())
        key += "|en=" + energy;
    return key;
}

bool
ScenarioKey::operator==(const ScenarioKey &o) const
{
    return app == o.app && config == o.config &&
           workload == o.workload && retentionUs == o.retentionUs &&
           refs == o.refs && seed == o.seed && ambientC == o.ambientC &&
           machine == o.machine && energy == o.energy;
}

std::string
Scenario::machineLabel() const
{
    return machineIdFor(cores, !isSram() && hybrid);
}

ScenarioKey
Scenario::key() const
{
    // The key's workload identity comes from the canonical spec: a
    // held workload supplies its own (a registry instance's spec is
    // already canonical; a directly-constructed workload's is its bare
    // name, keeping legacy keys); a name-only scenario canonicalizes
    // through the registry, so "agg" and "agg:tables=shared" key
    // identically with every default made explicit.
    std::string spec = workload != nullptr ? workload->spec() : app;
    if (workload == nullptr) {
        ResolvedWorkload rw;
        std::string err;
        if (workloadRegistry().resolve(spec, rw, err))
            spec = rw.spec;
    }
    const auto colon = spec.find(':');

    ScenarioKey k;
    if (colon == std::string::npos) {
        k.app = spec;
    } else {
        k.app = spec.substr(0, colon);
        k.workload = spec.substr(colon + 1);
    }
    k.config = config;
    k.retentionUs = retentionUs;
    k.refs = sim.refsPerCore;
    k.seed = sim.seed;
    k.ambientC = ambientC;
    k.machine = machineLabel();
    return k;
}

MachineConfig
Scenario::machine(const EnergyParams &energy) const
{
    if (isSram())
        return MachineConfig::paperSram(cores);
    const RefreshPolicy policy = parsePolicy(config);
    const Tick retention = usToTicks(retentionUs);
    MachineConfig cfg =
        hybrid ? MachineConfig::paperHybrid(policy, retention, cores)
               : MachineConfig::paperEdram(policy, retention, cores);
    if (ambientC != 0.0) {
        cfg.thermal.enabled = true;
        cfg.thermal.ambientC = ambientC;
    }
    cfg.thermal.energy = energy;
    return cfg;
}

const Workload &
Scenario::resolveWorkload() const
{
    if (workload != nullptr)
        return *workload;
    ResolvedWorkload rw;
    std::string err;
    if (!workloadRegistry().resolve(app, rw, err))
        fatal("scenario names unknown application '%s' (%s)\n%s",
              app.c_str(), err.c_str(),
              workloadRegistry().describe().c_str());
    return *rw.workload;
}

std::string
Scenario::logLabel() const
{
    const std::string mach = machineLabel();
    char buf[64];
    std::string label = app + "/" + config;
    if (ambientC != 0.0)
        std::snprintf(buf, sizeof(buf), "@%.0fus/%.0fC", retentionUs,
                      ambientC);
    else
        std::snprintf(buf, sizeof(buf), "@%.0fus", retentionUs);
    label += buf;
    if (!mach.empty())
        label += "/" + mach;
    return label;
}

bool
Scenario::operator==(const Scenario &o) const
{
    return app == o.app && config == o.config &&
           retentionUs == o.retentionUs && ambientC == o.ambientC &&
           cores == o.cores && hybrid == o.hybrid &&
           sim.refsPerCore == o.sim.refsPerCore &&
           sim.seed == o.sim.seed && sim.maxTicks == o.sim.maxTicks;
}

} // namespace refrint
