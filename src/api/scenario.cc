#include "api/scenario.hh"

#include <cstdio>

#include "common/log.hh"

namespace refrint
{

std::string
ScenarioKey::str() const
{
    // Each numeric segment is bounded (a %.1f double is at most ~310
    // digits plus sign and fraction); the textual segments are
    // appended as strings, so the key can never truncate no matter how
    // many axes (or how long an app/config name) the plan grows.
    char buf[384];
    std::snprintf(buf, sizeof(buf), "|%.1f|%llu|%llu", retentionUs,
                  static_cast<unsigned long long>(refs),
                  static_cast<unsigned long long>(seed));
    std::string key = app + "|" + config + buf;
    if (ambientC != 0.0) {
        std::snprintf(buf, sizeof(buf), "|amb=%.2f", ambientC);
        key += buf;
    }
    if (!machine.empty())
        key += "|mach=" + machine;
    if (!energy.empty())
        key += "|en=" + energy;
    return key;
}

bool
ScenarioKey::operator==(const ScenarioKey &o) const
{
    return app == o.app && config == o.config &&
           retentionUs == o.retentionUs && refs == o.refs &&
           seed == o.seed && ambientC == o.ambientC &&
           machine == o.machine && energy == o.energy;
}

std::string
Scenario::machineLabel() const
{
    return machineIdFor(cores, !isSram() && hybrid);
}

ScenarioKey
Scenario::key() const
{
    ScenarioKey k;
    k.app = app;
    k.config = config;
    k.retentionUs = retentionUs;
    k.refs = sim.refsPerCore;
    k.seed = sim.seed;
    k.ambientC = ambientC;
    k.machine = machineLabel();
    return k;
}

MachineConfig
Scenario::machine(const EnergyParams &energy) const
{
    if (isSram())
        return MachineConfig::paperSram(cores);
    const RefreshPolicy policy = parsePolicy(config);
    const Tick retention = usToTicks(retentionUs);
    MachineConfig cfg =
        hybrid ? MachineConfig::paperHybrid(policy, retention, cores)
               : MachineConfig::paperEdram(policy, retention, cores);
    if (ambientC != 0.0) {
        cfg.thermal.enabled = true;
        cfg.thermal.ambientC = ambientC;
    }
    cfg.thermal.energy = energy;
    return cfg;
}

const Workload &
Scenario::resolveWorkload() const
{
    if (workload != nullptr)
        return *workload;
    const Workload *w = findWorkload(app);
    if (w == nullptr)
        fatal("scenario names unknown application '%s'", app.c_str());
    return *w;
}

std::string
Scenario::logLabel() const
{
    const std::string mach = machineLabel();
    char buf[64];
    std::string label = app + "/" + config;
    if (ambientC != 0.0)
        std::snprintf(buf, sizeof(buf), "@%.0fus/%.0fC", retentionUs,
                      ambientC);
    else
        std::snprintf(buf, sizeof(buf), "@%.0fus", retentionUs);
    label += buf;
    if (!mach.empty())
        label += "/" + mach;
    return label;
}

bool
Scenario::operator==(const Scenario &o) const
{
    return app == o.app && config == o.config &&
           retentionUs == o.retentionUs && ambientC == o.ambientC &&
           cores == o.cores && hybrid == o.hybrid &&
           sim.refsPerCore == o.sim.refsPerCore &&
           sim.seed == o.sim.seed && sim.maxTicks == o.sim.maxTicks;
}

} // namespace refrint
