/**
 * @file
 * ResultStore: the persistence seam behind Session.
 *
 * A result store maps canonical scenario keys (ScenarioKey::str()) to
 * the numeric payload of one simulated run.  Session only ever talks
 * to this interface; the two implementations are
 *
 *   RunCache      (api/run_cache.hh)  — the legacy single-CSV-file
 *                 cache, one mutex, full-rewrite persistence.  Kept as
 *                 the default for the classic sweep workflow and as
 *                 the read-only import path for `cache migrate`.
 *   ShardedStore  (service/store.hh)  — the content-addressed store of
 *                 the experiment service: keys hash into N append-only
 *                 shard files with length+checksum record framing, so
 *                 multiple writer *processes* can append concurrently
 *                 and a mid-write crash can never corrupt a committed
 *                 row.
 *
 * The row payload (CacheRow) and its exact %.17g text codec live here
 * so both implementations — and the migrate tool — serialize rows
 * byte-identically.
 */

#ifndef REFRINT_API_RESULT_STORE_HH
#define REFRINT_API_RESULT_STORE_HH

#include <string>

#include "harness/runner.hh"

namespace refrint
{

/** The numeric payload serialized per run. */
struct CacheRow
{
    double execTicks, instructions;
    double l1, l2, l3, dram, dynamic, leakage, refresh, core, net;
    double dramAccesses, l3Misses, refreshes3, refWbs, refInvals;
    double decayed;
    double ambientC, maxTempC;
    double requests, reqP50Us, reqP95Us, reqP99Us;

    // v8 tail: the second-opinion estimate from the alternate energy
    // backend (src/validate/energy_alt.hh).  altPresent is the
    // discriminator; the writer suppresses the whole tail when it is
    // zero so default-backend rows stay byte-identical to v7.
    double altPresent = 0;
    double altL1 = 0, altL2 = 0, altL3 = 0, altDram = 0;
    double altDynamic = 0, altLeakage = 0, altRefresh = 0;
    double altCore = 0, altNet = 0;
};

/** Flatten a run result into its cache payload. */
CacheRow cacheRowOf(const RunResult &r);

/** Rebuild a run result from a cached payload plus its identity. */
RunResult runFromCacheRow(const std::string &app,
                          const std::string &config, double retentionUs,
                          const std::string &machine, const CacheRow &c);

/** Serialize a row as the canonical "f0,f1,..." field list (%.17g per
 *  field — exact double round-trip, identical in every store). */
std::string encodeCacheRow(const CacheRow &c);

/**
 * Parse a "f0,f1,..." payload into @p c.  Accepts a full current-
 * version row (with the alternate-backend tail), a base-length row
 * (v7, or any v8 row written without a second-opinion estimate), or a
 * legacy-length (pre-v7) prefix; fields past the end of a shorter row
 * then read as zero, which is their true value for such rows.  @p c
 * must be zero-initialized by the caller.
 */
bool decodeCacheRow(const std::string &payload, CacheRow &c);

/**
 * Where Session reads and writes simulated rows.  Implementations must
 * be thread-safe: concurrent sweep workers share one store.
 */
class ResultStore
{
  public:
    virtual ~ResultStore() = default;

    virtual bool lookup(const std::string &key, CacheRow &out) const = 0;

    /** Record a freshly simulated run under @p key. */
    virtual void insert(const std::string &key, const CacheRow &c) = 0;

    /** Make every inserted row durable (no-op for in-memory stores). */
    virtual void flush() = 0;

    /** Rows currently known (loaded + inserted). */
    virtual std::size_t rowCount() const = 0;
};

} // namespace refrint

#endif // REFRINT_API_RESULT_STORE_HH
