#include "thermal/thermal_model.hh"

#include <algorithm>

#include "common/log.hh"
#include "energy/energy_model.hh"

namespace refrint
{

ThermalDriver::ThermalDriver(const ThermalParams &params,
                             const ThermalResponse &response,
                             EventQueue &eq, StatGroup &stats)
    : params_(params), response_(response), eq_(eq),
      maxTempC_(params.ambientC)
{
    panicIf(params_.rThetaKperW <= 0.0 || params_.cThetaJperK <= 0.0,
            "thermal RC constants must be positive");
    panicIf(params_.epoch == 0, "thermal epoch must be nonzero");
    // Explicit Euler is stable for dt < R*C; clamp the epoch to half
    // the time constant so a careless config cannot oscillate.
    const double tauTicks = params_.rThetaKperW * params_.cThetaJperK *
                            static_cast<double>(kTicksPerSecond);
    const Tick maxEpoch = std::max<Tick>(1, static_cast<Tick>(tauTicks / 2));
    if (params_.epoch > maxEpoch) {
        warn("thermal epoch %llu exceeds tau/2; clamping to %llu",
             static_cast<unsigned long long>(params_.epoch),
             static_cast<unsigned long long>(maxEpoch));
        params_.epoch = maxEpoch;
    }
    epochs_ = &stats.counter("epochs");
    rescales_ = &stats.counter("retention_rescales");
    maxTempStat_ = &stats.accum("max_temp_c");
    maxTempStat_->set(maxTempC_);
}

void
ThermalDriver::addUnit(CacheUnit &unit, double leakW, double eAccessJ)
{
    if (unit.engine != nullptr &&
        !unit.engine->supportsRetentionScaling() && !warnedStatic_) {
        warn("thermal: a refresh engine does not support retention "
             "scaling; leaving it at nominal retention");
        warnedStatic_ = true;
    }
    nodes_.push_back(Node{&unit, leakW, eAccessJ,
                          ThermalNode(params_.ambientC,
                                      params_.rThetaKperW,
                                      params_.cThetaJperK),
                          1.0, 0, 0});
}

void
ThermalDriver::start(Tick now)
{
    lastTick_ = now;
    // Apply the ambient operating point immediately: a die sitting at
    // 45 C retains longer than the 85 C-spec nominal from tick zero,
    // not only after the first epoch.
    const double factor0 = response_.factorAt(params_.ambientC);
    for (Node &n : nodes_) {
        n.lastAccesses = n.unit->accessTally;
        n.lastRefreshes = n.unit->refreshTally;
        if (n.unit->engine != nullptr &&
            n.unit->engine->supportsRetentionScaling()) {
            if (n.unit->engine->setRetentionScale(factor0, now))
                rescales_->inc();
            n.appliedFactor = factor0;
        }
    }
    eq_.schedule(now + params_.epoch, this, 0);
}

void
ThermalDriver::fire(Tick now, std::uint64_t)
{
    const Tick dt = now - lastTick_;
    if (dt > 0) {
        const double dtSec = ticksToSeconds(dt);
        for (Node &n : nodes_) {
            const std::uint64_t acc = n.unit->accessTally;
            const std::uint64_t ref = n.unit->refreshTally;
            const std::uint64_t events =
                (acc - n.lastAccesses) + (ref - n.lastRefreshes);
            n.lastAccesses = acc;
            n.lastRefreshes = ref;

            const double powerW =
                unitEpochPower(n.leakW, n.eAccessJ, events, dt);
            const double tempC = n.rc.step(powerW, dtSec);
            maxTempC_ = std::max(maxTempC_, tempC);

            RefreshEngine *engine = n.unit->engine;
            if (engine == nullptr ||
                !engine->supportsRetentionScaling())
                continue;
            const double factor = response_.factorAt(tempC);
            const double rel = std::abs(factor - n.appliedFactor) /
                               n.appliedFactor;
            if (rel > params_.rescaleEpsilon) {
                if (engine->setRetentionScale(factor, now))
                    rescales_->inc();
                n.appliedFactor = factor;
            }
        }
        maxTempStat_->set(maxTempC_);
        epochs_->inc();
    }
    lastTick_ = now;
    eq_.schedule(now + params_.epoch, this, 0);
}

} // namespace refrint
