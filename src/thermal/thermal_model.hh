/**
 * @file
 * Activity-driven thermal model: per-bank lumped-RC temperatures and
 * the driver that feeds them back into eDRAM retention.
 *
 * Every eDRAM cache unit (L1s, private L2s, L3 banks) is one lumped
 * thermal node: a heat capacity C coupled to the ambient/heat-sink
 * temperature through a thermal resistance R.  Once per thermal epoch
 * the driver converts the unit's access/refresh tallies plus its
 * leakage into an average power, integrates the node with one explicit
 * fixed-step Euler update (deterministic: same inputs, same
 * temperatures, on every run and thread count), and maps the new
 * temperature through the Arrhenius-style retention curve
 * (ThermalResponse, edram/retention.hh) into a retention rescale of the
 * unit's refresh engine.
 *
 * The RC constants are scaled so the thermal time constant sits inside
 * a simulated run's horizon (see DESIGN.md); with the subsystem
 * disabled (the default) nothing here is ever constructed and the
 * simulator behaves exactly as before.
 */

#ifndef REFRINT_THERMAL_THERMAL_MODEL_HH
#define REFRINT_THERMAL_THERMAL_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "edram/refresh_engine.hh"
#include "edram/retention.hh"
#include "energy/energy_params.hh"
#include "mem/cache_unit.hh"
#include "sim/event_queue.hh"

namespace refrint
{

/** Knobs of the thermal subsystem (constants documented in DESIGN.md). */
struct ThermalParams
{
    /** Master switch; false means exact legacy (isothermal) behavior. */
    bool enabled = false;

    /** Ambient / heat-sink temperature, deg C (the sweep axis). */
    double ambientC = 45.0;

    /** Thermal resistance node -> ambient, K/W. */
    double rThetaKperW = 40.0;

    /** Thermal capacitance per node, J/K.  tau = R*C = 100 us by
     *  default, inside a typical simulated run's horizon. */
    double cThetaJperK = 2.5e-6;

    /** Thermal epoch: activity integration + Euler step interval.
     *  Must stay well below tau for the explicit step to be stable. */
    Tick epoch = usToTicks(10.0);

    /** Skip pushing a retention rescale when the factor moved less
     *  than this relative amount (keeps the per-epoch work off the
     *  O(lines) re-stamp path in steady state). */
    double rescaleEpsilon = 0.005;

    /** Power coefficients used to turn tallies into watts. */
    EnergyParams energy = EnergyParams::calibrated();
};

/**
 * One lumped RC node:  C * dT/dt = P - (T - Tamb) / R.
 *
 * Steady state under constant power is Tamb + P*R; the step response
 * approaches it with time constant R*C.  Integrated with explicit
 * Euler at the driver's epoch, which the driver clamps to R*C/2 for
 * stability.
 */
class ThermalNode
{
  public:
    ThermalNode(double ambientC, double rKperW, double cJperK)
        : ambientC_(ambientC), rKperW_(rKperW), cJperK_(cJperK),
          tempC_(ambientC)
    {
    }

    /** Advance the node by @p dtSec under average power @p powerW. */
    double
    step(double powerW, double dtSec)
    {
        tempC_ += dtSec / cJperK_ *
                  (powerW - (tempC_ - ambientC_) / rKperW_);
        return tempC_;
    }

    double tempC() const { return tempC_; }
    double ambientC() const { return ambientC_; }

    /** Steady-state temperature under constant @p powerW. */
    double
    steadyStateC(double powerW) const
    {
        return ambientC_ + powerW * rKperW_;
    }

  private:
    double ambientC_;
    double rKperW_;
    double cJperK_;
    double tempC_;
};

/**
 * The epoch driver: owns one ThermalNode per registered cache unit,
 * polls the units' activity tallies on the shared event queue, and
 * pushes retention rescales into their refresh engines.
 */
class ThermalDriver : public EventClient
{
  public:
    ThermalDriver(const ThermalParams &params,
                  const ThermalResponse &response, EventQueue &eq,
                  StatGroup &stats);

    ThermalDriver(const ThermalDriver &) = delete;
    ThermalDriver &operator=(const ThermalDriver &) = delete;

    /** Register one cache unit as a thermal node.  @p leakW is the
     *  unit's leakage power, @p eAccessJ its per-line-event dynamic
     *  energy (both already cell-tech adjusted). */
    void addUnit(CacheUnit &unit, double leakW, double eAccessJ);

    /** Schedule the first epoch. */
    void start(Tick now);

    /** Epoch boundary: integrate power, update temperatures, rescale
     *  retentions. */
    void fire(Tick now, std::uint64_t) override;

    std::size_t numNodes() const { return nodes_.size(); }
    double nodeTempC(std::size_t i) const { return nodes_[i].rc.tempC(); }

    /** Hottest temperature any node reached so far. */
    double maxTempC() const { return maxTempC_; }

    /** Epochs integrated so far. */
    std::uint64_t epochs() const { return epochs_->value(); }

  private:
    struct Node
    {
        CacheUnit *unit;
        double leakW;
        double eAccessJ;
        ThermalNode rc;
        double appliedFactor = 1.0;
        std::uint64_t lastAccesses = 0;
        std::uint64_t lastRefreshes = 0;
    };

    ThermalParams params_;
    ThermalResponse response_;
    EventQueue &eq_;
    std::vector<Node> nodes_;
    Tick lastTick_ = 0;
    double maxTempC_;
    bool warnedStatic_ = false;

    Counter *epochs_;
    Counter *rescales_;
    Accum *maxTempStat_;
};

} // namespace refrint

#endif // REFRINT_THERMAL_THERMAL_MODEL_HH
