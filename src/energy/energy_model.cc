#include "energy/energy_model.hh"

#include <algorithm>

namespace refrint
{

EnergyBreakdown
computeEnergy(const EnergyParams &p, const HierarchyCounts &n,
              const MachineConfig &cfg, Tick execTicks,
              std::uint64_t totalInstrs)
{
    EnergyBreakdown e;
    const double sec = ticksToSeconds(execTicks);

    // Leakage ratio per level: Table 5.2's quarter-leakage applies to
    // eDRAM levels only, so hybrid machines keep full SRAM leakage in
    // the levels that stay SRAM.
    auto ratio = [&](CellTech t) {
        return t == CellTech::Edram ? p.edramLeakRatio : 1.0;
    };

    // Per-level dynamic.
    const double l1Dyn =
        static_cast<double>(n.l1Reads + n.l1Writes) * p.eL1Access;
    const double l2Dyn =
        static_cast<double>(n.l2Reads + n.l2Writes) * p.eL2Access;
    const double l3Dyn =
        static_cast<double>(n.l3Reads + n.l3Writes) * p.eL3Access;

    // Refresh energy = access energy per refreshed line (Table 5.2).
    const double l1Ref = static_cast<double>(n.l1Refreshes) * p.eL1Access;
    const double l2Ref = static_cast<double>(n.l2Refreshes) * p.eL2Access;
    const double l3Ref = static_cast<double>(n.l3Refreshes) * p.eL3Access;

    // Leakage scales with instance count and wall time.  The cache-decay
    // comparator (related/decay.hh) gates idle lines off; its integrated
    // line-OFF time discounts the leakage of the decayed level.
    auto offFraction = [&](double offLineTicks, std::uint64_t lines) {
        if (execTicks == 0 || lines == 0)
            return 0.0;
        const double denom = static_cast<double>(lines) *
                             static_cast<double>(execTicks);
        return std::min(1.0, offLineTicks / denom);
    };

    // Instance counts and line totals come from the level descriptors,
    // not from a hardwired Table 5.1 shape: the L1 class has one unit
    // per descriptor per core (IL1 + DL1 = 2 on the paper machine).
    double l1UnitsPerCore = 0.0;
    for (const CacheLevelSpec &l : cfg.levels) {
        if (l.role == LevelRole::IL1 || l.role == LevelRole::DL1)
            l1UnitsPerCore += 1.0;
    }
    const CacheLevelSpec &l1Spec = cfg.il1();
    const CacheLevelSpec &l2Spec = cfg.l2();
    const CacheLevelSpec &llcSpec = cfg.llc();
    const std::uint64_t l2Lines =
        std::uint64_t{l2Spec.geom.numLines()} * cfg.numCores;
    const std::uint64_t l3Lines =
        std::uint64_t{llcSpec.geom.numLines()} * cfg.numBanks;

    const double l1Leak = p.leakL1 * l1UnitsPerCore * cfg.numCores *
                          ratio(l1Spec.tech) * sec;
    const double l2Leak = p.leakL2 * cfg.numCores * ratio(l2Spec.tech) *
                          sec *
                          (1.0 - offFraction(n.l2OffLineTicks, l2Lines));
    const double l3Leak = p.leakL3Bank * cfg.numBanks *
                          ratio(llcSpec.tech) * sec *
                          (1.0 - offFraction(n.l3OffLineTicks, l3Lines));

    e.l1 = l1Dyn + l1Ref + l1Leak;
    e.l2 = l2Dyn + l2Ref + l2Leak;
    e.l3 = l3Dyn + l3Ref + l3Leak;
    e.dram = static_cast<double>(n.dramAccesses) * p.eDramAccess;

    e.dynamic = l1Dyn + l2Dyn + l3Dyn;
    e.leakage = l1Leak + l2Leak + l3Leak;
    e.refresh = l1Ref + l2Ref + l3Ref;

    e.l1Dyn = l1Dyn, e.l1Leak = l1Leak, e.l1Ref = l1Ref;
    e.l2Dyn = l2Dyn, e.l2Leak = l2Leak, e.l2Ref = l2Ref;
    e.l3Dyn = l3Dyn, e.l3Leak = l3Leak, e.l3Ref = l3Ref;

    e.core = p.eCorePerInstr * static_cast<double>(totalInstrs) +
             p.leakCore * cfg.numCores * sec;
    e.net = p.eNetPerHop * static_cast<double>(n.netHops) +
            p.eNetPerDataMsg * static_cast<double>(n.netDataMsgs);
    return e;
}

void
reconstructEnergyMatrix(EnergyBreakdown &e, const EnergyParams &p,
                        const MachineConfig &cfg, Tick execTicks,
                        double l3Refreshes)
{
    const double sec = ticksToSeconds(execTicks);
    auto ratio = [&](CellTech t) {
        return t == CellTech::Edram ? p.edramLeakRatio : 1.0;
    };

    double l1UnitsPerCore = 0.0;
    for (const CacheLevelSpec &l : cfg.levels) {
        if (l.role == LevelRole::IL1 || l.role == LevelRole::DL1)
            l1UnitsPerCore += 1.0;
    }
    const CacheLevelSpec &l1Spec = cfg.il1();
    const CacheLevelSpec &l2Spec = cfg.l2();
    const CacheLevelSpec &llcSpec = cfg.llc();

    // Cache rows cannot describe decay machines (Scenario has no decay
    // axis), so the off-line leakage discount is zero and these match
    // computeEnergy bit-for-bit on any reloadable row.
    e.l1Leak = p.leakL1 * l1UnitsPerCore * cfg.numCores *
               ratio(l1Spec.tech) * sec;
    e.l2Leak = p.leakL2 * cfg.numCores * ratio(l2Spec.tech) * sec;
    e.l3Leak = p.leakL3Bank * cfg.numBanks * ratio(llcSpec.tech) * sec;

    // LLC refresh is exact: the row carries the refresh count and
    // Table 5.2 charges each refresh one line access.
    e.l3Ref = llcSpec.tech == CellTech::Edram
                  ? l3Refreshes * p.eL3Access
                  : 0.0;
    e.l3Dyn = std::max(0.0, e.l3 - e.l3Leak - e.l3Ref);

    // Upper levels: the row only keeps the level total, so split the
    // non-leakage remainder by scaling the LLC's per-line refresh rate
    // to each level's line count (closure; the levels run the pinned
    // Valid data policy, so this over-estimates their refresh slightly
    // and the clamp keeps the split inside the remainder).
    const double l3Lines =
        static_cast<double>(llcSpec.geom.numLines()) * cfg.numBanks;
    const double refPerLine = l3Lines > 0 ? l3Refreshes / l3Lines : 0.0;
    auto split = [&](double total, double leak, CellTech tech,
                     double lines, double eAccess, double &dyn,
                     double &ref) {
        const double rem = std::max(0.0, total - leak);
        ref = tech == CellTech::Edram
                  ? std::min(rem, refPerLine * lines * eAccess)
                  : 0.0;
        dyn = rem - ref;
    };
    const double l1Lines = static_cast<double>(l1Spec.geom.numLines()) *
                           l1UnitsPerCore * cfg.numCores;
    const double l2Lines =
        static_cast<double>(l2Spec.geom.numLines()) * cfg.numCores;
    split(e.l1, e.l1Leak, l1Spec.tech, l1Lines, p.eL1Access, e.l1Dyn,
          e.l1Ref);
    split(e.l2, e.l2Leak, l2Spec.tech, l2Lines, p.eL2Access, e.l2Dyn,
          e.l2Ref);
}

double
unitEpochPower(double leakW, double eAccessJ, std::uint64_t lineEvents,
               Tick dt)
{
    if (dt == 0)
        return leakW;
    const double dynJ = eAccessJ * static_cast<double>(lineEvents);
    return leakW + dynJ / ticksToSeconds(dt);
}

} // namespace refrint
