/**
 * @file
 * Energy coefficients for the evaluated 32 nm LOP chip (Table 5.1).
 *
 * The paper takes its coefficients from CACTI (SRAM/eDRAM arrays) and
 * McPAT (cores, network); those exact tool inputs are not published, so
 * the defaults here are CACTI-plausible values calibrated such that the
 * full-SRAM baseline's energy distribution reproduces the paper's
 * anchor facts: L3 carries ~60% of on-chip memory energy (§6.2), L1
 * energy is ~90% dynamic (§5), and the Periodic-All eDRAM configuration
 * lands near 50% of SRAM memory energy at a 50 us retention (§6.3).
 * All reported results are normalized to the full-SRAM run, exactly as
 * in the paper, so only these ratios matter.
 *
 * The modelling identities of Table 5.2 are hard-coded in the model:
 * eDRAM access time/energy = SRAM's, refresh energy = access energy,
 * eDRAM leakage = SRAM leakage / 4.
 */

#ifndef REFRINT_ENERGY_ENERGY_PARAMS_HH
#define REFRINT_ENERGY_ENERGY_PARAMS_HH

namespace refrint
{

struct EnergyParams
{
    // Dynamic energy per 64B line access, joules.
    double eL1Access = 0.040e-9;
    double eL2Access = 0.050e-9;
    double eL3Access = 0.080e-9;
    /** Off-chip DRAM access energy per line (I/O + array), joules. */
    double eDramAccess = 4e-9;

    // SRAM leakage power per cache instance, watts.  The paper targets
    // a low-voltage manycore whose SRAM hierarchy is strongly leakage
    // dominated (its eDRAM Periodic-All still halves memory energy at a
    // 50 us retention) — these values encode that regime.
    double leakL1 = 1.0e-3;       ///< per L1 (I or D)
    double leakL2 = 45.0e-3;      ///< per private L2
    double leakL3Bank = 260.0e-3; ///< per 1 MB L3 bank

    /** Table 5.2: eDRAM leakage is a quarter of SRAM's. */
    double edramLeakRatio = 0.25;

    // Core and network (McPAT-level coefficients for Fig. 6.3).  Sized
    // so cores+network carry ~35-40% of the full-SRAM system energy,
    // which is what the paper's Fig. 6.3 anchors imply (P.all lands at
    // 72% of system energy while only halving memory energy).
    double eCorePerInstr = 0.100e-9;
    double leakCore = 180.0e-3; ///< per core, watts
    double eNetPerHop = 0.050e-9;
    double eNetPerDataMsg = 0.100e-9;

    /**
     * Selects the independently parameterized validation backend
     * (src/validate/energy_alt.hh): nonzero means every fresh run also
     * computes a second, mcpat-style component estimate and carries the
     * relative disagreement alongside the primary numbers.  This is a
     * backend *selector*, not a coefficient — 0 (the default) leaves
     * every output byte-identical to a build without the validation
     * subsystem.  Like any non-calibrated energy field it routes cache
     * rows to their own |en= key space.
     */
    double altModel = 0;

    /** The calibrated defaults used throughout the evaluation. */
    static EnergyParams
    calibrated()
    {
        return EnergyParams{};
    }
};

} // namespace refrint

#endif // REFRINT_ENERGY_ENERGY_PARAMS_HH
