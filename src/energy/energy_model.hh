/**
 * @file
 * Converts event counts + execution time into the paper's two energy
 * decompositions: by level (L1/L2/L3/DRAM, Fig. 6.1) and by component
 * (on-chip dynamic/leakage/refresh + DRAM, Fig. 6.2), plus the total
 * system energy with cores and network (Fig. 6.3).
 */

#ifndef REFRINT_ENERGY_ENERGY_MODEL_HH
#define REFRINT_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

#include "coherence/hierarchy.hh"
#include "common/types.hh"
#include "energy/energy_params.hh"

namespace refrint
{

/** Full energy decomposition of one run, joules. */
struct EnergyBreakdown
{
    // by level (on-chip dynamic + leakage + refresh per level)
    double l1 = 0, l2 = 0, l3 = 0, dram = 0;

    // by component, on-chip memory only
    double dynamic = 0, leakage = 0, refresh = 0;

    // non-memory system energy (Fig. 6.3)
    double core = 0, net = 0;

    /** Memory hierarchy energy as the paper defines it (§6.1). */
    double
    memTotal() const
    {
        return l1 + l2 + l3 + dram;
    }

    /** Total system energy: cores + caches + network + DRAM. */
    double
    systemTotal() const
    {
        return memTotal() + core + net;
    }
};

/**
 * Compute the decomposition for a finished run.
 *
 * @param execTicks   Wall-clock simulated execution (leakage window).
 * @param totalInstrs Instructions executed across all cores.
 */
EnergyBreakdown computeEnergy(const EnergyParams &p,
                              const HierarchyCounts &n,
                              const MachineConfig &cfg, Tick execTicks,
                              std::uint64_t totalInstrs);

/**
 * Average power (watts) one cache unit dissipated over an epoch of
 * @p dt ticks: its leakage plus @p lineEvents dynamic line events
 * (demand accesses and refreshes, both charged at the same per-line
 * access energy, Table 5.2) amortized over the epoch.  This is the
 * power the thermal model (src/thermal/) integrates per node.
 */
double unitEpochPower(double leakW, double eAccessJ,
                      std::uint64_t lineEvents, Tick dt);

} // namespace refrint

#endif // REFRINT_ENERGY_ENERGY_MODEL_HH
