/**
 * @file
 * Converts event counts + execution time into the paper's two energy
 * decompositions: by level (L1/L2/L3/DRAM, Fig. 6.1) and by component
 * (on-chip dynamic/leakage/refresh + DRAM, Fig. 6.2), plus the total
 * system energy with cores and network (Fig. 6.3).
 */

#ifndef REFRINT_ENERGY_ENERGY_MODEL_HH
#define REFRINT_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

#include "coherence/hierarchy.hh"
#include "common/types.hh"
#include "energy/energy_params.hh"

namespace refrint
{

/** Full energy decomposition of one run, joules. */
struct EnergyBreakdown
{
    // by level (on-chip dynamic + leakage + refresh per level)
    double l1 = 0, l2 = 0, l3 = 0, dram = 0;

    // by component, on-chip memory only
    double dynamic = 0, leakage = 0, refresh = 0;

    // non-memory system energy (Fig. 6.3)
    double core = 0, net = 0;

    // Full level x component matrix (lN == lNDyn + lNLeak + lNRef).
    // computeEnergy fills these exactly; rows reloaded from a cache
    // carry only the aggregates, so Session reconstructs the matrix
    // with reconstructEnergyMatrix (leakage closed-form, refresh split
    // by line-count closure — see DESIGN.md "Cross-model validation").
    double l1Dyn = 0, l1Leak = 0, l1Ref = 0;
    double l2Dyn = 0, l2Leak = 0, l2Ref = 0;
    double l3Dyn = 0, l3Leak = 0, l3Ref = 0;

    /** Memory hierarchy energy as the paper defines it (§6.1). */
    double
    memTotal() const
    {
        return l1 + l2 + l3 + dram;
    }

    /** Total system energy: cores + caches + network + DRAM. */
    double
    systemTotal() const
    {
        return memTotal() + core + net;
    }
};

/**
 * Compute the decomposition for a finished run.
 *
 * @param execTicks   Wall-clock simulated execution (leakage window).
 * @param totalInstrs Instructions executed across all cores.
 */
EnergyBreakdown computeEnergy(const EnergyParams &p,
                              const HierarchyCounts &n,
                              const MachineConfig &cfg, Tick execTicks,
                              std::uint64_t totalInstrs);

/**
 * Rebuild the per-level dyn/leak/ref matrix of a breakdown whose
 * aggregates (l1/l2/l3 and the component sums) were reloaded from a
 * cache row.  Leakage is recomputed from the closed form (cached
 * scenarios cannot express cache decay, so the off-line discount is
 * zero and the term is exact).  The LLC refresh term is exact from the
 * cached refresh count; the L1/L2 dyn-vs-ref split is a documented
 * closure that scales the per-line refresh rate of the LLC by each
 * level's line count, clamped to the level's non-leakage energy.
 * SRAM levels get a zero refresh column exactly.
 *
 * @param l3Refreshes The cached LLC refresh count (CacheRow field).
 */
void reconstructEnergyMatrix(EnergyBreakdown &e, const EnergyParams &p,
                             const MachineConfig &cfg, Tick execTicks,
                             double l3Refreshes);

/**
 * Average power (watts) one cache unit dissipated over an epoch of
 * @p dt ticks: its leakage plus @p lineEvents dynamic line events
 * (demand accesses and refreshes, both charged at the same per-line
 * access energy, Table 5.2) amortized over the epoch.  This is the
 * power the thermal model (src/thermal/) integrates per node.
 */
double unitEpochPower(double leakW, double eAccessJ,
                      std::uint64_t lineEvents, Tick dt);

} // namespace refrint

#endif // REFRINT_ENERGY_ENERGY_MODEL_HH
