/**
 * @file
 * `refrint serve`: a long-running experiment service over a unix or
 * TCP socket, plus the matching `refrint submit` client.
 *
 * Protocol — newline-delimited JSON, one request per line, any number
 * of requests per connection:
 *
 *   <plan document>       run it.  Response: one JSON Lines row per
 *                         scenario (identical to `sweep --jsonl -`),
 *                         then one summary line
 *                         {"done":true,"plan":...,"scenarios":N,
 *                          "warm":W,"cold":C,"queueDepth":Q,
 *                          "wallSeconds":S,"msPerScenario":M}
 *   {"op":"stats"}        service counters:
 *                         {"stats":true,"requests":...,"plans":...,
 *                          "scenarios":...,"warm":...,"cold":...,
 *                          "errors":...,"queueDepth":...}
 *   {"op":"shutdown"}     {"bye":true}, then the server exits.
 *
 * A malformed or rejected request (bad JSON, unknown op, plan failing
 * validation — including the baseline-family rule) answers one
 * {"error":"..."} line and the connection stays usable.
 *
 * Scenarios already in the store are answered warm (no simulation);
 * cold ones are scheduled on the session's worker pool.  One session
 * persists across requests, so a resubmitted plan is all-warm.
 * Connections are accepted concurrently but served in arrival order;
 * queueDepth reports how many connections were waiting when a request
 * was picked up.
 *
 * Overload and failure behavior:
 *
 *  - The pending-connection queue is BOUNDED (maxQueue).  A connection
 *    arriving when it is full is shed immediately with one
 *    {"error":"overloaded"} line — fail fast beats an unbounded queue
 *    whose tail latency grows without limit.  Sheds are counted in
 *    the stats ("shed").
 *  - requestTimeoutSec > 0 bounds each plan run's wall time: scenarios
 *    not yet started when the budget expires are abandoned (their rows
 *    are missing) and the response ends with {"error":"deadline ..."}
 *    instead of the done-summary, so clients never mistake a truncated
 *    response for a complete one.
 *  - idleTimeoutSec > 0 closes connections whose client sends nothing
 *    for that long, so one silent client cannot head-of-line block the
 *    service forever.
 *  - SIGTERM drains gracefully: stop accepting, finish every already-
 *    queued connection (under a short read timeout), flush the store,
 *    exit 0.  A restart against the same store answers everything
 *    warm.
 *  - Chaos hook: a $REFRINT_FAULTS schedule (service/faults.hh) entry
 *    serve.drop_conn@N makes the service drop the connection abruptly
 *    while handling request #N (0-based), for client-robustness tests.
 */

#ifndef REFRINT_SERVICE_SERVE_HH
#define REFRINT_SERVICE_SERVE_HH

#include <cstdio>
#include <string>

namespace refrint
{

struct ServeOptions
{
    std::string socketPath; ///< unix socket path ("" = use port)
    unsigned port = 0;      ///< TCP port on 127.0.0.1 (0 = use socket)
    std::string storeDir;   ///< sharded result store; "" = none
    std::string cachePath;  ///< legacy cache (exclusive with storeDir)
    unsigned jobs = 0;      ///< worker threads (0 = $REFRINT_JOBS)

    std::size_t maxQueue = 16;    ///< pending-connection bound; a full
                                  ///< queue sheds with {"error":
                                  ///< "overloaded"}
    double requestTimeoutSec = 0; ///< per-plan wall deadline; 0 = none
    double idleTimeoutSec = 0;    ///< silent-client read timeout;
                                  ///< 0 = wait forever
};

/** Run the service until a shutdown request or SIGTERM (graceful
 *  drain); 0 on clean shutdown, 1 on setup failure (bad listen
 *  address, conflicting stores). */
int runServe(const ServeOptions &opts);

struct SubmitOptions
{
    std::string socketPath;  ///< unix socket path ("" = use port)
    unsigned port = 0;       ///< TCP port on 127.0.0.1
    std::string planPath;    ///< plan file to submit (op "run")
    std::string op = "run";  ///< "run", "stats" or "shutdown"
    std::FILE *out = nullptr; ///< response stream (default stdout)
};

/**
 * Submit one request and stream the response to @p out.  Retries the
 * connect for ~2 s (so a just-forked server can finish binding).
 * Returns 0 on success, 1 when the server answered {"error":...} or
 * the connection failed.
 */
int runSubmit(const SubmitOptions &opts);

} // namespace refrint

#endif // REFRINT_SERVICE_SERVE_HH
