#include "service/framing.hh"

#include <cstdio>

#include "common/log.hh"

namespace refrint
{

std::string
frameRecord(const std::string &payload)
{
    panicIf(payload.find('\n') != std::string::npos,
            "framed payloads are single lines");
    char header[48];
    std::snprintf(header, sizeof(header), "\nR %zu %016llx ",
                  payload.size(),
                  static_cast<unsigned long long>(fnv64(payload)));
    return header + payload + "\n";
}

bool
unframeRecord(const std::string &line, std::string &payload)
{
    // "R <len> <hash16> <payload>"
    if (line.size() < 4 || line[0] != 'R' || line[1] != ' ')
        return false;
    const auto lenEnd = line.find(' ', 2);
    if (lenEnd == std::string::npos)
        return false;
    std::size_t len = 0;
    for (std::size_t i = 2; i < lenEnd; ++i) {
        if (line[i] < '0' || line[i] > '9')
            return false;
        len = len * 10 + static_cast<std::size_t>(line[i] - '0');
        if (len > (1u << 24)) // sanity bound: no record is 16 MiB
            return false;
    }
    const auto hashEnd = line.find(' ', lenEnd + 1);
    if (hashEnd == std::string::npos ||
        hashEnd - (lenEnd + 1) != 16)
        return false;
    std::uint64_t hash = 0;
    for (std::size_t i = lenEnd + 1; i < hashEnd; ++i) {
        const char c = line[i];
        std::uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint64_t>(c - 'a') + 10;
        else
            return false;
        hash = (hash << 4) | digit;
    }
    const std::string body = line.substr(hashEnd + 1);
    if (body.size() != len || fnv64(body) != hash)
        return false;
    payload = body;
    return true;
}

ScanStats
scanRecords(const std::string &data,
            const std::function<void(const std::string &)> &onRecord)
{
    ScanStats stats;
    std::size_t pos = 0;
    while (pos < data.size()) {
        auto nl = data.find('\n', pos);
        if (nl == std::string::npos)
            nl = data.size();
        if (nl > pos) {
            const std::string line = data.substr(pos, nl - pos);
            std::string payload;
            if (unframeRecord(line, payload)) {
                ++stats.committed;
                onRecord(payload);
            } else {
                ++stats.torn;
            }
        }
        pos = nl + 1;
    }
    return stats;
}

} // namespace refrint
