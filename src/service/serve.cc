#include "service/serve.hh"

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include "api/experiment_plan.hh"
#include "api/json.hh"
#include "api/result_sink.hh"
#include "api/run_cache.hh"
#include "api/session.hh"
#include "common/log.hh"
#include "service/store.hh"

namespace refrint
{

namespace
{

/** Bind+listen on the configured address; -1 with a warn() on error. */
int
openListener(const ServeOptions &opts)
{
    if (!opts.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opts.socketPath.size() >= sizeof(addr.sun_path)) {
            warn("serve: socket path too long: %s",
                 opts.socketPath.c_str());
            return -1;
        }
        std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            warn("serve: socket: %s", std::strerror(errno));
            return -1;
        }
        ::unlink(opts.socketPath.c_str()); // stale socket from a crash
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(fd, 16) != 0) {
            warn("serve: cannot listen on %s: %s",
                 opts.socketPath.c_str(), std::strerror(errno));
            ::close(fd);
            return -1;
        }
        return fd;
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("serve: socket: %s", std::strerror(errno));
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd, 16) != 0) {
        warn("serve: cannot listen on 127.0.0.1:%u: %s", opts.port,
             std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

struct ServeCounters
{
    std::size_t requests = 0;
    std::size_t plans = 0;
    std::size_t scenarios = 0;
    std::size_t warm = 0;
    std::size_t cold = 0;
    std::size_t errors = 0;
};

void
replyError(std::FILE *io, ServeCounters &counters, const std::string &msg)
{
    ++counters.errors;
    std::fprintf(io, "{\"error\":%s}\n", jsonQuote(msg).c_str());
    std::fflush(io);
}

/**
 * Handle every request line on one connection.  Returns true when the
 * service should keep running, false after a shutdown request.
 */
bool
handleConnection(int fd, Session &session, ServeCounters &counters,
                 std::size_t queueDepth)
{
    std::FILE *io = ::fdopen(fd, "r+");
    if (io == nullptr) {
        ::close(fd);
        return true;
    }
    bool keepServing = true;
    char *line = nullptr;
    std::size_t cap = 0;
    ssize_t n;
    while (keepServing && (n = ::getline(&line, &cap, io)) >= 0) {
        std::string text(line, static_cast<std::size_t>(n));
        while (!text.empty() &&
               (text.back() == '\n' || text.back() == '\r'))
            text.pop_back();
        if (text.empty())
            continue;
        ++counters.requests;

        JsonValue doc;
        std::string err;
        if (!JsonValue::parse(text, doc, err)) {
            replyError(io, counters, "bad request JSON: " + err);
            continue;
        }
        const JsonValue *op =
            doc.isObject() ? doc.get("op") : nullptr;
        if (op != nullptr) {
            if (!op->isString()) {
                replyError(io, counters, "\"op\" must be a string");
            } else if (op->asString() == "stats") {
                std::fprintf(io,
                             "{\"stats\":true,\"requests\":%zu,"
                             "\"plans\":%zu,\"scenarios\":%zu,"
                             "\"warm\":%zu,\"cold\":%zu,"
                             "\"errors\":%zu,\"queueDepth\":%zu}\n",
                             counters.requests, counters.plans,
                             counters.scenarios, counters.warm,
                             counters.cold, counters.errors,
                             queueDepth);
                std::fflush(io);
            } else if (op->asString() == "shutdown") {
                std::fprintf(io, "{\"bye\":true}\n");
                std::fflush(io);
                keepServing = false;
            } else {
                replyError(io, counters,
                           "unknown op \"" + op->asString() + "\"");
            }
            continue;
        }

        ExperimentPlan plan;
        if (!ExperimentPlan::tryFromJson(text, plan, err)) {
            replyError(io, counters, err);
            continue;
        }

        ++counters.plans;
        JsonLinesSink rows(io);
        std::vector<ResultSink *> sinks{&rows};
        const SweepResult result = session.run(plan, sinks);
        const RunMetrics &m = result.metrics;
        counters.scenarios += m.scenarios;
        counters.warm += m.cacheHits;
        counters.cold += m.simulated;
        const double msPerScenario =
            m.scenarios > 0 ? m.wallSeconds * 1000.0 /
                                  static_cast<double>(m.scenarios)
                            : 0.0;
        std::fprintf(io,
                     "{\"done\":true,\"plan\":%s,\"scenarios\":%zu,"
                     "\"warm\":%zu,\"cold\":%zu,\"queueDepth\":%zu,"
                     "\"wallSeconds\":%s,\"msPerScenario\":%s}\n",
                     jsonQuote(plan.name).c_str(), m.scenarios,
                     m.cacheHits, m.simulated, queueDepth,
                     jsonNumber(m.wallSeconds).c_str(),
                     jsonNumber(msPerScenario).c_str());
        std::fflush(io);
    }
    std::free(line);
    std::fclose(io); // also closes fd
    return keepServing;
}

} // namespace

int
runServe(const ServeOptions &opts)
{
    if (!opts.storeDir.empty() && !opts.cachePath.empty()) {
        warn("serve: --store and --cache are exclusive");
        return 1;
    }
    if (opts.socketPath.empty() && opts.port == 0) {
        warn("serve: need --socket PATH or --port N");
        return 1;
    }

    // A client dropping mid-response must not kill the service.
    ::signal(SIGPIPE, SIG_IGN);

    const int listenFd = openListener(opts);
    if (listenFd < 0)
        return 1;

    std::unique_ptr<ResultStore> store;
    if (!opts.storeDir.empty())
        store = std::make_unique<ShardedStore>(opts.storeDir);
    else
        store = std::make_unique<RunCache>(opts.cachePath);
    Session session(std::move(store), opts.jobs);

    std::mutex mu;
    std::condition_variable cv;
    std::deque<int> pending;
    bool stop = false;
    bool acceptorDown = false;

    std::thread acceptor([&]() {
        for (;;) {
            const int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR)
                    continue;
                std::lock_guard<std::mutex> lock(mu);
                acceptorDown = true; // listener closed or broken
                cv.notify_one();
                break;
            }
            std::lock_guard<std::mutex> lock(mu);
            if (stop) {
                ::close(fd);
                break;
            }
            pending.push_back(fd);
            cv.notify_one();
        }
    });

    if (!opts.socketPath.empty())
        inform("serve: listening on %s", opts.socketPath.c_str());
    else
        inform("serve: listening on 127.0.0.1:%u", opts.port);

    ServeCounters counters;
    for (;;) {
        int fd;
        std::size_t depth;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&]() {
                return !pending.empty() || acceptorDown;
            });
            if (pending.empty())
                break; // listener died with nothing queued
            fd = pending.front();
            pending.pop_front();
            depth = pending.size();
        }
        if (!handleConnection(fd, session, counters, depth))
            break;
    }

    {
        std::lock_guard<std::mutex> lock(mu);
        stop = true;
        for (const int fd : pending)
            ::close(fd);
        pending.clear();
    }
    ::shutdown(listenFd, SHUT_RDWR);
    ::close(listenFd); // unblocks the acceptor
    acceptor.join();
    if (!opts.socketPath.empty())
        ::unlink(opts.socketPath.c_str());
    inform("serve: shut down after %zu request(s), %zu plan(s) "
           "(%zu warm, %zu cold)",
           counters.requests, counters.plans, counters.warm,
           counters.cold);
    return 0;
}

namespace
{

/** Connect to the serve address, retrying for ~2 s. */
int
connectWithRetry(const SubmitOptions &opts)
{
    for (int attempt = 0; attempt < 40; ++attempt) {
        int fd = -1;
        if (!opts.socketPath.empty()) {
            sockaddr_un addr{};
            addr.sun_family = AF_UNIX;
            if (opts.socketPath.size() >= sizeof(addr.sun_path))
                return -1;
            std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                         sizeof(addr.sun_path) - 1);
            fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd >= 0 &&
                ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0)
                return fd;
        } else {
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_port =
                htons(static_cast<std::uint16_t>(opts.port));
            addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            fd = ::socket(AF_INET, SOCK_STREAM, 0);
            if (fd >= 0 &&
                ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0)
                return fd;
        }
        if (fd >= 0)
            ::close(fd);
        timespec ts{0, 50 * 1000 * 1000}; // 50 ms
        ::nanosleep(&ts, nullptr);
    }
    return -1;
}

} // namespace

int
runSubmit(const SubmitOptions &opts)
{
    if (opts.socketPath.empty() && opts.port == 0) {
        warn("submit: need --socket PATH or --port N");
        return 1;
    }

    std::string request;
    if (opts.op == "run") {
        std::ifstream in(opts.planPath);
        if (!in) {
            warn("submit: cannot read plan file %s",
                 opts.planPath.c_str());
            return 1;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        JsonValue doc;
        std::string err;
        if (!JsonValue::parse(ss.str(), doc, err)) {
            warn("submit: %s is not JSON: %s", opts.planPath.c_str(),
                 err.c_str());
            return 1;
        }
        request = doc.dump(0); // one compact line
    } else if (opts.op == "stats" || opts.op == "shutdown") {
        request = "{\"op\":\"" + opts.op + "\"}";
    } else {
        warn("submit: unknown op \"%s\"", opts.op.c_str());
        return 1;
    }

    ::signal(SIGPIPE, SIG_IGN);
    const int fd = connectWithRetry(opts);
    if (fd < 0) {
        if (!opts.socketPath.empty())
            warn("submit: cannot connect to %s",
                 opts.socketPath.c_str());
        else
            warn("submit: cannot connect to 127.0.0.1:%u", opts.port);
        return 1;
    }

    std::FILE *io = ::fdopen(fd, "r+");
    if (io == nullptr) {
        ::close(fd);
        return 1;
    }
    std::fprintf(io, "%s\n", request.c_str());
    std::fflush(io);

    std::FILE *out = opts.out != nullptr ? opts.out : stdout;
    int rc = 1; // no terminator seen = failure
    char *line = nullptr;
    std::size_t cap = 0;
    ssize_t n;
    while ((n = ::getline(&line, &cap, io)) >= 0) {
        std::fwrite(line, 1, static_cast<std::size_t>(n), out);
        JsonValue doc;
        std::string err;
        const std::string text(line, static_cast<std::size_t>(n));
        if (!JsonValue::parse(text, doc, err) || !doc.isObject())
            continue; // row line; keep streaming
        if (doc.get("error") != nullptr) {
            rc = 1;
            break;
        }
        if (doc.get("done") != nullptr || doc.get("stats") != nullptr ||
            doc.get("bye") != nullptr) {
            rc = 0;
            break;
        }
    }
    std::free(line);
    std::fflush(out);
    std::fclose(io);
    return rc;
}

} // namespace refrint
