#include "service/serve.hh"

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include "api/experiment_plan.hh"
#include "api/json.hh"
#include "api/result_sink.hh"
#include "api/run_cache.hh"
#include "api/session.hh"
#include "common/log.hh"
#include "service/faults.hh"
#include "service/store.hh"

namespace refrint
{

namespace
{

/** Bind+listen on the configured address; -1 with a warn() on error. */
int
openListener(const ServeOptions &opts)
{
    if (!opts.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (opts.socketPath.size() >= sizeof(addr.sun_path)) {
            warn("serve: socket path too long: %s",
                 opts.socketPath.c_str());
            return -1;
        }
        std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            warn("serve: socket: %s", std::strerror(errno));
            return -1;
        }
        ::unlink(opts.socketPath.c_str()); // stale socket from a crash
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(fd, 16) != 0) {
            warn("serve: cannot listen on %s: %s",
                 opts.socketPath.c_str(), std::strerror(errno));
            ::close(fd);
            return -1;
        }
        return fd;
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("serve: socket: %s", std::strerror(errno));
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd, 16) != 0) {
        warn("serve: cannot listen on 127.0.0.1:%u: %s", opts.port,
             std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

/** SIGTERM latch for the graceful drain (async-signal-safe). */
volatile sig_atomic_t gDrainRequested = 0;

void
onSigterm(int)
{
    gDrainRequested = 1;
}

struct ServeCounters
{
    std::size_t requests = 0;
    std::size_t plans = 0;
    std::size_t scenarios = 0;
    std::size_t warm = 0;
    std::size_t cold = 0;
    std::size_t errors = 0;
    std::size_t shed = 0;       ///< connections refused: queue full
    std::size_t idleClosed = 0; ///< connections closed: idle timeout
};

/** Arm a receive timeout on @p fd; 0 disables (wait forever). */
void
setReadTimeout(int fd, double seconds)
{
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void
replyError(std::FILE *io, ServeCounters &counters, const std::string &msg)
{
    ++counters.errors;
    std::fprintf(io, "{\"error\":%s}\n", jsonQuote(msg).c_str());
    std::fflush(io);
}

/**
 * Handle every request line on one connection.  Returns true when the
 * service should keep running, false after a shutdown request.
 * @p draining caps how long we wait for the client's next line so a
 * silent connection cannot stall the SIGTERM drain.
 */
bool
handleConnection(int fd, Session &session, const ServeOptions &opts,
                 ServeCounters &counters, std::size_t queueDepth,
                 bool draining)
{
    double readTimeout = opts.idleTimeoutSec;
    if (draining && (readTimeout <= 0 || readTimeout > 1.0))
        readTimeout = 1.0;
    if (readTimeout > 0)
        setReadTimeout(fd, readTimeout);

    std::FILE *io = ::fdopen(fd, "r+");
    if (io == nullptr) {
        ::close(fd);
        return true;
    }
    bool keepServing = true;
    char *line = nullptr;
    std::size_t cap = 0;
    ssize_t n;
    while (keepServing) {
        errno = 0;
        if ((n = ::getline(&line, &cap, io)) < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                ++counters.idleClosed;
                inform("serve: closing connection idle for %.1fs",
                       readTimeout);
            }
            break;
        }
        std::string text(line, static_cast<std::size_t>(n));
        while (!text.empty() &&
               (text.back() == '\n' || text.back() == '\r'))
            text.pop_back();
        if (text.empty())
            continue;
        const std::size_t reqOrdinal = counters.requests++;

        // Chaos hook: hang up abruptly on request #N, so client
        // robustness against a dying server is testable.
        if (FaultPlan::global().at("serve.drop_conn", reqOrdinal)) {
            warn("serve: fault injection dropping connection at "
                 "request %zu",
                 reqOrdinal);
            break;
        }

        JsonValue doc;
        std::string err;
        if (!JsonValue::parse(text, doc, err)) {
            replyError(io, counters, "bad request JSON: " + err);
            continue;
        }
        const JsonValue *op =
            doc.isObject() ? doc.get("op") : nullptr;
        if (op != nullptr) {
            if (!op->isString()) {
                replyError(io, counters, "\"op\" must be a string");
            } else if (op->asString() == "stats") {
                std::fprintf(io,
                             "{\"stats\":true,\"requests\":%zu,"
                             "\"plans\":%zu,\"scenarios\":%zu,"
                             "\"warm\":%zu,\"cold\":%zu,"
                             "\"errors\":%zu,\"shed\":%zu,"
                             "\"queueDepth\":%zu}\n",
                             counters.requests, counters.plans,
                             counters.scenarios, counters.warm,
                             counters.cold, counters.errors,
                             counters.shed, queueDepth);
                std::fflush(io);
            } else if (op->asString() == "shutdown") {
                std::fprintf(io, "{\"bye\":true}\n");
                std::fflush(io);
                keepServing = false;
            } else {
                replyError(io, counters,
                           "unknown op \"" + op->asString() + "\"");
            }
            continue;
        }

        ExperimentPlan plan;
        if (!ExperimentPlan::tryFromJson(text, plan, err)) {
            replyError(io, counters, err);
            continue;
        }

        ++counters.plans;
        // Non-strict: a client hanging up mid-response must not kill
        // the service; the run completes (warming the store) and the
        // dead stream is noticed below.
        JsonLinesSink rows(io, /*strict=*/false);
        std::vector<ResultSink *> sinks{&rows};
        const SweepResult result =
            session.run(plan, sinks, opts.requestTimeoutSec);
        const RunMetrics &m = result.metrics;
        counters.scenarios += m.scenarios;
        counters.warm += m.cacheHits;
        counters.cold += m.simulated;
        if (std::ferror(io))
            break; // client is gone; nothing more to say
        if (m.skipped > 0) {
            // An incomplete response must end unambiguously: an error
            // terminator, never the done-summary.
            replyError(io, counters,
                       "deadline: " + std::to_string(m.skipped) +
                           " of " + std::to_string(m.scenarios) +
                           " scenarios abandoned after " +
                           std::to_string(opts.requestTimeoutSec) +
                           "s");
            continue;
        }
        const double msPerScenario =
            m.scenarios > 0 ? m.wallSeconds * 1000.0 /
                                  static_cast<double>(m.scenarios)
                            : 0.0;
        std::fprintf(io,
                     "{\"done\":true,\"plan\":%s,\"scenarios\":%zu,"
                     "\"warm\":%zu,\"cold\":%zu,\"queueDepth\":%zu,"
                     "\"wallSeconds\":%s,\"msPerScenario\":%s}\n",
                     jsonQuote(plan.name).c_str(), m.scenarios,
                     m.cacheHits, m.simulated, queueDepth,
                     jsonNumber(m.wallSeconds).c_str(),
                     jsonNumber(msPerScenario).c_str());
        std::fflush(io);
    }
    std::free(line);
    std::fclose(io); // also closes fd
    return keepServing;
}

} // namespace

int
runServe(const ServeOptions &opts)
{
    if (!opts.storeDir.empty() && !opts.cachePath.empty()) {
        warn("serve: --store and --cache are exclusive");
        return 1;
    }
    if (opts.socketPath.empty() && opts.port == 0) {
        warn("serve: need --socket PATH or --port N");
        return 1;
    }

    // A client dropping mid-response must not kill the service.
    ::signal(SIGPIPE, SIG_IGN);

    // SIGTERM = graceful drain (no SA_RESTART: poll/accept must wake).
    gDrainRequested = 0;
    struct sigaction sa{};
    sa.sa_handler = onSigterm;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);

    const int listenFd = openListener(opts);
    if (listenFd < 0)
        return 1;

    std::unique_ptr<ResultStore> store;
    if (!opts.storeDir.empty())
        store = std::make_unique<ShardedStore>(opts.storeDir);
    else
        store = std::make_unique<RunCache>(opts.cachePath);
    Session session(std::move(store), opts.jobs);

    const std::size_t maxQueue = opts.maxQueue == 0 ? 1 : opts.maxQueue;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<int> pending;
    bool stop = false;
    bool acceptorDown = false;
    std::size_t shedCount = 0;

    // The acceptor polls (instead of blocking in accept) so a SIGTERM
    // delivered to ANY thread is noticed within one poll interval.
    std::thread acceptor([&]() {
        for (;;) {
            if (gDrainRequested != 0) {
                std::lock_guard<std::mutex> lock(mu);
                acceptorDown = true;
                cv.notify_one();
                break;
            }
            pollfd pfd{listenFd, POLLIN, 0};
            const int ready = ::poll(&pfd, 1, 200 /* ms */);
            if (ready < 0 && errno != EINTR) {
                std::lock_guard<std::mutex> lock(mu);
                acceptorDown = true; // listener closed or broken
                cv.notify_one();
                break;
            }
            if (ready <= 0)
                continue;
            const int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR || errno == EAGAIN)
                    continue;
                std::lock_guard<std::mutex> lock(mu);
                acceptorDown = true;
                cv.notify_one();
                break;
            }
            bool shed = false;
            {
                std::lock_guard<std::mutex> lock(mu);
                if (stop) {
                    ::close(fd);
                    break;
                }
                if (pending.size() >= maxQueue) {
                    shed = true;
                    ++shedCount;
                } else {
                    pending.push_back(fd);
                    cv.notify_one();
                }
            }
            if (shed) {
                // Bounded queue: fail fast instead of letting tail
                // latency grow without limit.
                static const char msg[] = "{\"error\":\"overloaded\"}\n";
                ssize_t ignored = ::write(fd, msg, sizeof(msg) - 1);
                (void)ignored;
                ::close(fd);
            }
        }
    });

    if (!opts.socketPath.empty())
        inform("serve: listening on %s", opts.socketPath.c_str());
    else
        inform("serve: listening on 127.0.0.1:%u", opts.port);

    ServeCounters counters;
    bool drainLogged = false;
    for (;;) {
        int fd;
        std::size_t depth;
        bool draining;
        {
            std::unique_lock<std::mutex> lock(mu);
            counters.shed = shedCount;
            cv.wait(lock, [&]() {
                return !pending.empty() || acceptorDown;
            });
            draining = acceptorDown && gDrainRequested != 0;
            if (pending.empty())
                break; // listener gone and the queue is dry
            fd = pending.front();
            pending.pop_front();
            depth = pending.size();
        }
        if (draining && !drainLogged) {
            drainLogged = true;
            inform("serve: SIGTERM — draining %zu queued "
                   "connection(s), then exiting",
                   depth + 1);
        }
        if (!handleConnection(fd, session, opts, counters, depth,
                              draining))
            break;
    }

    {
        std::lock_guard<std::mutex> lock(mu);
        stop = true;
        counters.shed = shedCount;
        for (const int fd : pending)
            ::close(fd);
        pending.clear();
    }
    ::shutdown(listenFd, SHUT_RDWR);
    ::close(listenFd); // unblocks the acceptor
    acceptor.join();
    if (!opts.socketPath.empty())
        ::unlink(opts.socketPath.c_str());
    // The session's store was flushed at the end of every run();
    // nothing buffered survives here, so a restart against the same
    // store answers everything warm.
    inform("serve: %s after %zu request(s), %zu plan(s) "
           "(%zu warm, %zu cold, %zu shed, %zu idle-closed)",
           gDrainRequested != 0 ? "drained (SIGTERM)" : "shut down",
           counters.requests, counters.plans, counters.warm,
           counters.cold, counters.shed, counters.idleClosed);
    return 0;
}

namespace
{

/** Connect to the serve address, retrying for ~2 s. */
int
connectWithRetry(const SubmitOptions &opts)
{
    for (int attempt = 0; attempt < 40; ++attempt) {
        int fd = -1;
        if (!opts.socketPath.empty()) {
            sockaddr_un addr{};
            addr.sun_family = AF_UNIX;
            if (opts.socketPath.size() >= sizeof(addr.sun_path))
                return -1;
            std::strncpy(addr.sun_path, opts.socketPath.c_str(),
                         sizeof(addr.sun_path) - 1);
            fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            if (fd >= 0 &&
                ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0)
                return fd;
        } else {
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_port =
                htons(static_cast<std::uint16_t>(opts.port));
            addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
            fd = ::socket(AF_INET, SOCK_STREAM, 0);
            if (fd >= 0 &&
                ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr)) == 0)
                return fd;
        }
        if (fd >= 0)
            ::close(fd);
        timespec ts{0, 50 * 1000 * 1000}; // 50 ms
        ::nanosleep(&ts, nullptr);
    }
    return -1;
}

} // namespace

int
runSubmit(const SubmitOptions &opts)
{
    if (opts.socketPath.empty() && opts.port == 0) {
        warn("submit: need --socket PATH or --port N");
        return 1;
    }

    std::string request;
    if (opts.op == "run") {
        std::ifstream in(opts.planPath);
        if (!in) {
            warn("submit: cannot read plan file %s",
                 opts.planPath.c_str());
            return 1;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        JsonValue doc;
        std::string err;
        if (!JsonValue::parse(ss.str(), doc, err)) {
            warn("submit: %s is not JSON: %s", opts.planPath.c_str(),
                 err.c_str());
            return 1;
        }
        request = doc.dump(0); // one compact line
    } else if (opts.op == "stats" || opts.op == "shutdown") {
        request = "{\"op\":\"" + opts.op + "\"}";
    } else {
        warn("submit: unknown op \"%s\"", opts.op.c_str());
        return 1;
    }

    ::signal(SIGPIPE, SIG_IGN);
    const int fd = connectWithRetry(opts);
    if (fd < 0) {
        if (!opts.socketPath.empty())
            warn("submit: cannot connect to %s",
                 opts.socketPath.c_str());
        else
            warn("submit: cannot connect to 127.0.0.1:%u", opts.port);
        return 1;
    }

    std::FILE *io = ::fdopen(fd, "r+");
    if (io == nullptr) {
        ::close(fd);
        return 1;
    }
    std::fprintf(io, "%s\n", request.c_str());
    std::fflush(io);

    std::FILE *out = opts.out != nullptr ? opts.out : stdout;
    int rc = 1; // no terminator seen = failure
    char *line = nullptr;
    std::size_t cap = 0;
    ssize_t n;
    while ((n = ::getline(&line, &cap, io)) >= 0) {
        std::fwrite(line, 1, static_cast<std::size_t>(n), out);
        JsonValue doc;
        std::string err;
        const std::string text(line, static_cast<std::size_t>(n));
        if (!JsonValue::parse(text, doc, err) || !doc.isObject())
            continue; // row line; keep streaming
        if (doc.get("error") != nullptr) {
            rc = 1;
            break;
        }
        if (doc.get("done") != nullptr || doc.get("stats") != nullptr ||
            doc.get("bye") != nullptr) {
            rc = 0;
            break;
        }
    }
    std::free(line);
    std::fflush(out);
    std::fclose(io);
    return rc;
}

} // namespace refrint
