#include "service/faults.hh"

#include <csignal>
#include <cstdlib>
#include <cstring>

#include <time.h>

#include "common/env.hh"
#include "common/log.hh"

namespace refrint
{

namespace
{

const char *const kKnownPoints[] = {
    "worker.crash",     "worker.hang",       "worker.slow",
    "store.torn_write", "store.short_write", "serve.drop_conn",
};

bool
knownPoint(const std::string &name)
{
    for (const char *p : kKnownPoints)
        if (name == p)
            return true;
    return false;
}

} // namespace

FaultPlan::FaultPlan(const std::string &spec)
{
    std::size_t pos = 0;
    while (pos < spec.size()) {
        auto comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string entry = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (entry.empty())
            continue;

        const auto at = entry.find('@');
        if (at == std::string::npos || at == 0)
            fatal("REFRINT_FAULTS: entry '%s' is not point@ordinal",
                  entry.c_str());
        FaultSpec f;
        f.point = entry.substr(0, at);
        if (!knownPoint(f.point))
            fatal("REFRINT_FAULTS: unknown fault point '%s' (known: "
                  "worker.crash, worker.hang, worker.slow, "
                  "store.torn_write, store.short_write, "
                  "serve.drop_conn)",
                  f.point.c_str());
        std::string args = entry.substr(at + 1);
        std::string extra;
        const auto colon = args.find(':');
        if (colon != std::string::npos) {
            extra = args.substr(colon + 1);
            args = args.substr(0, colon);
        }
        if (!parseU64Strict(args.c_str(), f.arg))
            fatal("REFRINT_FAULTS: '%s' wants a decimal ordinal after "
                  "'@', got '%s'",
                  entry.c_str(), args.c_str());
        if (!extra.empty() && !parseU64Strict(extra.c_str(), f.extra))
            fatal("REFRINT_FAULTS: '%s' wants a decimal value after "
                  "':', got '%s'",
                  entry.c_str(), extra.c_str());
        specs_.push_back(std::move(f));
    }
}

namespace
{

FaultPlan
parseEnvPlan()
{
    const char *env = std::getenv("REFRINT_FAULTS");
    return env != nullptr ? FaultPlan(env) : FaultPlan();
}

FaultPlan &
globalPlan()
{
    static FaultPlan plan = parseEnvPlan();
    return plan;
}

} // namespace

const FaultPlan &
FaultPlan::global()
{
    return globalPlan();
}

void
FaultPlan::reloadGlobalForTest()
{
    globalPlan() = parseEnvPlan();
}

bool
FaultPlan::at(const char *point, std::uint64_t ordinal,
              std::uint64_t *extra) const
{
    for (const FaultSpec &f : specs_) {
        if (f.arg == ordinal && f.point == point) {
            if (extra != nullptr)
                *extra = f.extra;
            return true;
        }
    }
    return false;
}

void
maybeInjectWorkerFault(std::size_t globalIndex)
{
    const FaultPlan &plan = FaultPlan::global();
    if (plan.empty())
        return;
    const char *attempt = std::getenv("REFRINT_WORKER_ATTEMPT");
    if (attempt != nullptr && std::strcmp(attempt, "0") != 0)
        return; // retried workers always run clean

    const std::uint64_t idx = globalIndex;
    std::uint64_t ms = 0;
    if (plan.at("worker.crash", idx))
        std::raise(SIGKILL);
    if (plan.at("worker.hang", idx)) {
        // Sleep forever (until the coordinator's deadline SIGKILLs us);
        // a loop because nanosleep returns on any signal with a handler.
        for (;;) {
            timespec ts{3600, 0};
            ::nanosleep(&ts, nullptr);
        }
    }
    if (plan.at("worker.slow", idx, &ms) && ms > 0) {
        timespec ts{static_cast<time_t>(ms / 1000),
                    static_cast<long>((ms % 1000) * 1000000)};
        ::nanosleep(&ts, nullptr);
    }
}

} // namespace refrint
