#include "service/worker.hh"

#include <cstdlib>
#include <memory>
#include <vector>

#include "api/experiment_plan.hh"
#include "api/result_sink.hh"
#include "api/run_cache.hh"
#include "api/session.hh"
#include "common/env.hh"
#include "common/log.hh"
#include "service/faults.hh"
#include "service/store.hh"

namespace refrint
{

namespace
{

/**
 * Forwards range rows to an inner sink against the FULL plan with
 * GLOBAL indices (so keys, labels and shapes match a single-process
 * run exactly), and drops the rows of any baselines prepended for
 * out-of-range normalization.
 *
 * Each row is flushed to @p out as soon as it is emitted: the
 * coordinator watches the temp file's row frontier to tell a hung
 * worker from a slow one, and salvages the flushed prefix of a dead
 * worker's stream — buffered rows would be invisible to both.
 */
class RangeForwardSink : public ResultSink
{
  public:
    RangeForwardSink(const ExperimentPlan &fullPlan, std::size_t begin,
                     std::size_t prefix, ResultSink &inner,
                     std::FILE *out)
        : full_(fullPlan), begin_(begin), prefix_(prefix),
          inner_(inner), out_(out)
    {
    }

    void
    begin(const ExperimentPlan &subplan) override
    {
        (void)subplan;
        inner_.begin(full_);
    }

    void
    consume(const ExperimentPlan &subplan, std::size_t index,
            const RunResult &raw, const NormalizedResult *norm,
            bool simulated) override
    {
        (void)subplan;
        if (index < prefix_)
            return; // out-of-range baseline, not this range's row
        const std::size_t global = begin_ + (index - prefix_);
        // The chaos seam: crash, hang or dawdle right before this row
        // (attempt 0 only; see service/faults.hh).
        maybeInjectWorkerFault(global);
        inner_.consume(full_, global, raw, norm, simulated);
        std::fflush(out_);
    }

    void
    end(const ExperimentPlan &subplan, const SweepResult &result) override
    {
        (void)subplan;
        inner_.end(full_, result);
    }

  private:
    const ExperimentPlan &full_;
    std::size_t begin_;
    std::size_t prefix_;
    ResultSink &inner_;
    std::FILE *out_;
};

} // namespace

int
runWorkerRange(const WorkerRangeOptions &opts)
{
    const ExperimentPlan plan = ExperimentPlan::loadFile(opts.planPath);
    if (opts.begin >= opts.end || opts.end > plan.size()) {
        std::fprintf(stderr,
                     "worker: range %zu:%zu is outside the plan "
                     "(%zu scenarios)\n",
                     opts.begin, opts.end, plan.size());
        return 1;
    }
    if (!opts.storeDir.empty() && !opts.cachePath.empty()) {
        std::fprintf(stderr,
                     "worker: --store and --cache are exclusive\n");
        return 1;
    }

    // Out-of-range baselines needed by range scenarios, in index order.
    std::vector<std::size_t> externals;
    for (std::size_t i = opts.begin; i < opts.end; ++i) {
        const int b = plan.baseline[i];
        if (b >= 0 && static_cast<std::size_t>(b) < opts.begin) {
            const std::size_t bi = static_cast<std::size_t>(b);
            if (externals.empty() || externals.back() != bi)
                externals.push_back(bi);
        }
    }

    ExperimentPlan sub;
    sub.name = plan.name;
    sub.energy = plan.energy;
    const std::size_t prefix = externals.size();
    for (const std::size_t bi : externals)
        sub.addBaseline(plan.scenarios[bi]);
    for (std::size_t i = opts.begin; i < opts.end; ++i) {
        const int b = plan.baseline[i];
        int local = -1;
        if (b >= 0) {
            const std::size_t bi = static_cast<std::size_t>(b);
            if (bi >= opts.begin) {
                local = static_cast<int>(prefix + (bi - opts.begin));
            } else {
                for (std::size_t e = 0; e < externals.size(); ++e)
                    if (externals[e] == bi)
                        local = static_cast<int>(e);
            }
        }
        if (local < 0 && b >= 0)
            panic("worker: lost baseline mapping for scenario %zu", i);
        if (local < 0)
            sub.addBaseline(plan.scenarios[i]);
        else
            sub.add(plan.scenarios[i], local);
    }

    std::unique_ptr<ResultStore> store;
    if (!opts.storeDir.empty())
        store = std::make_unique<ShardedStore>(opts.storeDir);
    else
        store = std::make_unique<RunCache>(opts.cachePath);

    std::FILE *out = opts.out != nullptr ? opts.out : stdout;
    JsonLinesSink rows(out);
    RangeForwardSink forward(plan, opts.begin, prefix, rows, out);
    std::vector<ResultSink *> sinks{&forward};

    Session session(std::move(store), opts.jobs);
    session.run(sub, sinks);
    std::fflush(out);
    return 0;
}

} // namespace refrint
