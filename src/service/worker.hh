/**
 * @file
 * Worker: executes one index range of an experiment plan — the
 * subprocess half of the coordinator/worker pair (`refrint_cli worker
 * --plan F --range a:b --store D`).
 *
 * The worker loads the *full* plan, carves out scenarios [begin, end),
 * and streams one JSON Lines row per scenario to @p out in plan
 * order.  Rows carry their global plan identity (key, app, config,
 * ...), so concatenating every range's output in range order is
 * byte-identical to a single-process `sweep --plan F --jsonl -` run.
 *
 * A range scenario whose baseline falls *before* the range is handled
 * by prepending that baseline to the executed sub-plan (its result is
 * needed for normalization) while suppressing its row from the output
 * stream — the coordinator aligns ranges to baseline groups so this
 * path is normally cold, but any range is correct.
 *
 * Every emitted row is flushed immediately: the coordinator watches
 * the output file's growth as the worker's liveness signal (progress
 * deadline) and salvages the flushed prefix of a dead worker's stream.
 */

#ifndef REFRINT_SERVICE_WORKER_HH
#define REFRINT_SERVICE_WORKER_HH

#include <cstdio>
#include <string>

namespace refrint
{

struct WorkerRangeOptions
{
    std::string planPath;    ///< JSON plan file (the full plan)
    std::size_t begin = 0;   ///< first scenario index (inclusive)
    std::size_t end = 0;     ///< one past the last index
    std::string storeDir;    ///< sharded result store; "" = none
    std::string cachePath;   ///< legacy cache; "" = none
    unsigned jobs = 1;       ///< threads within this worker
    std::FILE *out = nullptr; ///< JSONL row stream (default stdout)
};

/**
 * Run scenarios [begin, end) of the plan; 0 on success, 1 on a
 * runtime error.  Exactly one of storeDir/cachePath may be set;
 * neither set means no persistence (every scenario simulates).
 *
 * Chaos hook: a $REFRINT_FAULTS schedule (service/faults.hh) may
 * crash, hang or slow this worker right before it emits a named
 * global row — on attempt 0 only ($REFRINT_WORKER_ATTEMPT unset or
 * "0"), so the coordinator's recovery is what tests observe.
 */
int runWorkerRange(const WorkerRangeOptions &opts);

} // namespace refrint

#endif // REFRINT_SERVICE_WORKER_HH
