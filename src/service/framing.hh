/**
 * @file
 * Record framing for the experiment service's append-only shard files.
 *
 * Every record is one text line:
 *
 *     R <payload-length-decimal> <fnv64-of-payload-16-hex> <payload>\n
 *
 * and every append writes "\n" + record in a single write(2) to a file
 * opened O_APPEND.  The combination gives two guarantees:
 *
 *  - Concurrent writer *processes* never interleave partial records:
 *    an O_APPEND write of one small buffer is atomic with respect to
 *    other appends to the same file, so each record lands contiguous.
 *  - A mid-write crash never corrupts committed rows: the torn bytes
 *    form (part of) one line that fails the length/checksum test and
 *    is ignored; the *next* append starts with its own '\n', so a torn
 *    tail cannot glue onto — and invalidate — a later good record.
 *
 * Readers scan line by line: blank lines (the defensive leading '\n'
 * of every append) are skipped, lines that frame-check are committed
 * records, anything else is torn/corrupt and counted but ignored.
 */

#ifndef REFRINT_SERVICE_FRAMING_HH
#define REFRINT_SERVICE_FRAMING_HH

#include <cstdint>
#include <functional>
#include <string>

// The framing checksum (and the shard function of service/store.cc) is
// the shared fnv64() — re-exported here so framing users keep compiling.
#include "common/hash.hh"

namespace refrint
{

/** Frame @p payload as one appendable record, including the leading
 *  (self-healing) and trailing newline.  @p payload must not contain
 *  '\n' — the framing is line-based. */
std::string frameRecord(const std::string &payload);

/** Validate one line (no trailing '\n'): true and set @p payload only
 *  if the header parses and length + checksum match. */
bool unframeRecord(const std::string &line, std::string &payload);

/** Outcome of scanning a shard file's contents. */
struct ScanStats
{
    std::size_t committed = 0; ///< records that frame-checked
    std::size_t torn = 0;      ///< non-blank lines that did not
};

/** Scan @p data (a whole shard file) and invoke @p onRecord for every
 *  committed payload, in file order. */
ScanStats scanRecords(const std::string &data,
                      const std::function<void(const std::string &)>
                          &onRecord);

} // namespace refrint

#endif // REFRINT_SERVICE_FRAMING_HH
