#include "service/coordinator.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "api/experiment_plan.hh"
#include "api/json.hh"
#include "common/log.hh"

namespace refrint
{

namespace
{

using Clock = std::chrono::steady_clock;

/** A private temp file for one worker attempt's row stream. */
std::string
makeTempPath()
{
    const char *tmp = std::getenv("TMPDIR");
    std::string tpl = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
    tpl += "/refrint-range-XXXXXX";
    std::vector<char> buf(tpl.begin(), tpl.end());
    buf.push_back('\0');
    const int fd = ::mkstemp(buf.data());
    if (fd < 0)
        fatal("cannot create worker temp file %s: %s", tpl.c_str(),
              std::strerror(errno));
    ::close(fd);
    return std::string(buf.data());
}

/** fork+exec `workerBin worker --plan F --range a:b [--store D]` with
 *  stdout redirected to the task's temp file. */
pid_t
spawnWorkerProcess(const CoordinatorOptions &opts, const WorkerTask &task)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid; // parent (or fork failure, -1)

    char attempt[16];
    std::snprintf(attempt, sizeof(attempt), "%u", task.attempt);
    ::setenv("REFRINT_WORKER_ATTEMPT", attempt, 1);

    const int fd = ::open(task.outPath.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0666);
    if (fd < 0)
        ::_exit(127);
    ::dup2(fd, STDOUT_FILENO);
    ::close(fd);

    char range[64];
    std::snprintf(range, sizeof(range), "%zu:%zu", task.begin, task.end);
    std::vector<std::string> args = {opts.workerBin, "worker",
                                     "--plan",       opts.planPath,
                                     "--range",      range};
    if (!opts.storeDir.empty()) {
        args.push_back("--store");
        args.push_back(opts.storeDir);
    }
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(opts.workerBin.c_str(), argv.data());
    ::_exit(127);
}

std::string
describeExit(int status)
{
    char buf[64];
    if (WIFSIGNALED(status))
        std::snprintf(buf, sizeof(buf), "killed by signal %d",
                      WTERMSIG(status));
    else if (WIFEXITED(status))
        std::snprintf(buf, sizeof(buf), "exited with status %d",
                      WEXITSTATUS(status));
    else
        std::snprintf(buf, sizeof(buf), "ended with raw status %d",
                      status);
    return buf;
}

/**
 * The salvageable prefix of a dead attempt's row stream: complete
 * lines that parse as JSON objects, stopping at the first torn or
 * unparseable one (workers flush per row, so a SIGKILL can tear at
 * most the final line).  Returns (rows, bytes) of the good prefix.
 */
std::pair<std::size_t, std::size_t>
salvageablePrefix(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {0, 0};
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string data = ss.str();

    std::size_t rows = 0, bytes = 0, pos = 0;
    while (pos < data.size()) {
        const auto nl = data.find('\n', pos);
        if (nl == std::string::npos)
            break; // torn final line: never flushed whole
        const std::string line = data.substr(pos, nl - pos);
        JsonValue doc;
        std::string err;
        if (line.empty() || !JsonValue::parse(line, doc, err) ||
            !doc.isObject())
            break;
        ++rows;
        bytes = nl + 1;
        pos = nl + 1;
    }
    return {rows, bytes};
}

/** One range's progress through attempts and salvage. */
struct RangeState
{
    std::size_t begin = 0, end = 0; ///< the original assignment
    std::size_t next = 0;   ///< first index no attempt has completed
    unsigned attempt = 0;   ///< attempts launched so far
    pid_t pid = -1;         ///< running attempt (-1 = none)
    std::string curPath;    ///< running/last attempt's row file
    /** Merged in order: (path, byte limit; SIZE_MAX = whole file). */
    std::vector<std::pair<std::string, std::size_t>> parts;
    off_t lastSize = 0;            ///< curPath size last observed
    Clock::time_point lastGrowth;  ///< when it last grew
    Clock::time_point notBefore;   ///< backoff: no respawn before this
    bool wantRespawn = false;
    bool done = false;
    bool failed = false;
};

/** Copy @p limit bytes (SIZE_MAX = all) of @p path to @p out; any
 *  short write is fatal with the file and offset — a full disk must
 *  not silently truncate the merged stream. */
void
copyRows(const std::string &path, std::size_t limit, std::FILE *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("coordinator: lost worker output %s", path.c_str());
    char buf[1 << 16];
    std::size_t left = limit;
    while (left > 0 && (in.read(buf, static_cast<std::streamsize>(
                                         std::min(sizeof(buf), left))),
                        in.gcount() > 0)) {
        const std::size_t n = static_cast<std::size_t>(in.gcount());
        if (std::fwrite(buf, 1, n, out) != n)
            fatal("coordinator: short write merging %s at output "
                  "offset %lld: %s (disk full?)",
                  path.c_str(),
                  static_cast<long long>(std::ftell(out)),
                  std::strerror(errno));
        if (left != static_cast<std::size_t>(-1))
            left -= n;
    }
}

} // namespace

std::vector<std::pair<std::size_t, std::size_t>>
shardPlanRanges(const ExperimentPlan &plan, unsigned workers)
{
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    const std::size_t n = plan.size();
    if (n == 0 || workers == 0)
        return ranges;

    // Positions where a range may start without splitting a baseline
    // group: index 0 and every baseline scenario.  (A worker still
    // runs correctly across any split — it prepends out-of-range
    // baselines — but an aligned split never re-simulates one.)
    std::vector<std::size_t> starts;
    for (std::size_t i = 0; i < n; ++i)
        if (i == 0 || plan.baseline[i] < 0)
            if (starts.empty() || starts.back() != i)
                starts.push_back(i);

    // Fewer groups than workers: give up on alignment and cut anywhere
    // (each cut costs at most one re-simulated baseline per range,
    // which parallelism across the rest of the group repays).
    if (starts.size() < workers) {
        starts.clear();
        for (std::size_t i = 0; i < n; ++i)
            starts.push_back(i);
    }

    // Snap the w-way even cut points to the nearest group boundary.
    std::vector<std::size_t> cuts{0};
    for (unsigned k = 1; k < workers; ++k) {
        const std::size_t ideal = (n * k) / workers;
        std::size_t best = 0;
        std::size_t bestDist = n + 1;
        for (const std::size_t s : starts) {
            if (s <= cuts.back() || s >= n)
                continue;
            const std::size_t dist =
                s > ideal ? s - ideal : ideal - s;
            if (dist < bestDist) {
                bestDist = dist;
                best = s;
            }
        }
        if (bestDist > n)
            break; // fewer groups than workers
        cuts.push_back(best);
    }
    cuts.push_back(n);
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i)
        ranges.emplace_back(cuts[i], cuts[i + 1]);
    return ranges;
}

int
runCoordinator(const CoordinatorOptions &opts, CoordinatorStats *stats)
{
    const ExperimentPlan plan = ExperimentPlan::loadFile(opts.planPath);
    std::FILE *out = opts.out != nullptr ? opts.out : stdout;
    CoordinatorStats localStats;
    if (stats == nullptr)
        stats = &localStats;
    *stats = CoordinatorStats{};
    if (plan.size() == 0)
        return 0;

    const unsigned workers = opts.workers == 0 ? 1 : opts.workers;
    const auto rangeSpans = shardPlanRanges(plan, workers);

    WorkerSpawner spawn = opts.spawner;
    if (!spawn) {
        if (opts.workerBin.empty()) {
            warn("coordinator: no worker binary configured");
            return 1;
        }
        spawn = [&opts](const WorkerTask &task) {
            return spawnWorkerProcess(opts, task);
        };
    }

    std::vector<RangeState> ranges;
    ranges.reserve(rangeSpans.size());
    for (const auto &[begin, end] : rangeSpans) {
        RangeState r;
        r.begin = begin;
        r.end = end;
        r.next = begin;
        ranges.push_back(std::move(r));
    }

    std::vector<std::string> tempFiles; // everything to unlink
    auto cleanup = [&tempFiles]() {
        for (const auto &path : tempFiles)
            ::unlink(path.c_str());
    };

    std::map<pid_t, std::size_t> running; // pid -> range index
    std::set<pid_t> deadlineKilled;

    auto launch = [&](std::size_t idx) -> bool {
        RangeState &r = ranges[idx];
        r.curPath = makeTempPath();
        tempFiles.push_back(r.curPath);
        const WorkerTask task{r.next, r.end, r.attempt, r.curPath};
        const pid_t pid = spawn(task);
        if (pid < 0)
            return false;
        ++r.attempt;
        r.pid = pid;
        r.lastSize = 0;
        r.lastGrowth = Clock::now();
        r.wantRespawn = false;
        running[pid] = idx;
        return true;
    };

    auto abandon = [&](const char *why) {
        warn("coordinator: %s; terminating %zu outstanding worker(s)",
             why, running.size());
        for (const auto &[pid, idx] : running) {
            (void)idx;
            ::kill(pid, SIGKILL);
        }
        while (!running.empty()) {
            int status = 0;
            const pid_t pid = ::waitpid(-1, &status, 0);
            if (pid < 0)
                break;
            running.erase(pid);
        }
        cleanup();
        return 1;
    };

    for (std::size_t i = 0; i < ranges.size(); ++i)
        if (!launch(i))
            return abandon("cannot spawn worker");
    inform("coordinator: %zu scenario(s) across %zu worker(s), "
           "%u retr%s per range%s",
           plan.size(), ranges.size(), opts.retries,
           opts.retries == 1 ? "y" : "ies",
           opts.workerTimeoutSec > 0 ? ", progress deadline armed"
                                     : "");

    /** A failed (or deadline-killed) attempt: salvage its flushed
     *  prefix, then either re-dispatch the remainder after backoff or
     *  declare the range failed. */
    auto attemptFailed = [&](std::size_t idx, const std::string &how) {
        RangeState &r = ranges[idx];
        const auto [rows, bytes] = salvageablePrefix(r.curPath);
        if (rows > 0) {
            r.parts.emplace_back(r.curPath, bytes);
            r.next += rows;
            stats->salvagedRows += rows;
        }
        if (r.next >= r.end) {
            // The attempt died after flushing its final row (e.g. in
            // teardown): everything is salvaged, nothing to re-run.
            warn("coordinator: range %zu:%zu %s after its last row; "
                 "all %zu row(s) salvaged",
                 r.begin, r.end, how.c_str(), rows);
            r.done = true;
            return;
        }
        if (r.attempt > opts.retries) {
            warn("coordinator: range %zu:%zu %s on attempt %u/%u; "
                 "giving up on scenarios %zu:%zu",
                 r.begin, r.end, how.c_str(), r.attempt,
                 opts.retries + 1, r.next, r.end);
            r.failed = true;
            return;
        }
        const unsigned doublings = std::min(r.attempt - 1, 20u);
        const double delay =
            std::min(opts.backoffCapSec,
                     opts.backoffBaseSec *
                         static_cast<double>(1u << doublings));
        warn("coordinator: range %zu:%zu %s (attempt %u/%u); salvaged "
             "%zu row(s), retrying %zu:%zu in %.2fs",
             r.begin, r.end, how.c_str(), r.attempt, opts.retries + 1,
             rows, r.next, r.end, delay);
        ++stats->retriesUsed;
        r.wantRespawn = true;
        r.notBefore =
            Clock::now() +
            std::chrono::microseconds(
                static_cast<std::int64_t>(delay * 1e6));
    };

    auto anyPendingRespawn = [&]() {
        for (const RangeState &r : ranges)
            if (r.wantRespawn)
                return true;
        return false;
    };

    while (!running.empty() || anyPendingRespawn()) {
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, WNOHANG);
        if (pid < 0 && errno != EINTR && errno != ECHILD)
            return abandon("waitpid failed");

        if (pid > 0) {
            const auto it = running.find(pid);
            if (it == running.end())
                continue; // not one of ours
            const std::size_t idx = it->second;
            running.erase(it);
            RangeState &r = ranges[idx];
            r.pid = -1;
            if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
                r.parts.emplace_back(r.curPath,
                                     static_cast<std::size_t>(-1));
                r.done = true;
            } else if (deadlineKilled.erase(pid) > 0) {
                attemptFailed(idx, "made no progress for " +
                                       std::to_string(static_cast<long>(
                                           opts.workerTimeoutSec)) +
                                       "s (killed)");
            } else {
                attemptFailed(idx, describeExit(status));
            }
            continue; // reap eagerly before sleeping again
        }

        const auto now = Clock::now();

        // Progress deadlines: a worker whose row file has not grown
        // for workerTimeoutSec is hung (workers flush per row); kill
        // it and let the reap path salvage + retry.
        if (opts.workerTimeoutSec > 0) {
            for (auto &[wpid, idx] : running) {
                RangeState &r = ranges[idx];
                struct stat st{};
                const off_t size =
                    ::stat(r.curPath.c_str(), &st) == 0 ? st.st_size
                                                        : 0;
                if (size > r.lastSize) {
                    r.lastSize = size;
                    r.lastGrowth = now;
                } else if (deadlineKilled.count(wpid) == 0 &&
                           std::chrono::duration<double>(
                               now - r.lastGrowth)
                                   .count() > opts.workerTimeoutSec) {
                    warn("coordinator: range %zu:%zu (pid %d) made no "
                         "progress for %.1fs; killing it",
                         r.next, r.end, static_cast<int>(wpid),
                         opts.workerTimeoutSec);
                    deadlineKilled.insert(wpid);
                    ++stats->deadlineKills;
                    ::kill(wpid, SIGKILL);
                }
            }
        }

        // Backed-off respawns whose delay has elapsed.
        for (std::size_t i = 0; i < ranges.size(); ++i)
            if (ranges[i].wantRespawn && now >= ranges[i].notBefore)
                if (!launch(i))
                    return abandon("cannot respawn worker");

        timespec ts{0, 20 * 1000 * 1000}; // 20 ms poll
        ::nanosleep(&ts, nullptr);
    }

    // Merge every range's parts in range order: salvaged prefixes are
    // byte-for-byte the rows the dead attempts flushed, so a fully
    // recovered run is byte-identical to a fault-free one.
    for (const RangeState &r : ranges)
        for (const auto &[path, limit] : r.parts)
            copyRows(path, limit, out);
    if (std::fflush(out) != 0)
        fatal("coordinator: cannot flush merged row stream: %s",
              std::strerror(errno));

    for (const RangeState &r : ranges)
        if (r.failed)
            stats->missing.emplace_back(r.next, r.end);
    cleanup();

    if (stats->salvagedRows > 0)
        inform("coordinator: salvaged %zu row(s) from failed "
               "attempt(s) across %zu retr%s",
               stats->salvagedRows, stats->retriesUsed,
               stats->retriesUsed == 1 ? "y" : "ies");
    if (!stats->missing.empty()) {
        std::string desc;
        std::size_t count = 0;
        for (const auto &[a, b] : stats->missing) {
            if (!desc.empty())
                desc += ", ";
            desc += std::to_string(a) + ":" + std::to_string(b);
            count += b - a;
        }
        warn("coordinator: %zu scenario(s) NEVER completed after "
             "%u attempt(s) per range — missing plan indices [%s); "
             "all other rows were merged",
             count, opts.retries + 1, desc.c_str());
        return 1;
    }
    return 0;
}

} // namespace refrint
