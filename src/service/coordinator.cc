#include "service/coordinator.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "api/experiment_plan.hh"
#include "common/log.hh"

namespace refrint
{

namespace
{

/** A private temp file for one worker attempt's row stream. */
std::string
makeTempPath()
{
    const char *tmp = std::getenv("TMPDIR");
    std::string tpl = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
    tpl += "/refrint-range-XXXXXX";
    std::vector<char> buf(tpl.begin(), tpl.end());
    buf.push_back('\0');
    const int fd = ::mkstemp(buf.data());
    if (fd < 0)
        fatal("cannot create worker temp file %s: %s", tpl.c_str(),
              std::strerror(errno));
    ::close(fd);
    return std::string(buf.data());
}

/** fork+exec `workerBin worker --plan F --range a:b [--store D]` with
 *  stdout redirected to the task's temp file. */
pid_t
spawnWorkerProcess(const CoordinatorOptions &opts, const WorkerTask &task)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid; // parent (or fork failure, -1)

    char attempt[16];
    std::snprintf(attempt, sizeof(attempt), "%u", task.attempt);
    ::setenv("REFRINT_WORKER_ATTEMPT", attempt, 1);

    const int fd = ::open(task.outPath.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0666);
    if (fd < 0)
        ::_exit(127);
    ::dup2(fd, STDOUT_FILENO);
    ::close(fd);

    char range[64];
    std::snprintf(range, sizeof(range), "%zu:%zu", task.begin, task.end);
    std::vector<std::string> args = {opts.workerBin, "worker",
                                     "--plan",       opts.planPath,
                                     "--range",      range};
    if (!opts.storeDir.empty()) {
        args.push_back("--store");
        args.push_back(opts.storeDir);
    }
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(opts.workerBin.c_str(), argv.data());
    ::_exit(127);
}

std::string
describeExit(int status)
{
    char buf[64];
    if (WIFSIGNALED(status))
        std::snprintf(buf, sizeof(buf), "killed by signal %d",
                      WTERMSIG(status));
    else if (WIFEXITED(status))
        std::snprintf(buf, sizeof(buf), "exited with status %d",
                      WEXITSTATUS(status));
    else
        std::snprintf(buf, sizeof(buf), "ended with raw status %d",
                      status);
    return buf;
}

} // namespace

std::vector<std::pair<std::size_t, std::size_t>>
shardPlanRanges(const ExperimentPlan &plan, unsigned workers)
{
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    const std::size_t n = plan.size();
    if (n == 0 || workers == 0)
        return ranges;

    // Positions where a range may start without splitting a baseline
    // group: index 0 and every baseline scenario.  (A worker still
    // runs correctly across any split — it prepends out-of-range
    // baselines — but an aligned split never re-simulates one.)
    std::vector<std::size_t> starts;
    for (std::size_t i = 0; i < n; ++i)
        if (i == 0 || plan.baseline[i] < 0)
            if (starts.empty() || starts.back() != i)
                starts.push_back(i);

    // Fewer groups than workers: give up on alignment and cut anywhere
    // (each cut costs at most one re-simulated baseline per range,
    // which parallelism across the rest of the group repays).
    if (starts.size() < workers) {
        starts.clear();
        for (std::size_t i = 0; i < n; ++i)
            starts.push_back(i);
    }

    // Snap the w-way even cut points to the nearest group boundary.
    std::vector<std::size_t> cuts{0};
    for (unsigned k = 1; k < workers; ++k) {
        const std::size_t ideal = (n * k) / workers;
        std::size_t best = 0;
        std::size_t bestDist = n + 1;
        for (const std::size_t s : starts) {
            if (s <= cuts.back() || s >= n)
                continue;
            const std::size_t dist =
                s > ideal ? s - ideal : ideal - s;
            if (dist < bestDist) {
                bestDist = dist;
                best = s;
            }
        }
        if (bestDist > n)
            break; // fewer groups than workers
        cuts.push_back(best);
    }
    cuts.push_back(n);
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i)
        ranges.emplace_back(cuts[i], cuts[i + 1]);
    return ranges;
}

int
runCoordinator(const CoordinatorOptions &opts)
{
    const ExperimentPlan plan = ExperimentPlan::loadFile(opts.planPath);
    std::FILE *out = opts.out != nullptr ? opts.out : stdout;
    if (plan.size() == 0)
        return 0;

    const unsigned workers = opts.workers == 0 ? 1 : opts.workers;
    const auto ranges = shardPlanRanges(plan, workers);

    WorkerSpawner spawn = opts.spawner;
    if (!spawn) {
        if (opts.workerBin.empty()) {
            warn("coordinator: no worker binary configured");
            return 1;
        }
        spawn = [&opts](const WorkerTask &task) {
            return spawnWorkerProcess(opts, task);
        };
    }

    std::vector<WorkerTask> tasks;
    tasks.reserve(ranges.size());
    for (const auto &[begin, end] : ranges)
        tasks.push_back(WorkerTask{begin, end, 0, makeTempPath()});

    auto cleanup = [&tasks]() {
        for (const auto &t : tasks)
            ::unlink(t.outPath.c_str());
    };

    std::map<pid_t, std::size_t> running; // pid -> task index
    auto abandon = [&](const char *why) {
        warn("coordinator: %s; terminating %zu outstanding worker(s)",
             why, running.size());
        for (const auto &[pid, idx] : running) {
            (void)idx;
            ::kill(pid, SIGTERM);
        }
        while (!running.empty()) {
            int status = 0;
            const pid_t pid = ::waitpid(-1, &status, 0);
            if (pid < 0)
                break;
            running.erase(pid);
        }
        cleanup();
        return 1;
    };

    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const pid_t pid = spawn(tasks[i]);
        if (pid < 0)
            return abandon("cannot spawn worker");
        running[pid] = i;
    }
    inform("coordinator: %zu scenario(s) across %zu worker(s)",
           plan.size(), tasks.size());

    while (!running.empty()) {
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, 0);
        if (pid < 0) {
            if (errno == EINTR)
                continue;
            return abandon("waitpid failed");
        }
        const auto it = running.find(pid);
        if (it == running.end())
            continue; // not one of ours
        const std::size_t idx = it->second;
        running.erase(it);
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0)
            continue; // range done

        WorkerTask &task = tasks[idx];
        if (task.attempt >= 1) {
            warn("coordinator: range %zu:%zu failed twice (%s)",
                 task.begin, task.end, describeExit(status).c_str());
            return abandon("a range failed twice");
        }
        warn("coordinator: range %zu:%zu %s; retrying once",
             task.begin, task.end, describeExit(status).c_str());
        task.attempt = 1;
        const pid_t retry = spawn(task);
        if (retry < 0)
            return abandon("cannot respawn worker");
        running[retry] = idx;
    }

    // Every range succeeded: splice the row streams in range order.
    for (const auto &task : tasks) {
        std::ifstream in(task.outPath, std::ios::binary);
        if (!in) {
            warn("coordinator: lost worker output %s",
                 task.outPath.c_str());
            cleanup();
            return 1;
        }
        char buf[1 << 16];
        while (in.read(buf, sizeof(buf)) || in.gcount() > 0)
            std::fwrite(buf, 1, static_cast<std::size_t>(in.gcount()),
                        out);
    }
    std::fflush(out);
    cleanup();
    return 0;
}

} // namespace refrint
