/**
 * @file
 * FaultPlan: deterministic fault injection for the experiment service.
 *
 * A fault plan is a comma-separated schedule of named fault points,
 * parsed from $REFRINT_FAULTS (or a literal string in tests):
 *
 *     worker.crash@IDX       SIGKILL right before emitting the row for
 *                            global plan index IDX (attempt 0 only)
 *     worker.hang@IDX        hang forever before emitting that row
 *                            (attempt 0 only; exercises the
 *                            coordinator's progress deadline)
 *     worker.slow@IDX:MS     sleep MS milliseconds before emitting
 *                            that row (attempt 0 only; must NOT trip
 *                            the deadline — workers that are merely
 *                            slow survive)
 *     store.torn_write@N     the N-th shard append (0-based, counted
 *                            per store instance) writes only a prefix
 *                            of its record, then the process SIGKILLs
 *                            itself — a crash mid-write, leaving a
 *                            torn line for scrub to find
 *     store.short_write@N    the N-th shard append writes a prefix and
 *                            then reports a short write(2) — exercises
 *                            the ENOSPC fatal path
 *     serve.drop_conn@REQ    the serve loop abruptly closes the
 *                            connection on its REQ-th request
 *                            (0-based) — a transport failure mid-
 *                            conversation
 *
 * Every recovery path the service claims to have is exercised by
 * scheduling the corresponding fault in a test or the CI chaos job and
 * asserting the system's output is unchanged.  Fault points are pure
 * queries — each instrumented site passes its own ordinal (plan index,
 * append count, request count), so a schedule fires deterministically
 * regardless of thread or process interleaving.
 *
 * An unset/empty $REFRINT_FAULTS yields an empty plan; every check is
 * then a single cheap vector-empty test on the hot path.
 */

#ifndef REFRINT_SERVICE_FAULTS_HH
#define REFRINT_SERVICE_FAULTS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace refrint
{

/** One scheduled fault: `point@arg` or `point@arg:extra`. */
struct FaultSpec
{
    std::string point;       ///< e.g. "worker.crash"
    std::uint64_t arg = 0;   ///< the @ordinal it fires at
    std::uint64_t extra = 0; ///< the optional :value (e.g. slow ms)
};

class FaultPlan
{
  public:
    /** An empty plan: nothing ever fires. */
    FaultPlan() = default;

    /**
     * Parse @p spec ("worker.crash@5,worker.slow@2:40").  A malformed
     * entry is fatal (exit 1) — a chaos schedule that silently
     * half-applies would "pass" tests without testing anything.
     */
    explicit FaultPlan(const std::string &spec);

    /** The process-wide plan parsed once from $REFRINT_FAULTS. */
    static const FaultPlan &global();

    /**
     * Re-parse $REFRINT_FAULTS into the global plan.  For tests that
     * setenv() after the cached plan was first touched (e.g. a forked
     * child inheriting the parent gtest process's empty plan); real
     * workers are fresh exec()s and never need it.  Not thread-safe —
     * call before any concurrency starts.
     */
    static void reloadGlobalForTest();

    /** True when `point@ordinal` is scheduled; @p extra (if non-null)
     *  receives the spec's :value. */
    bool at(const char *point, std::uint64_t ordinal,
            std::uint64_t *extra = nullptr) const;

    bool empty() const { return specs_.empty(); }

    const std::vector<FaultSpec> &specs() const { return specs_; }

  private:
    std::vector<FaultSpec> specs_;
};

/**
 * The worker-side fault site: called with each row's global plan index
 * right before it is emitted.  Applies worker.crash / worker.hang /
 * worker.slow from the global plan — but only on worker attempt 0
 * ($REFRINT_WORKER_ATTEMPT unset or "0"), so a retried worker always
 * runs clean and recovery can be asserted.
 */
void maybeInjectWorkerFault(std::size_t globalIndex);

} // namespace refrint

#endif // REFRINT_SERVICE_FAULTS_HH
